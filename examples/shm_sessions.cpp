// Cross-process sessions in ~80 lines: a parent creates a shared-memory
// world holding one RecoverableLockTable, forks a child (a REAL second
// OS process), and both move money between two accounts under multi-key
// batch guards - then the parent audits that no update was lost and no
// lease leaked. The same code works across unrelated processes via
// ShmWorld::attach(name); fork is used here only to keep the example
// self-contained.
//
// Run: ./build/examples/shm_sessions
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "api/adapters.hpp"
#include "shm/shm.hpp"
#include "svc/svc.hpp"

using Table = rme::api::TableLock<rme::platform::Real>;

namespace {

// The application state shares the region with the lock that guards it.
struct Bank {
  Table table;
  int64_t balance[2] = {1000, 1000};
  explicit Bank(rme::platform::Real::Env& env)
      : table(env, /*shards=*/4, /*ports_per_shard=*/2, /*npids=*/2) {}
};

constexpr uint64_t kAcctA = 1, kAcctB = 2;
constexpr int kTransfers = 2000;

void run_transfers(rme::shm::ShmWorld& world, Bank& bank, int pid,
                   int64_t amount) {
  rme::shm::SessionLease<Table> lease(world, bank.table, pid);
  for (int i = 0; i < kTransfers; ++i) {
    // Both accounts' shards held at once: the transfer is atomic even
    // against the OTHER PROCESS's transfers in the opposite direction.
    auto b = lease->acquire_batch({kAcctA, kAcctB}).value();
    bank.balance[0] -= amount;
    bank.balance[1] += amount;
  }
}

}  // namespace

int main() {
  const std::string name = "/rme_example_" + std::to_string(::getpid());
  auto world = rme::shm::ShmWorld::create(name, 16 << 20, /*nprocs=*/2);
  Bank& bank = world.create_root<Bank>(world.env);

  const pid_t child = ::fork();
  if (child == 0) {
    // The child inherits the mapping (same base address - the fixed-
    // address contract is trivially satisfied); it claims its own
    // logical pid and contends for real.
    run_transfers(world, bank, /*pid=*/1, /*amount=*/-7);
    ::_exit(0);  // the region belongs to the parent
  }
  run_transfers(world, bank, /*pid=*/0, /*amount=*/+7);
  int status = 0;
  ::waitpid(child, &status, 0);

  const int64_t total = bank.balance[0] + bank.balance[1];
  std::printf("balances after %d cross-process transfers each way: "
              "%lld + %lld = %lld\n",
              kTransfers, (long long)bank.balance[0],
              (long long)bank.balance[1], (long long)total);
  // Conservation: equal opposite transfers must cancel exactly - any
  // lost update would show up here.
  if (total != 2000 || bank.balance[0] != 1000 || bank.balance[1] != 1000) {
    std::printf("FAIL: lost update across the process boundary\n");
    return 1;
  }
  auto& ctx = world.proc(0).ctx;
  for (int s = 0; s < bank.table.underlying().shards(); ++s) {
    if (bank.table.underlying().shard_lease(s).free_ports(ctx) != 2) {
      std::printf("FAIL: leaked lease in shard %d\n", s);
      return 1;
    }
  }
  std::printf("OK: atomic cross-process batches, zero leaked leases\n");
  return 0;
}

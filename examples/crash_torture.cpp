// Crash torture: the full stack under a sustained crash storm, with live
// property checking - a demonstration of the verification harness as much
// as of the lock.
//
// Build & run:  ./build/examples/crash_torture [seed]
//
// 9 processes on a degree-3 arbitration tree (2 levels of 3-ported
// recoverable locks), each completing 10 super-passages while a random
// crash plan kills processes at arbitrary shared-memory steps (bounded
// total so the starvation-freedom precondition holds). The harness
// checks mutual exclusion and critical-section re-entry on every entry
// and prints the repair statistics of every tree node at the end.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/arbitration_tree.hpp"
#include "harness/sim_run.hpp"

using namespace rme;
using harness::LockBody;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  constexpr int kProcs = 9;
  constexpr uint64_t kIters = 10;

  SimRun sim(ModelKind::kDsm, kProcs);
  core::ArbitrationTree<P> tree(sim.world().env, kProcs,
                                {.degree = 3, .recycle = true});
  std::printf("tree: %d processes, degree %d, height %d, %d nodes\n",
              kProcs, tree.degree(), tree.height(), tree.node_count());

  LockBody<core::ArbitrationTree<P>> body(tree, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });

  sim::SeededRandom pol(seed);
  sim::RandomCrash crash(0.005, seed * 31 + 1, 80);
  std::vector<uint64_t> iters(kProcs, kIters);
  auto res = sim.run(pol, crash, iters, 100000000);

  if (res.exhausted) {
    std::printf("FAILED: run exhausted - liveness bug\n");
    return 1;
  }

  uint64_t crashes = 0;
  for (int p = 0; p < kProcs; ++p) crashes += res.crashes[p];
  std::printf("scheduled steps:      %llu\n", (unsigned long long)res.steps);
  std::printf("crashes injected:     %llu\n", (unsigned long long)crashes);
  std::printf("CS entries:           %llu\n",
              (unsigned long long)sim.checker().entries());
  std::printf("ME violations:        %llu\n",
              (unsigned long long)sim.checker().me_violations());
  std::printf("CSR violations:       %llu\n",
              (unsigned long long)sim.checker().csr_violations());

  std::printf("\nper-node repair statistics:\n");
  std::printf("  %-6s %12s %8s %8s %10s %10s\n", "node", "acquisitions",
              "repairs", "via-FAS", "via-head", "via-special");
  for (int i = 0; i < tree.node_count(); ++i) {
    const auto st = tree.node(i).total_stats();
    std::printf("  %-6d %12llu %8llu %8llu %10llu %10llu\n", i,
                (unsigned long long)st.acquisitions,
                (unsigned long long)st.repairs,
                (unsigned long long)st.repair_fas,
                (unsigned long long)st.repair_headpath,
                (unsigned long long)st.repair_special);
  }

  const bool ok = sim.checker().me_violations() == 0 &&
                  sim.checker().csr_violations() == 0;
  std::printf("\nresult: %s\n", ok ? "OK" : "PROPERTY VIOLATION");
  return ok ? 0 : 1;
}

// Recoverable key-value log: the paper's motivating scenario end-to-end.
//
// Build & run:  ./build/examples/recoverable_kv_log
//
// A tiny persistent store lives in "NVM" (crash-surviving memory): a
// fixed array of slots plus a write-ahead intent record per process. Each
// update is:   lock -> write intent -> apply to slots -> clear intent ->
// unlock. Processes crash at random shared-memory steps (including inside
// the lock's own protocol, inside the CS, and mid-exit). Recovery is the
// paper's contract: just call lock() again - if the crash was inside the
// CS the process re-enters immediately (wait-free CSR) and completes its
// intent (redo log); otherwise it starts a fresh update.
//
// At the end we verify: the sum over slots equals the number of applied
// updates, no intent is left dangling, and the lock never admitted two
// processes at once (checked throughout by the scratch protocol).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/rme_lock.hpp"
#include "harness/sim_run.hpp"

using namespace rme;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

namespace {

constexpr int kProcs = 4;
constexpr int kSlots = 8;
constexpr uint64_t kUpdatesPerProc = 50;

// All fields are platform atomics: they live in NVM and survive crashes.
struct Store {
  typename P::Atomic<uint64_t> slot[kSlots];
  // Per-process intent record: a 1-entry redo log holding the *absolute*
  // post-state (slot value and applied counter), which makes replay
  // idempotent: any number of re-applications writes the same values.
  struct Intent {
    typename P::Atomic<int> pending;
    typename P::Atomic<int> slot;
    typename P::Atomic<uint64_t> value;    // new slot contents
    typename P::Atomic<uint64_t> applied;  // new applied-counter value
  } intent[kProcs];
  typename P::Atomic<uint64_t> applied;  // committed update count

  void attach(P::Env& env) {
    for (auto& s : slot) {
      s.attach(env, rmr::kNoOwner);
      s.init(0);
    }
    for (auto& i : intent) {
      i.pending.attach(env, rmr::kNoOwner);
      i.slot.attach(env, rmr::kNoOwner);
      i.value.attach(env, rmr::kNoOwner);
      i.applied.attach(env, rmr::kNoOwner);
      i.pending.init(0);
    }
    applied.attach(env, rmr::kNoOwner);
    applied.init(0);
  }
};

}  // namespace

int main() {
  SimRun sim(ModelKind::kCc, kProcs);
  core::RmeLock<P> lock(sim.world().env, kProcs);
  Store store;
  store.attach(sim.world().env);

  uint64_t committed[kProcs] = {};

  sim.set_body([&](SimProc& h, int pid) {
    auto& ctx = h.ctx;
    // ---- Try section (doubles as recovery code) ----
    lock.lock(h, pid);

    // ---- Critical section: write-ahead redo log ----
    // CSR guarantees that after a crash in here *we* re-enter before any
    // other process, so the intent cannot interleave with other updates.
    auto& in = store.intent[pid];
    if (in.pending.load(ctx) == 0) {
      // Fresh update: compute the absolute post-state, then publish the
      // intent (pending flag last - the intent's commit point).
      const int s = static_cast<int>((pid * 31 + committed[pid]) % kSlots);
      in.slot.store(ctx, s);
      in.value.store(ctx, store.slot[s].load(ctx) + 1);
      in.applied.store(ctx, store.applied.load(ctx) + 1);
      in.pending.store(ctx, 1);
    }
    // Replay the intent. Absolute values make this idempotent: a crash
    // anywhere below just causes the same writes to be issued again.
    const int s = in.slot.load(ctx);
    store.slot[s].store(ctx, in.value.load(ctx));
    store.applied.store(ctx, in.applied.load(ctx));
    in.pending.store(ctx, 0);

    // ---- Exit section ----
    lock.unlock(h, pid);
    ++committed[pid];
  });

  sim::SeededRandom pol(2027);
  // Random crash storm plus two surgically placed crashes around FAS
  // instructions (the paper's queue-breaking shapes, Section 3.1), so the
  // run demonstrably exercises the repair machinery.
  struct Storm final : sim::CrashPlan {
    sim::RandomCrash random{0.002, 1234, 120};
    sim::CrashAroundFas fas_a{1, 3, sim::CrashAroundFas::kAfter};
    sim::CrashAroundFas fas_b{3, 5, sim::CrashAroundFas::kBefore};
    bool should_crash(int pid, uint64_t step, rmr::Op op) override {
      return fas_a.should_crash(pid, step, op) ||
             fas_b.should_crash(pid, step, op) ||
             random.should_crash(pid, step, op);
    }
  } crash;
  std::vector<uint64_t> iters(kProcs, kUpdatesPerProc);
  auto res = sim.run(pol, crash, iters, 100000000);

  if (res.exhausted) {
    std::printf("FAILED: run exhausted (deadlock?)\n");
    return 1;
  }

  uint64_t total_crashes = 0;
  for (int p = 0; p < kProcs; ++p) total_crashes += res.crashes[p];

  // Verify consistency from the NVM image.
  auto& ctx = sim.world().proc(0).ctx;
  uint64_t slot_sum = 0;
  for (auto& s : store.slot) slot_sum += s.load(ctx);
  const uint64_t applied = store.applied.load(ctx);
  int dangling = 0;
  for (auto& in : store.intent) dangling += in.pending.load(ctx);

  std::printf("processes:            %d\n", kProcs);
  std::printf("updates committed:    %llu\n", (unsigned long long)applied);
  std::printf("crashes survived:     %llu\n",
              (unsigned long long)total_crashes);
  std::printf("repairs performed:    %llu\n",
              (unsigned long long)lock.total_stats().repairs);
  std::printf("slot sum:             %llu\n", (unsigned long long)slot_sum);
  std::printf("dangling intents:     %d\n", dangling);

  const bool ok = slot_sum == applied && dangling == 0 &&
                  applied >= kProcs * kUpdatesPerProc;
  std::printf("consistency:          %s\n", ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}

// Recoverable key-value log: the paper's motivating scenario end-to-end,
// on the public surface - a sharded api::TableLock guards the store per
// key, acquired through session-minted guards (rme::svc).
//
// Build & run:  ./build/examples/recoverable_kv_log
//
// A tiny persistent store lives in "NVM" (crash-surviving memory): a
// fixed array of slots (each slot a KV cell, keyed by its index across
// the table's shards) plus a write-ahead intent record per process. Each
// update is: KeyGuard(slot) -> write intent -> apply to slot -> clear
// intent -> release (guard scope exit). Processes crash at random
// shared-memory steps - inside the lease claim, the lock's own protocol,
// the CS, or mid-exit. A crash unwinds through the KeyGuard WITHOUT
// releasing (guard.hpp crash semantics); recovery is the paper's
// contract: retry the operation with the SAME key - the persisted shard
// intent and port lease re-bind the process, and a crash inside the CS
// re-enters wait-free (CSR) to complete the redo log before any rival
// touches that shard.
//
// At the end we verify from the NVM image: every slot matches its paired
// mirror cell (the redo log replayed atomically), no intent dangles, the
// slot total is consistent with the completed-update count, and the
// leases leaked by claim-window crashes are repatriated by scavenge()
// under quiescence.
#include <cstdio>
#include <memory>
#include <vector>

#include "api/api.hpp"
#include "harness/sim_run.hpp"
#include "svc/svc.hpp"

using namespace rme;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

namespace {

constexpr int kProcs = 4;
constexpr int kShards = 4;
constexpr int kSlots = 8;
constexpr uint64_t kUpdatesPerProc = 50;

// All fields are platform atomics: they live in NVM and survive crashes.
struct Store {
  typename P::Atomic<uint64_t> slot[kSlots];
  // Paired cell written in the same critical section with the same
  // absolute value; slot == mirror at quiescence witnesses that the redo
  // log replays atomically across crashes.
  typename P::Atomic<uint64_t> mirror[kSlots];
  // Per-process intent record: a 1-entry redo log holding the *absolute*
  // post-state, which makes replay idempotent: any number of
  // re-applications writes the same values.
  struct Intent {
    typename P::Atomic<int> pending;
    typename P::Atomic<int> slot;
    typename P::Atomic<uint64_t> value;  // new slot contents
  } intent[kProcs];

  void attach(P::Env& env) {
    for (auto& s : slot) {
      s.attach(env, rmr::kNoOwner);
      s.init(0);
    }
    for (auto& m : mirror) {
      m.attach(env, rmr::kNoOwner);
      m.init(0);
    }
    for (auto& i : intent) {
      i.pending.attach(env, rmr::kNoOwner);
      i.slot.attach(env, rmr::kNoOwner);
      i.value.attach(env, rmr::kNoOwner);
      i.pending.init(0);
    }
  }
};

}  // namespace

int main() {
  SimRun sim(ModelKind::kCc, kProcs);
  api::TableLock<P> table(sim.world().env, kShards,
                          /*ports_per_shard=*/kProcs, kProcs);
  Store store;
  store.attach(sim.world().env);

  // One session per process: the acquisition surface (and the recovery
  // surface - a crashed process simply acquires through it again).
  auto sessions = svc::open_sessions(table, sim.world(), kProcs);

  uint64_t committed[kProcs] = {};

  sim.set_body([&](SimProc& h, int pid) {
    auto& ctx = h.ctx;
    // The slot doubles as the lock key; derived from (pid, committed) so
    // a crashed update retries the SAME key - the recovery contract that
    // re-binds the process to the shard and port of its interrupted
    // super-passage.
    const int s = static_cast<int>((pid * 31 + committed[pid]) % kSlots);

    // ---- Try section (doubles as recovery), session-minted guard ----
    // (no Admission gate installed, so the Expected always carries the
    // guard; the scope still releases it - or skips release on a crash
    // unwind, exactly like a bare guard.)
    auto g = sessions[static_cast<size_t>(pid)]->acquire(
        static_cast<uint64_t>(s)).value();

    // ---- Critical section: write-ahead redo log ----
    // CSR guarantees that after a crash in here *we* re-enter this
    // shard's CS before any other process, so the intent cannot
    // interleave with other updates to the shard.
    auto& in = store.intent[pid];
    if (in.pending.load(ctx) == 0) {
      // Fresh update: compute the absolute post-state, then publish the
      // intent (pending flag last - the intent's commit point).
      in.slot.store(ctx, s);
      in.value.store(ctx, store.slot[s].load(ctx) + 1);
      in.pending.store(ctx, 1);
    }
    // Replay the intent. Absolute values make this idempotent: a crash
    // anywhere below just causes the same writes to be issued again.
    const int rs = in.slot.load(ctx);
    const uint64_t v = in.value.load(ctx);
    store.slot[rs].store(ctx, v);
    store.mirror[rs].store(ctx, v);
    in.pending.store(ctx, 0);

    // ---- Exit section: KeyGuard scope end. A crash before release
    // completes leaves the shard held; the retry finishes it. ----
    ++committed[pid];
  });

  sim::SeededRandom pol(2027);
  // Random crash storm plus two surgically placed crashes around FAS
  // instructions (the paper's queue-breaking shapes, Section 3.1, plus
  // the lease claim window), so the run demonstrably exercises both the
  // queue repair machinery and the port-lease recovery.
  struct Storm final : sim::CrashPlan {
    sim::RandomCrash random{0.002, 1234, 120};
    sim::CrashAroundFas fas_a{1, 3, sim::CrashAroundFas::kAfter};
    sim::CrashAroundFas fas_b{3, 5, sim::CrashAroundFas::kBefore};
    bool should_crash(int pid, uint64_t step, rmr::Op op) override {
      return fas_a.should_crash(pid, step, op) ||
             fas_b.should_crash(pid, step, op) ||
             random.should_crash(pid, step, op);
    }
  } crash;
  std::vector<uint64_t> iters(kProcs, kUpdatesPerProc);
  auto res = sim.run(pol, crash, iters, 100000000);

  if (res.exhausted) {
    std::printf("FAILED: run exhausted (deadlock?)\n");
    return 1;
  }

  uint64_t total_crashes = 0, total_completed = 0;
  for (int p = 0; p < kProcs; ++p) {
    total_crashes += res.crashes[p];
    total_completed += res.completions[p];
  }

  // Verify consistency from the NVM image.
  auto& ctx = sim.world().proc(0).ctx;
  uint64_t slot_sum = 0;
  int mirror_mismatches = 0;
  for (int s = 0; s < kSlots; ++s) {
    const uint64_t v = store.slot[s].load(ctx);
    slot_sum += v;
    if (store.mirror[s].load(ctx) != v) ++mirror_mismatches;
  }
  int dangling = 0;
  for (auto& in : store.intent) dangling += in.pending.load(ctx);

  uint64_t repairs = 0;
  for (int s = 0; s < kShards; ++s) {
    repairs += table.underlying().shard_lock(s).total_stats().repairs;
  }
  // Quiescent now: repatriate any ports leaked by claim-window crashes.
  int scavenged = 0;
  int free_ports = 0;
  for (int s = 0; s < kShards; ++s) {
    const int r = table.underlying().shard_lease(s).scavenge(ctx);
    if (r > 0) scavenged += r;
    free_ports += table.underlying().shard_lease(s).free_ports(ctx);
  }

  std::printf("processes:            %d\n", kProcs);
  std::printf("updates committed:    %llu\n",
              (unsigned long long)total_completed);
  std::printf("crashes survived:     %llu\n",
              (unsigned long long)total_crashes);
  std::printf("queue repairs:        %llu\n", (unsigned long long)repairs);
  std::printf("slot sum:             %llu\n", (unsigned long long)slot_sum);
  std::printf("mirror mismatches:    %d\n", mirror_mismatches);
  std::printf("dangling intents:     %d\n", dangling);
  std::printf("leases scavenged:     %d\n", scavenged);
  std::printf("ports back in pools:  %d/%d\n", free_ports,
              kShards * kProcs);

  // A crash between intent-clear and release can double-apply one update
  // on retry, so slot_sum may exceed the completion count by at most the
  // crash count - but never fall short, never desync the mirror, and
  // never leave an intent dangling.
  const bool ok = mirror_mismatches == 0 && dangling == 0 &&
                  slot_sum >= total_completed &&
                  slot_sum <= total_completed + total_crashes &&
                  total_completed >= kProcs * kUpdatesPerProc &&
                  free_ports == kShards * kProcs;
  std::printf("consistency:          %s\n", ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}

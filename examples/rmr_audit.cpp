// RMR audit: measure the memory-reference profile of *your own* critical
// sections on both machine models - a demonstration of using the counted
// platform as an analysis tool rather than just a test harness.
//
// Build & run:  ./build/examples/rmr_audit
//
// The same producer/consumer handoff is run twice, once on the CC model
// and once on DSM, and the per-process operation/RMR profile is printed.
// This is the workflow for checking whether an algorithm you build on top
// of the library is DSM-local (the property the paper's Signal object
// exists to provide).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/rme_lock.hpp"
#include "harness/sim_run.hpp"
#include "signal/signal.hpp"

using namespace rme;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

namespace {

void profile(ModelKind kind) {
  constexpr int kProcs = 2;
  constexpr int kRounds = 100;
  SimRun sim(kind, kProcs);
  core::RmeLock<P> lock(sim.world().env, kProcs);

  // A mailbox protected by the lock plus a Signal chain for the handoff.
  typename P::Atomic<int> mailbox;
  mailbox.attach(sim.world().env, rmr::kNoOwner);
  mailbox.init(0);

  int produced = 0, consumed = 0;
  sim.set_body([&](SimProc& h, int pid) {
    lock.lock(h, pid);
    if (pid == 0) {
      mailbox.store(h.ctx, ++produced);
    } else {
      consumed = mailbox.load(h.ctx);
    }
    lock.unlock(h, pid);
  });

  sim::SeededRandom pol(3);
  sim::NoCrash nc;
  std::vector<uint64_t> iters(kProcs, kRounds);
  auto res = sim.run(pol, nc, iters, 80000000);
  if (res.exhausted) {
    std::printf("run exhausted!\n");
    return;
  }

  std::printf("\n[%s model] %d rounds/process\n",
              kind == ModelKind::kCc ? "CC" : "DSM", kRounds);
  std::printf("  %-4s %8s %8s %8s %8s %8s %12s\n", "pid", "reads", "writes",
              "FAS", "steps", "RMRs", "RMR/passage");
  for (int p = 0; p < kProcs; ++p) {
    const auto& c = sim.world().counters(p);
    std::printf("  %-4d %8llu %8llu %8llu %8llu %8llu %12.2f\n", p,
                (unsigned long long)c.reads, (unsigned long long)c.writes,
                (unsigned long long)c.fas, (unsigned long long)c.steps,
                (unsigned long long)c.rmrs,
                static_cast<double>(c.rmrs) / kRounds);
  }
  std::printf("  (consumed=%d produced=%d)\n", consumed, produced);
}

}  // namespace

int main() {
  std::printf("RMR audit of a lock-protected mailbox handoff\n");
  profile(ModelKind::kCc);
  profile(ModelKind::kDsm);
  std::printf(
      "\nReading: on both models RMR/passage is a small constant - the "
      "lock is local-spinning\neverywhere. Rerun with your own body to "
      "audit your data structure.\n");
  return 0;
}

// Quickstart: the rme::svc session layer on real threads.
//
// Build & run:  ./build/examples/quickstart
//
// Sessions are the public acquisition surface (svc/svc.hpp): a Session
// binds one caller identity to one lock, installs its wait policy, mints
// RAII guards, and keeps per-session telemetry. Every acquisition verb
// returns an expected-style result (svc::Expected): the value arm is the
// guard, the error arm says WHY not (kTimeout, kOverloaded, ...). Five
// stops:
//
//   1. rme::RecoverableMutex + Session  - n-process arbitration tree
//      (Theorem 3), pid-addressed, guards minted per passage.
//   2. rme::api::LeasedLock + Session   - RmeLock behind dynamic port
//      leasing (more clients than ports), with a shared ParkPolicy: a
//      release hands off to ONE parked waiter, in park order.
//   3. Deadline verbs                   - acquire_for on a TryLock entry,
//      expected-style results (kTimeout vs a minted guard).
//   4. rme::api::TableLock + BatchGuard - a tiny account bank with atomic
//      multi-account transfers (sorted two-phase locking) and a deadline
//      batch that sheds instead of waiting forever.
//   5. submit() + AcquireRequest        - the async surface: poll between
//      other work, completion callback, caller-controlled waiting.
//
// On the Real platform there is no crash injection - this is the
// production configuration: plain std::atomic, zero instrumentation. See
// recoverable_kv_log.cpp for crash-recovery in action.
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "harness/world.hpp"
#include "svc/svc.hpp"

namespace {

using Real = rme::platform::Real;
using namespace std::chrono_literals;

bool check(const char* what, uint64_t got, uint64_t expect) {
  std::printf("%-28s %llu (expected %llu) -> %s\n", what,
              (unsigned long long)got, (unsigned long long)expect,
              got == expect ? "OK" : "LOST UPDATES");
  return got == expect;
}

}  // namespace

int main() {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 50000;
  constexpr uint64_t kExpect =
      static_cast<uint64_t>(kThreads) * kItersPerThread;

  rme::harness::RealWorld world(kThreads);
  bool ok = true;

  // -- 1. The n-process recoverable mutex, session per thread ------------
  {
    rme::RecoverableMutex<Real> mutex(world.env, kThreads);
    std::printf("arbitration tree: degree %d, height %d\n", mutex.degree(),
                mutex.height());
    uint64_t counter = 0;  // protected by the mutex
    uint64_t contended = 0;
    std::vector<std::thread> threads;
    for (int pid = 0; pid < kThreads; ++pid) {
      threads.emplace_back([&, pid] {
        rme::svc::Session session(mutex, world.proc(pid), pid);
        for (int i = 0; i < kItersPerThread; ++i) {
          auto g = session.acquire().value();  // no admission gate installed
          ++counter;
        }
        static std::mutex agg;
        std::lock_guard<std::mutex> lk(agg);
        contended += session.stats().contended_acquires;
      });
    }
    for (auto& t : threads) t.join();
    ok = check("tree mutex counter:", counter, kExpect) && ok;
    std::printf("   (telemetry: %llu of %llu acquires were contended)\n",
                (unsigned long long)contended, (unsigned long long)kExpect);
  }

  // -- 2. Dynamic port leasing + a shared ParkPolicy ---------------------
  {
    rme::api::LeasedLock<Real> lock(world.env, /*ports=*/kThreads / 2,
                                    /*npids=*/kThreads);
    rme::platform::ParkPolicy park;  // shared: releases unpark waiters
    uint64_t counter = 0;            // protected by the lock
    std::vector<std::thread> threads;
    for (int pid = 0; pid < kThreads; ++pid) {
      threads.emplace_back([&, pid] {
        rme::svc::Session session(lock, world.proc(pid), pid, &park);
        for (int i = 0; i < kItersPerThread; ++i) {
          auto g = session.acquire().value();
          ++counter;
        }
      });
    }
    for (auto& t : threads) t.join();
    ok = check("leased lock counter:", counter, kExpect) && ok;
    // All leases returned to the pool; under quiescence scavenge() finds
    // nothing to repair (no crashes happened on the Real platform).
    auto& ctx = world.proc(0).ctx;
    ok = check("ports back in pool:",
               (uint64_t)lock.underlying().lease().free_ports(ctx),
               kThreads / 2) &&
         ok;
  }

  // -- 3. Deadline verbs on a TryLock entry ------------------------------
  {
    rme::api::TasBaseline<Real> lock(world.env, 2);
    rme::svc::Session holder(lock, world.proc(0), 0);
    rme::svc::Session impatient(lock, world.proc(1), 1);
    auto held = holder.acquire().value();
    auto r = impatient.acquire_for(1ms);  // lock is held: must time out
    const bool timed_out = !r.has_value() && r.error() == rme::svc::Errc::kTimeout;
    std::printf("%-28s %s\n", "deadline verb on held lock:",
                timed_out ? "kTimeout (OK)" : "UNEXPECTED");
    ok = timed_out && ok;
    held.release();
    auto r2 = impatient.acquire_for(100ms);  // free now: guard minted
    ok = (r2.has_value() && r2->held()) && ok;
  }

  // -- 4. The sharded lock table: an account bank with atomic transfers --
  {
    constexpr int kAccounts = 64;
    rme::api::TableLock<Real> table(world.env, /*shards=*/8,
                                    /*ports_per_shard=*/kThreads, kThreads);
    int64_t balance[kAccounts];  // each guarded by its key's shard
    for (auto& b : balance) b = 1000;
    std::vector<std::thread> threads;
    for (int pid = 0; pid < kThreads; ++pid) {
      threads.emplace_back([&, pid] {
        rme::svc::Session session(table, world.proc(pid), pid);
        uint64_t rng = 0x9e3779b9u + static_cast<uint64_t>(pid);
        for (int i = 0; i < kItersPerThread; ++i) {
          rng = rng * 6364136223846793005ull + 1442695040888963407ull;
          const uint64_t from = (rng >> 33) % kAccounts;
          const uint64_t to = (rng >> 13) % kAccounts;
          // Both accounts' shards held at once - crash-consistent sorted
          // 2PL; with single-key guards this transfer would race.
          rme::svc::BatchGuard g(session, {from, to});
          balance[from] -= 1;
          balance[to] += 1;
        }
      });
    }
    for (auto& t : threads) t.join();
    int64_t total = 0;
    for (int64_t b : balance) total += b;
    ok = check("bank conservation:", (uint64_t)total,
               (uint64_t)kAccounts * 1000) &&
         ok;

    // A deadline batch against a held shard sheds cleanly: the acquired
    // prefix is backed out, nothing is left behind.
    rme::svc::Session s0(table, world.proc(0), 0);
    rme::svc::Session s1(table, world.proc(1), 1);
    auto held = s0.acquire(uint64_t{0}).value();
    auto late = s1.acquire_batch_for({uint64_t{0}, uint64_t{1}}, 2ms);
    const bool batch_timed_out =
        !late.has_value() && late.error() == rme::svc::Errc::kTimeout;
    std::printf("%-28s %s\n", "deadline batch on held key:",
                batch_timed_out ? "kTimeout (OK)" : "UNEXPECTED");
    ok = batch_timed_out && ok;
  }

  // -- 5. The async surface: submit() + AcquireRequest -------------------
  {
    rme::api::TasBaseline<Real> lock(world.env, 2);
    rme::svc::Session session(lock, world.proc(0), 0);
    auto request = session.submit().value();  // admission runs at submit
    bool completed = false;
    request.on_complete(
        [&](rme::svc::Guard<rme::api::TasBaseline<Real>>&) {
          completed = true;  // fires inline at the completing poll/wait
        });
    uint64_t other_work = 0;
    while (request.poll() == rme::svc::RequestState::kPending) {
      ++other_work;  // the caller is NOT captive inside acquire()
    }
    auto g = request.take();
    const bool async_ok = completed && g.has_value() && g->held();
    std::printf("%-28s %s\n", "async submit/poll/take:",
                async_ok ? "completed (OK)" : "UNEXPECTED");
    ok = async_ok && ok;
  }

  return ok ? 0 : 1;
}

// Quickstart: the recoverable mutex on real threads.
//
// Build & run:  ./build/examples/quickstart
//
// Demonstrates the public API surface:
//   * RealWorld      - owns the (empty) environment and per-process handles
//   * RecoverableMutex<platform::Real> - the n-process lock (Theorem 3)
//   * lock / unlock with an explicit pid, or the RAII Guard
//
// On the Real platform there is no crash injection - this is the
// production configuration: plain std::atomic, zero instrumentation. See
// recoverable_kv_log.cpp for crash-recovery in action.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/recoverable_mutex.hpp"
#include "harness/world.hpp"

int main() {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 100000;

  rme::harness::RealWorld world(kThreads);
  rme::RecoverableMutex<rme::platform::Real> mutex(world.env, kThreads);
  std::printf("arbitration tree: degree %d, height %d\n", mutex.degree(),
              mutex.height());

  uint64_t counter = 0;  // protected by the mutex

  std::vector<std::thread> threads;
  for (int pid = 0; pid < kThreads; ++pid) {
    threads.emplace_back([&, pid] {
      auto& h = world.proc(pid);
      for (int i = 0; i < kItersPerThread; ++i) {
        rme::RecoverableMutex<rme::platform::Real>::Guard g(mutex, h, pid);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();

  const uint64_t expect =
      static_cast<uint64_t>(kThreads) * kItersPerThread;
  std::printf("counter = %llu (expected %llu) -> %s\n",
              (unsigned long long)counter, (unsigned long long)expect,
              counter == expect ? "OK" : "LOST UPDATES");
  return counter == expect ? 0 : 1;
}

// Quickstart: the public rme::api surface on real threads.
//
// Build & run:  ./build/examples/quickstart
//
// Three API levels, all through the uniform concept + RAII layer
// (api/api.hpp - acquire/release/recover, Guard/KeyGuard):
//
//   1. rme::RecoverableMutex      - n-process arbitration tree (Theorem 3),
//                                   pid-addressed, with api::Guard.
//   2. rme::api::LeasedLock       - RmeLock behind dynamic port leasing:
//                                   more clients than ports, with api::Guard.
//   3. rme::api::TableLock        - sharded key-addressed lock table, with
//                                   api::KeyGuard.
//
// On the Real platform there is no crash injection - this is the
// production configuration: plain std::atomic, zero instrumentation. See
// recoverable_kv_log.cpp for crash-recovery in action.
#include <cstdio>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "harness/world.hpp"

namespace {

using Real = rme::platform::Real;

bool check(const char* what, uint64_t got, uint64_t expect) {
  std::printf("%-28s %llu (expected %llu) -> %s\n", what,
              (unsigned long long)got, (unsigned long long)expect,
              got == expect ? "OK" : "LOST UPDATES");
  return got == expect;
}

}  // namespace

int main() {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 50000;
  constexpr uint64_t kExpect =
      static_cast<uint64_t>(kThreads) * kItersPerThread;

  rme::harness::RealWorld world(kThreads);
  bool ok = true;

  // -- 1. The n-process recoverable mutex (pid-addressed) ----------------
  {
    rme::RecoverableMutex<Real> mutex(world.env, kThreads);
    std::printf("arbitration tree: degree %d, height %d\n", mutex.degree(),
                mutex.height());
    uint64_t counter = 0;  // protected by the mutex
    std::vector<std::thread> threads;
    for (int pid = 0; pid < kThreads; ++pid) {
      threads.emplace_back([&, pid] {
        auto& h = world.proc(pid);
        for (int i = 0; i < kItersPerThread; ++i) {
          rme::api::Guard g(mutex, h, pid);
          ++counter;
        }
      });
    }
    for (auto& t : threads) t.join();
    ok = check("tree mutex counter:", counter, kExpect) && ok;
  }

  // -- 2. Dynamic port leasing: 8 clients share 4 ports ------------------
  {
    rme::api::LeasedLock<Real> lock(world.env, /*ports=*/kThreads / 2,
                                    /*npids=*/kThreads);
    uint64_t counter = 0;  // protected by the lock
    std::vector<std::thread> threads;
    for (int pid = 0; pid < kThreads; ++pid) {
      threads.emplace_back([&, pid] {
        auto& h = world.proc(pid);
        for (int i = 0; i < kItersPerThread; ++i) {
          rme::api::Guard g(lock, h, pid);
          ++counter;
        }
      });
    }
    for (auto& t : threads) t.join();
    ok = check("leased lock counter:", counter, kExpect) && ok;
    // All leases returned to the pool; under quiescence scavenge() finds
    // nothing to repair (no crashes happened on the Real platform).
    auto& ctx = world.proc(0).ctx;
    ok = check("ports back in pool:",
               (uint64_t)lock.underlying().lease().free_ports(ctx),
               kThreads / 2) &&
         ok;
  }

  // -- 3. The sharded lock table: a tiny account bank, key-addressed -----
  {
    constexpr int kAccounts = 64;
    rme::api::TableLock<Real> table(world.env, /*shards=*/8,
                                    /*ports_per_shard=*/kThreads, kThreads);
    uint64_t balance[kAccounts] = {};  // each guarded by its key's shard
    std::vector<std::thread> threads;
    for (int pid = 0; pid < kThreads; ++pid) {
      threads.emplace_back([&, pid] {
        auto& h = world.proc(pid);
        uint64_t rng = 0x9e3779b9u + static_cast<uint64_t>(pid);
        for (int i = 0; i < kItersPerThread; ++i) {
          rng = rng * 6364136223846793005ull + 1442695040888963407ull;
          const uint64_t account = (rng >> 33) % kAccounts;
          rme::api::KeyGuard g(table, h, pid, account);
          ++balance[account];
        }
      });
    }
    for (auto& t : threads) t.join();
    uint64_t total = 0;
    for (uint64_t b : balance) total += b;
    ok = check("table bank total:", total, kExpect) && ok;
  }

  return ok ? 0 : 1;
}

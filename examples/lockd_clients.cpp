// The lock-service daemon end to end: N forked client PROCESSES dial an
// rme_lockd daemon over its unix socket and contend for the same key.
// None of the clients ever attaches the shared-memory region - the
// daemon owns it - yet mutual exclusion holds across all of them, which
// this example witnesses with a plain (non-atomic) counter in an
// ordinary MAP_SHARED page: any two clients inside the critical section
// at once would lose an update or trip the overlap flag.
//
// By default the daemon runs in-process (a Reactor on a background
// thread), so the example is self-contained:
//
//   ./build/examples/lockd_clients
//
// Set RME_LOCKD_SOCK to aim the clients at an externally started daemon
// instead (this is how the CI lockd job runs it):
//
//   ./build/tools/rme_lockd --socket=/tmp/l.sock --region=/rme_l &
//   RME_LOCKD_SOCK=/tmp/l.sock ./build/examples/lockd_clients
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "lockd/lockd.hpp"

namespace {

constexpr int kClients = 4;
constexpr int kIters = 300;
constexpr uint64_t kKey = 42;  // everyone fights over one key

// The witness lives OUTSIDE the lock's region: a plain anonymous shared
// page. The daemon is the only mutual-exclusion mechanism in play.
struct Witness {
  uint64_t counter = 0;               // non-atomic by design
  std::atomic<uint32_t> in_cs{0};     // occupancy flag
  std::atomic<uint32_t> overlaps{0};  // ME violations observed
};

int run_client(const std::string& sock, int idx, Witness* w) {
  rme::lockd::Client c;
  // The in-process daemon may still be binding; dial with retries.
  for (int tries = 0; !c.connect({sock, /*use_eventfd=*/(idx == 0)});) {
    if (++tries > 200) {
      std::fprintf(stderr, "client %d: cannot reach daemon at %s\n", idx,
                   sock.c_str());
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // One grant per loop turn; client 0 exercises the poll-able path
  // (submit now, collect when the daemon kicks our eventfd), the rest
  // use the blocking verb.
  auto acquire_one = [&]() -> rme::svc::Expected<rme::lockd::Guard> {
    if (idx != 0) return c.acquire(kKey);
    const uint64_t id = c.submit(kKey);
    if (id == 0) return rme::svc::Errc::kCancelled;
    for (;;) {
      auto r = c.try_take(id);
      if (r) return std::move(*r);
      pollfd p{c.event_fd(), POLLIN, 0};
      ::poll(&p, 1, 100);
      c.drain_event_fd();
    }
  };
  // kOverloaded is the admission gate doing its job; back off and retry
  // like a well-behaved client.
  auto acquire_retrying = [&]() -> rme::svc::Expected<rme::lockd::Guard> {
    for (;;) {
      auto g = acquire_one();
      if (g || g.error() != rme::svc::Errc::kOverloaded) return g;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  for (int i = 0; i < kIters; ++i) {
    auto g = acquire_retrying();
    if (!g) return 1;
    // Critical section: the load-modify-store is deliberately racy; only
    // the daemon's grant keeps it single-writer.
    if (w->in_cs.fetch_add(1) != 0) w->overlaps.fetch_add(1);
    const uint64_t v = w->counter;
    w->counter = v + 1;
    w->in_cs.fetch_sub(1);
  }
  // One multi-key hold for good measure: both shards granted atomically.
  for (;;) {
    auto b = c.acquire_batch({kKey, kKey + 1});
    if (b) return b->shard_mask() != 0 ? 0 : 1;
    if (b.error() != rme::svc::Errc::kOverloaded) return 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

int main() {
  const char* env_sock = std::getenv("RME_LOCKD_SOCK");
  const std::string tag = std::to_string(::getpid());
  const std::string sock =
      env_sock != nullptr ? env_sock : "/tmp/rme_lockd_ex_" + tag + ".sock";

  auto* w = static_cast<Witness*>(
      ::mmap(nullptr, sizeof(Witness), PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_ANONYMOUS, -1, 0));
  if (w == MAP_FAILED) return 1;
  new (w) Witness();

  // Self-contained mode: host the daemon on a background thread.
  rme::lockd::Reactor* reactor = nullptr;
  std::thread loop;
  if (env_sock == nullptr) {
    rme::lockd::Options opt;
    opt.socket_path = sock;
    opt.region = "/rme_lockd_ex_" + tag;
    opt.shards = 4;
    opt.identities = 4;
    reactor = new rme::lockd::Reactor(opt);
    loop = std::thread([reactor] { reactor->run(); });
  }

  pid_t kids[kClients];
  for (int i = 0; i < kClients; ++i) {
    kids[i] = ::fork();
    if (kids[i] == 0) ::_exit(run_client(sock, i, w));
  }
  int failures = 0;
  for (int i = 0; i < kClients; ++i) {
    int status = 0;
    ::waitpid(kids[i], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
  }

  if (reactor != nullptr) {
    reactor->stop();
    loop.join();
    const auto& s = reactor->stats();
    std::printf("daemon: %llu grants, %llu releases over %llu connections\n",
                (unsigned long long)s.granted, (unsigned long long)s.released,
                (unsigned long long)s.accepted);
    delete reactor;
  }

  const uint64_t expect = uint64_t{kClients} * kIters;
  std::printf("counter=%llu expect=%llu overlaps=%u failures=%d\n",
              (unsigned long long)w->counter, (unsigned long long)expect,
              w->overlaps.load(), failures);
  const bool ok = w->counter == expect && w->overlaps.load() == 0 &&
                  failures == 0;
  std::printf(ok ? "OK: daemon-mediated mutual exclusion across %d processes\n"
                 : "FAIL: lost updates or client failures\n",
              kClients);
  ::munmap(w, sizeof(Witness));
  return ok ? 0 : 1;
}

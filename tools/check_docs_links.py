#!/usr/bin/env python3
"""Check the docs tree: every internal link in docs/*.md (and README.md)
must resolve, and README.md must link every docs page.

Checked link shapes (markdown inline links only):

  [text](docs/svc.md)           relative file links - target must exist
  [text](architecture.md#layer) anchors are checked against the target's
                                headings (GitHub-style slugs)
  [text](https://...)           external links are NOT fetched (CI must
                                not depend on the network); skipped

Usage: check_docs_links.py [repo_root]
Exits non-zero listing every unresolved link, and when README.md fails
to link any docs/*.md page.
"""
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def slugify(heading):
    """GitHub-style anchor slug."""
    s = heading.strip().lower()
    s = re.sub(r"[`*_~]", "", s)
    s = re.sub(r"[^\w\- ]", "", s)
    return s.replace(" ", "-")


def strip_code_fences(text):
    """Drop fenced code blocks: '#' lines inside them are not headings,
    and bracket-paren syntax in code samples is not a markdown link."""
    out, fenced = [], False
    for line in text.split("\n"):
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def headings_of(path):
    slugs = set()
    with open(path, encoding="utf-8") as f:
        for line in strip_code_fences(f.read()).split("\n"):
            if line.startswith("#"):
                slugs.add(slugify(line.lstrip("#")))
    return slugs


def check_file(root, md):
    errors = []
    base = os.path.dirname(md)
    with open(md, encoding="utf-8") as f:
        text = strip_code_fences(f.read())
    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):  # same-file anchor
            if slugify(target[1:]) not in headings_of(md):
                errors.append(f"{md}: dead anchor {target}")
            continue
        path_part, _, anchor = target.partition("#")
        resolved = os.path.normpath(os.path.join(base, path_part))
        if not os.path.exists(os.path.join(root, resolved)) and \
           not os.path.exists(resolved):
            errors.append(f"{md}: broken link {target}")
            continue
        if anchor:
            tgt = resolved if os.path.exists(resolved) else \
                os.path.join(root, resolved)
            if os.path.isfile(tgt) and tgt.endswith(".md"):
                if slugify(anchor) not in headings_of(tgt):
                    errors.append(f"{md}: dead anchor {target}")
    return errors


def main(argv):
    root = argv[1] if len(argv) > 1 else "."
    os.chdir(root)
    errors = []
    docs = sorted(
        os.path.join("docs", f) for f in os.listdir("docs")
        if f.endswith(".md"))
    for md in ["README.md"] + docs:
        errors.extend(check_file(".", md))
    # README must link every docs page.
    with open("README.md", encoding="utf-8") as f:
        readme = f.read()
    for md in docs:
        if md not in readme:
            errors.append(f"README.md: does not link {md}")
    for e in errors:
        print(f"ERROR: {e}", file=sys.stderr)
    print(f"checked README.md + {len(docs)} docs page(s), "
          f"{len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// rme_soak: the cts chaos-soak driver binary.
//
// Composes the rme::cts scenario zoo (src/cts/) against one live
// shm::ShmWorld and real fork+exec'd shm_worker processes. Every run
// prints exactly one SOAK_JSON summary line; a failing run additionally
// prints one SOAK_FAIL line per anomaly and a SOAK_REPRO line whose
// command replays the run from its seed, and exits 1.
//
// Usage:
//   rme_soak [--seed=N] [--procs=N] [--rounds=N | --duration=SECONDS]
//            [--passages=N] [--dwell-us=N] [--arms=LIST|all]
//            [--kill-mean-ms=F] [--timeout-ms=N] [--worker=PATH]
//            [--report=FILE] [--teeth]
//
//   --seed        soak seed; omitted: derived (steady ticks ^ pid) and
//                 PRINTED - every run is reproducible after the fact
//   --rounds      fixed round count (repro mode); 0 = run by --duration
//   --arms        '+'-separated subset of: kill_storm restart_flood
//                 region_pressure overload pid_reuse clock_skew
//                 pid_exhaust no_futex_flip
//   --teeth       checker-teeth fault injection: recovery workers SKIP
//                 the recovery replay; the soak MUST fail (CI asserts
//                 exactly that)
//   --report      also write the summary + failure lines to FILE (the
//                 nightly workflow's artifact)
//   --worker      shm_worker binary (default: compiled-in build path)
//   --region      shm region name (default: derived from the pid); name
//                 it to attach `rme-regionctl` to the live soak
//
// Exit: 0 clean, 1 anomalies found, 2 bad usage.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "cts/cts.hpp"

namespace {

#ifndef RME_SHM_WORKER_PATH
#define RME_SHM_WORKER_PATH ""
#endif

bool parse_u64(const char* s, uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 0);
  return end != s && *end == '\0';
}

int usage() {
  std::fprintf(
      stderr,
      "usage: rme_soak [--seed=N] [--procs=N] [--rounds=N] "
      "[--duration=SECONDS]\n"
      "                [--passages=N] [--dwell-us=N] [--arms=LIST|all]\n"
      "                [--kill-mean-ms=F] [--timeout-ms=N] "
      "[--worker=PATH]\n"
      "                [--region=/NAME] [--report=FILE] [--teeth]\n"
      "arms: kill_storm restart_flood region_pressure overload pid_reuse "
      "clock_skew pid_exhaust no_futex_flip\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  rme::cts::SoakOptions opt;
  opt.seed = 0;  // 0 = derive below
  opt.worker = RME_SHM_WORKER_PATH;
  std::string report_path;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&a](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      if (a.compare(0, n, flag) == 0 && a.size() > n && a[n] == '=') {
        return a.c_str() + n + 1;
      }
      return nullptr;
    };
    uint64_t u = 0;
    if (const char* v = val("--seed")) {
      if (!parse_u64(v, opt.seed)) return usage();
    } else if (const char* v = val("--procs")) {
      if (!parse_u64(v, u)) return usage();
      opt.procs = static_cast<int>(u);
    } else if (const char* v = val("--rounds")) {
      if (!parse_u64(v, u)) return usage();
      opt.rounds = static_cast<int>(u);
    } else if (const char* v = val("--duration")) {
      if (!parse_u64(v, u)) return usage();
      opt.duration = std::chrono::seconds(u);
    } else if (const char* v = val("--passages")) {
      if (!parse_u64(v, u)) return usage();
      opt.passages = static_cast<int>(u);
    } else if (const char* v = val("--dwell-us")) {
      if (!parse_u64(v, u)) return usage();
      opt.dwell_us = static_cast<int>(u);
    } else if (const char* v = val("--arms")) {
      opt.arms = rme::cts::parse_arms(v);
      if (opt.arms == 0) return usage();
    } else if (const char* v = val("--kill-mean-ms")) {
      opt.kill_mean_ms = std::atof(v);
      if (opt.kill_mean_ms <= 0.0) return usage();
    } else if (const char* v = val("--timeout-ms")) {
      if (!parse_u64(v, u)) return usage();
      opt.worker_timeout = std::chrono::milliseconds(u);
    } else if (const char* v = val("--worker")) {
      opt.worker = v;
    } else if (const char* v = val("--region")) {
      opt.region = v;  // named so an inspector (rme-regionctl) can attach
    } else if (const char* v = val("--report")) {
      report_path = v;
    } else if (a == "--teeth") {
      opt.teeth = true;
    } else {
      return usage();
    }
  }
  if (opt.worker.empty()) {
    std::fprintf(stderr, "rme_soak: no --worker and no built-in path\n");
    return 2;
  }
  if (opt.seed == 0) {
    // Derived, never hidden: the whole point is that EVERY run - ad hoc
    // ones included - is replayable from its printed SOAK_JSON seed.
    // steady_clock ticks, not wall clock (clock discipline holds even
    // here); xor'd with the pid so parallel CI shards diverge.
    opt.seed = static_cast<uint64_t>(
                   std::chrono::steady_clock::now().time_since_epoch()
                       .count()) ^
               (static_cast<uint64_t>(::getpid()) << 32);
    if (opt.seed == 0) opt.seed = 1;
  }

  rme::cts::Soak soak(std::move(opt));
  const rme::cts::SoakReport rep = soak.run();

  std::printf("%s\n", rep.json_line().c_str());
  for (const std::string& line : rep.failure_lines()) {
    std::printf("%s\n", line.c_str());
  }
  std::fflush(stdout);

  if (!report_path.empty()) {
    if (std::FILE* f = std::fopen(report_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", rep.json_line().c_str());
      for (const std::string& line : rep.failure_lines()) {
        std::fprintf(f, "%s\n", line.c_str());
      }
      std::fclose(f);
    } else {
      std::fprintf(stderr, "rme_soak: cannot write report %s\n",
                   report_path.c_str());
    }
  }
  return rep.ok() ? 0 : 1;
}

// rme_lockd: the lock-service daemon binary.
//
//   rme_lockd --socket=/tmp/rme_lockd.sock --region=/rme_lockd
//             [--shards=8] [--identities=8] [--bytes=16777216]
//             [--max-pending=4096] [--no-admission]
//
// Creates the region when it does not exist; ATTACHES when it does (the
// restart path: the SessionLease takeovers replay any recovery the dead
// incarnation owed before the socket opens). Prints exactly one
//
//   LOCKD_READY socket=<path> region=<name> shards=<n> pid=<pid>
//
// line on stdout once it is accepting connections (tests and CI gate on
// it), serves until SIGTERM/SIGINT, then prints one LOCKD_STATS summary
// line (a JSON object, util/json.hpp renderer, reactor counters plus the
// region arena's totals) and exits 0. Exit codes: 0 clean, 2 setup
// failure (bad socket path, busy region identities, shm errors).
#include <signal.h>
#include <stdio.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "lockd/lockd.hpp"
#include "obs/obs.hpp"
#include "shm/region.hpp"
#include "util/json.hpp"

namespace {

rme::lockd::Reactor* g_reactor = nullptr;

void on_signal(int) {
  if (g_reactor != nullptr) g_reactor->stop();  // eventfd write: signal-safe
}

bool arg_value(const char* arg, const char* name, const char** out) {
  const size_t n = ::strlen(name);
  if (::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

void usage() {
  ::fprintf(stderr,
            "usage: rme_lockd --socket=PATH --region=NAME [--shards=N]\n"
            "                 [--identities=N] [--bytes=N] [--max-pending=N]\n"
            "                 [--no-admission]\n");
}

}  // namespace

int main(int argc, char** argv) {
  rme::lockd::Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (arg_value(argv[i], "--socket", &v)) {
      opt.socket_path = v;
    } else if (arg_value(argv[i], "--region", &v)) {
      opt.region = v;
    } else if (arg_value(argv[i], "--shards", &v)) {
      opt.shards = ::atoi(v);
    } else if (arg_value(argv[i], "--identities", &v)) {
      opt.identities = ::atoi(v);
    } else if (arg_value(argv[i], "--bytes", &v)) {
      opt.region_bytes = static_cast<size_t>(::atoll(v));
    } else if (arg_value(argv[i], "--max-pending", &v)) {
      opt.max_pending = static_cast<size_t>(::atoll(v));
    } else if (::strcmp(argv[i], "--no-admission") == 0) {
      opt.admission = false;
    } else {
      usage();
      return 2;
    }
  }
  if (opt.socket_path.empty() || opt.region.empty()) {
    usage();
    return 2;
  }

  // Serving thousands of connections needs headroom over the default
  // soft fd limit; raise it to the hard cap (best effort).
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &rl);
  }

  try {
    rme::lockd::Reactor reactor(opt);
    g_reactor = &reactor;
    struct sigaction sa{};
    sa.sa_handler = on_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    ::printf("LOCKD_READY socket=%s region=%s shards=%d pid=%d\n",
             opt.socket_path.c_str(), opt.region.c_str(),
             reactor.table().shards(), static_cast<int>(::getpid()));
    ::fflush(stdout);

    reactor.run();

    const rme::lockd::ReactorStats& s = reactor.stats();
    const rme::obs::Snapshot snap =
        rme::obs::Snapshot::read(reactor.world().metrics(), opt.identities);
    ::printf("%s\n",
             rme::util::JsonLine("LOCKD_STATS")
                 .num("accepted", s.accepted)
                 .num("granted", s.granted)
                 .num("released", s.released)
                 .num("sheds", s.sheds)
                 .num("timeouts", s.timeouts)
                 .num("cancels", s.cancels)
                 .num("disconnect_releases", s.disconnect_releases)
                 .num("bad_frames", s.bad_frames)
                 .num("arena_acquires", snap.total[rme::obs::kAcquires])
                 .num("arena_releases", snap.total[rme::obs::kReleases])
                 .num("arena_handoff_rmrs", snap.total[rme::obs::kHandoffRmrs])
                 .str()
                 .c_str());
    g_reactor = nullptr;
    return 0;
  } catch (const rme::lockd::LockdError& e) {
    ::fprintf(stderr, "rme_lockd: %s\n", e.what());
  } catch (const rme::shm::ShmError& e) {
    ::fprintf(stderr, "rme_lockd: shm error: %s\n", e.what());
  }
  return 2;
}

#!/usr/bin/env python3
"""Validate the BENCH_JSON / SOAK_JSON line schemas.

Usage: check_bench_json.py <output-file>...

Every line prefixed "BENCH_JSON " must parse as JSON and carry a "bench"
key. Rows from the registry-driven benches must additionally carry the
keys that make them joinable across PRs:

  * lock=<registry-name>  on throughput / lock-table / svc rows;
  * policy=<policy-name> AND admission=<admission-name> plus
    p50_ns/p99_ns on every bench_svc row (svc_latency and the
    svc_overload shed-vs-collapse scenario, which also reports its
    shed_rate).

Every line prefixed "SOAK_JSON " (the rme_soak chaos driver's one-line
summary; see docs/soak.md) must parse as JSON and carry the full soak
schema - above all the `seed` that makes the run reproducible and the
`anomalies` count CI gates on.

Every line prefixed "METRICS_JSON " (a snapshot of a region's
obs::MetricsArena - rme-regionctl dump, the CI obs job; see
docs/observability.md) must parse as JSON, carry the full snapshot
schema, and be internally consistent: contended <= acquires, histogram
mass == acquires, handoff_rmrs <= releases (the fair-handoff bound),
and 32 buckets per histogram.

Exits non-zero (listing offenders) on any violation, or when an output
file contains no BENCH_JSON, SOAK_JSON or METRICS_JSON lines at all.
"""
import json
import sys

PREFIX = "BENCH_JSON "
SOAK_PREFIX = "SOAK_JSON "
METRICS_PREFIX = "METRICS_JSON "

# Every key of the rme_soak summary line (src/cts/soak.hpp emits them
# unconditionally; a missing one means the schemas drifted).
SOAK_REQUIRED_KEYS = [
    "seed", "procs", "rounds", "arms", "teeth", "kills", "restarts",
    "takeovers", "spawns", "acquires", "releases", "sheds", "timeouts",
    "audits", "anomalies", "arena_high_water",
]

# bench-field value -> additionally required keys.
REQUIRED_KEYS = {
    "throughput": ["lock"],
    "lock_table_throughput": ["lock"],
    "lock_table_rmr": ["lock"],
    "svc_latency": ["lock", "policy", "admission", "p50_ns", "p99_ns"],
    "svc_overload": ["lock", "policy", "admission", "p50_ns", "p99_ns",
                     "shed_rate"],
    # Cross-process arm vs single-process baseline (bench_shm): `world`
    # distinguishes them (shm = two OS processes on one region) and
    # `handoff` names the parked-waiter wake channel (condvar = the
    # process-local lot, timed = cross-process with no wake channel,
    # futex = the region-resident futex lot); every row books the
    # measured session's handoff_rmrs and the lot's mean wake latency.
    "shm_contention": ["lock", "world", "procs", "handoff", "p50_ns",
                       "p99_ns", "handoff_rmrs", "wake_ns"],
    # The park-wake ping (bench_shm): choreographed parent/child handoff
    # over the raw region lot; the futex arm must report timeouts == 0
    # (CI asserts it - a nonzero count means a wake was lost).
    "shm_handoff": ["handoff", "grants", "timeouts", "wake_ns"],
    # The lock-service daemon sweep (bench_lockd): N socket clients into
    # one reactor; `admission` is wait_trend or none, p50/p99 cover the
    # ADMITTED grants only, shed_rate the front-gate rejections.
    "lockd": ["clients", "admission", "p50_ns", "p99_ns", "shed_rate"],
}


# Every key of a METRICS_JSON snapshot line (src/obs/snapshot.hpp's
# metrics_json_line emits them unconditionally).
METRICS_REQUIRED_KEYS = [
    "region", "pids", "incarnations", "acquires", "releases", "contended",
    "sheds", "timeouts", "crash_recoveries", "handoff_rmrs",
    "acquire_wait_count", "wake_count", "wake_tail",
    "acquire_wait_buckets", "wake_buckets", "torn_rows",
]


def check_metrics_row(where, payload, errors):
    try:
        row = json.loads(payload)
    except json.JSONDecodeError as e:
        errors.append(f"{where}: unparseable METRICS_JSON ({e})")
        return
    for key in METRICS_REQUIRED_KEYS:
        if key not in row:
            errors.append(f"{where}: METRICS_JSON missing '{key}'")
            return
    # Internal consistency of one snapshot (cross-snapshot monotonicity
    # is the CI obs job's diff check, not ours).
    if row["contended"] > row["acquires"]:
        errors.append(f"{where}: contended {row['contended']} exceeds "
                      f"acquires {row['acquires']}")
    if row["acquire_wait_count"] != row["acquires"]:
        errors.append(f"{where}: acquire-wait histogram mass "
                      f"{row['acquire_wait_count']} != acquires "
                      f"{row['acquires']} (torn or drifted snapshot)")
    if row["handoff_rmrs"] > row["releases"]:
        errors.append(f"{where}: handoff_rmrs {row['handoff_rmrs']} "
                      f"exceed releases {row['releases']}")
    for hist in ("acquire_wait_buckets", "wake_buckets"):
        if not isinstance(row[hist], list) or len(row[hist]) != 32:
            errors.append(f"{where}: {hist} is not a 32-bucket array")


def check_soak_row(where, payload, errors):
    try:
        row = json.loads(payload)
    except json.JSONDecodeError as e:
        errors.append(f"{where}: unparseable SOAK_JSON ({e})")
        return
    for key in SOAK_REQUIRED_KEYS:
        if key not in row:
            errors.append(f"{where}: SOAK_JSON missing '{key}'")


def check_file(path):
    errors = []
    rows = 0
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            where = f"{path}:{lineno}"
            if line.startswith(SOAK_PREFIX):
                rows += 1
                check_soak_row(where, line[len(SOAK_PREFIX):], errors)
                continue
            if line.startswith(METRICS_PREFIX):
                rows += 1
                check_metrics_row(where, line[len(METRICS_PREFIX):], errors)
                continue
            if not line.startswith(PREFIX):
                continue
            rows += 1
            try:
                row = json.loads(line[len(PREFIX):])
            except json.JSONDecodeError as e:
                errors.append(f"{where}: unparseable BENCH_JSON ({e})")
                continue
            bench = row.get("bench")
            if bench is None:
                errors.append(f"{where}: missing 'bench' key")
                continue
            for key in REQUIRED_KEYS.get(bench, []):
                if key not in row:
                    errors.append(f"{where}: bench={bench} missing '{key}'")
    if rows == 0:
        errors.append(f"{path}: no BENCH_JSON, SOAK_JSON or METRICS_JSON "
                      "lines emitted")
    return rows, errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    total_rows = 0
    all_errors = []
    for path in argv[1:]:
        rows, errors = check_file(path)
        total_rows += rows
        all_errors.extend(errors)
    for e in all_errors:
        print(f"ERROR: {e}", file=sys.stderr)
    print(f"checked {len(argv) - 1} file(s), {total_rows} JSON row(s), "
          f"{len(all_errors)} error(s)")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// shm_worker: the child-process side of the cross-process kill matrix.
//
// Spawned (fork+exec) by tests/test_shm_fork.cpp and driven through the
// in-region StageBoard: the worker attaches the named region, claims its
// logical pid, walks to the requested stage and FREEZES there, waiting to
// be SIGKILL'd (the whole point) or released. The `recover-run` role is
// the restart path: it takes over the dead incarnation's pid slot
// (epoch-fenced), replays recovery with a visitor that audits the CsProbe
// INSIDE the re-entered critical section (the CSR witness: our stale
// probe claim must still be there - nobody else may have entered), then
// runs clean contended passages.
//
// Usage: shm_worker <region> <pid> <role> [args...]
//   roles:
//     freeze-claimed                  claim pid + open session, freeze
//     freeze-cs <key>                 acquire key, freeze inside the CS
//     freeze-released <key>           full clean passage, freeze after
//     freeze-batch <k1> <k2>          hold a 2-key batch, freeze
//     recover-run <n> <k1> [k2]       take over a dead pid, replay
//                                     recovery (+probe audit), run n
//                                     clean passages (plus batches when
//                                     two keys are given), announce done
//     run <n> <key>                   n clean passages (contention load)
//     park-acquire <key>              one PARKED passage: a ParkPolicy
//                                     with tiny spin budgets and a long
//                                     flat nap, so the wait sleeps on the
//                                     pid's in-region wait word until a
//                                     releaser's futex handoff grants it;
//                                     logs the grant order (fx.grant_at)
//     park-run <n> <key>              n parked passages; self-audits the
//                                     fair-handoff invariant
//                                     handoff_rmrs <= releases
//     recover-parked <key>            take over a pid that died PARKED
//                                     (held nothing): replay recovery,
//                                     audit the target shard's probe is
//                                     unowned, then one parked passage
//
//   cts soak roles (driven by src/cts/soak.hpp via tools/rme_soak.cpp;
//   all flush SessionStats into the region's SoakCells before kDone):
//     soak-run <n> <key> <dwell_us>   announce kClaimed (the storm's
//                                     "safe to kill" gate), then n
//                                     audited passages with a dwell
//                                     sleep between them
//     soak-recover <n> <key> [teeth]  claim a storm victim's pid: on
//                                     takeover, replay recovery with a
//                                     TOLERANT probe visitor (a victim
//                                     killed at a random instant may or
//                                     may not have been inside the CS)
//                                     and count the takeover; a fresh
//                                     claim (the victim won the race and
//                                     exited clean) is accepted. Then n
//                                     passages. The literal arg `teeth`
//                                     is the checker-teeth fault: SKIP
//                                     the recovery replay and the
//                                     passages - the soak's audits must
//                                     catch the leak this leaves
//     soak-overload <n> <key>         n open-loop acquisitions through a
//                                     WaitTrendAdmission gate; sheds are
//                                     accepted and counted
//     soak-deadline <n> <key> <seed>  n deadline acquisitions with
//                                     seed-determined skew: deadlines
//                                     randomly already-expired or a few
//                                     hundred microseconds out (the
//                                     clock-jump simulation; steady_clock
//                                     waits turn skew into kTimeout,
//                                     never a hang)
//     claim-probe                     registry-only: try claim(pid) on
//                                     the named region, release on
//                                     success. Exit 0 = claimed,
//                                     2 = refused, with NO stderr either
//                                     way (the pid_exhaust arm's silent
//                                     probe; never reads the root)
//     grow-run <chunk> <iters>        registry-only (the grow_storm arm):
//                                     claim the pid, hammer the arena
//                                     with try_allocate(chunk) x iters to
//                                     force region growth, release. Exit
//                                     0 = at least one allocation landed,
//                                     2 = none (or shm refusal); silent,
//                                     never reads the root. SIGKILL-able
//                                     at any instant - a victim may die
//                                     holding the grow guard, which the
//                                     next grower must survive
//     compact-rival <total> <key>     the live rival of a quiesce-and-
//                                     compact pass: bursts of ~5 clean
//                                     passages with a release+sleep gap
//                                     between bursts; when a burst hits
//                                     the quiesce gate (ShmError) it
//                                     RE-ATTACHES by name and retries -
//                                     landing on the republished object.
//                                     Announces kDone after all passages
//
// Exit codes: 0 ok; 2 shm error (busy slot, bad region); 3 bad args;
// 4 recovery audit failure (probe owner unexpectedly changed); 5 the
// role expected a takeover but the claim was fresh; 6 fair-handoff
// invariant violated (handoff_rmrs > releases).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "cts/rng.hpp"

#include "api/api.hpp"
#include "harness/fork_scenario.hpp"
#include "platform/wait.hpp"
#include "shm/shm.hpp"
#include "svc/svc.hpp"

namespace {

using rme::harness::CsProbe;
using rme::harness::ShmKillFixture;
using rme::harness::Stage;
using Table = rme::api::TableLock<rme::platform::Real>;
using Fixture = ShmKillFixture<Table>;
using Lease = rme::shm::SessionLease<Table>;

uint64_t probe_id(int pid) { return static_cast<uint64_t>(pid) + 1; }

// ParkPolicy options for the park roles: spin/yield budgets tiny so the
// wait parks almost immediately, naps long and FLAT (min == max) so a
// granted futex wake always beats the park timeout - the tests assert
// "zero timeout wakes in steady state" against exactly this shape.
rme::platform::ParkPolicy::Options park_opts() {
  rme::platform::ParkPolicy::Options o;
  o.spin_limit = 4;
  o.yield_limit = 8;
  o.min_park = std::chrono::seconds(2);
  o.max_park = std::chrono::seconds(2);
  return o;
}

// One parked passage with grant-order logging: the probe witnesses the
// CS, the fixture's grant log records when this pid's acquisition came
// through relative to its rivals'.
void parked_passage(Lease& lease, Fixture& fx, int pid, uint64_t key) {
  auto g = lease->acquire(key).value();
  fx.log_grant(pid);
  CsProbe& p = fx.probes[g.shard()];
  p.enter(probe_id(pid));
  p.exit(probe_id(pid));
}

// One audited clean passage: acquire, witness the CS, release.
void passage(Lease& lease, Fixture& fx, int pid, uint64_t key) {
  auto g = lease->acquire(key).value();
  CsProbe& p = fx.probes[g.shard()];
  p.enter(probe_id(pid));
  p.exit(probe_id(pid));
}

// The two-key batch witness dance: claim both shards' probes (deduped
// when the keys collide onto one shard), then clear them. enter() and
// exit() run while the batch holds BOTH shards, so the probes see the
// atomic hold.
void batch_probes_enter(Fixture& fx, int pid, uint64_t k1, uint64_t k2) {
  const int s1 = fx.table.shard_for_key(k1);
  const int s2 = fx.table.shard_for_key(k2);
  fx.probes[s1].enter(probe_id(pid));
  if (s2 != s1) fx.probes[s2].enter(probe_id(pid));
}
void batch_probes_exit(Fixture& fx, int pid, uint64_t k1, uint64_t k2) {
  const int s1 = fx.table.shard_for_key(k1);
  const int s2 = fx.table.shard_for_key(k2);
  fx.probes[s1].exit(probe_id(pid));
  if (s2 != s1) fx.probes[s2].exit(probe_id(pid));
}

int run_role(const std::string& role, rme::shm::ShmWorld& world, Fixture& fx,
             int pid, int argc, char** argv) {
  if (role == "freeze-claimed") {
    Lease lease(world, fx.table, pid);
    fx.board.freeze_at(pid, Stage::kClaimed);
    return 0;
  }
  if (role == "freeze-cs") {
    if (argc < 1) return 3;
    const uint64_t key = std::strtoull(argv[0], nullptr, 0);
    Lease lease(world, fx.table, pid);
    auto g = lease->acquire(key).value();
    fx.probes[g.shard()].enter(probe_id(pid));
    fx.board.freeze_at(pid, Stage::kInCs);  // SIGKILL lands here
    // Released instead of killed: finish the passage cleanly.
    fx.probes[g.shard()].exit(probe_id(pid));
    return 0;
  }
  if (role == "freeze-released") {
    if (argc < 1) return 3;
    const uint64_t key = std::strtoull(argv[0], nullptr, 0);
    Lease lease(world, fx.table, pid);
    passage(lease, fx, pid, key);
    fx.board.freeze_at(pid, Stage::kReleased);  // lock free, slot claimed
    return 0;
  }
  if (role == "freeze-batch") {
    if (argc < 2) return 3;
    const uint64_t k1 = std::strtoull(argv[0], nullptr, 0);
    const uint64_t k2 = std::strtoull(argv[1], nullptr, 0);
    Lease lease(world, fx.table, pid);
    auto b = lease->acquire_batch({k1, k2}).value();
    batch_probes_enter(fx, pid, k1, k2);
    fx.board.freeze_at(pid, Stage::kBatchHeld);  // SIGKILL lands here
    batch_probes_exit(fx, pid, k1, k2);
    return 0;
  }
  if (role == "recover-run") {
    if (argc < 2) return 3;
    const int n = std::atoi(argv[0]);
    const uint64_t k1 = std::strtoull(argv[1], nullptr, 0);
    const bool batch = argc >= 3;
    const uint64_t k2 = batch ? std::strtoull(argv[2], nullptr, 0) : 0;
    bool audit_failed = false;
    // Recovery with an in-CS probe audit: the visitor runs INSIDE each
    // re-entered critical section (lease-held shards only), where
    // clearing our dead incarnation's probe claim is race-free. The claim
    // still being OURS is the cross-process CSR witness: nobody else can
    // have entered a CS our crash left owned. Anyone else's id there is
    // an ME violation.
    Lease lease(world, fx.table, pid, nullptr, nullptr,
                [&](rme::svc::Session<Table>&) {
                  fx.table.underlying().recover(
                      world.proc(pid), pid,
                      [&](Table::Proc&, int shard) {
                        CsProbe& p = fx.probes[shard];
                        const uint64_t prev = p.owner.exchange(
                            0, std::memory_order_acq_rel);
                        if (prev != probe_id(pid)) audit_failed = true;
                      });
                });
    if (!lease.restarted()) return 5;  // the matrix expected a takeover
    if (audit_failed) return 4;
    fx.board.announce(pid, Stage::kRecovered);
    for (int i = 0; i < n; ++i) {
      passage(lease, fx, pid, k1);
      if (batch) {
        auto b = lease->acquire_batch({k1, k2}).value();
        batch_probes_enter(fx, pid, k1, k2);
        batch_probes_exit(fx, pid, k1, k2);
      }
    }
    fx.board.announce(pid, Stage::kDone);
    return 0;
  }
  if (role == "run") {
    if (argc < 2) return 3;
    const int n = std::atoi(argv[0]);
    const uint64_t key = std::strtoull(argv[1], nullptr, 0);
    Lease lease(world, fx.table, pid);
    for (int i = 0; i < n; ++i) passage(lease, fx, pid, key);
    fx.board.announce(pid, Stage::kDone);
    return 0;
  }
  if (role == "park-acquire") {
    if (argc < 1) return 3;
    const uint64_t key = std::strtoull(argv[0], nullptr, 0);
    rme::platform::ParkPolicy policy(park_opts());
    Lease lease(world, fx.table, pid, &policy);
    parked_passage(lease, fx, pid, key);
    fx.board.announce(pid, Stage::kDone);
    return 0;
  }
  if (role == "park-run") {
    if (argc < 2) return 3;
    const int n = std::atoi(argv[0]);
    const uint64_t key = std::strtoull(argv[1], nullptr, 0);
    rme::platform::ParkPolicy policy(park_opts());
    Lease lease(world, fx.table, pid, &policy);
    for (int i = 0; i < n; ++i) parked_passage(lease, fx, pid, key);
    // The fair-handoff contract, audited cross-process: each release
    // grants at most one parked waiter.
    const auto& st = lease->stats();
    if (st.handoff_rmrs > st.releases) return 6;
    fx.board.announce(pid, Stage::kDone);
    return 0;
  }
  if (role == "recover-parked") {
    if (argc < 1) return 3;
    const uint64_t key = std::strtoull(argv[0], nullptr, 0);
    // The dead incarnation was killed PARKED in the Try section: it held
    // nothing, so recovery replays an empty passage, and the target
    // shard's probe must be UNOWNED - a parked waiter that somehow
    // entered the CS before dying would have left its id there.
    bool audit_failed = false;
    rme::platform::ParkPolicy policy(park_opts());
    Lease lease(world, fx.table, pid, &policy, nullptr,
                [&](rme::svc::Session<Table>& s) {
                  s.recover();
                  const int shard = fx.table.shard_for_key(key);
                  if (fx.probes[shard].owner.load(
                          std::memory_order_acquire) != 0) {
                    audit_failed = true;
                  }
                });
    if (!lease.restarted()) return 5;  // the matrix expected a takeover
    if (audit_failed) return 4;
    fx.board.announce(pid, Stage::kRecovered);
    parked_passage(lease, fx, pid, key);
    fx.board.announce(pid, Stage::kDone);
    return 0;
  }
  if (role == "soak-run") {
    if (argc < 3) return 3;
    const int n = std::atoi(argv[0]);
    const uint64_t key = std::strtoull(argv[1], nullptr, 0);
    const int dwell_us = std::atoi(argv[2]);
    Lease lease(world, fx.table, pid);
    // kClaimed gates the kill storm: a victim past this announcement is
    // past the slot-claim handshake, so SIGKILL leaves a clean corpse.
    fx.board.announce(pid, Stage::kClaimed);
    for (int i = 0; i < n; ++i) {
      passage(lease, fx, pid, key);
      if (dwell_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(dwell_us));
      }
    }
    fx.flush_soak(pid, lease->stats());
    fx.board.announce(pid, Stage::kDone);
    return 0;
  }
  if (role == "soak-recover") {
    if (argc < 2) return 3;
    const int n = std::atoi(argv[0]);
    const uint64_t key = std::strtoull(argv[1], nullptr, 0);
    const bool teeth = argc >= 3 && std::string(argv[2]) == "teeth";
    bool audit_failed = false;
    // Tolerant CSR witness: a storm victim dies at a RANDOM instant, so
    // each re-entered shard's probe holds either our dead incarnation's
    // id (killed inside the CS) or nothing (killed between probe exit
    // and guard release). Any OTHER id is an ME violation.
    Lease lease(world, fx.table, pid, nullptr, nullptr,
                [&](rme::svc::Session<Table>&) {
                  if (teeth) return;  // checker-teeth: skip the replay
                  fx.table.underlying().recover(
                      world.proc(pid), pid,
                      [&](Table::Proc&, int shard) {
                        CsProbe& p = fx.probes[shard];
                        const uint64_t prev = p.owner.exchange(
                            0, std::memory_order_acq_rel);
                        if (prev != 0 && prev != probe_id(pid)) {
                          audit_failed = true;
                        }
                      });
                });
    if (audit_failed) return 4;
    if (lease.restarted()) {
      fx.soak_takeovers.fetch_add(1, std::memory_order_acq_rel);
      fx.board.announce(pid, Stage::kRecovered);
    }
    // A fresh claim is accepted: the victim won the race against the
    // signal and exited clean, releasing its slot.
    if (!teeth) {
      for (int i = 0; i < n; ++i) passage(lease, fx, pid, key);
    }
    fx.flush_soak(pid, lease->stats());
    fx.board.announce(pid, Stage::kDone);
    return 0;
  }
  if (role == "soak-overload") {
    if (argc < 2) return 3;
    const int n = std::atoi(argv[0]);
    const uint64_t key = std::strtoull(argv[1], nullptr, 0);
    // A trigger-happy gate so the open-loop flood actually sheds under
    // the round's contention (stock options barely shed at soak scale).
    rme::svc::WaitTrendAdmission::Options opts;
    opts.min_samples = 8;
    opts.trend_factor = 2.0;
    rme::svc::WaitTrendAdmission admission(opts);
    Lease lease(world, fx.table, pid, nullptr, &admission);
    fx.board.announce(pid, Stage::kClaimed);
    for (int i = 0; i < n; ++i) {
      auto g = lease->acquire(key);
      if (!g) continue;  // shed: booked in stats, retried open-loop
      CsProbe& p = fx.probes[g->shard()];
      p.enter(probe_id(pid));
      p.exit(probe_id(pid));
    }
    fx.flush_soak(pid, lease->stats());
    fx.board.announce(pid, Stage::kDone);
    return 0;
  }
  if (role == "soak-deadline") {
    if (argc < 3) return 3;
    const int n = std::atoi(argv[0]);
    const uint64_t key = std::strtoull(argv[1], nullptr, 0);
    rme::cts::SoakRng rng(std::strtoull(argv[2], nullptr, 0));
    Lease lease(world, fx.table, pid);
    fx.board.announce(pid, Stage::kClaimed);
    for (int i = 0; i < n; ++i) {
      // The clock-jump simulation: half the deadlines are already in the
      // past (a backwards jump's view), the rest a few hundred
      // microseconds out. steady_clock discipline means both resolve as
      // a grant or kTimeout - a hang here fails the round's finish sweep.
      const auto now = std::chrono::steady_clock::now();
      const auto deadline =
          rng.chance(0.5)
              ? now - std::chrono::microseconds(1 + rng.below(500))
              : now + std::chrono::microseconds(rng.below(300));
      auto g = lease->acquire_until(key, deadline);
      if (!g) continue;  // kTimeout: booked in stats
      CsProbe& p = fx.probes[g->shard()];
      p.enter(probe_id(pid));
      p.exit(probe_id(pid));
    }
    fx.flush_soak(pid, lease->stats());
    fx.board.announce(pid, Stage::kDone);
    return 0;
  }
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: shm_worker <region> <pid> <role> [args...]\n");
    return 3;
  }
  const std::string region = argv[1];
  const int pid = std::atoi(argv[2]);
  const std::string role = argv[3];
  if (role == "grow-run") {
    // Registry-only allocation storm (the grow_storm soak arm): hammer
    // the arena until the region has grown (or refused at its VA-span
    // ceiling). Runs against scratch worlds with no Fixture root, and is
    // SIGKILL-able at any instant - dying inside region_grow leaves the
    // grow guard claimed, which the rival grower must ride out. Silent
    // like claim-probe: the storm's BadNews scanner treats stderr as an
    // anomaly.
    if (argc < 6) return 3;
    const size_t chunk = std::strtoull(argv[4], nullptr, 0);
    const int iters = std::atoi(argv[5]);
    try {
      auto world = rme::shm::ShmWorld::attach(region);
      const auto id = world.claim(pid);
      int landed = 0;
      for (int i = 0; i < iters; ++i) {
        if (world.env.arena.try_allocate(chunk, 8) != nullptr) ++landed;
      }
      world.release(id);
      return landed > 0 ? 0 : 2;
    } catch (const rme::shm::ShmError&) {
      return 2;
    }
  }
  if (role == "compact-rival") {
    // The live rival of a quiesce-and-compact pass. Bursts of short
    // lease-holds with gaps between them give the compactor's drain a
    // window; a burst that lands on the quiesce gate (claim or acquire
    // throws ShmError) re-attaches BY NAME and retries, which after the
    // republish lands on the compacted object. Every passage is audited
    // through the Fixture probes, so a lost grant or a duplicated region
    // would surface as a wrong count or an ME violation upstream.
    if (argc < 6) return 3;
    const int total = std::atoi(argv[4]);
    const uint64_t key = std::strtoull(argv[5], nullptr, 0);
    int done = 0;
    while (done < total) {
      try {
        auto world = rme::shm::ShmWorld::attach(region);
        auto& fx = world.root<Fixture>();
        Lease lease(world, fx.table, pid);
        const int burst = std::min(5, total - done);
        for (int i = 0; i < burst; ++i) {
          passage(lease, fx, pid, key);
          ++done;
        }
        if (done >= total) {
          fx.board.announce(pid, Stage::kDone);
          return 0;
        }
      } catch (const rme::shm::ShmError&) {
        // Quiesced (or mid-republish): back off and re-attach.
        ::usleep(2000);
      }
      ::usleep(1000);  // burst gap: the drain's window
    }
    return 0;
  }
  if (role == "claim-probe") {
    // Registry-only probe (the pid_exhaust soak arm): try to claim the
    // logical pid and report the verdict via the exit code alone -
    // 0 = claimed (and released), 2 = refused. DELIBERATELY silent: a
    // busy-slot refusal is this role's expected outcome, and the soak's
    // BadNews scanner treats any "shm_worker:" stderr line as an
    // anomaly. Never touches the root object, so it works against
    // scratch worlds that carry none.
    try {
      auto world = rme::shm::ShmWorld::attach(region);
      const auto id = world.claim(pid);
      world.release(id);
      return 0;
    } catch (const rme::shm::ShmError&) {
      return 2;
    }
  }
  try {
    auto world = rme::shm::ShmWorld::attach(region);
    auto& fx = world.root<Fixture>();
    return run_role(role, world, fx, pid, argc - 4, argv + 4);
  } catch (const rme::shm::ShmError& e) {
    std::fprintf(stderr, "shm_worker: %s\n", e.what());
    return 2;
  }
}

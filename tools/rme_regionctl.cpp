// rme-regionctl: live-region inspector for the obs::MetricsArena.
//
//   rme_regionctl dump   --region=NAME [--pids=N] [--prom]
//   rme_regionctl watch  --region=NAME [--pids=N] [--interval-ms=1000]
//                        [--count=N]
//   rme_regionctl pids   --region=NAME [--pids=N]
//   rme_regionctl shards --region=NAME [--pids=N]
//   rme_regionctl hist   --region=NAME [--pids=N] [--wake]
//   rme_regionctl segs   --region=NAME
//   rme_regionctl compact --region=NAME [--drain-ms=MS]
//
// The inspection verbs are STRICTLY READ-ONLY: the region is opened
// O_RDONLY and mapped PROT_READ (shm::RoRegion), at any address - the
// inspector only walks the offset-addressed state, which since ABI v5 is
// ALL of it (attach-anywhere contract, shm/offptr.hpp). It can therefore
// attach to a region that is mid-chaos (the cts soak, a live daemon)
// without perturbing a single protocol step: reads go through the
// per-row seqlock (obs/snapshot.hpp), so counters and histograms are
// internally consistent even while their single writers are storming.
//
//   dump    one METRICS_JSON line (schema: tools/check_bench_json.py),
//           or Prometheus-style exposition text with --prom
//   watch   dump every --interval-ms until --count lines (0 = forever)
//   pids    one row per logical pid: slot state, owner OS pid, epoch,
//           incarnations, counters
//   shards  per-shard acquisition heat (rows' shard_heat merged)
//   hist    the acquire-wait histogram (--wake: the wake-latency one)
//   segs    the segment directory: per-growth high-water marks, the
//           current dynamic limit, and the reserved VA span
//   compact the ONE writing verb: quiesce the region, drain sessions,
//           relocate the live prefix into a trimmed object, republish
//           (shm::compact_region). Prints the before/after report.
//
// Exit codes: 0 ok, 2 usage/attach/compact failure.
#include <stdio.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/obs.hpp"
#include "shm/region.hpp"

namespace {

using rme::obs::Hist;
using rme::obs::Snapshot;

struct Args {
  std::string cmd;
  std::string region;
  int pids = rme::shm::kMaxProcs;
  int interval_ms = 1000;
  int count = 0;          // watch: 0 = forever
  int drain_ms = 10000;   // compact: session-drain timeout
  bool prom = false;
  bool wake = false;
};

bool arg_value(const char* arg, const char* name, const char** out) {
  const size_t n = ::strlen(name);
  if (::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

void usage() {
  ::fprintf(stderr,
            "usage: rme_regionctl dump|watch|pids|shards|hist|segs|compact\n"
            "                     --region=NAME\n"
            "                     [--pids=N] [--prom] [--wake]\n"
            "                     [--interval-ms=MS] [--count=N]\n"
            "                     [--drain-ms=MS]\n");
}

Snapshot snap_of(const rme::shm::RoRegion& r, const Args& a) {
  int pids = a.pids;
  if (pids > r.header()->nprocs) pids = r.header()->nprocs;
  return Snapshot::read(r.header()->metrics, pids);
}

void cmd_dump(const rme::shm::RoRegion& r, const Args& a) {
  const Snapshot s = snap_of(r, a);
  if (a.prom) {
    ::fputs(rme::obs::prometheus_text(s, a.region).c_str(), stdout);
  } else {
    ::printf("%s\n", rme::obs::metrics_json_line(s, a.region).c_str());
  }
}

void cmd_pids(const rme::shm::RoRegion& r, const Args& a) {
  const Snapshot s = snap_of(r, a);
  const rme::shm::RegionHeader* h = r.header();
  ::printf("%4s %6s %8s %6s %5s %9s %9s %9s %6s %8s %6s\n", "pid", "state",
           "os_pid", "epoch", "incs", "acquires", "releases", "contended",
           "sheds", "timeouts", "torn");
  for (int p = 0; p < s.pids; ++p) {
    const auto& slot = h->slots[p];
    const auto& row = s.row[p];
    if (row.empty() && !row.torn &&
        slot.state.load(std::memory_order_relaxed) ==
            rme::shm::PidSlot::kFree) {
      continue;  // never claimed, nothing to say
    }
    ::printf("%4d %6s %8lld %6llu %5u %9llu %9llu %9llu %6llu %8llu %6s\n", p,
             slot.state.load(std::memory_order_relaxed) ==
                     rme::shm::PidSlot::kClaimed
                 ? "held"
                 : "free",
             static_cast<long long>(
                 slot.os_pid.load(std::memory_order_relaxed)),
             static_cast<unsigned long long>(
                 slot.epoch.load(std::memory_order_relaxed)),
             row.incarnations,
             static_cast<unsigned long long>(row.counter[rme::obs::kAcquires]),
             static_cast<unsigned long long>(row.counter[rme::obs::kReleases]),
             static_cast<unsigned long long>(
                 row.counter[rme::obs::kContended]),
             static_cast<unsigned long long>(row.counter[rme::obs::kSheds]),
             static_cast<unsigned long long>(row.counter[rme::obs::kTimeouts]),
             row.torn ? "TORN" : "-");
  }
}

void cmd_shards(const rme::shm::RoRegion& r, const Args& a) {
  const Snapshot s = snap_of(r, a);
  ::printf("%5s %12s\n", "shard", "acquires");
  for (int h = 0; h < rme::obs::PidRow::kHeatShards; ++h) {
    if (s.shard_heat[h] == 0) continue;
    ::printf("%5d %12llu\n", h,
             static_cast<unsigned long long>(s.shard_heat[h]));
  }
}

void cmd_hist(const rme::shm::RoRegion& r, const Args& a) {
  const Snapshot s = snap_of(r, a);
  const uint64_t* buckets = a.wake ? s.wake : s.acquire_wait;
  uint64_t maxv = 1;
  for (int b = 0; b < Hist::kBuckets; ++b) {
    if (buckets[b] > maxv) maxv = buckets[b];
  }
  ::printf("%s latency (ns, log2 buckets)\n",
           a.wake ? "futex wake" : "acquire wait");
  for (int b = 0; b < Hist::kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const int bar = static_cast<int>((buckets[b] * 40) / maxv);
    ::printf(">=%11llu %10llu |%.*s\n",
             static_cast<unsigned long long>(
                 Hist::bucket_floor_ns(static_cast<uint32_t>(b))),
             static_cast<unsigned long long>(buckets[b]), bar,
             "########################################");
  }
}

void cmd_segs(const rme::shm::RoRegion& r) {
  const rme::shm::RegionHeader* h = r.header();
  const uint32_t n = h->segs.count.load(std::memory_order_acquire);
  ::printf("span  %12llu bytes (reserved VA ceiling)\n",
           static_cast<unsigned long long>(h->bytes));
  ::printf("limit %12llu bytes (current usable)\n",
           static_cast<unsigned long long>(
               h->limit.load(std::memory_order_acquire)));
  ::printf("gen   %12llu   segments %u\n",
           static_cast<unsigned long long>(
               h->segs.gen.load(std::memory_order_acquire)),
           n);
  ::printf("%4s %14s\n", "seg", "hi");
  for (uint32_t i = 0; i < n && i < rme::shm::kMaxSegs; ++i) {
    ::printf("%4u %14llu\n", i,
             static_cast<unsigned long long>(
                 h->segs.hi[i].load(std::memory_order_acquire)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (argc < 2) {
    usage();
    return 2;
  }
  a.cmd = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* v = nullptr;
    if (arg_value(argv[i], "--region", &v)) {
      a.region = v;
    } else if (arg_value(argv[i], "--pids", &v)) {
      a.pids = ::atoi(v);
    } else if (arg_value(argv[i], "--interval-ms", &v)) {
      a.interval_ms = ::atoi(v);
    } else if (arg_value(argv[i], "--count", &v)) {
      a.count = ::atoi(v);
    } else if (arg_value(argv[i], "--drain-ms", &v)) {
      a.drain_ms = ::atoi(v);
    } else if (::strcmp(argv[i], "--prom") == 0) {
      a.prom = true;
    } else if (::strcmp(argv[i], "--wake") == 0) {
      a.wake = true;
    } else {
      usage();
      return 2;
    }
  }
  if (a.region.empty()) {
    usage();
    return 2;
  }
  try {
    if (a.cmd == "compact") {
      // The one verb that writes: it never maps the region read-only, it
      // drives the quiesce-drain-relocate-republish pass directly.
      const rme::shm::CompactReport rep =
          rme::shm::compact_region(a.region, a.drain_ms);
      ::printf(
          "compacted %s: limit %llu -> %llu bytes (live %llu), seg gen "
          "%llu\n",
          a.region.c_str(), static_cast<unsigned long long>(rep.old_limit),
          static_cast<unsigned long long>(rep.new_limit),
          static_cast<unsigned long long>(rep.live_bytes),
          static_cast<unsigned long long>(rep.seg_gen));
      return 0;
    }
    const rme::shm::RoRegion r = rme::shm::RoRegion::open(a.region);
    if (a.cmd == "dump") {
      cmd_dump(r, a);
    } else if (a.cmd == "watch") {
      for (int i = 0; a.count == 0 || i < a.count; ++i) {
        if (i != 0) ::usleep(static_cast<useconds_t>(a.interval_ms) * 1000);
        cmd_dump(r, a);
        ::fflush(stdout);
      }
    } else if (a.cmd == "pids") {
      cmd_pids(r, a);
    } else if (a.cmd == "shards") {
      cmd_shards(r, a);
    } else if (a.cmd == "hist") {
      cmd_hist(r, a);
    } else if (a.cmd == "segs") {
      cmd_segs(r);
    } else {
      usage();
      return 2;
    }
    return 0;
  } catch (const rme::shm::ShmError& e) {
    ::fprintf(stderr, "rme_regionctl: %s\n", e.what());
    return 2;
  }
}

// Port leasing under crashes (dynamic port model, src/core/port_lease.hpp):
//
//   * a process that crashes mid-super-passage must reclaim the SAME port
//     on recovery (the persisted lease word is the recovery record);
//   * no two live processes ever hold the same lease (FAS token
//     conservation);
//   * a crash in the one unprotected window (between the pool FAS and the
//     lease write) leaks the port but never duplicates it, and scavenge()
//     recovers it under quiescence.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/port_lease.hpp"
#include "core/rme_lock.hpp"
#include "harness/scenario.hpp"

namespace {

using namespace rme;
using harness::ExclusionAudit;
using harness::FasCrashSpec;
using harness::LockFixture;
using harness::ModelKind;
using harness::Scenario;
using C = platform::Counted;
using R = platform::Real;
using Facade = core::RecoverableMutexFacade<C>;

// --- pool mechanics, no crashes ---

TEST(PortLease, ClaimsAreUniqueAndExhaustible) {
  harness::RealWorld w(4);
  core::PortLease<R> lease(w.env, 3, 4);
  auto& ctx = w.proc(0).ctx;
  std::set<int> got;
  for (int pid = 0; pid < 3; ++pid) {
    const int p = lease.acquire(w.proc(pid).ctx, pid);
    EXPECT_TRUE(got.insert(p).second) << "duplicate port " << p;
  }
  EXPECT_EQ(lease.free_ports(ctx), 0);
  EXPECT_EQ(lease.try_claim(w.proc(3).ctx, 3), core::kNoLease);
  lease.release(w.proc(1).ctx, 1);
  EXPECT_EQ(lease.free_ports(ctx), 1);
  const int p = lease.acquire(w.proc(3).ctx, 3);
  EXPECT_NE(p, core::kNoLease);
  EXPECT_EQ(lease.free_ports(ctx), 0);
}

TEST(PortLease, AcquireIsIdempotentAcrossRecovery) {
  harness::RealWorld w(2);
  core::PortLease<R> lease(w.env, 2, 2);
  auto& ctx = w.proc(0).ctx;
  const int p1 = lease.acquire(ctx, 0);
  // "Recovery": the same pid asks again without releasing - the persisted
  // lease word must re-bind it to the same port, claiming nothing new.
  const int p2 = lease.acquire(ctx, 0);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(lease.free_ports(ctx), 1);
  lease.release(ctx, 0);
  lease.release(ctx, 0);  // idempotent no-op
  EXPECT_EQ(lease.free_ports(ctx), 2);
}

TEST(PortLease, ScavengeIsANoOpOnAHealthyPool) {
  harness::RealWorld w(3);
  core::PortLease<R> lease(w.env, 3, 3);
  auto& ctx = w.proc(0).ctx;
  (void)lease.acquire(ctx, 0);
  (void)lease.acquire(w.proc(1).ctx, 1);
  EXPECT_EQ(lease.scavenge(ctx), 0);
  EXPECT_EQ(lease.free_ports(ctx), 1);
}

// --- scavenge under quiescence violations ---
// scavenge() must refuse (kScavengeRefused) or provably deposit nothing
// it could be duplicating; the per-pid epoch words are the mechanism.

// A pid that crashed mid-claim is NOT quiescent: its epoch stays odd, so
// scavenge refuses until the pid has recovered - then the genuinely
// leaked port is repatriated.
TEST(PortLease, ScavengeRefusesWhileACrashedClaimIsUnrecovered) {
  harness::CountedWorld w(ModelKind::kCc, 2);
  core::PortLease<C> lease(w.env, 2, 2);
  auto& ctx0 = w.proc(0).ctx;
  auto& ctx1 = w.proc(1).ctx;

  // Crash pid 0 at the op after its slot FAS - the lease write - leaking
  // the claimed port with the claim still in flight (epoch odd).
  sim::CrashAroundFas plan(0, 1, sim::CrashAroundFas::kAfter);
  ctx0.crash = &plan;
  bool crashed = false;
  try {
    lease.acquire(ctx0, 0);
  } catch (const sim::ProcessCrashed&) {
    crashed = true;
  }
  ctx0.crash = nullptr;
  ASSERT_TRUE(crashed);
  EXPECT_EQ(lease.held(ctx0, 0), core::kNoLease);  // lease write was lost

  // Not quiescent: pid 0 never completed or recovered its claim.
  EXPECT_EQ(lease.scavenge(ctx1), core::kScavengeRefused);
  EXPECT_EQ(lease.free_ports(ctx1), 1);  // the leak is real meanwhile

  // Recovery protocol: pid 0 simply acquires again (claims the other
  // port), which completes the interrupted operation and restores
  // quiescence for this pid.
  EXPECT_NE(lease.acquire(ctx0, 0), core::kNoLease);
  EXPECT_EQ(lease.scavenge(ctx1), 1);  // leaked port repatriated
  EXPECT_EQ(lease.free_ports(ctx1), 1);  // one free, one leased to pid 0
}

// Real-thread churn: concurrent acquire/release while scavenge() hammers
// the pool. Without crashes nothing is ever genuinely leaked, so any
// scavenge that runs to completion and "recovers" a port would have
// duplicated one a live thread holds in its registers. It must either
// refuse or recover exactly zero - and token conservation must hold at
// quiescence.
TEST(PortLease, ScavengeUnderChurnRefusesOrStaysDuplicationFree) {
  constexpr int kThreads = 4;
  constexpr int kPorts = 3;  // contended: the claim window is hot
  harness::RealWorld w(kThreads + 1);
  core::PortLease<R> lease(w.env, kPorts, kThreads + 1);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ops{0};
  std::vector<std::thread> ts;
  for (int pid = 0; pid < kThreads; ++pid) {
    ts.emplace_back([&, pid] {
      auto& ctx = w.proc(pid).ctx;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)lease.acquire(ctx, pid);
        lease.release(ctx, pid);
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Only scavenge once the churn is demonstrably in flight.
  while (ops.load(std::memory_order_relaxed) < kThreads) {
    std::this_thread::yield();
  }

  auto& sctx = w.proc(kThreads).ctx;
  int refused = 0;
  int recovered_total = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (int i = 0; i < 200000; ++i) {
    const int r = lease.scavenge(sctx);
    if (r == core::kScavengeRefused) {
      ++refused;
    } else {
      recovered_total += r;
    }
    // Run at least a big batch; keep going until we have witnessed the
    // validation firing or the time budget runs out (scheduling-
    // dependent, so refusals are reported but not required here - the
    // deterministic refusal case is covered by the crashed-claim test).
    if (i >= 2000 && (refused > 0 || std::chrono::steady_clock::now() >
                                         deadline)) {
      break;
    }
  }
  stop.store(true);
  for (auto& t : ts) t.join();
  std::printf("scavenge under churn: %d refusals\n", refused);

  // THE invariant: every scavenge that ran to completion recovered
  // nothing - a non-zero recovery here would have been a duplication of
  // a port in flight.
  EXPECT_EQ(recovered_total, 0);
  // Quiescent now: conservation held, the pool is whole.
  EXPECT_EQ(lease.scavenge(sctx), 0);
  EXPECT_EQ(lease.free_ports(sctx), kPorts);
}

// --- crash recovery through the facade, deterministic simulation ---

// Crash at the lock's queue FAS (the 2nd FAS of the super-passage: the
// 1st is the lease claim). Recovery must re-find the identical port.
TEST(PortLease, CrashMidSuperPassageReclaimsSamePort) {
  Scenario<C> s(ModelKind::kCc, 1);
  auto fa = std::make_unique<Facade>(s.world().env, 2, 1);
  Facade* facade = fa.get();
  // (pre-lock lease, post-lock port) per completed body.
  std::vector<std::pair<int, int>> trace;
  s.set_body([&](harness::SimProc& h, int pid) {
    const int pre = facade->lease().held(h.ctx, pid);
    facade->lock(h, pid);
    const int port = facade->lease().held(h.ctx, pid);
    facade->unlock(h, pid);
    trace.emplace_back(pre, port);
  });
  s.add_component<harness::FasCrashComponent<C>>(std::vector<FasCrashSpec>{
      {0, 2, sim::CrashAroundFas::kBefore}});  // FAS #2 = RmeLock Tail FAS
  s.use_round_robin_schedule();
  s.set_iterations(2);
  auto res = s.run();
  ASSERT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(res.crashes[0], 1u);
  ASSERT_EQ(trace.size(), 2u);
  // First completed body is the recovered passage: the lease survived the
  // crash and re-bound the process to the port it already held.
  EXPECT_NE(trace[0].first, core::kNoLease);
  EXPECT_EQ(trace[0].first, trace[0].second);
  // Clean second passage started from no lease.
  EXPECT_EQ(trace[1].first, core::kNoLease);
  // Nothing leaked: the crash hit inside the lock protocol, not the pool.
  auto& ctx = s.world().proc(0).ctx;
  EXPECT_EQ(facade->lease().free_ports(ctx), 2);
}

// Crash in the unprotected window: kAfter on FAS #1 fires at the lease
// write that follows the pool claim, so the port leaks. The process must
// recover on a DIFFERENT port, finish its work, and scavenge() must
// repatriate the leaked port afterwards.
TEST(PortLease, CrashBetweenClaimAndLeaseWriteLeaksNotDuplicates) {
  Scenario<C> s(ModelKind::kCc, 2);
  auto fa = std::make_unique<Facade>(s.world().env, 3, 2);
  Facade* facade = fa.get();
  auto* fix = s.add_component<LockFixture<C, Facade>>(
      [&](harness::World<C>&) { return std::move(fa); });
  auto* chk = s.audits().emplace<ExclusionAudit>();
  s.add_component<harness::FasCrashComponent<C>>(
      std::vector<FasCrashSpec>{{0, 1, sim::CrashAroundFas::kAfter}});
  s.use_random_schedule(7);
  s.set_iterations(3);
  auto res = s.run();
  ASSERT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(res.crashes[0], 1u);
  EXPECT_EQ(res.completions[0], 3u);
  EXPECT_EQ(res.completions[1], 3u);
  EXPECT_EQ(chk->me_violations(), 0u);
  auto& ctx = s.world().proc(0).ctx;
  // Quiescent now: one port leaked, conservation held.
  EXPECT_EQ(facade->lease().free_ports(ctx), 2);
  EXPECT_EQ(facade->lease().scavenge(ctx), 1);
  EXPECT_EQ(facade->lease().free_ports(ctx), 3);
  EXPECT_EQ(fix->lock().raw_lock().total_stats().acquisitions, 6u);
}

// Under a crash storm with fewer ports than processes, every completed
// acquire must hold a lease no other live process shares - checked
// directly inside the critical section - and ME/CSR must hold throughout.
TEST(PortLease, NoTwoLiveProcessesShareALease) {
  constexpr int kPids = 4;
  constexpr int kPorts = 2;  // contended pool: leasing is on the hot path
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Scenario<C> s(ModelKind::kCc, kPids);
    Facade facade(s.world().env, kPorts, kPids);
    auto* chk = s.audits().emplace<ExclusionAudit>();
    uint64_t lease_overlaps = 0;
    s.set_body([&](harness::SimProc& h, int pid) {
      facade.lock(h, pid);
      chk->on_enter(pid);
      bool crashed_in_cs = true;
      try {
        const int mine = facade.lease().held(h.ctx, pid);
        for (int q = 0; q < kPids; ++q) {
          if (q != pid && facade.lease().held(h.ctx, q) == mine) {
            ++lease_overlaps;
          }
        }
        crashed_in_cs = false;
        chk->on_exit(pid);
        facade.unlock(h, pid);
      } catch (const sim::ProcessCrashed&) {
        if (crashed_in_cs) chk->on_crash_in_cs(pid);
        throw;
      }
    });
    s.add_component<harness::FasCrashComponent<C>>(std::vector<FasCrashSpec>{
        {1, 3, sim::CrashAroundFas::kAfter},
        {2, 2, sim::CrashAroundFas::kBefore}});
    s.use_random_schedule(seed);
    s.set_iterations(4);
    s.set_max_steps(80000000);
    auto res = s.run();
    ASSERT_TRUE(res.ok()) << "seed " << seed << ": " << res.summary();
    EXPECT_EQ(lease_overlaps, 0u) << "seed " << seed;
    EXPECT_EQ(chk->csr_violations(), 0u) << "seed " << seed;
    for (int pid = 0; pid < kPids; ++pid) {
      EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 4u)
          << "seed " << seed << " pid " << pid;
    }
  }
}

// The facade on real hardware threads: pids outnumber ports, so every
// passage exercises the blocking lease sweep under true concurrency.
TEST(PortLease, FacadeRealThreadsContendedPool) {
  constexpr int kThreads = 4;
  constexpr int kPorts = 2;
  Scenario<R> s(kThreads);
  core::RecoverableMutexFacade<R> facade(s.world().env, kPorts, kThreads);
  auto* chk = s.audits().emplace<ExclusionAudit>();
  s.set_body([&](platform::Process<R>& h, int pid) {
    facade.lock(h, pid);
    chk->on_enter(pid);
    chk->on_exit(pid);
    facade.unlock(h, pid);
  });
  s.set_iterations(500);
  auto res = s.run();
  ASSERT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(chk->entries(), 4u * 500u);
  auto& ctx = s.world().proc(0).ctx;
  EXPECT_EQ(facade.lease().free_ports(ctx), kPorts);
}

}  // namespace

// rme::svc service-layer suite: sessions, session-minted guards,
// wait-policy injection, deadline verbs, and multi-key BatchGuards.
//
// The acceptance-critical pieces:
//   * double-release() idempotence and session-destruction-while-held
//     across EVERY registry entry, on real threads and on the counted
//     platform (single-process sim configuration);
//   * the BatchGuard crash-injection sweep: partial batches crashed
//     mid-acquire and mid-release must pass the ME+CSR audits with zero
//     leaked or duplicated holds (lease pools fully repatriated after
//     recovery + scavenge).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "api/api.hpp"
#include "harness/scenario.hpp"
#include "svc/svc.hpp"

namespace {

using namespace rme;
using namespace std::chrono_literals;
using harness::ExclusionAudit;
using harness::ModelKind;
using harness::Scenario;
using C = platform::Counted;
using R = platform::Real;

// ---------------------------------------------------------------------------
// Session basics & telemetry
// ---------------------------------------------------------------------------

TEST(SvcSession, TelemetryCountsUncontendedTraffic) {
  harness::RealWorld w(1);
  api::FlatLock<R> lock(w.env, 1);
  svc::Session s(lock, w.proc(0), 0);
  for (int i = 0; i < 5; ++i) {
    auto g = s.acquire();
    EXPECT_TRUE(g.held());
  }
  const svc::SessionStats& st = s.stats();
  EXPECT_EQ(st.acquires, 5u);
  EXPECT_EQ(st.releases, 5u);
  EXPECT_EQ(st.contended_acquires, 0u);  // single-threaded: never paused
  EXPECT_EQ(st.wait_cycles, 0u);
  EXPECT_EQ(st.timeouts, 0u);
  EXPECT_EQ(st.crash_recoveries, 0u);
}

TEST(SvcSession, RecoverCountsAsCrashRecovery) {
  harness::RealWorld w(1);
  api::FlatLock<R> lock(w.env, 1);
  svc::Session s(lock, w.proc(0), 0);
  s.recover();  // idle: a full empty passage
  EXPECT_EQ(s.stats().crash_recoveries, 1u);
  auto g = s.acquire();  // still acquirable afterwards
}

TEST(SvcSession, EarlyReleaseIsIdempotentAndGuardGoesInert) {
  harness::RealWorld w(1);
  api::FlatLock<R> lock(w.env, 1);
  svc::Session s(lock, w.proc(0), 0);
  auto g = s.acquire();
  g.release();
  EXPECT_FALSE(g.held());
  g.release();  // no-op, not a double Exit
  EXPECT_EQ(s.stats().releases, 1u);
  auto g2 = s.acquire();  // re-acquirable
}

TEST(SvcSession, MovedFromGuardDoesNotDoubleRelease) {
  harness::RealWorld w(1);
  api::FlatLock<R> lock(w.env, 1);
  svc::Session s(lock, w.proc(0), 0);
  auto g = s.acquire();
  svc::Guard<api::FlatLock<R>> g2 = std::move(g);
  EXPECT_FALSE(g.held());  // NOLINT(bugprone-use-after-move): inert by contract
  EXPECT_TRUE(g2.held());
  g2.release();
  EXPECT_EQ(s.stats().releases, 1u);
}

// ---------------------------------------------------------------------------
// Deadline verbs
// ---------------------------------------------------------------------------

TEST(SvcSession, DeadlineVerbsOnHeldLockTimeOut) {
  harness::RealWorld w(2);
  api::TasBaseline<R> lock(w.env, 2);
  svc::Session s0(lock, w.proc(0), 0);
  svc::Session s1(lock, w.proc(1), 1);

  auto held = s0.acquire();

  auto r1 = s1.try_acquire();
  ASSERT_FALSE(r1.has_value());
  EXPECT_EQ(r1.error(), svc::Errc::kWouldBlock);

  auto r2 = s1.acquire_for(2ms);
  ASSERT_FALSE(r2.has_value());
  EXPECT_EQ(r2.error(), svc::Errc::kTimeout);
  EXPECT_EQ(s1.stats().timeouts, 1u);
  EXPECT_GT(s1.stats().wait_cycles, 0u);  // the retry loop paused

  // A deadline already in the past: exactly one bounded attempt.
  auto r3 = s1.acquire_until(svc::Session<api::TasBaseline<R>>::Clock::now() -
                             1ms);
  ASSERT_FALSE(r3.has_value());
  EXPECT_EQ(r3.error(), svc::Errc::kTimeout);

  held.release();
  auto r4 = s1.acquire_for(500ms);
  ASSERT_TRUE(r4.has_value());
  EXPECT_TRUE(r4->held());
  EXPECT_EQ(s1.stats().acquires, 1u);
}

// Every TryLock registry entry speaks the deadline verbs: an uncontended
// acquire_for succeeds and mints a working guard.
TEST(SvcSession, DeadlineVerbsAcrossRegistry) {
  int covered = 0;
  api::for_each_lock<R>([&](auto tag) {
    using L = typename decltype(tag)::type;
    if constexpr (api::TryLock<L>) {
      SCOPED_TRACE(L::kName);
      ++covered;
      const int n = api::clamp_processes(api::lock_traits_v<L>, 2);
      harness::RealWorld w(n);
      L lock(w.env, n);
      svc::Session<L> s(lock, w.proc(0), 0);
      auto r = s.acquire_for(500ms);
      ASSERT_TRUE(r.has_value()) << L::kName;
      r->release();
      auto r2 = s.acquire_until(svc::Session<L>::Clock::now() + 500ms);
      ASSERT_TRUE(r2.has_value()) << L::kName;
    }
  });
  EXPECT_GE(covered, 5);  // tas, ttas, mcs, ticket, clh
}

// ---------------------------------------------------------------------------
// Wait policies: the same audited contended workload runs correctly under
// every policy, sessions installing them per pid.
// ---------------------------------------------------------------------------

template <class L>
void run_audited_policy_scenario(platform::WaitPolicy* policy) {
  constexpr int kProcs = 4;
  constexpr uint64_t kIters = 300;
  Scenario<R> s(kProcs);
  L lock(s.world().env, kProcs);
  auto* chk = s.audits().emplace<ExclusionAudit>();
  auto sessions =
      std::make_shared<std::vector<std::unique_ptr<svc::Session<L>>>>(
          svc::open_sessions(lock, s.world(), kProcs, policy));
  auto& audits = s.audits();
  s.set_body([sessions, &audits](platform::Process<R>& h, int pid) {
    (void)h;
    auto g = (*sessions)[static_cast<size_t>(pid)]->acquire();
    audits.on_enter(pid);
    audits.on_exit(pid);
  });
  s.set_iterations(kIters);
  auto res = s.run();
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(chk->entries(), kProcs * kIters);
  EXPECT_EQ(chk->me_violations(), 0u);
  uint64_t acquires = 0;
  for (auto& sess : *sessions) acquires += sess->stats().acquires;
  EXPECT_EQ(acquires, kProcs * kIters);
}

TEST(SvcWaitPolicy, SpinPolicyDrivesContendedTraffic) {
  platform::SpinPolicy spin;
  run_audited_policy_scenario<api::FlatLock<R>>(&spin);
}

TEST(SvcWaitPolicy, SpinYieldPolicyDrivesContendedTraffic) {
  platform::SpinYieldPolicy sy;
  run_audited_policy_scenario<api::FlatLock<R>>(&sy);
}

TEST(SvcWaitPolicy, SharedParkPolicyDrivesContendedTraffic) {
  // Aggressive parking (tiny spin/yield budgets) shared across sessions:
  // releases unpark rival waiters (WaitPolicy::on_release), and the timed
  // park guarantees progress even for wakes that race.
  platform::ParkPolicy::Options opt;
  opt.spin_limit = 4;
  opt.yield_limit = 8;
  opt.min_park = 20us;
  opt.max_park = 200us;
  platform::ParkPolicy park(opt);
  run_audited_policy_scenario<api::FlatLock<R>>(&park);
  EXPECT_EQ(platform::ParkingLot::instance().parked_count(), 0u);
}

TEST(SvcWaitPolicy, TimedParkMakesProgressWithoutCooperativeUnpark) {
  // The holder's session has NO policy, so its release never unparks:
  // the parked waiter must wake by timeout alone and still acquire.
  harness::RealWorld w(2);
  api::TasBaseline<R> lock(w.env, 2);
  platform::ParkPolicy::Options opt;
  opt.spin_limit = 2;
  opt.yield_limit = 4;
  opt.min_park = 20us;
  opt.max_park = 200us;
  platform::ParkPolicy park(opt);

  svc::Session holder(lock, w.proc(0), 0);
  auto held = std::make_optional(holder.acquire());
  std::thread t([&] {
    svc::Session waiter(lock, w.proc(1), 1, &park);
    auto g = waiter.acquire();  // parks, wakes by timeout, acquires
    EXPECT_GT(waiter.stats().contended_acquires, 0u);
  });
  std::this_thread::sleep_for(3ms);
  held.reset();  // release without unparking
  t.join();
  EXPECT_EQ(platform::ParkingLot::instance().parked_count(), 0u);
}

// ---------------------------------------------------------------------------
// Double-release idempotence and session-destruction-while-held, across
// EVERY registry entry, real threads and counted platforms.
// ---------------------------------------------------------------------------

template <class P, class L>
void double_release_and_orphan_roundtrip(typename P::Env& env,
                                         platform::Process<P>& h) {
  L lock(env, api::clamp_processes(api::lock_traits_v<L>, 2));

  // Double release through a live session.
  {
    svc::Session<L> s(lock, h, 0);
    std::optional<svc::Guard<L>> g;
    if constexpr (api::KeyedLock<L>) {
      g.emplace(s.acquire(/*key=*/7));
    } else {
      g.emplace(s.acquire());
    }
    g->release();
    g->release();  // no-op
    EXPECT_EQ(s.stats().releases, 1u) << L::kName;
  }

  // Session destroyed while the guard is held: the shared core keeps the
  // guard valid; release still runs exactly once and the lock stays
  // usable afterwards.
  std::optional<svc::Guard<L>> orphan;
  {
    auto s = std::make_unique<svc::Session<L>>(lock, h, 0);
    if constexpr (api::KeyedLock<L>) {
      orphan.emplace(s->acquire(/*key=*/7));
    } else {
      orphan.emplace(s->acquire());
    }
  }  // session gone, guard held
  EXPECT_TRUE(orphan->held()) << L::kName;
  orphan->release();
  orphan->release();  // idempotent on the orphan too
  EXPECT_FALSE(orphan->held()) << L::kName;

  // Re-acquirable through a fresh session.
  svc::Session<L> s2(lock, h, 0);
  if constexpr (api::KeyedLock<L>) {
    auto g2 = s2.acquire(/*key=*/7);
    EXPECT_EQ(g2.shard(), lock.shard_for_key(7)) << L::kName;
  } else {
    auto g2 = s2.acquire();
    EXPECT_TRUE(g2.held()) << L::kName;
  }
}

TEST(SvcGuards, DoubleReleaseAndOrphanAcrossRegistryRealThreads) {
  api::for_each_lock<R>([&](auto tag) {
    using L = typename decltype(tag)::type;
    SCOPED_TRACE(L::kName);
    harness::RealWorld w(2);
    double_release_and_orphan_roundtrip<R, L>(w.env, w.proc(0));
  });
}

TEST(SvcGuards, DoubleReleaseAndOrphanAcrossRegistrySim) {
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    api::for_each_lock<C>([&](auto tag) {
      using L = typename decltype(tag)::type;
      SCOPED_TRACE(L::kName);
      harness::CountedWorld w(kind, 2);
      double_release_and_orphan_roundtrip<C, L>(w.env, w.proc(0));
    });
  }
}

// BatchGuard versions of the same two properties.
TEST(SvcGuards, BatchGuardDoubleReleaseAndOrphan) {
  harness::RealWorld w(2);
  api::TableLock<R> table(w.env, /*shards=*/4, /*ports_per_shard=*/2,
                          /*npids=*/2);
  const uint64_t keys[3] = {1, 2, 3};
  {
    svc::Session s(table, w.proc(0), 0);
    svc::BatchGuard g(s, std::span<const uint64_t>(keys, 3));
    EXPECT_GE(g.shard_count(), 1);
    g.release();
    g.release();  // no-op
    EXPECT_EQ(s.stats().releases, 1u);
    EXPECT_EQ(s.stats().batch_acquires, 1u);
  }
  std::optional<svc::BatchGuard<api::TableLock<R>>> orphan;
  {
    auto s = std::make_unique<svc::Session<api::TableLock<R>>>(table,
                                                               w.proc(0), 0);
    orphan.emplace(svc::BatchGuard(*s, std::span<const uint64_t>(keys, 3)));
  }
  EXPECT_TRUE(orphan->held());
  orphan->release();
  orphan->release();
  // All shards free again: a rival batch over the same keys succeeds.
  svc::Session s2(table, w.proc(1), 1);
  svc::BatchGuard g2(s2, std::span<const uint64_t>(keys, 3));
  EXPECT_TRUE(g2.held());
}

// ---------------------------------------------------------------------------
// BatchGuard semantics
// ---------------------------------------------------------------------------

TEST(SvcBatch, MaskCoversEveryKeyShardAndCollapsesDuplicates) {
  harness::RealWorld w(1);
  api::TableLock<R> table(w.env, 8, 1, 1);
  svc::Session s(table, w.proc(0), 0);
  const uint64_t keys[4] = {10, 11, 10, 12};  // dup key collapses
  svc::BatchGuard g(s, std::span<const uint64_t>(keys, 4));
  for (uint64_t k : keys) {
    EXPECT_TRUE(g.holds_shard(table.shard_for_key(k))) << k;
  }
  EXPECT_LE(g.shard_count(), 3);
}

// Overlapping batches from real threads: sorted two-phase locking means
// no deadlock regardless of key order, and per-shard ME holds.
TEST(SvcBatch, OverlappingBatchesRealThreadsNoDeadlock) {
  constexpr int kProcs = 4;
  constexpr uint64_t kIters = 150;
  constexpr int kShards = 4;
  Scenario<R> s(kProcs);
  api::TableLock<R> table(s.world().env, kShards, kProcs, kProcs);
  auto* chk = s.audits().emplace<ExclusionAudit>(kShards);
  auto sessions = std::make_shared<
      std::vector<std::unique_ptr<svc::Session<api::TableLock<R>>>>>(
      svc::open_sessions(table, s.world(), kProcs));
  auto& audits = s.audits();
  std::vector<uint64_t> done(kProcs, 0);
  s.set_body([sessions, &audits, &table, done](platform::Process<R>& h,
                                               int pid) mutable {
    (void)h;
    uint64_t& n = done[static_cast<size_t>(pid)];
    // Deliberately UNsorted key pairs that overlap across pids.
    const uint64_t keys[2] = {n + static_cast<uint64_t>(pid),
                              n + static_cast<uint64_t>(pid) * 31 + 1};
    svc::BatchGuard g(*(*sessions)[static_cast<size_t>(pid)],
                      std::span<const uint64_t>(keys, 2));
    for (int sh = 0; sh < table.shards(); ++sh) {
      if (g.holds_shard(sh)) audits.on_enter(pid, sh);
    }
    for (int sh = 0; sh < table.shards(); ++sh) {
      if (g.holds_shard(sh)) audits.on_exit(pid, sh);
    }
    ++n;
  });
  s.set_iterations(kIters);
  auto res = s.run();
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(chk->me_violations(), 0u);
  uint64_t batches = 0;
  for (auto& sess : *sessions) batches += sess->stats().batch_acquires;
  EXPECT_EQ(batches, kProcs * kIters);
}

// ---------------------------------------------------------------------------
// BatchGuard crash consistency.
//
// Whitebox sweep: crash a single process at EVERY shared-memory step of
// unlock_batch (mid-release) in turn, and at every step of lock_batch
// (mid-acquire) via a fresh world per crash point. After each crash:
// recover through the session, then verify zero leaked or duplicated
// holds - every shard's pool repatriates to full after scavenge and every
// shard lock is re-acquirable.
// ---------------------------------------------------------------------------

// Drive one crash at `crash_step` ops after the probe point inside the
// given phase ("acquire" or "release"); returns false when the phase
// completed before the crash step fired (sweep exhausted).
bool batch_crash_roundtrip(uint64_t crash_offset, bool crash_in_acquire) {
  harness::CountedWorld w(ModelKind::kCc, 2);
  api::TableLock<C> table(w.env, /*shards=*/3, /*ports_per_shard=*/2,
                          /*npids=*/2);
  auto& h = w.proc(0);
  const uint64_t keys[2] = {0, 1};  // usually 2 distinct shards

  svc::Session s(table, h, 0);
  bool crashed = false;
  std::optional<sim::CrashAtSteps> plan;
  if (crash_in_acquire) {
    plan.emplace(0, std::vector<uint64_t>{h.ctx.step_index + crash_offset});
    h.ctx.crash = &*plan;
  }
  try {
    svc::BatchGuard g(s, std::span<const uint64_t>(keys, 2));
    if (!crash_in_acquire) {
      plan.emplace(0, std::vector<uint64_t>{h.ctx.step_index + crash_offset});
      h.ctx.crash = &*plan;
    }
    g.release();
  } catch (const sim::ProcessCrashed&) {
    crashed = true;
  }
  h.ctx.crash = nullptr;

  // Recovery protocol: the session replays whatever the crash left.
  s.recover();
  EXPECT_EQ(table.underlying().current_batch(h.ctx, 0), 0u);

  // Zero leaked or duplicated holds: after scavenging, every shard pool
  // is full again, and a rival can batch-acquire everything.
  auto& sctx = w.proc(1).ctx;
  for (int sh = 0; sh < table.shards(); ++sh) {
    auto& lease = table.underlying().shard_lease(sh);
    EXPECT_EQ(lease.held(h.ctx, 0), core::kNoLease) << "shard " << sh;
    const int scavenged = lease.scavenge(sctx);
    EXPECT_NE(scavenged, core::kScavengeRefused) << "shard " << sh;
    EXPECT_EQ(lease.free_ports(sctx), lease.ports()) << "shard " << sh;
  }
  svc::Session s1(table, w.proc(1), 1);
  svc::BatchGuard g1(s1, std::span<const uint64_t>(keys, 2));
  EXPECT_TRUE(g1.held());
  return crashed;
}

TEST(SvcBatch, CrashSweepMidAcquireZeroLeakedOrDuplicatedHolds) {
  int crashes = 0;
  for (uint64_t off = 0; off < 200; ++off) {
    if (batch_crash_roundtrip(off, /*crash_in_acquire=*/true)) {
      ++crashes;
    } else {
      break;  // acquisition completed before the crash step: swept all
    }
  }
  EXPECT_GT(crashes, 10);  // the sweep really covered the acquire path
}

TEST(SvcBatch, CrashSweepMidReleaseZeroLeakedOrDuplicatedHolds) {
  int crashes = 0;
  for (uint64_t off = 0; off < 200; ++off) {
    if (batch_crash_roundtrip(off, /*crash_in_acquire=*/false)) {
      ++crashes;
    } else {
      break;  // release completed before the crash step: swept all
    }
  }
  EXPECT_GT(crashes, 5);  // the sweep really covered the release path
}

// ---------------------------------------------------------------------------
// Scheduled multi-process crash storms over batches, with full ME+CSR
// audits: the audited replay protocol re-enters every still-held shard
// (crashed pid first - CSR) before the batch ends.
// ---------------------------------------------------------------------------

template <class L>
void audited_batch_body(harness::AuditSet& audits, platform::Process<C>& h,
                        int pid, svc::Session<L>& session,
                        std::vector<typename C::template Atomic<int>>& scratch,
                        uint64_t iteration) {
  auto& table = session.lock().underlying();
  if (table.current_batch(h.ctx, pid) != 0) {
    // A crashed batch is pending: audited replay. The visitor runs
    // inside each re-entered critical section, so the audit observes the
    // crashed pid re-entering every still-held shard FIRST (the CSR
    // contract), after which the interrupted batch super-passage ends.
    table.recover_batch(h, pid, [&](platform::Process<C>&, int shard) {
      audits.on_enter(pid, shard);
      audits.on_exit(pid, shard);
    });
  }
  // Keys stable across crash retries of the same logical operation.
  const uint64_t base = static_cast<uint64_t>(pid) * 7919u + iteration;
  const uint64_t keys[2] = {base, base * 31u + 5u};
  svc::BatchGuard<L> g(session, std::span<const uint64_t>(keys, 2));
  bool crashed_in_cs = true;
  try {
    const int shards = table.shards();
    for (int sh = 0; sh < shards; ++sh) {
      if (g.holds_shard(sh)) audits.on_enter(pid, sh);
    }
    for (int sh = 0; sh < shards; ++sh) {
      if (!g.holds_shard(sh)) continue;
      auto& cell = scratch[static_cast<size_t>(sh)];
      cell.store(h.ctx, pid);
      RME_ASSERT(cell.load(h.ctx) == pid,
                 "svc batch: shard scratch overwritten");
    }
    crashed_in_cs = false;
    for (int sh = 0; sh < shards; ++sh) {
      if (g.holds_shard(sh)) audits.on_exit(pid, sh);
    }
    g.release();
  } catch (const sim::ProcessCrashed&) {
    if (crashed_in_cs) {
      for (int sh = 0; sh < table.shards(); ++sh) {
        if (g.holds_shard(sh)) audits.on_crash_in_cs(pid, sh);
      }
    }
    throw;
  }
}

void run_batch_crash_scenario(ModelKind kind, uint64_t seed, int nth_fas,
                              sim::CrashAroundFas::When when) {
  constexpr int kProcs = 3;
  constexpr int kShards = 3;
  constexpr uint64_t kIters = 3;
  Scenario<C> s(kind, kProcs);
  using L = api::TableLock<C>;
  L table(s.world().env, kShards, /*ports_per_shard=*/kProcs, kProcs);
  auto* chk = s.audits().emplace<ExclusionAudit>(kShards);
  auto sessions =
      std::make_shared<std::vector<std::unique_ptr<svc::Session<L>>>>(
          svc::open_sessions(table, s.world(), kProcs));
  auto scratch = std::make_shared<std::vector<typename C::Atomic<int>>>(
      static_cast<size_t>(kShards));
  for (auto& cell : *scratch) {
    cell.attach(s.world().env, rmr::kNoOwner);
    cell.init(-1);
  }
  auto& audits = s.audits();
  std::vector<uint64_t> done(kProcs, 0);
  s.set_body([sessions, &audits, scratch, done](platform::Process<C>& h,
                                                int pid) mutable {
    uint64_t& n = done[static_cast<size_t>(pid)];
    audited_batch_body<L>(audits, h, pid,
                          *(*sessions)[static_cast<size_t>(pid)], *scratch,
                          n);
    ++n;
  });

  auto plan = std::make_unique<sim::MultiPlan>();
  plan->emplace<sim::CrashAroundFas>(0, nth_fas, when);
  if (kProcs >= 2) {
    plan->emplace<sim::CrashAroundFas>(1, nth_fas + 2, when);
  }
  s.set_crash_plan(std::move(plan));
  s.use_random_schedule(seed);
  s.set_iterations(kIters);
  s.set_max_steps(80000000);

  auto res = s.run();
  EXPECT_TRUE(res.ok()) << res.summary();
  for (int pid = 0; pid < kProcs; ++pid) {
    EXPECT_EQ(res.completions[static_cast<size_t>(pid)], kIters) << pid;
  }
  EXPECT_EQ(chk->me_violations(), 0u);
  EXPECT_EQ(chk->csr_violations(), 0u);

  // No pid left anything behind, and no port leaked for good: scavenge
  // repatriates every pool (zero leaked or duplicated holds).
  auto& ctx0 = s.world().proc(0).ctx;
  for (int pid = 0; pid < kProcs; ++pid) {
    EXPECT_EQ(table.underlying().current_batch(ctx0, pid), 0u) << pid;
  }
  for (int sh = 0; sh < kShards; ++sh) {
    auto& lease = table.underlying().shard_lease(sh);
    EXPECT_NE(lease.scavenge(ctx0), core::kScavengeRefused) << sh;
    EXPECT_EQ(lease.free_ports(ctx0), lease.ports()) << sh;
  }
}

TEST(SvcBatch, AuditedCrashStormSweepBothModels) {
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    for (int nth : {1, 2, 3, 5, 8, 12}) {
      for (auto when :
           {sim::CrashAroundFas::kBefore, sim::CrashAroundFas::kAfter}) {
        SCOPED_TRACE(testing::Message()
                     << "kind=" << static_cast<int>(kind) << " nth=" << nth
                     << " when=" << static_cast<int>(when));
        run_batch_crash_scenario(kind, 17u + static_cast<uint64_t>(nth), nth,
                                 when);
      }
    }
  }
}

}  // namespace

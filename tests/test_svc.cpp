// rme::svc service-layer suite: sessions, session-minted guards,
// wait-policy injection, fair parking-lot handoff, admission control,
// AcquireRequest lifecycle, deadline verbs (plain, keyed, batch), and
// multi-key BatchGuards.
//
// The acceptance-critical pieces:
//   * double-release() idempotence and session-destruction-while-held
//     across EVERY registry entry, on real threads and on the counted
//     platform (single-process sim configuration);
//   * fair handoff: N parked waiters are granted in park order, a release
//     performs AT MOST ONE unpark (SessionStats::handoff_rmrs <=
//     releases), and a policy shared by two locks never wakes the other
//     lock's waiters;
//   * the BatchGuard crash-injection sweeps: partial batches crashed
//     mid-acquire, mid-release AND mid-BACKOUT (deadline batches timing
//     out) must pass the ME+CSR audits with zero leaked or duplicated
//     holds (lease pools fully repatriated after recovery + scavenge).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "harness/scenario.hpp"
#include "svc/svc.hpp"

namespace {

using namespace rme;
using namespace std::chrono_literals;
using harness::ExclusionAudit;
using harness::ModelKind;
using harness::Scenario;
using C = platform::Counted;
using R = platform::Real;

// ---------------------------------------------------------------------------
// Session basics & telemetry
// ---------------------------------------------------------------------------

TEST(SvcSession, TelemetryCountsUncontendedTraffic) {
  harness::RealWorld w(1);
  api::FlatLock<R> lock(w.env, 1);
  svc::Session s(lock, w.proc(0), 0);
  for (int i = 0; i < 5; ++i) {
    auto g = s.acquire();
    ASSERT_TRUE(g.has_value());  // no Admission gate: always a value
    EXPECT_TRUE(g->held());
  }
  const svc::SessionStats& st = s.stats();
  EXPECT_EQ(st.acquires, 5u);
  EXPECT_EQ(st.releases, 5u);
  EXPECT_EQ(st.contended_acquires, 0u);  // single-threaded: never paused
  EXPECT_EQ(st.wait_cycles, 0u);
  EXPECT_EQ(st.timeouts, 0u);
  EXPECT_EQ(st.sheds, 0u);
  EXPECT_EQ(st.handoff_rmrs, 0u);  // no policy installed: nobody to wake
  EXPECT_EQ(st.crash_recoveries, 0u);
}

TEST(SvcSession, RecoverCountsAsCrashRecovery) {
  harness::RealWorld w(1);
  api::FlatLock<R> lock(w.env, 1);
  svc::Session s(lock, w.proc(0), 0);
  s.recover();  // idle: a full empty passage
  EXPECT_EQ(s.stats().crash_recoveries, 1u);
  auto g = s.acquire();  // still acquirable afterwards
  EXPECT_TRUE(g.has_value());
}

TEST(SvcSession, EarlyReleaseIsIdempotentAndGuardGoesInert) {
  harness::RealWorld w(1);
  api::FlatLock<R> lock(w.env, 1);
  svc::Session s(lock, w.proc(0), 0);
  auto g = s.acquire().value();
  g.release();
  EXPECT_FALSE(g.held());
  g.release();  // no-op, not a double Exit
  EXPECT_EQ(s.stats().releases, 1u);
  auto g2 = s.acquire();  // re-acquirable
  EXPECT_TRUE(g2.has_value());
}

TEST(SvcSession, MovedFromGuardDoesNotDoubleRelease) {
  harness::RealWorld w(1);
  api::FlatLock<R> lock(w.env, 1);
  svc::Session s(lock, w.proc(0), 0);
  auto g = s.acquire().value();
  svc::Guard<api::FlatLock<R>> g2 = std::move(g);
  EXPECT_FALSE(g.held());  // NOLINT(bugprone-use-after-move): inert by contract
  EXPECT_TRUE(g2.held());
  g2.release();
  EXPECT_EQ(s.stats().releases, 1u);
}

// ---------------------------------------------------------------------------
// Deadline verbs
// ---------------------------------------------------------------------------

TEST(SvcSession, DeadlineVerbsOnHeldLockTimeOut) {
  harness::RealWorld w(2);
  api::TasBaseline<R> lock(w.env, 2);
  svc::Session s0(lock, w.proc(0), 0);
  svc::Session s1(lock, w.proc(1), 1);

  auto held = s0.acquire().value();

  auto r1 = s1.try_acquire();
  ASSERT_FALSE(r1.has_value());
  EXPECT_EQ(r1.error(), svc::Errc::kWouldBlock);

  auto r2 = s1.acquire_for(2ms);
  ASSERT_FALSE(r2.has_value());
  EXPECT_EQ(r2.error(), svc::Errc::kTimeout);
  EXPECT_EQ(s1.stats().timeouts, 1u);
  EXPECT_GT(s1.stats().wait_cycles, 0u);  // the retry loop paused

  // A deadline already in the past: exactly one bounded attempt.
  auto r3 = s1.acquire_until(svc::Session<api::TasBaseline<R>>::Clock::now() -
                             1ms);
  ASSERT_FALSE(r3.has_value());
  EXPECT_EQ(r3.error(), svc::Errc::kTimeout);

  held.release();
  auto r4 = s1.acquire_for(500ms);
  ASSERT_TRUE(r4.has_value());
  EXPECT_TRUE(r4->held());
  EXPECT_EQ(s1.stats().acquires, 1u);
}

// Every TryLock registry entry speaks the deadline verbs: an uncontended
// acquire_for succeeds and mints a working guard.
TEST(SvcSession, DeadlineVerbsAcrossRegistry) {
  int covered = 0;
  api::for_each_lock<R>([&](auto tag) {
    using L = typename decltype(tag)::type;
    if constexpr (api::TryLock<L>) {
      SCOPED_TRACE(L::kName);
      ++covered;
      const int n = api::clamp_processes(api::lock_traits_v<L>, 2);
      harness::RealWorld w(n);
      L lock(w.env, n);
      svc::Session<L> s(lock, w.proc(0), 0);
      auto r = s.acquire_for(500ms);
      ASSERT_TRUE(r.has_value()) << L::kName;
      r->release();
      auto r2 = s.acquire_until(svc::Session<L>::Clock::now() + 500ms);
      ASSERT_TRUE(r2.has_value()) << L::kName;
    }
  });
  EXPECT_GE(covered, 5);  // tas, ttas, mcs, ticket, clh
}

// ---------------------------------------------------------------------------
// Wait policies: the same audited contended workload runs correctly under
// every policy, sessions installing them per pid. Returns the per-session
// stats so callers can assert policy-specific bounds (fair handoff).
// ---------------------------------------------------------------------------

template <class L>
std::vector<svc::SessionStats> run_audited_policy_scenario(
    platform::WaitPolicy* policy) {
  constexpr int kProcs = 4;
  constexpr uint64_t kIters = 300;
  Scenario<R> s(kProcs);
  L lock(s.world().env, kProcs);
  auto* chk = s.audits().emplace<ExclusionAudit>();
  auto sessions =
      std::make_shared<std::vector<std::unique_ptr<svc::Session<L>>>>(
          svc::open_sessions(lock, s.world(), kProcs, policy));
  auto& audits = s.audits();
  s.set_body([sessions, &audits](platform::Process<R>& h, int pid) {
    (void)h;
    auto g = (*sessions)[static_cast<size_t>(pid)]->acquire().value();
    audits.on_enter(pid);
    audits.on_exit(pid);
  });
  s.set_iterations(kIters);
  auto res = s.run();
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(chk->entries(), kProcs * kIters);
  EXPECT_EQ(chk->me_violations(), 0u);
  uint64_t acquires = 0;
  std::vector<svc::SessionStats> stats;
  for (auto& sess : *sessions) {
    acquires += sess->stats().acquires;
    stats.push_back(sess->stats());
  }
  EXPECT_EQ(acquires, kProcs * kIters);
  return stats;
}

TEST(SvcWaitPolicy, SpinPolicyDrivesContendedTraffic) {
  platform::SpinPolicy spin;
  run_audited_policy_scenario<api::FlatLock<R>>(&spin);
}

TEST(SvcWaitPolicy, SpinYieldPolicyDrivesContendedTraffic) {
  platform::SpinYieldPolicy sy;
  run_audited_policy_scenario<api::FlatLock<R>>(&sy);
}

TEST(SvcWaitPolicy, SharedParkPolicyDrivesContendedTraffic) {
  // Aggressive parking (tiny spin/yield budgets) shared across sessions:
  // releases hand off to ONE parked rival (WaitPolicy::on_release ->
  // unpark_one), and the timed park guarantees progress for wakes that
  // race. The fair-handoff contract: at most one unpark per release,
  // visible as handoff_rmrs <= releases per session.
  const uint64_t grants_before = platform::CondvarLot::instance().grants();
  platform::ParkPolicy::Options opt;
  opt.spin_limit = 4;
  opt.yield_limit = 8;
  opt.min_park = 20us;
  opt.max_park = 200us;
  platform::ParkPolicy park(opt);
  const auto stats = run_audited_policy_scenario<api::FlatLock<R>>(&park);
  uint64_t handoffs = 0;
  for (const auto& st : stats) {
    EXPECT_LE(st.handoff_rmrs, st.releases);  // <= one unpark per release
    handoffs += st.handoff_rmrs;
  }
  // Every explicit grant of this run was performed by some release hook.
  EXPECT_EQ(platform::CondvarLot::instance().grants() - grants_before,
            handoffs);
  EXPECT_EQ(platform::CondvarLot::instance().parked_count(), 0u);
}

TEST(SvcWaitPolicy, AdaptivePolicyDrivesContendedTraffic) {
  platform::AdaptivePolicy::Options opt;
  opt.demote_ratio = 0.25;
  opt.min_acquires = 16;
  opt.min_park = 20us;
  opt.max_park = 200us;
  platform::AdaptivePolicy adaptive(opt);
  const auto stats =
      run_audited_policy_scenario<api::FlatLock<R>>(&adaptive);
  for (const auto& st : stats) {
    EXPECT_LE(st.handoff_rmrs, st.releases);
  }
  EXPECT_EQ(platform::CondvarLot::instance().parked_count(), 0u);
}

TEST(SvcWaitPolicy, AdaptivePolicyDemotesOnContentionRatio) {
  platform::AdaptivePolicy::Options opt;
  opt.demote_ratio = 0.5;
  opt.min_acquires = 8;
  platform::AdaptivePolicy p(opt);
  EXPECT_FALSE(p.parking());
  p.observe(/*acquires=*/4, /*contended=*/4);  // below min_acquires: ignored
  EXPECT_FALSE(p.parking());
  p.observe(/*acquires=*/10, /*contended=*/2);  // ratio 0.2 < 0.5
  EXPECT_FALSE(p.parking());
  p.observe(/*acquires=*/10, /*contended=*/5);  // ratio hits the threshold
  EXPECT_TRUE(p.parking());
  p.observe(/*acquires=*/100, /*contended=*/0);  // latched: never promotes
  EXPECT_TRUE(p.parking());
}

TEST(SvcWaitPolicy, TimedParkMakesProgressWithoutCooperativeUnpark) {
  // The holder's session has NO policy, so its release never unparks:
  // the parked waiter must wake by timeout alone and still acquire.
  harness::RealWorld w(2);
  api::TasBaseline<R> lock(w.env, 2);
  platform::ParkPolicy::Options opt;
  opt.spin_limit = 2;
  opt.yield_limit = 4;
  opt.min_park = 20us;
  opt.max_park = 200us;
  platform::ParkPolicy park(opt);

  svc::Session holder(lock, w.proc(0), 0);
  std::optional<svc::Guard<api::TasBaseline<R>>> held(
      holder.acquire().value());
  std::thread t([&] {
    svc::Session waiter(lock, w.proc(1), 1, &park);
    auto g = waiter.acquire().value();  // parks, wakes by timeout, acquires
    EXPECT_GT(waiter.stats().contended_acquires, 0u);
  });
  std::this_thread::sleep_for(3ms);
  held.reset();  // release without unparking
  t.join();
  EXPECT_EQ(platform::CondvarLot::instance().parked_count(), 0u);
}

// ---------------------------------------------------------------------------
// Fair parking lot: wake order and per-lock key isolation.
// ---------------------------------------------------------------------------

// N waiters parked on one key are granted in park order, one per
// unpark_one, and every unpark_one grants exactly one waiter.
TEST(ParkFairness, GrantsFollowParkOrder) {
  auto& lot = platform::CondvarLot::instance();
  int anchor = 0;  // a key no other test parks on
  const uint64_t key = platform::park_key(&anchor, &lot);
  const uint64_t grants_before = lot.grants();

  constexpr int kWaiters = 4;
  std::vector<int> wake_order;
  std::mutex mu;
  std::vector<std::thread> ts;
  for (int i = 0; i < kWaiters; ++i) {
    ts.emplace_back([&, i] {
      const bool granted = platform::park_for(key, 10s);
      EXPECT_TRUE(granted) << "waiter " << i;
      std::lock_guard<std::mutex> lk(mu);
      wake_order.push_back(i);
    });
    // Sequence the park order: waiter i is queued before i+1 starts.
    while (lot.parked_count(key) != static_cast<uint64_t>(i) + 1) {
      std::this_thread::yield();
    }
  }
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(lot.unpark_one(key), 1u) << "grant " << i;
    // Wait for the granted waiter to record itself before the next
    // grant, so the recorded order is exactly the grant order.
    for (;;) {
      std::lock_guard<std::mutex> lk(mu);
      if (wake_order.size() == static_cast<size_t>(i) + 1) break;
    }
  }
  for (auto& t : ts) t.join();
  ASSERT_EQ(wake_order.size(), static_cast<size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(wake_order[static_cast<size_t>(i)], i) << "park order broken";
  }
  // Exactly one waiter per unpark_one, no collateral wakes.
  EXPECT_EQ(lot.grants() - grants_before, static_cast<uint64_t>(kWaiters));
  EXPECT_EQ(lot.unpark_one(key), 0u);  // queue drained
}

// A ParkPolicy shared by sessions of two DIFFERENT locks keys its parks
// by (policy, lock): releases of lock A never grant waiters of lock B.
TEST(ParkFairness, SharedPolicyDoesNotWakeRivalLocks) {
  harness::RealWorld w(3);
  api::TasBaseline<R> lock_a(w.env, 3);
  api::TasBaseline<R> lock_b(w.env, 3);
  platform::ParkPolicy::Options opt;
  opt.spin_limit = 2;
  opt.yield_limit = 4;
  opt.min_park = 200ms;  // long naps: the waiter stays parked through the
  opt.max_park = 500ms;  // whole lock-A hammering phase below
  platform::ParkPolicy park(opt);

  svc::Session holder_b(lock_b, w.proc(0), 0, &park);
  std::optional<svc::Guard<api::TasBaseline<R>>> held_b(
      holder_b.acquire().value());

  std::thread waiter([&] {
    svc::Session s(lock_b, w.proc(1), 1, &park);
    auto g = s.acquire().value();  // blocks until holder_b releases
    EXPECT_GT(s.stats().contended_acquires, 0u);
  });
  // Let the waiter reach its park.
  while (platform::CondvarLot::instance().parked_count() == 0) {
    std::this_thread::yield();
  }

  // Hammer lock A under the SAME policy object: none of these releases
  // may grant the lock-B waiter (old bug: policy-wide unpark_all woke
  // rivals of every lock sharing the policy).
  const uint64_t grants_before = platform::CondvarLot::instance().grants();
  svc::Session s_a(lock_a, w.proc(2), 2, &park);
  for (int i = 0; i < 2000; ++i) {
    auto g = s_a.acquire().value();
  }
  EXPECT_EQ(s_a.stats().handoff_rmrs, 0u);  // nobody waits on (policy, A)
  EXPECT_EQ(platform::CondvarLot::instance().grants(), grants_before);

  held_b.reset();  // release B: hands off to the parked B-waiter (or the
                   // timed park completes the acquisition regardless)
  waiter.join();
  EXPECT_LE(holder_b.stats().handoff_rmrs, holder_b.stats().releases);
  EXPECT_EQ(platform::CondvarLot::instance().parked_count(), 0u);
}

// Keyed tables hand off per SHARD: releasing one shard grants a waiter
// of THAT shard, while waiters of other shards stay parked.
TEST(ParkFairness, KeyedReleaseWakesOnlyThatShardsWaiter) {
  harness::RealWorld w(4);
  api::TableLock<R> table(w.env, /*shards=*/4, /*ports_per_shard=*/2,
                          /*npids=*/4);
  uint64_t ka = 0, kb = 0;
  {
    for (uint64_t b = 1; b < 1000; ++b) {
      if (table.shard_for_key(b) != table.shard_for_key(ka)) {
        kb = b;
        break;
      }
    }
  }
  platform::ParkPolicy::Options opt;
  opt.spin_limit = 2;
  opt.yield_limit = 4;
  opt.min_park = 300ms;  // parked waiters stay down for the whole check
  opt.max_park = 600ms;
  platform::ParkPolicy park(opt);

  svc::Session h_a(table, w.proc(0), 0, &park);
  svc::Session h_b(table, w.proc(1), 1, &park);
  std::optional<svc::Guard<api::TableLock<R>>> held_a(
      h_a.acquire(ka).value());
  std::optional<svc::Guard<api::TableLock<R>>> held_b(
      h_b.acquire(kb).value());

  std::atomic<bool> a_done{false}, b_done{false};
  std::thread wa([&] {
    svc::Session s(table, w.proc(2), 2, &park);
    auto g = s.acquire(ka).value();
    a_done.store(true);
  });
  std::thread wb([&] {
    svc::Session s(table, w.proc(3), 3, &park);
    auto g = s.acquire(kb).value();
    b_done.store(true);
  });
  while (platform::CondvarLot::instance().parked_count() < 2) {
    std::this_thread::yield();
  }

  held_b.reset();  // free shard(kb): must wake the kb-waiter only
  const auto t0 = std::chrono::steady_clock::now();
  while (!b_done.load() && std::chrono::steady_clock::now() - t0 < 5s) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(b_done.load());
  // The kb release granted the kb-waiter; the ka-waiter was untouched
  // (its 300ms park outlives this check) and ka is still held.
  EXPECT_FALSE(a_done.load());
  EXPECT_EQ(h_b.stats().handoff_rmrs, 1u);

  held_a.reset();
  wa.join();
  wb.join();
  EXPECT_TRUE(a_done.load());
  EXPECT_EQ(platform::CondvarLot::instance().parked_count(), 0u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

struct NeverAdmit final : svc::Admission {
  bool admit() override { return false; }
  const char* name() const override { return "never"; }
};

TEST(SvcAdmission, RejectingGateShedsEveryVerbBeforeTheLock) {
  harness::RealWorld w(2);
  api::TasBaseline<R> lock(w.env, 2);
  NeverAdmit gate;
  svc::Session s(lock, w.proc(0), 0, /*policy=*/nullptr, &gate);

  auto r1 = s.acquire();
  ASSERT_FALSE(r1.has_value());
  EXPECT_EQ(r1.error(), svc::Errc::kOverloaded);
  auto r2 = s.try_acquire();
  ASSERT_FALSE(r2.has_value());
  EXPECT_EQ(r2.error(), svc::Errc::kOverloaded);
  auto r3 = s.acquire_for(1ms);
  ASSERT_FALSE(r3.has_value());
  EXPECT_EQ(r3.error(), svc::Errc::kOverloaded);
  auto r4 = s.submit();
  ASSERT_FALSE(r4.has_value());
  EXPECT_EQ(r4.error(), svc::Errc::kOverloaded);

  EXPECT_EQ(s.stats().sheds, 4u);
  EXPECT_EQ(s.stats().submits, 0u);  // a shed submit mints no request
  EXPECT_EQ(s.stats().acquires, 0u);

  // The lock was never touched: a rival acquires instantly.
  svc::Session rival(lock, w.proc(1), 1);
  auto g = rival.try_acquire();
  EXPECT_TRUE(g.has_value());
}

TEST(SvcAdmission, WaitTrendShedsWhenFastDetachesAndProbesForRecovery) {
  svc::WaitTrendAdmission::Options opt;
  opt.min_samples = 8;
  opt.probe_every = 4;
  svc::WaitTrendAdmission gate(opt);

  EXPECT_TRUE(gate.admit());  // cold: everything admitted
  for (int i = 0; i < 16; ++i) gate.on_acquired(100);  // calm baseline
  EXPECT_TRUE(gate.admit());

  for (int i = 0; i < 8; ++i) gate.on_acquired(100000);  // load spike
  EXPECT_GT(gate.fast(), gate.slow());
  EXPECT_FALSE(gate.admit());  // fast detached: shed

  // Probing: within probe_every attempts one is admitted anyway, so the
  // estimators can observe recovery.
  int admitted = 0;
  for (int i = 0; i < 4; ++i) {
    if (gate.admit()) ++admitted;
  }
  EXPECT_EQ(admitted, 1);

  // Recovery: cheap acquisitions pull the fast estimate back down.
  for (int i = 0; i < 64; ++i) gate.on_acquired(100);
  EXPECT_TRUE(gate.admit());
}

TEST(SvcAdmission, SessionFeedsTheEstimatorFromItsVerbs) {
  harness::RealWorld w(1);
  api::FlatLock<R> lock(w.env, 1);
  svc::WaitTrendAdmission gate;
  svc::Session s(lock, w.proc(0), 0, /*policy=*/nullptr, &gate);
  for (int i = 0; i < 10; ++i) {
    auto g = s.acquire();
    ASSERT_TRUE(g.has_value());  // uncontended: the gate stays open
  }
  EXPECT_EQ(gate.samples(), 10u);
  EXPECT_EQ(s.stats().sheds, 0u);
}

// ---------------------------------------------------------------------------
// AcquireRequest lifecycle
// ---------------------------------------------------------------------------

using TasReq = svc::AcquireRequest<api::TasBaseline<R>>;

TEST(SvcRequest, PollWaitTimeoutCancelLifecycle) {
  harness::RealWorld w(2);
  api::TasBaseline<R> lock(w.env, 2);
  svc::Session s0(lock, w.proc(0), 0);
  svc::Session s1(lock, w.proc(1), 1);

  auto held = s0.acquire().value();

  auto r = s1.submit();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->state(), svc::RequestState::kPending);
  EXPECT_EQ(r->poll(), svc::RequestState::kPending);  // lock held: no luck

  auto w1 = r->wait_for(2ms);
  ASSERT_FALSE(w1.has_value());
  EXPECT_EQ(w1.error(), svc::Errc::kTimeout);
  EXPECT_TRUE(r->pending());  // a timeout leaves the request retryable
  EXPECT_EQ(s1.stats().timeouts, 1u);

  auto t1 = r->take();
  ASSERT_FALSE(t1.has_value());
  EXPECT_EQ(t1.error(), svc::Errc::kWouldBlock);  // still pending

  EXPECT_TRUE(r->cancel());
  EXPECT_EQ(r->state(), svc::RequestState::kCancelled);
  EXPECT_FALSE(r->cancel());  // second cancel is a no-op
  auto t2 = r->take();
  ASSERT_FALSE(t2.has_value());
  EXPECT_EQ(t2.error(), svc::Errc::kCancelled);
  EXPECT_EQ(s1.stats().cancels, 1u);

  // A fresh request completes once the holder releases.
  auto r2 = s1.submit();
  ASSERT_TRUE(r2.has_value());
  held.release();
  auto g = r2->wait();
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(g->held());
  EXPECT_EQ(r2->state(), svc::RequestState::kTaken);
  EXPECT_EQ(s1.stats().submits, 2u);
  EXPECT_EQ(s1.stats().acquires, 1u);
}

TEST(SvcRequest, CompletionCallbackFiresOnceInline) {
  harness::RealWorld w(1);
  api::TasBaseline<R> lock(w.env, 1);
  svc::Session s(lock, w.proc(0), 0);

  auto r = s.submit();
  ASSERT_TRUE(r.has_value());
  int fired = 0;
  r->on_complete([&](svc::Guard<api::TasBaseline<R>>& g) {
    ++fired;
    EXPECT_TRUE(g.held());  // the guard is live inside the callback
  });
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(r->poll(), svc::RequestState::kReady);  // free lock: completes
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(r->poll(), svc::RequestState::kReady);  // poll is idempotent
  EXPECT_EQ(fired, 1);
  auto g = r->take();
  ASSERT_TRUE(g.has_value());
  g->release();

  // Attaching after completion fires immediately (guard still parked).
  auto r2 = s.submit();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->poll(), svc::RequestState::kReady);
  int late = 0;
  r2->on_complete([&](svc::Guard<api::TasBaseline<R>>&) { ++late; });
  EXPECT_EQ(late, 1);
}

TEST(SvcRequest, ReadyButUntakenReleasesOnDestruction) {
  harness::RealWorld w(2);
  api::TasBaseline<R> lock(w.env, 2);
  svc::Session s(lock, w.proc(0), 0);
  {
    auto r = s.submit();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->poll(), svc::RequestState::kReady);
  }  // request destroyed holding the guard: must release
  EXPECT_EQ(s.stats().releases, 1u);
  svc::Session rival(lock, w.proc(1), 1);
  auto g = rival.try_acquire();
  EXPECT_TRUE(g.has_value());  // lock is free again
}

TEST(SvcRequest, SurvivesSessionDestruction) {
  harness::RealWorld w(1);
  api::TasBaseline<R> lock(w.env, 1);
  std::optional<svc::Expected<TasReq>> r;
  {
    svc::Session s(lock, w.proc(0), 0);
    r.emplace(s.submit());
  }  // session gone; the request shares the core and stays valid
  ASSERT_TRUE(r->has_value());
  auto g = (*r)->wait();
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(g->held());
}

// ---------------------------------------------------------------------------
// Keyed bounded attempts (TryKeyedLock) on the table
// ---------------------------------------------------------------------------

// Two keys guaranteed to live on different shards.
std::pair<uint64_t, uint64_t> two_distinct_shard_keys(
    const api::TableLock<R>& table) {
  const uint64_t a = 0;
  for (uint64_t b = 1; b < 1000; ++b) {
    if (table.shard_for_key(b) != table.shard_for_key(a)) return {a, b};
  }
  ADD_FAILURE() << "no distinct-shard key found";
  return {0, 0};
}

// Two keys with shard(first) < shard(second): an ascending batch over
// them holds the first when it reaches (and possibly gives up on) the
// second - the shape the prefix-backout assertions need.
template <class TableT>
std::pair<uint64_t, uint64_t> ordered_shard_keys(const TableT& table) {
  for (uint64_t a = 0; a < 1000; ++a) {
    for (uint64_t b = a + 1; b < 1000; ++b) {
      if (table.shard_for_key(a) < table.shard_for_key(b)) return {a, b};
    }
  }
  ADD_FAILURE() << "no ascending shard pair found";
  return {0, 0};
}

TEST(SvcKeyedTry, TryAcquireKeyWouldBlockOnBusyShardOnly) {
  harness::RealWorld w(2);
  api::TableLock<R> table(w.env, /*shards=*/4, /*ports_per_shard=*/2,
                          /*npids=*/2);
  const auto [ka, kb] = two_distinct_shard_keys(table);

  svc::Session s0(table, w.proc(0), 0);
  svc::Session s1(table, w.proc(1), 1);

  auto held = s0.acquire(ka).value();

  auto r1 = s1.try_acquire(ka);  // same shard: busy
  ASSERT_FALSE(r1.has_value());
  EXPECT_EQ(r1.error(), svc::Errc::kWouldBlock);

  auto r2 = s1.try_acquire(kb);  // different shard: free
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->shard(), table.shard_for_key(kb));
  r2->release();

  held.release();
  auto r3 = s1.acquire_for(ka, 500ms);  // keyed deadline verb
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->shard(), table.shard_for_key(ka));
}

// ---------------------------------------------------------------------------
// Double-release idempotence and session-destruction-while-held, across
// EVERY registry entry, real threads and counted platforms.
// ---------------------------------------------------------------------------

template <class P, class L>
void double_release_and_orphan_roundtrip(typename P::Env& env,
                                         platform::Process<P>& h) {
  L lock(env, api::clamp_processes(api::lock_traits_v<L>, 2));

  // Double release through a live session.
  {
    svc::Session<L> s(lock, h, 0);
    std::optional<svc::Guard<L>> g;
    if constexpr (api::KeyedLock<L>) {
      g.emplace(s.acquire(/*key=*/7).value());
    } else {
      g.emplace(s.acquire().value());
    }
    g->release();
    g->release();  // no-op
    EXPECT_EQ(s.stats().releases, 1u) << L::kName;
  }

  // Session destroyed while the guard is held: the shared core keeps the
  // guard valid; release still runs exactly once and the lock stays
  // usable afterwards.
  std::optional<svc::Guard<L>> orphan;
  {
    auto s = std::make_unique<svc::Session<L>>(lock, h, 0);
    if constexpr (api::KeyedLock<L>) {
      orphan.emplace(s->acquire(/*key=*/7).value());
    } else {
      orphan.emplace(s->acquire().value());
    }
  }  // session gone, guard held
  EXPECT_TRUE(orphan->held()) << L::kName;
  orphan->release();
  orphan->release();  // idempotent on the orphan too
  EXPECT_FALSE(orphan->held()) << L::kName;

  // Re-acquirable through a fresh session.
  svc::Session<L> s2(lock, h, 0);
  if constexpr (api::KeyedLock<L>) {
    auto g2 = s2.acquire(/*key=*/7).value();
    EXPECT_EQ(g2.shard(), lock.shard_for_key(7)) << L::kName;
  } else {
    auto g2 = s2.acquire().value();
    EXPECT_TRUE(g2.held()) << L::kName;
  }
}

TEST(SvcGuards, DoubleReleaseAndOrphanAcrossRegistryRealThreads) {
  api::for_each_lock<R>([&](auto tag) {
    using L = typename decltype(tag)::type;
    SCOPED_TRACE(L::kName);
    harness::RealWorld w(2);
    double_release_and_orphan_roundtrip<R, L>(w.env, w.proc(0));
  });
}

TEST(SvcGuards, DoubleReleaseAndOrphanAcrossRegistrySim) {
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    api::for_each_lock<C>([&](auto tag) {
      using L = typename decltype(tag)::type;
      SCOPED_TRACE(L::kName);
      harness::CountedWorld w(kind, 2);
      double_release_and_orphan_roundtrip<C, L>(w.env, w.proc(0));
    });
  }
}

// BatchGuard versions of the same two properties.
TEST(SvcGuards, BatchGuardDoubleReleaseAndOrphan) {
  harness::RealWorld w(2);
  api::TableLock<R> table(w.env, /*shards=*/4, /*ports_per_shard=*/2,
                          /*npids=*/2);
  const uint64_t keys[3] = {1, 2, 3};
  {
    svc::Session s(table, w.proc(0), 0);
    svc::BatchGuard g(s, std::span<const uint64_t>(keys, 3));
    EXPECT_GE(g.shard_count(), 1);
    g.release();
    g.release();  // no-op
    EXPECT_EQ(s.stats().releases, 1u);
    EXPECT_EQ(s.stats().batch_acquires, 1u);
  }
  std::optional<svc::BatchGuard<api::TableLock<R>>> orphan;
  {
    auto s = std::make_unique<svc::Session<api::TableLock<R>>>(table,
                                                               w.proc(0), 0);
    orphan.emplace(svc::BatchGuard(*s, std::span<const uint64_t>(keys, 3)));
  }
  EXPECT_TRUE(orphan->held());
  orphan->release();
  orphan->release();
  // All shards free again: a rival batch over the same keys succeeds.
  svc::Session s2(table, w.proc(1), 1);
  svc::BatchGuard g2(s2, std::span<const uint64_t>(keys, 3));
  EXPECT_TRUE(g2.held());
}

// ---------------------------------------------------------------------------
// BatchGuard semantics
// ---------------------------------------------------------------------------

TEST(SvcBatch, MaskCoversEveryKeyShardAndCollapsesDuplicates) {
  harness::RealWorld w(1);
  api::TableLock<R> table(w.env, 8, 1, 1);
  svc::Session s(table, w.proc(0), 0);
  const uint64_t keys[4] = {10, 11, 10, 12};  // dup key collapses
  svc::BatchGuard g(s, std::span<const uint64_t>(keys, 4));
  for (uint64_t k : keys) {
    EXPECT_TRUE(g.holds_shard(table.shard_for_key(k))) << k;
  }
  EXPECT_LE(g.shard_count(), 3);
}

// The session verb mints the same batch through the admission gate.
TEST(SvcBatch, SessionAcquireBatchVerbMintsAndSheds) {
  harness::RealWorld w(1);
  api::TableLock<R> table(w.env, 4, 1, 1);
  {
    svc::Session s(table, w.proc(0), 0);
    auto g = s.acquire_batch({uint64_t{1}, uint64_t{2}});
    ASSERT_TRUE(g.has_value());
    EXPECT_GE(g->shard_count(), 1);
    EXPECT_EQ(s.stats().batch_acquires, 1u);
  }
  NeverAdmit gate;
  svc::Session s(table, w.proc(0), 0, /*policy=*/nullptr, &gate);
  auto g = s.acquire_batch({uint64_t{1}, uint64_t{2}});
  ASSERT_FALSE(g.has_value());
  EXPECT_EQ(g.error(), svc::Errc::kOverloaded);
  EXPECT_EQ(table.underlying().current_batch(w.proc(0).ctx, 0), 0u);
}

// Overlapping batches from real threads: sorted two-phase locking means
// no deadlock regardless of key order, and per-shard ME holds.
TEST(SvcBatch, OverlappingBatchesRealThreadsNoDeadlock) {
  constexpr int kProcs = 4;
  constexpr uint64_t kIters = 150;
  constexpr int kShards = 4;
  Scenario<R> s(kProcs);
  api::TableLock<R> table(s.world().env, kShards, kProcs, kProcs);
  auto* chk = s.audits().emplace<ExclusionAudit>(kShards);
  auto sessions = std::make_shared<
      std::vector<std::unique_ptr<svc::Session<api::TableLock<R>>>>>(
      svc::open_sessions(table, s.world(), kProcs));
  auto& audits = s.audits();
  std::vector<uint64_t> done(kProcs, 0);
  s.set_body([sessions, &audits, &table, done](platform::Process<R>& h,
                                               int pid) mutable {
    (void)h;
    uint64_t& n = done[static_cast<size_t>(pid)];
    // Deliberately UNsorted key pairs that overlap across pids.
    const uint64_t keys[2] = {n + static_cast<uint64_t>(pid),
                              n + static_cast<uint64_t>(pid) * 31 + 1};
    svc::BatchGuard g(*(*sessions)[static_cast<size_t>(pid)],
                      std::span<const uint64_t>(keys, 2));
    for (int sh = 0; sh < table.shards(); ++sh) {
      if (g.holds_shard(sh)) audits.on_enter(pid, sh);
    }
    for (int sh = 0; sh < table.shards(); ++sh) {
      if (g.holds_shard(sh)) audits.on_exit(pid, sh);
    }
    ++n;
  });
  s.set_iterations(kIters);
  auto res = s.run();
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(chk->me_violations(), 0u);
  uint64_t batches = 0;
  for (auto& sess : *sessions) batches += sess->stats().batch_acquires;
  EXPECT_EQ(batches, kProcs * kIters);
}

// ---------------------------------------------------------------------------
// Deadline batches: timeout backs the prefix out, success covers the mask.
// ---------------------------------------------------------------------------

TEST(SvcBatchDeadline, TimesOutAndBacksOutThePrefix) {
  harness::RealWorld w(2);
  api::TableLock<R> table(w.env, /*shards=*/4, /*ports_per_shard=*/2,
                          /*npids=*/2);
  // shard(ka) < shard(kb), so the ascending batch really holds a prefix
  // when it gives up on the rival-held shard(kb).
  const auto [ka, kb] = ordered_shard_keys(table);

  svc::Session s0(table, w.proc(0), 0);
  svc::Session s1(table, w.proc(1), 1);

  // pid0 blocks shard(kb); pid1's batch must acquire shard(ka) then time
  // out on shard(kb) and back the prefix out.
  auto held = s0.acquire(kb).value();
  auto r = s1.acquire_batch_for({ka, kb}, 5ms);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), svc::Errc::kTimeout);
  EXPECT_EQ(s1.stats().timeouts, 1u);
  EXPECT_EQ(s1.stats().batch_acquires, 0u);

  // No residue: the intent mask is cleared and the prefix shard is free
  // again (its pool back to full).
  auto& ctx = w.proc(1).ctx;
  EXPECT_EQ(table.underlying().current_batch(ctx, 1), 0u);
  auto& lease_a = table.underlying().shard_lease(table.shard_for_key(ka));
  EXPECT_EQ(lease_a.free_ports(ctx), lease_a.ports());

  // With the rival gone the same batch succeeds and covers both shards.
  held.release();
  auto r2 = s1.acquire_batch_for({ka, kb}, 500ms);
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(r2->holds_shard(table.shard_for_key(ka)));
  EXPECT_TRUE(r2->holds_shard(table.shard_for_key(kb)));
  EXPECT_EQ(s1.stats().batch_acquires, 1u);
}

// ---------------------------------------------------------------------------
// BatchGuard crash consistency.
//
// Whitebox sweeps: crash a single process at EVERY shared-memory step of
// unlock_batch (mid-release), lock_batch (mid-acquire), and the deadline
// path's sorted prefix BACKOUT (mid-backout), via a fresh world per
// crash point. After each crash: recover through the session, then
// verify zero leaked or duplicated holds - every shard's pool
// repatriates to full after scavenge and every shard lock is
// re-acquirable.
// ---------------------------------------------------------------------------

// Drive one crash at `crash_step` ops after the probe point inside the
// given phase ("acquire" or "release"); returns false when the phase
// completed before the crash step fired (sweep exhausted).
bool batch_crash_roundtrip(uint64_t crash_offset, bool crash_in_acquire) {
  harness::CountedWorld w(ModelKind::kCc, 2);
  api::TableLock<C> table(w.env, /*shards=*/3, /*ports_per_shard=*/2,
                          /*npids=*/2);
  auto& h = w.proc(0);
  const uint64_t keys[2] = {0, 1};  // usually 2 distinct shards

  svc::Session s(table, h, 0);
  bool crashed = false;
  std::optional<sim::CrashAtSteps> plan;
  if (crash_in_acquire) {
    plan.emplace(0, std::vector<uint64_t>{h.ctx.step_index + crash_offset});
    h.ctx.crash = &*plan;
  }
  try {
    svc::BatchGuard g(s, std::span<const uint64_t>(keys, 2));
    if (!crash_in_acquire) {
      plan.emplace(0, std::vector<uint64_t>{h.ctx.step_index + crash_offset});
      h.ctx.crash = &*plan;
    }
    g.release();
  } catch (const sim::ProcessCrashed&) {
    crashed = true;
  }
  h.ctx.crash = nullptr;

  // Recovery protocol: the session replays whatever the crash left.
  s.recover();
  EXPECT_EQ(table.underlying().current_batch(h.ctx, 0), 0u);

  // Zero leaked or duplicated holds: after scavenging, every shard pool
  // is full again, and a rival can batch-acquire everything.
  auto& sctx = w.proc(1).ctx;
  for (int sh = 0; sh < table.shards(); ++sh) {
    auto& lease = table.underlying().shard_lease(sh);
    EXPECT_EQ(lease.held(h.ctx, 0), core::kNoLease) << "shard " << sh;
    const int scavenged = lease.scavenge(sctx);
    EXPECT_NE(scavenged, core::kScavengeRefused) << "shard " << sh;
    EXPECT_EQ(lease.free_ports(sctx), lease.ports()) << "shard " << sh;
  }
  svc::Session s1(table, w.proc(1), 1);
  svc::BatchGuard g1(s1, std::span<const uint64_t>(keys, 2));
  EXPECT_TRUE(g1.held());
  return crashed;
}

TEST(SvcBatch, CrashSweepMidAcquireZeroLeakedOrDuplicatedHolds) {
  int crashes = 0;
  for (uint64_t off = 0; off < 200; ++off) {
    if (batch_crash_roundtrip(off, /*crash_in_acquire=*/true)) {
      ++crashes;
    } else {
      break;  // acquisition completed before the crash step: swept all
    }
  }
  EXPECT_GT(crashes, 10);  // the sweep really covered the acquire path
}

TEST(SvcBatch, CrashSweepMidReleaseZeroLeakedOrDuplicatedHolds) {
  int crashes = 0;
  for (uint64_t off = 0; off < 200; ++off) {
    if (batch_crash_roundtrip(off, /*crash_in_acquire=*/false)) {
      ++crashes;
    } else {
      break;  // release completed before the crash step: swept all
    }
  }
  EXPECT_GT(crashes, 5);  // the sweep really covered the release path
}

// One crash at `crash_offset` ops into a deadline batch that is FORCED
// to back out (a rival holds the batch's later shard and the deadline is
// already expired): the sweep walks the crash through shard-A
// acquisition, the backout's unlock/lease-release steps, and the intent
// clear. Returns false once the whole timed-out batch ran to completion
// before the crash step (sweep exhausted).
bool batch_backout_crash_roundtrip(uint64_t crash_offset) {
  harness::CountedWorld w(ModelKind::kCc, 3);
  api::TableLock<C> table(w.env, /*shards=*/4, /*ports_per_shard=*/2,
                          /*npids=*/3);
  auto& h = w.proc(0);

  const auto [ka, kb] = ordered_shard_keys(table);
  // The rival (pid 2) holds shard(kb) while pid0's batch runs.
  svc::Session rival(table, w.proc(2), 2);
  auto held = rival.acquire(kb).value();

  svc::Session s(table, h, 0);
  const uint64_t keys[2] = {ka, kb};
  bool crashed = false;
  sim::CrashAtSteps plan(0, {h.ctx.step_index + crash_offset});
  h.ctx.crash = &plan;
  bool exhausted = false;
  try {
    // Deadline already expired: acquire shard(ka) (attempt precedes the
    // expiry check), fail on the busy shard(kb), back out.
    auto r = s.acquire_batch_until(std::span<const uint64_t>(keys, 2),
                                   svc::Session<api::TableLock<C>>::Clock::
                                       now() -
                                       1ms);
    EXPECT_FALSE(r.has_value());  // rival holds kb: must time out
    exhausted = true;             // full backout ran without crashing
  } catch (const sim::ProcessCrashed&) {
    crashed = true;
  }
  h.ctx.crash = nullptr;

  // Release the rival BEFORE recovering: if the crash hit between the
  // lease claim on shard(kb) and its backout, the replay must re-enter
  // that shard's critical section, which means waiting out the rival's
  // hold - and the rival shares this test thread.
  held.release();

  // Recovery protocol: replay whatever the crash left (including a
  // half-backed-out prefix).
  s.recover();
  EXPECT_EQ(table.underlying().current_batch(h.ctx, 0), 0u);

  auto& sctx = w.proc(1).ctx;
  for (int sh = 0; sh < table.shards(); ++sh) {
    auto& lease = table.underlying().shard_lease(sh);
    EXPECT_EQ(lease.held(h.ctx, 0), core::kNoLease) << "shard " << sh;
    EXPECT_NE(lease.scavenge(sctx), core::kScavengeRefused) << "shard " << sh;
    EXPECT_EQ(lease.free_ports(sctx), lease.ports()) << "shard " << sh;
  }
  // A rival batch over both keys succeeds afterwards.
  svc::Session s1(table, w.proc(1), 1);
  svc::BatchGuard g1(s1, std::span<const uint64_t>(keys, 2));
  EXPECT_TRUE(g1.held());
  EXPECT_TRUE(crashed || exhausted);
  return crashed;
}

TEST(SvcBatchDeadline, CrashSweepMidBackoutZeroLeakedOrDuplicatedHolds) {
  int crashes = 0;
  for (uint64_t off = 0; off < 300; ++off) {
    if (batch_backout_crash_roundtrip(off)) {
      ++crashes;
    } else {
      break;  // timed-out batch completed before the crash step: swept all
    }
  }
  EXPECT_GT(crashes, 10);  // the sweep really covered the backout path
}

// ---------------------------------------------------------------------------
// Scheduled multi-process crash storms over batches, with full ME+CSR
// audits: the audited replay protocol re-enters every still-held shard
// (crashed pid first - CSR) before the batch ends.
// ---------------------------------------------------------------------------

template <class L>
void audited_batch_body(harness::AuditSet& audits, platform::Process<C>& h,
                        int pid, svc::Session<L>& session,
                        std::vector<typename C::template Atomic<int>>& scratch,
                        uint64_t iteration) {
  auto& table = session.lock().underlying();
  if (table.current_batch(h.ctx, pid) != 0) {
    // A crashed batch is pending: audited replay. The visitor runs
    // inside each re-entered critical section, so the audit observes the
    // crashed pid re-entering every still-held shard FIRST (the CSR
    // contract), after which the interrupted batch super-passage ends.
    table.recover_batch(h, pid, [&](platform::Process<C>&, int shard) {
      audits.on_enter(pid, shard);
      audits.on_exit(pid, shard);
    });
  }
  // Keys stable across crash retries of the same logical operation.
  const uint64_t base = static_cast<uint64_t>(pid) * 7919u + iteration;
  const uint64_t keys[2] = {base, base * 31u + 5u};
  svc::BatchGuard<L> g(session, std::span<const uint64_t>(keys, 2));
  bool crashed_in_cs = true;
  try {
    const int shards = table.shards();
    for (int sh = 0; sh < shards; ++sh) {
      if (g.holds_shard(sh)) audits.on_enter(pid, sh);
    }
    for (int sh = 0; sh < shards; ++sh) {
      if (!g.holds_shard(sh)) continue;
      auto& cell = scratch[static_cast<size_t>(sh)];
      cell.store(h.ctx, pid);
      RME_ASSERT(cell.load(h.ctx) == pid,
                 "svc batch: shard scratch overwritten");
    }
    crashed_in_cs = false;
    for (int sh = 0; sh < shards; ++sh) {
      if (g.holds_shard(sh)) audits.on_exit(pid, sh);
    }
    g.release();
  } catch (const sim::ProcessCrashed&) {
    if (crashed_in_cs) {
      for (int sh = 0; sh < table.shards(); ++sh) {
        if (g.holds_shard(sh)) audits.on_crash_in_cs(pid, sh);
      }
    }
    throw;
  }
}

void run_batch_crash_scenario(ModelKind kind, uint64_t seed, int nth_fas,
                              sim::CrashAroundFas::When when) {
  constexpr int kProcs = 3;
  constexpr int kShards = 3;
  constexpr uint64_t kIters = 3;
  Scenario<C> s(kind, kProcs);
  using L = api::TableLock<C>;
  L table(s.world().env, kShards, /*ports_per_shard=*/kProcs, kProcs);
  auto* chk = s.audits().emplace<ExclusionAudit>(kShards);
  auto sessions =
      std::make_shared<std::vector<std::unique_ptr<svc::Session<L>>>>(
          svc::open_sessions(table, s.world(), kProcs));
  auto scratch = std::make_shared<std::vector<typename C::Atomic<int>>>(
      static_cast<size_t>(kShards));
  for (auto& cell : *scratch) {
    cell.attach(s.world().env, rmr::kNoOwner);
    cell.init(-1);
  }
  auto& audits = s.audits();
  std::vector<uint64_t> done(kProcs, 0);
  s.set_body([sessions, &audits, scratch, done](platform::Process<C>& h,
                                                int pid) mutable {
    uint64_t& n = done[static_cast<size_t>(pid)];
    audited_batch_body<L>(audits, h, pid,
                          *(*sessions)[static_cast<size_t>(pid)], *scratch,
                          n);
    ++n;
  });

  auto plan = std::make_unique<sim::MultiPlan>();
  plan->emplace<sim::CrashAroundFas>(0, nth_fas, when);
  if (kProcs >= 2) {
    plan->emplace<sim::CrashAroundFas>(1, nth_fas + 2, when);
  }
  s.set_crash_plan(std::move(plan));
  s.use_random_schedule(seed);
  s.set_iterations(kIters);
  s.set_max_steps(80000000);

  auto res = s.run();
  EXPECT_TRUE(res.ok()) << res.summary();
  for (int pid = 0; pid < kProcs; ++pid) {
    EXPECT_EQ(res.completions[static_cast<size_t>(pid)], kIters) << pid;
  }
  EXPECT_EQ(chk->me_violations(), 0u);
  EXPECT_EQ(chk->csr_violations(), 0u);

  // No pid left anything behind, and no port leaked for good: scavenge
  // repatriates every pool (zero leaked or duplicated holds).
  auto& ctx0 = s.world().proc(0).ctx;
  for (int pid = 0; pid < kProcs; ++pid) {
    EXPECT_EQ(table.underlying().current_batch(ctx0, pid), 0u) << pid;
  }
  for (int sh = 0; sh < kShards; ++sh) {
    auto& lease = table.underlying().shard_lease(sh);
    EXPECT_NE(lease.scavenge(ctx0), core::kScavengeRefused) << sh;
    EXPECT_EQ(lease.free_ports(ctx0), lease.ports()) << sh;
  }
}

TEST(SvcBatch, AuditedCrashStormSweepBothModels) {
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    for (int nth : {1, 2, 3, 5, 8, 12}) {
      for (auto when :
           {sim::CrashAroundFas::kBefore, sim::CrashAroundFas::kAfter}) {
        SCOPED_TRACE(testing::Message()
                     << "kind=" << static_cast<int>(kind) << " nth=" << nth
                     << " when=" << static_cast<int>(when));
        run_batch_crash_scenario(kind, 17u + static_cast<uint64_t>(nth), nth,
                                 when);
      }
    }
  }
}

}  // namespace

// R2Lock tests: the 2-port recoverable Peterson core under deterministic
// schedules, random schedules, and crash injection at every shared-memory
// step. R2Lock is the foundation of the RLock tournament, which serialises
// queue repair in the main algorithm - its mutual exclusion, starvation
// freedom and recoverability are load-bearing for everything above it.
#include <gtest/gtest.h>

#include "harness/sim_run.hpp"
#include "harness/world.hpp"
#include "rlock/r2lock.hpp"

namespace {

using namespace rme;
using harness::ExclusionChecker;
using harness::LockBody;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;

using R2 = rlock::R2Lock<platform::Counted>;

TEST(R2Lock, UncontendedAcquireRelease) {
  SimRun sim(ModelKind::kCc, 2);
  R2 lk;
  lk.attach(sim.world().env);
  LockBody<R2> body(lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {10, 0}, 100000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(sim.checker().entries(), 10u);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
}

TEST(R2Lock, ContendedRoundRobinIsExclusiveAndLive) {
  SimRun sim(ModelKind::kCc, 2);
  R2 lk;
  lk.attach(sim.world().env);
  LockBody<R2> body(lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {50, 50}, 1000000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(sim.checker().entries(), 100u);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
  EXPECT_EQ(sim.checker().csr_violations(), 0u);
}

// Property sweep: random schedules, no crashes.
class R2RandomSchedules : public ::testing::TestWithParam<uint64_t> {};

TEST_P(R2RandomSchedules, ExclusionAndProgress) {
  SimRun sim(ModelKind::kDsm, 2);
  R2 lk;
  lk.attach(sim.world().env);
  LockBody<R2> body(lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::SeededRandom pol(GetParam());
  sim::NoCrash nc;
  auto res = sim.run(pol, nc, {40, 40}, 2000000);
  EXPECT_FALSE(res.exhausted) << "seed " << GetParam();
  EXPECT_EQ(sim.checker().entries(), 80u);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, R2RandomSchedules,
                         ::testing::Range<uint64_t>(0, 16));

// Systematic single-crash sweep: crash process 0 at every possible shared
// memory step index and verify ME/CSR/liveness each time. This is the
// "crash step can occur at any time" quantifier of Section 1.2 made
// executable.
TEST(R2Lock, CrashAtEveryStepOfAContendedRun) {
  // Pass 1: count process 0's steps in a crash-free reference run.
  uint64_t total_steps;
  {
    SimRun sim(ModelKind::kCc, 2);
    R2 lk;
    lk.attach(sim.world().env);
    LockBody<R2> body(lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    sim::RoundRobin rr;
    sim::NoCrash nc;
    auto res = sim.run(rr, nc, {6, 6}, 1000000);
    ASSERT_FALSE(res.exhausted);
    total_steps = sim.world().proc(0).ctx.step_index;
  }
  ASSERT_GT(total_steps, 20u);

  // Pass 2: one run per crash point.
  for (uint64_t s = 0; s < total_steps; ++s) {
    SimRun sim(ModelKind::kCc, 2);
    R2 lk;
    lk.attach(sim.world().env);
    LockBody<R2> body(lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    sim::RoundRobin rr;
    sim::CrashAtSteps plan(0, {s});
    auto res = sim.run(rr, plan, {6, 6}, 2000000);
    EXPECT_FALSE(res.exhausted) << "crash step " << s;
    EXPECT_EQ(sim.checker().me_violations(), 0u) << "crash step " << s;
    EXPECT_EQ(sim.checker().csr_violations(), 0u) << "crash step " << s;
    EXPECT_EQ(res.completions[0], 6u) << "crash step " << s;
    EXPECT_EQ(res.completions[1], 6u) << "crash step " << s;
  }
}

// Double-crash storms with random schedules: both processes crash
// repeatedly; with a finite crash budget everyone finishes (starvation
// freedom under the paper's finite-crash precondition).
class R2CrashStorm : public ::testing::TestWithParam<uint64_t> {};

TEST_P(R2CrashStorm, BothSidesCrashRepeatedly) {
  SimRun sim(ModelKind::kDsm, 2);
  R2 lk;
  lk.attach(sim.world().env);
  LockBody<R2> body(lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::SeededRandom pol(GetParam() * 1337 + 1);
  sim::RandomCrash crash(0.01, GetParam(), 60);
  auto res = sim.run(pol, crash, {30, 30}, 4000000);
  EXPECT_FALSE(res.exhausted) << "seed " << GetParam();
  EXPECT_EQ(sim.checker().me_violations(), 0u);
  EXPECT_EQ(sim.checker().csr_violations(), 0u);
  EXPECT_EQ(res.completions[0], 30u);
  EXPECT_EQ(res.completions[1], 30u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, R2CrashStorm,
                         ::testing::Range<uint64_t>(0, 12));

// Crash inside the critical section: the owner re-enters via the OWN fast
// path in bounded steps while the rival stays out (CSR + wait-free CSR).
TEST(R2Lock, CrashInCsReentersBeforeRival) {
  SimRun sim(ModelKind::kCc, 2);
  R2 lk;
  lk.attach(sim.world().env);
  LockBody<R2> body(lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  // Find a step index inside p0's CS: LockBody does scratch ops between
  // on_enter and on_exit; crash p0 broadly across the run and rely on the
  // checker to flag any CSR violation.
  for (uint64_t s = 4; s < 40; s += 3) {
    SimRun sim2(ModelKind::kCc, 2);
    R2 lk2;
    lk2.attach(sim2.world().env);
    LockBody<R2> body2(lk2, sim2.world(), sim2.checker());
    sim2.set_body([&](SimProc& h, int pid) { body2(h, pid); });
    sim::SeededRandom pol(s);
    sim::CrashAtSteps plan(0, {s});
    auto res = sim2.run(pol, plan, {8, 8}, 2000000);
    EXPECT_FALSE(res.exhausted) << "crash step " << s;
    EXPECT_EQ(sim2.checker().csr_violations(), 0u) << "crash step " << s;
    EXPECT_EQ(sim2.checker().me_violations(), 0u) << "crash step " << s;
  }
}

// RMR accounting: an uncontended passage is O(1) on both models.
TEST(R2Lock, UncontendedPassageRmrIsConstant) {
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    SimRun sim(kind, 2);
    R2 lk;
    lk.attach(sim.world().env);
    sim.set_body([&](SimProc& h, int pid) {
      lk.lock(h, pid);
      lk.unlock(h, pid);
    });
    sim::RoundRobin rr;
    sim::NoCrash nc;
    auto res = sim.run(rr, nc, {20, 0}, 1000000);
    ASSERT_FALSE(res.exhausted);
    const auto& c = sim.world().counters(0);
    // 20 passages; allow a generous constant per passage.
    EXPECT_LE(c.rmrs, 20u * 16u)
        << (kind == ModelKind::kCc ? "CC" : "DSM");
  }
}

// A blocked waiter spins locally: its RMRs stay O(1) while the owner sits
// in the CS for a long time (DSM local-spin property).
TEST(R2Lock, BlockedWaiterSpinsLocallyOnDsm) {
  SimRun sim(ModelKind::kDsm, 2);
  R2 lk;
  lk.attach(sim.world().env);
  platform::Counted::Atomic<int> release;
  release.attach(sim.world().env, rmr::kNoOwner);
  release.init(0);
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      lk.lock(h, 0);
      // Hold the lock until told to release.
      while (release.load(h.ctx) == 0) {
      }
      lk.unlock(h, 0);
    } else {
      lk.lock(h, 1);
      lk.unlock(h, 1);
      release.store(h.ctx, 1);  // only reached after winning the lock
    }
  });
  // p0 takes the lock, then alternate for a while: p1 blocks, spins...
  std::vector<int> script;
  for (int i = 0; i < 12; ++i) script.push_back(0);   // p0 acquires, holds
  for (int i = 0; i < 400; ++i) script.push_back(1);  // p1 spins blocked
  // then release: let p0 see release==0 loop... p0 still waits on release,
  // deadlock unless p1 eventually wins; give p0 the release by hand:
  sim::Scripted pol(script);
  sim::NoCrash nc;
  // p0 can never finish (release never set while p1 blocked) - bound steps
  // and inspect counters instead of completion.
  auto res = sim.run(pol, nc, {1, 1}, 3000);
  (void)res;
  const auto& c1 = sim.world().counters(1);
  EXPECT_GT(c1.steps, 300u);  // p1 did spin a lot
  EXPECT_LE(c1.rmrs, 16u);    // ...locally
}

}  // namespace

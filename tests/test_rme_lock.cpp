// Core algorithm tests: the k-ported recoverable lock of Figures 3-4.
//
// Validates every clause of Theorem 2 executable-ly:
//   mutual exclusion, starvation freedom, wait-free Exit, wait-free CSR,
//   O(1) RMR crash-free passages (CC and DSM), O(fk) crashed
//   super-passages, FAS as the only RMW - plus the three repair branches
//   (Line 47 FAS / Line 48 headpath / Line 48 SpecialNode) pinned by
//   deterministic crash placement, and systematic crash-at-every-step
//   sweeps.
#include <gtest/gtest.h>

#include <memory>

#include "core/rme_lock.hpp"
#include "harness/sim_run.hpp"
#include "harness/world.hpp"

namespace {

using namespace rme;
using harness::ExclusionChecker;
using harness::LockBody;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;

using Lock = core::RmeLock<platform::Counted>;

std::unique_ptr<Lock> make_lock(SimRun& sim, int ports,
                                bool recycle = true) {
  typename Lock::Options opt;
  opt.recycle = recycle;
  return std::make_unique<Lock>(sim.world().env, ports, opt);
}

TEST(RmeLock, SingleProcessRepeatedPassages) {
  SimRun sim(ModelKind::kCc, 1);
  auto lk = make_lock(sim, 1);
  LockBody<Lock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {25}, 1000000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(sim.checker().entries(), 25u);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
  EXPECT_EQ(lk->total_stats().repairs, 0u);  // no crash, no repair
}

TEST(RmeLock, ContendedRoundRobinExclusive) {
  SimRun sim(ModelKind::kCc, 4);
  auto lk = make_lock(sim, 4);
  LockBody<Lock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {20, 20, 20, 20}, 4000000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(sim.checker().entries(), 80u);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
}

// FIFO under crash-free round-robin: the FAS queue admits processes in
// enqueue order, so with a fair scheduler nobody is ever overtaken twice.
TEST(RmeLock, QueueOrderBoundsBypass) {
  SimRun sim(ModelKind::kCc, 3);
  auto lk = make_lock(sim, 3);
  std::vector<int> order;
  sim.set_body([&](SimProc& h, int pid) {
    lk->lock(h, pid);
    order.push_back(pid);
    lk->unlock(h, pid);
  });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {10, 10, 10}, 2000000);
  ASSERT_FALSE(res.exhausted);
  // Each process appears 10 times, and between two consecutive CS entries
  // of one process every other active process appears at most twice
  // (bounded bypass - a consequence of FIFO handoff).
  for (int pid = 0; pid < 3; ++pid) {
    int last = -1;
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] != pid) continue;
      if (last >= 0) {
        int others[3] = {0, 0, 0};
        for (size_t j = static_cast<size_t>(last) + 1; j < i; ++j) {
          ++others[order[j]];
        }
        for (int q = 0; q < 3; ++q) {
          if (q != pid) {
            EXPECT_LE(others[q], 2) << "pid " << pid;
          }
        }
      }
      last = static_cast<int>(i);
    }
  }
}

// Property sweep over random schedules and port counts, crash-free.
struct SweepParam {
  int ports;
  uint64_t seed;
};
class RmeRandom : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RmeRandom, ExclusionAndProgress) {
  const auto [ports, seed] = GetParam();
  SimRun sim(ModelKind::kDsm, ports);
  auto lk = make_lock(sim, ports);
  LockBody<Lock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::SeededRandom pol(seed);
  sim::NoCrash nc;
  std::vector<uint64_t> iters(static_cast<size_t>(ports), 12);
  auto res = sim.run(pol, nc, iters, 8000000);
  EXPECT_FALSE(res.exhausted) << "ports " << ports << " seed " << seed;
  EXPECT_EQ(sim.checker().entries(), 12u * static_cast<uint64_t>(ports));
  EXPECT_EQ(sim.checker().me_violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PortsBySeeds, RmeRandom,
    ::testing::Values(SweepParam{2, 1}, SweepParam{2, 2}, SweepParam{3, 3},
                      SweepParam{3, 4}, SweepParam{4, 5}, SweepParam{4, 6},
                      SweepParam{6, 7}, SweepParam{6, 8}, SweepParam{8, 9},
                      SweepParam{8, 10}, SweepParam{12, 11},
                      SweepParam{16, 12}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.ports) + "_s" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------
// Repair branch pinning (Section 3.1's walkthrough, deterministically).
// ---------------------------------------------------------------------

// Sole process crashes after its FAS (paper: "crashed at Line 14"): the
// repair graph has one fragment whose head is &Crash; Tail points into it,
// so Line 46 fails and there is no headpath -> SpecialNode branch.
TEST(RmeLock, RepairSpecialNodeBranch) {
  SimRun sim(ModelKind::kCc, 1);
  auto lk = make_lock(sim, 1);
  LockBody<Lock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::RoundRobin rr;
  sim::CrashAroundFas plan(0, 1, sim::CrashAroundFas::kAfter);
  auto res = sim.run(rr, plan, {5}, 1000000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(res.crashes[0], 1u);
  EXPECT_EQ(lk->total_stats().repairs, 1u);
  EXPECT_EQ(lk->total_stats().repair_special, 1u);
  EXPECT_EQ(lk->total_stats().repair_fas, 0u);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
}

// Sole process crashes *before* its FAS (paper: "crashed at Line 13"): its
// node is not in the queue; Tail still points at the (exited) SpecialNode,
// which is not in the graph, so Line 46 succeeds -> Line 47 FAS branch.
TEST(RmeLock, RepairFasBranch) {
  SimRun sim(ModelKind::kCc, 1);
  auto lk = make_lock(sim, 1);
  LockBody<Lock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::RoundRobin rr;
  sim::CrashAroundFas plan(0, 1, sim::CrashAroundFas::kBefore);
  auto res = sim.run(rr, plan, {5}, 1000000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(lk->total_stats().repairs, 1u);
  EXPECT_EQ(lk->total_stats().repair_fas, 1u);
  EXPECT_EQ(lk->total_stats().repair_special, 0u);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
}

// p0 sits in the CS while p1 crashes after its FAS: p1's repair finds the
// path ending at p0's node (Pred = &InCS) and Tail pointing at p1's broken
// fragment -> headpath branch (Line 48 first arm).
TEST(RmeLock, RepairHeadpathBranch) {
  SimRun sim(ModelKind::kCc, 2);
  auto lk = make_lock(sim, 2);
  platform::Counted::Atomic<int> dummy;
  dummy.attach(sim.world().env, rmr::kNoOwner);
  dummy.init(0);
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      lk->lock(h, 0);
      // Hold the CS for many steps so p1's whole crash-recover-repair
      // cycle happens while our node's Pred == &InCS.
      for (int i = 0; i < 300; ++i) (void)dummy.load(h.ctx);
      lk->unlock(h, 0);
    } else {
      lk->lock(h, 1);
      lk->unlock(h, 1);
    }
  });
  // p0 acquires and sits in its hold loop; p1 enqueues, crashes right
  // after its FAS, recovers and repairs while p0 still owns the CS.
  std::vector<int> script;
  for (int i = 0; i < 60; ++i) script.push_back(0);   // p0 into the CS
  for (int i = 0; i < 400; ++i) script.push_back(1);  // p1 crash + repair
  sim::Scripted pol(script);  // then round-robin finishes both
  sim::CrashAroundFas plan(1, 1, sim::CrashAroundFas::kAfter);
  auto res = sim.run(pol, plan, {1, 1}, 1000000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(lk->total_stats().repairs, 1u);
  EXPECT_EQ(lk->total_stats().repair_headpath, 1u)
      << "fas=" << lk->total_stats().repair_fas
      << " special=" << lk->total_stats().repair_special;
}

// ---------------------------------------------------------------------
// Systematic crash-at-every-step sweep (k = 3).
// ---------------------------------------------------------------------
TEST(RmeLock, CrashAtEveryStepOfAContendedRun) {
  uint64_t total_steps;
  {
    SimRun sim(ModelKind::kCc, 3);
    auto lk = make_lock(sim, 3);
    LockBody<Lock> body(*lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    sim::RoundRobin rr;
    sim::NoCrash nc;
    auto res = sim.run(rr, nc, {4, 4, 4}, 4000000);
    ASSERT_FALSE(res.exhausted);
    total_steps = sim.world().proc(0).ctx.step_index;
  }
  ASSERT_GT(total_steps, 40u);

  for (uint64_t s = 0; s < total_steps; ++s) {
    SimRun sim(ModelKind::kCc, 3);
    auto lk = make_lock(sim, 3);
    LockBody<Lock> body(*lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    sim::RoundRobin rr;
    sim::CrashAtSteps plan(0, {s});
    auto res = sim.run(rr, plan, {4, 4, 4}, 8000000);
    EXPECT_FALSE(res.exhausted) << "crash step " << s;
    EXPECT_EQ(sim.checker().me_violations(), 0u) << "crash step " << s;
    EXPECT_EQ(sim.checker().csr_violations(), 0u) << "crash step " << s;
    for (int pid = 0; pid < 3; ++pid) {
      EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 4u)
          << "crash step " << s << " pid " << pid;
    }
  }
}

// Double-crash sweep at coarser granularity: two crash points (p0 and p1)
// stride across the run simultaneously.
TEST(RmeLock, TwoProcessesCrashingTogether) {
  for (uint64_t s0 = 5; s0 < 80; s0 += 13) {
    for (uint64_t s1 = 7; s1 < 80; s1 += 17) {
      SimRun sim(ModelKind::kCc, 3);
      auto lk = make_lock(sim, 3);
      LockBody<Lock> body(*lk, sim.world(), sim.checker());
      sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
      sim::SeededRandom pol(s0 * 100 + s1);
      // Two independent single-shot plans composed.
      struct Both final : sim::CrashPlan {
        sim::CrashAtSteps a, b;
        Both(uint64_t x, uint64_t y) : a(0, {x}), b(1, {y}) {}
        bool should_crash(int pid, uint64_t step, rmr::Op op) override {
          return a.should_crash(pid, step, op) ||
                 b.should_crash(pid, step, op);
        }
      } plan(s0, s1);
      auto res = sim.run(pol, plan, {4, 4, 4}, 8000000);
      EXPECT_FALSE(res.exhausted) << "s0=" << s0 << " s1=" << s1;
      EXPECT_EQ(sim.checker().me_violations(), 0u)
          << "s0=" << s0 << " s1=" << s1;
      EXPECT_EQ(sim.checker().csr_violations(), 0u)
          << "s0=" << s0 << " s1=" << s1;
    }
  }
}

// Crash storms across port counts and seeds: everyone still finishes.
class RmeCrashStorm : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RmeCrashStorm, SurvivesRandomCrashes) {
  const auto [ports, seed] = GetParam();
  SimRun sim(ModelKind::kDsm, ports);
  auto lk = make_lock(sim, ports);
  LockBody<Lock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::SeededRandom pol(seed * 7919 + 3);
  sim::RandomCrash crash(0.004, seed, 40);
  std::vector<uint64_t> iters(static_cast<size_t>(ports), 10);
  auto res = sim.run(pol, crash, iters, 20000000);
  EXPECT_FALSE(res.exhausted) << "ports " << ports << " seed " << seed;
  EXPECT_EQ(sim.checker().me_violations(), 0u);
  EXPECT_EQ(sim.checker().csr_violations(), 0u);
  for (int pid = 0; pid < ports; ++pid) {
    EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 10u) << pid;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PortsBySeeds, RmeCrashStorm,
    ::testing::Values(SweepParam{2, 11}, SweepParam{2, 12},
                      SweepParam{3, 13}, SweepParam{4, 14},
                      SweepParam{4, 15}, SweepParam{6, 16},
                      SweepParam{8, 17}, SweepParam{8, 18}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.ports) + "_s" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------
// Complexity clauses of Theorem 2.
// ---------------------------------------------------------------------

// Crash-free passage RMR is O(1): measure per-passage RMR for k in
// {2,4,8,16}; the mean must be bounded by a constant that does not grow
// with k (we assert a fixed ceiling across all k).
TEST(RmeLock, CrashFreePassageRmrIndependentOfK) {
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    double lo = 1e9, hi = 0;
    for (int k : {2, 4, 8, 16}) {
      SimRun sim(kind, k);
      auto lk = make_lock(sim, k);
      sim.set_body([&](SimProc& h, int pid) {
        lk->lock(h, pid);
        lk->unlock(h, pid);
      });
      sim::SeededRandom pol(99);
      sim::NoCrash nc;
      std::vector<uint64_t> iters(static_cast<size_t>(k), 10);
      auto res = sim.run(pol, nc, iters, 4000000);
      ASSERT_FALSE(res.exhausted);
      uint64_t rmrs = 0, passages = 0;
      for (int pid = 0; pid < k; ++pid) {
        rmrs += sim.world().counters(pid).rmrs;
        passages += res.completions[static_cast<size_t>(pid)];
      }
      const double per_passage =
          static_cast<double>(rmrs) / static_cast<double>(passages);
      lo = std::min(lo, per_passage);
      hi = std::max(hi, per_passage);
      // Absolute sanity ceiling (implementation constant, not a k term).
      EXPECT_LE(per_passage, 60.0)
          << (kind == ModelKind::kCc ? "CC" : "DSM") << " k=" << k;
    }
    // The essential claim: flat in k. An O(k) cost would grow ~8x from
    // k=2 to k=16; we require < 1.6x spread.
    EXPECT_LE(hi / lo, 1.6) << (kind == ModelKind::kCc ? "CC" : "DSM");
  }
}

// Wait-free Exit: the number of shared-memory steps in unlock() is bounded
// regardless of contention and of waiting processes.
TEST(RmeLock, ExitIsWaitFreeBoundedSteps) {
  constexpr int k = 8;
  SimRun sim(ModelKind::kCc, k);
  auto lk = make_lock(sim, k);
  uint64_t max_exit_steps = 0;
  sim.set_body([&](SimProc& h, int pid) {
    lk->lock(h, pid);
    const uint64_t before = h.ctx.step_index;
    lk->unlock(h, pid);
    const uint64_t steps = h.ctx.step_index - before;
    if (steps > max_exit_steps) max_exit_steps = steps;
  });
  sim::SeededRandom pol(5);
  sim::NoCrash nc;
  std::vector<uint64_t> iters(k, 15);
  auto res = sim.run(pol, nc, iters, 40000000);
  ASSERT_FALSE(res.exhausted);
  // Lines 27-29 plus set() plus pool bookkeeping; reclamation is amortised
  // but its worst single pass is O(k). Bound: generous constant + O(k).
  EXPECT_LE(max_exit_steps, 32u + 4u * k);
  EXPECT_GT(max_exit_steps, 0u);
}

// Wait-free CSR: a process that crashes inside the CS re-enters within a
// bounded number of its own steps even while all other ports contend.
TEST(RmeLock, CrashInCsReentryIsBounded) {
  constexpr int k = 4;
  SimRun sim(ModelKind::kCc, k);
  auto lk = make_lock(sim, k);
  platform::Counted::Atomic<int> probe;
  probe.attach(sim.world().env, rmr::kNoOwner);
  probe.init(0);
  uint64_t reentry_steps = 0;
  bool crashed_once = false;
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      const uint64_t before = h.ctx.step_index;
      lk->lock(h, 0);
      if (crashed_once && reentry_steps == 0) {
        reentry_steps = h.ctx.step_index - before;
      }
      // Touch the probe a few times: crash plan hits us here.
      for (int i = 0; i < 6; ++i) probe.store(h.ctx, pid);
      lk->unlock(h, 0);
    } else {
      lk->lock(h, pid);
      lk->unlock(h, pid);
    }
  });
  // Crash p0 somewhere inside its CS on its first passage.
  struct CrashInCs final : sim::CrashPlan {
    bool* flag;
    explicit CrashInCs(bool* f) : flag(f) {}
    uint64_t writes = 0;
    bool should_crash(int pid, uint64_t, rmr::Op op) override {
      if (pid != 0 || *flag) return false;
      if (op == rmr::Op::kWrite) ++writes;
      if (writes == 30) {  // deep enough to be inside the CS probe loop
        *flag = true;
        return true;
      }
      return false;
    }
  } plan(&crashed_once);
  sim::SeededRandom pol(17);
  std::vector<uint64_t> iters(k, 8);
  auto res = sim.run(pol, plan, iters, 20000000);
  ASSERT_FALSE(res.exhausted);
  EXPECT_EQ(sim.checker().csr_violations(), 0u);
  if (crashed_once) {
    // Re-entry is Lines 10,17-20 plus QSBR announce: a bounded handful of
    // reads and writes, no waiting.
    EXPECT_LE(reentry_steps, 32u);
  }
}

// FAS-only instruction mix: across heavy crash-free and crashing runs, the
// lock issues loads, stores and FAS - never CAS or FAI (Theorem 2 /
// Section 1.4 advantage 3; contrast with MCS in test_baselines).
TEST(RmeLock, OnlyFasRmwIsUsed) {
  SimRun sim(ModelKind::kCc, 4);
  auto lk = make_lock(sim, 4);
  LockBody<Lock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::SeededRandom pol(3);
  sim::RandomCrash crash(0.005, 9, 25);
  auto res = sim.run(pol, crash, {8, 8, 8, 8}, 20000000);
  ASSERT_FALSE(res.exhausted);
  for (int pid = 0; pid < 4; ++pid) {
    EXPECT_EQ(sim.world().counters(pid).cas, 0u) << pid;
    EXPECT_EQ(sim.world().counters(pid).fai, 0u) << pid;
    EXPECT_GT(sim.world().counters(pid).fas, 0u) << pid;
  }
}

// O(1) cache-words claim (Section 1.4 advantage 2): the peak number of
// distinct cells a process holds in cache during crash-free passages stays
// constant as k grows. (GH's deep exploration would need Theta(k).)
TEST(RmeLock, CachedWordsPerPassageIndependentOfK) {
  // Per-*passage* cache footprint: flush before each passage, take the
  // max peak across passages. (A cumulative measure would just count the
  // distinct nodes the pool cycles through, which is not the claim.)
  size_t peaks[3];
  int idx = 0;
  for (int k : {2, 8, 16}) {
    SimRun sim(ModelKind::kCc, k);
    auto lk = make_lock(sim, k);
    rmr::CcModel* cc = sim.world().cc();
    size_t max_peak = 0;
    sim.set_body([&](SimProc& h, int pid) {
      cc->flush_cache(pid);
      lk->lock(h, pid);
      lk->unlock(h, pid);
      max_peak = std::max(max_peak, cc->peak_cache_words(pid));
    });
    sim::SeededRandom pol(7);
    sim::NoCrash nc;
    std::vector<uint64_t> iters(static_cast<size_t>(k), 0);
    iters[0] = 4;  // measure port 0 only, others idle; few iterations so
                   // the amortised QSBR scan (O(k), rare) never triggers
    auto res = sim.run(pol, nc, iters, 2000000);
    ASSERT_FALSE(res.exhausted);
    peaks[idx++] = max_peak;
  }
  EXPECT_EQ(peaks[0], peaks[1]);
  EXPECT_EQ(peaks[1], peaks[2]);  // flat in k
  EXPECT_LE(peaks[2], 32u);       // and small (O(1) words)
}

// Node recycling: with QSBR on, long runs reuse nodes instead of growing
// the arena linearly with passages.
TEST(RmeLock, QsbrRecyclesNodes) {
  SimRun sim(ModelKind::kCc, 3);
  auto lk = make_lock(sim, 3, /*recycle=*/true);
  LockBody<Lock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {60, 60, 60}, 20000000);
  ASSERT_FALSE(res.exhausted);
  // 180 passages; without recycling we'd allocate 180 nodes.
  EXPECT_LT(lk->nodes_allocated(), 60u);
  uint64_t reclaimed = 0;
  for (int p = 0; p < 3; ++p) reclaimed += lk->nodes_reclaimed(p);
  EXPECT_GT(reclaimed, 100u);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
}

TEST(RmeLock, VerbatimPaperModeAllocatesPerPassage) {
  SimRun sim(ModelKind::kCc, 2);
  auto lk = make_lock(sim, 2, /*recycle=*/false);
  LockBody<Lock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {20, 20}, 8000000);
  ASSERT_FALSE(res.exhausted);
  EXPECT_EQ(lk->nodes_allocated(), 40u);  // one fresh node per passage
}

// Unlock is idempotent: calling it twice (crash-free double release, the
// shape a crashed-then-reexecuted Exit takes) is harmless.
TEST(RmeLock, DoubleUnlockIsIdempotent) {
  SimRun sim(ModelKind::kCc, 2);
  auto lk = make_lock(sim, 2);
  LockBody<Lock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) {
    lk->lock(h, pid);
    lk->unlock(h, pid);
    lk->unlock(h, pid);  // Exit re-execution after "crash"
  });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {10, 10}, 2000000);
  EXPECT_FALSE(res.exhausted);
}

}  // namespace

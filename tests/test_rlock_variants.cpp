// RLock pluggability: the paper treats RLock as a black box with a
// contract ("a k-ported starvation-free RME algorithm"). These tests run
// the read/write Peterson variant through the same correctness battery as
// the default Signal-based R2Lock, plus RmeLock instantiated with each
// variant under crash storms - demonstrating the contract is real.
#include <gtest/gtest.h>

#include <memory>

#include "core/rme_lock.hpp"
#include "harness/sim_run.hpp"
#include "harness/world.hpp"
#include "rlock/peterson_rw.hpp"
#include "rlock/tournament.hpp"

namespace {

using namespace rme;
using harness::LockBody;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

using RwTournament = rlock::TournamentRLock<P, rlock::PetersonR2<P>>;
using RmeWithRw = core::RmeLock<P, RwTournament>;

TEST(PetersonR2, ExclusionAndProgress) {
  SimRun sim(ModelKind::kCc, 2);
  rlock::PetersonR2<P> lk;
  lk.attach(sim.world().env);
  LockBody<rlock::PetersonR2<P>> body(lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::SeededRandom pol(5);
  sim::NoCrash nc;
  auto res = sim.run(pol, nc, {30, 30}, 2000000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(sim.checker().entries(), 60u);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
}

TEST(PetersonR2, CrashAtEveryStep) {
  uint64_t total_steps;
  {
    SimRun sim(ModelKind::kCc, 2);
    rlock::PetersonR2<P> lk;
    lk.attach(sim.world().env);
    LockBody<rlock::PetersonR2<P>> body(lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    sim::RoundRobin rr;
    sim::NoCrash nc;
    auto res = sim.run(rr, nc, {5, 5}, 1000000);
    ASSERT_FALSE(res.exhausted);
    total_steps = sim.world().proc(0).ctx.step_index;
  }
  for (uint64_t s = 0; s < total_steps; ++s) {
    SimRun sim(ModelKind::kCc, 2);
    rlock::PetersonR2<P> lk;
    lk.attach(sim.world().env);
    LockBody<rlock::PetersonR2<P>> body(lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    sim::RoundRobin rr;
    sim::CrashAtSteps plan(0, {s});
    auto res = sim.run(rr, plan, {5, 5}, 2000000);
    EXPECT_FALSE(res.exhausted) << "crash step " << s;
    EXPECT_EQ(sim.checker().me_violations(), 0u) << "crash step " << s;
    EXPECT_EQ(sim.checker().csr_violations(), 0u) << "crash step " << s;
  }
}

TEST(RwTournament, ExclusionAndProgressWithCrashes) {
  constexpr int k = 8;
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    SimRun sim(ModelKind::kCc, k);
    RwTournament lk(sim.world().env, k);
    LockBody<RwTournament> body(lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    sim::SeededRandom pol(seed);
    sim::RandomCrash crash(0.01, seed, 30);
    std::vector<uint64_t> iters(k, 8);
    auto res = sim.run(pol, crash, iters, 20000000);
    EXPECT_FALSE(res.exhausted) << "seed " << seed;
    EXPECT_EQ(sim.checker().me_violations(), 0u) << "seed " << seed;
    for (int pid = 0; pid < k; ++pid) {
      EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 8u) << pid;
    }
  }
}

// The full core algorithm with the read/write RLock plugged in: all the
// repair machinery must work identically.
TEST(RmeWithRwRlock, CrashStormWithRepairs) {
  constexpr int k = 4;
  for (uint64_t seed : {10u, 11u, 12u, 13u}) {
    SimRun sim(ModelKind::kCc, k);
    RmeWithRw lk(sim.world().env, k);
    LockBody<RmeWithRw> body(lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    sim::SeededRandom pol(seed * 3 + 1);
    struct Pair final : sim::CrashPlan {
      sim::CrashAroundFas a{0, 1, sim::CrashAroundFas::kAfter};
      sim::CrashAroundFas b{2, 1, sim::CrashAroundFas::kBefore};
      bool should_crash(int pid, uint64_t step, rmr::Op op) override {
        return a.should_crash(pid, step, op) ||
               b.should_crash(pid, step, op);
      }
    } plan;
    std::vector<uint64_t> iters(k, 6);
    auto res = sim.run(pol, plan, iters, 20000000);
    EXPECT_FALSE(res.exhausted) << "seed " << seed;
    EXPECT_EQ(sim.checker().me_violations(), 0u) << "seed " << seed;
    EXPECT_EQ(lk.total_stats().repairs, 2u) << "seed " << seed;
    for (int pid = 0; pid < k; ++pid) {
      EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 6u) << pid;
    }
  }
}

// The DSM separation between the two RLock variants: while blocked, the
// Signal-based R2Lock waiter incurs O(1) RMRs; the Peterson waiter pays
// one RMR per spin iteration.
TEST(RlockVariants, DsmBlockedSpinSeparation) {
  auto blocked_rmrs = [](auto make_lock) {
    SimRun sim(ModelKind::kDsm, 2);
    auto lk = make_lock(sim);
    platform::Counted::Atomic<int> dummy;
    dummy.attach(sim.world().env, rmr::kNoOwner);
    dummy.init(0);
    sim.set_body([&](SimProc& h, int pid) {
      lk->lock(h, pid);
      if (pid == 0) {
        for (int i = 0; i < 100000; ++i) (void)dummy.load(h.ctx);
      }
      lk->unlock(h, pid);
    });
    std::vector<int> script;
    for (int i = 0; i < 10; ++i) script.push_back(0);
    for (int i = 0; i < 500; ++i) script.push_back(1);
    sim::Scripted pol(script);
    sim::NoCrash nc;
    auto res = sim.run(pol, nc, {1, 1}, 540);
    (void)res;
    return sim.world().counters(1).rmrs;
  };
  const uint64_t signal_based = blocked_rmrs([](SimRun& s) {
    return std::make_unique<rlock::TournamentRLock<P>>(s.world().env, 2);
  });
  const uint64_t rw_based = blocked_rmrs([](SimRun& s) {
    return std::make_unique<RwTournament>(s.world().env, 2);
  });
  EXPECT_LE(signal_based, 16u);
  EXPECT_GT(rw_based, 250u);  // remote spin: RMRs track blocked time
}

}  // namespace

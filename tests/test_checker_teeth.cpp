// Harness self-validation ("do the checkers have teeth?"): deliberately
// broken locks must be *caught*. A verification suite that has never seen
// a failure proves nothing about its own sensitivity; these mutation
// tests pin that the ExclusionChecker, the CS scratch protocol, and the
// exhaustion detector actually fire on the bug classes they exist for.
#include <gtest/gtest.h>

#include "harness/sim_run.hpp"
#include "harness/world.hpp"

namespace {

using namespace rme;
using harness::ExclusionChecker;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

// A "lock" that admits everyone: pure mutual-exclusion mutation.
struct NoLock {
  void lock(platform::Process<P>& h, int) {
    // One shared op so the scheduler can interleave inside the "CS".
    (void)cell->load(h.ctx);
  }
  void unlock(platform::Process<P>&, int) {}
  P::Atomic<int>* cell;
};

TEST(CheckerTeeth, NoLockIsCaughtByExclusionChecker) {
  SimRun sim(ModelKind::kCc, 3);
  P::Atomic<int> cell;
  cell.attach(sim.world().env, rmr::kNoOwner);
  cell.init(0);
  NoLock lk{&cell};
  ExclusionChecker& chk = sim.checker();
  sim.set_body([&](SimProc& h, int pid) {
    lk.lock(h, pid);
    chk.on_enter(pid);
    // Two shared ops inside the CS window so overlap is observable.
    (void)cell.load(h.ctx);
    (void)cell.load(h.ctx);
    chk.on_exit(pid);
    lk.unlock(h, pid);
  });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {10, 10, 10}, 1000000);
  ASSERT_FALSE(res.exhausted);
  EXPECT_GT(chk.me_violations(), 0u)
      << "a lock admitting everyone must be flagged";
}

// A lock that forgets waiters (never wakes them): liveness mutation, must
// surface as exhaustion, not as a hang.
struct LeakyLock {
  void lock(platform::Process<P>& h, int pid) {
    if (pid == 0) return;  // pid 0 "wins" instantly
    // Everyone else waits on a flag nobody ever sets.
    while (never->load(h.ctx) == 0) {
    }
  }
  void unlock(platform::Process<P>&, int) {}
  P::Atomic<int>* never;
};

TEST(CheckerTeeth, LostWakeupIsCaughtAsExhaustion) {
  SimRun sim(ModelKind::kCc, 2);
  P::Atomic<int> never;
  never.attach(sim.world().env, rmr::kNoOwner);
  never.init(0);
  LeakyLock lk{&never};
  sim.set_body([&](SimProc& h, int pid) {
    lk.lock(h, pid);
    lk.unlock(h, pid);
  });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {3, 3}, 20000);
  EXPECT_TRUE(res.exhausted);
  EXPECT_LT(res.completions[1], 3u);
}

// A lock that violates CSR: after a crash in the CS, it admits the rival
// first. The CSR accounting must flag it.
TEST(CheckerTeeth, CsrViolationIsCaught) {
  ExclusionChecker chk;
  chk.on_enter(0);
  chk.on_crash_in_cs(0);  // p0 dies in the CS
  chk.on_enter(1);        // rival enters before p0 re-enters: violation
  chk.on_exit(1);
  EXPECT_EQ(chk.csr_violations(), 1u);
  EXPECT_EQ(chk.me_violations(), 0u);
}

TEST(CheckerTeeth, CsrReentryByOwnerIsClean) {
  ExclusionChecker chk;
  chk.on_enter(0);
  chk.on_crash_in_cs(0);
  chk.on_enter(0);  // owner re-enters first: fine
  chk.on_exit(0);
  chk.on_enter(1);
  chk.on_exit(1);
  EXPECT_EQ(chk.csr_violations(), 0u);
  EXPECT_EQ(chk.me_violations(), 0u);
}

TEST(CheckerTeeth, DoubleEntryAndForeignExitAreCounted) {
  ExclusionChecker chk;
  chk.on_enter(0);
  chk.on_enter(1);  // overlap
  EXPECT_EQ(chk.me_violations(), 1u);
  chk.on_exit(0);   // exit by non-owner (owner is now 1)
  EXPECT_EQ(chk.me_violations(), 2u);
}

}  // namespace

// NVM substrate tests: FlagRing tag discipline and QsbrPool reclamation
// safety rules (Tail probe, grace epochs, verbatim mode, leak bounds).
#include <gtest/gtest.h>

#include <set>

#include "harness/sim_run.hpp"
#include "harness/world.hpp"
#include "nvm/flag_ring.hpp"
#include "nvm/qsbr_pool.hpp"
#include "shm/offptr.hpp"

namespace {

using namespace rme;
using harness::CountedWorld;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

TEST(FlagRing, TagsAreFreshAcrossReuse) {
  CountedWorld w(ModelKind::kDsm, 1);
  nvm::FlagRing<P> ring;
  ring.attach(w.env, 0, 3);
  auto& ctx = w.proc(0).ctx;
  std::set<std::pair<nvm::GoFlag<P>*, uint64_t>> seen;
  for (int i = 0; i < 30; ++i) {
    auto wt = ring.begin_wait(ctx);
    // (slot, tag) pairs never repeat even though only 3 slots exist.
    EXPECT_TRUE(seen.insert({wt.flag, wt.tag}).second) << i;
    EXPECT_NE(wt.tag, 0u);  // 0 is the never-signalled sentinel
  }
}

TEST(FlagRing, SlotsCycleRoundRobin) {
  CountedWorld w(ModelKind::kDsm, 1);
  nvm::FlagRing<P> ring;
  ring.attach(w.env, 0, 4);
  auto& ctx = w.proc(0).ctx;
  auto a = ring.begin_wait(ctx).flag;
  auto b = ring.begin_wait(ctx).flag;
  auto c = ring.begin_wait(ctx).flag;
  auto d = ring.begin_wait(ctx).flag;
  EXPECT_EQ(ring.begin_wait(ctx).flag, a);  // wrapped
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(c, d);
}

TEST(FlagRing, FlagCellsAreLocalToOwnerOnDsm) {
  CountedWorld w(ModelKind::kDsm, 2);
  nvm::FlagRing<P> ring;
  ring.attach(w.env, 1, 4);  // owned by pid 1
  auto& c1 = w.proc(1).ctx;
  const uint64_t before = c1.counters.rmrs;
  auto wt = ring.begin_wait(c1);
  (void)wt.flag->value.load(c1);
  EXPECT_EQ(c1.counters.rmrs, before);  // all local
  auto& c0 = w.proc(0).ctx;
  const uint64_t b0 = c0.counters.rmrs;
  wt.flag->value.store(c0, wt.tag);  // remote for anyone else
  EXPECT_EQ(c0.counters.rmrs, b0 + 1);
}

// Minimal pool item.
struct Item {
  typename P::Atomic<int> cell;
  void attach(P::Env& env, int owner) { cell.attach(env, owner); }
};

TEST(QsbrPool, VerbatimModeNeverRecycles) {
  CountedWorld w(ModelKind::kCc, 2);
  nvm::QsbrPool<Item, P> pool(w.env, 2, /*recycle=*/false);
  auto& ctx = w.proc(0).ctx;
  std::set<Item*> seen;
  for (int i = 0; i < 10; ++i) {
    pool.on_passage_begin(ctx, 0);
    Item* it = pool.acquire(ctx, 0);
    EXPECT_TRUE(seen.insert(it).second) << "item reused in verbatim mode";
    pool.retire(ctx, 0, it);
    pool.on_passage_end(ctx, 0);
  }
  EXPECT_EQ(pool.allocated(), 10u);
  EXPECT_EQ(pool.reclaimed(0), 0u);
}

TEST(QsbrPool, RecyclesAfterGraceWhenAllPortsQuiesce) {
  CountedWorld w(ModelKind::kCc, 2);
  nvm::QsbrPool<Item, P> pool(w.env, 2, /*recycle=*/true);
  auto& ctx = w.proc(0).ctx;
  // Many sequential passages by port 0, port 1 idle: everything quiesces
  // between passages, so allocation must plateau well below passage count.
  for (int i = 0; i < 100; ++i) {
    pool.on_passage_begin(ctx, 0);
    Item* it = pool.acquire(ctx, 0);
    pool.retire(ctx, 0, it);
    pool.on_passage_end(ctx, 0);
  }
  EXPECT_LT(pool.allocated(), 30u);
  EXPECT_GT(pool.reclaimed(0), 50u);
}

TEST(QsbrPool, ActivePortBlocksReclamation) {
  CountedWorld w(ModelKind::kCc, 2);
  nvm::QsbrPool<Item, P> pool(w.env, 2, /*recycle=*/true);
  auto& c0 = w.proc(0).ctx;
  auto& c1 = w.proc(1).ctx;
  // Port 1 enters a passage and never quiesces.
  pool.on_passage_begin(c1, 1);
  uint64_t reclaimed_before = pool.reclaimed(0);
  for (int i = 0; i < 50; ++i) {
    pool.on_passage_begin(c0, 0);
    Item* it = pool.acquire(c0, 0);
    pool.retire(c0, 0, it);
    pool.on_passage_end(c0, 0);
  }
  // Stamping requires one scan and grace a later one; with port 1 stuck
  // at its old epoch, nothing stamped after its announce may be freed.
  // Port 1's announce was taken *before* any retirement here, so all of
  // port 0's retirees are blocked: zero reclamation.
  EXPECT_EQ(pool.reclaimed(0), reclaimed_before);
  // The pool fell back to fresh allocation rather than deadlocking.
  EXPECT_GE(pool.allocated(), 50u);
  // Port 1 finally quiesces: reclamation resumes.
  pool.on_passage_end(c1, 1);
  for (int i = 0; i < 50; ++i) {
    pool.on_passage_begin(c0, 0);
    Item* it = pool.acquire(c0, 0);
    pool.retire(c0, 0, it);
    pool.on_passage_end(c0, 0);
  }
  EXPECT_GT(pool.reclaimed(0), 0u);
}

TEST(QsbrPool, TailProbeDefersReclamationOfTheTailNode) {
  CountedWorld w(ModelKind::kCc, 1);
  nvm::QsbrPool<Item, P> pool(w.env, 1, /*recycle=*/true);
  shm::AtomicRef<P, Item> tail;
  tail.attach(w.env, rmr::kNoOwner);
  pool.set_tail_probe(&tail);
  auto& ctx = w.proc(0).ctx;

  // Retire a batch with the *first* retiree pinned as tail.
  std::vector<Item*> items;
  for (int i = 0; i < 12; ++i) {
    pool.on_passage_begin(ctx, 0);
    items.push_back(pool.acquire(ctx, 0));
    pool.on_passage_end(ctx, 0);
  }
  tail.init(items[0]);
  for (auto* it : items) {
    pool.on_passage_begin(ctx, 0);
    pool.retire(ctx, 0, it);
    pool.on_passage_end(ctx, 0);
  }
  // Drive reclamation scans via acquire cycles.
  for (int i = 0; i < 40; ++i) {
    pool.on_passage_begin(ctx, 0);
    Item* it = pool.acquire(ctx, 0);
    pool.retire(ctx, 0, it);
    pool.on_passage_end(ctx, 0);
  }
  // items[0] must never have been handed out again while tail points at
  // it. Retirement list order is FIFO, so if it were reclaimable it would
  // have been first; instead reclamation skipped... verify by acquiring
  // everything free and checking items[0] is absent.
  std::set<Item*> handed;
  for (int i = 0; i < 64; ++i) {
    pool.on_passage_begin(ctx, 0);
    Item* it = pool.acquire(ctx, 0);
    handed.insert(it);
    // don't retire: drain the free list
    pool.on_passage_end(ctx, 0);
  }
  EXPECT_EQ(handed.count(items[0]), 0u);
}

}  // namespace

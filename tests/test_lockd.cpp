// The lock-service daemon's acceptance suite:
//
//   * Decoder sweep: every malformed-frame class (truncations, bad
//     magic/version/op, oversized batch counts, length mismatches) is
//     rejected with its typed Err, and raw garbage blasted over a live
//     socket never reaches verb dispatch or kills the daemon.
//   * Protocol discipline over a live socket: hello-before-verbs,
//     duplicate req_id rejection, bogus releases, timeout and cancel.
//   * The kill matrix (REAL processes, fork+exec / fork):
//       - SIGKILL a client mid-hold: the daemon force-releases its grant
//         and the key is re-grantable.
//       - SIGKILL a client mid-acquire: its pending request is abandoned,
//         the identity pool refills, the queue stays live.
//       - SIGKILL the daemon itself with grants outstanding: a restarted
//         daemon (same region) replays recovery through its SessionLease
//         takeovers, clients reconnect and re-acquire, and a post-mortem
//         region audit finds ZERO leaked leases.
#include <gtest/gtest.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "harness/fork_scenario.hpp"
#include "lockd/lockd.hpp"
#include "obs/obs.hpp"

namespace {

using namespace std::chrono_literals;
using rme::harness::ForkScenario;
namespace lockd = rme::lockd;
using lockd::Err;
using lockd::Frame;
using lockd::Op;

#ifndef RME_LOCKD_PATH
#define RME_LOCKD_PATH ""
#endif

std::string unique_tag(const char* what) {
  static std::atomic<int> counter{0};
  return std::string(what) + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

// ---------------------------------------------------------------------------
// Decoder sweep (pure, no daemon)
// ---------------------------------------------------------------------------

TEST(LockdProto, AcceptsWellFormedFrames) {
  const Frame f = lockd::make_frame(Op::kAcquire, 7, 42);
  const auto d = lockd::decode(&f, f.size());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.hdr.req_id, 7u);
  EXPECT_EQ(d.hdr.a, 42u);

  const uint64_t keys[3] = {1, 2, 3};
  const Frame b = lockd::make_batch(9, keys, 3, 1000);
  const auto db = lockd::decode(&b, b.size());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.hdr.nkeys, 3u);
  EXPECT_EQ(db.keys[2], 3u);
}

TEST(LockdProto, RejectsEveryTruncationLength) {
  const Frame f = lockd::make_frame(Op::kAcquire, 1, 2);
  for (size_t len = 0; len < sizeof(lockd::Header); ++len) {
    EXPECT_EQ(lockd::decode(&f, len).err, Err::kBadFrame) << "len=" << len;
  }
  // The kernel's MSG_TRUNC verdict rejects even a plausible length.
  EXPECT_EQ(lockd::decode(&f, f.size(), /*truncated=*/true).err,
            Err::kBadFrame);
}

TEST(LockdProto, RejectsBadMagicVersionOp) {
  Frame f = lockd::make_frame(Op::kAcquire, 1, 2);
  f.hdr.magic ^= 0xdeadbeef;
  EXPECT_EQ(lockd::decode(&f, f.size()).err, Err::kBadFrame);

  f = lockd::make_frame(Op::kAcquire, 1, 2);
  f.hdr.version = lockd::kProtoVersion + 1;
  EXPECT_EQ(lockd::decode(&f, f.size()).err, Err::kBadVersion);

  f = lockd::make_frame(Op::kAcquire, 1, 2);
  for (uint32_t op : {0u, 10u, 63u, 71u, 255u, 65535u}) {
    f.hdr.op = static_cast<uint16_t>(op);
    EXPECT_EQ(lockd::decode(&f, f.size()).err, Err::kBadOp) << "op=" << op;
  }
}

TEST(LockdProto, RejectsBatchShapeViolations) {
  // Oversized key count.
  Frame f = lockd::make_frame(Op::kBatch, 1);
  f.hdr.nkeys = lockd::kMaxBatchKeys + 1;
  EXPECT_EQ(lockd::decode(&f, sizeof(lockd::Header)).err, Err::kBadFrame);

  // Empty batch.
  f.hdr.nkeys = 0;
  EXPECT_EQ(lockd::decode(&f, f.size()).err, Err::kBadFrame);

  // Trailing words on a wordless verb.
  f = lockd::make_frame(Op::kAcquire, 1, 2);
  f.hdr.nkeys = 2;
  EXPECT_EQ(lockd::decode(&f, f.size()).err, Err::kBadFrame);

  // Declared vs actual length mismatch, both directions.
  const uint64_t keys[4] = {1, 2, 3, 4};
  Frame b = lockd::make_batch(1, keys, 4, 0);
  EXPECT_EQ(lockd::decode(&b, b.size() - 8).err, Err::kBadFrame);
  EXPECT_EQ(lockd::decode(&b, b.size() + 8).err, Err::kBadFrame);
}

TEST(LockdProto, StatsFrameShapes) {
  // A kStats request is wordless: trailing words are a shape violation.
  Frame f = lockd::make_frame(Op::kStats, 3);
  EXPECT_TRUE(lockd::decode(&f, f.size()).ok());
  f.hdr.nkeys = 1;
  EXPECT_EQ(lockd::decode(&f, f.size()).err, Err::kBadFrame);

  // kStatsReply rides its counters on keys[]: the whole StatsIndex fits
  // the frame (static_asserted in proto.hpp), and decodes.
  Frame r = lockd::make_frame(Op::kStatsReply, 3);
  r.hdr.nkeys = lockd::kStatCount;
  EXPECT_TRUE(lockd::decode(&r, r.size()).ok());
  r.hdr.nkeys = lockd::kMaxBatchKeys + 1;
  EXPECT_EQ(lockd::decode(&r, sizeof(lockd::Header)).err, Err::kBadFrame);
}

TEST(LockdProto, GarbageBufferSweepNeverAccepts) {
  // Deterministic xorshift garbage: no byte pattern without the magic in
  // place may decode. (Seeded, so a failure is reproducible.)
  uint64_t x = 0x9e3779b97f4a7c15ull;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  char buf[lockd::kMaxFrameBytes];
  for (int round = 0; round < 20000; ++round) {
    for (size_t i = 0; i < sizeof(buf); i += 8) {
      const uint64_t v = next();
      ::memcpy(buf + i, &v, sizeof(v));
    }
    buf[0] ^= 0x31;  // guarantee the magic cannot match
    const size_t len = next() % (sizeof(buf) + 1);
    EXPECT_FALSE(lockd::decode(buf, len).ok()) << "round=" << round;
  }
}

// ---------------------------------------------------------------------------
// Live-daemon fixture: a Reactor on a background thread + raw-socket
// helpers for speaking malformed protocol on purpose.
// ---------------------------------------------------------------------------

struct InProcDaemon {
  lockd::Options opt;
  std::optional<lockd::Reactor> reactor;
  std::thread loop;

  explicit InProcDaemon(bool admission = false, int identities = 4) {
    const std::string tag = unique_tag("t");
    opt.socket_path = "/tmp/rme_lockd_" + tag + ".sock";
    opt.region = "/rme_lockd_" + tag;
    opt.shards = 4;
    opt.identities = identities;
    opt.admission = admission;
    reactor.emplace(opt);
    loop = std::thread([this] { reactor->run(); });
  }
  ~InProcDaemon() {
    reactor->stop();
    loop.join();
  }
  const lockd::ReactorStats& stats() const { return reactor->stats(); }
};

int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  ::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool raw_send(int fd, const void* buf, size_t len) {
  return ::send(fd, buf, len, MSG_NOSIGNAL) == static_cast<ssize_t>(len);
}

std::optional<Frame> raw_recv(int fd, int timeout_ms = 5000) {
  pollfd p{fd, POLLIN, 0};
  if (::poll(&p, 1, timeout_ms) <= 0) return std::nullopt;
  char buf[lockd::kMaxFrameBytes];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  if (n <= 0) return std::nullopt;
  const auto d = lockd::decode(buf, static_cast<size_t>(n));
  if (!d.ok()) return std::nullopt;
  Frame f;
  f.hdr = d.hdr;
  for (uint16_t i = 0; i < d.hdr.nkeys; ++i) f.keys[i] = d.keys[i];
  return f;
}

bool raw_hello(int fd, uint64_t id = 1) {
  const Frame h = lockd::make_frame(Op::kHello, id);
  if (!raw_send(fd, &h, h.size())) return false;
  const auto r = raw_recv(fd);
  return r && static_cast<Op>(r->hdr.op) == Op::kHelloOk;
}

// ---------------------------------------------------------------------------
// Protocol discipline over a live socket
// ---------------------------------------------------------------------------

TEST(Lockd, VerbBeforeHelloRejected) {
  InProcDaemon d;
  const int fd = raw_connect(d.opt.socket_path);
  ASSERT_GE(fd, 0);
  const Frame f = lockd::make_frame(Op::kAcquire, 5, 42);
  ASSERT_TRUE(raw_send(fd, &f, f.size()));
  const auto r = raw_recv(fd);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(static_cast<Op>(r->hdr.op), Op::kError);
  EXPECT_EQ(static_cast<Err>(r->hdr.err), Err::kNoHello);
  EXPECT_EQ(r->hdr.req_id, 5u);
  ::close(fd);
}

TEST(Lockd, DuplicateRequestIdRejected) {
  InProcDaemon d;
  const int fd = raw_connect(d.opt.socket_path);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_hello(fd));

  const Frame a = lockd::make_frame(Op::kAcquire, 7, 42);
  ASSERT_TRUE(raw_send(fd, &a, a.size()));
  const auto g = raw_recv(fd);
  ASSERT_TRUE(g.has_value());
  ASSERT_EQ(static_cast<Op>(g->hdr.op), Op::kGranted);

  // Same req_id while its grant is live: rejected, grant untouched.
  const Frame dup = lockd::make_frame(Op::kAcquire, 7, 43);
  ASSERT_TRUE(raw_send(fd, &dup, dup.size()));
  const auto r = raw_recv(fd);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(static_cast<Op>(r->hdr.op), Op::kError);
  EXPECT_EQ(static_cast<Err>(r->hdr.err), Err::kDupRequest);

  // Releasing a grant id that does not exist: kBadGrant.
  const Frame bad = lockd::make_frame(Op::kRelease, 8, 999);
  ASSERT_TRUE(raw_send(fd, &bad, bad.size()));
  const auto rb = raw_recv(fd);
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(static_cast<Err>(rb->hdr.err), Err::kBadGrant);
  ::close(fd);
}

TEST(Lockd, GarbageOverSocketSurvivedAndCounted) {
  InProcDaemon d;
  const int fd = raw_connect(d.opt.socket_path);
  ASSERT_GE(fd, 0);

  // Blast every malformed class at the live daemon.
  uint64_t x = 0x2545f4914f6cdd1dull;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  char garbage[lockd::kMaxFrameBytes];
  int sent = 0;
  for (int round = 0; round < 64; ++round) {
    for (size_t i = 0; i < sizeof(garbage); i += 8) {
      const uint64_t v = next();
      ::memcpy(garbage + i, &v, sizeof(v));
    }
    garbage[0] ^= 0x31;
    const size_t len = 1 + next() % sizeof(garbage);
    if (raw_send(fd, garbage, len)) ++sent;
  }
  Frame f = lockd::make_frame(Op::kAcquire, 1, 2);
  f.hdr.version = 9;  // bad version on an otherwise fine frame
  if (raw_send(fd, &f, f.size())) ++sent;
  f = lockd::make_frame(Op::kGranted, 2);  // direction error
  if (raw_send(fd, &f, f.size())) ++sent;
  ASSERT_GT(sent, 0);
  // Every malformed frame earns a typed kError reply - the daemon never
  // hangs up on a confused client. Collect them all before closing.
  for (int i = 0; i < sent; ++i) {
    const auto r = raw_recv(fd);
    ASSERT_TRUE(r.has_value()) << "reply " << i << " of " << sent;
    EXPECT_EQ(static_cast<Op>(r->hdr.op), Op::kError);
  }
  ::close(fd);

  // The daemon is still alive and serving: a real client round-trips.
  lockd::Client c({d.opt.socket_path, false});
  ASSERT_TRUE(c.connected());
  auto g = c.acquire(42);
  ASSERT_TRUE(g.has_value());
  g->release();
  auto st = c.stats();
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->granted(), 1u);
  EXPECT_GT(d.stats().bad_frames, 0u);
  // The rejection count is also surfaced over the wire: the stats reply
  // (taken after every garbage frame was answered) agrees with the
  // reactor's own ledger.
  EXPECT_EQ(st->bad_frames(), d.stats().bad_frames);
}

TEST(Lockd, StatsRoundTripsArenaSnapshot) {
  InProcDaemon d;
  lockd::Client c({d.opt.socket_path, false});
  ASSERT_TRUE(c.connected());
  for (uint64_t k = 1; k <= 5; ++k) {
    auto g = c.acquire(k);
    ASSERT_TRUE(g.has_value());
    g->release();
  }
  auto st = c.stats();
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->granted(), 5u);
  EXPECT_EQ(st->bad_frames(), 0u);
  // The reply's arena columns are a live obs::Snapshot of the daemon's
  // region: every grant above went through a svc session feeding it,
  // and the fair-handoff bound holds on the wire numbers.
  EXPECT_GE(st->arena_acquires(), 5u);
  EXPECT_GE(st->arena_releases(), 5u);
  EXPECT_LE(st->arena_handoffs(), st->arena_releases());
  EXPECT_EQ(st->arena_timeouts(), 0u);
  // And the wire totals agree with a direct (read-side) merge of the
  // same arena - the path rme-regionctl uses.
  const rme::obs::Snapshot snap = rme::obs::Snapshot::read(
      d.reactor->world().metrics(), d.opt.identities);
  EXPECT_EQ(st->arena_acquires(), snap.total[rme::obs::kAcquires]);
  EXPECT_EQ(st->arena_releases(), snap.total[rme::obs::kReleases]);
}

TEST(Lockd, TimeoutAndCancel) {
  InProcDaemon d;
  lockd::Client holder({d.opt.socket_path, false});
  lockd::Client waiter({d.opt.socket_path, false});
  ASSERT_TRUE(holder.connected());
  ASSERT_TRUE(waiter.connected());

  auto g = holder.acquire(42);
  ASSERT_TRUE(g.has_value());

  // Deadline expires while the key is held.
  auto t = waiter.acquire_for(42, 50ms);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error(), rme::svc::Errc::kTimeout);

  // Submit-then-cancel: the pending entry is reaped and acknowledged.
  const uint64_t id = waiter.submit(42);
  ASSERT_NE(id, 0u);
  EXPECT_TRUE(waiter.cancel(id));

  g->release();
  auto st = waiter.stats();
  ASSERT_TRUE(st.has_value());
  EXPECT_GE(st->timeouts(), 1u);
  EXPECT_GE(st->cancels(), 1u);
  EXPECT_EQ(st->pending(), 0u);
}

TEST(Lockd, BatchGrantIsAtomicAcrossShards) {
  InProcDaemon d;
  lockd::Client c({d.opt.socket_path, false});
  ASSERT_TRUE(c.connected());
  auto b = c.acquire_batch({1, 2, 3, 4, 5});
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->shard(), -1);
  EXPECT_NE(b->shard_mask(), 0u);
  // While the batch is held, a conflicting single-key try fails.
  lockd::Client probe({d.opt.socket_path, false});
  auto t = probe.try_acquire(1);
  ASSERT_FALSE(t.has_value());
  EXPECT_EQ(t.error(), rme::svc::Errc::kWouldBlock);
  b->release();
  auto t2 = probe.try_acquire(1);
  EXPECT_TRUE(t2.has_value());
}

// ---------------------------------------------------------------------------
// The kill matrix: real process death on both sides of the socket.
// ---------------------------------------------------------------------------

// Wait until `pred` holds, polling the daemon's stats endpoint.
template <class Pred>
bool await_stats(lockd::Client& c, Pred pred,
                 std::chrono::milliseconds timeout = 10000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    auto st = c.stats();
    if (st.has_value() && pred(*st)) return true;
    std::this_thread::sleep_for(2ms);
  }
  return false;
}

TEST(Lockd, ClientKilledMidHoldFreesItsGrant) {
  InProcDaemon d;
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Grab the key and freeze: the SIGKILL target.
    lockd::Client c({d.opt.socket_path, false});
    if (!c.connected()) ::_exit(1);
    auto g = c.acquire(42);
    if (!g.has_value()) ::_exit(1);
    for (;;) std::this_thread::sleep_for(1h);
  }
  lockd::Client probe({d.opt.socket_path, false});
  ASSERT_TRUE(probe.connected());
  ASSERT_TRUE(await_stats(
      probe, [](const lockd::Client::DaemonStats& s) {
        return s.granted() >= 1;
      }));
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));

  // The daemon notices the disconnect, force-releases, and the key is
  // re-grantable to a live client.
  auto g = probe.acquire(42);
  ASSERT_TRUE(g.has_value());
  g->release();
  ASSERT_TRUE(await_stats(probe, [](const lockd::Client::DaemonStats& s) {
    return s.disconnects() >= 1 && s.conns() == 1;
  }));
}

TEST(Lockd, ClientKilledMidAcquireAbandonsItsPending) {
  InProcDaemon d;
  lockd::Client holder({d.opt.socket_path, false});
  ASSERT_TRUE(holder.connected());
  auto held = holder.acquire(42);
  ASSERT_TRUE(held.has_value());

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Block behind the parent's grant: the mid-acquire SIGKILL target.
    lockd::Client c({d.opt.socket_path, false});
    if (!c.connected()) ::_exit(1);
    auto g = c.acquire(42);  // never returns
    ::_exit(g.has_value() ? 2 : 1);
  }
  ASSERT_TRUE(await_stats(holder, [](const lockd::Client::DaemonStats& s) {
    return s.pending() >= 1;
  }));
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));

  // The dead waiter's pending entry drains; identities all return home.
  ASSERT_TRUE(await_stats(holder, [](const lockd::Client::DaemonStats& s) {
    return s.pending() == 0;
  }));
  held->release();
  ASSERT_TRUE(await_stats(holder, [&](const lockd::Client::DaemonStats& s) {
    return s.ids_free() == static_cast<uint64_t>(d.opt.identities);
  }));
  // The queue is still live for newcomers.
  auto g = holder.acquire(42);
  ASSERT_TRUE(g.has_value());
}

class LockdDaemonKillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::string(RME_LOCKD_PATH).empty()) {
      GTEST_SKIP() << "rme_lockd binary path not configured";
    }
  }
};

TEST_F(LockdDaemonKillTest, DaemonSigkillRestartReplaysLeases) {
  const std::string tag = unique_tag("kill");
  const std::string sock = "/tmp/rme_lockd_" + tag + ".sock";
  const std::string region = "/rme_lockd_" + tag;
  const std::vector<std::string> args = {
      "--socket=" + sock, "--region=" + region, "--shards=4",
      "--identities=4", "--no-admission"};
  ForkScenario fs;
  const int d1 = fs.spawn(RME_LOCKD_PATH, args);

  // Dial with retries (the daemon is still binding).
  lockd::Client c;
  for (int tries = 0; !c.connect({sock, false}); ++tries) {
    ASSERT_LT(tries, 500) << "daemon never came up";
    std::this_thread::sleep_for(10ms);
  }
  // Hold a single key AND a batch when the daemon dies: both grant kinds
  // must be recovered by the successor.
  auto g = c.acquire(42);
  ASSERT_TRUE(g.has_value());
  lockd::Client c2({sock, false});
  ASSERT_TRUE(c2.connected());
  auto b = c2.acquire_batch({7, 8, 9});
  ASSERT_TRUE(b.has_value());

  fs.kill_child(d1, SIGKILL);
  EXPECT_TRUE(fs.died_by(d1, SIGKILL));

  // Restart over the SAME region: SessionLease takeover replays recovery
  // for every identity the dead incarnation held before the socket opens.
  const int d2 = fs.spawn(RME_LOCKD_PATH, args);
  lockd::Client after;
  for (int tries = 0; !after.connect({sock, false}); ++tries) {
    ASSERT_LT(tries, 500) << "restarted daemon never came up";
    std::this_thread::sleep_for(10ms);
  }
  // Every previously held key is acquirable again - nothing leaked.
  auto rg = after.acquire(42);
  ASSERT_TRUE(rg.has_value());
  rg->release();
  auto rb = after.acquire_batch({7, 8, 9});
  ASSERT_TRUE(rb.has_value());
  rb->release();

  // The old clients observe the death as disconnection, not corruption.
  auto dead = c.acquire(43);
  EXPECT_FALSE(dead.has_value());

  // Orderly shutdown of the successor, then a post-mortem region audit:
  // zero leaked leases, no pid left owning a shard.
  after.close();
  c.close();
  c2.close();
  fs.kill_child(d2, SIGTERM);
  EXPECT_TRUE(fs.exited_clean(d2));

  auto world = rme::shm::ShmWorld::attach(region);
  auto& table = world.root<lockd::Table>();
  auto& ctx = world.proc(rme::shm::kMaxProcs - 1).ctx;
  auto& t = table.underlying();
  for (int s = 0; s < t.shards(); ++s) {
    EXPECT_EQ(t.shard_lease(s).free_ports(ctx), rme::shm::kMaxProcs)
        << "leaked lease in shard " << s;
  }
  for (int pid = 0; pid < rme::shm::kMaxProcs; ++pid) {
    EXPECT_EQ(t.current_shard(ctx, pid),
              rme::core::RecoverableLockTable<rme::platform::Real>::kNoShard)
        << "pid " << pid << " still owns a shard";
    EXPECT_EQ(t.current_batch(ctx, pid), 0u);
  }
  ::shm_unlink(region.c_str());
  ::unlink(sock.c_str());
}

}  // namespace

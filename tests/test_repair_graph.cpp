// PathGraph unit tests (the local computation of Figure 4, Lines 39-41):
// maximal-path extraction over the disjoint-path graphs the repair scan
// produces, including every degenerate shape the invariant allows.
#include <gtest/gtest.h>

#include "core/repair.hpp"

namespace {

using rme::core::PathGraph;

struct N {};  // vertices are just distinct addresses

TEST(PathGraph, EmptyGraphHasNoPaths) {
  PathGraph<N> g(8);
  g.compute();
  EXPECT_TRUE(g.paths().empty());
  EXPECT_EQ(g.vertex_count(), 0u);
}

TEST(PathGraph, SingletonVertexIsItsOwnPath) {
  PathGraph<N> g(8);
  N a;
  g.add_vertex(&a);
  g.compute();
  ASSERT_EQ(g.paths().size(), 1u);
  EXPECT_EQ(g.paths()[0].start, &a);
  EXPECT_EQ(g.paths()[0].end, &a);
  EXPECT_EQ(g.paths()[0].length, 1);
}

TEST(PathGraph, AddVertexIsIdempotent) {
  PathGraph<N> g(8);
  N a;
  g.add_vertex(&a);
  g.add_vertex(&a);
  g.add_vertex(&a);
  g.compute();
  EXPECT_EQ(g.vertex_count(), 1u);
  EXPECT_EQ(g.paths().size(), 1u);
}

TEST(PathGraph, SimpleChain) {
  PathGraph<N> g(8);
  N a, b, c;  // a -> b -> c (a's pred is b, b's pred is c)
  g.add_edge(&a, &b);
  g.add_edge(&b, &c);
  g.compute();
  ASSERT_EQ(g.paths().size(), 1u);
  EXPECT_EQ(g.paths()[0].start, &a);  // tail-most: nobody points to a
  EXPECT_EQ(g.paths()[0].end, &c);    // head-most: c has no pred edge
  EXPECT_EQ(g.paths()[0].length, 3);
}

TEST(PathGraph, EdgeInsertionOrderIrrelevant) {
  PathGraph<N> g(8);
  N a, b, c;
  g.add_edge(&b, &c);  // middle edge first
  g.add_edge(&a, &b);
  g.compute();
  ASSERT_EQ(g.paths().size(), 1u);
  EXPECT_EQ(g.paths()[0].start, &a);
  EXPECT_EQ(g.paths()[0].end, &c);
}

TEST(PathGraph, MultipleDisjointFragments) {
  PathGraph<N> g(16);
  N a, b, c, d, e;
  g.add_edge(&a, &b);  // fragment 1: a->b
  g.add_edge(&c, &d);  // fragment 2: c->d
  g.add_vertex(&e);    // fragment 3: singleton
  g.compute();
  EXPECT_EQ(g.paths().size(), 3u);
  EXPECT_EQ(g.path_of(&a), g.path_of(&b));
  EXPECT_EQ(g.path_of(&c), g.path_of(&d));
  EXPECT_NE(g.path_of(&a), g.path_of(&c));
  EXPECT_EQ(g.path_of(&e)->length, 1);
}

TEST(PathGraph, PathOfUnknownVertexIsNull) {
  PathGraph<N> g(4);
  N a, b;
  g.add_vertex(&a);
  g.compute();
  EXPECT_NE(g.path_of(&a), nullptr);
  EXPECT_EQ(g.path_of(&b), nullptr);
  EXPECT_FALSE(g.contains(&b));
}

TEST(PathGraph, FigureFiveShape) {
  // The paper's Figure 5 initial state as a graph: fragments
  // (pi1,pi2), (pi3,pi4), (pi5,pi6), (pi7), (pi8) - where pi2's pred is
  // pi1 etc., and pi1/pi3/pi5 crashed (vertex-only, pred=&Crash).
  PathGraph<N> g(16);
  N n1, n2, n3, n4, n5, n6, n7, n8;
  g.add_vertex(&n1);
  g.add_edge(&n2, &n1);
  g.add_vertex(&n3);
  g.add_edge(&n4, &n3);
  g.add_vertex(&n5);
  g.add_edge(&n6, &n5);
  g.add_vertex(&n7);
  g.add_vertex(&n8);
  g.compute();
  ASSERT_EQ(g.paths().size(), 5u);
  EXPECT_EQ(g.path_of(&n2)->start, &n2);
  EXPECT_EQ(g.path_of(&n2)->end, &n1);
  EXPECT_EQ(g.path_of(&n7)->length, 1);
  EXPECT_EQ(g.path_of(&n8)->length, 1);
}

TEST(PathGraph, LongChainNoCycleFalsePositive) {
  PathGraph<N> g(64);
  constexpr int kLen = 32;
  N nodes[kLen];
  for (int i = 0; i + 1 < kLen; ++i) g.add_edge(&nodes[i], &nodes[i + 1]);
  g.compute();
  ASSERT_EQ(g.paths().size(), 1u);
  EXPECT_EQ(g.paths()[0].length, kLen);
  EXPECT_EQ(g.paths()[0].start, &nodes[0]);
  EXPECT_EQ(g.paths()[0].end, &nodes[kLen - 1]);
}

TEST(PathGraphDeath, TwoOutEdgesIsInvariantViolation) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  PathGraph<N> g(8);
  N a, b, c;
  g.add_edge(&a, &b);
  EXPECT_DEATH(g.add_edge(&a, &c), "two predecessors");
}

TEST(PathGraphDeath, CycleIsDetected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  PathGraph<N> g(8);
  N a, b;
  g.add_edge(&a, &b);
  g.add_edge(&b, &a);  // cycle: allowed to insert, caught at compute
  EXPECT_DEATH(g.compute(), "cycle");
}

}  // namespace

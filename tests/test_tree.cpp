// ArbitrationTree tests (Theorem 3): the n-process lock built from
// degree-Theta(log n / log log n) RmeLock nodes. Validates mutual
// exclusion, starvation freedom, crash recovery through partial climbs and
// partial releases, wait-free CSR, and the headline sub-logarithmic RMR
// growth against the Theta(log n) tournament.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/arbitration_tree.hpp"
#include "harness/sim_run.hpp"
#include "harness/world.hpp"
#include "rlock/tournament.hpp"

namespace {

using namespace rme;
using harness::LockBody;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;

using Tree = core::ArbitrationTree<platform::Counted>;

TEST(Tree, DegreeFormulaMatchesPaper) {
  // d = max(2, round(log n / log log n))
  EXPECT_EQ(core::arbitration_degree(2), 2);
  EXPECT_EQ(core::arbitration_degree(4), 2);
  EXPECT_EQ(core::arbitration_degree(16), 2);    // log=4, loglog=2 -> 2
  EXPECT_EQ(core::arbitration_degree(64), 2);    // 6/2.58 -> 2
  EXPECT_EQ(core::arbitration_degree(256), 3);   // 8/3 -> 3
  EXPECT_EQ(core::arbitration_degree(1 << 16), 4);  // 16/4 -> 4
  EXPECT_EQ(core::arbitration_degree(1 << 20), 5);  // 20/4.32 -> 5
}

TEST(Tree, HeightIsLogDegreeN) {
  harness::CountedWorld w(ModelKind::kCc, 1);
  {
    Tree t(w.env, 8, {.degree = 2});
    EXPECT_EQ(t.height(), 3);
  }
  {
    Tree t(w.env, 9, {.degree = 3});
    EXPECT_EQ(t.height(), 2);
  }
  {
    Tree t(w.env, 27, {.degree = 3});
    EXPECT_EQ(t.height(), 3);
  }
  {
    Tree t(w.env, 1, {.degree = 2});
    EXPECT_EQ(t.height(), 1);
  }
}

struct TreeParam {
  int n;
  int degree;  // 0 = auto
  uint64_t seed;
};
class TreeSweep : public ::testing::TestWithParam<TreeParam> {};

TEST_P(TreeSweep, ExclusionAndProgressCrashFree) {
  const auto [n, degree, seed] = GetParam();
  SimRun sim(ModelKind::kDsm, n);
  auto t = std::make_unique<Tree>(sim.world().env, n,
                                  Tree::Options{.degree = degree});
  LockBody<Tree> body(*t, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::SeededRandom pol(seed);
  sim::NoCrash nc;
  std::vector<uint64_t> iters(static_cast<size_t>(n), 6);
  auto res = sim.run(pol, nc, iters, 40000000);
  EXPECT_FALSE(res.exhausted) << "n=" << n;
  EXPECT_EQ(sim.checker().entries(), 6u * static_cast<uint64_t>(n));
  EXPECT_EQ(sim.checker().me_violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TreeSweep,
    ::testing::Values(TreeParam{2, 0, 1}, TreeParam{3, 0, 2},
                      TreeParam{4, 0, 3}, TreeParam{5, 2, 4},
                      TreeParam{8, 2, 5}, TreeParam{9, 3, 6},
                      TreeParam{12, 0, 7}, TreeParam{16, 0, 8}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_d" +
             std::to_string(info.param.degree) + "_s" +
             std::to_string(info.param.seed);
    });

// Crash at every step of pid 0's run through a 2-level tree.
TEST(Tree, CrashAtEveryStep) {
  constexpr int n = 4;
  uint64_t total_steps;
  {
    SimRun sim(ModelKind::kCc, n);
    auto t = std::make_unique<Tree>(sim.world().env, n,
                                    Tree::Options{.degree = 2});
    LockBody<Tree> body(*t, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    sim::RoundRobin rr;
    sim::NoCrash nc;
    auto res = sim.run(rr, nc, {3, 3, 3, 3}, 8000000);
    ASSERT_FALSE(res.exhausted);
    total_steps = sim.world().proc(0).ctx.step_index;
  }
  // Stride 2 keeps runtime reasonable; odd/even points are both covered
  // across the two strides' offsets over the run.
  for (uint64_t s = 0; s < total_steps; s += 2) {
    SimRun sim(ModelKind::kCc, n);
    auto t = std::make_unique<Tree>(sim.world().env, n,
                                    Tree::Options{.degree = 2});
    LockBody<Tree> body(*t, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    sim::RoundRobin rr;
    sim::CrashAtSteps plan(0, {s});
    auto res = sim.run(rr, plan, {3, 3, 3, 3}, 16000000);
    EXPECT_FALSE(res.exhausted) << "crash step " << s;
    EXPECT_EQ(sim.checker().me_violations(), 0u) << "crash step " << s;
    EXPECT_EQ(sim.checker().csr_violations(), 0u) << "crash step " << s;
    EXPECT_EQ(res.completions[0], 3u) << "crash step " << s;
  }
}

class TreeStorm : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeStorm, SurvivesRandomCrashes) {
  constexpr int n = 9;
  SimRun sim(ModelKind::kDsm, n);
  auto t = std::make_unique<Tree>(sim.world().env, n,
                                  Tree::Options{.degree = 3});
  LockBody<Tree> body(*t, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::SeededRandom pol(GetParam() * 101 + 11);
  sim::RandomCrash crash(0.004, GetParam(), 40);
  std::vector<uint64_t> iters(n, 5);
  auto res = sim.run(pol, crash, iters, 60000000);
  EXPECT_FALSE(res.exhausted) << "seed " << GetParam();
  EXPECT_EQ(sim.checker().me_violations(), 0u);
  EXPECT_EQ(sim.checker().csr_violations(), 0u);
  for (int pid = 0; pid < n; ++pid) {
    EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 5u) << pid;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeStorm, ::testing::Range<uint64_t>(0, 8));

// Crash inside the global CS: re-entry runs the Line 20 fast path at every
// level - bounded steps, no waiting (wait-free CSR through the tree).
TEST(Tree, CrashInGlobalCsReentryBounded) {
  constexpr int n = 8;
  SimRun sim(ModelKind::kCc, n);
  auto t = std::make_unique<Tree>(sim.world().env, n,
                                  Tree::Options{.degree = 2});
  uint64_t reentry_steps = 0;
  bool armed = false;         // set inside the CS; the plan fires on it
  bool crashed_once = false;
  platform::Counted::Atomic<int> probe;
  probe.attach(sim.world().env, rmr::kNoOwner);
  probe.init(0);
  sim.set_body([&](SimProc& h, int pid) {
    const uint64_t before = h.ctx.step_index;
    t->lock(h, pid);
    if (pid == 0 && crashed_once && reentry_steps == 0) {
      reentry_steps = h.ctx.step_index - before;
    }
    if (pid == 0 && !crashed_once) armed = true;  // we are in the CS now
    for (int i = 0; i < 6; ++i) probe.store(h.ctx, pid);
    t->unlock(h, pid);
  });
  struct CrashInCs final : sim::CrashPlan {
    bool* armed;
    bool* fired;
    CrashInCs(bool* a, bool* f) : armed(a), fired(f) {}
    bool should_crash(int pid, uint64_t, rmr::Op) override {
      if (pid != 0 || *fired || !*armed) return false;
      *fired = true;
      return true;  // crash at the first op inside the CS
    }
  } plan(&armed, &crashed_once);
  sim::SeededRandom pol(23);
  std::vector<uint64_t> iters(n, 6);
  auto res = sim.run(pol, plan, iters, 60000000);
  ASSERT_FALSE(res.exhausted);
  EXPECT_EQ(sim.checker().csr_violations(), 0u);
  ASSERT_TRUE(crashed_once);
  ASSERT_GT(reentry_steps, 0u);
  // Re-entry climbs `height` levels through the Line-20 fast path plus
  // QSBR announces: a bounded number of reads/writes per level, no waits.
  EXPECT_LE(reentry_steps, 16u * 3u + 16u);
}

// The headline comparison (E4 smoke version): per-passage RMR of the tree
// grows like log n / log log n, strictly slower than the read/write-style
// tournament's log n. We check the *ratio* tree/tournament shrinks as n
// grows from 4 to 16 (with forced degrees so the effect is visible at
// simulable sizes: degree 4 tree has half the height of the binary
// tournament at n = 16).
TEST(Tree, RmrGrowsSlowerThanBinaryTournament) {
  auto tree_rmr = [](int n, int degree) {
    SimRun sim(ModelKind::kDsm, n);
    auto t = std::make_unique<Tree>(sim.world().env, n,
                                    Tree::Options{.degree = degree});
    sim.set_body([&](SimProc& h, int pid) {
      t->lock(h, pid);
      t->unlock(h, pid);
    });
    sim::RoundRobin rr;
    sim::NoCrash nc;
    std::vector<uint64_t> iters(static_cast<size_t>(n), 0);
    iters[0] = 10;
    auto res = sim.run(rr, nc, iters, 8000000);
    RME_ASSERT(!res.exhausted, "tree rmr probe exhausted");
    return static_cast<double>(sim.world().counters(0).rmrs) / 10.0;
  };
  auto tourn_rmr = [](int n) {
    SimRun sim(ModelKind::kDsm, n);
    auto t = std::make_unique<rlock::TournamentRLock<platform::Counted>>(
        sim.world().env, n);
    sim.set_body([&](SimProc& h, int pid) {
      t->lock(h, pid);
      t->unlock(h, pid);
    });
    sim::RoundRobin rr;
    sim::NoCrash nc;
    std::vector<uint64_t> iters(static_cast<size_t>(n), 0);
    iters[0] = 10;
    auto res = sim.run(rr, nc, iters, 8000000);
    RME_ASSERT(!res.exhausted, "tournament rmr probe exhausted");
    return static_cast<double>(sim.world().counters(0).rmrs) / 10.0;
  };

  // Binary tournament height log2(n); degree-4 tree height log4(n).
  const double tree16 = tree_rmr(16, 4);   // height 2
  const double tourn16 = tourn_rmr(16);    // height 4
  EXPECT_LT(tree16, tourn16);
  const double tree256_h = tree_rmr(64, 8);  // height 2 at degree 8
  const double tourn64 = tourn_rmr(64);      // height 6
  EXPECT_LT(tree256_h, tourn64);
}

}  // namespace

// Scenario tests: multi-process crash choreographies reconstructing the
// paper's Section 3.1 walkthrough (Figure 5) and stressing the repair
// machinery shapes that broke Golab & Hendler's algorithm (Appendix A):
// several processes crashed around their FAS simultaneously, fragments
// repaired one at a time under RLock, correct processes concurrently
// mutating the queue during repair.
//
// All choreographies run on the Scenario harness: the lock and its
// audited body come from LockFixture, the crash choreography from
// FasCrashComponent (or a custom plan), and set-up/tear-down and audit
// evaluation from Scenario::run().
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/rme_lock.hpp"
#include "harness/scenario.hpp"

namespace {

using namespace rme;
using harness::ExclusionAudit;
using harness::FasCrashSpec;
using harness::LockFixture;
using harness::ModelKind;
using harness::Scenario;
using harness::SimProc;
using C = platform::Counted;
using Lock = core::RmeLock<C>;
using When = sim::CrashAroundFas::When;

using Fixture = LockFixture<C, Lock>;

Fixture::Factory make_lock(int ports) {
  return [ports](harness::World<C>& w) {
    return std::make_unique<Lock>(w.env, ports);
  };
}

// Figure 5 shape: 8 ports; even ports crash around their FAS (alternating
// before/after), odd ports enqueue normally and wait. All crashed ports
// then recover, repair one at a time under RLock, and every process
// eventually completes; ME and CSR hold throughout.
TEST(Scenario, FigureFiveCrashChoreography) {
  constexpr int k = 8;
  Scenario<C> s(ModelKind::kCc, k);
  auto* fix = s.add_component<Fixture>(make_lock(k));
  auto* chk = s.audits().emplace<ExclusionAudit>();
  s.add_component<harness::FasCrashComponent<C>>(std::vector<FasCrashSpec>{
      // pi1, pi3, pi5 of the figure: crash just after FAS (Line 14 crash).
      {0, 1, When::kAfter},
      {2, 1, When::kAfter},
      {4, 1, When::kAfter},
      // pi7, pi8 of the figure: crash at the FAS itself (Line 13 crash).
      {6, 1, When::kBefore},
      {7, 1, When::kBefore}});
  s.use_random_schedule(424242);
  s.set_iterations(3);
  auto res = s.run();
  ASSERT_TRUE(res.ok()) << res.summary();
  for (int pid = 0; pid < k; ++pid) {
    EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 3u) << pid;
  }
  EXPECT_EQ(chk->me_violations(), 0u);
  EXPECT_EQ(chk->csr_violations(), 0u);
  // All five crashed processes went through repair.
  const auto st = fix->lock().total_stats();
  EXPECT_EQ(st.repairs, 5u);
  EXPECT_EQ(st.repair_fas + st.repair_headpath + st.repair_special, 5u);
}

// Appendix A Scenario-1 shape (the GH deadlock): two processes crash
// around their FAS in different super-passages and then recover
// concurrently. GH's recovering processes waited on each other's nodes
// and deadlocked; here repair is serialised by RLock and each scan waits
// only on NonNil_Signal, which the owner is guaranteed to set (Line 18 or
// 23) - so the run must terminate.
TEST(Scenario, ConcurrentRecoveriesDoNotDeadlock) {
  constexpr int k = 4;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Scenario<C> s(ModelKind::kCc, k);
    s.add_component<Fixture>(make_lock(k));
    auto* chk = s.audits().emplace<ExclusionAudit>();
    // Two processes crash after FAS in their *second* passage, so the
    // queue contains both live traffic and two broken fragments.
    s.add_component<harness::FasCrashComponent<C>>(std::vector<FasCrashSpec>{
        {1, 2, When::kAfter}, {3, 2, When::kAfter}});
    s.use_random_schedule(seed);
    s.set_iterations(4);
    auto res = s.run();
    EXPECT_TRUE(res.ok()) << "seed " << seed << ": " << res.summary();
    EXPECT_EQ(chk->me_violations(), 0u) << "seed " << seed;
    for (int pid = 0; pid < k; ++pid) {
      EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 4u)
          << "seed " << seed << " pid " << pid;
    }
  }
}

// Appendix A Scenario-2 shape (the GH starvation): a process repairs
// while correct processes keep joining the queue. In GH two nodes could
// end up with the same predecessor and everyone after some point starved.
// Here: crash p0 after FAS, then let p1..p3 churn passages during p0's
// recovery window; everyone must keep completing and no two nodes may
// wait on the same predecessor's CS_Signal (checked implicitly: a shared
// predecessor would wake only one waiter and the run would exhaust).
TEST(Scenario, RepairUnderChurnDoesNotStarve) {
  constexpr int k = 4;
  for (uint64_t seed = 100; seed < 112; ++seed) {
    Scenario<C> s(ModelKind::kCc, k);
    s.add_component<Fixture>(make_lock(k));
    auto* chk = s.audits().emplace<ExclusionAudit>();
    s.add_component<harness::FasCrashComponent<C>>(
        std::vector<FasCrashSpec>{{0, 1, When::kAfter}});
    s.use_random_schedule(seed);
    // Heavy churn: the non-crashing ports run many more passages.
    s.set_iterations(std::vector<uint64_t>{3, 12, 12, 12});
    auto res = s.run();
    EXPECT_TRUE(res.ok()) << "seed " << seed << ": " << res.summary();
    EXPECT_EQ(chk->me_violations(), 0u) << "seed " << seed;
    EXPECT_EQ(res.completions[0], 3u) << "seed " << seed;
    EXPECT_EQ(res.completions[1], 12u) << "seed " << seed;
  }
}

// Repeated crash-recover-crash of the same process: each recovery's
// repair must leave a queue the next crash can still break and re-repair.
TEST(Scenario, RepeatCrasherEventuallyCompletes) {
  constexpr int k = 3;
  Scenario<C> s(ModelKind::kCc, k);
  auto* fix = s.add_component<Fixture>(make_lock(k));
  auto* chk = s.audits().emplace<ExclusionAudit>();
  // p0 crashes around its FAS on three successive passages.
  s.add_component<harness::FasCrashComponent<C>>(std::vector<FasCrashSpec>{
      {0, 1, When::kAfter}, {0, 2, When::kAfter}, {0, 3, When::kBefore}});
  s.use_random_schedule(7);
  s.set_iterations(5);
  auto res = s.run();
  ASSERT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(res.crashes[0], 3u);
  EXPECT_EQ(res.completions[0], 5u);
  EXPECT_EQ(fix->lock().total_stats().repairs, 3u);
  EXPECT_EQ(chk->me_violations(), 0u);
}

// Crash *during* repair: the repairing process dies inside its RLock CS
// (mid-scan) and must recover, re-acquire RLock, and finish the repair.
TEST(Scenario, CrashDuringRepairIsRecoverable) {
  constexpr int k = 3;
  // First crash: after FAS. Second crash: `extra` steps into recovery,
  // which for small `extra` lands inside Lines 17-24 / the RLock / the
  // repair scan.
  struct TwoPhase final : sim::CrashPlan {
    sim::CrashAroundFas first{0, 1, When::kAfter};
    uint64_t second_at = 0;
    uint64_t extra;
    bool second_done = false;
    explicit TwoPhase(uint64_t e) : extra(e) {}
    bool should_crash(int pid, uint64_t step, rmr::Op op) override {
      if (pid != 0) return false;
      if (first.should_crash(pid, step, op)) {
        second_at = step + extra;
        return true;
      }
      if (!second_done && second_at != 0 && step >= second_at) {
        second_done = true;
        return true;
      }
      return false;
    }
  };
  for (uint64_t extra = 2; extra < 60; extra += 3) {
    Scenario<C> s(ModelKind::kCc, k);
    s.add_component<Fixture>(make_lock(k));
    auto* chk = s.audits().emplace<ExclusionAudit>();
    s.set_crash_plan(std::make_unique<TwoPhase>(extra));
    s.use_random_schedule(extra);
    s.set_iterations(4);
    auto res = s.run();
    EXPECT_TRUE(res.ok()) << "extra " << extra << ": " << res.summary();
    EXPECT_EQ(chk->me_violations(), 0u) << "extra " << extra;
    EXPECT_EQ(chk->csr_violations(), 0u) << "extra " << extra;
    EXPECT_EQ(res.completions[0], 4u) << "extra " << extra;
  }
}

// Port handover across super-passages: a process completes, a *different*
// process adopts the same port later (the paper's port model allows this
// as long as uses don't overlap). State left by the first user must not
// confuse the second. Custom body, so no LockFixture: the two sim
// processes strictly alternate on port 0 via a token.
TEST(Scenario, PortReuseAcrossProcesses) {
  constexpr int k = 2;
  Scenario<C> s(ModelKind::kCc, k);
  Lock lk(s.world().env, k);
  int token = 0;
  int done[2] = {0, 0};
  s.set_body([&](SimProc& h, int pid) {
    // Busy-hand the port back and forth; only the token holder runs.
    while (token != pid) {
      // A shared read keeps the scheduler cycling fairly.
      (void)lk.debug_tail(h.ctx);
    }
    lk.lock(h, 0);
    lk.unlock(h, 0);
    ++done[pid];
    token = 1 - pid;
  });
  s.use_round_robin_schedule();
  s.set_iterations(6);
  s.set_max_steps(4000000);
  auto res = s.run();
  ASSERT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(done[0], 6);
  EXPECT_EQ(done[1], 6);
}

}  // namespace

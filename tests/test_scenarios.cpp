// Scenario tests: multi-process crash choreographies reconstructing the
// paper's Section 3.1 walkthrough (Figure 5) and stressing the repair
// machinery shapes that broke Golab & Hendler's algorithm (Appendix A):
// several processes crashed around their FAS simultaneously, fragments
// repaired one at a time under RLock, correct processes concurrently
// mutating the queue during repair.
#include <gtest/gtest.h>

#include <memory>

#include "core/rme_lock.hpp"
#include "harness/sim_run.hpp"
#include "harness/world.hpp"

namespace {

using namespace rme;
using harness::LockBody;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;

using Lock = core::RmeLock<platform::Counted>;

// Compose independent per-pid crash plans.
class MultiPlan final : public sim::CrashPlan {
 public:
  void add(std::unique_ptr<sim::CrashPlan> p) { plans_.push_back(std::move(p)); }
  bool should_crash(int pid, uint64_t step, rmr::Op op) override {
    for (auto& p : plans_) {
      if (p->should_crash(pid, step, op)) return true;
    }
    return false;
  }

 private:
  std::vector<std::unique_ptr<sim::CrashPlan>> plans_;
};

// Figure 5 shape: 8 ports; even ports crash around their FAS (alternating
// before/after), odd ports enqueue normally and wait. All crashed ports
// then recover, repair one at a time under RLock, and every process
// eventually completes; ME and CSR hold throughout.
TEST(Scenario, FigureFiveCrashChoreography) {
  constexpr int k = 8;
  SimRun sim(ModelKind::kCc, k);
  auto lk = std::make_unique<Lock>(sim.world().env, k);
  LockBody<Lock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });

  MultiPlan plan;
  // pi1, pi3, pi5 of the figure: crash just after FAS (Line 14 crash).
  plan.add(std::make_unique<sim::CrashAroundFas>(0, 1, sim::CrashAroundFas::kAfter));
  plan.add(std::make_unique<sim::CrashAroundFas>(2, 1, sim::CrashAroundFas::kAfter));
  plan.add(std::make_unique<sim::CrashAroundFas>(4, 1, sim::CrashAroundFas::kAfter));
  // pi7, pi8 of the figure: crash at the FAS itself (Line 13 crash).
  plan.add(std::make_unique<sim::CrashAroundFas>(6, 1, sim::CrashAroundFas::kBefore));
  plan.add(std::make_unique<sim::CrashAroundFas>(7, 1, sim::CrashAroundFas::kBefore));

  // Enqueue in pid order first (round-robin start), then free-for-all.
  sim::SeededRandom pol(424242);
  std::vector<uint64_t> iters(k, 3);
  auto res = sim.run(pol, plan, iters, 40000000);
  ASSERT_FALSE(res.exhausted);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
  EXPECT_EQ(sim.checker().csr_violations(), 0u);
  for (int pid = 0; pid < k; ++pid) {
    EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 3u) << pid;
  }
  // All five crashed processes went through repair.
  EXPECT_EQ(lk->total_stats().repairs, 5u);
  const auto st = lk->total_stats();
  EXPECT_EQ(st.repair_fas + st.repair_headpath + st.repair_special, 5u);
}

// Appendix A Scenario-1 shape (the GH deadlock): two processes crash
// around their FAS in different super-passages and then recover
// concurrently. GH's recovering processes waited on each other's nodes
// and deadlocked; here repair is serialised by RLock and each scan waits
// only on NonNil_Signal, which the owner is guaranteed to set (Line 18 or
// 23) - so the run must terminate.
TEST(Scenario, ConcurrentRecoveriesDoNotDeadlock) {
  constexpr int k = 4;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    SimRun sim(ModelKind::kCc, k);
    auto lk = std::make_unique<Lock>(sim.world().env, k);
    LockBody<Lock> body(*lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    MultiPlan plan;
    // Two processes crash after FAS in their *second* passage, so the
    // queue contains both live traffic and two broken fragments.
    plan.add(std::make_unique<sim::CrashAroundFas>(1, 2, sim::CrashAroundFas::kAfter));
    plan.add(std::make_unique<sim::CrashAroundFas>(3, 2, sim::CrashAroundFas::kAfter));
    sim::SeededRandom pol(seed);
    std::vector<uint64_t> iters(k, 4);
    auto res = sim.run(pol, plan, iters, 40000000);
    EXPECT_FALSE(res.exhausted) << "seed " << seed;
    EXPECT_EQ(sim.checker().me_violations(), 0u) << "seed " << seed;
    for (int pid = 0; pid < k; ++pid) {
      EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 4u)
          << "seed " << seed << " pid " << pid;
    }
  }
}

// Appendix A Scenario-2 shape (the GH starvation): a process repairs
// while correct processes keep joining the queue. In GH two nodes could
// end up with the same predecessor and everyone after some point starved.
// Here: crash p0 after FAS, then let p1..p3 churn passages during p0's
// recovery window; everyone must keep completing and no two nodes may
// wait on the same predecessor's CS_Signal (checked implicitly: a shared
// predecessor would wake only one waiter and the run would exhaust).
TEST(Scenario, RepairUnderChurnDoesNotStarve) {
  constexpr int k = 4;
  for (uint64_t seed = 100; seed < 112; ++seed) {
    SimRun sim(ModelKind::kCc, k);
    auto lk = std::make_unique<Lock>(sim.world().env, k);
    LockBody<Lock> body(*lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    MultiPlan plan;
    plan.add(std::make_unique<sim::CrashAroundFas>(0, 1, sim::CrashAroundFas::kAfter));
    sim::SeededRandom pol(seed);
    // Heavy churn: the non-crashing ports run many more passages.
    std::vector<uint64_t> iters = {3, 12, 12, 12};
    auto res = sim.run(pol, plan, iters, 40000000);
    EXPECT_FALSE(res.exhausted) << "seed " << seed;
    EXPECT_EQ(sim.checker().me_violations(), 0u) << "seed " << seed;
    EXPECT_EQ(res.completions[0], 3u) << "seed " << seed;
    EXPECT_EQ(res.completions[1], 12u) << "seed " << seed;
  }
}

// Repeated crash-recover-crash of the same process: each recovery's
// repair must leave a queue the next crash can still break and re-repair.
TEST(Scenario, RepeatCrasherEventuallyCompletes) {
  constexpr int k = 3;
  SimRun sim(ModelKind::kCc, k);
  auto lk = std::make_unique<Lock>(sim.world().env, k);
  LockBody<Lock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  MultiPlan plan;
  // p0 crashes after FAS on three successive passages.
  plan.add(std::make_unique<sim::CrashAroundFas>(0, 1, sim::CrashAroundFas::kAfter));
  plan.add(std::make_unique<sim::CrashAroundFas>(0, 2, sim::CrashAroundFas::kAfter));
  plan.add(std::make_unique<sim::CrashAroundFas>(0, 3, sim::CrashAroundFas::kBefore));
  sim::SeededRandom pol(7);
  std::vector<uint64_t> iters = {5, 5, 5};
  auto res = sim.run(pol, plan, iters, 40000000);
  ASSERT_FALSE(res.exhausted);
  EXPECT_EQ(res.crashes[0], 3u);
  EXPECT_EQ(lk->total_stats().repairs, 3u);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
  EXPECT_EQ(res.completions[0], 5u);
}

// Crash *during* repair: the repairing process dies inside its RLock CS
// (mid-scan) and must recover, re-acquire RLock, and finish the repair.
TEST(Scenario, CrashDuringRepairIsRecoverable) {
  constexpr int k = 3;
  // Find repair-phase steps by first running a single-crash run and
  // noting p0's step count at repair time; then sweep crash points after
  // the first crash.
  for (uint64_t extra = 2; extra < 60; extra += 3) {
    SimRun sim(ModelKind::kCc, k);
    auto lk = std::make_unique<Lock>(sim.world().env, k);
    LockBody<Lock> body(*lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    // First crash: after FAS. Second crash: `extra` steps into recovery,
    // which for small `extra` lands inside Lines 17-24 / the RLock / the
    // repair scan.
    struct TwoPhase final : sim::CrashPlan {
      sim::CrashAroundFas first{0, 1, sim::CrashAroundFas::kAfter};
      uint64_t second_at = 0;
      uint64_t extra;
      bool second_done = false;
      explicit TwoPhase(uint64_t e) : extra(e) {}
      bool should_crash(int pid, uint64_t step, rmr::Op op) override {
        if (pid != 0) return false;
        if (first.should_crash(pid, step, op)) {
          second_at = step + extra;
          return true;
        }
        if (!second_done && second_at != 0 && step >= second_at) {
          second_done = true;
          return true;
        }
        return false;
      }
    } plan(extra);
    sim::SeededRandom pol(extra);
    std::vector<uint64_t> iters = {4, 4, 4};
    auto res = sim.run(pol, plan, iters, 40000000);
    EXPECT_FALSE(res.exhausted) << "extra " << extra;
    EXPECT_EQ(sim.checker().me_violations(), 0u) << "extra " << extra;
    EXPECT_EQ(sim.checker().csr_violations(), 0u) << "extra " << extra;
    EXPECT_EQ(res.completions[0], 4u) << "extra " << extra;
  }
}

// Port handover across super-passages: a process completes, a *different*
// process adopts the same port later (the paper's port model allows this
// as long as uses don't overlap). State left by the first user must not
// confuse the second.
TEST(Scenario, PortReuseAcrossProcesses) {
  constexpr int k = 2;
  SimRun sim(ModelKind::kCc, k);
  auto lk = std::make_unique<Lock>(sim.world().env, k);
  // Both sim processes share port 0, strictly alternating via a token.
  int token = 0;
  int done[2] = {0, 0};
  sim.set_body([&](SimProc& h, int pid) {
    // Busy-hand the port back and forth; only the token holder runs.
    while (token != pid) {
      // A shared read keeps the scheduler cycling fairly.
      (void)lk->debug_tail(h.ctx);
    }
    lk->lock(h, 0);
    lk->unlock(h, 0);
    ++done[pid];
    token = 1 - pid;
  });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {6, 6}, 4000000);
  ASSERT_FALSE(res.exhausted);
  EXPECT_EQ(done[0], 6);
  EXPECT_EQ(done[1], 6);
}

}  // namespace

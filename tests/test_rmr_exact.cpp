// Exact-count regression pins: canonical mini-scenarios whose RMR and
// step counts are fully deterministic (fixed schedule, fixed crash plan).
// Any change to the algorithm's shared-memory access pattern shows up
// here as an exact-number diff - much sharper than the asymptotic suites.
//
// If an intentional change shifts these numbers, update them after
// checking the new access pattern against Figures 3-4 line by line.
#include <gtest/gtest.h>

#include "core/rme_lock.hpp"
#include "harness/sim_run.hpp"
#include "harness/world.hpp"
#include "signal/signal.hpp"

namespace {

using namespace rme;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

// One solo passage, DSM: every write to global cells is remote, the
// local-spin cells are free, QSBR announces are local to the port.
TEST(RmrExact, SoloPassageDsm) {
  SimRun sim(ModelKind::kDsm, 1);
  core::RmeLock<P> lk(sim.world().env, 1);
  sim.set_body([&](SimProc& h, int pid) {
    lk.lock(h, pid);
    lk.unlock(h, pid);
  });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {1}, 100000);
  ASSERT_FALSE(res.exhausted);
  const auto& c = sim.world().counters(0);
  // Pin the exact profile of the first-ever passage.
  EXPECT_EQ(c.fas, 1u);            // the Line 13 FAS, nothing else
  EXPECT_EQ(c.cas, 0u);
  EXPECT_EQ(c.fai, 0u);
  EXPECT_EQ(c.rmrs, 9u) << "steps=" << c.steps;
  EXPECT_EQ(c.steps, 29u);
}

TEST(RmrExact, SoloPassageCc) {
  SimRun sim(ModelKind::kCc, 1);
  core::RmeLock<P> lk(sim.world().env, 1);
  sim.set_body([&](SimProc& h, int pid) {
    lk.lock(h, pid);
    lk.unlock(h, pid);
  });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {1}, 100000);
  ASSERT_FALSE(res.exhausted);
  const auto& c = sim.world().counters(0);
  EXPECT_EQ(c.fas, 1u);
  EXPECT_EQ(c.steps, 29u);
  // CC: all writes are RMRs; reads mostly miss on a cold cache.
  EXPECT_EQ(c.rmrs, 24u) << "steps=" << c.steps;
}

// Second solo passage on the same port costs the same (steady state, no
// allocation difference visible in shared ops).
TEST(RmrExact, SteadyStatePassagesAreUniform) {
  SimRun sim(ModelKind::kDsm, 1);
  core::RmeLock<P> lk(sim.world().env, 1);
  std::vector<uint64_t> per_passage;
  uint64_t last = 0;
  sim.set_body([&](SimProc& h, int pid) {
    lk.lock(h, pid);
    lk.unlock(h, pid);
    per_passage.push_back(h.ctx.counters.rmrs - last);
    last = h.ctx.counters.rmrs;
  });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {6}, 100000);
  ASSERT_FALSE(res.exhausted);
  ASSERT_EQ(per_passage.size(), 6u);
  // Steady state is near-uniform: the only variation is the amortised
  // QSBR reclamation pass (threshold 2k+4 = 6 here), worth a few extra
  // shared ops every few passages.
  for (size_t i = 1; i < per_passage.size(); ++i) {
    EXPECT_GE(per_passage[i], 5u) << "passage " << i;
    EXPECT_LE(per_passage[i], 14u) << "passage " << i;
  }
}

// Signal handoff, DSM, fixed schedule: exact costs for both sides.
TEST(RmrExact, SignalHandoffDsm) {
  SimRun sim(ModelKind::kDsm, 2);
  signal::Signal<P> s;
  s.attach(sim.world().env, rmr::kNoOwner);
  s.init_clear();
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      s.wait(h.ctx, h.ring);
    } else {
      s.set(h.ctx);
    }
  });
  std::vector<int> script(8, 0);  // waiter publishes and sleeps first
  sim::Scripted pol(script);
  sim::NoCrash nc;
  auto res = sim.run(pol, nc, {1, 1}, 100000);
  ASSERT_FALSE(res.exhausted);
  // Waiter: ring bookkeeping (local) + GoTag/GoSlot stores (remote, 2) +
  // Bit read (remote, 1) = 3; spins are local.
  EXPECT_EQ(sim.world().counters(0).rmrs, 3u);
  // Setter: Bit store + GoSlot read + GoTag read (remote, 3) + go-flag
  // write into the waiter's partition (remote, 1) = 4.
  EXPECT_EQ(sim.world().counters(1).rmrs, 4u);
}

// A crash-at-FAS recovery with one idle peer, fixed schedule: the full
// recovery passage cost is deterministic.
TEST(RmrExact, SoloRecoveryDsm) {
  SimRun sim(ModelKind::kDsm, 1);
  core::RmeLock<P> lk(sim.world().env, 1);
  uint64_t recovery_rmrs = 0;
  uint64_t mark = 0;
  sim::CrashAroundFas plan(0, 1, sim::CrashAroundFas::kAfter);
  sim.set_body([&](SimProc& h, int pid) {
    mark = h.ctx.counters.rmrs;
    lk.lock(h, pid);
    if (plan.fired() && recovery_rmrs == 0) {
      recovery_rmrs = h.ctx.counters.rmrs - mark;
    }
    lk.unlock(h, pid);
  });
  sim::RoundRobin rr;
  auto res = sim.run(rr, plan, {2}, 100000);
  ASSERT_FALSE(res.exhausted);
  ASSERT_TRUE(plan.fired());
  EXPECT_GT(recovery_rmrs, 0u);
  // Deterministic: the recovery ran Lines 17-24, the RLock, the repair
  // scan over one port, and the SpecialNode branch.
  EXPECT_EQ(lk.total_stats().repair_special, 1u);
  EXPECT_GT(lk.total_stats().repairs, 0u);
}

}  // namespace

// Cross-process futex parking: forked waiter processes sleep on their
// in-region wait words (platform/park.hpp FutexLot) and a releaser in
// ANOTHER process wakes the exact next-in-queue successor with one
// futex(FUTEX_WAKE). The tests choreograph real processes through the
// StageBoard/ForkScenario harness (tools/shm_worker.cpp park roles) and
// audit the tentpole claims directly against the region's WaitArena
// counters:
//
//   ParkFairness        waiters are granted in lock-queue (park) order,
//                       one futex wake per release, ZERO timeout wakes -
//                       every wake-up was an explicit targeted grant.
//   KillWhileParked     SIGKILL a PARKED waiter: the releaser's wake of
//                       the dead pid's wait word is harmless, the
//                       epoch-fenced successor incarnation recovers
//                       (held nothing), parks afresh, and receives the
//                       grant.
//   TwoProcessParkRun   steady contended parking: both workers self-audit
//                       the fair-handoff invariant handoff_rmrs <=
//                       releases (worker exit 6 on violation), ME holds.
//
// All tests skip when the build/host has no futex lot (non-Linux,
// RME_NO_FUTEX) - the timed-park fallback is covered by test_svc.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "api/api.hpp"
#include "harness/fork_scenario.hpp"
#include "platform/wait.hpp"
#include "shm/shm.hpp"
#include "svc/svc.hpp"

namespace {

using namespace std::chrono_literals;
using rme::harness::ForkScenario;
using rme::harness::ShmKillFixture;
using rme::harness::Stage;
using rme::platform::Real;
using rme::shm::ShmWorld;
using Table = rme::api::TableLock<Real>;
using Fixture = ShmKillFixture<Table>;
using Lease = rme::shm::SessionLease<Table>;

#ifndef RME_SHM_WORKER_PATH
#define RME_SHM_WORKER_PATH ""
#endif

constexpr int kShards = 2;
constexpr int kPortsPerShard = 3;
constexpr int kNpids = 6;
constexpr int kParentPid = 4;
constexpr int kObserverPid = 5;  // never claimed: observer ctx only

std::string unique_name(const char* tag) {
  static std::atomic<int> counter{0};
  return std::string("/rme_p_") + tag + "_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter.fetch_add(1));
}

std::string worker_path() { return RME_SHM_WORKER_PATH; }

// The parent's own policy: budgets irrelevant (it acquires a free lock),
// but a policy must be installed for its releases to drive the targeted
// handoff (svc wake_at is a no-op without one).
rme::platform::ParkPolicy::Options parent_opts() {
  rme::platform::ParkPolicy::Options o;
  o.spin_limit = 4;
  o.yield_limit = 8;
  o.min_park = 2s;
  o.max_park = 2s;
  return o;
}

struct ParkWorld {
  ShmWorld world;
  Fixture& fx;

  explicit ParkWorld(const std::string& name)
      : world(ShmWorld::create(name, 32 << 20, kNpids)),
        fx(world.create_root<Fixture>(world.env, kShards, kPortsPerShard,
                                      kNpids)) {}

  void audit_clean() {
    auto& ctx = world.proc(kObserverPid).ctx;
    auto& t = fx.table.underlying();
    for (int s = 0; s < t.shards(); ++s) {
      EXPECT_EQ(t.shard_lease(s).free_ports(ctx), kPortsPerShard)
          << "leaked lease in shard " << s;
      EXPECT_EQ(fx.probes[s].collisions.load(), 0u)
          << "ME violation witnessed in shard " << s;
    }
  }
};

class ShmParkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (worker_path().empty()) {
      GTEST_SKIP() << "shm_worker binary path not configured";
    }
  }
};

// Poll the region lot until exactly `n` wait words are parked.
bool await_parked(rme::platform::ParkingLot* lot, uint64_t n,
                  std::chrono::milliseconds timeout = 10000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (lot->parked_count() != n) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(200us);
  }
  return true;
}

TEST_F(ShmParkTest, ParkFairnessGrantsInQueueOrderOneWakePerRelease) {
  ParkWorld m(unique_name("fair"));
  rme::platform::ParkingLot* lot = m.world.park_lot();
  if (lot == nullptr) GTEST_SKIP() << "no futex lot on this build/host";

  const uint64_t key = 33;
  rme::platform::ParkPolicy policy(parent_opts());
  Lease holder(m.world, m.fx.table, kParentPid, &policy);
  auto g = holder->acquire(key).value();

  const uint64_t grants0 = lot->grants();
  const uint64_t timeouts0 = lot->timeouts();
  const uint64_t wakes0 = lot->wakes();

  // Two waiter processes queue behind the held lock IN ORDER: A is
  // confirmed parked (asleep on its in-region wait word) before B even
  // starts, so A precedes B in the lock queue.
  // The waiters attach at deliberately DIFFERENT bases (far-apart map
  // hints): park keys are region offsets, so the parent's release must
  // still target each waiter's wait word across the mismatch.
  ForkScenario fs;
  int a = -1, b = -1;
  {
    rme::harness::MapHint hint(0x510000000000ull);
    a = fs.spawn(worker_path(), {m.world.region().name(), "0",
                                 "park-acquire", std::to_string(key)});
  }
  ASSERT_TRUE(await_parked(lot, 1)) << "waiter A never parked";
  {
    rme::harness::MapHint hint(0x610000000000ull);
    b = fs.spawn(worker_path(), {m.world.region().name(), "1",
                                 "park-acquire", std::to_string(key)});
  }
  ASSERT_TRUE(await_parked(lot, 2)) << "waiter B never parked";

  // One release: the chain drains itself - the parent's release wakes
  // exactly A (its CS signal's successor), A's release wakes exactly B.
  g.release();
  ASSERT_TRUE(m.fx.board.await(0, Stage::kDone));
  ASSERT_TRUE(m.fx.board.await(1, Stage::kDone));
  EXPECT_TRUE(fs.exited_clean(a));
  EXPECT_TRUE(fs.exited_clean(b));

  // Lock-queue grant order: A (parked first) before B.
  EXPECT_EQ(m.fx.grant_at[0].load(), 1u);
  EXPECT_EQ(m.fx.grant_at[1].load(), 2u);

  // Every wake-up was an explicit targeted grant: two grants, two futex
  // wakes (one per waking release), zero timeout wakes.
  EXPECT_EQ(lot->grants() - grants0, 2u);
  EXPECT_EQ(lot->wakes() - wakes0, 2u);
  EXPECT_EQ(lot->timeouts() - timeouts0, 0u);
  EXPECT_EQ(lot->parked_count(), 0u);

  // The parent's one waking release booked exactly one handoff.
  EXPECT_EQ(holder->stats().handoff_rmrs, 1u);
  EXPECT_LE(holder->stats().handoff_rmrs, holder->stats().releases);
  m.audit_clean();
}

TEST_F(ShmParkTest, KillWhileParkedWakesHarmlesslyAndSuccessorRecovers) {
  ParkWorld m(unique_name("killpark"));
  rme::platform::ParkingLot* lot = m.world.park_lot();
  if (lot == nullptr) GTEST_SKIP() << "no futex lot on this build/host";

  const uint64_t key = 33;
  rme::platform::ParkPolicy policy(parent_opts());
  Lease holder(m.world, m.fx.table, kParentPid, &policy);
  auto g = holder->acquire(key).value();

  const uint64_t grants0 = lot->grants();
  const uint64_t timeouts0 = lot->timeouts();

  // A parks behind the held lock, then dies there. Its wait word stays
  // published - the corpse looks parked until its slot is taken over.
  ForkScenario fs;
  int a = -1;
  {
    rme::harness::MapHint hint(0x510000000000ull);
    a = fs.spawn(worker_path(), {m.world.region().name(), "0",
                                 "park-acquire", std::to_string(key)});
  }
  ASSERT_TRUE(await_parked(lot, 1)) << "waiter never parked";
  fs.kill_child(a);
  EXPECT_TRUE(fs.died_by(a, SIGKILL));
  EXPECT_EQ(lot->parked_count(), 1u);  // the corpse's stale parked word

  // The release HANDS THE LOCK to the dead waiter: its CS signal targets
  // A's queue node, and the futex wake it sends to A's wait word lands
  // on nobody - harmless. No grant is ever booked (grants are booked by
  // the parker, and the parker is dead), but the release did its one
  // targeted wake attempt.
  g.release();
  EXPECT_EQ(lot->grants() - grants0, 0u);
  EXPECT_EQ(holder->stats().handoff_rmrs, 1u);

  // Restart the identity: the takeover is epoch-fenced, resets the stale
  // parked word (parked_count drains), and recovery REPLAYS the granted
  // passage the corpse never ran - the successor incarnation recovers
  // the grant, audits the target shard's probe unowned (the waiter died
  // in the Try section, never inside the CS; worker exit 4 reports an
  // owned probe, exit 5 a non-takeover), then runs one clean passage on
  // the now-free lock.
  const int r = fs.spawn(worker_path(), {m.world.region().name(), "0",
                                         "recover-parked",
                                         std::to_string(key)});
  ASSERT_TRUE(m.fx.board.await(0, Stage::kDone));
  EXPECT_TRUE(fs.exited_clean(r));

  EXPECT_EQ(m.world.slot_epoch(0), 2u);  // one bump per incarnation
  // The successor's clean passage met a free lock: no park, no grant, no
  // timeout - and the stale parked word is gone.
  EXPECT_EQ(lot->grants() - grants0, 0u);
  EXPECT_EQ(lot->timeouts() - timeouts0, 0u);
  EXPECT_EQ(lot->parked_count(), 0u);
  EXPECT_EQ(m.fx.grant_at[0].load(), 1u);
  m.audit_clean();
}

TEST_F(ShmParkTest, TwoProcessParkRunHoldsFairHandoffInvariant) {
  ParkWorld m(unique_name("parkrun"));
  if (m.world.park_lot() == nullptr) {
    GTEST_SKIP() << "no futex lot on this build/host";
  }

  // Steady contended parking: each worker self-audits handoff_rmrs <=
  // releases on its own session (exit 6 on violation); the parent audits
  // mutual exclusion through the probes.
  const uint64_t key = 33;
  ForkScenario fs;
  int c1 = -1, c2 = -1;
  {
    rme::harness::MapHint hint(0x510000000000ull);
    c1 = fs.spawn(worker_path(), {m.world.region().name(), "0",
                                  "park-run", "50", std::to_string(key)});
  }
  {
    rme::harness::MapHint hint(0x610000000000ull);
    c2 = fs.spawn(worker_path(), {m.world.region().name(), "1",
                                  "park-run", "50", std::to_string(key)});
  }
  EXPECT_TRUE(fs.exited_clean(c1));
  EXPECT_TRUE(fs.exited_clean(c2));
  const int shard = m.fx.table.shard_for_key(key);
  EXPECT_EQ(m.fx.probes[shard].entries.load(), 100u);
  EXPECT_EQ(m.fx.probes[shard].collisions.load(), 0u);
  // Both workers' grants were logged (the log proves parked passages
  // completed in both processes).
  EXPECT_GT(m.fx.grant_at[0].load(), 0u);
  EXPECT_GT(m.fx.grant_at[1].load(), 0u);
  m.audit_clean();
}

}  // namespace

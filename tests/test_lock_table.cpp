// RecoverableLockTable under the scenario harness: many locks, dynamic
// per-shard port leasing, crash injection on the Counted platform.
// Mutual exclusion and CSR are audited per shard; crash recovery re-binds
// a process to the shard/port of its interrupted super-passage.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/lock_table.hpp"
#include "harness/scenario.hpp"

namespace {

using namespace rme;
using harness::ExclusionAudit;
using harness::FasCrashSpec;
using harness::KeyedLockFixture;
using harness::ModelKind;
using harness::RmrBoundAudit;
using harness::Scenario;
using C = platform::Counted;
using R = platform::Real;
using TableC = core::RecoverableLockTable<C>;
using TableR = core::RecoverableLockTable<R>;

TEST(LockTable, KeysMapToStableShardsAndLockRoundTrips) {
  harness::RealWorld w(2);
  TableR table(w.env, 8, 2, 2);
  EXPECT_EQ(table.shards(), 8);
  const std::vector<uint64_t> keys = {0, 1, 42, 1u << 20, ~0ull};
  for (uint64_t key : keys) {
    const int s1 = table.shard_for_key(key);
    const int s2 = table.shard_for_key(key);
    EXPECT_EQ(s1, s2);
    EXPECT_GE(s1, 0);
    EXPECT_LT(s1, 8);
  }
  auto& h = w.proc(0);
  const int s = table.lock(h, 0, 42);
  EXPECT_EQ(s, table.shard_for_key(42));
  EXPECT_EQ(table.current_shard(h.ctx, 0), s);
  table.unlock(h, 0);
  EXPECT_EQ(table.current_shard(h.ctx, 0), TableR::kNoShard);
  EXPECT_EQ(table.total_acquisitions(), 1u);
}

// The "crashed, then retried under a different key" shape: a pid that
// still owns a port on shard A must finish that super-passage before it
// may lock shard B. Exercised directly (no simulator) because the state
// is exactly what a crash leaves behind: a held lease + shard intent.
TEST(LockTable, StaleSuperPassageIsFinishedBeforeLockingElsewhere) {
  harness::RealWorld w(1);
  TableR table(w.env, 4, 1, 1);
  auto& h = w.proc(0);

  uint64_t key_a = 0;
  uint64_t key_b = 1;
  while (table.shard_for_key(key_b) == table.shard_for_key(key_a)) ++key_b;
  const int sa = table.shard_for_key(key_a);
  const int sb = table.shard_for_key(key_b);

  const int got_a = table.lock(h, 0, key_a);
  EXPECT_EQ(got_a, sa);
  // "Crash": simply never unlock; the lease and intent persist.
  const int got_b = table.lock(h, 0, key_b);
  EXPECT_EQ(got_b, sb);
  // Shard A's passage was completed and its port returned to the pool.
  EXPECT_EQ(table.shard_lease(sa).free_ports(h.ctx), 1);
  EXPECT_EQ(table.shard_lease(sb).free_ports(h.ctx), 0);
  table.unlock(h, 0);
  EXPECT_EQ(table.shard_lease(sb).free_ports(h.ctx), 1);
  // The stale-finish re-entered shard A's still-held CS wait-free (the
  // paper's Line 20 fast path), so no second acquisition is counted.
  EXPECT_EQ(table.shard_lock(sa).total_stats().acquisitions, 1u);
}

TEST(LockTable, RecoverRunsTheVisitorInsideTheReenteredCs) {
  harness::RealWorld w(1);
  TableR table(w.env, 4, 1, 1);
  auto& h = w.proc(0);
  const int s = table.lock(h, 0, 7);
  int visited_shard = -1;
  table.recover(h, 0, [&](platform::Process<R>&, int shard) {
    visited_shard = shard;
  });
  EXPECT_EQ(visited_shard, s);
  EXPECT_EQ(table.current_shard(h.ctx, 0), TableR::kNoShard);
  // recover() with nothing pending is a no-op.
  visited_shard = -1;
  table.recover(h, 0, [&](platform::Process<R>&, int shard) {
    visited_shard = shard;
  });
  EXPECT_EQ(visited_shard, -1);
}

// Acceptance shape: ME + CSR audits pass with crash injection on the
// Counted platform, ports_per_shard < pids (leasing on the hot path).
TEST(LockTable, CrashInjectionPassesExclusionAndCsrAudits) {
  constexpr int kPids = 6;
  constexpr int kShards = 8;
  constexpr int kPortsPerShard = 3;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Scenario<C> s(ModelKind::kCc, kPids);
    auto* fix = s.add_component<KeyedLockFixture<C, TableC>>(
        [&](harness::World<C>& w) {
          return std::make_unique<TableC>(w.env, kShards, kPortsPerShard,
                                          kPids);
        });
    auto* chk = s.audits().emplace<ExclusionAudit>(kShards);
    // Generous bound: crash-free passages are O(1) RMR but lease sweeps,
    // repairs and CC cache wipes all add up; this audits sanity, not the
    // exact constant.
    auto* rmr = s.audits().emplace<RmrBoundAudit>(s.world(), 400.0);
    s.add_component<harness::FasCrashComponent<C>>(std::vector<FasCrashSpec>{
        {0, 2, sim::CrashAroundFas::kBefore},  // at the first queue FAS
        {2, 3, sim::CrashAroundFas::kAfter},   // after the deposit FAS
        {4, 4, sim::CrashAroundFas::kAfter}});  // inside passage two
    s.use_random_schedule(seed);
    s.set_iterations(4);
    s.set_max_steps(80000000);
    auto res = s.run();
    ASSERT_TRUE(res.ok()) << "seed " << seed << ": " << res.summary();
    EXPECT_EQ(chk->me_violations(), 0u) << "seed " << seed;
    EXPECT_EQ(chk->csr_violations(), 0u) << "seed " << seed;
    EXPECT_GT(res.crashes[0] + res.crashes[2] + res.crashes[4], 0u)
        << "seed " << seed;
    for (int pid = 0; pid < kPids; ++pid) {
      EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 4u)
          << "seed " << seed << " pid " << pid;
    }
    // A crash inside Exit completes on recovery and then runs a fresh
    // passage for the retried body, so acquisitions can exceed
    // completions - but never undershoot them.
    EXPECT_GE(fix->table().total_acquisitions(), 4u * kPids);
    EXPECT_GT(rmr->mean_rmr_per_body(), 0.0);
  }
}

// Crash-at-every-point sweep on one pid: whatever instruction the crash
// replaces - lease claim, queue FAS, signal publication, CS scratch op,
// exit write, deposit - the audits must hold and the run must complete.
// Crashes inside the CS are the CSR cases: the crashed pid re-enters
// wait-free before any rival.
TEST(LockTable, CrashSweepHoldsAuditsAtEveryPoint) {
  constexpr int kPids = 3;
  constexpr int kShards = 4;

  // Probe run: how many shared-memory ops does pid 0 issue in total?
  uint64_t probe_steps = 0;
  {
    Scenario<C> s(ModelKind::kCc, kPids);
    s.add_component<KeyedLockFixture<C, TableC>>([&](harness::World<C>& w) {
      return std::make_unique<TableC>(w.env, kShards, kPids, kPids);
    });
    s.audits().emplace<ExclusionAudit>(kShards);
    s.use_random_schedule(11);
    s.set_iterations(3);
    auto res = s.run();
    ASSERT_TRUE(res.ok()) << res.summary();
    probe_steps = s.world().proc(0).ctx.step_index;
    ASSERT_GT(probe_steps, 20u);
  }

  for (uint64_t at = 1; at < probe_steps; at += 7) {
    Scenario<C> s(ModelKind::kCc, kPids);
    s.add_component<KeyedLockFixture<C, TableC>>([&](harness::World<C>& w) {
      return std::make_unique<TableC>(w.env, kShards, kPids, kPids);
    });
    auto* chk = s.audits().emplace<ExclusionAudit>(kShards);
    s.set_crash_plan(std::make_unique<sim::CrashAtSteps>(
        0, std::vector<uint64_t>{at}));
    s.use_random_schedule(11);
    s.set_iterations(3);
    s.set_max_steps(80000000);
    auto res = s.run();
    EXPECT_TRUE(res.ok()) << "crash step " << at << ": " << res.summary();
    EXPECT_EQ(chk->me_violations(), 0u) << "crash step " << at;
    EXPECT_EQ(chk->csr_violations(), 0u) << "crash step " << at;
    EXPECT_EQ(res.completions[0], 3u) << "crash step " << at;
  }
}

// DSM model smoke: the table's intent/lease words live in the owning
// pid's partition, so the idle-path probes stay local.
TEST(LockTable, DsmModelCompletesUnderChurn) {
  constexpr int kPids = 4;
  Scenario<C> s(ModelKind::kDsm, kPids);
  auto* fix = s.add_component<KeyedLockFixture<C, TableC>>(
      [&](harness::World<C>& w) {
        return std::make_unique<TableC>(w.env, 16, 2, kPids);
      });
  s.audits().emplace<ExclusionAudit>(16);
  s.use_random_schedule(3);
  s.set_iterations(6);
  auto res = s.run();
  ASSERT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(fix->table().total_acquisitions(), 6u * kPids);
}

// ---------------------------------------------------------------------------
// REGRESSION PIN for the documented try-path window (ROADMAP "true
// bounded try"; docs/recovery.md "the try-path window"): try_lock is a
// lease-claim plus a pool-occupancy probe, and a rival whose port is out
// of the pool ANYWHERE in its passage makes the probe refuse - even when
// the rival has not yet enqueued (so the shard's queue is empty and an
// attempt that committed would have succeeded immediately), and
// symmetric races can refuse BOTH probers spuriously. These tests pin
// that behaviour: a future wait-free fast path (FAS-only abandonable Try
// or a CAS-armed trait-gated path) must flip these expectations
// consciously, with this baseline as the before-picture.
// ---------------------------------------------------------------------------
TEST(LockTable, TryPathWindowPinnedRivalClaimRefusesProbe) {
  harness::RealWorld w(2);
  TableR table(w.env, 1, 2, 2);  // one shard: every key collides
  auto& h0 = w.proc(0);
  auto& h1 = w.proc(1);

  // A rival (pid 1) claims a port but never enqueues - the state inside
  // the probe-to-enqueue window. The shard's lock is perfectly free, yet
  // pid 0's bounded attempt must refuse (it cannot distinguish this
  // transient claim from a committed passage without joining the queue).
  const int rival_port = table.shard_lease(0).try_claim(h1.ctx, 1);
  ASSERT_NE(rival_port, core::kNoLease);
  EXPECT_EQ(table.try_lock(h0, 0, /*key=*/7), TableR::kNoShard);
  // The refused attempt left no residue: intent cleared, claim returned.
  EXPECT_EQ(table.current_shard(h0.ctx, 0), TableR::kNoShard);
  EXPECT_EQ(table.shard_lease(0).held(h0.ctx, 0), core::kNoLease);

  // The rival backs out; the very same attempt now succeeds - the refusal
  // above was the window, not a capacity limit.
  table.shard_lease(0).release(h1.ctx, 1);
  EXPECT_EQ(table.try_lock(h0, 0, 7), 0);
  table.unlock(h0, 0);
}

TEST(LockTable, TryPathWindowPinnedBlockingLockStillWaitsOnePassage) {
  // The blocking counterpart of the window: once a rival is COMMITTED
  // (lease + queue), a bounded attempt refuses, and lock() waits exactly
  // one passage - the "may wait one passage" cost the wait-free fix will
  // remove from try_lock.
  harness::RealWorld w(2);
  TableR table(w.env, 1, 2, 2);
  auto& h0 = w.proc(0);
  auto& h1 = w.proc(1);
  ASSERT_EQ(table.lock(h1, 1, 7), 0);        // rival holds the shard
  EXPECT_EQ(table.try_lock(h0, 0, 7), TableR::kNoShard);
  table.unlock(h1, 1);                        // one passage completes
  EXPECT_EQ(table.try_lock(h0, 0, 7), 0);     // now bounded entry succeeds
  table.unlock(h0, 0);
}

// Real threads across shards: the facade-of-many-locks in its production
// configuration (hardware concurrency, no instrumentation).
TEST(LockTable, RealThreadsManyShards) {
  constexpr int kThreads = 4;
  Scenario<R> s(kThreads);
  auto* fix = s.add_component<KeyedLockFixture<R, TableR>>(
      [&](harness::World<R>& w) {
        return std::make_unique<TableR>(w.env, 16, 2, kThreads);
      });
  auto* chk = s.audits().emplace<ExclusionAudit>(16);
  s.set_iterations(300);
  auto res = s.run();
  ASSERT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(chk->me_violations(), 0u);
  EXPECT_EQ(fix->table().total_acquisitions(), 300u * kThreads);
}

}  // namespace

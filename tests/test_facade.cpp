// Public facade tests: RecoverableMutex wiring, Guard RAII, degree/height
// selection, and the port-mapping algebra of the arbitration tree (the
// no-two-concurrent-users-per-port contract, checked structurally).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/arbitration_tree.hpp"
#include "core/recoverable_mutex.hpp"
#include "harness/sim_run.hpp"
#include "harness/world.hpp"
#include "svc/svc.hpp"

namespace {

using namespace rme;
using harness::ModelKind;
using harness::RealWorld;
using harness::SimProc;
using harness::SimRun;

TEST(Facade, SessionGuardAcquiresAndReleases) {
  RealWorld w(2);
  RecoverableMutex<platform::Real> m(w.env, 2);
  svc::Session s0(m, w.proc(0), 0);
  {
    auto g = s0.acquire().value();  // no Admission gate: always a value
    // While held, another port's trylock equivalent: we can't non-block,
    // so just assert structure is sane.
    EXPECT_GE(m.height(), 1);
    EXPECT_TRUE(g.held());
  }
  EXPECT_EQ(s0.stats().acquires, 1u);
  EXPECT_EQ(s0.stats().releases, 1u);
  // Released: a second guard on another pid succeeds (would deadlock
  // otherwise since this is single-threaded).
  svc::Session s1(m, w.proc(1), 1);
  auto g2 = s1.acquire();
  SUCCEED();
}

TEST(Facade, AutoDegreeMatchesFormula) {
  RealWorld w(1);
  for (int n : {2, 8, 64, 300, 5000}) {
    RecoverableMutex<platform::Real> m(w.env, n);
    EXPECT_EQ(m.degree(), core::arbitration_degree(n)) << n;
    // height = ceil(log_d n)
    int64_t span = 1;
    int h = 0;
    while (span < n) {
      span *= m.degree();
      ++h;
    }
    EXPECT_EQ(m.height(), std::max(1, h)) << n;
  }
}

TEST(Facade, FlatAliasIsRmeLock) {
  RealWorld w(2);
  rme::FlatRecoverableMutex<platform::Real> lk(w.env, 2);
  lk.lock(w.proc(0), 0);
  lk.unlock(w.proc(0), 0);
  EXPECT_EQ(lk.total_stats().acquisitions, 1u);
}

// Structural port-exclusivity: for every pair of distinct pids mapping to
// the same (level, node, port), they must share the same (level-1) node -
// the serialisation witness used in the tree's correctness argument.
TEST(Facade, TreePortMappingIsSerialisedByLowerLevels) {
  for (int n : {4, 9, 27, 64}) {
    for (int d : {2, 3}) {
      // Reproduce the mapping arithmetic from the implementation.
      auto node_of = [&](int l, int pid) {
        int64_t v = pid;
        for (int i = 0; i <= l; ++i) v /= d;
        return v;
      };
      auto port_of = [&](int l, int pid) {
        int64_t v = pid;
        for (int i = 0; i < l; ++i) v /= d;
        return static_cast<int>(v % d);
      };
      int height = 1;
      {
        int64_t span = d;
        while (span < n) {
          span *= d;
          ++height;
        }
      }
      for (int l = 1; l < height; ++l) {
        for (int a = 0; a < n; ++a) {
          for (int b = a + 1; b < n; ++b) {
            if (node_of(l, a) == node_of(l, b) &&
                port_of(l, a) == port_of(l, b)) {
              // Same (node, port) at level l => same node at level l-1:
              // only the holder of that lower node can be at level l.
              EXPECT_EQ(node_of(l - 1, a), node_of(l - 1, b))
                  << "n=" << n << " d=" << d << " l=" << l << " pids " << a
                  << "," << b;
            }
          }
        }
      }
    }
  }
}

// Distinct pids never collide on level-0 ports (their leaf node/port pair
// is unique).
TEST(Facade, LeafPortsAreUniquePerPid) {
  for (int n : {4, 9, 27}) {
    for (int d : {2, 3}) {
      std::set<std::pair<int64_t, int>> seen;
      for (int pid = 0; pid < n; ++pid) {
        const int64_t node = pid / d;
        const int port = pid % d;
        EXPECT_TRUE(seen.insert({node, port}).second)
            << "n=" << n << " d=" << d << " pid=" << pid;
      }
    }
  }
}

// Counted facade: the tree works identically under the counted platform
// (used by all complexity experiments).
TEST(Facade, CountedTreeBasicPassage) {
  SimRun sim(ModelKind::kDsm, 4);
  RecoverableMutex<platform::Counted> m(sim.world().env, 4);
  int entries = 0;
  sim.set_body([&](SimProc& h, int pid) {
    m.lock(h, pid);
    ++entries;
    m.unlock(h, pid);
  });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {3, 3, 3, 3}, 2000000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(entries, 12);
}

}  // namespace

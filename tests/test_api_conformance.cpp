// Conformance suite for the rme::api registry: every registry entry is
// driven through the SAME session-minted-guard audited body (rme::svc -
// the public acquisition surface) and must pass the ME+CSR Scenario
// audits
//
//   * in the deterministic simulator on BOTH RMR models (CC and DSM),
//   * on real hardware threads,
//   * and - for entries whose traits claim recoverability - under a
//     crash-injection sweep (crash shape selected by the traits: FAS
//     crashes for FAS-based locks, random crash storms for read/write
//     locks that never issue a FAS).
//
// The suite never names a lock type explicitly: it iterates
// api::for_each_lock / for_each_lock_if, so adding a registry entry
// automatically extends coverage and a non-conforming entry fails here.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "harness/scenario.hpp"
#include "svc/svc.hpp"

namespace {

using namespace rme;
using harness::ExclusionAudit;
using harness::ModelKind;
using harness::Scenario;
using C = platform::Counted;
using R = platform::Real;

// ---------------------------------------------------------------------------
// The shared audited body: acquire via a session-minted guard (the
// rme::svc RAII layer), run a verified critical section (scratch writes
// that a rival's presence would corrupt), fire the audit hooks, release
// via scope exit. Crash unwinds report crash-in-CS and leave the lock
// held (svc guard semantics, same contract as api::Guard), which is
// exactly what the CSR audit then checks.
// ---------------------------------------------------------------------------
template <class P, api::Lock L>
void guarded_audited_body(harness::AuditSet& audits,
                          platform::Process<P>& h, int pid,
                          svc::Session<L>& session,
                          typename P::template Atomic<int>& scratch) {
  auto g = session.acquire().value();  // no Admission gate: always a value
  audits.on_enter(pid);
  bool crashed_in_cs = true;
  try {
    for (int i = 0; i < 2; ++i) {
      scratch.store(h.ctx, pid);
      RME_ASSERT(scratch.load(h.ctx) == pid,
                 "api conformance: CS scratch overwritten");
    }
    crashed_in_cs = false;
    audits.on_exit(pid);
  } catch (const sim::ProcessCrashed&) {
    if (crashed_in_cs) audits.on_crash_in_cs(pid);
    throw;
  }
}

template <class P, api::KeyedLock L>
void keyed_audited_body(harness::AuditSet& audits, platform::Process<P>& h,
                        int pid, svc::Session<L>& session, uint64_t key,
                        std::vector<typename P::template Atomic<int>>& scratch) {
  auto g = session.acquire(key).value();  // no Admission gate: always a value
  const int shard = g.shard();
  audits.on_enter(pid, shard);
  bool crashed_in_cs = true;
  try {
    auto& cell = scratch[static_cast<size_t>(shard)];
    for (int i = 0; i < 2; ++i) {
      cell.store(h.ctx, pid);
      RME_ASSERT(cell.load(h.ctx) == pid,
                 "api conformance: shard scratch overwritten");
    }
    crashed_in_cs = false;
    audits.on_exit(pid, shard);
  } catch (const sim::ProcessCrashed&) {
    if (crashed_in_cs) audits.on_crash_in_cs(pid, shard);
    throw;
  }
}

// ---------------------------------------------------------------------------
// Body wiring shared by the sim and real-thread runs (the suite's claim
// is that BOTH platforms drive the SAME guarded body): one svc::Session
// per pid (sessions are the sole acquisition entry point), scratch cells
// plus an ExclusionAudit sized to the lock's shape, and a set_body
// dispatching on the KeyedLock capability. The state must outlive
// Scenario::run().
// ---------------------------------------------------------------------------
template <class P>
struct ConformanceState {
  typename P::template Atomic<int> scratch;
  std::vector<typename P::template Atomic<int>> shard_scratch;
};

template <class P, class L>
ExclusionAudit* install_conformance_body(Scenario<P>& s, L& lock,
                                         ConformanceState<P>& st) {
  auto& audits = s.audits();
  auto sessions =
      std::make_shared<std::vector<std::unique_ptr<svc::Session<L>>>>(
          svc::open_sessions(lock, s.world(), s.nprocs()));
  if constexpr (api::KeyedLock<L>) {
    auto* chk = audits.template emplace<ExclusionAudit>(lock.shards());
    st.shard_scratch = std::vector<typename P::template Atomic<int>>(
        static_cast<size_t>(lock.shards()));
    for (auto& cell : st.shard_scratch) {
      cell.attach(s.world().env, rmr::kNoOwner);
      cell.init(-1);
    }
    std::vector<uint64_t> done(static_cast<size_t>(s.nprocs()), 0);
    s.set_body([sessions, &audits, &st, done](platform::Process<P>& h,
                                              int pid) mutable {
      // Key stable across crash retries of the same logical operation.
      const uint64_t key =
          static_cast<uint64_t>(pid) * 7919u + done[static_cast<size_t>(pid)];
      keyed_audited_body<P>(audits, h, pid,
                            *(*sessions)[static_cast<size_t>(pid)], key,
                            st.shard_scratch);
      ++done[static_cast<size_t>(pid)];
    });
    return chk;
  } else {
    auto* chk = audits.template emplace<ExclusionAudit>();
    st.scratch.attach(s.world().env, rmr::kNoOwner);
    st.scratch.init(-1);
    s.set_body([sessions, &audits, &st](platform::Process<P>& h, int pid) {
      guarded_audited_body<P>(audits, h, pid,
                              *(*sessions)[static_cast<size_t>(pid)],
                              st.scratch);
    });
    return chk;
  }
}

// ---------------------------------------------------------------------------
// One simulated conformance run of a registry entry: ME + CSR audits,
// optional trait-selected crash injection.
// ---------------------------------------------------------------------------
template <class L>
void sim_conformance_run(ModelKind kind, uint64_t seed, bool with_crashes) {
  constexpr api::Traits t = api::lock_traits_v<L>;
  const int n = api::clamp_processes(t, 4);
  constexpr uint64_t kIters = 3;

  Scenario<C> s(kind, n);
  L lock(s.world().env, n);
  ConformanceState<C> st;
  ExclusionAudit* chk = install_conformance_body(s, lock, st);

  if (with_crashes) {
    ASSERT_TRUE(t.recoverable) << L::kName;
    auto plan = std::make_unique<sim::MultiPlan>();
    if (t.rmw == api::Rmw::kFasOnly) {
      // The paper's queue-breaking shapes, around the lock's own FAS ops.
      plan->emplace<sim::CrashAroundFas>(0, 1, sim::CrashAroundFas::kAfter);
      if (n >= 2) {
        plan->emplace<sim::CrashAroundFas>(1, 2,
                                           sim::CrashAroundFas::kBefore);
      }
    } else {
      // Read/write locks never execute a FAS; storm them instead.
      plan->emplace<sim::RandomCrash>(0.004, seed * 31 + 7, 8);
    }
    s.set_crash_plan(std::move(plan));
  }

  s.use_random_schedule(seed);
  s.set_iterations(kIters);
  s.set_max_steps(80000000);
  auto res = s.run();
  EXPECT_TRUE(res.ok()) << L::kName << ": " << res.summary();
  for (int pid = 0; pid < n; ++pid) {
    EXPECT_EQ(res.completions[static_cast<size_t>(pid)], kIters)
        << L::kName << " pid " << pid;
  }
  EXPECT_EQ(chk->me_violations(), 0u) << L::kName;
  EXPECT_EQ(chk->csr_violations(), 0u) << L::kName;
}

// One real-thread conformance run (no crash injection on hardware).
template <class L>
void real_conformance_run(uint64_t iters) {
  const int n = api::clamp_processes(api::lock_traits_v<L>, 4);

  Scenario<R> s(n);
  L lock(s.world().env, n);
  ConformanceState<R> st;
  ExclusionAudit* chk = install_conformance_body(s, lock, st);

  s.set_iterations(iters);
  auto res = s.run();
  EXPECT_TRUE(res.ok()) << L::kName << ": " << res.summary();
  EXPECT_EQ(chk->entries(), static_cast<uint64_t>(n) * iters) << L::kName;
  EXPECT_EQ(chk->me_violations(), 0u) << L::kName;
}

// ---------------------------------------------------------------------------
// Registry shape: at least 8 entries, unique stable names, coherent traits.
// ---------------------------------------------------------------------------
TEST(ApiRegistry, EnumeratesAtLeastEightLocks) {
  int count = 0;
  std::set<std::string> names;
  api::for_each_lock<C>([&](auto tag) {
    using L = typename decltype(tag)::type;
    ++count;
    EXPECT_TRUE(names.insert(L::kName).second)
        << "duplicate registry name " << L::kName;
  });
  EXPECT_GE(count, 8);
  EXPECT_EQ(count, api::registry_size<C>());
  EXPECT_EQ(count, api::registry_size<R>());

  // The registry self-describes (this is what the README traits table is
  // generated from); print it so the ctest log documents the surface.
  for (const auto& d : api::describe_registry<C>()) {
    std::printf("  %-18s addressing=%-7s recoverable=%d rmw=%-10s max=%d\n",
                d.name, api::to_string(d.traits.addressing),
                d.traits.recoverable ? 1 : 0, api::to_string(d.traits.rmw),
                d.traits.max_processes);
  }
}

TEST(ApiRegistry, CapabilityFilterPartitionsTheRegistry) {
  int recoverable = 0, baseline = 0, keyed = 0, fas_only = 0;
  api::for_each_lock_if<C>(
      [](const api::Traits& t) { return t.recoverable; },
      [&](auto) { ++recoverable; });
  api::for_each_lock_if<C>(
      [](const api::Traits& t) { return !t.recoverable; },
      [&](auto) { ++baseline; });
  api::for_each_lock_if<C>(
      [](const api::Traits& t) {
        return t.addressing == api::Addressing::kKeyed;
      },
      [&](auto) { ++keyed; });
  api::for_each_lock_if<C>(
      [](const api::Traits& t) { return t.rmw == api::Rmw::kFasOnly; },
      [&](auto) { ++fas_only; });
  EXPECT_EQ(recoverable + baseline, api::registry_size<C>());
  EXPECT_GE(recoverable, 5);
  EXPECT_GE(baseline, 4);
  EXPECT_GE(keyed, 1);
  // The paper's instruction-set claim holds across the whole core surface:
  // every recoverable rme_* entry is FAS-only or read/write, never CAS.
  api::for_each_lock_if<C>(
      [](const api::Traits& t) { return t.recoverable; },
      [&](auto tag) {
        using L = typename decltype(tag)::type;
        EXPECT_NE(api::lock_traits_v<L>.rmw, api::Rmw::kCas) << L::kName;
      });
  EXPECT_GE(fas_only, 4);
}

// ---------------------------------------------------------------------------
// ME + CSR, crash-free, every entry, both RMR models.
// ---------------------------------------------------------------------------
TEST(ApiConformance, SimMeCsrAllEntriesBothModels) {
  api::for_each_lock<C>([&](auto tag) {
    using L = typename decltype(tag)::type;
    SCOPED_TRACE(L::kName);
    for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
      for (uint64_t seed : {11u, 137u}) {
        sim_conformance_run<L>(kind, seed, /*with_crashes=*/false);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Crash-injection sweep: exactly the entries whose traits say recoverable.
// ---------------------------------------------------------------------------
TEST(ApiConformance, CrashSweepRecoverableEntriesBothModels) {
  int swept = 0;
  api::for_each_lock_if<C>(
      [](const api::Traits& t) { return t.recoverable; },
      [&](auto tag) {
        using L = typename decltype(tag)::type;
        SCOPED_TRACE(L::kName);
        ++swept;
        for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
          for (uint64_t seed : {3u, 71u}) {
            sim_conformance_run<L>(kind, seed, /*with_crashes=*/true);
          }
        }
      });
  EXPECT_GE(swept, 5);
}

// ---------------------------------------------------------------------------
// Real hardware threads, every entry.
// ---------------------------------------------------------------------------
TEST(ApiConformance, RealThreadsAllEntries) {
  api::for_each_lock<R>([&](auto tag) {
    using L = typename decltype(tag)::type;
    SCOPED_TRACE(L::kName);
    real_conformance_run<L>(/*iters=*/400);
  });
}

// ---------------------------------------------------------------------------
// Bounded attempts over every TryLock entry, through BOTH surfaces (the
// low-level api::TryGuard and the session verb): an uncontended attempt
// succeeds, an attempt against a held lock fails without blocking, and
// release makes the next attempt succeed again.
// ---------------------------------------------------------------------------
template <api::TryLock L>
void try_guard_roundtrip() {
  harness::RealWorld w(2);
  L lock(w.env, 2);
  auto& h0 = w.proc(0);
  auto& h1 = w.proc(1);
  {
    api::TryGuard<L> g0(lock, h0, 0);
    ASSERT_TRUE(g0) << L::kName;
    api::TryGuard<L> g1(lock, h1, 1);
    EXPECT_FALSE(g1) << L::kName << ": entered a held lock";
  }
  api::TryGuard<L> g2(lock, h1, 1);
  EXPECT_TRUE(g2) << L::kName << ": lock not released by TryGuard";
  g2.release();

  // Same roundtrip through sessions (expected-style results).
  svc::Session<L> s0(lock, h0, 0);
  svc::Session<L> s1(lock, h1, 1);
  {
    auto g3 = s0.try_acquire();
    ASSERT_TRUE(g3.has_value()) << L::kName;
    auto g4 = s1.try_acquire();
    ASSERT_FALSE(g4.has_value()) << L::kName << ": entered a held lock";
    EXPECT_EQ(g4.error(), svc::Errc::kWouldBlock) << L::kName;
  }
  auto g5 = s1.try_acquire();
  EXPECT_TRUE(g5.has_value()) << L::kName << ": lock not released by guard";
}

TEST(ApiConformance, TryGuardBaselines) {
  int tried = 0;
  api::for_each_lock<R>([&](auto tag) {
    using L = typename decltype(tag)::type;
    if constexpr (api::TryLock<L>) {
      SCOPED_TRACE(L::kName);
      ++tried;
      try_guard_roundtrip<L>();
    }
  });
  EXPECT_GE(tried, 5);  // tas, ttas, mcs, ticket, clh
}

// ---------------------------------------------------------------------------
// Crash-consistent RAII: a crash unwinding through a Guard must NOT run
// Exit - the lock stays held (pred == &InCS), recover() then completes the
// interrupted super-passage, and the next passage starts fresh.
// ---------------------------------------------------------------------------
TEST(ApiConformance, GuardCrashUnwindLeavesLockHeldForRecovery) {
  harness::CountedWorld w(ModelKind::kCc, 1);
  api::FlatLock<C> lock(w.env, 1);
  auto& h = w.proc(0);
  typename C::Atomic<int> cell;
  cell.attach(w.env, rmr::kNoOwner);
  cell.init(0);

  sim::CrashAtSteps plan(0, {0});  // patched below to the in-CS step
  bool crashed = false;
  try {
    api::Guard g(lock, h, 0);
    // Crash at the very next shared-memory op: inside the CS.
    plan = sim::CrashAtSteps(0, {h.ctx.step_index});
    h.ctx.crash = &plan;
    cell.store(h.ctx, 1);
    FAIL() << "crash step did not fire";
  } catch (const sim::ProcessCrashed&) {
    crashed = true;
  }
  h.ctx.crash = nullptr;
  ASSERT_TRUE(crashed);

  // The guard skipped Exit: the node still marks us inside the CS.
  auto* node = lock.underlying().debug_node(h.ctx, 0);
  ASSERT_NE(node, nullptr) << "Guard released the lock during crash unwind";
  EXPECT_EQ(node->pred.load(h.ctx), lock.underlying().sentinel_incs());
  // The crashed store never executed (a crash step replaces the op).
  EXPECT_EQ(cell.load(h.ctx), 0);

  // Recovery protocol: recover() re-enters wait-free and exits.
  lock.recover(h, 0);
  EXPECT_EQ(lock.underlying().debug_node(h.ctx, 0), nullptr);

  // Fresh passage afterwards, via the guard's normal path this time.
  {
    api::Guard g(lock, h, 0);
    cell.store(h.ctx, 2);
  }
  EXPECT_EQ(cell.load(h.ctx), 2);
  EXPECT_EQ(lock.underlying().debug_node(h.ctx, 0), nullptr);
}

// Early release() is idempotent and leaves the lock re-acquirable; a
// second call (error paths, crash-recovery retries) must be a no-op.
TEST(ApiConformance, GuardReleaseIsIdempotent) {
  harness::RealWorld w(1);
  api::FlatLock<R> lock(w.env, 1);
  auto& h = w.proc(0);
  api::Guard g(lock, h, 0);
  g.release();
  g.release();  // no-op, not a double Exit
  api::Guard g2(lock, h, 0);

  api::TableLock<R> table(w.env, 1);
  api::KeyGuard kg(table, h, 0, /*key=*/9);
  kg.release();
  kg.release();  // no-op
  api::KeyGuard kg2(table, h, 0, /*key=*/9);
}

// A crash inside the lease-claim window leaves no lease but an in-flight
// epoch. recover() must declare the pid quiescent (PortLease::quiesce) so
// scavenge() can repatriate the leaked port instead of refusing forever.
TEST(ApiConformance, LeasedRecoverAfterClaimCrashUnblocksScavenge) {
  harness::CountedWorld w(ModelKind::kCc, 2);
  api::LeasedLock<C> lock(w.env, 2, 2);
  auto& h = w.proc(0);

  // Crash at the op after the first FAS = the lease write: port leaked.
  sim::CrashAroundFas plan(0, 1, sim::CrashAroundFas::kAfter);
  h.ctx.crash = &plan;
  bool crashed = false;
  try {
    lock.acquire(h, 0);
  } catch (const sim::ProcessCrashed&) {
    crashed = true;
  }
  h.ctx.crash = nullptr;
  ASSERT_TRUE(crashed);

  auto& lease = lock.underlying().lease();
  auto& sctx = w.proc(1).ctx;
  EXPECT_EQ(lease.held(h.ctx, 0), core::kNoLease);
  EXPECT_EQ(lease.scavenge(sctx), core::kScavengeRefused);

  lock.recover(h, 0);  // no lease held: declares the pid quiescent
  EXPECT_EQ(lease.scavenge(sctx), 1);  // leaked port repatriated
  EXPECT_EQ(lease.free_ports(sctx), 2);
}

// recover() on every recoverable entry is harmless when nothing was
// interrupted: it must leave the lock acquirable and count as an empty
// passage (keyed recover additionally clears the persisted shard intent).
TEST(ApiConformance, RecoverIsIdempotentWhenIdle) {
  api::for_each_lock_if<R>(
      [](const api::Traits& t) { return t.recoverable; },
      [&](auto tag) {
        using L = typename decltype(tag)::type;
        SCOPED_TRACE(L::kName);
        const int n = api::clamp_processes(api::lock_traits_v<L>, 2);
        harness::RealWorld w(n);
        L lock(w.env, n);
        auto& h = w.proc(0);
        if constexpr (api::KeyedLock<L>) {
          lock.recover(h, 0);
          api::KeyGuard<L> g(lock, h, 0, /*key=*/42);
          EXPECT_EQ(g.shard(), lock.shard_for_key(42));
        } else {
          lock.recover(h, 0);
          api::Guard<L> g(lock, h, 0);
        }
      });
}

}  // namespace

// rme::cts unit + integration coverage: the SoakRng's determinism
// contract (seed replay is the soak's whole reproduction story), the
// BadNews scanner/classifier, arm parsing, and - when the shm_worker
// binary is configured - two real soaks: a short clean one that must
// find nothing, and a checker-teeth one (recovery replay deliberately
// skipped) that MUST fail, and must fail again when replayed from the
// same seed. The teeth test is the soak's own test: a chaos harness
// that cannot catch a planted fault is decoration.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cts/cts.hpp"

#ifndef RME_SHM_WORKER_PATH
#define RME_SHM_WORKER_PATH ""
#endif

namespace {

using namespace rme::cts;

TEST(SoakRng, SameSeedSameSequence) {
  SoakRng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(SoakRng, DifferentSeedsDiverge) {
  SoakRng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(SoakRng, ForkStreamsAreIndependentAndReplayable) {
  SoakRng parent1(9), parent2(9);
  SoakRng c1 = parent1.fork(3), c2 = parent2.fork(3);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(c1.next(), c2.next());
  // Different stream ids from the same parent state diverge.
  SoakRng p3(9);
  SoakRng d = p3.fork(4);
  SoakRng p4(9);
  SoakRng e = p4.fork(3);
  EXPECT_NE(d.next(), e.next());
}

TEST(SoakRng, BoundsAndClamps) {
  SoakRng r(77);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(10), 10u);
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto e = r.exp_us(1000.0);
    EXPECT_GE(e.count(), 1);
    EXPECT_LE(e.count(), 50000);
  }
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Arms, ParseRoundTrip) {
  EXPECT_EQ(parse_arms("all"), kAllArms);
  EXPECT_EQ(parse_arms(""), kAllArms);
  EXPECT_EQ(parse_arms("kill_storm"), kKillStorm);
  EXPECT_EQ(parse_arms("kill_storm+pid_reuse"),
            kKillStorm | kPidReuse);
  EXPECT_EQ(parse_arms("overload,clock_skew"),
            kOverload | kClockSkew);
  EXPECT_EQ(parse_arms("grow_storm"), kGrowStorm);
  EXPECT_EQ(parse_arms("bogus"), 0u);
  EXPECT_EQ(parse_arms("kill_storm+bogus"), 0u);
  EXPECT_EQ(parse_arms(arms_to_string(kRestartFlood | kRegionPressure)),
            kRestartFlood | kRegionPressure);
}

TEST(BadNews, ScansCapturedStderr) {
  char path[] = "/tmp/rme_cts_badnews_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  std::FILE* f = ::fdopen(fd, "w");
  std::fputs("starting up fine\n", f);
  std::fputs("shm_worker: pid slot busy\n", f);
  std::fputs("all quiet here\n", f);
  std::fputs("Assertion `x != 0' failed.\n", f);
  std::fclose(f);
  BadNews bn;
  bn.scan_file(path, "[w1]");
  ASSERT_EQ(bn.anomalies().size(), 2u);
  EXPECT_NE(bn.anomalies()[0].find("shm_worker:"), std::string::npos);
  EXPECT_NE(bn.anomalies()[1].find("Assertion"), std::string::npos);
  std::remove(path);
  // A missing file is not an anomaly (capture is best-effort).
  BadNews bn2;
  bn2.scan_file("/tmp/rme_cts_no_such_file", "[w2]");
  EXPECT_TRUE(bn2.clean());
}

TEST(BadNews, ClassifiesExitStatuses) {
  BadNews bn;
  bn.note_exit("[a]", /*exited 0*/ 0, false);
  EXPECT_TRUE(bn.clean());
  // waitpid-style encodings: exit code in the high byte, signal low.
  bn.note_exit("[b]", 4 << 8, false);  // exit code 4: recovery audit
  ASSERT_EQ(bn.anomalies().size(), 1u);
  EXPECT_NE(bn.anomalies()[0].find("recovery audit"), std::string::npos);
  bn.note_exit("[c]", SIGKILL, true);  // killed, kill expected: fine
  EXPECT_EQ(bn.anomalies().size(), 1u);
  bn.note_exit("[d]", SIGKILL, false);  // killed, no kill sent: anomaly
  ASSERT_EQ(bn.anomalies().size(), 2u);
  EXPECT_NE(bn.anomalies()[1].find("no kill was sent"), std::string::npos);
  bn.note_exit("[e]", SIGSEGV, true);  // wrong signal even when killing
  EXPECT_EQ(bn.anomalies().size(), 3u);
}

// ---------------------------------------------------------------------------
// Real soaks (need the shm_worker binary).
// ---------------------------------------------------------------------------

bool have_worker() { return std::string(RME_SHM_WORKER_PATH).size() > 0; }

SoakOptions base_options(uint64_t seed) {
  SoakOptions o;
  o.seed = seed;
  o.procs = 2;
  o.rounds = 2;
  o.passages = 40;
  o.worker = RME_SHM_WORKER_PATH;
  o.worker_timeout = std::chrono::milliseconds(8000);
  return o;
}

TEST(Soak, ShortCleanSoakFindsNothing) {
  if (!have_worker()) GTEST_SKIP() << "shm_worker path not configured";
  SoakOptions o = base_options(4242);
  o.region = "/rme_cts_clean_" + std::to_string(::getpid());
  Soak soak(o);
  const SoakReport rep = soak.run();
  EXPECT_TRUE(rep.ok()) << (rep.anomalies.empty()
                                ? std::string("?")
                                : rep.anomalies.front());
  EXPECT_EQ(rep.rounds_run, 2);
  EXPECT_GT(rep.acquires, 0u);
  EXPECT_EQ(rep.acquires, rep.releases);
  EXPECT_EQ(rep.audits_run, 12u);  // 6 audits x 2 rounds
  // The one-line contract.
  const std::string j = rep.json_line();
  EXPECT_EQ(j.find("SOAK_JSON {"), 0u);
  EXPECT_NE(j.find("\"seed\": 4242"), std::string::npos);
  EXPECT_NE(j.find("\"anomalies\": 0"), std::string::npos);
  EXPECT_TRUE(rep.failure_lines().empty());
}

TEST(Soak, GrowStormAuditsSegmentDirectoryUnderKills) {
  if (!have_worker()) GTEST_SKIP() << "shm_worker path not configured";
  // Growth under kill storms: rival grow-run workers overflow a scratch
  // region while one dies mid-grow; the arm's quiescent audit (strictly
  // increasing segment directory, last hi == limit == file size) must
  // come back clean every round.
  SoakOptions o = base_options(31337);
  o.arms = kGrowStorm;
  o.region = "/rme_cts_grow_" + std::to_string(::getpid());
  Soak soak(o);
  const SoakReport rep = soak.run();
  EXPECT_TRUE(rep.ok()) << (rep.anomalies.empty()
                                ? std::string("?")
                                : rep.anomalies.front());
  EXPECT_EQ(rep.rounds_run, 2);
  EXPECT_GE(rep.kills, 2u);  // one struck grower per round
}

TEST(Soak, CheckerTeethFaultIsCaughtAndReproducible) {
  if (!have_worker()) GTEST_SKIP() << "shm_worker path not configured";
  // The planted fault: soak-recover workers skip the recovery replay.
  // restart_flood kills at a frozen kInCs stage, so the victim is
  // GUARANTEED to die holding its shard - the skipped replay must leak a
  // lease/intent the audits catch every time, kill-timing races or not.
  SoakOptions o = base_options(777);
  o.rounds = 1;
  o.arms = kRestartFlood;
  o.teeth = true;
  o.worker_timeout = std::chrono::milliseconds(2000);
  o.region = "/rme_cts_teeth_" + std::to_string(::getpid());
  Soak soak(o);
  const SoakReport rep = soak.run();
  ASSERT_FALSE(rep.ok()) << "planted fault was not caught";
  // The failure report names a replay command carrying the seed.
  const auto lines = rep.failure_lines();
  ASSERT_FALSE(lines.empty());
  const std::string& repro = lines.back();
  EXPECT_EQ(repro.find("SOAK_REPRO: rme_soak --seed=777"), 0u);
  EXPECT_NE(repro.find("--teeth"), std::string::npos);
  // And the seed DOES reproduce: a second soak from the same options
  // fails again.
  o.region = "/rme_cts_teeth2_" + std::to_string(::getpid());
  Soak again(o);
  EXPECT_FALSE(again.run().ok()) << "printed seed did not reproduce";
}

}  // namespace

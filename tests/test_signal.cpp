// Signal object tests (paper Section 2, Theorem 1).
//
// Covers the specification (Figure 1), the DSM implementation (Figure 2),
// O(1) RMR bounds on both CC and DSM, crash-re-execution of both set() and
// wait() (including the lost-wake scenario that motivates set() never
// short-circuiting), and the BitSignal ablation showing why naive spinning
// is unbounded on DSM.
#include <gtest/gtest.h>

#include "harness/sim_run.hpp"
#include "harness/world.hpp"
#include "signal/signal.hpp"

namespace {

using namespace rme;
using harness::CountedWorld;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;

using Sig = signal::Signal<platform::Counted>;

TEST(Signal, SetThenWaitReturnsImmediately_Dsm) {
  CountedWorld w(ModelKind::kDsm, 2);
  Sig s;
  s.attach(w.env, 0);
  s.init_clear();
  s.set(w.proc(1).ctx);
  s.wait(w.proc(0).ctx, w.proc(0).ring);  // must not block
  EXPECT_TRUE(s.is_set(w.proc(0).ctx));
}

TEST(Signal, SetThenWaitReturnsImmediately_Cc) {
  CountedWorld w(ModelKind::kCc, 2);
  Sig s;
  s.attach(w.env, 0);
  s.init_clear();
  s.set(w.proc(1).ctx);
  s.wait(w.proc(0).ctx, w.proc(0).ring);
  EXPECT_TRUE(s.is_set(w.proc(0).ctx));
}

TEST(Signal, SetIsIdempotent) {
  CountedWorld w(ModelKind::kDsm, 2);
  Sig s;
  s.attach(w.env, 0);
  s.init_clear();
  for (int i = 0; i < 5; ++i) s.set(w.proc(1).ctx);
  s.wait(w.proc(0).ctx, w.proc(0).ring);
  EXPECT_TRUE(s.is_set(w.proc(0).ctx));
}

TEST(Signal, InitSetMatchesSpecialNodeSemantics) {
  CountedWorld w(ModelKind::kDsm, 1);
  Sig s;
  s.attach(w.env, 0);
  s.init_set();  // SpecialNode.CS_Signal = 1 (Figure 3, Shared objects)
  s.wait(w.proc(0).ctx, w.proc(0).ring);
  SUCCEED();
}

// Blocking handoff: p0 waits, p1 sets later; p0 must wake (both models).
class HandoffFixture : public ::testing::TestWithParam<ModelKind> {};

TEST_P(HandoffFixture, WaitThenSetWakes) {
  SimRun sim(GetParam(), 2);
  Sig s;
  s.attach(sim.world().env, 0);
  s.init_clear();
  bool woke = false;
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      s.wait(h.ctx, h.ring);
      woke = true;
    } else {
      s.set(h.ctx);
    }
  });
  // Let the waiter publish and sleep before the setter runs at all.
  sim::Scripted pol({0, 0, 0, 0, 0, 0, 0, 0});
  sim::NoCrash nc;
  auto res = sim.run(pol, nc, {1, 1}, 100000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_TRUE(woke);
}

INSTANTIATE_TEST_SUITE_P(BothModels, HandoffFixture,
                         ::testing::Values(ModelKind::kCc, ModelKind::kDsm),
                         [](const auto& info) {
                           return info.param == ModelKind::kCc ? "CC" : "DSM";
                         });

// Theorem 1 (v): O(1) RMR per operation. On DSM the waiter's spin cell is
// in its own partition, so even a long blocked wait costs O(1) RMRs.
TEST(Signal, WaitRmrIsO1OnDsmEvenWhenBlockedLong) {
  SimRun sim(ModelKind::kDsm, 2);
  Sig s;
  s.attach(sim.world().env, 0);  // signal cells in waiter's partition
  s.init_clear();
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      s.wait(h.ctx, h.ring);
    } else {
      s.set(h.ctx);
    }
  });
  // Waiter spins alone for 500 scheduling slots before the setter runs.
  std::vector<int> script(500, 0);
  sim::Scripted pol(script);
  sim::NoCrash nc;
  auto res = sim.run(pol, nc, {1, 1}, 100000);
  ASSERT_FALSE(res.exhausted);

  const auto& wc = sim.world().counters(0);
  EXPECT_GT(wc.steps, 400u);  // it really did spin a lot...
  EXPECT_LE(wc.rmrs, 8u);     // ...but spinning was partition-local
  const auto& sc = sim.world().counters(1);
  EXPECT_LE(sc.rmrs, 8u);  // set() is a constant number of remote ops
}

TEST(Signal, WaitRmrIsO1OnCcEvenWhenBlockedLong) {
  SimRun sim(ModelKind::kCc, 2);
  Sig s;
  s.attach(sim.world().env, 0);
  s.init_clear();
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      s.wait(h.ctx, h.ring);
    } else {
      s.set(h.ctx);
    }
  });
  std::vector<int> script(500, 0);
  sim::Scripted pol(script);
  sim::NoCrash nc;
  auto res = sim.run(pol, nc, {1, 1}, 100000);
  ASSERT_FALSE(res.exhausted);
  const auto& wc = sim.world().counters(0);
  EXPECT_GT(wc.steps, 400u);
  // Spin reads hit the cache; the wake invalidation costs one extra miss.
  EXPECT_LE(wc.rmrs, 10u);
}

// Ablation (E1): the trivial bit-spin Signal is O(1) on CC but unbounded
// on DSM - precisely why Figure 2 exists.
TEST(Signal, BitSignalSpinIsUnboundedOnDsm) {
  SimRun sim(ModelKind::kDsm, 2);
  signal::BitSignal<platform::Counted> s;
  s.attach(sim.world().env, 1);  // bit lives in the *setter's* partition
  s.init_clear();
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      s.wait(h.ctx);
    } else {
      s.set(h.ctx);
    }
  });
  std::vector<int> script(300, 0);
  sim::Scripted pol(script);
  sim::NoCrash nc;
  auto res = sim.run(pol, nc, {1, 1}, 100000);
  ASSERT_FALSE(res.exhausted);
  // Every spin iteration was a remote read: RMRs grow with waiting time.
  EXPECT_GT(sim.world().counters(0).rmrs, 250u);
}

TEST(Signal, BitSignalSpinIsO1OnCc) {
  SimRun sim(ModelKind::kCc, 2);
  signal::BitSignal<platform::Counted> s;
  s.attach(sim.world().env, 1);
  s.init_clear();
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      s.wait(h.ctx);
    } else {
      s.set(h.ctx);
    }
  });
  std::vector<int> script(300, 0);
  sim::Scripted pol(script);
  sim::NoCrash nc;
  auto res = sim.run(pol, nc, {1, 1}, 100000);
  ASSERT_FALSE(res.exhausted);
  EXPECT_LE(sim.world().counters(0).rmrs, 4u);
}

// Crash-re-execution of wait(): the waiter crashes mid-spin, re-runs
// wait() from the top (fresh slot + tag), and still completes.
TEST(Signal, WaiterCrashMidSpinRecovers) {
  SimRun sim(ModelKind::kDsm, 2);
  Sig s;
  s.attach(sim.world().env, 0);
  s.init_clear();
  int wait_completions = 0;
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      s.wait(h.ctx, h.ring);
      ++wait_completions;
    } else {
      s.set(h.ctx);
    }
  });
  // Waiter publishes (ops 0..3), checks Bit (4), spins (5..); crash it at
  // its 8th op, well into the spin.
  sim::CrashAtSteps plan(0, {8});
  std::vector<int> script(20, 0);  // waiter first: publish, spin, crash
  sim::Scripted pol(script);
  auto res = sim.run(pol, plan, {1, 1}, 100000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(res.crashes[0], 1u);
  EXPECT_EQ(wait_completions, 1);
}

// The lost-wake scenario: the setter crashes after writing Bit but before
// the go-flag write, while the waiter is already asleep. A set() that
// short-circuited on Bit==1 would deadlock here; the paper's set() re-runs
// all four lines and wakes the waiter.
TEST(Signal, SetterCrashBetweenBitAndWakeIsRepairedByRerun) {
  SimRun sim(ModelKind::kDsm, 2);
  Sig s;
  s.attach(sim.world().env, 0);
  s.init_clear();
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      s.wait(h.ctx, h.ring);
    } else {
      s.set(h.ctx);
    }
  });
  // Waiter: ops 0-4 publish + check Bit(=0), then sleeps. Setter: op 0 is
  // the Bit store; crash at its op 1 (the GoAddr read) - Bit is 1, no wake
  // sent. The setter's re-executed set() must deliver the wake.
  sim::CrashAtSteps plan(1, {1});
  std::vector<int> script = {0, 0, 0, 0, 0, 0};  // waiter publishes+sleeps
  sim::Scripted pol(script);
  auto res = sim.run(pol, plan, {1, 1}, 100000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(res.crashes[1], 1u);
}

// Ring-slot reuse with tags: many sequential wait/set rounds on a tiny
// ring; every round must complete even though slots are recycled rapidly
// and stale setters may write into recycled slots.
TEST(Signal, RingReuseAcrossManyRoundsIsSafe) {
  SimRun sim(ModelKind::kDsm, 2, /*ring_slots=*/2);
  constexpr int kRounds = 40;
  std::vector<std::unique_ptr<Sig>> sigs;
  for (int i = 0; i < kRounds; ++i) {
    sigs.push_back(std::make_unique<Sig>());
    sigs.back()->attach(sim.world().env, 0);
    sigs.back()->init_clear();
  }
  int wdone = 0, sdone = 0;
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      sigs[static_cast<size_t>(wdone)]->wait(h.ctx, h.ring);
      ++wdone;
    } else {
      sigs[static_cast<size_t>(sdone)]->set(h.ctx);
      ++sdone;
    }
  });
  sim::SeededRandom pol(2024);
  sim::NoCrash nc;
  auto res = sim.run(pol, nc, {kRounds, kRounds}, 1000000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(wdone, kRounds);
}

// Random crash storms over repeated handoffs: liveness and state hold.
class SignalCrashStorm : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SignalCrashStorm, HandoffsSurviveRandomCrashes) {
  SimRun sim(ModelKind::kDsm, 2);
  constexpr int kRounds = 25;
  std::vector<std::unique_ptr<Sig>> sigs;
  for (int i = 0; i < kRounds; ++i) {
    sigs.push_back(std::make_unique<Sig>());
    sigs.back()->attach(sim.world().env, 0);
    sigs.back()->init_clear();
  }
  int wdone = 0, sdone = 0;
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      sigs[static_cast<size_t>(wdone)]->wait(h.ctx, h.ring);
      ++wdone;
    } else {
      sigs[static_cast<size_t>(sdone)]->set(h.ctx);
      ++sdone;
    }
  });
  sim::SeededRandom pol(GetParam());
  sim::RandomCrash crash(0.02, GetParam() * 31 + 7, 30);
  auto res = sim.run(pol, crash, {kRounds, kRounds}, 2000000);
  EXPECT_FALSE(res.exhausted) << "seed " << GetParam();
  EXPECT_EQ(wdone, kRounds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignalCrashStorm,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace

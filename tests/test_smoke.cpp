// Smoke test: every public header compiles and the whole stack (Signal,
// R2Lock, tournament, RmeLock, tree, baselines) takes and releases a lock
// single-threaded on both platforms.
#include <gtest/gtest.h>

#include "baselines/mcs.hpp"
#include "baselines/simple_locks.hpp"
#include "core/arbitration_tree.hpp"
#include "core/recoverable_mutex.hpp"
#include "core/rme_lock.hpp"
#include "harness/world.hpp"
#include "rlock/tournament.hpp"
#include "signal/signal.hpp"
#include "svc/svc.hpp"

namespace {

using rme::harness::CountedWorld;
using rme::harness::ModelKind;
using rme::harness::RealWorld;

TEST(Smoke, RealPlatformSingleThread) {
  RealWorld w(4);
  rme::core::RmeLock<rme::platform::Real> lk(w.env, 4);
  for (int rep = 0; rep < 3; ++rep) {
    for (int p = 0; p < 4; ++p) {
      lk.lock(w.proc(p), p);
      lk.unlock(w.proc(p), p);
    }
  }
  EXPECT_EQ(lk.total_stats().acquisitions, 12u);
}

TEST(Smoke, CountedCcSingleThread) {
  CountedWorld w(ModelKind::kCc, 4);
  rme::core::RmeLock<rme::platform::Counted> lk(w.env, 4);
  lk.lock(w.proc(0), 0);
  lk.unlock(w.proc(0), 0);
  EXPECT_GT(w.counters(0).steps, 0u);
  EXPECT_GT(w.counters(0).rmrs, 0u);
}

TEST(Smoke, CountedDsmSingleThread) {
  CountedWorld w(ModelKind::kDsm, 4);
  rme::core::RmeLock<rme::platform::Counted> lk(w.env, 4);
  lk.lock(w.proc(1), 1);
  lk.unlock(w.proc(1), 1);
  EXPECT_GT(w.counters(1).rmrs, 0u);
}

TEST(Smoke, TreeAndFacade) {
  RealWorld w(8);
  rme::RecoverableMutex<rme::platform::Real> m(w.env, 8);
  EXPECT_GE(m.degree(), 2);
  for (int pid = 0; pid < 8; ++pid) {
    rme::svc::Session s(m, w.proc(pid), pid);
    auto g = s.acquire().value();
  }
}

TEST(Smoke, RlockTournament) {
  RealWorld w(8);
  rme::rlock::TournamentRLock<rme::platform::Real> rl(w.env, 8);
  for (int p = 0; p < 8; ++p) {
    rl.lock(w.proc(p), p);
    rl.unlock(w.proc(p), p);
  }
}

TEST(Smoke, Baselines) {
  RealWorld w(4);
  rme::baselines::McsLock<rme::platform::Real> mcs(w.env, 4);
  rme::baselines::TasLock<rme::platform::Real> tas(w.env);
  rme::baselines::TtasLock<rme::platform::Real> ttas(w.env);
  rme::baselines::TicketLock<rme::platform::Real> ticket(w.env);
  rme::baselines::ClhLock<rme::platform::Real> clh(w.env, 4);
  for (int p = 0; p < 4; ++p) {
    mcs.lock(w.proc(p), p); mcs.unlock(w.proc(p), p);
    tas.lock(w.proc(p), p); tas.unlock(w.proc(p), p);
    ttas.lock(w.proc(p), p); ttas.unlock(w.proc(p), p);
    ticket.lock(w.proc(p), p); ticket.unlock(w.proc(p), p);
    clh.lock(w.proc(p), p); clh.unlock(w.proc(p), p);
  }
}

TEST(Smoke, SignalSetThenWait) {
  CountedWorld w(ModelKind::kDsm, 2);
  rme::signal::Signal<rme::platform::Counted> sig;
  sig.attach(w.env, 0);
  sig.init_clear();
  sig.set(w.proc(0).ctx);
  // wait after set returns immediately via the Bit fast path.
  sig.wait(w.proc(1).ctx, w.proc(1).ring);
  EXPECT_TRUE(sig.is_set(w.proc(1).ctx));
}

}  // namespace

// Runtime invariant checking: executable spot-checks of the paper's
// inductive invariant (Figures 8-11) against live queue state.
//
// The checker runs between scheduling steps (while holding the baton, so
// it sees an atomic configuration) and validates the structural
// conditions that the proof relies on:
//
//   I1 (Cond. 19 observation): at most one node has Pred == &InCS.
//   I2 (Cond. 4): every Pred chain from a live node reaches a sentinel
//       within k+1 hops - fragments are acyclic and bounded.
//   I3 (Cond. 3): no two distinct live nodes share a *real-node*
//       predecessor (only sentinel Preds may coincide).
//   I4 (Cond. 16): Tail is the tail of its fragment - no live node's
//       Pred points at the Tail node.
//   I5 (setup): sentinel self-links and SpecialNode.Pred == &Exit are
//       never disturbed.
//
// Violations are counted, not asserted mid-run, so a failure reports the
// configuration that broke rather than tearing down the scheduler.
#include <gtest/gtest.h>

#include <memory>

#include "core/rme_lock.hpp"
#include "harness/sim_run.hpp"
#include "harness/world.hpp"

namespace {

using namespace rme;
using harness::LockBody;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;
using Lock = core::RmeLock<P>;
using Node = core::QNode<P>;

class InvariantChecker {
 public:
  // The checker must observe an *atomic* configuration: it runs while the
  // calling process holds the scheduler baton, but its own loads must not
  // yield (a yielding load would let other processes mutate the queue
  // mid-snapshot). It therefore reads through a ghost context with no
  // scheduler or crash hooks attached.
  InvariantChecker(Lock& lk, int k, typename P::Env& env) : lk_(lk), k_(k) {
    ghost_.pid = 0;
    ghost_.env = &env;
  }

  void check(typename P::Context& /*caller*/) {
    typename P::Context& ctx = ghost_;
    ++checks_;
    const Node* crash = lk_.sentinel_crash();
    const Node* incs = lk_.sentinel_incs();
    const Node* exit = lk_.sentinel_exit();
    const Node* special = lk_.sentinel_special();

    // I5: sentinel structure intact.
    Node* sp = const_cast<Node*>(special)->pred.load(ctx);
    if (sp != exit) { ++violations_; ++v_[5]; }

    std::vector<Node*> live;
    for (int q = 0; q < k_; ++q) {
      Node* n = lk_.debug_node(ctx, q);
      if (n != nullptr) live.push_back(n);
    }

    // I1: at most one InCS owner.
    int in_cs = 0;
    for (Node* n : live) {
      if (n->pred.load(ctx) == incs) ++in_cs;
    }
    if (in_cs > 1) { ++violations_; ++v_[1]; }

    // I2: bounded acyclic chains.
    for (Node* n : live) {
      Node* cur = n;
      int hops = 0;
      while (hops <= k_ + 1) {
        Node* p = cur->pred.load(ctx);
        if (p == nullptr || p == crash || p == incs || p == exit) break;
        if (p == special) break;  // special's pred is &Exit
        // p is a real node; continue. Retired nodes keep Pred == &Exit,
        // so chains through them terminate too.
        cur = p;
        ++hops;
      }
      if (hops > k_ + 1) { ++violations_; ++v_[2]; }
    }

    // I3: distinct live nodes never share a real-node predecessor.
    for (size_t i = 0; i < live.size(); ++i) {
      for (size_t j = i + 1; j < live.size(); ++j) {
        Node* pi = live[i]->pred.load(ctx);
        Node* pj = live[j]->pred.load(ctx);
        if (pi != nullptr && pi == pj && pi != crash && pi != incs &&
            pi != exit) {
          // Sharing &SpecialNode is also a violation (it is a real node
          // with CS_Signal == 1: two waiters would both enter).
          ++violations_;
          ++v_[3];
        }
      }
    }

    // I4: nobody's Pred points at the current Tail node.
    Node* tail = lk_.debug_tail(ctx);
    for (Node* n : live) {
      if (n != tail && n->pred.load(ctx) == tail &&
          tail != const_cast<Node*>(special)) {
        // Legal only transiently? No: Condition 16 says Tail =
        // tail(fragment(Tail)) in *every* configuration.
        ++violations_;
        ++v_[4];
      }
    }
  }

  uint64_t violations() const { return violations_; }
  uint64_t checks() const { return checks_; }
  std::string breakdown() const {
    std::string out;
    for (int i = 1; i <= 5; ++i) {
      out += "I" + std::to_string(i) + "=" + std::to_string(v_[i]) + " ";
    }
    return out;
  }

 private:
  Lock& lk_;
  int k_;
  typename P::Context ghost_;
  uint64_t violations_ = 0;
  uint64_t checks_ = 0;
  uint64_t v_[6] = {};
};

struct Param {
  int ports;
  uint64_t seed;
  double crash_p;
  uint64_t crash_budget;
};

class InvariantSweep : public ::testing::TestWithParam<Param> {};

TEST_P(InvariantSweep, StructuralInvariantsHoldThroughoutRun) {
  const auto [ports, seed, crash_p, budget] = GetParam();
  SimRun sim(ModelKind::kCc, ports);
  Lock lk(sim.world().env, ports);
  InvariantChecker inv(lk, ports, sim.world().env);
  LockBody<Lock> body(lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) {
    // Check the global structure before and after every passage of every
    // process (we hold the scheduler baton at these points, so the
    // snapshot is a real configuration of the run).
    inv.check(h.ctx);
    body(h, pid);
    inv.check(h.ctx);
  });
  sim::SeededRandom pol(seed);
  sim::RandomCrash crash(crash_p, seed * 13 + 5, budget);
  std::vector<uint64_t> iters(static_cast<size_t>(ports), 10);
  auto res = sim.run(pol, crash, iters, 40000000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(inv.violations(), 0u)
      << "violations across " << inv.checks() << " checks: "
      << inv.breakdown();
  EXPECT_GT(inv.checks(), 0u);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvariantSweep,
    ::testing::Values(Param{2, 1, 0.0, 0}, Param{4, 2, 0.0, 0},
                      Param{8, 3, 0.0, 0}, Param{2, 4, 0.01, 30},
                      Param{4, 5, 0.01, 30}, Param{4, 6, 0.02, 50},
                      Param{8, 7, 0.005, 40}, Param{8, 8, 0.02, 60},
                      Param{6, 9, 0.01, 50}, Param{3, 10, 0.03, 40}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.ports) + "_s" +
             std::to_string(info.param.seed) +
             (info.param.crash_budget > 0 ? "_crash" : "_clean");
    });

// Mid-passage invariant density: also check *between* the lock and unlock
// (i.e., while inside the CS), where the queue contains an InCS node.
TEST(Invariants, HoldWhileInCs) {
  constexpr int k = 4;
  SimRun sim(ModelKind::kCc, k);
  Lock lk(sim.world().env, k);
  InvariantChecker inv(lk, k, sim.world().env);
  sim.set_body([&](SimProc& h, int pid) {
    lk.lock(h, pid);
    inv.check(h.ctx);  // we are in the CS right now
    lk.unlock(h, pid);
  });
  sim::SeededRandom pol(77);
  sim::RandomCrash crash(0.01, 3, 40);
  std::vector<uint64_t> iters(k, 12);
  auto res = sim.run(pol, crash, iters, 40000000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(inv.violations(), 0u);
  EXPECT_GT(inv.checks(), 40u);
}

}  // namespace

// The cross-process kill matrix: fork+exec REAL worker processes
// (tools/shm_worker.cpp) against one shm region, SIGKILL them at chosen
// stages (at-entry, inside the CS, after release, holding a multi-key
// batch), restart them, and audit that epoch-fenced recovery leaves
// mutual exclusion, CSR and the lease pools intact. This is the
// acceptance test of the cross-process service boundary: the processes
// share NOTHING but the region - separate address spaces, separate
// incarnations, genuine whole-process death.
//
// Choreography: the worker announces stages on the in-region StageBoard
// and freezes at the kill point; the parent awaits the stage, kills,
// restarts (role recover-run: verified slot takeover + recovery replay
// with an in-CS CsProbe audit - the CSR witness), and finally audits the
// region: zero probe collisions (ME), zero leaked leases, cleared
// intents, and the slot epoch counting one bump per incarnation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "harness/fork_scenario.hpp"
#include "shm/shm.hpp"
#include "svc/svc.hpp"

namespace {

using namespace std::chrono_literals;
using rme::harness::CsProbe;
using rme::harness::ForkScenario;
using rme::harness::ShmKillFixture;
using rme::harness::Stage;
using rme::platform::Real;
using rme::shm::ShmWorld;
using Table = rme::api::TableLock<Real>;
using Fixture = ShmKillFixture<Table>;
using Lease = rme::shm::SessionLease<Table>;

#ifndef RME_SHM_WORKER_PATH
#define RME_SHM_WORKER_PATH ""
#endif

constexpr int kShards = 4;
constexpr int kPortsPerShard = 2;
constexpr int kNpids = 8;
// Logical pids: workers use 0..3, the parent's own sessions 6..7.
constexpr int kWorkerPid = 0;
constexpr int kParentPid = 6;
constexpr int kObserverPid = 7;  // never claimed: observer ctx only

std::string unique_name(const char* tag) {
  static std::atomic<int> counter{0};
  return std::string("/rme_f_") + tag + "_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter.fetch_add(1));
}

std::string worker_path() { return RME_SHM_WORKER_PATH; }

struct MatrixWorld {
  ShmWorld world;
  Fixture& fx;

  explicit MatrixWorld(const std::string& name)
      : world(ShmWorld::create(name, 32 << 20, kNpids)),
        fx(world.create_root<Fixture>(world.env, kShards, kPortsPerShard,
                                      kNpids)) {}

  // Post-run audit: every lease back in its pool, every intent cleared,
  // no ME violation witnessed anywhere.
  void audit_clean() {
    auto& ctx = world.proc(kObserverPid).ctx;
    auto& t = fx.table.underlying();
    for (int s = 0; s < t.shards(); ++s) {
      EXPECT_EQ(t.shard_lease(s).free_ports(ctx), kPortsPerShard)
          << "leaked lease in shard " << s;
      EXPECT_EQ(fx.probes[s].collisions.load(), 0u)
          << "ME violation witnessed in shard " << s;
      EXPECT_EQ(fx.probes[s].owner.load(), 0u)
          << "probe owner leaked in shard " << s;
    }
    for (int pid = 0; pid < kNpids; ++pid) {
      EXPECT_EQ(t.current_shard(ctx, pid),
                rme::core::RecoverableLockTable<Real>::kNoShard);
      EXPECT_EQ(t.current_batch(ctx, pid), 0u);
    }
  }
};

class ShmForkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (worker_path().empty()) {
      GTEST_SKIP() << "shm_worker binary path not configured";
    }
  }
};

// Two key values mapping to two DIFFERENT shards (for batch cases).
std::pair<uint64_t, uint64_t> two_shard_keys(const Fixture& fx) {
  const uint64_t k1 = 11;
  const int s1 = fx.table.shard_for_key(k1);
  for (uint64_t k2 = 12; k2 < 200; ++k2) {
    if (fx.table.shard_for_key(k2) != s1) return {k1, k2};
  }
  ADD_FAILURE() << "no second shard found";
  return {k1, k1};
}

TEST_F(ShmForkTest, TwoProcessesContendOnOneShmLock) {
  MatrixWorld m(unique_name("contend"));
  ForkScenario fs;
  const std::string key = "33";
  const int c1 = fs.spawn(worker_path(),
                          {m.world.region().name(), "0", "run", "50", key});
  const int c2 = fs.spawn(worker_path(),
                          {m.world.region().name(), "1", "run", "50", key});
  EXPECT_TRUE(fs.exited_clean(c1));
  EXPECT_TRUE(fs.exited_clean(c2));
  const int shard = m.fx.table.shard_for_key(33);
  EXPECT_EQ(m.fx.probes[shard].entries.load(), 100u);
  EXPECT_EQ(m.fx.probes[shard].collisions.load(), 0u);
  EXPECT_GE(m.fx.table.underlying().total_acquisitions(), 100u);
  m.audit_clean();
}

TEST_F(ShmForkTest, KillAtEntryThenEpochFencedRestart) {
  MatrixWorld m(unique_name("entry"));
  ForkScenario fs;
  const int c = fs.spawn(worker_path(), {m.world.region().name(), "0",
                                         "freeze-claimed"});
  ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kClaimed));
  EXPECT_EQ(m.world.slot_epoch(kWorkerPid), 1u);
  fs.kill_child(c);
  EXPECT_TRUE(fs.died_by(c, SIGKILL));
  EXPECT_TRUE(m.world.slot_claimed(kWorkerPid));  // the corpse's slot

  const int r = fs.spawn(worker_path(), {m.world.region().name(), "0",
                                         "recover-run", "3", "33"});
  ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kDone));
  EXPECT_TRUE(fs.exited_clean(r));  // exit 5 would mean "not a takeover"
  EXPECT_EQ(m.world.slot_epoch(kWorkerPid), 2u);  // one bump per incarnation
  EXPECT_FALSE(m.world.slot_claimed(kWorkerPid));  // clean detach
  m.audit_clean();
}

TEST_F(ShmForkTest, KillInsideCsRecoversWithMeAndCsrIntact) {
  MatrixWorld m(unique_name("cs"));
  ForkScenario fs;
  const uint64_t key = 33;
  const int shard = m.fx.table.shard_for_key(key);
  const int c = fs.spawn(worker_path(), {m.world.region().name(), "0",
                                         "freeze-cs", std::to_string(key)});
  ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kInCs));
  fs.kill_child(c);
  EXPECT_TRUE(fs.died_by(c, SIGKILL));
  // The corpse owns the CS: its lease is persisted, the probe claims it.
  auto& ctx = m.world.proc(kObserverPid).ctx;
  EXPECT_NE(m.fx.table.underlying().shard_lease(shard).held(ctx, kWorkerPid),
            rme::core::kNoLease);
  EXPECT_EQ(m.fx.probes[shard].owner.load(), 1u);  // probe id = pid + 1

  // A rival (this process) queueing on the same key must BLOCK until the
  // dead holder's recovery releases the shard - mutual exclusion holds
  // across the crash.
  std::atomic<bool> rival_done{false};
  std::thread rival([&] {
    Lease lease(m.world, m.fx.table, kParentPid);
    auto g = lease->acquire(key).value();
    m.fx.probes[g.shard()].enter(kParentPid + 1);
    m.fx.probes[g.shard()].exit(kParentPid + 1);
    g.release();
    rival_done.store(true);
  });
  std::this_thread::sleep_for(300ms);
  EXPECT_FALSE(rival_done.load()) << "rival entered a dead process's CS";

  // Restart: verified takeover, recovery replays INSIDE the re-entered
  // CS (the worker's visitor asserts the probe still belongs to the dead
  // incarnation - the CSR witness - and exit code 4 reports a violation).
  const int r = fs.spawn(worker_path(), {m.world.region().name(), "0",
                                         "recover-run", "5",
                                         std::to_string(key)});
  ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kDone));
  EXPECT_TRUE(fs.exited_clean(r));
  rival.join();
  EXPECT_TRUE(rival_done.load());
  EXPECT_EQ(m.world.slot_epoch(kWorkerPid), 2u);
  // Entries: 1 (killed incarnation) + 5 (recovered runs) + 1 (rival).
  EXPECT_EQ(m.fx.probes[shard].entries.load(), 7u);
  m.audit_clean();
}

TEST_F(ShmForkTest, KillAfterReleaseQuiescesOnRestart) {
  MatrixWorld m(unique_name("exit"));
  ForkScenario fs;
  const uint64_t key = 33;
  const int shard = m.fx.table.shard_for_key(key);
  const int c =
      fs.spawn(worker_path(), {m.world.region().name(), "0",
                               "freeze-released", std::to_string(key)});
  ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kReleased));
  // Lock already free; only the pid slot is still claimed.
  auto& ctx = m.world.proc(kObserverPid).ctx;
  EXPECT_EQ(m.fx.table.underlying().shard_lease(shard).free_ports(ctx),
            kPortsPerShard);
  fs.kill_child(c);
  EXPECT_TRUE(fs.died_by(c, SIGKILL));

  const int r = fs.spawn(worker_path(), {m.world.region().name(), "0",
                                         "recover-run", "2",
                                         std::to_string(key)});
  ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kDone));
  EXPECT_TRUE(fs.exited_clean(r));
  EXPECT_EQ(m.world.slot_epoch(kWorkerPid), 2u);
  EXPECT_EQ(m.fx.probes[shard].entries.load(), 3u);  // 1 clean + 2 recovered
  m.audit_clean();
}

TEST_F(ShmForkTest, KillHoldingBatchReplaysIntentMask) {
  MatrixWorld m(unique_name("batch"));
  ForkScenario fs;
  const auto [k1, k2] = two_shard_keys(m.fx);
  const int s1 = m.fx.table.shard_for_key(k1);
  const int s2 = m.fx.table.shard_for_key(k2);
  const int c = fs.spawn(worker_path(),
                         {m.world.region().name(), "0", "freeze-batch",
                          std::to_string(k1), std::to_string(k2)});
  ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kBatchHeld));
  // The persisted intent mask names both shards; both leases are out.
  auto& ctx = m.world.proc(kObserverPid).ctx;
  const uint64_t mask =
      m.fx.table.underlying().current_batch(ctx, kWorkerPid);
  EXPECT_NE(mask & (uint64_t{1} << s1), 0u);
  EXPECT_NE(mask & (uint64_t{1} << s2), 0u);
  fs.kill_child(c);
  EXPECT_TRUE(fs.died_by(c, SIGKILL));

  // Restart replays the WHOLE batch from the mask (both shards re-entered
  // and exited, probes audited in-CS), then runs clean batch passages.
  const int r = fs.spawn(worker_path(),
                         {m.world.region().name(), "0", "recover-run", "3",
                          std::to_string(k1), std::to_string(k2)});
  ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kDone));
  EXPECT_TRUE(fs.exited_clean(r));
  EXPECT_EQ(m.world.slot_epoch(kWorkerPid), 2u);
  m.audit_clean();
}

TEST_F(ShmForkTest, RestartStormManyIncarnations) {
  // Several kill/restart cycles on one identity while a second process
  // runs clean traffic: epochs count every incarnation, audits stay
  // clean throughout.
  MatrixWorld m(unique_name("storm"));
  ForkScenario fs;
  const uint64_t key = 33;
  const int load = fs.spawn(worker_path(), {m.world.region().name(), "1",
                                            "run", "200", "34"});
  uint64_t expected_epoch = 0;
  for (int round = 0; round < 3; ++round) {
    const int c =
        fs.spawn(worker_path(), {m.world.region().name(), "0", "freeze-cs",
                                 std::to_string(key)});
    ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kInCs));
    fs.kill_child(c);
    EXPECT_TRUE(fs.died_by(c, SIGKILL));
    ++expected_epoch;
    const int r = fs.spawn(worker_path(), {m.world.region().name(), "0",
                                           "recover-run", "2",
                                           std::to_string(key)});
    ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kDone));
    EXPECT_TRUE(fs.exited_clean(r));
    ++expected_epoch;
    EXPECT_EQ(m.world.slot_epoch(kWorkerPid), expected_epoch);
    // The board cell is reused across rounds: reset the stage marker.
    m.fx.board.announce(kWorkerPid, Stage::kIdle);
  }
  EXPECT_TRUE(fs.exited_clean(load));
  m.audit_clean();
}

}  // namespace

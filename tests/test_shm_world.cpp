// ShmWorld unit coverage that does not need real child processes: region
// creation and the fixed-address contract, arena placement of the lock
// state, the pid registry's claim/takeover/epoch-fence protocol, and two
// THREADS of one process contending on a region-resident table through
// SessionLease. Real cross-process coverage (fork+exec, SIGKILL, epoch-
// fenced restart) lives in tests/test_shm_fork.cpp.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/mman.h>
#include <sys/stat.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "harness/fork_scenario.hpp"
#include "platform/arena.hpp"
#include "shm/shm.hpp"
#include "svc/svc.hpp"

namespace {

using rme::harness::ShmKillFixture;
using rme::platform::Real;
using rme::shm::ShmError;
using rme::shm::ShmWorld;
using Table = rme::api::TableLock<Real>;
using Fixture = ShmKillFixture<Table>;

std::string unique_name(const char* tag) {
  static std::atomic<int> counter{0};
  return std::string("/rme_t_") + tag + "_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter.fetch_add(1));
}

TEST(ShmRegion, CreateRootAndArenaPlacement) {
  auto world = ShmWorld::create(unique_name("root"), 8 << 20, 4);
  struct Root {
    std::atomic<uint64_t> a{0};
    uint64_t b = 42;
  };
  Root& r = world.create_root<Root>();
  EXPECT_EQ(r.b, 42u);
  // The root must live inside the region.
  char* base = world.region().base();
  EXPECT_GE(reinterpret_cast<char*>(&r), base);
  EXPECT_LT(reinterpret_cast<char*>(&r), base + world.region().bytes());
  // root<T>() resolves to the same object.
  EXPECT_EQ(&world.root<Root>(), &r);
  // Arena allocations are disjoint and respect alignment.
  void* p1 = world.env.arena.allocate(24, 8);
  void* p2 = world.env.arena.allocate(24, 64);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p2) % 64, 0u);
}

TEST(ShmRegion, CreateFailsOnDuplicateName) {
  const std::string name = unique_name("dup");
  auto world = ShmWorld::create(name, 8 << 20, 2);
  EXPECT_THROW(ShmWorld::create(name, 8 << 20, 2), ShmError);
}

TEST(ShmRegion, SelfAttachAtSecondBaseSharesState) {
  // The attach-anywhere contract: a second attach in the SAME process
  // lands at a second base (the first mapping occupies the original
  // range) and still resolves the same state, because every in-region
  // link is a self-relative offset. Full cross-process coverage at
  // mismatched bases lives in tests/test_shm_offsets.cpp.
  const std::string name = unique_name("busy");
  auto world = ShmWorld::create(name, 8 << 20, 2);
  world.create_root<uint64_t>(7);  // publish, so attach() proceeds
  auto world2 = ShmWorld::attach(name);
  EXPECT_NE(world2.region().base(), world.region().base());
  EXPECT_EQ(world2.root<uint64_t>(), 7u);
  world.root<uint64_t>() = 99;
  EXPECT_EQ(world2.root<uint64_t>(), 99u);
}

TEST(ShmRegion, FixedFastPathRefusesBusyAddress) {
  // The opt-in fixed-address fast path keeps the old loud-failure
  // behaviour: a process that already maps the region cannot map it
  // again at the recorded base.
  const std::string name = unique_name("fixed");
  auto world = ShmWorld::create(name, 8 << 20, 2);
  world.create_root<int>(7);
  ::setenv("RME_SHM_FIXED", "1", 1);
  EXPECT_THROW(ShmWorld::attach(name), ShmError);
  ::unsetenv("RME_SHM_FIXED");
}

TEST(ShmRegistry, FreshClaimBumpsEpochAndReleases) {
  auto world = ShmWorld::create(unique_name("claim"), 8 << 20, 4);
  auto id = world.claim(0);
  EXPECT_EQ(id.epoch, 1u);
  EXPECT_FALSE(id.restarted);
  EXPECT_FALSE(world.fenced(id));
  EXPECT_TRUE(world.slot_claimed(0));
  EXPECT_EQ(world.slot_owner(0), static_cast<int64_t>(::getpid()));
  world.release(id);
  EXPECT_FALSE(world.slot_claimed(0));
  // Epoch is monotone across incarnations, even clean ones.
  auto id2 = world.claim(0);
  EXPECT_EQ(id2.epoch, 2u);
  EXPECT_FALSE(id2.restarted);
  world.release(id2);
}

TEST(ShmRegistry, DoubleClaimByLiveOwnerThrows) {
  auto world = ShmWorld::create(unique_name("busy2"), 8 << 20, 4);
  auto id = world.claim(1);
  EXPECT_THROW(world.claim(1), ShmError);
  world.release(id);
}

TEST(ShmRegistry, ClaimedSlotWithNoOwnerIsBusyNotDead) {
  // A kClaimed slot with os_pid == 0 is a claim/release IN FLIGHT (the
  // state word and the owner record are two writes): treating it as a
  // dead owner would race a takeover against the live claimer - two
  // owners of one identity. The registry must report busy instead.
  auto world = ShmWorld::create(unique_name("mid"), 8 << 20, 4);
  auto& slot = world.region().header()->slots[1];
  slot.state.store(rme::shm::PidSlot::kClaimed, std::memory_order_release);
  slot.os_pid.store(0, std::memory_order_release);  // claimer pre-record
  EXPECT_THROW(world.claim(1), ShmError);
  // Once the in-flight writer finishes (records itself dead here), the
  // takeover path opens as usual.
  slot.os_pid.store(0x7ffffff0, std::memory_order_release);
  auto taken = world.claim(1);
  EXPECT_TRUE(taken.restarted);
  world.release(taken);
}

TEST(ShmRegistry, TakeoverOfDeadOwnerFencesStaleIdentity) {
  auto world = ShmWorld::create(unique_name("fence"), 8 << 20, 4);
  auto stale = world.claim(2);
  EXPECT_EQ(stale.epoch, 1u);
  // Simulate the owner dying: forge a dead OS pid into the slot (beyond
  // pid_max, so kill() reports ESRCH). The state stays kClaimed - exactly
  // what a SIGKILL'd owner leaves behind.
  world.region().header()->slots[2].os_pid.store(0x7ffffff0,
                                                 std::memory_order_release);
  auto taken = world.claim(2);
  EXPECT_TRUE(taken.restarted);
  EXPECT_EQ(taken.epoch, 2u);
  // The stale incarnation is fenced: its epoch no longer matches, and its
  // release must NOT free the successor's slot.
  EXPECT_TRUE(world.fenced(stale));
  EXPECT_FALSE(world.fenced(taken));
  world.release(stale);  // no-op: fenced
  EXPECT_TRUE(world.slot_claimed(2));
  world.release(taken);
  EXPECT_FALSE(world.slot_claimed(2));
}

TEST(ShmWorldLock, TwoThreadSessionsContendOnRegionResidentTable) {
  auto world = ShmWorld::create(unique_name("tbl"), 16 << 20, 4);
  Fixture& fx = world.create_root<Fixture>(world.env, /*shards=*/4,
                                           /*ports_per_shard=*/2,
                                           /*npids=*/4);
  // The whole table must be region-resident (shm_placeable in action).
  char* base = world.region().base();
  EXPECT_GE(reinterpret_cast<char*>(&fx.table), base);
  EXPECT_LT(reinterpret_cast<char*>(&fx.table),
            base + world.region().bytes());

  constexpr int kIters = 400;
  constexpr uint64_t kKey = 77;
  rme::shm::SessionLease<Table> a(world, fx.table, 0);
  rme::shm::SessionLease<Table> b(world, fx.table, 1);
  auto body = [&](rme::shm::SessionLease<Table>& lease, uint64_t id) {
    for (int i = 0; i < kIters; ++i) {
      auto g = lease->acquire(kKey).value();
      fx.probes[g.shard()].enter(id);
      fx.probes[g.shard()].exit(id);
    }
  };
  std::thread t1([&] { body(a, 1); });
  std::thread t2([&] { body(b, 2); });
  t1.join();
  t2.join();

  const int shard = fx.table.shard_for_key(kKey);
  EXPECT_EQ(fx.probes[shard].collisions.load(), 0u);
  EXPECT_EQ(fx.probes[shard].entries.load(), 2u * kIters);
  // Clean shutdown leaked nothing.
  auto& ctx = world.proc(3).ctx;
  auto& t = fx.table.underlying();
  for (int s = 0; s < t.shards(); ++s) {
    EXPECT_EQ(t.shard_lease(s).free_ports(ctx), 2);
  }
  for (int pid = 0; pid < 4; ++pid) {
    EXPECT_EQ(t.current_shard(ctx, pid),
              rme::core::RecoverableLockTable<Real>::kNoShard);
    EXPECT_EQ(t.current_batch(ctx, pid), 0u);
  }
}

TEST(ShmWorldLock, SessionLeaseRecoversOnTakeover) {
  // In-process rehearsal of the restart path: claim a pid, lock a key,
  // "die" (leak the guard and forge a dead owner), then construct a new
  // SessionLease for the same pid and verify it replayed recovery before
  // returning: the lock is free, the intent cleared, the epoch bumped.
  auto world = ShmWorld::create(unique_name("rec"), 16 << 20, 4);
  Fixture& fx = world.create_root<Fixture>(world.env, 4, 2, 4);
  auto& t = fx.table.underlying();
  constexpr uint64_t kKey = 9;
  const int shard = fx.table.shard_for_key(kKey);
  {
    // The "crashing" incarnation: acquire and deliberately leak the hold
    // (simulated SIGKILL: no release, no detach).
    auto id = world.claim(2);
    auto& h = world.proc(2);
    fx.table.acquire(h, 2, kKey);
    EXPECT_NE(t.shard_lease(shard).held(h.ctx, 2), rme::core::kNoLease);
    // Slot stays claimed; owner becomes a dead pid.
    world.region().header()->slots[2].os_pid.store(
        0x7ffffff0, std::memory_order_release);
    (void)id;
  }
  rme::shm::SessionLease<Table> lease(world, fx.table, 2);
  EXPECT_TRUE(lease.restarted());
  EXPECT_FALSE(lease.fenced());
  auto& ctx = world.proc(3).ctx;
  EXPECT_EQ(t.shard_lease(shard).free_ports(ctx), 2);  // recovery released
  EXPECT_EQ(t.current_shard(ctx, 2),
            rme::core::RecoverableLockTable<Real>::kNoShard);
  // And the recovered identity acquires normally.
  auto g = lease->acquire(kKey).value();
  EXPECT_TRUE(g.held());
}

TEST(ShmRegion, ArenaExhaustionRefusesCleanly) {
  // The region-pressure soak arm's contract: a bump allocation the
  // region cannot hold returns nullptr (no abort, no UB), a REFUSED
  // request leaves the cursor untouched, and the arena hands out every
  // byte it actually has.
  auto world = ShmWorld::create(unique_name("full"), 1 << 20, 2);
  world.set_grow_enabled(false);  // this test pins the NO-GROW contract
  auto& arena = world.env.arena;
  // A request far beyond the region: clean refusal, nothing consumed.
  EXPECT_EQ(arena.try_allocate(8u << 20, 64), nullptr);
  const uint64_t cursor_after_refusal =
      world.region().header()->cursor.load(std::memory_order_relaxed);
  // The refusal is non-sticky: small allocations still succeed.
  EXPECT_NE(arena.try_allocate(256, 64), nullptr);
  EXPECT_GT(world.region().header()->cursor.load(std::memory_order_relaxed),
            cursor_after_refusal);
  // Drain to exhaustion: refusal, not a poisoned cursor or an overlap.
  size_t grabs = 0;
  while (arena.try_allocate(4096, 64) != nullptr) {
    ASSERT_LT(++grabs, 1u << 16) << "arena never exhausted";
  }
  while (arena.try_allocate(64, 8) != nullptr) {
    ASSERT_LT(++grabs, 1u << 17) << "fine fill never exhausted";
  }
  EXPECT_EQ(arena.try_allocate(8, 8), nullptr);
  EXPECT_LE(world.region().header()->cursor.load(std::memory_order_relaxed),
            world.region().bytes());
}

TEST(ShmRegion, ArenaGrowthExtendsRegion) {
  // The growth path: an allocation beyond the current limit triggers
  // region_grow, which ftruncate-extends the backing object inside the
  // pre-mapped VA span and appends a segment-directory entry. The
  // returned memory must be writable and the directory consistent.
  auto world = ShmWorld::create(unique_name("grow"), 1 << 20, 2);
  const rme::shm::RegionHeader* hdr = world.region().header();
  const uint64_t limit0 = hdr->limit.load(std::memory_order_acquire);
  EXPECT_EQ(limit0, 1u << 20);
  EXPECT_EQ(hdr->segs.count.load(std::memory_order_acquire), 1u);

  void* p = world.env.arena.try_allocate(2u << 20, 64);
  ASSERT_NE(p, nullptr) << "growth should satisfy a 2MB request";
  ::memset(p, 0xab, 2u << 20);  // the extended range must be writable

  const uint64_t limit1 = hdr->limit.load(std::memory_order_acquire);
  EXPECT_GT(limit1, limit0);
  EXPECT_LE(limit1, world.region().bytes());  // never past the VA span
  // Segment directory: >= 2 entries, strictly increasing, last == limit.
  const uint32_t nsegs = hdr->segs.count.load(std::memory_order_acquire);
  ASSERT_GE(nsegs, 2u);
  uint64_t prev = 0;
  for (uint32_t i = 0; i < nsegs; ++i) {
    const uint64_t hi = hdr->segs.hi[i].load(std::memory_order_acquire);
    EXPECT_GT(hi, prev) << "segment " << i;
    prev = hi;
  }
  EXPECT_EQ(prev, limit1);
  EXPECT_GE(hdr->segs.gen.load(std::memory_order_acquire), 2u);
  // The backing object really was extended: its file size is the limit.
  const int fd = ::shm_open(world.region().name().c_str(), O_RDONLY, 0);
  ASSERT_GE(fd, 0);
  struct stat st {};
  ASSERT_EQ(::fstat(fd, &st), 0);
  ::close(fd);
  EXPECT_EQ(static_cast<uint64_t>(st.st_size), limit1);
}

TEST(ShmRegion, ArenaOverAlignedAllocationsAlignTheAddress) {
  // Regression for the daemon-side over-alignment bug: try_allocate must
  // align the ABSOLUTE address (base + cursor), not the cursor offset.
  // The region's payload base is not itself page-aligned, so any offset-
  // only scheme breaks exactly at align > alignof(base).
  auto world = ShmWorld::create(unique_name("align"), 8 << 20, 2);
  auto& arena = world.env.arena;
  // Skew the cursor first so the interesting allocations never start
  // from an already-convenient offset.
  ASSERT_NE(arena.try_allocate(24, 8), nullptr);
  for (size_t align : {size_t{64}, size_t{256}, size_t{4096}, size_t{8192}}) {
    void* p = arena.try_allocate(128, align);
    ASSERT_NE(p, nullptr) << "align=" << align;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "align=" << align;
    ASSERT_NE(arena.try_allocate(1, 1), nullptr);  // re-skew between rounds
  }
}

TEST(ShmRegion, ArenaMisalignedBaseStillAlignsAbsoluteAddress) {
  // A raw Arena whose base is deliberately NOT aligned to the request:
  // the offset-aligning bug would return base + aligned_offset, which is
  // misaligned by exactly the base's skew. Build the arena by hand so the
  // skew is under test control rather than an accident of header layout.
  alignas(4096) static char backing[64 << 10];
  std::atomic<uint64_t> cursor{0};
  rme::platform::Arena arena;
  arena.base = backing + 24;  // 8-aligned, not 64-aligned
  arena.limit = sizeof(backing) - 24;
  arena.cursor = &cursor;
  for (size_t align : {size_t{64}, size_t{256}, size_t{4096}}) {
    void* p = arena.try_allocate(64, align);
    ASSERT_NE(p, nullptr) << "align=" << align;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
  // An over-aligned request the arena cannot hold refuses cleanly and
  // leaves the cursor where it was (no space burned by the failed align).
  const uint64_t before = cursor.load(std::memory_order_relaxed);
  EXPECT_EQ(arena.try_allocate(sizeof(backing), 8192), nullptr);
  EXPECT_EQ(cursor.load(std::memory_order_relaxed), before);
}

TEST(ShmRegistry, RecycledPidWithMismatchedStartTimeIsDead) {
  // The pid-reuse window: the dead owner's OS pid has been recycled onto
  // a LIVE unrelated process. kill(pid, 0) alone would call the owner
  // alive forever; the recorded /proc start-time cross-check must expose
  // the impostor and open the takeover path.
  auto world = ShmWorld::create(unique_name("reuse"), 8 << 20, 4);
  auto id = world.claim(1);
  (void)id;  // dies with the forged owner below; never released
  // A live decoy standing in for "the kernel reused the pid".
  const pid_t decoy = ::fork();
  if (decoy == 0) {
    for (;;) ::pause();
  }
  ASSERT_GT(decoy, 0);
  const uint64_t real_start = rme::shm::proc_start_time(decoy);
  ASSERT_NE(real_start, 0u);
  auto& slot = world.region().header()->slots[1];
  // Recorded start time MATCHES the live decoy: this is a live owner,
  // and the claim must refuse (busy), not take over.
  slot.start_time.store(real_start, std::memory_order_release);
  slot.os_pid.store(static_cast<int64_t>(decoy), std::memory_order_release);
  EXPECT_THROW(world.claim(1), ShmError);
  // Recorded start time MISMATCHES: the recorded owner is dead, its pid
  // merely recycled - the slot is takeoverable.
  slot.start_time.store(real_start + 977, std::memory_order_release);
  auto taken = world.claim(1);
  EXPECT_TRUE(taken.restarted);
  world.release(taken);
  ::kill(decoy, SIGKILL);
  int st = 0;
  ::waitpid(decoy, &st, 0);
}

}  // namespace

// Baseline lock tests: correctness of MCS/TAS/TTAS/ticket/CLH under the
// simulator (crash-free - none of these are recoverable), plus the RMR
// separations the paper's Section 1 narrative relies on:
//   * MCS is O(1) RMR on CC and DSM but its release path issues CAS,
//   * CLH is O(1) on CC but unbounded on DSM (remote predecessor spin),
//   * TAS is unbounded on both under contention.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/mcs.hpp"
#include "baselines/simple_locks.hpp"
#include "harness/sim_run.hpp"
#include "harness/world.hpp"

namespace {

using namespace rme;
using harness::LockBody;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

template <class Lock, class Make>
void exclusion_and_progress(Make make, int n, uint64_t seed) {
  SimRun sim(ModelKind::kCc, n);
  auto lk = make(sim);
  LockBody<Lock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::SeededRandom pol(seed);
  sim::NoCrash nc;
  std::vector<uint64_t> iters(static_cast<size_t>(n), 10);
  auto res = sim.run(pol, nc, iters, 20000000);
  ASSERT_FALSE(res.exhausted);
  EXPECT_EQ(sim.checker().entries(), 10u * static_cast<uint64_t>(n));
  EXPECT_EQ(sim.checker().me_violations(), 0u);
}

TEST(Baselines, McsExclusionAndProgress) {
  exclusion_and_progress<baselines::McsLock<P>>(
      [](SimRun& s) {
        return std::make_unique<baselines::McsLock<P>>(s.world().env, 4);
      },
      4, 11);
}

TEST(Baselines, TasExclusionAndProgress) {
  exclusion_and_progress<baselines::TasLock<P>>(
      [](SimRun& s) {
        return std::make_unique<baselines::TasLock<P>>(s.world().env);
      },
      4, 12);
}

TEST(Baselines, TtasExclusionAndProgress) {
  exclusion_and_progress<baselines::TtasLock<P>>(
      [](SimRun& s) {
        return std::make_unique<baselines::TtasLock<P>>(s.world().env);
      },
      4, 13);
}

TEST(Baselines, TicketExclusionAndProgress) {
  exclusion_and_progress<baselines::TicketLock<P>>(
      [](SimRun& s) {
        return std::make_unique<baselines::TicketLock<P>>(s.world().env);
      },
      4, 14);
}

TEST(Baselines, ClhExclusionAndProgress) {
  exclusion_and_progress<baselines::ClhLock<P>>(
      [](SimRun& s) {
        return std::make_unique<baselines::ClhLock<P>>(s.world().env, 4);
      },
      4, 15);
}

// Ticket lock is FIFO: entry order equals ticket order.
TEST(Baselines, TicketIsFifo) {
  SimRun sim(ModelKind::kCc, 3);
  baselines::TicketLock<P> lk(sim.world().env);
  std::vector<int> order;
  sim.set_body([&](SimProc& h, int pid) {
    lk.lock(h, pid);
    order.push_back(pid);
    lk.unlock(h, pid);
  });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {5, 5, 5}, 2000000);
  ASSERT_FALSE(res.exhausted);
  // Under round-robin, tickets are taken 0,1,2,0,1,2,... so service order
  // is exactly cyclic.
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i % 3)) << i;
  }
}

// MCS issues CAS (release path); the core lock never does - the E8
// instruction-mix separation.
TEST(Baselines, McsUsesCas) {
  SimRun sim(ModelKind::kCc, 2);
  baselines::McsLock<P> lk(sim.world().env, 2);
  LockBody<baselines::McsLock<P>> body(lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {10, 10}, 2000000);
  ASSERT_FALSE(res.exhausted);
  uint64_t cas = 0;
  for (int p = 0; p < 2; ++p) cas += sim.world().counters(p).cas;
  EXPECT_GT(cas, 0u);
}

// MCS blocked waiter spins locally on both models (the property the paper
// recoverabilises); TAS spins remotely on both; CLH splits CC vs DSM.
TEST(Baselines, BlockedSpinLocality) {
  struct Probe {
    uint64_t steps;
    uint64_t rmrs;
  };
  auto blocked_probe = [](ModelKind kind, auto make_lock) -> Probe {
    SimRun sim(kind, 2);
    auto lk = make_lock(sim);
    platform::Counted::Atomic<int> dummy;
    dummy.attach(sim.world().env, rmr::kNoOwner);
    dummy.init(0);
    sim.set_body([&](SimProc& h, int pid) {
      lk->lock(h, pid);
      // p0 holds the lock across many *scheduled* shared ops, so p1 stays
      // blocked for the whole probe window.
      if (pid == 0) {
        for (int i = 0; i < 100000; ++i) (void)dummy.load(h.ctx);
      }
      lk->unlock(h, pid);
    });
    std::vector<int> script;
    for (int i = 0; i < 10; ++i) script.push_back(0);   // p0 acquires
    for (int i = 0; i < 500; ++i) script.push_back(1);  // p1 blocks+spins
    sim::Scripted pol(script);
    sim::NoCrash nc;
    auto res = sim.run(pol, nc, {1, 1}, 520);  // cut off while p1 spins
    (void)res;
    return Probe{sim.world().counters(1).steps, sim.world().counters(1).rmrs};
  };

  // MCS: local spin on both models.
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    auto p = blocked_probe(kind, [](SimRun& s) {
      return std::make_unique<baselines::McsLock<P>>(s.world().env, 2);
    });
    ASSERT_GT(p.steps, 300u);
    EXPECT_LE(p.rmrs, 12u) << "MCS " << (kind == ModelKind::kCc ? "CC" : "DSM");
  }
  // TAS: remote spin on both models (every exchange is remote).
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    auto p = blocked_probe(kind, [](SimRun& s) {
      return std::make_unique<baselines::TasLock<P>>(s.world().env);
    });
    ASSERT_GT(p.steps, 300u);
    EXPECT_GT(p.rmrs, 250u) << "TAS " << (kind == ModelKind::kCc ? "CC" : "DSM");
  }
  // CLH: local on CC (cache hit after first read), remote on DSM.
  {
    auto cc = blocked_probe(ModelKind::kCc, [](SimRun& s) {
      return std::make_unique<baselines::ClhLock<P>>(s.world().env, 2);
    });
    EXPECT_LE(cc.rmrs, 12u);
    auto dsm = blocked_probe(ModelKind::kDsm, [](SimRun& s) {
      return std::make_unique<baselines::ClhLock<P>>(s.world().env, 2);
    });
    EXPECT_GT(dsm.rmrs, 250u);  // the CC/DSM separation
  }
}

}  // namespace

// Tests for the deterministic simulator substrate: scheduler policies,
// crash plans, SimRun driver semantics, determinism and deadlock
// detection. Everything else in the suite builds on these guarantees.
#include <gtest/gtest.h>

#include "harness/sim_run.hpp"
#include "harness/world.hpp"
#include "sim/crash_plan.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace rme;
using harness::CountedWorld;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;

// A tiny body: a few shared ops on a per-run scratch cell.
class CounterBody {
 public:
  explicit CounterBody(CountedWorld& w) {
    cell_.attach(w.env, rmr::kNoOwner);
    cell_.init(0);
  }
  void operator()(SimProc& h, int) {
    const int v = cell_.load(h.ctx);
    cell_.store(h.ctx, v + 1);
  }
  int value(SimProc& h) { return cell_.load(h.ctx); }

 private:
  platform::Counted::Atomic<int> cell_;
};

TEST(Scheduler, RoundRobinCyclesFairly) {
  sim::RoundRobin rr;
  std::vector<int> runnable = {0, 1, 2};
  EXPECT_EQ(rr.pick(runnable), 0);
  EXPECT_EQ(rr.pick(runnable), 1);
  EXPECT_EQ(rr.pick(runnable), 2);
  EXPECT_EQ(rr.pick(runnable), 0);  // wraps
}

TEST(Scheduler, RoundRobinSkipsDeadPids) {
  sim::RoundRobin rr;
  std::vector<int> runnable = {1, 3};
  EXPECT_EQ(rr.pick(runnable), 1);
  EXPECT_EQ(rr.pick(runnable), 3);
  EXPECT_EQ(rr.pick(runnable), 1);
}

TEST(Scheduler, SeededRandomIsDeterministic) {
  std::vector<int> runnable = {0, 1, 2, 3};
  sim::SeededRandom a(42), b(42), c(43);
  std::vector<int> seq_a, seq_b, seq_c;
  for (int i = 0; i < 64; ++i) {
    seq_a.push_back(a.pick(runnable));
    seq_b.push_back(b.pick(runnable));
    seq_c.push_back(c.pick(runnable));
  }
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_NE(seq_a, seq_c);  // different seed, different schedule (w.h.p.)
}

TEST(Scheduler, ScriptedFollowsScriptThenFallsBack) {
  sim::Scripted s({2, 2, 0});
  std::vector<int> runnable = {0, 1, 2};
  EXPECT_EQ(s.pick(runnable), 2);
  EXPECT_EQ(s.pick(runnable), 2);
  EXPECT_EQ(s.pick(runnable), 0);
  EXPECT_TRUE(s.script_exhausted());
  // Fallback is round-robin over runnable.
  const int nxt = s.pick(runnable);
  EXPECT_TRUE(nxt >= 0 && nxt <= 2);
}

TEST(Scheduler, ScriptedSkipsNonRunnableEntries) {
  sim::Scripted s({7, 1});
  std::vector<int> runnable = {0, 1};
  EXPECT_EQ(s.pick(runnable), 1);  // 7 not runnable, skipped
}

TEST(CrashPlan, CrashAtStepsFiresExactlyAtRequestedSteps) {
  sim::CrashAtSteps plan(0, {3, 5});
  int fired = 0;
  for (uint64_t s = 0; s < 10; ++s) {
    if (plan.should_crash(0, s, rmr::Op::kRead)) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(plan.should_crash(1, 3, rmr::Op::kRead));  // other pid unaffected
}

TEST(CrashPlan, RandomCrashRespectsBudget) {
  sim::RandomCrash plan(1.0, 7, 5);  // p=1: crash every time, budget 5
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    if (plan.should_crash(0, static_cast<uint64_t>(i), rmr::Op::kRead)) ++fired;
  }
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(plan.crashes(), 5u);
}

TEST(SimRun, AllProcessesCompleteTheirIterations) {
  SimRun sim(ModelKind::kCc, 3);
  CounterBody body(sim.world());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {5, 5, 5}, 100000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(res.completions, (std::vector<uint64_t>{5, 5, 5}));
  // The increment is deliberately non-atomic (load, yield, store): the
  // scheduler interleaves processes between the two ops, so updates may be
  // lost - evidence the simulator really does interleave at op granularity.
  const int v = body.value(sim.world().proc(0));
  EXPECT_GE(v, 5);
  EXPECT_LE(v, 15);
}

TEST(SimRun, DeterministicAcrossIdenticalRuns) {
  auto run_once = [](uint64_t seed) {
    SimRun sim(ModelKind::kCc, 4);
    CounterBody body(sim.world());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    sim::SeededRandom pol(seed);
    sim::NoCrash nc;
    auto res = sim.run(pol, nc, {10, 10, 10, 10}, 100000);
    return res.steps;
  };
  EXPECT_EQ(run_once(123), run_once(123));
  EXPECT_EQ(run_once(9), run_once(9));
}

TEST(SimRun, CrashStepUnwindsAndReentersBody) {
  SimRun sim(ModelKind::kCc, 1);
  int attempts = 0;
  CounterBody body(sim.world());
  sim.set_body([&](SimProc& h, int pid) {
    ++attempts;
    body(h, pid);
  });
  sim::RoundRobin rr;
  sim::CrashAtSteps plan(0, {1});  // crash at the 2nd shared op ever
  auto res = sim.run(rr, plan, {3}, 100000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(res.completions[0], 3u);
  EXPECT_EQ(res.crashes[0], 1u);
  EXPECT_EQ(attempts, 4);  // 3 completions + 1 crashed attempt
}

TEST(SimRun, CcCacheIsWipedByCrash) {
  SimRun sim(ModelKind::kCc, 1);
  // Body: read the same cell twice. Without a crash the second read is a
  // cache hit; a crash between them forces a re-read RMR.
  platform::Counted::Atomic<int> cell;
  cell.attach(sim.world().env, rmr::kNoOwner);
  cell.init(7);
  sim.set_body([&](SimProc& h, int) {
    (void)cell.load(h.ctx);
    (void)cell.load(h.ctx);
  });
  sim::RoundRobin rr;
  {
    sim::NoCrash nc;
    auto res = sim.run(rr, nc, {1}, 1000);
    EXPECT_FALSE(res.exhausted);
  }
  const uint64_t rmrs_clean = sim.world().counters(0).rmrs;
  EXPECT_EQ(rmrs_clean, 1u);  // first read remote, second cached

  SimRun sim2(ModelKind::kCc, 1);
  platform::Counted::Atomic<int> cell2;
  cell2.attach(sim2.world().env, rmr::kNoOwner);
  cell2.init(7);
  sim2.set_body([&](SimProc& h, int) {
    (void)cell2.load(h.ctx);
    (void)cell2.load(h.ctx);
  });
  sim::CrashAtSteps plan(0, {1});  // crash before the 2nd read
  auto res = sim2.run(rr, plan, {1}, 1000);
  EXPECT_FALSE(res.exhausted);
  // Attempt 1: read(remote), crash; attempt 2: read(remote again - cache
  // was wiped), read(hit). Total 2 RMRs.
  EXPECT_EQ(sim2.world().counters(0).rmrs, 2u);
}

TEST(SimRun, ExhaustionDetectedOnDeadlock) {
  SimRun sim(ModelKind::kCc, 1);
  platform::Counted::Atomic<int> never;
  never.attach(sim.world().env, rmr::kNoOwner);
  never.init(0);
  sim.set_body([&](SimProc& h, int) {
    while (never.load(h.ctx) == 0) {
    }  // spins forever
  });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {1}, 2000);
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.steps, 2000u);
}

TEST(SimRun, ZeroIterationProcessesDoNotRun) {
  SimRun sim(ModelKind::kCc, 2);
  CounterBody body(sim.world());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  auto res = sim.run(rr, nc, {4, 0}, 10000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(res.completions[0], 4u);
  EXPECT_EQ(res.completions[1], 0u);
  EXPECT_EQ(sim.world().counters(1).steps, 0u);
}

TEST(RmrModel, DsmChargesByPartition) {
  rmr::DsmModel m(2);
  const auto mine = m.register_cell(0);
  const auto theirs = m.register_cell(1);
  const auto global = m.register_cell(rmr::kNoOwner);
  EXPECT_FALSE(m.charge(0, mine, rmr::Op::kRead));
  EXPECT_TRUE(m.charge(0, theirs, rmr::Op::kRead));
  EXPECT_TRUE(m.charge(0, global, rmr::Op::kRead));
  EXPECT_FALSE(m.charge(0, mine, rmr::Op::kFas));  // local RMW is local
  EXPECT_TRUE(m.charge(1, mine, rmr::Op::kWrite));
}

TEST(RmrModel, CcReadCachesAndWritesInvalidate) {
  rmr::CcModel m(2);
  const auto c = m.register_cell(rmr::kNoOwner);
  EXPECT_TRUE(m.charge(0, c, rmr::Op::kRead));    // cold miss
  EXPECT_FALSE(m.charge(0, c, rmr::Op::kRead));   // hit
  EXPECT_TRUE(m.charge(1, c, rmr::Op::kWrite));   // write: remote, invalidates
  EXPECT_TRUE(m.charge(0, c, rmr::Op::kRead));    // miss again
  EXPECT_FALSE(m.charge(1, c, rmr::Op::kRead));   // writer kept its copy
}

TEST(RmrModel, CcCrashWipesCache) {
  rmr::CcModel m(1);
  const auto c = m.register_cell(rmr::kNoOwner);
  EXPECT_TRUE(m.charge(0, c, rmr::Op::kRead));
  EXPECT_FALSE(m.charge(0, c, rmr::Op::kRead));
  m.on_crash(0);
  EXPECT_TRUE(m.charge(0, c, rmr::Op::kRead));
}

TEST(RmrModel, CcPeakCacheWordsTracksWorkingSet) {
  rmr::CcModel m(1);
  std::vector<rmr::CellId> cells;
  for (int i = 0; i < 5; ++i) cells.push_back(m.register_cell(rmr::kNoOwner));
  for (auto c : cells) m.charge(0, c, rmr::Op::kRead);
  EXPECT_EQ(m.peak_cache_words(0), 5u);
  m.flush_cache(0);
  EXPECT_EQ(m.peak_cache_words(0), 0u);
}

}  // namespace

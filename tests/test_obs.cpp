// rme::obs coverage: the seqlock write/read protocol under a hammering
// writer, histogram bucketing edges, adoption across incarnations
// (including a writer that "dies" inside a seqlock section), the
// snapshot merge, both renderers' schemas, and the end-to-end feed from
// svc sessions into a live region's MetricsArena. Cross-process adoption
// under real SIGKILL is exercised by the cts soak (MetricsAudit); here
// the takeover path is rehearsed in-process the way test_shm_world.cpp
// rehearses the registry protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "api/api.hpp"
#include "harness/fork_scenario.hpp"
#include "obs/obs.hpp"
#include "shm/shm.hpp"
#include "svc/svc.hpp"

namespace {

using rme::obs::Hist;
using rme::obs::MetricsArena;
using rme::obs::PidRow;
using rme::obs::RowSample;
using rme::obs::Snapshot;
using rme::platform::Real;
using rme::shm::ShmWorld;
using Table = rme::api::TableLock<Real>;
using Fixture = rme::harness::ShmKillFixture<Table>;

std::string unique_name(const char* tag) {
  static std::atomic<int> counter{0};
  return std::string("/rme_obs_") + tag + "_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter.fetch_add(1));
}

TEST(ObsHist, BucketOfEdges) {
  EXPECT_EQ(Hist::bucket_of(0), 0u);
  EXPECT_EQ(Hist::bucket_of(1), 0u);
  EXPECT_EQ(Hist::bucket_of(2), 1u);
  EXPECT_EQ(Hist::bucket_of(3), 1u);
  EXPECT_EQ(Hist::bucket_of(4), 2u);
  EXPECT_EQ(Hist::bucket_of(1023), 9u);
  EXPECT_EQ(Hist::bucket_of(1024), 10u);
  // The open tail: everything at/past 2^31 ns lands in bucket 31.
  EXPECT_EQ(Hist::bucket_of(uint64_t{1} << 31), 31u);
  EXPECT_EQ(Hist::bucket_of(~uint64_t{0}), 31u);
  // Floors invert bucket_of at every bucket edge.
  for (uint32_t b = 1; b < Hist::kBuckets; ++b) {
    EXPECT_EQ(Hist::bucket_of(Hist::bucket_floor_ns(b)), b);
    EXPECT_EQ(Hist::bucket_of(Hist::bucket_floor_ns(b) - 1), b - 1);
  }
}

// The torn-read hammer: one writer storms a row with the real update
// verbs while a reader takes 10k seqlock samples. Every sample must be
// internally consistent - the acquire histogram's mass equals the
// acquires counter (they are written in ONE seqlock section), and every
// counter is monotone sample-to-sample.
TEST(ObsSeqlock, HammeredReaderNeverSeesATornRow) {
  auto row = std::make_unique<PidRow>();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t n = 0;
    uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      row->on_acquire((n & 1) != 0, n % 5000, static_cast<int>(n % 7));
      row->on_release(n % 2);
      row->on_wake(n % 300);
      ++n;
      // Breathe between bursts so even-generation windows exist at all -
      // a zero-gap writer would model a writer that never leaves its
      // section, which the single-writer discipline already forbids.
      for (int spin = 0; spin < 400; ++spin) sink += spin;
    }
    (void)sink;
  });
  // Don't start sampling until the writer is demonstrably writing -
  // 10k samples of an idle row would prove nothing.
  while (row->counter[rme::obs::kAcquires].load(std::memory_order_relaxed) ==
         0) {
    std::this_thread::yield();
  }
  RowSample prev;
  int sampled = 0;
  for (int i = 0; i < 10000; ++i) {
    RowSample s;
    bool ok = false;
    for (int tries = 0; tries < 1000 && !ok; ++tries) {
      ok = rme::obs::sample_row(*row, s, /*max_retries=*/1000);
      // A writer descheduled INSIDE a section shows as torn until it
      // resumes; yield the core back instead of burning the budget.
      if (!ok) std::this_thread::yield();
    }
    if (!ok) break;  // verdict (with the writer joined) below
    EXPECT_FALSE(s.torn);
    // One-section invariant: histogram mass == acquires, exactly.
    EXPECT_EQ(s.acquire_wait_count(), s.counter[rme::obs::kAcquires]);
    EXPECT_LE(s.counter[rme::obs::kContended],
              s.counter[rme::obs::kAcquires]);
    EXPECT_LE(s.counter[rme::obs::kHandoffRmrs],
              s.counter[rme::obs::kReleases]);
    for (uint32_t c = 0; c < rme::obs::kCounterCount; ++c) {
      EXPECT_GE(s.counter[c], prev.counter[c]) << "counter " << c;
    }
    prev = s;
    ++sampled;
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(sampled, 10000) << "a live writer starved the seqlock reader";
  EXPECT_GT(prev.counter[rme::obs::kAcquires], 0u);
}

TEST(ObsSeqlock, WriterDeadMidSectionReadsTornThenAdoptRepairs) {
  PidRow row{};
  row.on_acquire(false, 10);
  // The writer "dies" inside a section: generation left odd.
  row.begin_write();
  RowSample s;
  EXPECT_FALSE(rme::obs::sample_row(row, s, /*max_retries=*/50));
  EXPECT_TRUE(s.torn);
  // Adoption (the next incarnation's claim) repairs the generation and
  // RESETS NOTHING: the half-told story stays on the record.
  row.adopt();
  ASSERT_TRUE(rme::obs::sample_row(row, s, /*max_retries=*/50));
  EXPECT_FALSE(s.torn);
  EXPECT_EQ(s.counter[rme::obs::kAcquires], 1u);
  EXPECT_EQ(s.incarnations, 1u);
  row.adopt();
  ASSERT_TRUE(rme::obs::sample_row(row, s, /*max_retries=*/50));
  EXPECT_EQ(s.incarnations, 2u);
  EXPECT_EQ(s.counter[rme::obs::kAcquires], 1u);  // adopted, not reset
}

TEST(ObsSnapshot, MergesRowsAndCountsTornOnes) {
  auto arena = std::make_unique<MetricsArena>();
  arena->rows[0].on_acquire(true, 100, 2);
  arena->rows[0].on_release(1);
  arena->rows[1].on_acquire(false, (uint64_t{1} << 31) + 5, 2);  // tail
  arena->rows[1].adopt();
  arena->rows[2].begin_write();  // dead writer: row 2 reads torn

  const Snapshot s = Snapshot::read(*arena, 4);
  EXPECT_EQ(s.pids, 4);
  EXPECT_EQ(s.torn_rows, 1);
  EXPECT_EQ(s.total[rme::obs::kAcquires], 2u);
  EXPECT_EQ(s.total[rme::obs::kContended], 1u);
  EXPECT_EQ(s.total[rme::obs::kReleases], 1u);
  EXPECT_EQ(s.total[rme::obs::kHandoffRmrs], 1u);
  EXPECT_EQ(s.incarnations, 1u);
  EXPECT_EQ(s.shard_heat[2], 2u);
  EXPECT_EQ(s.acquire_wait_count(), 2u);
  // Row 1's giant wait sits in the final (open-tail) bucket.
  EXPECT_EQ(s.acquire_wait[Hist::kBuckets - 1], 1u);
  EXPECT_EQ(s.wake_tail(Hist::kBuckets - 1), 0u);
  // Out-of-range pids clamp instead of reading past the arena.
  EXPECT_EQ(Snapshot::read(*arena, 1000).pids, MetricsArena::kRows);
  EXPECT_EQ(Snapshot::read(*arena, -3).pids, 0);
}

TEST(ObsRender, MetricsJsonLineSchema) {
  auto arena = std::make_unique<MetricsArena>();
  arena->rows[0].on_acquire(false, 5, 0);
  const Snapshot s = Snapshot::read(*arena, 2);
  const std::string line = rme::obs::metrics_json_line(s, "/rme_demo");
  EXPECT_EQ(line.rfind("METRICS_JSON {", 0), 0u);
  for (const char* key :
       {"\"region\": ", "\"pids\": ", "\"incarnations\": ", "\"acquires\": ",
        "\"releases\": ", "\"contended\": ", "\"sheds\": ", "\"timeouts\": ",
        "\"crash_recoveries\": ", "\"handoff_rmrs\": ",
        "\"acquire_wait_count\": ", "\"wake_count\": ", "\"wake_tail\": ",
        "\"acquire_wait_buckets\": [", "\"wake_buckets\": [",
        "\"torn_rows\": "}) {
    EXPECT_NE(line.find(key), std::string::npos) << key << " missing";
  }
  EXPECT_NE(line.find("\"acquires\": 1"), std::string::npos);
}

TEST(ObsRender, PrometheusTextShape) {
  auto arena = std::make_unique<MetricsArena>();
  arena->rows[0].on_acquire(true, 100, 3);
  const Snapshot s = Snapshot::read(*arena, 1);
  const std::string text = rme::obs::prometheus_text(s, "/rme_demo");
  EXPECT_NE(text.find("# TYPE rme_acquires_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rme_acquires_total{region=\"/rme_demo\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rme_shard_acquires_total{region=\"/rme_demo\","
                      "shard=\"3\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rme_acquire_wait_ns_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("rme_acquire_wait_ns_count{region=\"/rme_demo\"} 1"),
            std::string::npos);
}

// End-to-end feed: svc sessions over a region-resident table book their
// verbs into the region's MetricsArena, and the arena agrees with the
// per-session telemetry.
TEST(ObsWorld, SessionVerbsFeedTheRegionArena) {
  auto world = ShmWorld::create(unique_name("feed"), 16 << 20, 4);
  Fixture& fx = world.create_root<Fixture>(world.env, /*shards=*/4,
                                           /*ports_per_shard=*/2,
                                           /*npids=*/4);
  constexpr int kIters = 100;
  constexpr uint64_t kKey = 7;
  {
    rme::shm::SessionLease<Table> lease(world, fx.table, 0);
    for (int i = 0; i < kIters; ++i) {
      auto g = lease->acquire(kKey).value();
    }
    const auto& st = lease->stats();
    RowSample s;
    ASSERT_TRUE(rme::obs::sample_row(world.metrics().rows[0], s));
    EXPECT_EQ(s.counter[rme::obs::kAcquires], st.acquires);
    EXPECT_EQ(s.counter[rme::obs::kReleases], st.releases);
    EXPECT_EQ(s.counter[rme::obs::kHandoffRmrs], st.handoff_rmrs);
    EXPECT_EQ(s.counter[rme::obs::kAcquires],
              static_cast<uint64_t>(kIters));
    // One seqlock section per acquire: the histogram carries every one.
    EXPECT_EQ(s.acquire_wait_count(), static_cast<uint64_t>(kIters));
    // Keyed verbs heat the shard their key maps to, and only it.
    const int shard = fx.table.shard_for_key(kKey);
    for (int h = 0; h < PidRow::kHeatShards; ++h) {
      EXPECT_EQ(s.shard_heat[h],
                h == (shard % PidRow::kHeatShards)
                    ? static_cast<uint64_t>(kIters)
                    : 0u);
    }
    EXPECT_EQ(s.incarnations, 1u);
  }
  // A second incarnation ADOPTS the row: counters keep accumulating.
  {
    rme::shm::SessionLease<Table> lease(world, fx.table, 0);
    auto g = lease->acquire(kKey).value();
    g.release();
    RowSample s;
    ASSERT_TRUE(rme::obs::sample_row(world.metrics().rows[0], s));
    EXPECT_EQ(s.incarnations, 2u);
    EXPECT_EQ(s.counter[rme::obs::kAcquires],
              static_cast<uint64_t>(kIters) + 1);
  }
}

TEST(ObsWorld, AdoptionSurvivesForgedTakeover) {
  // In-process rehearsal of SIGKILL + takeover (the registry idiom of
  // test_shm_world.cpp): an incarnation books telemetry and "dies"
  // holding the slot - mid-seqlock-section, the nastiest spot - and the
  // successor's takeover must adopt the row: generation repaired,
  // counters preserved, incarnation column bumped.
  auto world = ShmWorld::create(unique_name("adopt"), 16 << 20, 4);
  Fixture& fx = world.create_root<Fixture>(world.env, 4, 2, 4);
  {
    auto id = world.claim(2);
    auto& h = world.proc(2);
    fx.table.acquire(h, 2, /*key=*/9);  // die holding the shard
    world.metrics().rows[2].bump(rme::obs::kAcquires);  // via ctx feed irl
    world.metrics().rows[2].begin_write();  // SIGKILL inside a section
    world.region().header()->slots[2].os_pid.store(
        0x7ffffff0, std::memory_order_release);
    (void)id;
  }
  // The row is torn until someone takes the slot over...
  RowSample s;
  EXPECT_FALSE(rme::obs::sample_row(world.metrics().rows[2], s, 50));
  // ...and the SessionLease takeover (which replays recovery) adopts it.
  rme::shm::SessionLease<Table> lease(world, fx.table, 2);
  EXPECT_TRUE(lease.restarted());
  ASSERT_TRUE(rme::obs::sample_row(world.metrics().rows[2], s, 1000));
  EXPECT_FALSE(s.torn);
  EXPECT_EQ(s.counter[rme::obs::kAcquires], 1u);  // preserved, not reset
  EXPECT_EQ(s.incarnations, 2u);  // claim + takeover
  // The recovered identity keeps feeding the SAME row.
  auto g = lease->acquire(9).value();
  g.release();
  ASSERT_TRUE(rme::obs::sample_row(world.metrics().rows[2], s));
  EXPECT_EQ(s.counter[rme::obs::kAcquires], 2u);
}

}  // namespace

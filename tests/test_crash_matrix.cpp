// Crash matrix: every combination of two processes crashing around their
// FAS instructions (the queue-breaking crash shapes of Section 3.1), in
// every before/after combination, across several schedules. This is the
// pairwise closure of the scenarios Figure 5 illustrates: fragments
// created by both "crashed at Line 13" and "crashed at Line 14"
// processes must be repaired no matter how the two recoveries and the
// live traffic interleave.
#include <gtest/gtest.h>

#include <memory>

#include "core/rme_lock.hpp"
#include "harness/sim_run.hpp"
#include "harness/world.hpp"

namespace {

using namespace rme;
using harness::LockBody;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;
using Lock = core::RmeLock<P>;
using When = sim::CrashAroundFas::When;

struct MatrixParam {
  When first;
  When second;
  int nth_a;  // which FAS of process A
  int nth_b;  // which FAS of process B
  uint64_t seed;
};

class CrashMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(CrashMatrix, PairwiseFasCrashesRepair) {
  const auto [wa, wb, na, nb, seed] = GetParam();
  constexpr int k = 4;
  SimRun sim(ModelKind::kCc, k);
  Lock lk(sim.world().env, k);
  LockBody<Lock> body(lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });

  struct Pair final : sim::CrashPlan {
    sim::CrashAroundFas a, b;
    Pair(When wa, When wb, int na, int nb)
        : a(0, na, wa), b(1, nb, wb) {}
    bool should_crash(int pid, uint64_t step, rmr::Op op) override {
      return a.should_crash(pid, step, op) || b.should_crash(pid, step, op);
    }
  } plan(wa, wb, na, nb);

  sim::SeededRandom pol(seed);
  std::vector<uint64_t> iters(k, 5);
  auto res = sim.run(pol, plan, iters, 40000000);
  ASSERT_FALSE(res.exhausted);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
  EXPECT_EQ(sim.checker().csr_violations(), 0u);
  for (int pid = 0; pid < k; ++pid) {
    EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 5u) << pid;
  }
  // Both crashed processes went through recovery.
  EXPECT_GE(res.crashes[0], 1u);
  EXPECT_GE(res.crashes[1], 1u);
}

std::vector<MatrixParam> matrix() {
  std::vector<MatrixParam> out;
  for (When wa : {When::kBefore, When::kAfter}) {
    for (When wb : {When::kBefore, When::kAfter}) {
      for (int na : {1, 2}) {
        for (int nb : {1, 3}) {
          for (uint64_t seed : {11u, 12u, 13u}) {
            out.push_back({wa, wb, na, nb, seed});
          }
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, CrashMatrix, ::testing::ValuesIn(matrix()),
    [](const auto& info) {
      const auto& p = info.param;
      std::string s;
      s += p.first == When::kBefore ? "B" : "A";
      s += p.second == When::kBefore ? "B" : "A";
      s += "_f" + std::to_string(p.nth_a) + std::to_string(p.nth_b);
      s += "_s" + std::to_string(p.seed);
      return s;
    });

// Three simultaneous FAS-crashers (half the ports) - beyond pairwise.
TEST(CrashMatrix, ThreeSimultaneousFasCrashes) {
  constexpr int k = 6;
  for (uint64_t seed = 50; seed < 56; ++seed) {
    SimRun sim(ModelKind::kCc, k);
    Lock lk(sim.world().env, k);
    LockBody<Lock> body(lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    struct Trio final : sim::CrashPlan {
      sim::CrashAroundFas a{0, 1, When::kAfter};
      sim::CrashAroundFas b{2, 1, When::kBefore};
      sim::CrashAroundFas c{4, 1, When::kAfter};
      bool should_crash(int pid, uint64_t step, rmr::Op op) override {
        return a.should_crash(pid, step, op) ||
               b.should_crash(pid, step, op) ||
               c.should_crash(pid, step, op);
      }
    } plan;
    sim::SeededRandom pol(seed);
    std::vector<uint64_t> iters(k, 4);
    auto res = sim.run(pol, plan, iters, 40000000);
    EXPECT_FALSE(res.exhausted) << "seed " << seed;
    EXPECT_EQ(sim.checker().me_violations(), 0u) << "seed " << seed;
    EXPECT_EQ(lk.total_stats().repairs, 3u) << "seed " << seed;
  }
}

}  // namespace

// Crash matrix: every combination of two processes crashing around their
// FAS instructions (the queue-breaking crash shapes of Section 3.1), in
// every before/after combination, across several schedules - the
// pairwise closure of the scenarios Figure 5 illustrates.
//
// The matrix is generated twice: once against the bare k-ported RmeLock
// (a FAS is the queue FAS or the repair FAS) and once against the
// RecoverableMutexFacade, whose port-leasing layer adds its own FAS
// instructions (pool claim and deposit) - so the same (nth, when) specs
// land on lease-layer crash points too: crashes between the pool claim
// and the lease write, at the deposit, and inside the lock proper, all
// interleaved with live traffic.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/port_lease.hpp"
#include "core/rme_lock.hpp"
#include "harness/scenario.hpp"

namespace {

using namespace rme;
using harness::ExclusionAudit;
using harness::FasCrashSpec;
using harness::LockFixture;
using harness::ModelKind;
using harness::Scenario;
using C = platform::Counted;
using Lock = core::RmeLock<C>;
using Facade = core::RecoverableMutexFacade<C>;
using When = sim::CrashAroundFas::When;

enum class LockKind { kFlat, kFacade };

struct MatrixParam {
  LockKind lock;
  When first;
  When second;
  int nth_a;  // which FAS of process A
  int nth_b;  // which FAS of process B
  uint64_t seed;
};

class CrashMatrix : public ::testing::TestWithParam<MatrixParam> {};

// Shared driver: build the scenario for `kind`, inject the pair of FAS
// crashes, require full completion plus clean ME/CSR audits.
void run_pairwise(LockKind kind, When wa, When wb, int na, int nb,
                  uint64_t seed) {
  constexpr int k = 4;
  Scenario<C> s(ModelKind::kCc, k);
  if (kind == LockKind::kFlat) {
    s.add_component<LockFixture<C, Lock>>([=](harness::World<C>& w) {
      return std::make_unique<Lock>(w.env, k);
    });
  } else {
    s.add_component<LockFixture<C, Facade>>([=](harness::World<C>& w) {
      return std::make_unique<Facade>(w.env, k, k);
    });
  }
  auto* chk = s.audits().emplace<ExclusionAudit>();
  s.add_component<harness::FasCrashComponent<C>>(
      std::vector<FasCrashSpec>{{0, na, wa}, {1, nb, wb}});
  s.use_random_schedule(seed);
  s.set_iterations(5);
  auto res = s.run();
  ASSERT_FALSE(res.exhausted);
  EXPECT_EQ(chk->me_violations(), 0u);
  EXPECT_EQ(chk->csr_violations(), 0u);
  for (int pid = 0; pid < k; ++pid) {
    EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 5u) << pid;
  }
  // Both crashed processes went through recovery.
  EXPECT_GE(res.crashes[0], 1u);
  EXPECT_GE(res.crashes[1], 1u);
}

TEST_P(CrashMatrix, PairwiseFasCrashesRepair) {
  const auto [kind, wa, wb, na, nb, seed] = GetParam();
  run_pairwise(kind, wa, wb, na, nb, seed);
}

std::vector<MatrixParam> matrix() {
  std::vector<MatrixParam> out;
  for (LockKind kind : {LockKind::kFlat, LockKind::kFacade}) {
    for (When wa : {When::kBefore, When::kAfter}) {
      for (When wb : {When::kBefore, When::kAfter}) {
        for (int na : {1, 2}) {
          for (int nb : {1, 3}) {
            for (uint64_t seed : {11u, 12u, 13u}) {
              out.push_back({kind, wa, wb, na, nb, seed});
            }
          }
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, CrashMatrix, ::testing::ValuesIn(matrix()),
    [](const auto& info) {
      const auto& p = info.param;
      std::string s = p.lock == LockKind::kFlat ? "Flat_" : "Facade_";
      s += p.first == When::kBefore ? "B" : "A";
      s += p.second == When::kBefore ? "B" : "A";
      s += "_f" + std::to_string(p.nth_a) + std::to_string(p.nth_b);
      s += "_s" + std::to_string(p.seed);
      return s;
    });

// Three simultaneous FAS-crashers (half the ports) - beyond pairwise.
TEST(CrashMatrix, ThreeSimultaneousFasCrashes) {
  constexpr int k = 6;
  for (uint64_t seed = 50; seed < 56; ++seed) {
    Scenario<C> s(ModelKind::kCc, k);
    auto* fix = s.add_component<LockFixture<C, Lock>>(
        [=](harness::World<C>& w) { return std::make_unique<Lock>(w.env, k); });
    auto* chk = s.audits().emplace<ExclusionAudit>();
    s.add_component<harness::FasCrashComponent<C>>(std::vector<FasCrashSpec>{
        {0, 1, When::kAfter}, {2, 1, When::kBefore}, {4, 1, When::kAfter}});
    s.use_random_schedule(seed);
    s.set_iterations(4);
    auto res = s.run();
    EXPECT_TRUE(res.ok()) << "seed " << seed << ": " << res.summary();
    EXPECT_EQ(chk->me_violations(), 0u) << "seed " << seed;
    EXPECT_EQ(fix->lock().total_stats().repairs, 3u) << "seed " << seed;
  }
}

// Facade flavour of the same shape: three pids crash around FAS
// instructions that now include the lease pool's claim and deposit, with
// fewer ports than pids so the pool is contended throughout.
TEST(CrashMatrix, ThreeSimultaneousCrashersThroughTheFacade) {
  constexpr int k = 6;
  constexpr int kPorts = 4;
  for (uint64_t seed = 60; seed < 66; ++seed) {
    Scenario<C> s(ModelKind::kCc, k);
    auto* fix = s.add_component<LockFixture<C, Facade>>(
        [=](harness::World<C>& w) {
          return std::make_unique<Facade>(w.env, kPorts, k);
        });
    auto* chk = s.audits().emplace<ExclusionAudit>();
    s.add_component<harness::FasCrashComponent<C>>(std::vector<FasCrashSpec>{
        {0, 1, When::kAfter}, {2, 2, When::kBefore}, {4, 2, When::kAfter}});
    s.use_random_schedule(seed);
    s.set_iterations(4);
    s.set_max_steps(80000000);
    auto res = s.run();
    EXPECT_TRUE(res.ok()) << "seed " << seed << ": " << res.summary();
    EXPECT_EQ(chk->me_violations(), 0u) << "seed " << seed;
    EXPECT_EQ(chk->csr_violations(), 0u) << "seed " << seed;
    for (int pid = 0; pid < k; ++pid) {
      EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 4u)
          << "seed " << seed << " pid " << pid;
    }
    // Quiescent accounting: held leases are all returned; anything a
    // crash leaked is recoverable, never duplicated.
    auto& ctx = s.world().proc(0).ctx;
    auto& lease = fix->lock().lease();
    const int free_now = lease.free_ports(ctx);
    EXPECT_LE(free_now, kPorts);
    const int scavenged = lease.scavenge(ctx);
    EXPECT_EQ(free_now + scavenged, kPorts) << "seed " << seed;
  }
}

}  // namespace

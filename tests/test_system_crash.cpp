// System-wide crash scenarios.
//
// The paper's model is individual-process crashes; Golab & Hendler's
// PODC'18 paper (reference [6]) studies the system-wide variant where all
// processes crash simultaneously. An algorithm for the individual model
// handles the system-wide one as a special case - these tests confirm
// that our implementation actually does: all processes crash at (nearly)
// the same instant, all recover concurrently, and the lock must sort out
// a queue where *every* fragment may be broken at once.
#include <gtest/gtest.h>

#include <memory>

#include "core/arbitration_tree.hpp"
#include "core/rme_lock.hpp"
#include "harness/sim_run.hpp"
#include "harness/world.hpp"

namespace {

using namespace rme;
using harness::LockBody;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;
using Lock = core::RmeLock<P>;

// Crash every process at its own step `at[pid]` - with equal values this
// is "everyone dies in the same window" (exact simultaneity is
// meaningless in an interleaving model; what matters is that no process
// takes a recovery step before every process has crashed, which the
// scheduler can and does produce for these offsets).
class MassCrash final : public sim::CrashPlan {
 public:
  explicit MassCrash(std::vector<uint64_t> at) : at_(std::move(at)) {}
  bool should_crash(int pid, uint64_t step, rmr::Op) override {
    auto& a = at_[static_cast<size_t>(pid)];
    if (a != 0 && step >= a) {
      a = 0;  // one shot per pid
      return true;
    }
    return false;
  }

 private:
  std::vector<uint64_t> at_;
};

TEST(SystemCrash, AllProcessesCrashInTheSameWindow) {
  constexpr int k = 6;
  for (uint64_t offset : {3u, 7u, 11u, 15u, 23u}) {
    SimRun sim(ModelKind::kCc, k);
    Lock lk(sim.world().env, k);
    LockBody<Lock> body(lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    std::vector<uint64_t> at(k, offset);  // everyone at its own step N
    MassCrash plan(at);
    sim::SeededRandom pol(offset);
    std::vector<uint64_t> iters(k, 5);
    auto res = sim.run(pol, plan, iters, 40000000);
    EXPECT_FALSE(res.exhausted) << "offset " << offset;
    EXPECT_EQ(sim.checker().me_violations(), 0u) << "offset " << offset;
    EXPECT_EQ(sim.checker().csr_violations(), 0u) << "offset " << offset;
    for (int pid = 0; pid < k; ++pid) {
      EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 5u)
          << "offset " << offset << " pid " << pid;
      EXPECT_EQ(res.crashes[static_cast<size_t>(pid)], 1u);
    }
  }
}

TEST(SystemCrash, StaggeredMassCrash) {
  constexpr int k = 8;
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    SimRun sim(ModelKind::kCc, k);
    Lock lk(sim.world().env, k);
    LockBody<Lock> body(lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    // Each pid crashes at a different point of its own execution, so the
    // queue accumulates a mix of all breakage shapes before anyone fully
    // recovers.
    std::vector<uint64_t> at;
    for (int pid = 0; pid < k; ++pid) {
      at.push_back(5 + static_cast<uint64_t>(pid) * 7 + seed);
    }
    MassCrash plan(at);
    sim::SeededRandom pol(seed * 997);
    std::vector<uint64_t> iters(k, 4);
    auto res = sim.run(pol, plan, iters, 40000000);
    EXPECT_FALSE(res.exhausted) << "seed " << seed;
    EXPECT_EQ(sim.checker().me_violations(), 0u) << "seed " << seed;
    for (int pid = 0; pid < k; ++pid) {
      EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 4u) << pid;
    }
  }
}

TEST(SystemCrash, RepeatedSystemCrashes) {
  // The whole system goes down three times during the run.
  constexpr int k = 4;
  class Repeated final : public sim::CrashPlan {
   public:
    bool should_crash(int pid, uint64_t step, rmr::Op) override {
      auto& c = count_[static_cast<size_t>(pid)];
      if (c < 3 && step >= (c + 1) * 40) {
        ++c;
        return true;
      }
      return false;
    }

   private:
    uint64_t count_[4] = {};
  };
  SimRun sim(ModelKind::kCc, k);
  Lock lk(sim.world().env, k);
  LockBody<Lock> body(lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  Repeated plan;
  sim::SeededRandom pol(42);
  std::vector<uint64_t> iters(k, 6);
  auto res = sim.run(pol, plan, iters, 40000000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
  for (int pid = 0; pid < k; ++pid) {
    EXPECT_EQ(res.crashes[static_cast<size_t>(pid)], 3u) << pid;
    EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 6u) << pid;
  }
}

TEST(SystemCrash, TreeSurvivesSystemCrash) {
  constexpr int n = 9;
  SimRun sim(ModelKind::kDsm, n);
  core::ArbitrationTree<P> tree(sim.world().env, n, {.degree = 3});
  LockBody<core::ArbitrationTree<P>> body(tree, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  std::vector<uint64_t> at(n, 25);  // everyone dies at its 25th step
  MassCrash plan(at);
  sim::SeededRandom pol(8);
  std::vector<uint64_t> iters(n, 4);
  auto res = sim.run(pol, plan, iters, 80000000);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(sim.checker().me_violations(), 0u);
  EXPECT_EQ(sim.checker().csr_violations(), 0u);
  for (int pid = 0; pid < n; ++pid) {
    EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 4u) << pid;
  }
}

}  // namespace

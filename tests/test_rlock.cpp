// TournamentRLock tests: the k-ported recoverable lock used to serialise
// queue repair (paper Figure 3, Line 24). The paper's requirements on
// RLock: k-ported, starvation-free, recoverable, O(k) RMR per passage on
// CC and DSM. All validated here, including re-execution recovery through
// partial climbs and partial releases.
#include <gtest/gtest.h>

#include <memory>

#include "harness/sim_run.hpp"
#include "harness/world.hpp"
#include "rlock/tournament.hpp"

namespace {

using namespace rme;
using harness::LockBody;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;

using RLock = rlock::TournamentRLock<platform::Counted>;

TEST(RLock, LevelsAreCeilLog2) {
  harness::CountedWorld w(ModelKind::kCc, 1);
  EXPECT_EQ(RLock(w.env, 1).levels(), 1);
  EXPECT_EQ(RLock(w.env, 2).levels(), 1);
  EXPECT_EQ(RLock(w.env, 3).levels(), 2);
  EXPECT_EQ(RLock(w.env, 4).levels(), 2);
  EXPECT_EQ(RLock(w.env, 5).levels(), 3);
  EXPECT_EQ(RLock(w.env, 8).levels(), 3);
  EXPECT_EQ(RLock(w.env, 9).levels(), 4);
  EXPECT_EQ(RLock(w.env, 16).levels(), 4);
}

class RLockSweep : public ::testing::TestWithParam<int> {};

TEST_P(RLockSweep, ExclusionAndProgressCrashFree) {
  const int k = GetParam();
  SimRun sim(ModelKind::kDsm, k);
  auto lk = std::make_unique<RLock>(sim.world().env, k);
  LockBody<RLock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::SeededRandom pol(static_cast<uint64_t>(k) * 17);
  sim::NoCrash nc;
  std::vector<uint64_t> iters(static_cast<size_t>(k), 10);
  auto res = sim.run(pol, nc, iters, 20000000);
  EXPECT_FALSE(res.exhausted) << "k=" << k;
  EXPECT_EQ(sim.checker().entries(), 10u * static_cast<uint64_t>(k));
  EXPECT_EQ(sim.checker().me_violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(K, RLockSweep, ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16));

// Crash at every step of one port's contended run.
TEST(RLock, CrashAtEveryStep) {
  constexpr int k = 4;
  uint64_t total_steps;
  {
    SimRun sim(ModelKind::kCc, k);
    auto lk = std::make_unique<RLock>(sim.world().env, k);
    LockBody<RLock> body(*lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    sim::RoundRobin rr;
    sim::NoCrash nc;
    auto res = sim.run(rr, nc, {3, 3, 3, 3}, 4000000);
    ASSERT_FALSE(res.exhausted);
    total_steps = sim.world().proc(0).ctx.step_index;
  }
  for (uint64_t s = 0; s < total_steps; s += 1) {
    SimRun sim(ModelKind::kCc, k);
    auto lk = std::make_unique<RLock>(sim.world().env, k);
    LockBody<RLock> body(*lk, sim.world(), sim.checker());
    sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
    sim::RoundRobin rr;
    sim::CrashAtSteps plan(0, {s});
    auto res = sim.run(rr, plan, {3, 3, 3, 3}, 8000000);
    EXPECT_FALSE(res.exhausted) << "crash step " << s;
    EXPECT_EQ(sim.checker().me_violations(), 0u) << "crash step " << s;
    EXPECT_EQ(sim.checker().csr_violations(), 0u) << "crash step " << s;
    EXPECT_EQ(res.completions[0], 3u) << "crash step " << s;
  }
}

// Crash storms across several ports at once.
class RLockStorm : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RLockStorm, SurvivesRandomCrashes) {
  constexpr int k = 6;
  SimRun sim(ModelKind::kDsm, k);
  auto lk = std::make_unique<RLock>(sim.world().env, k);
  LockBody<RLock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  sim::SeededRandom pol(GetParam() * 31 + 5);
  sim::RandomCrash crash(0.006, GetParam(), 50);
  std::vector<uint64_t> iters(k, 8);
  auto res = sim.run(pol, crash, iters, 30000000);
  EXPECT_FALSE(res.exhausted) << "seed " << GetParam();
  EXPECT_EQ(sim.checker().me_violations(), 0u);
  EXPECT_EQ(sim.checker().csr_violations(), 0u);
  for (int pid = 0; pid < k; ++pid) {
    EXPECT_EQ(res.completions[static_cast<size_t>(pid)], 8u) << pid;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RLockStorm, ::testing::Range<uint64_t>(0, 10));

// Passage RMR is O(log k) (within the paper's O(k) budget): for k = 16
// an uncontended passage costs at most ~c*log2(16) RMRs.
TEST(RLock, UncontendedPassageRmrLogK) {
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    SimRun sim(kind, 16);
    auto lk = std::make_unique<RLock>(sim.world().env, 16);
    sim.set_body([&](SimProc& h, int pid) {
      lk->lock(h, pid);
      lk->unlock(h, pid);
    });
    sim::RoundRobin rr;
    sim::NoCrash nc;
    std::vector<uint64_t> iters(16, 0);
    iters[0] = 10;
    auto res = sim.run(rr, nc, iters, 2000000);
    ASSERT_FALSE(res.exhausted);
    const auto& c = sim.world().counters(0);
    // 10 passages, 4 levels each; ~<= 16 RMRs per level-passage.
    EXPECT_LE(c.rmrs, 10u * 4u * 16u);
  }
}

// Recoverability shape: crash while holding some levels (mid-climb), then
// re-execute; the OWN fast paths must short-circuit and the process must
// end up holding the lock exactly once.
TEST(RLock, MidClimbCrashReexecutionIsIdempotent) {
  constexpr int k = 8;  // 3 levels
  SimRun sim(ModelKind::kCc, k);
  auto lk = std::make_unique<RLock>(sim.world().env, k);
  LockBody<RLock> body(*lk, sim.world(), sim.checker());
  sim.set_body([&](SimProc& h, int pid) { body(h, pid); });
  // Crash p0 at a spread of points covering each tournament level.
  for (uint64_t s : {2u, 5u, 9u, 13u, 17u, 21u, 26u, 31u}) {
    SimRun sim2(ModelKind::kCc, k);
    auto lk2 = std::make_unique<RLock>(sim2.world().env, k);
    LockBody<RLock> body2(*lk2, sim2.world(), sim2.checker());
    sim2.set_body([&](SimProc& h, int pid) { body2(h, pid); });
    sim::SeededRandom pol(s);
    sim::CrashAtSteps plan(0, {s});
    std::vector<uint64_t> iters(k, 4);
    auto res = sim2.run(pol, plan, iters, 20000000);
    EXPECT_FALSE(res.exhausted) << "s=" << s;
    EXPECT_EQ(sim2.checker().me_violations(), 0u) << "s=" << s;
    EXPECT_EQ(res.completions[0], 4u) << "s=" << s;
  }
}

}  // namespace

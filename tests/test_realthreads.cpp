// Real-thread stress: the Real platform (plain std::atomic, no
// instrumentation, no scheduler) under genuine hardware concurrency.
// These tests catch memory-ordering bugs the deterministic simulator
// cannot (the simulator serialises everything, so it only explores
// sequentially-consistent interleavings; here the hardware is free to
// reorder within the orders we specified).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/mcs.hpp"
#include "core/arbitration_tree.hpp"
#include "core/recoverable_mutex.hpp"
#include "core/rme_lock.hpp"
#include "harness/world.hpp"
#include "rlock/tournament.hpp"
#include "signal/signal.hpp"

namespace {

using namespace rme;
using harness::RealWorld;
using R = platform::Real;

// Canonical counter race: with a correct lock, zero lost updates.
template <class Lock>
void counter_stress(Lock& lk, RealWorld& w, int threads, int iters) {
  uint64_t counter = 0;
  std::atomic<uint64_t> in_cs{0};
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> ts;
  for (int pid = 0; pid < threads; ++pid) {
    ts.emplace_back([&, pid] {
      auto& h = w.proc(pid);
      for (int i = 0; i < iters; ++i) {
        lk.lock(h, pid);
        if (in_cs.fetch_add(1, std::memory_order_acq_rel) != 0) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        ++counter;
        in_cs.fetch_sub(1, std::memory_order_acq_rel);
        lk.unlock(h, pid);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(counter, static_cast<uint64_t>(threads) * iters);
}

TEST(RealThreads, RmeLockCounterStress) {
  constexpr int kThreads = 8;
  RealWorld w(kThreads);
  core::RmeLock<R> lk(w.env, kThreads);
  counter_stress(lk, w, kThreads, 20000);
}

TEST(RealThreads, RmeLockManyPortsFewIterations) {
  constexpr int kThreads = 16;
  RealWorld w(kThreads);
  core::RmeLock<R> lk(w.env, kThreads);
  counter_stress(lk, w, kThreads, 4000);
}

TEST(RealThreads, ArbitrationTreeCounterStress) {
  constexpr int kThreads = 12;
  RealWorld w(kThreads);
  core::ArbitrationTree<R> t(w.env, kThreads, {.degree = 3});
  counter_stress(t, w, kThreads, 10000);
}

TEST(RealThreads, RecoverableMutexFacadeStress) {
  constexpr int kThreads = 8;
  RealWorld w(kThreads);
  RecoverableMutex<R> m(w.env, kThreads);
  counter_stress(m, w, kThreads, 15000);
}

TEST(RealThreads, TournamentRLockCounterStress) {
  constexpr int kThreads = 8;
  RealWorld w(kThreads);
  rlock::TournamentRLock<R> lk(w.env, kThreads);
  counter_stress(lk, w, kThreads, 15000);
}

TEST(RealThreads, McsBaselineCounterStress) {
  constexpr int kThreads = 8;
  RealWorld w(kThreads);
  baselines::McsLock<R> lk(w.env, kThreads);
  counter_stress(lk, w, kThreads, 30000);
}

// Signal handoff chain across two real threads, many rounds: checks the
// Bit/GoAddr seq_cst handshake under hardware reordering.
TEST(RealThreads, SignalHandoffChain) {
  constexpr int kRounds = 30000;
  RealWorld w(2);
  std::vector<std::unique_ptr<signal::Signal<R>>> sigs;
  sigs.reserve(2 * kRounds);
  for (int i = 0; i < 2 * kRounds; ++i) {
    sigs.push_back(std::make_unique<signal::Signal<R>>());
    sigs.back()->attach(w.env, i % 2);
    sigs.back()->init_clear();
  }
  // Ping-pong: thread A waits on even signals and sets odd ones; thread B
  // does the reverse. Any lost wake deadlocks (test would time out).
  std::thread a([&] {
    auto& h = w.proc(0);
    for (int i = 0; i < kRounds; ++i) {
      sigs[2 * i]->wait(h.ctx, h.ring);
      sigs[2 * i + 1]->set(h.ctx);
    }
  });
  std::thread b([&] {
    auto& h = w.proc(1);
    for (int i = 0; i < kRounds; ++i) {
      sigs[2 * i]->set(h.ctx);
      sigs[2 * i + 1]->wait(h.ctx, h.ring);
    }
  });
  a.join();
  b.join();
  SUCCEED();
}

// Sequential port reuse on the real platform: one lock, threads take
// turns super-passage by super-passage (exercises node recycling across
// distinct OS threads on the same port).
TEST(RealThreads, SequentialPortHandover) {
  RealWorld w(2);
  core::RmeLock<R> lk(w.env, 1);
  for (int round = 0; round < 1000; ++round) {
    const int pid = round % 2;
    auto& h = w.proc(pid);
    lk.lock(h, 0);
    lk.unlock(h, 0);
  }
  EXPECT_EQ(lk.total_stats().acquisitions, 1000u);
}

}  // namespace

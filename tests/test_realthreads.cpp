// Real-thread stress: the Real platform (plain std::atomic, no
// instrumentation, no scheduler) under genuine hardware concurrency.
// These tests catch memory-ordering bugs the deterministic simulator
// cannot (the simulator serialises everything, so it only explores
// sequentially-consistent interleavings; here the hardware is free to
// reorder within the orders we specified).
//
// Every lock goes through the same Scenario<Real> harness: LockFixture
// provides the verified-critical-section body, ExclusionAudit checks ME
// under true concurrency, and Scenario::run() owns thread setup/join.
// Iteration counts scale down on machines with fewer cores than threads
// (CI boxes): the spin-then-yield Backoff keeps oversubscribed runs
// correct, but wall-clock budgets still apply.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/mcs.hpp"
#include "core/arbitration_tree.hpp"
#include "core/recoverable_mutex.hpp"
#include "core/rme_lock.hpp"
#include "harness/scenario.hpp"
#include "rlock/tournament.hpp"
#include "signal/signal.hpp"

namespace {

using namespace rme;
using harness::ExclusionAudit;
using harness::LockFixture;
using harness::RealWorld;
using harness::Scenario;
using R = platform::Real;

uint64_t stress_iters(uint64_t want, int threads) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw >= static_cast<unsigned>(threads)) return want;
  // Oversubscribed: every handoff costs an OS reschedule, not a cache
  // miss. Keep the interleaving pressure, shrink the wall clock.
  return std::max<uint64_t>(200, want / 10);
}

// Canonical counter race, harness edition: the audit sees no overlapping
// critical sections, and a PLAIN (non-atomic) counter incremented inside
// the CS loses no updates - the latter catches a lock whose unlock is
// missing its release fence even when the CSs never overlap in time.
template <class Lock>
void counter_stress(typename LockFixture<R, Lock>::Factory make, int threads,
                    uint64_t iters) {
  Scenario<R> s(threads);
  auto* fix = s.add_component<LockFixture<R, Lock>>(std::move(make));
  uint64_t plain_counter = 0;  // protected only by the lock under test
  fix->set_cs_hook([&plain_counter](int) { ++plain_counter; });
  auto* chk = s.audits().emplace<ExclusionAudit>();
  s.set_iterations(stress_iters(iters, threads));
  auto res = s.run();
  ASSERT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(chk->me_violations(), 0u);
  uint64_t total = 0;
  for (uint64_t c : res.completions) total += c;
  EXPECT_EQ(total, stress_iters(iters, threads) * threads);
  EXPECT_EQ(chk->entries(), total);
  EXPECT_EQ(plain_counter, total) << "lost updates: unlock not publishing";
}

TEST(RealThreads, RmeLockCounterStress) {
  constexpr int kThreads = 8;
  counter_stress<core::RmeLock<R>>(
      [=](RealWorld& w) {
        return std::make_unique<core::RmeLock<R>>(w.env, kThreads);
      },
      kThreads, 20000);
}

TEST(RealThreads, RmeLockManyPortsFewIterations) {
  constexpr int kThreads = 16;
  counter_stress<core::RmeLock<R>>(
      [=](RealWorld& w) {
        return std::make_unique<core::RmeLock<R>>(w.env, kThreads);
      },
      kThreads, 4000);
}

TEST(RealThreads, ArbitrationTreeCounterStress) {
  constexpr int kThreads = 12;
  counter_stress<core::ArbitrationTree<R>>(
      [=](RealWorld& w) {
        return std::make_unique<core::ArbitrationTree<R>>(w.env, kThreads,
                                                          core::ArbitrationTree<R>::Options{.degree = 3});
      },
      kThreads, 10000);
}

TEST(RealThreads, RecoverableMutexFacadeStress) {
  constexpr int kThreads = 8;
  counter_stress<RecoverableMutex<R>>(
      [=](RealWorld& w) {
        return std::make_unique<RecoverableMutex<R>>(w.env, kThreads);
      },
      kThreads, 15000);
}

TEST(RealThreads, TournamentRLockCounterStress) {
  constexpr int kThreads = 8;
  counter_stress<rlock::TournamentRLock<R>>(
      [=](RealWorld& w) {
        return std::make_unique<rlock::TournamentRLock<R>>(w.env, kThreads);
      },
      kThreads, 15000);
}

TEST(RealThreads, McsBaselineCounterStress) {
  constexpr int kThreads = 8;
  counter_stress<baselines::McsLock<R>>(
      [=](RealWorld& w) {
        return std::make_unique<baselines::McsLock<R>>(w.env, kThreads);
      },
      kThreads, 30000);
}

// Signal handoff chain across two real threads, many rounds: checks the
// Bit/GoAddr seq_cst handshake under hardware reordering. Custom body
// (no lock, no CS): each scenario iteration is one ping-pong round over
// a pair of fresh signals.
TEST(RealThreads, SignalHandoffChain) {
  const uint64_t kRounds = stress_iters(30000, 2);
  Scenario<R> s(2);
  std::vector<std::unique_ptr<signal::Signal<R>>> sigs;
  sigs.reserve(2 * kRounds);
  for (uint64_t i = 0; i < 2 * kRounds; ++i) {
    sigs.push_back(std::make_unique<signal::Signal<R>>());
    sigs.back()->attach(s.world().env, static_cast<int>(i % 2));
    sigs.back()->init_clear();
  }
  // Ping-pong: pid 0 waits on even signals and sets odd ones; pid 1 does
  // the reverse. Any lost wake deadlocks (test would time out). One
  // scenario iteration = one round; each pid keeps its own round index.
  uint64_t round[2] = {0, 0};
  s.set_body([&](platform::Process<R>& h, int pid) {
    const uint64_t i = round[pid]++;
    if (pid == 0) {
      sigs[2 * i]->wait(h.ctx, h.ring);
      sigs[2 * i + 1]->set(h.ctx);
    } else {
      sigs[2 * i]->set(h.ctx);
      sigs[2 * i + 1]->wait(h.ctx, h.ring);
    }
  });
  s.set_iterations(kRounds);
  auto res = s.run();
  ASSERT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(res.completions[0], kRounds);
  EXPECT_EQ(res.completions[1], kRounds);
}

// Sequential port reuse on the real platform: one lock, threads take
// turns super-passage by super-passage (exercises node recycling across
// distinct OS threads on the same port).
TEST(RealThreads, SequentialPortHandover) {
  RealWorld w(2);
  core::RmeLock<R> lk(w.env, 1);
  for (int round = 0; round < 1000; ++round) {
    const int pid = round % 2;
    auto& h = w.proc(pid);
    lk.lock(h, 0);
    lk.unlock(h, 0);
  }
  EXPECT_EQ(lk.total_stats().acquisitions, 1000u);
}

}  // namespace

// The cross-ABI battery pinning the attach-anywhere contract (region ABI
// v5): every in-region link is a self-relative offset (shm/offptr.hpp),
// so processes attached at DIFFERENT bases share one lock state. The
// tests force mismatched bases deliberately - each spawned worker gets
// its own far-apart RME_SHM_MAP_HINT - and then drive the same loads the
// fixed-address matrix (test_shm_fork.cpp) proves: contention, SIGKILL
// inside the CS, epoch-fenced recovery, parked futex handoff. The
// attach-base ledger in the region header is the witness that the bases
// really differed (a soft hint could theoretically be relocated; the
// ledger turns "should differ" into an assertion).
//
// Also here: the loud refusals the new contract demands - an old-ABI
// region is rejected with a versioned message, the opt-in RME_SHM_FIXED
// fast path still fails loudly on a busy address - and the quiesce-and-
// compact pass under a LIVE rival process (zero lost grants, telemetry
// monotone across the republish).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <thread>

#include "api/api.hpp"
#include "harness/fork_scenario.hpp"
#include "obs/obs.hpp"
#include "shm/shm.hpp"
#include "svc/svc.hpp"

namespace {

using namespace std::chrono_literals;
using rme::harness::ForkScenario;
using rme::harness::MapHint;
using rme::harness::ShmKillFixture;
using rme::harness::Stage;
using rme::platform::Real;
using rme::shm::ShmError;
using rme::shm::ShmWorld;
using Table = rme::api::TableLock<Real>;
using Fixture = ShmKillFixture<Table>;
using Lease = rme::shm::SessionLease<Table>;

#ifndef RME_SHM_WORKER_PATH
#define RME_SHM_WORKER_PATH ""
#endif

constexpr int kShards = 4;
constexpr int kPortsPerShard = 2;
constexpr int kNpids = 8;
constexpr int kWorkerPid = 0;
constexpr int kObserverPid = 7;  // never claimed: observer ctx only

// Two far-apart VA zones. Soft hints, but with a 32 MB region and a
// multi-GB gap the kernel has no reason to relocate either.
constexpr uint64_t kZoneA = 0x510000000000ull;
constexpr uint64_t kZoneB = 0x610000000000ull;

std::string unique_name(const char* tag) {
  static std::atomic<int> counter{0};
  return std::string("/rme_o_") + tag + "_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter.fetch_add(1));
}

std::string worker_path() { return RME_SHM_WORKER_PATH; }

struct OffsetWorld {
  ShmWorld world;
  Fixture& fx;

  explicit OffsetWorld(const std::string& name)
      : world(ShmWorld::create(name, 32 << 20, kNpids)),
        fx(world.create_root<Fixture>(world.env, kShards, kPortsPerShard,
                                      kNpids)) {}

  void audit_clean() {
    auto& ctx = world.proc(kObserverPid).ctx;
    auto& t = fx.table.underlying();
    for (int s = 0; s < t.shards(); ++s) {
      EXPECT_EQ(t.shard_lease(s).free_ports(ctx), kPortsPerShard)
          << "leaked lease in shard " << s;
      EXPECT_EQ(fx.probes[s].collisions.load(), 0u)
          << "ME violation witnessed in shard " << s;
    }
  }

  // The ledger's distinct recorded attach bases (creator's included).
  std::set<uint64_t> ledger_bases() {
    const rme::shm::RegionHeader* h = world.region().header();
    std::set<uint64_t> bases;
    for (int i = 0; i < rme::shm::kAttachLedger; ++i) {
      const uint64_t b = h->attach_base[i].load(std::memory_order_relaxed);
      if (b != 0) bases.insert(b);
    }
    return bases;
  }
};

class ShmOffsetsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (worker_path().empty()) {
      GTEST_SKIP() << "shm_worker binary path not configured";
    }
  }
};

TEST_F(ShmOffsetsTest, TwoProcessesAtDifferentBasesContend) {
  OffsetWorld m(unique_name("contend"));
  ForkScenario fs;
  const std::string key = "33";
  int c1 = -1, c2 = -1;
  {
    MapHint hint(kZoneA);
    c1 = fs.spawn(worker_path(),
                  {m.world.region().name(), "0", "run", "50", key});
  }
  {
    MapHint hint(kZoneB);
    c2 = fs.spawn(worker_path(),
                  {m.world.region().name(), "1", "run", "50", key});
  }
  EXPECT_TRUE(fs.exited_clean(c1));
  EXPECT_TRUE(fs.exited_clean(c2));
  const int shard = m.fx.table.shard_for_key(33);
  EXPECT_EQ(m.fx.probes[shard].entries.load(), 100u);
  EXPECT_EQ(m.fx.probes[shard].collisions.load(), 0u);
  // The ledger proves the contention really crossed bases: creator plus
  // two workers is at least three distinct mapped addresses.
  EXPECT_GE(m.ledger_bases().size(), 3u);
  m.audit_clean();
}

TEST_F(ShmOffsetsTest, KillInsideCsRecoversAcrossMismatchedBases) {
  // The CSR kill case with the recovering incarnation at a DIFFERENT
  // base than the one that died: the persisted queue node, lease and
  // intent state it replays were written relative to zone A, and the
  // offset links must resolve them correctly from zone B.
  OffsetWorld m(unique_name("kill"));
  ForkScenario fs;
  const uint64_t key = 33;
  const int shard = m.fx.table.shard_for_key(key);
  int c = -1;
  {
    MapHint hint(kZoneA);
    c = fs.spawn(worker_path(), {m.world.region().name(), "0", "freeze-cs",
                                 std::to_string(key)});
  }
  ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kInCs));
  fs.kill_child(c);
  EXPECT_TRUE(fs.died_by(c, SIGKILL));
  // The corpse owns the CS; the probe still claims it.
  EXPECT_EQ(m.fx.probes[shard].owner.load(), 1u);

  int r = -1;
  {
    MapHint hint(kZoneB);
    r = fs.spawn(worker_path(), {m.world.region().name(), "0", "recover-run",
                                 "5", std::to_string(key)});
  }
  ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kDone));
  EXPECT_TRUE(fs.exited_clean(r));  // exit 4 = CSR audit failed, 5 = no
                                    // takeover - both fail here
  EXPECT_EQ(m.world.slot_epoch(kWorkerPid), 2u);
  EXPECT_EQ(m.fx.probes[shard].entries.load(), 6u);  // 1 killed + 5 recovered
  EXPECT_GE(m.ledger_bases().size(), 3u);
  m.audit_clean();
}

TEST_F(ShmOffsetsTest, BatchReplayAcrossMismatchedBases) {
  // Multi-shard batch intent persisted at base A, replayed from base B.
  OffsetWorld m(unique_name("batch"));
  ForkScenario fs;
  const uint64_t k1 = 11;
  uint64_t k2 = 12;
  while (m.fx.table.shard_for_key(k2) == m.fx.table.shard_for_key(k1)) ++k2;
  int c = -1;
  {
    MapHint hint(kZoneA);
    c = fs.spawn(worker_path(),
                 {m.world.region().name(), "0", "freeze-batch",
                  std::to_string(k1), std::to_string(k2)});
  }
  ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kBatchHeld));
  fs.kill_child(c);
  EXPECT_TRUE(fs.died_by(c, SIGKILL));
  int r = -1;
  {
    MapHint hint(kZoneB);
    r = fs.spawn(worker_path(),
                 {m.world.region().name(), "0", "recover-run", "3",
                  std::to_string(k1), std::to_string(k2)});
  }
  ASSERT_TRUE(m.fx.board.await(kWorkerPid, Stage::kDone));
  EXPECT_TRUE(fs.exited_clean(r));
  m.audit_clean();
}

TEST_F(ShmOffsetsTest, ParkedHandoffAcrossMismatchedBases) {
  // Futex parking keys are region OFFSETS (FutexLot::key_of), so a
  // releaser at one base wakes a waiter parked at another. Zero timeout
  // wakes proves every wake-up was a targeted cross-base grant.
  OffsetWorld m(unique_name("park"));
  rme::platform::ParkingLot* lot = m.world.park_lot();
  if (lot == nullptr) GTEST_SKIP() << "no futex lot on this build/host";

  const uint64_t key = 33;
  rme::platform::ParkPolicy::Options opts;
  opts.spin_limit = 4;
  opts.yield_limit = 8;
  opts.min_park = 2s;
  opts.max_park = 2s;
  rme::platform::ParkPolicy policy(opts);
  Lease holder(m.world, m.fx.table, 6, &policy);
  auto g = holder->acquire(key).value();

  const uint64_t grants0 = lot->grants();
  const uint64_t timeouts0 = lot->timeouts();

  ForkScenario fs;
  int a = -1, b = -1;
  {
    MapHint hint(kZoneA);
    a = fs.spawn(worker_path(), {m.world.region().name(), "0",
                                 "park-acquire", std::to_string(key)});
  }
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (lot->parked_count() != 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "A never parked";
    std::this_thread::sleep_for(200us);
  }
  {
    MapHint hint(kZoneB);
    b = fs.spawn(worker_path(), {m.world.region().name(), "1",
                                 "park-acquire", std::to_string(key)});
  }
  while (lot->parked_count() != 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "B never parked";
    std::this_thread::sleep_for(200us);
  }

  g.release();
  ASSERT_TRUE(m.fx.board.await(0, Stage::kDone));
  ASSERT_TRUE(m.fx.board.await(1, Stage::kDone));
  EXPECT_TRUE(fs.exited_clean(a));
  EXPECT_TRUE(fs.exited_clean(b));

  EXPECT_EQ(lot->grants() - grants0, 2u);
  EXPECT_EQ(lot->timeouts() - timeouts0, 0u);
  EXPECT_EQ(lot->parked_count(), 0u);
  EXPECT_LE(holder->stats().handoff_rmrs, holder->stats().releases);
  EXPECT_GE(m.ledger_bases().size(), 3u);
  m.audit_clean();
}

TEST(ShmOffsets, OldAbiRegionRefusedWithVersionedError) {
  // Hand-craft a v4-era header in a raw shm object: attach must refuse
  // with a message naming BOTH versions and the migration pointer, not
  // crash into a layout it cannot trust.
  const std::string name = unique_name("oldabi");
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  const size_t bytes = sizeof(rme::shm::RegionHeader) + (1u << 16);
  ASSERT_EQ(::ftruncate(fd, static_cast<off_t>(bytes)), 0);
  void* base =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ASSERT_NE(base, MAP_FAILED);
  ::close(fd);
  auto* hdr = new (base) rme::shm::RegionHeader();
  hdr->version = 4;  // the fixed-address ABI this build retired
  hdr->abi_hash = rme::shm::abi_hash();
  hdr->bytes = bytes;
  hdr->ready.store(1, std::memory_order_release);
  hdr->magic.store(rme::shm::kMagic, std::memory_order_release);
  try {
    ShmWorld::attach(name);
    FAIL() << "old-ABI attach must throw";
  } catch (const ShmError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version 4"), std::string::npos) << what;
    EXPECT_NE(what.find("version 5"), std::string::npos) << what;
    EXPECT_NE(what.find("Region ABI & migration"), std::string::npos) << what;
  }
  ::munmap(base, bytes);
  ::shm_unlink(name.c_str());
}

TEST_F(ShmOffsetsTest, CompactUnderLiveRivalLosesNothing) {
  // Quiesce-and-compact with a LIVE rival process bursting passages the
  // whole time: the rival rides out the drain (its claim throws, it
  // re-attaches by name, lands on the republished object) and completes
  // every passage; obs counters stay monotone across the republish;
  // the region shrinks back after forced growth.
  const std::string name = unique_name("compact");
  OffsetWorld* m = new OffsetWorld(name);
  // Force growth so the compact pass has something to reclaim: a 48 MB
  // allocation overflows the 32 MB initial limit, and the doubling grow
  // lands the new limit well past the bump cursor - that gap is the
  // reclaimable tail.
  const uint64_t limit0 =
      m->world.region().header()->limit.load(std::memory_order_acquire);
  ASSERT_NE(m->world.env.arena.try_allocate(48u << 20, 64), nullptr);
  const uint64_t grown =
      m->world.region().header()->limit.load(std::memory_order_acquire);
  ASSERT_GT(grown, limit0);

  constexpr int kTotal = 200;
  ForkScenario fs;
  int rival = -1;
  {
    MapHint hint(kZoneA);
    rival = fs.spawn(worker_path(), {name, "1", "compact-rival",
                                     std::to_string(kTotal), "33"});
  }
  std::this_thread::sleep_for(30ms);  // let the rival get going

  const rme::obs::Snapshot before =
      rme::obs::Snapshot::read(m->world.region().header()->metrics, kNpids);

  // The parent's own handle holds no claims, so the drain only waits for
  // the rival's burst gaps.
  const rme::shm::CompactReport rep = rme::shm::compact_region(name);
  EXPECT_EQ(rep.old_limit, grown);
  EXPECT_LT(rep.new_limit, grown);
  EXPECT_GE(rep.new_limit, rep.live_bytes);

  // The parent's old mapping is a stale handle now: re-attach by name to
  // the republished object, like any rival would.
  auto world2 = ShmWorld::attach(name);
  Fixture& fx2 = world2.root<Fixture>();
  ASSERT_TRUE(fx2.board.await(1, Stage::kDone));
  EXPECT_TRUE(fs.exited_clean(rival));

  // Zero lost grants: every passage the rival booked is witnessed.
  const int shard = fx2.table.shard_for_key(33);
  EXPECT_EQ(fx2.probes[shard].entries.load(),
            static_cast<uint64_t>(kTotal));
  EXPECT_EQ(fx2.probes[shard].collisions.load(), 0u);

  // Telemetry rode the prefix copy: per-row counters are monotone across
  // the republish, and the handoff invariant holds on the far side.
  const rme::obs::Snapshot after =
      rme::obs::Snapshot::read(world2.region().header()->metrics, kNpids);
  uint64_t releases = 0, handoffs = 0;
  for (int p = 0; p < kNpids; ++p) {
    for (int ctr = 0; ctr < rme::obs::kCounterCount; ++ctr) {
      EXPECT_GE(after.row[p].counter[ctr], before.row[p].counter[ctr])
          << "pid " << p << " counter " << ctr;
    }
    releases += after.row[p].counter[rme::obs::kReleases];
    handoffs += after.row[p].counter[rme::obs::kHandoffRmrs];
  }
  EXPECT_LE(handoffs, releases);

  // The new object's segment directory restarted at one trimmed segment.
  const rme::shm::RegionHeader* h2 = world2.region().header();
  EXPECT_EQ(h2->segs.count.load(std::memory_order_acquire), 1u);
  EXPECT_EQ(h2->segs.hi[0].load(std::memory_order_acquire), rep.new_limit);
  EXPECT_EQ(h2->segs.gen.load(std::memory_order_acquire), rep.seg_gen);
  EXPECT_EQ(h2->quiesce.load(std::memory_order_acquire), 0u);

  // The stale handle refuses new sessions with the re-attach message.
  try {
    (void)m->world.claim(2);
    ADD_FAILURE() << "stale handle's claim must throw";
  } catch (const ShmError& e) {
    EXPECT_NE(std::string(e.what()).find("re-attach"), std::string::npos);
  }
  // Destroying the creator handle last keeps its (now anonymous) old
  // mapping alive through the audits above; its unlink-on-destroy names
  // the COMPACTED object, which is exactly the cleanup we want.
  delete m;
}

}  // namespace

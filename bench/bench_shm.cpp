// E13: cross-process contention - what does the shm boundary cost?
//
// Two arms, identical workload shape (two actors hammering one hot key of
// a 4-shard TableLock; the measured actor times every acquire):
//
//   world=local  one process, two threads, heap-resident table - the
//                single-process baseline every earlier bench used.
//   world=shm    two PROCESSES (fork; the region mapping is inherited,
//                which trivially satisfies the fixed-address contract):
//                a region-resident table, the child claims its own pid
//                slot and runs the rival load, the parent measures.
//
// The interesting delta is the p99: the lock words are the same
// algorithm either way, but cross-process rivals cannot share a parking
// lot (wakeups ride the always-timed parks) and every miss costs a real
// scheduler round trip instead of an intra-process handoff.
//
// BENCH_JSON rows: bench=shm_contention, lock=rme_keyed, world=local|shm,
// procs, p50_ns/p99_ns (schema enforced by tools/check_bench_json.py).
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/adapters.hpp"
#include "bench_util.hpp"
#include "shm/shm.hpp"
#include "svc/svc.hpp"

namespace {

using namespace rme;
using Clock = std::chrono::steady_clock;
using Table = api::TableLock<platform::Real>;

constexpr int kShards = 4;
constexpr int kPortsPerShard = 2;
constexpr int kNpids = 4;
constexpr uint64_t kKey = 33;

struct Lat {
  double p50_ns = 0;
  double p99_ns = 0;
  uint64_t samples = 0;
};

Lat summarise(std::vector<uint64_t>& ns) {
  Lat out;
  if (ns.empty()) return out;
  std::sort(ns.begin(), ns.end());
  out.samples = ns.size();
  out.p50_ns = static_cast<double>(ns[ns.size() / 2]);
  out.p99_ns = static_cast<double>(ns[(ns.size() * 99) / 100]);
  return out;
}

// The measured actor: `iters` timed passages through `session`.
template <class SessionT>
std::vector<uint64_t> measured_load(SessionT& session, uint64_t iters) {
  std::vector<uint64_t> ns;
  ns.reserve(iters);
  for (uint64_t i = 0; i < iters; ++i) {
    const auto t0 = Clock::now();
    auto g = session.acquire(kKey).value();
    const auto t1 = Clock::now();
    g.release();
    ns.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  return ns;
}

Lat run_local(uint64_t iters) {
  harness::RealWorld world(kNpids);
  Table table(world.env, kShards, kPortsPerShard, kNpids);
  svc::Session<Table> rival(table, world.proc(1), 1);
  svc::Session<Table> meas(table, world.proc(0), 0);
  std::atomic<bool> stop{false};
  std::thread t([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto g = rival.acquire(kKey).value();
      g.release();
    }
  });
  auto ns = measured_load(meas, iters);
  stop.store(true);
  t.join();
  return summarise(ns);
}

Lat run_shm(uint64_t iters) {
  const std::string name =
      "/rme_bench_shm_" + std::to_string(::getpid());
  auto world = shm::ShmWorld::create(name, 32 << 20, kNpids);
  Table& table = world.create_root<Table>(world.env, kShards,
                                          kPortsPerShard, kNpids);
  // Rival process: inherits the mapping across fork (same base address,
  // contract satisfied), claims its own pid slot, hammers the key until
  // the parent is done, then dies WITHOUT cleanup (_exit: the region and
  // its registry belong to the parent).
  const pid_t child = ::fork();
  if (child == 0) {
    // The header's ready word doubles as the stop signal: 1 = published,
    // 2 = parent done measuring.
    auto id = world.claim(1);
    (void)id;
    svc::Session<Table> rival(table, world.proc(1), 1);
    while (world.region().header()->ready.load(std::memory_order_acquire) !=
           2) {
      auto g = rival.acquire(kKey).value();
      g.release();
    }
    ::_exit(0);  // no destructors: the region belongs to the parent
  }
  shm::SessionLease<Table> meas(world, table, 0);
  auto ns = measured_load(meas.session(), iters);
  world.region().header()->ready.store(2, std::memory_order_release);
  int status = 0;
  ::waitpid(child, &status, 0);
  return summarise(ns);
}

void emit(const char* worldname, const Lat& l) {
  bench::json_line("shm_contention",
                   {{"lock", "rme_keyed"},
                    {"world", worldname},
                    {"procs", "2"}},
                   {{"p50_ns", l.p50_ns},
                    {"p99_ns", l.p99_ns},
                    {"samples", static_cast<double>(l.samples)}});
}

}  // namespace

int main() {
  bench::header("E13", "cross-process shm contention",
                "the shm boundary preserves the lock's passage costs; "
                "cross-process p99 pays the scheduler, not the algorithm");
  const uint64_t iters = bench::smoke_iters(200000, 2000);

  const Lat local = run_local(iters);
  const Lat shmlat = run_shm(iters);

  bench::Table t({"world", "procs", "p50(ns)", "p99(ns)", "samples"});
  t.row({"local", "2", bench::fmt("%.0f", local.p50_ns),
         bench::fmt("%.0f", local.p99_ns),
         bench::fmt("%llu", (unsigned long long)local.samples)});
  t.row({"shm", "2", bench::fmt("%.0f", shmlat.p50_ns),
         bench::fmt("%.0f", shmlat.p99_ns),
         bench::fmt("%llu", (unsigned long long)shmlat.samples)});
  emit("local", local);
  emit("shm", shmlat);
  return 0;
}

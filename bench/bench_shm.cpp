// E13: cross-process contention - what does the shm boundary cost, and
// what does the region-resident futex lot buy back?
//
// Contention arms, identical workload shape (two actors hammering one
// hot key of a 4-shard TableLock; the measured actor times every
// acquire; every session runs a ParkPolicy so the handoff machinery is
// actually engaged):
//
//   world=local handoff=condvar  one process, two threads, heap table:
//                                the single-process PARKED baseline -
//                                releases hand off through the shared
//                                process-local CondvarLot.
//   world=shm   handoff=timed    two PROCESSES (fork; the inherited
//                                mapping satisfies the fixed-address
//                                contract) with the futex lot disabled
//                                (set_futex_enabled(false), the
//                                RME_NO_FUTEX fallback): parks land in
//                                each process's PRIVATE condvar lot, so
//                                no release ever reaches a cross-process
//                                waiter - every parked wait sleeps out
//                                its full timed nap.
//   world=shm   handoff=futex    same two processes with the region lot:
//                                a releaser wakes the exact successor's
//                                in-region wait word with one
//                                futex(FUTEX_WAKE), so cross-process
//                                handoff costs a syscall, not a timeout.
//
// The futex arm runs TWICE, distinguished by the `bases` tag:
//   bases=fixed       the child keeps the fork-inherited mapping (same
//                     base address in both processes).
//   bases=mismatched  the child re-attaches by name under a far-away
//                     RME_SHM_MAP_HINT, so the two processes address the
//                     region at DIFFERENT bases and every handoff rides
//                     the offset links (park keys are region offsets).
// The full (non-smoke) run asserts mismatched p99 <= 2x fixed p99: the
// position-independent encode/decode must not tax the handoff path.
//
// Every row also books the measured session's handoff_rmrs (waiters its
// releases granted; the fair-handoff invariant handoff_rmrs <= releases
// is asserted here) and the lot's mean waker->wakee wake latency
// (futex lot only; 0 where untracked).
//
// The shm_handoff bench isolates that wake latency: a parent/child
// park-wake ping over the raw region lot, choreographed (the parent
// only wakes a CONFIRMED parked child), so the futex arm must complete
// with ZERO timeout wakes - CI asserts exactly that.
//
// BENCH_JSON rows (schema enforced by tools/check_bench_json.py):
//   bench=shm_contention lock=rme_keyed world=local|shm procs=2
//     handoff=condvar|timed|futex p50_ns p99_ns samples handoff_rmrs
//     releases wake_ns
//   bench=shm_handoff handoff=futex procs=2 rounds grants timeouts
//     wake_ns
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/adapters.hpp"
#include "bench_util.hpp"
#include "platform/wait.hpp"
#include "shm/shm.hpp"
#include "svc/svc.hpp"

namespace {

using namespace rme;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;
using Table = api::TableLock<platform::Real>;

constexpr int kShards = 4;
constexpr int kPortsPerShard = 2;
constexpr int kNpids = 4;
constexpr uint64_t kKey = 33;
constexpr uint64_t kPingKey = 0x9e3779b9ull;  // raw-lot key (nonzero)

// Critical-section dwell: both actors HOLD the lock for ~10us, long
// enough that a queued rival escalates past its spin/yield budget and
// parks before the release - otherwise the instant-release loop releases
// faster than anyone can park and the handoff axis measures nothing.
constexpr auto kCsDwell = std::chrono::microseconds(10);

inline void dwell() {
  const auto until = Clock::now() + kCsDwell;
  while (Clock::now() < until) {
  }
}

struct Lat {
  double p50_ns = 0;
  double p99_ns = 0;
  uint64_t samples = 0;
};

// One contention-arm measurement: latency percentiles plus the handoff
// telemetry the arm exists to compare.
struct Arm {
  Lat lat;
  uint64_t handoff_rmrs = 0;  // measured session: waiters its releases granted
  uint64_t releases = 0;      // measured session: guard releases
  double wake_ns = 0;         // lot mean waker->wakee latency (futex only)
};

// Bench park budgets: tiny spin/yield so a queued waiter actually PARKS
// before the ~2us lock handoff reaches it (the default budgets yield
// through the whole wait and the handoff axis would measure nothing).
platform::ParkPolicy::Options bench_park_opts() {
  platform::ParkPolicy::Options o;
  o.spin_limit = 4;
  o.yield_limit = 4;  // no yield stage: park right after the spin burst
  return o;  // default 50..500us escalating naps
}

Lat summarise(std::vector<uint64_t>& ns) {
  Lat out;
  if (ns.empty()) return out;
  std::sort(ns.begin(), ns.end());
  out.samples = ns.size();
  out.p50_ns = static_cast<double>(ns[ns.size() / 2]);
  out.p99_ns = static_cast<double>(ns[(ns.size() * 99) / 100]);
  return out;
}

// The measured actor: `iters` timed passages through `session`.
template <class SessionT>
std::vector<uint64_t> measured_load(SessionT& session, uint64_t iters) {
  std::vector<uint64_t> ns;
  ns.reserve(iters);
  for (uint64_t i = 0; i < iters; ++i) {
    const auto t0 = Clock::now();
    auto g = session.acquire(kKey).value();
    const auto t1 = Clock::now();
    dwell();
    g.release();
    ns.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  return ns;
}

// Single-process parked baseline: both threads share ONE ParkPolicy on
// the process-local condvar lot, so a release's unpark_one reaches the
// rival's parked waiter - the handoff the shm futex arm must stay
// within 2x of.
Arm run_local(uint64_t iters) {
  harness::RealWorld world(kNpids);
  Table table(world.env, kShards, kPortsPerShard, kNpids);
  platform::ParkPolicy policy(bench_park_opts());  // shared: one key space
  svc::Session<Table> rival(table, world.proc(1), 1, &policy);
  svc::Session<Table> meas(table, world.proc(0), 0, &policy);
  std::atomic<bool> stop{false};
  std::thread t([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto g = rival.acquire(kKey).value();
      dwell();
      g.release();
    }
  });
  auto ns = measured_load(meas, iters);
  stop.store(true);
  t.join();
  Arm out;
  out.lat = summarise(ns);
  out.handoff_rmrs = meas.stats().handoff_rmrs;
  out.releases = meas.stats().releases;
  return out;  // condvar lot tracks no wake latency: wake_ns stays 0
}

// Cross-process contention arm. `futex_on` selects the region futex lot
// (the default) or the RME_NO_FUTEX fallback (process-private condvar
// lots, always-timed parks). The flag is set BEFORE the fork so the
// child inherits it. With `mismatched` the child discards the inherited
// mapping and re-attaches by name under a far-away map hint: both
// processes then address the region at different bases, exercising the
// offset links on the contended handoff path.
Arm run_shm(uint64_t iters, bool futex_on, bool mismatched,
            const char* tag) {
  const std::string name = std::string("/rme_bench_shm_") + tag + "_" +
                           std::to_string(::getpid());
  auto world = shm::ShmWorld::create(name, 32 << 20, kNpids);
  Table& table = world.create_root<Table>(world.env, kShards,
                                          kPortsPerShard, kNpids);
  world.set_futex_enabled(futex_on);
  platform::ParkingLot* lot = world.park_lot();  // null on the timed arm
  const uint64_t grants0 = lot != nullptr ? lot->grants() : 0;
  const uint64_t wait0 = lot != nullptr ? lot->wake_wait_ns() : 0;
  // Rival process: claims its own pid slot, hammers the key until the
  // parent is done, then dies WITHOUT cleanup (_exit: the region and its
  // registry belong to the parent).
  const pid_t child = ::fork();
  if (child == 0) {
    // The header's ready word doubles as the stop signal: 1 = published,
    // 2 = parent done measuring.
    if (mismatched) {
      // Drop the inherited mapping: re-attach by name at a hinted,
      // deliberately different base and run through THAT handle.
      ::setenv("RME_SHM_MAP_HINT", "0x610000000000", 1);
      auto world2 = shm::ShmWorld::attach(name);
      ::unsetenv("RME_SHM_MAP_HINT");
      Table& table2 = world2.root<Table>();
      auto id = world2.claim(1);
      (void)id;
      platform::ParkPolicy policy(bench_park_opts());
      svc::Session<Table> rival(table2, world2.proc(1), 1, &policy);
      while (world2.region().header()->ready.load(
                 std::memory_order_acquire) != 2) {
        auto g = rival.acquire(kKey).value();
        dwell();
        g.release();
      }
      ::_exit(0);
    }
    auto id = world.claim(1);
    (void)id;
    platform::ParkPolicy policy(bench_park_opts());
    svc::Session<Table> rival(table, world.proc(1), 1, &policy);
    while (world.region().header()->ready.load(std::memory_order_acquire) !=
           2) {
      auto g = rival.acquire(kKey).value();
      dwell();
      g.release();
    }
    ::_exit(0);  // no destructors: the region belongs to the parent
  }
  platform::ParkPolicy policy(bench_park_opts());
  shm::SessionLease<Table> meas(world, table, 0, &policy);
  auto ns = measured_load(meas.session(), iters);
  world.region().header()->ready.store(2, std::memory_order_release);
  int status = 0;
  ::waitpid(child, &status, 0);
  Arm out;
  out.lat = summarise(ns);
  out.handoff_rmrs = meas.session().stats().handoff_rmrs;
  out.releases = meas.session().stats().releases;
  if (lot != nullptr) {
    // Arena counters aggregate BOTH processes: the scenario's mean
    // waker->wakee latency, not just the parent's.
    const uint64_t grants = lot->grants() - grants0;
    if (grants > 0) {
      out.wake_ns = static_cast<double>(lot->wake_wait_ns() - wait0) /
                    static_cast<double>(grants);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// shm_handoff: the park-wake ping. The child parks on the raw region lot
// (flat 2s timeout); the parent waits until the child is CONFIRMED
// parked, wakes it with one unpark_one, and waits for the ack. The
// choreography makes a timeout impossible unless a wake is lost - so
// the futex arm's timeouts metric MUST be 0, and CI asserts it. The
// child re-attaches at a hinted, different base (bases=mismatched): a
// zero timeout count therefore also proves no wake is lost when parker
// and waker address the region at different addresses.
// ---------------------------------------------------------------------------

struct PingBoard {
  std::atomic<uint64_t> acks;
  std::atomic<uint32_t> stop;
};

struct Ping {
  uint64_t rounds = 0;
  uint64_t grants = 0;
  uint64_t timeouts = 0;
  double wake_ns = 0;  // mean waker->wakee latency per granted wake
  bool ran = false;
};

Ping run_handoff_ping(uint64_t rounds) {
  Ping out;
  const std::string name =
      "/rme_bench_ping_" + std::to_string(::getpid());
  auto world = shm::ShmWorld::create(name, 8 << 20, 2);
  PingBoard& board = world.create_root<PingBoard>();
  platform::ParkingLot* lot = world.park_lot();
  if (lot == nullptr) return out;  // no futex on this build/host
  const uint64_t grants0 = lot->grants();
  const uint64_t timeouts0 = lot->timeouts();
  const uint64_t wait0 = lot->wake_wait_ns();

  const pid_t child = ::fork();
  if (child == 0) {
    // Mismatched bases: park through a re-attached mapping, not the
    // fork-inherited one. The wait word lives in region memory, so the
    // parent's unpark_one must land on this waiter regardless of where
    // either process mapped the region.
    ::setenv("RME_SHM_MAP_HINT", "0x610000000000", 1);
    auto world2 = shm::ShmWorld::attach(name);
    ::unsetenv("RME_SHM_MAP_HINT");
    PingBoard& board2 = world2.root<PingBoard>();
    auto id = world2.claim(1);
    (void)id;
    platform::ParkingLot* clot = world2.park_lot();
    while (board2.stop.load(std::memory_order_acquire) == 0) {
      if (clot->park_for(1, kPingKey, 2s)) {
        board2.acks.fetch_add(1, std::memory_order_release);
      }
    }
    ::_exit(0);
  }

  // Bounded waits: a lost wake must FAIL the handshake (it surfaces as a
  // child park timeout in the arena counters), never hang the bench.
  auto await = [](auto cond) {
    const auto deadline = Clock::now() + 10s;
    while (!cond()) {
      if (Clock::now() >= deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };
  bool ok = true;
  for (uint64_t r = 0; ok && r < rounds; ++r) {
    ok = await([&] { return lot->parked_count(kPingKey) != 0; });
    if (!ok) break;
    lot->unpark_one(kPingKey);
    ok = await([&] {
      return board.acks.load(std::memory_order_acquire) >= r + 1;
    });
  }
  if (!ok) std::fprintf(stderr, "FAIL: shm_handoff handshake stalled\n");
  out.rounds = rounds;
  out.grants = lot->grants() - grants0;
  out.timeouts = lot->timeouts() - timeouts0;
  if (out.grants > 0) {
    out.wake_ns = static_cast<double>(lot->wake_wait_ns() - wait0) /
                  static_cast<double>(out.grants);
  }
  out.ran = true;

  // Release the child: confirm it is parked again (it re-parks right
  // after its last ack), THEN raise stop and wake - the grant routes it
  // through the stop check.
  (void)await([&] { return lot->parked_count(kPingKey) != 0; });
  board.stop.store(1, std::memory_order_release);
  lot->unpark_one(kPingKey);
  int status = 0;
  ::waitpid(child, &status, 0);
  return out;
}

void emit(const char* worldname, const char* handoff, const char* bases,
          const Arm& a) {
  bench::json_line("shm_contention",
                   {{"lock", "rme_keyed"},
                    {"world", worldname},
                    {"procs", "2"},
                    {"handoff", handoff},
                    {"bases", bases}},
                   {{"p50_ns", a.lat.p50_ns},
                    {"p99_ns", a.lat.p99_ns},
                    {"samples", static_cast<double>(a.lat.samples)},
                    {"handoff_rmrs", static_cast<double>(a.handoff_rmrs)},
                    {"releases", static_cast<double>(a.releases)},
                    {"wake_ns", a.wake_ns}});
}

}  // namespace

int main() {
  bench::header("E13", "cross-process shm contention & futex handoff",
                "the region-resident futex lot turns cross-process handoff "
                "from a timed-park wait into one targeted wake syscall");
  const uint64_t iters = bench::smoke_iters(100000, 2000);
  // The timed arm sleeps out a full nap per parked wait: cap its iteration
  // budget so the arm stays seconds-long (samples are emitted per row).
  const uint64_t timed_iters = bench::smoke_iters(20000, 2000);

  const Arm local = run_local(iters);
  const Arm timed = run_shm(timed_iters, /*futex_on=*/false,
                            /*mismatched=*/false, "timed");
  const Arm futex = run_shm(iters, /*futex_on=*/true,
                            /*mismatched=*/false, "futex");
  const Arm mis = run_shm(iters, /*futex_on=*/true,
                          /*mismatched=*/true, "mis");
  // On builds/hosts without a futex lot the "futex" arm degrades to the
  // timed fallback: label it honestly.
  const bool have_futex = RME_HAS_FUTEX && std::getenv("RME_NO_FUTEX") == nullptr;
  const char* futex_label = have_futex ? "futex" : "timed";

  bench::Table t({"world", "handoff", "bases", "p50(ns)", "p99(ns)",
                  "handoffs", "wake(ns)", "samples"});
  auto row = [&](const char* w, const char* h, const char* bs,
                 const Arm& a) {
    t.row({w, h, bs, bench::fmt("%.0f", a.lat.p50_ns),
           bench::fmt("%.0f", a.lat.p99_ns),
           bench::fmt("%llu", (unsigned long long)a.handoff_rmrs),
           bench::fmt("%.0f", a.wake_ns),
           bench::fmt("%llu", (unsigned long long)a.lat.samples)});
  };
  row("local", "condvar", "fixed", local);
  row("shm", "timed", "fixed", timed);
  row("shm", futex_label, "fixed", futex);
  row("shm", futex_label, "mismatched", mis);
  emit("local", "condvar", "fixed", local);
  emit("shm", "timed", "fixed", timed);
  emit("shm", futex_label, "fixed", futex);
  emit("shm", futex_label, "mismatched", mis);

  // Fair handoff must hold on every arm: a release grants at most one
  // parked waiter.
  for (const Arm* a : {&local, &timed, &futex, &mis}) {
    if (a->handoff_rmrs > a->releases) {
      std::fprintf(stderr, "FAIL: handoff_rmrs %llu > releases %llu\n",
                   (unsigned long long)a->handoff_rmrs,
                   (unsigned long long)a->releases);
      return 1;
    }
  }

  // The offset-link tax on the contended path: mismatched bases must
  // stay within 2x of the fixed-base futex p99. Printed always, gating
  // only the full run (smoke samples are too few to compare tails).
  if (have_futex && futex.lat.p99_ns > 0) {
    const double ratio = mis.lat.p99_ns / futex.lat.p99_ns;
    std::printf("   mismatched/fixed futex p99 ratio: %.2f\n", ratio);
    if (!bench::smoke_mode() && ratio > 2.0) {
      std::fprintf(stderr,
                   "FAIL: mismatched-base p99 %.0fns > 2x fixed %.0fns\n",
                   mis.lat.p99_ns, futex.lat.p99_ns);
      return 1;
    }
  }

  const Ping ping = run_handoff_ping(bench::smoke_iters(10000, 200));
  if (ping.ran) {
    bench::Table p({"bench", "rounds", "grants", "timeouts", "wake(ns)"});
    p.row({"shm_handoff", bench::fmt("%llu", (unsigned long long)ping.rounds),
           bench::fmt("%llu", (unsigned long long)ping.grants),
           bench::fmt("%llu", (unsigned long long)ping.timeouts),
           bench::fmt("%.0f", ping.wake_ns)});
    bench::json_line(
        "shm_handoff",
        {{"handoff", "futex"},
         {"procs", "2"},
         {"bases", "mismatched"},
         {"rounds", bench::fmt("%llu", (unsigned long long)ping.rounds)}},
        {{"grants", static_cast<double>(ping.grants)},
         {"timeouts", static_cast<double>(ping.timeouts)},
         {"wake_ns", ping.wake_ns}});
  } else {
    std::printf("   (shm_handoff skipped: no futex lot on this build/host)\n");
  }
  return 0;
}

// E10 - Repair cost (paper Section 1.5: shallow vs deep exploration).
//
// Claim: one repair pass costs O(k) RMRs and O(k) local work (GH's deep
// exploration costs O(n^2) local steps). We isolate the recovery passage
// of a crashed process - with every other port holding a node, so the
// scan really visits k entries - and report its RMRs and steps vs k,
// plus the branch the repair resolved through.
#include <memory>

#include "bench_util.hpp"
#include "core/rme_lock.hpp"

using namespace rme;
using namespace rme::bench;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

namespace {

struct RepairCost {
  double rmrs;
  double steps;
  const char* branch;
};

RepairCost repair_cost(ModelKind kind, int k) {
  SimRun sim(kind, k);
  core::RmeLock<P> lk(sim.world().env, k);
  uint64_t rmr_before = 0, steps_before = 0;
  double rmrs = -1, steps = -1;
  bool in_recovery = false;
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      rmr_before = h.ctx.counters.rmrs;
      steps_before = h.ctx.counters.steps;
      lk.lock(h, 0);
      if (in_recovery && rmrs < 0) {
        rmrs = static_cast<double>(h.ctx.counters.rmrs - rmr_before);
        steps = static_cast<double>(h.ctx.counters.steps - steps_before);
      }
      lk.unlock(h, 0);
    } else {
      lk.lock(h, pid);
      lk.unlock(h, pid);
    }
  });
  struct Plan final : sim::CrashPlan {
    bool fired = false;
    bool* flag;
    sim::CrashAroundFas inner{0, 1, sim::CrashAroundFas::kAfter};
    explicit Plan(bool* f) : flag(f) {}
    bool should_crash(int pid, uint64_t step, rmr::Op op) override {
      if (inner.should_crash(pid, step, op)) {
        *flag = true;
        return true;
      }
      return false;
    }
  } plan(&in_recovery);
  sim::SeededRandom pol(21);
  std::vector<uint64_t> iters(static_cast<size_t>(k), 6);
  auto res = sim.run(pol, plan, iters, 80000000);
  RME_ASSERT(!res.exhausted, "E10 run exhausted");
  RME_ASSERT(rmrs >= 0, "E10: no recovery passage observed");
  const auto st = lk.total_stats();
  const char* branch = st.repair_fas ? "L47-FAS"
                       : st.repair_headpath ? "L48-head"
                                            : "L48-special";
  return RepairCost{rmrs, steps, branch};
}

}  // namespace

int main() {
  header("E10", "recovery-passage cost vs k (crash after FAS, all ports busy)",
         "Section 1.5: shallow exploration repairs in O(k) RMRs and O(k) "
         "local steps (GH: O(n) cache words, O(n^2) local steps)");

  Table t({"model", "k", "RMRs", "steps", "RMR/k", "branch"});
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    const char* m = kind == ModelKind::kCc ? "CC" : "DSM";
    for (int k : {2, 4, 8, 16, 32, 64}) {
      if (rme::bench::smoke_mode() && k > 16) continue;
      auto c = repair_cost(kind, k);
      t.row({m, fmt("%d", k), fmt("%.0f", c.rmrs), fmt("%.0f", c.steps),
             fmt("%.2f", c.rmrs / k), c.branch});
      json_line("repair",
                {{"model", m}, {"k", fmt("%d", k)}, {"branch", c.branch}},
                {{"rmrs", c.rmrs}, {"steps", c.steps}});
    }
  }
  std::printf(
      "\nReading: RMRs and steps grow linearly in k (the Node-array scan) "
      "- the RMR/k column is\n~constant. That linear scan is the entire "
      "repair cost: no quadratic local work, no O(k)\nresidency "
      "requirement.\n");
  return 0;
}

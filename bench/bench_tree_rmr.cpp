// E4 - Arbitration tree RMR vs n (paper Theorem 3, the headline result).
//
// Claim: the n-process arbitration tree of degree Theta(log n/log log n)
// built from RmeLock nodes costs O(log n / log log n) RMR per crash-free
// passage - asymptotically better than the Theta(log n) binary tournament
// (the read/write recoverable baseline, optimal without FAS by Attiya et
// al.'s lower bound).
//
// Two sections:
//   (a) solo passages up to n = 4096: the pure height term, with the
//       normalised columns RMR/(log n/log log n) (tree) and RMR/log2 n
//       (tournament), which should each be ~constant;
//   (b) all-ports-contending passages up to n = 32: same separation with
//       handoff costs included.
#include <cmath>
#include <memory>

#include "bench_util.hpp"
#include "core/arbitration_tree.hpp"
#include "rlock/tournament.hpp"

using namespace rme;
using namespace rme::bench;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

namespace {

// Solo: only pid 0 takes passages; everyone else is idle.
template <class MakeLock>
double solo_rmr(ModelKind kind, int n, uint64_t iters, MakeLock make,
                int* height_out = nullptr) {
  SimRun sim(kind, n);
  auto lk = make(sim, height_out);
  sim.set_body([&](SimProc& h, int pid) {
    lk->lock(h, pid);
    lk->unlock(h, pid);
  });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  std::vector<uint64_t> per(static_cast<size_t>(n), 0);
  per[0] = iters;
  auto res = sim.run(rr, nc, per, 400000000);
  RME_ASSERT(!res.exhausted, "E4 solo run exhausted");
  return static_cast<double>(sim.world().counters(0).rmrs) /
         static_cast<double>(iters);
}

}  // namespace

int main() {
  header("E4", "n-process lock RMR vs n: arbitration tree vs tournament",
         "Theorem 3: O((1+f) log n / log log n) per super-passage; beats "
         "the Theta(log n) read/write tournament");

  std::printf("\n-- (a) solo passages (pure height term) --\n");
  {
    Table t({"model", "n", "deg", "ht", "tree", "tourn", "tree/norm",
             "tourn/log2n"});
    for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
      const char* m = kind == ModelKind::kCc ? "CC" : "DSM";
      for (int n : {4, 16, 64, 256, 1024}) {
        if (rme::bench::smoke_mode() && n > 64) continue;
        int degree = 0, height = 0;
        const double tree = solo_rmr(
            kind, n, 10,
            [&](auto& sim, int*) {
              auto lk = std::make_unique<core::ArbitrationTree<P>>(
                  sim.world().env, n);
              degree = lk->degree();
              height = lk->height();
              return lk;
            });
        const double tourn = solo_rmr(
            kind, n, 10, [&](auto& sim, int*) {
              return std::make_unique<rlock::TournamentRLock<P>>(
                  sim.world().env, n);
            });
        const double logn = std::log2(static_cast<double>(n));
        const double norm = logn / std::max(1.0, std::log2(logn));
        t.row({m, fmt("%d", n), fmt("%d", degree), fmt("%d", height),
               fmt("%.1f", tree), fmt("%.1f", tourn),
               fmt("%.2f", tree / norm), fmt("%.2f", tourn / logn)});
        json_line("tree_rmr",
                  {{"model", m}, {"mode", "solo"}, {"n", fmt("%d", n)}},
                  {{"degree", static_cast<double>(degree)},
                   {"height", static_cast<double>(height)},
                   {"tree_rmr_per_passage", tree},
                   {"tournament_rmr_per_passage", tourn}});
      }
    }
  }

  std::printf("\n-- (b) all ports contending --\n");
  {
    constexpr uint64_t kIters = 6;
    Table t({"model", "n", "tree", "tourn", "tourn/tree"});
    for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
      const char* m = kind == ModelKind::kCc ? "CC" : "DSM";
      for (int n : {4, 8, 16, 32}) {
        if (rme::bench::smoke_mode() && n > 16) continue;
        auto tree = measure_passages(kind, n, kIters, 11, [&](auto& sim) {
          return std::make_unique<core::ArbitrationTree<P>>(sim.world().env,
                                                            n);
        });
        auto tourn = measure_passages(kind, n, kIters, 11, [&](auto& sim) {
          return std::make_unique<rlock::TournamentRLock<P>>(sim.world().env,
                                                             n);
        });
        RME_ASSERT(tree.ok && tourn.ok, "E4 contended run exhausted");
        t.row({m, fmt("%d", n), fmt("%.1f", tree.rmr_per_passage),
               fmt("%.1f", tourn.rmr_per_passage),
               fmt("%.2f", tourn.rmr_per_passage / tree.rmr_per_passage)});
        json_line("tree_rmr",
                  {{"model", m}, {"mode", "contended"}, {"n", fmt("%d", n)}},
                  {{"tree_rmr_per_passage", tree.rmr_per_passage},
                   {"tournament_rmr_per_passage", tourn.rmr_per_passage}});
      }
    }
  }

  std::printf(
      "\nReading: in (a) the normalised columns are ~flat, i.e. tree ~ "
      "log n/log log n and\ntournament ~ log n; the height column is the "
      "structural witness (ceil(log_d n) << log2 n\nas n grows). (b) shows "
      "the same ordering under full contention.\n");
  return 0;
}

// E1 - Signal object cost (paper Theorem 1).
//
// Claim: set() and wait() each incur O(1) RMRs on both CC and DSM, even
// when wait() blocks for a long time. Contrast: the trivial bit-spin
// Signal is O(1) on CC but incurs one RMR per spin iteration on DSM.
//
// Output: one row per (model, implementation, scenario) with exact RMR
// counts from the instrumented memory model.
#include <memory>

#include "bench_util.hpp"
#include "signal/signal.hpp"

using namespace rme;
using namespace rme::bench;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;

namespace {

struct Cost {
  double set_rmr;
  double wait_rmr;
  uint64_t wait_steps;
};

// Waiter blocks for ~spin_slots scheduler slots before the setter runs.
template <class Sig, class WaitFn>
Cost blocked_handoff(ModelKind kind, int spin_slots, WaitFn do_wait) {
  SimRun sim(kind, 2);
  Sig s;
  // Signal state lives in global (unpartitioned) memory: the implementation
  // cannot know the waiter's identity in advance (Section 2.1). Fig.2 stays
  // O(1) anyway because the spin cell comes from the waiter's partition.
  s.attach(sim.world().env, rmr::kNoOwner);
  s.init_clear();
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      do_wait(s, h);
    } else {
      s.set(h.ctx);
    }
  });
  std::vector<int> script(static_cast<size_t>(spin_slots), 0);
  sim::Scripted pol(script);
  sim::NoCrash nc;
  auto res = sim.run(pol, nc, {1, 1}, 10000000);
  RME_ASSERT(!res.exhausted, "bench_signal: handoff did not complete");
  return Cost{static_cast<double>(sim.world().counters(1).rmrs),
              static_cast<double>(sim.world().counters(0).rmrs),
              sim.world().counters(0).steps};
}

// Pre-set signal: wait() returns on the Bit fast path.
template <class Sig, class WaitFn>
Cost preset_wait(ModelKind kind, WaitFn do_wait) {
  SimRun sim(kind, 2);
  Sig s;
  s.attach(sim.world().env, rmr::kNoOwner);
  s.init_clear();
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 1) {
      s.set(h.ctx);
    } else {
      do_wait(s, h);
    }
  });
  // Setter first, then waiter.
  std::vector<int> script = {1, 1, 1, 1, 1, 1};
  sim::Scripted pol(script);
  sim::NoCrash nc;
  auto res = sim.run(pol, nc, {1, 1}, 10000000);
  RME_ASSERT(!res.exhausted, "bench_signal: preset wait did not complete");
  return Cost{static_cast<double>(sim.world().counters(1).rmrs),
              static_cast<double>(sim.world().counters(0).rmrs),
              sim.world().counters(0).steps};
}

}  // namespace

int main() {
  header("E1", "Signal object RMR cost (set / wait)",
         "Theorem 1(v): O(1) RMR per operation on CC and DSM; the naive "
         "bit-spin alternative is unbounded on DSM");

  using SigG = signal::Signal<platform::Counted>;
  using SigB = signal::BitSignal<platform::Counted>;
  auto wait_g = [](SigG& s, SimProc& h) { s.wait(h.ctx, h.ring); };
  auto wait_b = [](SigB& s, SimProc& h) { s.wait(h.ctx); };

  Table t({"model", "impl", "scenario", "set RMR", "wait RMR", "wait steps"});
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    const char* m = kind == ModelKind::kCc ? "CC" : "DSM";
    auto emit = [&](const char* impl, const std::string& scenario, Cost c) {
      t.row({m, impl, scenario, fmt("%.0f", c.set_rmr),
             fmt("%.0f", c.wait_rmr),
             fmt("%llu", (unsigned long long)c.wait_steps)});
      json_line("signal",
                {{"model", m}, {"impl", impl}, {"scenario", scenario}},
                {{"set_rmr", c.set_rmr},
                 {"wait_rmr", c.wait_rmr},
                 {"wait_steps", static_cast<double>(c.wait_steps)}});
    };
    for (int spins : {50, 500, 5000}) {
      emit("Fig.2", fmt("blocked~%d", spins),
           blocked_handoff<SigG>(kind, spins, wait_g));
    }
    emit("Fig.2", "pre-set", preset_wait<SigG>(kind, wait_g));
    for (int spins : {50, 500, 5000}) {
      emit("bit-spin", fmt("blocked~%d", spins),
           blocked_handoff<SigB>(kind, spins, wait_b));
    }
  }
  std::printf(
      "\nReading: Fig.2 wait RMR stays flat as blocked time grows 100x "
      "(O(1) on both models);\nbit-spin wait RMR tracks blocked time on "
      "DSM (unbounded) but not on CC.\n");
  return 0;
}

// E12 - service-layer acquire latency under open-loop load, per wait
// policy, plus the admission-control overload scenario (shed vs
// collapse).
//
// Not a paper claim: this measures the rme::svc boundary the library now
// exposes - who waits, how long, under which pacing policy, and what the
// session's admission gate buys once arrivals exceed capacity. Each
// thread owns a Session and issues acquisitions on an OPEN-LOOP arrival
// schedule (arrival i is due at start + i*interval regardless of when
// arrival i-1 completed, the traffic model of a serving system), so the
// recorded latency of an acquisition includes the queueing delay a
// saturated lock builds up, not just the service time.
//
// Part 1 (svc_latency): {spin, spin_yield, park, adaptive} x {FAS-only
// non-keyed registry entries + the mcs baseline} at a sustainable
// arrival rate. Part 2 (svc_overload): one lock, arrivals well beyond
// capacity, admission=none vs admission=wait_trend - the no-admission
// baseline's p99 collapses with the queue while the wait_trend gate
// sheds arrivals (Errc::kOverloaded) and keeps the admitted tail
// bounded. Every BENCH_JSON row carries lock=<registry-name>,
// policy=<policy-name> AND admission=<admission-name> plus
// p50_ns/p99_ns (overload rows add shed_rate and handoff counts) - the
// schema the CI bench-smoke job validates.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "harness/world.hpp"
#include "svc/svc.hpp"

using namespace rme;
using namespace rme::bench;
using R = platform::Real;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kThreads = 4;

struct NamedPolicy {
  const char* name;
  platform::WaitPolicy* policy;
};

// A tiny critical section the optimiser cannot delete.
volatile uint64_t g_cs_sink = 0;

// Burn roughly `spins` pause iterations inside the critical section (the
// overload scenario needs a service time big enough that the offered
// load exceeds capacity).
inline void burn_cs(int spins) {
  for (int i = 0; i < spins; ++i) {
    g_cs_sink = g_cs_sink + 1;
    platform::cpu_pause();
  }
}

struct LatencySummary {
  int threads = 0;  // actual count (kThreads clamped to the lock's max)
  double p50_ns = 0;
  double p99_ns = 0;
  double max_ns = 0;
  double achieved_ops_per_sec = 0;
  uint64_t admitted = 0;
  uint64_t sheds = 0;
  uint64_t handoffs = 0;  // sum of SessionStats::handoff_rmrs
  uint64_t releases = 0;
  double shed_rate() const {
    const uint64_t offered = admitted + sheds;
    return offered > 0 ? static_cast<double>(sheds) /
                             static_cast<double>(offered)
                       : 0.0;
  }
};

// One open-loop run. `gated` installs a per-session WaitTrendAdmission;
// shed arrivals are counted but produce no latency sample (the caller
// got an immediate kOverloaded instead of queueing).
template <class L>
LatencySummary run_open_loop(platform::WaitPolicy* policy, uint64_t ops,
                             std::chrono::nanoseconds interval, bool gated,
                             int cs_spins) {
  const int n = api::clamp_processes(api::lock_traits_v<L>, kThreads);
  harness::RealWorld w(n);
  L lock(w.env, n);

  std::vector<std::vector<double>> lat(static_cast<size_t>(n));
  std::vector<svc::SessionStats> stats(static_cast<size_t>(n));
  const Clock::time_point start = Clock::now() + std::chrono::milliseconds(2);

  std::vector<std::thread> ts;
  ts.reserve(static_cast<size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    ts.emplace_back([&, pid] {
      auto& mine = lat[static_cast<size_t>(pid)];
      mine.reserve(ops);
      // Admission is per-session state: one estimator per thread.
      std::unique_ptr<svc::WaitTrendAdmission> gate;
      if (gated) gate = std::make_unique<svc::WaitTrendAdmission>();
      svc::Session<L> session(lock, w.proc(pid), pid, policy, gate.get());
      // Stagger streams so arrivals interleave instead of phase-locking.
      const auto offset = interval * pid / n;
      for (uint64_t i = 0; i < ops; ++i) {
        const Clock::time_point due = start + offset + interval * i;
        while (Clock::now() < due) platform::cpu_pause();
        auto g = session.acquire();
        if (!g.has_value()) continue;  // kOverloaded: shed, no sample
        const Clock::time_point got = Clock::now();
        burn_cs(cs_spins);
        g->release();
        mine.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(due < got
                                                                     ? got - due
                                                                     : Clock::duration::zero())
                .count());
      }
      stats[static_cast<size_t>(pid)] = session.stats();
    });
  }
  for (auto& t : ts) t.join();

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  LatencySummary out;
  out.threads = n;
  for (const auto& st : stats) {
    out.admitted += st.acquires;
    out.sheds += st.sheds;
    out.handoffs += st.handoff_rmrs;
    out.releases += st.releases;
  }
  if (all.empty()) return out;
  out.p50_ns = all[all.size() / 2];
  out.p99_ns = all[(all.size() * 99) / 100];
  out.max_ns = all.back();
  const double span_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  out.achieved_ops_per_sec =
      span_s > 0 ? static_cast<double>(all.size()) / span_s : 0;
  return out;
}

template <class L>
void bench_entry(uint64_t ops, std::chrono::nanoseconds interval) {
  // Fresh policy objects per entry: AdaptivePolicy's spin-to-park latch
  // is one-way, so a shared instance would label pure-parking runs
  // "adaptive" for every entry after the first contended one.
  platform::SpinPolicy spin;
  platform::SpinYieldPolicy spin_yield;
  platform::ParkPolicy park;  // shared by the entry's sessions: fair handoff
  platform::AdaptivePolicy adaptive;
  const std::vector<NamedPolicy> policies = {
      {platform::SpinPolicy::kName, &spin},
      {platform::SpinYieldPolicy::kName, &spin_yield},
      {platform::ParkPolicy::kName, &park},
      {platform::AdaptivePolicy::kName, &adaptive},
  };
  std::printf("lock=%s\n", L::kName);
  Table t({"policy", "p50(ns)", "p99(ns)", "max(ns)", "handoffs"});
  for (const NamedPolicy& np : policies) {
    const LatencySummary s =
        run_open_loop<L>(np.policy, ops, interval, /*gated=*/false,
                         /*cs_spins=*/1);
    t.row({np.name, fmt("%.0f", s.p50_ns), fmt("%.0f", s.p99_ns),
           fmt("%.0f", s.max_ns), fmt("%llu", (unsigned long long)s.handoffs)});
    json_line("svc_latency",
              {{"lock", L::kName},
               {"policy", np.name},
               {"admission", "none"},
               {"threads", fmt("%d", s.threads)},
               {"interval_ns", fmt("%lld", static_cast<long long>(
                                               interval.count()))}},
              {{"p50_ns", s.p50_ns},
               {"p99_ns", s.p99_ns},
               {"ops_per_sec", s.achieved_ops_per_sec},
               {"handoff_rmrs", static_cast<double>(s.handoffs)}});
  }
}

// Part 2: offered load far beyond capacity; admission=none vs
// admission=wait_trend on the same lock+policy.
template <class L>
void bench_overload(platform::WaitPolicy* policy, const char* policy_name,
                    uint64_t ops, std::chrono::nanoseconds interval,
                    int cs_spins) {
  std::printf("\n-- overload: lock=%s policy=%s (%lldns inter-arrival, "
              "heavy CS) --\n",
              L::kName, policy_name,
              static_cast<long long>(interval.count()));
  Table t({"admission", "p50(ns)", "p99(ns)", "max(ns)", "shed%"});
  for (const bool gated : {false, true}) {
    const LatencySummary s =
        run_open_loop<L>(policy, ops, interval, gated, cs_spins);
    const char* admission = gated ? svc::WaitTrendAdmission::kName : "none";
    t.row({admission, fmt("%.0f", s.p50_ns), fmt("%.0f", s.p99_ns),
           fmt("%.0f", s.max_ns), fmt("%.1f", 100.0 * s.shed_rate())});
    json_line("svc_overload",
              {{"lock", L::kName},
               {"policy", policy_name},
               {"admission", admission},
               {"threads", fmt("%d", s.threads)},
               {"interval_ns", fmt("%lld", static_cast<long long>(
                                               interval.count()))}},
              {{"p50_ns", s.p50_ns},
               {"p99_ns", s.p99_ns},
               {"shed_rate", s.shed_rate()},
               {"admitted_ops_per_sec", s.achieved_ops_per_sec},
               {"handoff_rmrs", static_cast<double>(s.handoffs)}});
  }
}

}  // namespace

int main() {
  header("E12", "session acquire latency per wait policy + admission "
         "(open-loop load)",
         "service-boundary cost model: spin buys tail latency with cores, "
         "park buys cores with tail latency, admission buys bounded tails "
         "with shed arrivals; the lock underneath keeps its RMR bound "
         "either way");

  const uint64_t ops = smoke_iters(2000, 50);
  const auto interval = std::chrono::microseconds(5);

  std::printf(
      "\n-- %d threads, one open-loop stream each (%lldus inter-arrival) "
      "--\n",
      kThreads,
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::microseconds>(interval)
              .count()));

  // The three core FAS-only non-keyed entries...
  api::for_each_lock_if<R>(
      [](const api::Traits& t) {
        return t.rmw == api::Rmw::kFasOnly &&
               t.addressing != api::Addressing::kKeyed && t.recoverable;
      },
      [&](auto tag) {
        using L = typename decltype(tag)::type;
        bench_entry<L>(ops, interval);
      });
  // ...and the classical non-recoverable floor for contrast.
  api::for_each_lock_if<R>(
      [](const api::Traits& t) { return t.rmw == api::Rmw::kCas; },
      [&](auto tag) {
        using L = typename decltype(tag)::type;
        bench_entry<L>(ops, interval);
      });

  // Overload: arrivals every 2us/thread against a multi-microsecond
  // critical section = offered load far beyond capacity. ParkPolicy on
  // purpose: waiters sleep instead of burning cores, so the lock's own
  // queue is the system's queue and the session-visible wait IS the
  // queueing delay the wait_trend gate judges. Without admission that
  // queue (and the recorded delay) grows for the whole run; with the
  // gate most arrivals shed (kOverloaded) and the admitted p99 stays
  // bounded. The fair handoff is visible here too: handoff_rmrs counts
  // one unpark per release with parked rivals.
  {
    platform::ParkPolicy::Options popt;
    popt.spin_limit = 4;  // park early: the queue is long by construction,
    popt.yield_limit = 8;  // so spinning longer only burns the CS's core
    platform::ParkPolicy overload_policy(popt);
    bench_overload<api::LeasedLock<R>>(
        &overload_policy, platform::ParkPolicy::kName,
        smoke_iters(1500, 40), std::chrono::microseconds(2),
        /*cs_spins=*/600);
  }

  std::printf(
      "\nReading: p50 is service time (mostly policy-independent); p99 is "
      "where the\npolicies separate - spin holds the tail down while cores "
      "last, park trades\ntail latency for freed cores (timed parks bound "
      "the damage; the fair handoff\nwakes exactly one waiter per release - "
      "handoff_rmrs in the rows). In the\noverload section the no-admission "
      "row's p99 is queueing collapse; the\nwait_trend row sheds "
      "(kOverloaded) and keeps the admitted tail bounded.\n");
  return 0;
}

// E12 - service-layer acquire latency under open-loop load, per wait
// policy.
//
// Not a paper claim: this measures the rme::svc boundary the library now
// exposes - who waits, how long, under which pacing policy. Each thread
// owns a Session and issues acquisitions on an OPEN-LOOP arrival
// schedule (arrival i is due at start + i*interval regardless of when
// arrival i-1 completed, the traffic model of a serving system), so the
// recorded latency of an acquisition includes the queueing delay a
// saturated lock builds up, not just the service time.
//
// Swept: {spin, spin_yield, park} x {FAS-only non-keyed registry entries
// + the mcs baseline} x one thread count. Every BENCH_JSON row carries
// lock=<registry-name> AND policy=<policy-name> plus p50_ns/p99_ns - the
// schema the CI bench-smoke job validates.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "harness/world.hpp"
#include "svc/svc.hpp"

using namespace rme;
using namespace rme::bench;
using R = platform::Real;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kThreads = 4;

struct NamedPolicy {
  const char* name;
  platform::WaitPolicy* policy;
};

// A tiny critical section the optimiser cannot delete.
volatile uint64_t g_cs_sink = 0;

struct LatencySummary {
  int threads = 0;  // actual count (kThreads clamped to the lock's max)
  double p50_ns = 0;
  double p99_ns = 0;
  double max_ns = 0;
  double achieved_ops_per_sec = 0;
};

template <class L>
LatencySummary run_open_loop(platform::WaitPolicy* policy, uint64_t ops,
                             std::chrono::nanoseconds interval) {
  const int n = api::clamp_processes(api::lock_traits_v<L>, kThreads);
  harness::RealWorld w(n);
  L lock(w.env, n);

  std::vector<std::vector<double>> lat(static_cast<size_t>(n));
  const Clock::time_point start = Clock::now() + std::chrono::milliseconds(2);

  std::vector<std::thread> ts;
  ts.reserve(static_cast<size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    ts.emplace_back([&, pid] {
      auto& mine = lat[static_cast<size_t>(pid)];
      mine.reserve(ops);
      svc::Session<L> session(lock, w.proc(pid), pid, policy);
      // Stagger streams so arrivals interleave instead of phase-locking.
      const auto offset = interval * pid / n;
      for (uint64_t i = 0; i < ops; ++i) {
        const Clock::time_point due = start + offset + interval * i;
        while (Clock::now() < due) platform::cpu_pause();
        auto g = session.acquire();
        const Clock::time_point got = Clock::now();
        g_cs_sink = g_cs_sink + 1;
        g.release();
        mine.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(due < got
                                                                     ? got - due
                                                                     : Clock::duration::zero())
                .count());
      }
    });
  }
  for (auto& t : ts) t.join();

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  LatencySummary out;
  out.threads = n;
  if (all.empty()) return out;
  out.p50_ns = all[all.size() / 2];
  out.p99_ns = all[(all.size() * 99) / 100];
  out.max_ns = all.back();
  const double span_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  out.achieved_ops_per_sec =
      span_s > 0 ? static_cast<double>(all.size()) / span_s : 0;
  return out;
}

template <class L>
void bench_entry(const std::vector<NamedPolicy>& policies, uint64_t ops,
                 std::chrono::nanoseconds interval) {
  std::printf("lock=%s\n", L::kName);
  Table t({"policy", "p50(ns)", "p99(ns)", "max(ns)"});
  for (const NamedPolicy& np : policies) {
    const LatencySummary s = run_open_loop<L>(np.policy, ops, interval);
    t.row({np.name, fmt("%.0f", s.p50_ns), fmt("%.0f", s.p99_ns),
           fmt("%.0f", s.max_ns)});
    json_line("svc_latency",
              {{"lock", L::kName},
               {"policy", np.name},
               {"threads", fmt("%d", s.threads)},
               {"interval_ns", fmt("%lld", static_cast<long long>(
                                               interval.count()))}},
              {{"p50_ns", s.p50_ns},
               {"p99_ns", s.p99_ns},
               {"ops_per_sec", s.achieved_ops_per_sec}});
  }
}

}  // namespace

int main() {
  header("E12", "session acquire latency per wait policy (open-loop load)",
         "service-boundary cost model: spin buys tail latency with cores, "
         "park buys cores with tail latency; the lock underneath keeps its "
         "RMR bound either way");

  const uint64_t ops = smoke_iters(2000, 50);
  const auto interval = std::chrono::microseconds(5);

  platform::SpinPolicy spin;
  platform::SpinYieldPolicy spin_yield;
  platform::ParkPolicy park;  // shared: releases unpark rival waiters
  const std::vector<NamedPolicy> policies = {
      {platform::SpinPolicy::kName, &spin},
      {platform::SpinYieldPolicy::kName, &spin_yield},
      {platform::ParkPolicy::kName, &park},
  };

  std::printf(
      "\n-- %d threads, one open-loop stream each (%lldus inter-arrival) "
      "--\n",
      kThreads,
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::microseconds>(interval)
              .count()));

  // The three core FAS-only non-keyed entries...
  api::for_each_lock_if<R>(
      [](const api::Traits& t) {
        return t.rmw == api::Rmw::kFasOnly &&
               t.addressing != api::Addressing::kKeyed && t.recoverable;
      },
      [&](auto tag) {
        using L = typename decltype(tag)::type;
        bench_entry<L>(policies, ops, interval);
      });
  // ...and the classical non-recoverable floor for contrast.
  api::for_each_lock_if<R>(
      [](const api::Traits& t) { return t.rmw == api::Rmw::kCas; },
      [&](auto tag) {
        using L = typename decltype(tag)::type;
        bench_entry<L>(policies, ops, interval);
      });

  std::printf(
      "\nReading: p50 is service time (mostly policy-independent); p99 is "
      "where the\npolicies separate - spin holds the tail down while cores "
      "last, park trades\ntail latency for freed cores (timed parks bound "
      "the damage; shared-policy\nunparks reclaim most of it).\n");
  return 0;
}

// E6 - Wait-free critical-section re-entry (paper Lemma 7).
//
// Claim: a process that crashes inside the CS re-enters it within a
// bounded number of its own steps (Line 20 fast path), with every other
// port contending, for both the flat k-ported lock and the arbitration
// tree (where the bound is O(height)).
#include <memory>

#include "bench_util.hpp"
#include "core/arbitration_tree.hpp"
#include "core/rme_lock.hpp"

using namespace rme;
using namespace rme::bench;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

namespace {

// Crash pid 0 at its first op after `armed` flips true (set inside CS).
class ArmedCrash final : public sim::CrashPlan {
 public:
  bool armed = false;
  bool fired = false;
  bool should_crash(int pid, uint64_t, rmr::Op) override {
    if (pid != 0 || fired || !armed) return false;
    fired = true;
    return true;
  }
};

template <class MakeLock>
uint64_t reentry_steps(ModelKind kind, int n, MakeLock make, int* height) {
  SimRun sim(kind, n);
  auto lk = make(sim, height);
  ArmedCrash plan;
  uint64_t steps = 0;
  platform::Counted::Atomic<int> probe;
  probe.attach(sim.world().env, rmr::kNoOwner);
  probe.init(0);
  sim.set_body([&](SimProc& h, int pid) {
    const uint64_t before = h.ctx.step_index;
    lk->lock(h, pid);
    if (pid == 0 && plan.fired && steps == 0) {
      steps = h.ctx.step_index - before;
    }
    if (pid == 0 && !plan.fired) plan.armed = true;
    for (int i = 0; i < 4; ++i) probe.store(h.ctx, pid);
    lk->unlock(h, pid);
  });
  sim::SeededRandom pol(29);
  // Height (not contender count) is the scaling variable: keep 4 active
  // contenders regardless of n, so big-n rows stay simulable.
  std::vector<uint64_t> iters(static_cast<size_t>(n), 0);
  for (int q = 0; q < n && q < 4; ++q) iters[static_cast<size_t>(q)] = 6;
  auto res = sim.run(pol, plan, iters, 80000000);
  RME_ASSERT(!res.exhausted, "E6 run exhausted");
  RME_ASSERT(plan.fired, "E6: crash never fired");
  RME_ASSERT(steps > 0, "E6: reentry not observed");
  return steps;
}

}  // namespace

int main() {
  header("E6", "steps from crash-in-CS to CS re-entry, under contention",
         "Wait-free CSR (Lemma 7): bounded own-steps via the Line 20 fast "
         "path; O(height) for the tree");

  Table t({"model", "lock", "n/k", "height", "re-entry steps"});
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    const char* m = kind == ModelKind::kCc ? "CC" : "DSM";
    for (int k : {2, 4, 8, 16, 32}) {
      int h = 1;
      const uint64_t s = reentry_steps(
          kind, k,
          [&](auto& sim, int*) {
            return std::make_unique<core::RmeLock<P>>(sim.world().env, k);
          },
          &h);
      t.row({m, "flat", fmt("%d", k), "1", fmt("%llu", (unsigned long long)s)});
      json_line("csr_steps", {{"model", m}, {"lock", "flat"}, {"n", fmt("%d", k)}},
                {{"height", 1.0}, {"reentry_steps", static_cast<double>(s)}});
    }
    for (int n : {4, 16, 64, 256}) {
      int h = 0;
      const uint64_t s = reentry_steps(
          kind, n,
          [&](auto& sim, int* out_h) {
            auto lk = std::make_unique<core::ArbitrationTree<P>>(
                sim.world().env, n);
            *out_h = lk->height();
            return lk;
          },
          &h);
      t.row({m, "tree", fmt("%d", n), fmt("%d", h),
             fmt("%llu", (unsigned long long)s)});
      json_line("csr_steps", {{"model", m}, {"lock", "tree"}, {"n", fmt("%d", n)}},
                {{"height", static_cast<double>(h)},
                 {"reentry_steps", static_cast<double>(s)}});
    }
  }
  std::printf(
      "\nReading: flat-lock re-entry is a small constant independent of k "
      "(and of the waiters);\ntree re-entry grows only with height = "
      "O(log n / log log n), never with n itself.\n");
  return 0;
}

// Ablations - design choices called out in DESIGN.md, each isolated:
//
//   A1  Tree degree: RMR per passage and per recovery vs degree d at
//       fixed n. Crash-free passages favour the largest degree (fewer
//       levels, constant per level); recovery favours small degrees
//       (repair scans are O(d) per node). The paper's
//       d = log n / log log n balances the two - visible as the product
//       height * (c1 + c2 d) minimised near the middle.
//
//   A2  QSBR node recycling: arena growth with recycling on vs off
//       (verbatim paper mode) over a long run - the memory-boundedness
//       argument for deviating from the paper's allocate-per-passage.
//
//   A3  Signal-based waiting vs bit-spin waiting inside R2Lock-style
//       handoff is covered by E1 (bench_signal); here we add the repair
//       NonNil wait: how much of a recovery's cost is signal traffic.
#include <memory>

#include "bench_util.hpp"
#include "core/arbitration_tree.hpp"
#include "core/rme_lock.hpp"

using namespace rme;
using namespace rme::bench;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

namespace {

double solo_tree_rmr(ModelKind kind, int n, int degree, int* height) {
  SimRun sim(kind, n);
  core::ArbitrationTree<P> t(sim.world().env, n, {.degree = degree});
  *height = t.height();
  sim.set_body([&](SimProc& h, int pid) {
    t.lock(h, pid);
    t.unlock(h, pid);
  });
  sim::RoundRobin rr;
  sim::NoCrash nc;
  std::vector<uint64_t> per(static_cast<size_t>(n), 0);
  per[0] = 8;
  auto res = sim.run(rr, nc, per, 100000000);
  RME_ASSERT(!res.exhausted, "A1 run exhausted");
  return static_cast<double>(sim.world().counters(0).rmrs) / 8.0;
}

// One crash-after-FAS recovery at the leaf level of a tree of degree d.
double tree_recovery_rmr(ModelKind kind, int n, int degree) {
  SimRun sim(kind, n);
  core::ArbitrationTree<P> t(sim.world().env, n, {.degree = degree});
  uint64_t before = 0;
  double rmrs = -1;
  bool crashed = false;
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) {
      before = h.ctx.counters.rmrs;
      t.lock(h, 0);
      if (crashed && rmrs < 0) {
        rmrs = static_cast<double>(h.ctx.counters.rmrs - before);
      }
      t.unlock(h, 0);
    } else {
      t.lock(h, pid);
      t.unlock(h, pid);
    }
  });
  struct Plan final : sim::CrashPlan {
    bool* flag;
    sim::CrashAroundFas inner{0, 1, sim::CrashAroundFas::kAfter};
    explicit Plan(bool* f) : flag(f) {}
    bool should_crash(int pid, uint64_t step, rmr::Op op) override {
      if (inner.should_crash(pid, step, op)) {
        *flag = true;
        return true;
      }
      return false;
    }
  } plan(&crashed);
  sim::SeededRandom pol(5);
  // A few sibling contenders so the repair scan sees occupied ports.
  std::vector<uint64_t> per(static_cast<size_t>(n), 0);
  for (int q = 0; q < n && q < degree; ++q) per[static_cast<size_t>(q)] = 4;
  auto res = sim.run(pol, plan, per, 100000000);
  RME_ASSERT(!res.exhausted, "A1 recovery run exhausted");
  RME_ASSERT(rmrs >= 0, "A1: no recovery observed");
  return rmrs;
}

}  // namespace

int main() {
  header("A1-A2", "design ablations",
         "degree choice d = log n/log log n balances passage vs recovery "
         "cost; QSBR bounds memory the paper leaks");

  std::printf("\n-- A1: tree degree sweep at n = 64 (DSM model) --\n");
  {
    Table t({"degree", "height", "passage RMR", "recovery RMR"});
    for (int d : {2, 3, 4, 8, 64}) {
      int height = 0;
      const double pass = solo_tree_rmr(ModelKind::kDsm, 64, d, &height);
      const double rec = tree_recovery_rmr(ModelKind::kDsm, 64, d);
      t.row({fmt("%d", d), fmt("%d", height), fmt("%.1f", pass),
             fmt("%.0f", rec)});
      json_line("ablation_tree_degree",
                {{"model", "DSM"}, {"n", "64"}, {"degree", fmt("%d", d)}},
                {{"height", static_cast<double>(height)},
                 {"passage_rmr", pass},
                 {"recovery_rmr", rec}});
    }
    std::printf(
        "Reading: passage RMR ~ height (favours big d); recovery RMR ~ "
        "height + d (the crashed\nnode's O(d) repair scan favours small "
        "d). d = log n/log log n sits at the knee.\n");
  }

  std::printf("\n-- A2: node-arena growth, recycling on vs off (k=4) --\n");
  {
    Table t({"passages", "alloc (recycle)", "alloc (verbatim)"});
    for (uint64_t iters : {10u, 40u, 160u}) {
      if (rme::bench::smoke_mode() && iters > 40u) continue;
      uint64_t alloc_on = 0, alloc_off = 0;
      for (bool recycle : {true, false}) {
        SimRun sim(ModelKind::kCc, 4);
        typename core::RmeLock<P>::Options opt;
        opt.recycle = recycle;
        core::RmeLock<P> lk(sim.world().env, 4, opt);
        sim.set_body([&](SimProc& h, int pid) {
          lk.lock(h, pid);
          lk.unlock(h, pid);
        });
        sim::SeededRandom pol(9);
        sim::NoCrash nc;
        std::vector<uint64_t> per(4, iters);
        auto res = sim.run(pol, nc, per, 100000000);
        RME_ASSERT(!res.exhausted, "A2 run exhausted");
        (recycle ? alloc_on : alloc_off) = lk.nodes_allocated();
      }
      t.row({fmt("%llu", (unsigned long long)(4 * iters)),
             fmt("%llu", (unsigned long long)alloc_on),
             fmt("%llu", (unsigned long long)alloc_off)});
      json_line("ablation_qsbr",
                {{"model", "CC"}, {"k", "4"},
                 {"passages", fmt("%llu", (unsigned long long)(4 * iters))}},
                {{"alloc_recycle", static_cast<double>(alloc_on)},
                 {"alloc_verbatim", static_cast<double>(alloc_off)}});
    }
    std::printf(
        "Reading: verbatim mode allocates one node per passage (the "
        "paper's Line 11); QSBR\nplateaus at ~2k+4 nodes per port "
        "regardless of run length.\n");
  }
  return 0;
}

// E2 - Crash-free passage RMR vs port count (paper Theorem 2).
//
// Claim: a process that does not crash during its passage incurs O(1)
// RMRs, on CC and DSM, independent of the number of ports k. Baselines:
// MCS (the non-recoverable O(1) floor) and the binary tournament RLock
// (the O(log k) read/write-style recoverable alternative - the best
// possible without FAS-class primitives, per Attiya et al.).
#include <memory>

#include "baselines/mcs.hpp"
#include "bench_util.hpp"
#include "core/rme_lock.hpp"
#include "rlock/tournament.hpp"

using namespace rme;
using namespace rme::bench;
using harness::ModelKind;
using P = platform::Counted;

int main() {
  header("E2", "crash-free passage RMR vs k (all ports contending)",
         "Theorem 2: O(1) RMR per crash-free passage on CC and DSM, "
         "independent of k");

  const uint64_t kIters = smoke_iters(12, 3);
  Table t({"model", "k", "RmeLock", "MCS", "tournament", "tourn/Rme"});
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    const char* m = kind == ModelKind::kCc ? "CC" : "DSM";
    for (int k : {2, 4, 8, 16, 32, 64}) {
      if (smoke_mode() && k > 16) continue;  // the big-k tournament is slow
      auto ours = measure_passages(kind, k, kIters, 42, [&](auto& sim) {
        return std::make_unique<core::RmeLock<P>>(sim.world().env, k);
      });
      auto mcs = measure_passages(kind, k, kIters, 42, [&](auto& sim) {
        return std::make_unique<baselines::McsLock<P>>(sim.world().env, k);
      });
      auto tourn = measure_passages(kind, k, kIters, 42, [&](auto& sim) {
        return std::make_unique<rlock::TournamentRLock<P>>(sim.world().env,
                                                           k);
      });
      RME_ASSERT(ours.ok && mcs.ok && tourn.ok, "E2 run exhausted");
      t.row({m, fmt("%d", k), fmt("%.1f", ours.rmr_per_passage),
             fmt("%.1f", mcs.rmr_per_passage),
             fmt("%.1f", tourn.rmr_per_passage),
             fmt("%.2f", tourn.rmr_per_passage / ours.rmr_per_passage)});
      json_line("passage_rmr", {{"model", m}, {"k", fmt("%d", k)}},
                {{"rme_rmr_per_passage", ours.rmr_per_passage},
                 {"mcs_rmr_per_passage", mcs.rmr_per_passage},
                 {"tournament_rmr_per_passage", tourn.rmr_per_passage}});
    }
  }
  std::printf(
      "\nReading: RmeLock and MCS columns stay flat in k (O(1)); the "
      "tournament column grows\nwith log2(k) - the separation that FAS "
      "buys over read/write-only recoverable locks.\n");
  return 0;
}

// E3 - Super-passage RMR vs number of crashes f (paper Theorem 2).
//
// Claim: a process that crashes f times during its super-passage incurs
// O(f * k) RMRs. We crash port 0 exactly f times around its FAS /
// recovery path within one super-passage, for several k, and report the
// measured RMRs of that super-passage alongside f*k.
#include <memory>

#include "bench_util.hpp"
#include "core/rme_lock.hpp"

using namespace rme;
using namespace rme::bench;
using harness::ModelKind;
using harness::Scenario;
using harness::SimProc;
using P = platform::Counted;

namespace {

// Crash pid 0 f times: once right after its first FAS, then every
// `gap` steps while its super-passage is still incomplete.
class RepeatCrash final : public sim::CrashPlan {
 public:
  RepeatCrash(int f, uint64_t gap) : remaining_(f), gap_(gap) {}
  bool should_crash(int pid, uint64_t step, rmr::Op op) override {
    if (pid != 0 || remaining_ <= 0) return false;
    if (!armed_) {
      if (op == rmr::Op::kFas) armed_ = true;  // first FAS: arm
      return false;
    }
    if (next_ == 0) next_ = step + 1;
    if (step >= next_) {
      next_ = step + gap_;
      --remaining_;
      return true;
    }
    return false;
  }

 private:
  int remaining_;
  uint64_t gap_;
  bool armed_ = false;
  uint64_t next_ = 0;
};

struct SuperCost {
  double rmrs;
  uint64_t crashes;
};

SuperCost super_passage_cost(ModelKind kind, int k, int f) {
  Scenario<P> s(kind, k);
  core::RmeLock<P> lk(s.world().env, k);
  s.set_body([&](SimProc& h, int pid) {
    lk.lock(h, pid);
    lk.unlock(h, pid);
  });
  s.set_crash_plan(std::make_unique<RepeatCrash>(f, 12));
  s.use_random_schedule(7);
  s.set_iterations(1);
  s.set_max_steps(80000000);
  auto res = s.run();
  RME_ASSERT(res.ok(), "E3 run exhausted");
  return SuperCost{static_cast<double>(s.world().counters(0).rmrs),
                   res.crashes[0]};
}

}  // namespace

int main() {
  header("E3", "super-passage RMR vs crash count f (port 0 crashing)",
         "Theorem 2: O(f k) RMR for a super-passage with f crashes");

  Table t({"model", "k", "f", "crashes", "RMRs", "RMR/(1+f)k"});
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    const char* m = kind == ModelKind::kCc ? "CC" : "DSM";
    for (int k : {4, 8, 16}) {
      for (int f : {0, 1, 2, 4, 8}) {
        auto c = super_passage_cost(kind, k, f);
        const double norm =
            c.rmrs / ((1.0 + static_cast<double>(c.crashes)) * k);
        t.row({m, fmt("%d", k), fmt("%d", f),
               fmt("%llu", (unsigned long long)c.crashes),
               fmt("%.0f", c.rmrs), fmt("%.2f", norm)});
        json_line("crash_rmr",
                  {{"model", m}, {"k", fmt("%d", k)}, {"f", fmt("%d", f)}},
                  {{"crashes", static_cast<double>(c.crashes)},
                   {"rmrs", c.rmrs},
                   {"rmr_per_1pf_k", norm}});
      }
    }
  }
  std::printf(
      "\nReading: the RMR column grows with f, and the normalised column "
      "RMR/((1+f)k) stays\nbounded by a constant - the O((1+f)k) shape of "
      "Theorem 2. (Each crash pays one O(k)\nrepair scan; crash-free rows "
      "show the O(1) base cost.)\n");
  return 0;
}

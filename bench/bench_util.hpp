// Shared helpers for the experiment binaries (E1-E10, see DESIGN.md /
// EXPERIMENTS.md). Each bench prints a self-describing table; run
// `build/bench/<name>` directly, no arguments needed.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/sim_run.hpp"
#include "harness/world.hpp"

namespace rme::bench {

inline void header(const char* exp_id, const char* title,
                   const char* claim) {
  std::printf("== %s: %s\n", exp_id, title);
  std::printf("   paper claim: %s\n", claim);
}

class Table {
 public:
  explicit Table(std::vector<std::string> cols) : cols_(std::move(cols)) {
    for (const auto& c : cols_) std::printf("%14s", c.c_str());
    std::printf("\n");
    for (size_t i = 0; i < cols_.size(); ++i) std::printf("%14s", "------");
    std::printf("\n");
  }
  void row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) std::printf("%14s", c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> cols_;
};

inline std::string fmt(const char* f, ...) {
  char buf[128];
  va_list ap;
  va_start(ap, f);
  vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

// Run `iters` lock/unlock passages per port on a fresh sim world and
// return mean RMRs per passage (plus optional per-port breakdown).
struct PassageCost {
  double rmr_per_passage = 0;
  double steps_per_passage = 0;
  uint64_t passages = 0;
  bool ok = false;
};

template <class MakeLock>
PassageCost measure_passages(harness::ModelKind kind, int n, uint64_t iters,
                             uint64_t seed, MakeLock make,
                             sim::CrashPlan* crash = nullptr,
                             uint64_t max_steps = 80000000) {
  harness::SimRun sim(kind, n);
  auto lk = make(sim);
  sim.set_body([&](harness::SimProc& h, int pid) {
    lk->lock(h, pid);
    lk->unlock(h, pid);
  });
  sim::SeededRandom pol(seed);
  sim::NoCrash nc;
  std::vector<uint64_t> per(static_cast<size_t>(n), iters);
  auto res = sim.run(pol, crash != nullptr ? *crash : nc, per, max_steps);
  PassageCost out;
  out.ok = !res.exhausted;
  uint64_t rmrs = 0, steps = 0;
  for (int p = 0; p < n; ++p) {
    rmrs += sim.world().counters(p).rmrs;
    steps += sim.world().counters(p).steps;
    out.passages += res.completions[static_cast<size_t>(p)];
  }
  if (out.passages > 0) {
    out.rmr_per_passage =
        static_cast<double>(rmrs) / static_cast<double>(out.passages);
    out.steps_per_passage =
        static_cast<double>(steps) / static_cast<double>(out.passages);
  }
  return out;
}

}  // namespace rme::bench

// Shared helpers for the experiment binaries (E1-E10, see DESIGN.md /
// EXPERIMENTS.md). Each bench prints a self-describing table for humans
// AND one machine-readable JSON line per measurement (prefixed
// "BENCH_JSON ") so the perf trajectory can be scraped:
//
//   BENCH_JSON {"bench":"passage_rmr","model":"CC","k":8,"rmr_per_passage":7.00}
//
// Run `build/bench/<name>` directly, no arguments needed.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/sim_run.hpp"
#include "harness/world.hpp"
#include "util/json.hpp"

namespace rme::bench {

inline void header(const char* exp_id, const char* title,
                   const char* claim) {
  std::printf("== %s: %s\n", exp_id, title);
  std::printf("   paper claim: %s\n", claim);
}

// ---------------------------------------------------------------------------
// Smoke mode: RME_BENCH_SMOKE=1 shrinks every bench to a seconds-long
// sanity run (CI runs all benches this way and validates the BENCH_JSON
// schema; numbers are meaningless, plumbing is not). Benches route their
// iteration constants through smoke_iters().
// ---------------------------------------------------------------------------
inline bool smoke_mode() {
  const char* e = std::getenv("RME_BENCH_SMOKE");
  return e != nullptr && *e != '\0' && *e != '0';
}

inline uint64_t smoke_iters(uint64_t full, uint64_t smoke = 4) {
  return smoke_mode() ? (full < smoke ? full : smoke) : full;
}

class Table {
 public:
  explicit Table(std::vector<std::string> cols) : cols_(std::move(cols)) {
    for (const auto& c : cols_) std::printf("%14s", c.c_str());
    std::printf("\n");
    for (size_t i = 0; i < cols_.size(); ++i) std::printf("%14s", "------");
    std::printf("\n");
  }
  void row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) std::printf("%14s", c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> cols_;
};

inline std::string fmt(const char* f, ...) {
  char buf[128];
  va_list ap;
  va_start(ap, f);
  vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

// ---------------------------------------------------------------------------
// Machine-readable output. One call per measurement:
//
//   json_line("passage_rmr",
//             {{"model", "CC"}, {"k", "8"}},          // params (strings)
//             {{"rmr_per_passage", 7.0}});            // metrics (numbers)
// ---------------------------------------------------------------------------
using JsonParams = std::vector<std::pair<std::string, std::string>>;
using JsonMetrics = std::vector<std::pair<std::string, double>>;

using rme::util::json_escape;

// True when the string is a plain number, so params like {"k","8"} emit
// unquoted and stay numbers for downstream tooling. strtod-based (wider
// than util::json_is_number): exponent-notation params stay unquoted.
inline bool json_is_number(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

// Rendered by the shared util::JsonLine (kCompact: the BENCH_JSON schema
// predates the spaced style and tools/check_bench_json.py pins it).
inline void json_line(const std::string& bench, const JsonParams& params,
                      const JsonMetrics& metrics) {
  util::JsonLine j("BENCH_JSON", util::JsonStyle::kCompact);
  j.str("bench", bench);
  for (const auto& [k, v] : params) {
    if (json_is_number(v)) {
      j.raw(k, v);
    } else {
      j.str(k, v);
    }
  }
  for (const auto& [k, v] : metrics) j.num(k, v);
  std::printf("%s\n", j.str().c_str());
}

// Non-owning crash-plan adapter: Scenario owns its plan, benches often
// stack-allocate theirs.
class BorrowedCrashPlan final : public sim::CrashPlan {
 public:
  explicit BorrowedCrashPlan(sim::CrashPlan* inner) : inner_(inner) {}
  bool should_crash(int pid, uint64_t step, rmr::Op op) override {
    return inner_->should_crash(pid, step, op);
  }

 private:
  sim::CrashPlan* inner_;
};

// Run `iters` lock/unlock passages per port on a fresh scenario world and
// return mean RMRs per passage. The lock factory receives the Scenario
// (its world().env builds the lock), matching the Scenario harness the
// tests use.
struct PassageCost {
  double rmr_per_passage = 0;
  double steps_per_passage = 0;
  uint64_t passages = 0;
  bool ok = false;
};

template <class MakeLock>
PassageCost measure_passages(harness::ModelKind kind, int n, uint64_t iters,
                             uint64_t seed, MakeLock make,
                             sim::CrashPlan* crash = nullptr,
                             uint64_t max_steps = 80000000) {
  harness::Scenario<platform::Counted> s(kind, n);
  auto lk = make(s);
  s.set_body([&](harness::SimProc& h, int pid) {
    lk->lock(h, pid);
    lk->unlock(h, pid);
  });
  s.use_random_schedule(seed);
  if (crash != nullptr) {
    s.set_crash_plan(std::make_unique<BorrowedCrashPlan>(crash));
  }
  s.set_iterations(iters);
  s.set_max_steps(max_steps);
  auto res = s.run();
  PassageCost out;
  out.ok = res.ok();
  uint64_t rmrs = 0, steps = 0;
  for (int p = 0; p < n; ++p) {
    rmrs += s.world().counters(p).rmrs;
    steps += s.world().counters(p).steps;
    out.passages += res.completions[static_cast<size_t>(p)];
  }
  if (out.passages > 0) {
    out.rmr_per_passage =
        static_cast<double>(rmrs) / static_cast<double>(out.passages);
    out.steps_per_passage =
        static_cast<double>(steps) / static_cast<double>(out.passages);
  }
  return out;
}

}  // namespace rme::bench

// E7 - CC cache footprint per passage (paper Section 1.4 advantage 2).
//
// Claim: the algorithm needs a cache of only O(1) words per process,
// whereas Golab-Hendler's deep exploration requires Theta(n) cached words
// to meet its RMR bound. We measure the peak number of distinct cells
// resident in a process's (unbounded, never-evicting) model cache within
// a single passage: crash-free passages and repair passages, vs k.
#include <memory>

#include "bench_util.hpp"
#include "core/rme_lock.hpp"

using namespace rme;
using namespace rme::bench;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

namespace {

size_t crash_free_footprint(int k) {
  SimRun sim(ModelKind::kCc, k);
  core::RmeLock<P> lk(sim.world().env, k);
  rmr::CcModel* cc = sim.world().cc();
  size_t peak = 0;
  sim.set_body([&](SimProc& h, int pid) {
    cc->flush_cache(pid);
    lk.lock(h, pid);
    lk.unlock(h, pid);
    peak = std::max(peak, cc->peak_cache_words(pid));
  });
  sim::SeededRandom pol(5);
  sim::NoCrash nc;
  std::vector<uint64_t> iters(static_cast<size_t>(k), 4);
  auto res = sim.run(pol, nc, iters, 80000000);
  RME_ASSERT(!res.exhausted, "E7 crash-free run exhausted");
  return peak;
}

// Footprint of the passage that performs the repair (crash after FAS,
// all other ports occupied so the scan has k nodes to visit).
size_t repair_footprint(int k) {
  SimRun sim(ModelKind::kCc, k);
  core::RmeLock<P> lk(sim.world().env, k);
  rmr::CcModel* cc = sim.world().cc();
  size_t peak = 0;
  bool measured = false;
  sim.set_body([&](SimProc& h, int pid) {
    if (pid == 0) cc->flush_cache(0);
    lk.lock(h, pid);
    if (pid == 0 && !measured && lk.total_stats().repairs > 0) {
      peak = cc->peak_cache_words(0);
      measured = true;
    }
    lk.unlock(h, pid);
  });
  sim::CrashAroundFas plan(0, 1, sim::CrashAroundFas::kAfter);
  sim::SeededRandom pol(5);
  std::vector<uint64_t> iters(static_cast<size_t>(k), 4);
  auto res = sim.run(pol, plan, iters, 80000000);
  RME_ASSERT(!res.exhausted, "E7 repair run exhausted");
  RME_ASSERT(measured, "E7: no repair observed");
  return peak;
}

}  // namespace

int main() {
  header("E7", "peak cached words per passage (CC model, no eviction)",
         "Section 1.4(2): O(1) cache words suffice (GH needs Theta(n)); "
         "repair's shallow exploration touches O(k) but needs no "
         "simultaneous residency");

  Table t({"k", "crash-free", "repair passage"});
  for (int k : {2, 4, 8, 16, 32, 64}) {
    if (rme::bench::smoke_mode() && k > 16) continue;
    const size_t cf = crash_free_footprint(k);
    const size_t rp = repair_footprint(k);
    t.row({fmt("%d", k), fmt("%zu", cf), fmt("%zu", rp)});
    json_line("cache_footprint", {{"model", "CC"}, {"k", fmt("%d", k)}},
              {{"crash_free_words", static_cast<double>(cf)},
               {"repair_words", static_cast<double>(rp)}});
  }
  std::printf(
      "\nReading: the crash-free column is exactly flat (O(1) words - the "
      "paper's claim).\nThe repair column grows with k only because the "
      "one-off scan reads each port's node;\nno RMR bound depends on those "
      "lines staying resident (shallow exploration), unlike GH\nwhere "
      "Theta(n) residency is required for the O(n) repair RMR bound.\n");
  return 0;
}

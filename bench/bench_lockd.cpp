// E-lockd: daemon-mediated acquisition latency under client-count sweep.
//
// One in-process rme_lockd reactor serves N real SOCK_SEQPACKET client
// connections (full mode sweeps up to 1000+ concurrent sessions - the
// daemon's whole point is serving far more clients than the region has
// pid slots). Driver threads run an open-loop over their connection
// slice: every idle connection re-arms a submit() immediately, grants
// are collected with try_take() and released fire-and-forget, so arrival
// pressure is sustained regardless of service order. Each grant's
// submit->grant latency lands in a histogram; each kOverloaded verdict
// counts as a shed.
//
// Two arms per client count:
//
//   admission=wait_trend  the daemon's front gate sheds under trend
//                         pressure; the ADMITTED p50/p99 stays bounded.
//   admission=none        every arrival queues; the tail grows with N.
//
// BENCH_JSON rows: bench=lockd, clients=, admission=, p50_ns/p99_ns of
// admitted grants, shed_rate of arrivals.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "lockd/lockd.hpp"

namespace {

using Clock = std::chrono::steady_clock;
namespace lockd = rme::lockd;

struct ArmResult {
  std::vector<uint64_t> lat_ns;  // admitted submit->grant latencies
  uint64_t sheds = 0;
  uint64_t arrivals = 0;
};

// One connection's in-flight state.
struct Slot {
  lockd::Client client;
  uint64_t req_id = 0;  // 0 = idle
  Clock::time_point submitted{};
};

void drive(const std::string& sock, std::deque<Slot>& slots,
           Clock::time_point deadline, uint64_t seed, ArmResult& out) {
  uint64_t x = seed | 1;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  (void)sock;
  while (Clock::now() < deadline) {
    bool progressed = false;
    for (Slot& s : slots) {
      if (!s.client.connected()) continue;
      if (s.req_id == 0) {
        s.submitted = Clock::now();
        s.req_id = s.client.submit(next());
        if (s.req_id != 0) {
          ++out.arrivals;
          progressed = true;
        }
        continue;
      }
      auto r = s.client.try_take(s.req_id);
      if (!r) continue;  // still pending
      s.req_id = 0;
      progressed = true;
      if (r->has_value()) {
        out.lat_ns.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - s.submitted)
                .count()));
        const uint64_t id = r->value().detach();
        s.client.release_async(id);
      } else if (r->error() == rme::svc::Errc::kOverloaded) {
        ++out.sheds;
      }
    }
    if (!progressed) std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // Quiesce: abandon what is still in flight (closing the connection
  // makes the daemon cancel/release it) before the reactor goes away.
  for (Slot& s : slots) s.client.close();
}

ArmResult run_arm(int clients, bool admission, int run_ms) {
  static std::atomic<int> arm_counter{0};
  const std::string tag = std::to_string(::getpid()) + "_" +
                          std::to_string(arm_counter.fetch_add(1));
  lockd::Options opt;
  opt.socket_path = "/tmp/rme_lockd_b_" + tag + ".sock";
  opt.region = "/rme_lockd_b_" + tag;
  opt.shards = 8;
  opt.identities = 8;
  opt.admission = admission;
  lockd::Reactor reactor(opt);
  std::thread loop([&reactor] { reactor.run(); });

  const int nthreads =
      std::min<int>(8, std::max<int>(1, static_cast<int>(
                                            std::thread::hardware_concurrency())));
  // deque: Client is pinned (non-movable), nodes must never relocate.
  std::vector<std::deque<Slot>> slices(static_cast<size_t>(nthreads));
  for (int i = 0; i < clients; ++i) {
    slices[static_cast<size_t>(i % nthreads)].emplace_back();
  }
  for (auto& slice : slices) {
    for (Slot& s : slice) {
      if (!s.client.connect({opt.socket_path, false})) {
        std::fprintf(stderr, "bench_lockd: connect failed\n");
        std::exit(1);
      }
    }
  }

  std::vector<ArmResult> partial(static_cast<size_t>(nthreads));
  const auto deadline = Clock::now() + std::chrono::milliseconds(run_ms);
  std::vector<std::thread> drivers;
  for (int t = 0; t < nthreads; ++t) {
    drivers.emplace_back([&, t] {
      drive(opt.socket_path, slices[static_cast<size_t>(t)], deadline,
            0x9e3779b9u * static_cast<uint64_t>(t + 1),
            partial[static_cast<size_t>(t)]);
    });
  }
  for (auto& th : drivers) th.join();
  reactor.stop();
  loop.join();

  ArmResult all;
  for (const ArmResult& p : partial) {
    all.lat_ns.insert(all.lat_ns.end(), p.lat_ns.begin(), p.lat_ns.end());
    all.sheds += p.sheds;
    all.arrivals += p.arrivals;
  }
  std::sort(all.lat_ns.begin(), all.lat_ns.end());
  return all;
}

double pct(const std::vector<uint64_t>& sorted, int p) {
  if (sorted.empty()) return 0;
  return static_cast<double>(sorted[(sorted.size() * static_cast<size_t>(p)) /
                                    100]);
}

}  // namespace

int main() {
  rme::bench::header(
      "E-lockd", "lock-service daemon under client-count sweep",
      "one daemon serves 1000+ client sessions over a 64-slot region; "
      "admitted latency stays bounded when the wait_trend gate sheds");

  // Thousands of sockets on both sides: raise the fd ceiling first.
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &rl);
  }

  const bool smoke = rme::bench::smoke_mode();
  const std::vector<int> counts =
      smoke ? std::vector<int>{4, 16} : std::vector<int>{64, 256, 1024};
  const int run_ms = smoke ? 300 : 3000;

  rme::bench::Table table(
      {"clients", "admission", "granted", "p50(us)", "p99(us)", "shed%"});
  for (int clients : counts) {
    for (bool admission : {true, false}) {
      const ArmResult r = run_arm(clients, admission, run_ms);
      const double shed_rate =
          r.arrivals == 0
              ? 0.0
              : static_cast<double>(r.sheds) / static_cast<double>(r.arrivals);
      const double p50 = pct(r.lat_ns, 50), p99 = pct(r.lat_ns, 99);
      const char* arm = admission ? "wait_trend" : "none";
      table.row({rme::bench::fmt("%d", clients), arm,
                 rme::bench::fmt("%zu", r.lat_ns.size()),
                 rme::bench::fmt("%.1f", p50 / 1000.0),
                 rme::bench::fmt("%.1f", p99 / 1000.0),
                 rme::bench::fmt("%.1f", shed_rate * 100.0)});
      rme::bench::json_line("lockd",
                            {{"clients", rme::bench::fmt("%d", clients)},
                             {"admission", arm}},
                            {{"p50_ns", p50},
                             {"p99_ns", p99},
                             {"shed_rate", shed_rate}});
    }
  }
  std::printf(
      "\nReading: every connection is a real socket into one daemon "
      "process;\nthe admitted tail under wait_trend stays flat as clients "
      "grow because\nexcess arrivals shed at the front instead of "
      "queueing.\n");
  return 0;
}

// E11 - keyed lock-table throughput: the first many-lock workload.
//
// Registry-driven: iterates every KEYED entry of the rme::api registry
// (capability filter Addressing::kKeyed) and drives it through the
// uniform KeyGuard surface. A KV-style update stream: each operation
// picks a key, locks the key's shard (port leased dynamically per
// passage), performs a small critical section, releases. Two
// configurations:
//
//   Real     - hardware threads, wall-clock ops/sec vs shard count: the
//              sharding payoff (single global lock -> striped table).
//   Counted  - deterministic CC-model run: RMR per operation vs shard
//              count at fixed processes; more shards = less contention =
//              fewer RMRs per op (queue handoffs happen less often), while
//              the O(1)-per-passage core bound keeps every row flat in k.
//
// Every BENCH_JSON line carries lock=<registry-name> so rows share one
// schema with bench_throughput and stay comparable across PRs.
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "svc/svc.hpp"

using namespace rme;
using namespace rme::bench;
using harness::ModelKind;
using harness::Scenario;
using harness::SimProc;

namespace {

constexpr int kRealThreads = 8;
constexpr uint64_t kKeySpace = 4096;

uint64_t scaled_real_iters() {
  const unsigned hw = std::thread::hardware_concurrency();
  return smoke_iters(hw >= kRealThreads ? 20000 : 2000,
                     50);  // oversubscribed CI boxes / smoke mode
}

// A tiny critical section that the optimiser cannot delete.
volatile uint64_t g_cs_sink = 0;
inline void benchmark_cs() { g_cs_sink = g_cs_sink + 1; }

// Real platform: ops/sec over `shards`, all threads hammering a shared
// key space through session-minted key guards.
template <class T>
double real_throughput(int shards, uint64_t iters_per_thread) {
  using R = platform::Real;
  Scenario<R> s(kRealThreads);
  T table(s.world().env, shards, /*ports_per_shard=*/kRealThreads,
          kRealThreads);
  auto sessions = svc::open_sessions(table, s.world(), kRealThreads);
  s.set_body([&](platform::Process<R>& h, int pid) {
    (void)h;
    // Cheap per-thread LCG key stream; distinct streams per pid.
    static thread_local uint64_t rng = 0;
    if (rng == 0) rng = 0x9e3779b9u + static_cast<uint64_t>(pid) * 2654435761u;
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t key = (rng >> 33) % kKeySpace;
    auto g = sessions[static_cast<size_t>(pid)]->acquire(key).value();
    benchmark_cs();
  });
  s.set_iterations(iters_per_thread);
  const auto t0 = std::chrono::steady_clock::now();
  auto res = s.run();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  RME_ASSERT(res.ok(), "lock-table real bench failed");
  const double total =
      static_cast<double>(iters_per_thread) * kRealThreads;
  return dt.count() > 0 ? total / dt.count() : 0.0;
}

// Counted platform: mean RMR per operation on the CC model.
template <class T>
double counted_rmr_per_op(int shards, int pids, uint64_t iters) {
  using C = platform::Counted;
  Scenario<C> s(ModelKind::kCc, pids);
  T table(s.world().env, shards, /*ports_per_shard=*/pids, pids);
  auto sessions = svc::open_sessions(table, s.world(), pids);
  std::vector<uint64_t> done(static_cast<size_t>(pids), 0);
  s.set_body([&](SimProc& h, int pid) {
    (void)h;
    const uint64_t key =
        (static_cast<uint64_t>(pid) * 2654435761u + done[pid] * 40503u) %
        kKeySpace;
    auto g = sessions[static_cast<size_t>(pid)]->acquire(key).value();
    ++done[pid];
  });
  s.use_random_schedule(17);
  s.set_iterations(iters);
  s.set_max_steps(200000000);
  auto res = s.run();
  RME_ASSERT(res.ok(), "lock-table counted bench failed");
  uint64_t rmrs = 0, ops = 0;
  for (int p = 0; p < pids; ++p) {
    rmrs += s.world().counters(p).rmrs;
    ops += res.completions[static_cast<size_t>(p)];
  }
  return ops > 0 ? static_cast<double>(rmrs) / static_cast<double>(ops) : 0.0;
}

constexpr auto kKeyedPred = [](const api::Traits& t) {
  return t.addressing == api::Addressing::kKeyed;
};

}  // namespace

int main() {
  header("E11", "sharded recoverable lock table (dynamic port leasing)",
         "composition: per-shard O(1)-RMR passages + FAS-only port leases "
         "=> contention falls with shard count while every passage keeps "
         "the Theorem 2 bound");

  // Iterate the keyed registry entries per platform; the Real and Counted
  // instantiations of an entry share a registry name by construction, so
  // the BENCH_JSON rows join on lock=<name>.
  std::printf("\n-- (a) Real platform: %d threads, wall-clock --\n",
              kRealThreads);
  api::for_each_lock_if<platform::Real>(kKeyedPred, [](auto tag) {
    using T = typename decltype(tag)::type;
    const uint64_t iters = scaled_real_iters();
    std::printf("lock=%s\n", T::kName);
    Table t({"shards", "ops/sec"});
    for (int shards : {1, 4, 16, 64}) {
      const double ops = real_throughput<T>(shards, iters);
      t.row({fmt("%d", shards), fmt("%.0f", ops)});
      json_line("lock_table_throughput",
                {{"lock", T::kName},
                 {"platform", "real"},
                 {"threads", fmt("%d", kRealThreads)},
                 {"shards", fmt("%d", shards)}},
                {{"ops_per_sec", ops}});
    }
  });

  std::printf("\n-- (b) Counted platform (CC model): RMR per op --\n");
  api::for_each_lock_if<platform::Counted>(kKeyedPred, [](auto tag) {
    using T = typename decltype(tag)::type;
    constexpr int kPids = 8;
    std::printf("lock=%s\n", T::kName);
    Table t({"shards", "RMR/op"});
    for (int shards : {1, 4, 16, 64}) {
      const double rmr = counted_rmr_per_op<T>(shards, kPids, smoke_iters(6));
      t.row({fmt("%d", shards), fmt("%.1f", rmr)});
      json_line("lock_table_rmr",
                {{"lock", T::kName},
                 {"platform", "counted"},
                 {"model", "CC"},
                 {"pids", fmt("%d", kPids)},
                 {"shards", fmt("%d", shards)}},
                {{"rmr_per_op", rmr}});
    }
  });

  std::printf(
      "\nReading: (a) ops/sec rises with shard count until the machine "
      "runs out of parallelism;\n(b) RMR/op falls as shards dilute "
      "contention - the per-passage RMR bound is unchanged, only\nqueue "
      "handoff frequency drops.\n");
  return 0;
}

// E9 - Wall-clock throughput on real hardware threads (Real platform:
// plain std::atomic, zero instrumentation).
//
// Not a claim from the paper (its model counts RMRs, not nanoseconds) but
// the practicality check a systems reader expects: the recoverable lock's
// crash-free fast path against classic non-recoverable locks and
// std::mutex. Uses google-benchmark's threaded fixtures; each thread is
// bound to one port/pid.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <mutex>

#include "baselines/mcs.hpp"
#include "baselines/simple_locks.hpp"
#include "core/arbitration_tree.hpp"
#include "core/rme_lock.hpp"
#include "harness/world.hpp"

namespace {

using namespace rme;
using R = platform::Real;

constexpr int kMaxThreads = 16;

// Shared fixture state; created once per lock type and reused across
// thread-count variants (the locks are designed for arbitrary reuse).
// Never deleted mid-process: google-benchmark may still be running other
// threads' loops when thread 0 finishes, so teardown inside the benchmark
// function would be a use-after-free.
template <class Lock>
struct Fix {
  harness::RealWorld world{kMaxThreads};
  std::unique_ptr<Lock> lock;
  uint64_t shared_counter = 0;  // protected by the lock
};

template <class Lock, class Make>
void run_lock_bench(benchmark::State& state, std::atomic<Fix<Lock>*>& fix,
                    Make make) {
  {
    static std::mutex setup_mu;
    std::lock_guard<std::mutex> g(setup_mu);
    if (fix.load(std::memory_order_acquire) == nullptr) {
      auto* f = new Fix<Lock>();
      f->lock = make(f->world);
      fix.store(f, std::memory_order_release);
    }
  }
  Fix<Lock>* f = fix.load(std::memory_order_acquire);
  // One port per benchmark thread: thread_index is stable for the run and
  // distinct across concurrent threads - the paper's port contract.
  const int my_pid = state.thread_index();
  auto& h = f->world.proc(my_pid);

  uint64_t local = 0;
  for (auto _ : state) {
    f->lock->lock(h, my_pid);
    ++f->shared_counter;  // the critical section
    f->lock->unlock(h, my_pid);
    ++local;
  }
  state.SetItemsProcessed(static_cast<int64_t>(local));
  if (state.thread_index() == 0) {
    state.counters["cs_total"] = static_cast<double>(f->shared_counter);
  }
}

#define LOCK_BENCH(NAME, LOCKTYPE, MAKE)                              \
  void NAME(benchmark::State& state) {                               \
    static std::atomic<Fix<LOCKTYPE>*> fix{nullptr};                 \
    run_lock_bench<LOCKTYPE>(state, fix, MAKE);                      \
  }                                                                  \
  BENCHMARK(NAME)->ThreadRange(1, kMaxThreads)->UseRealTime();

LOCK_BENCH(BM_RmeLock_Flat, core::RmeLock<R>, [](harness::RealWorld& w) {
  return std::make_unique<core::RmeLock<R>>(w.env, kMaxThreads);
})

LOCK_BENCH(BM_RmeLock_Tree, core::ArbitrationTree<R>,
           [](harness::RealWorld& w) {
             return std::make_unique<core::ArbitrationTree<R>>(w.env,
                                                               kMaxThreads);
           })

LOCK_BENCH(BM_Mcs, baselines::McsLock<R>, [](harness::RealWorld& w) {
  return std::make_unique<baselines::McsLock<R>>(w.env, kMaxThreads);
})

LOCK_BENCH(BM_Ttas, baselines::TtasLock<R>, [](harness::RealWorld& w) {
  return std::make_unique<baselines::TtasLock<R>>(w.env);
})

LOCK_BENCH(BM_Ticket, baselines::TicketLock<R>, [](harness::RealWorld& w) {
  return std::make_unique<baselines::TicketLock<R>>(w.env);
})

LOCK_BENCH(BM_Clh, baselines::ClhLock<R>, [](harness::RealWorld& w) {
  return std::make_unique<baselines::ClhLock<R>>(w.env, kMaxThreads);
})

// std::mutex reference.
void BM_StdMutex(benchmark::State& state) {
  static std::mutex mu;
  static uint64_t counter = 0;
  uint64_t local = 0;
  for (auto _ : state) {
    std::lock_guard<std::mutex> g(mu);
    ++counter;
    ++local;
  }
  state.SetItemsProcessed(static_cast<int64_t>(local));
}
BENCHMARK(BM_StdMutex)->ThreadRange(1, kMaxThreads)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

// E9 - Wall-clock throughput on real hardware threads (Real platform:
// plain std::atomic, zero instrumentation).
//
// Not a claim from the paper (its model counts RMRs, not nanoseconds) but
// the practicality check a systems reader expects. Registry-driven: every
// non-keyed rme::api registry entry is registered as a benchmark under its
// stable registry name (the keyed table has its own workload shape in
// bench_lock_table), plus a std::mutex reference. Each thread is bound to
// one port/pid and acquires through an rme::svc::Session - the public
// acquisition surface - so the measured path is the served path.
// BENCH_JSON rows carry lock=<registry-name> so the perf trajectory is
// comparable across PRs.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "harness/world.hpp"
#include "svc/svc.hpp"

namespace {

using namespace rme;
using R = platform::Real;

constexpr int kMaxThreads = 16;

template <class L>
constexpr int max_threads_for() {
  return api::clamp_processes(api::lock_traits_v<L>, kMaxThreads);
}

// Shared fixture state; created once per lock type and reused across
// thread-count variants (the locks are designed for arbitrary reuse).
// Never deleted mid-process: google-benchmark may still be running other
// threads' loops when thread 0 finishes, so teardown inside the benchmark
// function would be a use-after-free.
template <class L>
struct Fix {
  harness::RealWorld world{kMaxThreads};
  std::unique_ptr<L> lock;
  uint64_t shared_counter = 0;  // protected by the lock
};

template <class L>
void run_lock_bench(benchmark::State& state) {
  static std::atomic<Fix<L>*> fix{nullptr};
  {
    static std::mutex setup_mu;
    std::lock_guard<std::mutex> g(setup_mu);
    if (fix.load(std::memory_order_acquire) == nullptr) {
      auto* f = new Fix<L>();
      f->lock = std::make_unique<L>(f->world.env, max_threads_for<L>());
      fix.store(f, std::memory_order_release);
    }
  }
  Fix<L>* f = fix.load(std::memory_order_acquire);
  // One port per benchmark thread: thread_index is stable for the run and
  // distinct across concurrent threads - the paper's port contract. The
  // session is the acquisition surface; its guard mint/release cost is
  // part of what this bench tracks.
  const int my_pid = state.thread_index();
  rme::svc::Session<L> session(*f->lock, f->world.proc(my_pid), my_pid);

  uint64_t local = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    {
      auto g = session.acquire().value();  // no admission gate installed
      ++f->shared_counter;  // the critical section
    }
    ++local;
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  state.SetItemsProcessed(static_cast<int64_t>(local));
  if (state.thread_index() == 0) {
    state.counters["cs_total"] = static_cast<double>(f->shared_counter);
    // Thread-0's rate scaled by the (symmetric) thread count: the
    // machine-readable trajectory line alongside gbench's own report.
    // Google-benchmark re-invokes this function with tiny iteration
    // counts while calibrating; only the final measured pass runs close
    // to --benchmark_min_time, so gate on elapsed time to emit exactly
    // the real measurement (scrapers should still take the last line
    // per configuration). Smoke mode lowers the gate to match its
    // shrunken --benchmark_min_time.
    if (dt.count() >= (rme::bench::smoke_mode() ? 0.005 : 0.1)) {
      rme::bench::json_line(
          "throughput",
          {{"lock", L::kName},
           {"threads", rme::bench::fmt("%d", state.threads())}},
          {{"ops_per_sec_est",
            static_cast<double>(local) / dt.count() * state.threads()}});
    }
  }
}

// std::mutex reference.
void BM_StdMutex(benchmark::State& state) {
  static std::mutex mu;
  static uint64_t counter = 0;
  uint64_t local = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::lock_guard<std::mutex> g(mu);
    ++counter;
    ++local;
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  state.SetItemsProcessed(static_cast<int64_t>(local));
  // Same calibration gate as run_lock_bench.
  if (state.thread_index() == 0 &&
      dt.count() >= (rme::bench::smoke_mode() ? 0.005 : 0.1)) {
    rme::bench::json_line(
        "throughput",
        {{"lock", "std_mutex"},
         {"threads", rme::bench::fmt("%d", state.threads())}},
        {{"ops_per_sec_est",
          static_cast<double>(local) / dt.count() * state.threads()}});
  }
}

void register_benches() {
  api::for_each_lock_if<R>(
      [](const api::Traits& t) {
        return t.addressing != api::Addressing::kKeyed;
      },
      [](auto tag) {
        using L = typename decltype(tag)::type;
        benchmark::RegisterBenchmark(L::kName, run_lock_bench<L>)
            ->ThreadRange(1, max_threads_for<L>())
            ->UseRealTime();
      });
  benchmark::RegisterBenchmark("std_mutex", BM_StdMutex)
      ->ThreadRange(1, kMaxThreads)
      ->UseRealTime();
}

}  // namespace

int main(int argc, char** argv) {
  register_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// E9 - Wall-clock throughput on real hardware threads (Real platform:
// plain std::atomic, zero instrumentation).
//
// Not a claim from the paper (its model counts RMRs, not nanoseconds) but
// the practicality check a systems reader expects: the recoverable lock's
// crash-free fast path against classic non-recoverable locks and
// std::mutex. Uses google-benchmark's threaded fixtures; each thread is
// bound to one port/pid.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "baselines/mcs.hpp"
#include "baselines/simple_locks.hpp"
#include "bench_util.hpp"
#include "core/arbitration_tree.hpp"
#include "core/rme_lock.hpp"
#include "harness/world.hpp"

namespace {

using namespace rme;
using R = platform::Real;

constexpr int kMaxThreads = 16;

// Shared fixture state; created once per lock type and reused across
// thread-count variants (the locks are designed for arbitrary reuse).
// Never deleted mid-process: google-benchmark may still be running other
// threads' loops when thread 0 finishes, so teardown inside the benchmark
// function would be a use-after-free.
template <class Lock>
struct Fix {
  harness::RealWorld world{kMaxThreads};
  std::unique_ptr<Lock> lock;
  uint64_t shared_counter = 0;  // protected by the lock
};

template <class Lock, class Make>
void run_lock_bench(benchmark::State& state, std::atomic<Fix<Lock>*>& fix,
                    const char* bench_name, Make make) {
  {
    static std::mutex setup_mu;
    std::lock_guard<std::mutex> g(setup_mu);
    if (fix.load(std::memory_order_acquire) == nullptr) {
      auto* f = new Fix<Lock>();
      f->lock = make(f->world);
      fix.store(f, std::memory_order_release);
    }
  }
  Fix<Lock>* f = fix.load(std::memory_order_acquire);
  // One port per benchmark thread: thread_index is stable for the run and
  // distinct across concurrent threads - the paper's port contract.
  const int my_pid = state.thread_index();
  auto& h = f->world.proc(my_pid);

  uint64_t local = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    f->lock->lock(h, my_pid);
    ++f->shared_counter;  // the critical section
    f->lock->unlock(h, my_pid);
    ++local;
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  state.SetItemsProcessed(static_cast<int64_t>(local));
  if (state.thread_index() == 0) {
    state.counters["cs_total"] = static_cast<double>(f->shared_counter);
    // Thread-0's rate scaled by the (symmetric) thread count: the
    // machine-readable trajectory line alongside gbench's own report.
    // Google-benchmark re-invokes this function with tiny iteration
    // counts while calibrating; only the final measured pass runs close
    // to --benchmark_min_time, so gate on elapsed time to emit exactly
    // the real measurement (scrapers should still take the last line
    // per configuration).
    if (dt.count() >= 0.1) {
      rme::bench::json_line(
          "throughput",
          {{"lock", bench_name},
           {"threads", rme::bench::fmt("%d", state.threads())}},
          {{"ops_per_sec_est",
            static_cast<double>(local) / dt.count() * state.threads()}});
    }
  }
}

#define LOCK_BENCH(NAME, LOCKTYPE, MAKE)                              \
  void NAME(benchmark::State& state) {                               \
    static std::atomic<Fix<LOCKTYPE>*> fix{nullptr};                 \
    run_lock_bench<LOCKTYPE>(state, fix, #NAME, MAKE);               \
  }                                                                  \
  BENCHMARK(NAME)->ThreadRange(1, kMaxThreads)->UseRealTime();

LOCK_BENCH(BM_RmeLock_Flat, core::RmeLock<R>, [](harness::RealWorld& w) {
  return std::make_unique<core::RmeLock<R>>(w.env, kMaxThreads);
})

LOCK_BENCH(BM_RmeLock_Tree, core::ArbitrationTree<R>,
           [](harness::RealWorld& w) {
             return std::make_unique<core::ArbitrationTree<R>>(w.env,
                                                               kMaxThreads);
           })

LOCK_BENCH(BM_Mcs, baselines::McsLock<R>, [](harness::RealWorld& w) {
  return std::make_unique<baselines::McsLock<R>>(w.env, kMaxThreads);
})

LOCK_BENCH(BM_Ttas, baselines::TtasLock<R>, [](harness::RealWorld& w) {
  return std::make_unique<baselines::TtasLock<R>>(w.env);
})

LOCK_BENCH(BM_Ticket, baselines::TicketLock<R>, [](harness::RealWorld& w) {
  return std::make_unique<baselines::TicketLock<R>>(w.env);
})

LOCK_BENCH(BM_Clh, baselines::ClhLock<R>, [](harness::RealWorld& w) {
  return std::make_unique<baselines::ClhLock<R>>(w.env, kMaxThreads);
})

// std::mutex reference.
void BM_StdMutex(benchmark::State& state) {
  static std::mutex mu;
  static uint64_t counter = 0;
  uint64_t local = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::lock_guard<std::mutex> g(mu);
    ++counter;
    ++local;
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  state.SetItemsProcessed(static_cast<int64_t>(local));
  // Same calibration gate as run_lock_bench.
  if (state.thread_index() == 0 && dt.count() >= 0.1) {
    rme::bench::json_line(
        "throughput",
        {{"lock", "BM_StdMutex"},
         {"threads", rme::bench::fmt("%d", state.threads())}},
        {{"ops_per_sec_est",
          static_cast<double>(local) / dt.count() * state.threads()}});
  }
}
BENCHMARK(BM_StdMutex)->ThreadRange(1, kMaxThreads)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

// E5 - Wait-free Exit (paper Section 1.4 advantage 1, Lemma 6).
//
// Claim: the Exit section completes in a bounded number of the caller's
// own steps regardless of contention (Golab-Hendler's exit is not
// wait-free). We record the maximum shared-memory step count of unlock()
// across heavily contended runs, per k: the number must not grow with the
// number of *waiting* processes (the O(k) component visible here is the
// amortised QSBR reclamation spike, bounded and optional).
#include <memory>

#include "bench_util.hpp"
#include "core/rme_lock.hpp"

using namespace rme;
using namespace rme::bench;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

namespace {

struct ExitCost {
  uint64_t max_steps;
  double mean_steps;
};

ExitCost exit_steps(ModelKind kind, int k, bool recycle) {
  SimRun sim(kind, k);
  typename core::RmeLock<P>::Options opt;
  opt.recycle = recycle;
  core::RmeLock<P> lk(sim.world().env, k, opt);
  uint64_t max_steps = 0, total = 0, count = 0;
  sim.set_body([&](SimProc& h, int pid) {
    lk.lock(h, pid);
    const uint64_t before = h.ctx.step_index;
    lk.unlock(h, pid);
    const uint64_t steps = h.ctx.step_index - before;
    max_steps = std::max(max_steps, steps);
    total += steps;
    ++count;
  });
  sim::SeededRandom pol(3);
  sim::NoCrash nc;
  std::vector<uint64_t> iters(static_cast<size_t>(k), 15);
  auto res = sim.run(pol, nc, iters, 80000000);
  RME_ASSERT(!res.exhausted, "E5 run exhausted");
  return ExitCost{max_steps,
                  static_cast<double>(total) / static_cast<double>(count)};
}

}  // namespace

int main() {
  header("E5", "Exit section step bound under full contention",
         "Wait-free Exit: bounded own-steps regardless of waiters "
         "(Lemma 6); GH's algorithm lacks this property");

  Table t({"model", "k", "recycle", "mean steps", "max steps"});
  for (ModelKind kind : {ModelKind::kCc, ModelKind::kDsm}) {
    const char* m = kind == ModelKind::kCc ? "CC" : "DSM";
    for (int k : {2, 4, 8, 16, 32}) {
      if (rme::bench::smoke_mode() && k > 16) continue;
      auto on = exit_steps(kind, k, true);
      t.row({m, fmt("%d", k), "on", fmt("%.1f", on.mean_steps),
             fmt("%llu", (unsigned long long)on.max_steps)});
      json_line("exit_steps",
                {{"model", m}, {"k", fmt("%d", k)}, {"recycle", "on"}},
                {{"mean_steps", on.mean_steps},
                 {"max_steps", static_cast<double>(on.max_steps)}});
      auto off = exit_steps(kind, k, false);
      t.row({m, fmt("%d", k), "off", fmt("%.1f", off.mean_steps),
             fmt("%llu", (unsigned long long)off.max_steps)});
      json_line("exit_steps",
                {{"model", m}, {"k", fmt("%d", k)}, {"recycle", "off"}},
                {{"mean_steps", off.mean_steps},
                 {"max_steps", static_cast<double>(off.max_steps)}});
    }
  }
  std::printf(
      "\nReading: with recycling off (verbatim paper Exit = Lines 27-29), "
      "max steps is a small\nconstant independent of k. With recycling on, "
      "the mean stays constant and the max shows\nthe occasional amortised "
      "O(k) QSBR scan - the documented trade for bounded memory.\n");
  return 0;
}

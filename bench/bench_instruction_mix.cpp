// E8 - Instruction mix audit (paper Section 1.4 advantage 3).
//
// Claim: the algorithm uses FAS as its *only* read-modify-write primitive
// (GH needs FAS + CAS; MCS needs FAS + CAS; ticket locks need FAI). We
// count every operation kind issued during contended crash-free and
// crashing runs, for the full stack (RmeLock incl. RLock + Signals) and
// the baselines.
#include <memory>

#include "baselines/mcs.hpp"
#include "baselines/simple_locks.hpp"
#include "bench_util.hpp"
#include "core/arbitration_tree.hpp"
#include "core/rme_lock.hpp"

using namespace rme;
using namespace rme::bench;
using harness::ModelKind;
using harness::SimProc;
using harness::SimRun;
using P = platform::Counted;

namespace {

struct Mix {
  uint64_t reads = 0, writes = 0, fas = 0, cas = 0, fai = 0;
};

template <class MakeLock>
Mix measure_mix(int n, MakeLock make, bool with_crashes) {
  SimRun sim(ModelKind::kCc, n);
  auto lk = make(sim);
  sim.set_body([&](SimProc& h, int pid) {
    lk->lock(h, pid);
    lk->unlock(h, pid);
  });
  sim::SeededRandom pol(13);
  sim::NoCrash nc;
  sim::RandomCrash rc(0.004, 99, 20);
  std::vector<uint64_t> iters(static_cast<size_t>(n), 10);
  auto res =
      sim.run(pol, with_crashes ? static_cast<sim::CrashPlan&>(rc) : nc,
              iters, 80000000);
  RME_ASSERT(!res.exhausted, "E8 run exhausted");
  Mix m;
  for (int p = 0; p < n; ++p) {
    const auto& c = sim.world().counters(p);
    m.reads += c.reads;
    m.writes += c.writes;
    m.fas += c.fas;
    m.cas += c.cas;
    m.fai += c.fai;
  }
  return m;
}

std::string yn(uint64_t v) { return v == 0 ? "-" : fmt("%llu", (unsigned long long)v); }

}  // namespace

int main() {
  header("E8", "dynamic instruction mix per lock (4 ports, 10 passages each)",
         "Section 1.4(3): the algorithm needs only FAS (GH needs FAS+CAS)");

  Table t({"lock", "crashes", "reads", "writes", "FAS", "CAS", "FAI"});
  auto row = [&](const char* name, bool crashes, Mix m) {
    t.row({name, crashes ? "yes" : "no", fmt("%llu", (unsigned long long)m.reads),
           fmt("%llu", (unsigned long long)m.writes), yn(m.fas), yn(m.cas),
           yn(m.fai)});
    json_line("instruction_mix",
              {{"lock", name}, {"crashes", crashes ? "yes" : "no"}},
              {{"reads", static_cast<double>(m.reads)},
               {"writes", static_cast<double>(m.writes)},
               {"fas", static_cast<double>(m.fas)},
               {"cas", static_cast<double>(m.cas)},
               {"fai", static_cast<double>(m.fai)}});
  };

  row("RmeLock", false, measure_mix(4, [](auto& sim) {
        return std::make_unique<core::RmeLock<P>>(sim.world().env, 4);
      }, false));
  row("RmeLock", true, measure_mix(4, [](auto& sim) {
        return std::make_unique<core::RmeLock<P>>(sim.world().env, 4);
      }, true));
  row("ArbTree", true, measure_mix(8, [](auto& sim) {
        return std::make_unique<core::ArbitrationTree<P>>(sim.world().env, 8);
      }, true));
  row("MCS", false, measure_mix(4, [](auto& sim) {
        return std::make_unique<baselines::McsLock<P>>(sim.world().env, 4);
      }, false));
  row("Ticket", false, measure_mix(4, [](auto& sim) {
        return std::make_unique<baselines::TicketLock<P>>(sim.world().env);
      }, false));
  row("TAS", false, measure_mix(4, [](auto& sim) {
        return std::make_unique<baselines::TasLock<P>>(sim.world().env);
      }, false));

  std::printf(
      "\nReading: RmeLock rows (and the tree, which includes repair under "
      "crashes) have '-' in both\nthe CAS and FAI columns across every "
      "path, including recovery. MCS needs CAS, Ticket needs FAI.\n");
  return 0;
}

# Empty compiler generated dependencies file for test_rme_lock.
# This may be replaced when dependencies are built.

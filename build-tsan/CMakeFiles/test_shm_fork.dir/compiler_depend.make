# Empty compiler generated dependencies file for test_shm_fork.
# This may be replaced when dependencies are built.

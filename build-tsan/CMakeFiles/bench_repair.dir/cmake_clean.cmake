file(REMOVE_RECURSE
  "CMakeFiles/bench_repair.dir/bench/bench_repair.cpp.o"
  "CMakeFiles/bench_repair.dir/bench/bench_repair.cpp.o.d"
  "bench/bench_repair"
  "bench/bench_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

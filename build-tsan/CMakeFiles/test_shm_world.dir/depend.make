# Empty dependencies file for test_shm_world.
# This may be replaced when dependencies are built.

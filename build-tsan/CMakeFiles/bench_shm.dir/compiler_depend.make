# Empty compiler generated dependencies file for bench_shm.
# This may be replaced when dependencies are built.

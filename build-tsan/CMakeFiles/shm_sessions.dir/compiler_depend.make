# Empty compiler generated dependencies file for shm_sessions.
# This may be replaced when dependencies are built.

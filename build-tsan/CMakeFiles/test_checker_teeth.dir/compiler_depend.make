# Empty compiler generated dependencies file for test_checker_teeth.
# This may be replaced when dependencies are built.

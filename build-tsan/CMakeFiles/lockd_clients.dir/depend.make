# Empty dependencies file for lockd_clients.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_rmr_exact.dir/tests/test_rmr_exact.cpp.o"
  "CMakeFiles/test_rmr_exact.dir/tests/test_rmr_exact.cpp.o.d"
  "test_rmr_exact"
  "test_rmr_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmr_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

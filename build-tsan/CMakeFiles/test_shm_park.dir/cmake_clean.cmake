file(REMOVE_RECURSE
  "CMakeFiles/test_shm_park.dir/tests/test_shm_park.cpp.o"
  "CMakeFiles/test_shm_park.dir/tests/test_shm_park.cpp.o.d"
  "test_shm_park"
  "test_shm_park.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shm_park.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

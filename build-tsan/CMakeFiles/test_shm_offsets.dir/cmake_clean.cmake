file(REMOVE_RECURSE
  "CMakeFiles/test_shm_offsets.dir/tests/test_shm_offsets.cpp.o"
  "CMakeFiles/test_shm_offsets.dir/tests/test_shm_offsets.cpp.o.d"
  "test_shm_offsets"
  "test_shm_offsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shm_offsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_cts.dir/tests/test_cts.cpp.o"
  "CMakeFiles/test_cts.dir/tests/test_cts.cpp.o.d"
  "test_cts"
  "test_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rme_lockd.
# This may be replaced when dependencies are built.

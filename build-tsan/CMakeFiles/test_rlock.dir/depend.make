# Empty dependencies file for test_rlock.
# This may be replaced when dependencies are built.

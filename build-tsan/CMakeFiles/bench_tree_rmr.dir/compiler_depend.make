# Empty compiler generated dependencies file for bench_tree_rmr.
# This may be replaced when dependencies are built.

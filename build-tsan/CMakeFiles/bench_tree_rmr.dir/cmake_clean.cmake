file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_rmr.dir/bench/bench_tree_rmr.cpp.o"
  "CMakeFiles/bench_tree_rmr.dir/bench/bench_tree_rmr.cpp.o.d"
  "bench/bench_tree_rmr"
  "bench/bench_tree_rmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_rmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

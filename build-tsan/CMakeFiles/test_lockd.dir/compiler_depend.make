# Empty compiler generated dependencies file for test_lockd.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_instruction_mix.
# This may be replaced when dependencies are built.

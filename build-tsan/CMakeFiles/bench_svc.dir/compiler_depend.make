# Empty compiler generated dependencies file for bench_svc.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_passage_rmr.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for rme_regionctl.
# This may be replaced when dependencies are built.

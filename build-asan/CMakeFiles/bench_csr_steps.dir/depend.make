# Empty dependencies file for bench_csr_steps.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_shm_park.
# This may be replaced when dependencies are built.

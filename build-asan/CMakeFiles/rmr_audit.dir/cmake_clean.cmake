file(REMOVE_RECURSE
  "CMakeFiles/rmr_audit.dir/examples/rmr_audit.cpp.o"
  "CMakeFiles/rmr_audit.dir/examples/rmr_audit.cpp.o.d"
  "examples/rmr_audit"
  "examples/rmr_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmr_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rme_lockd.dir/tools/rme_lockd.cpp.o"
  "CMakeFiles/rme_lockd.dir/tools/rme_lockd.cpp.o.d"
  "tools/rme_lockd"
  "tools/rme_lockd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rme_lockd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

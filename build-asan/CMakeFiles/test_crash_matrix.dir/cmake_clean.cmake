file(REMOVE_RECURSE
  "CMakeFiles/test_crash_matrix.dir/tests/test_crash_matrix.cpp.o"
  "CMakeFiles/test_crash_matrix.dir/tests/test_crash_matrix.cpp.o.d"
  "test_crash_matrix"
  "test_crash_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

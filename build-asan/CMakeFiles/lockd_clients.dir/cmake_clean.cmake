file(REMOVE_RECURSE
  "CMakeFiles/lockd_clients.dir/examples/lockd_clients.cpp.o"
  "CMakeFiles/lockd_clients.dir/examples/lockd_clients.cpp.o.d"
  "examples/lockd_clients"
  "examples/lockd_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockd_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

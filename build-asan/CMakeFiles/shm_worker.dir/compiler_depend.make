# Empty compiler generated dependencies file for shm_worker.
# This may be replaced when dependencies are built.

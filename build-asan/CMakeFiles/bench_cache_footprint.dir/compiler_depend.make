# Empty compiler generated dependencies file for bench_cache_footprint.
# This may be replaced when dependencies are built.

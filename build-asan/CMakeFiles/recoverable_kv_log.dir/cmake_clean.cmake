file(REMOVE_RECURSE
  "CMakeFiles/recoverable_kv_log.dir/examples/recoverable_kv_log.cpp.o"
  "CMakeFiles/recoverable_kv_log.dir/examples/recoverable_kv_log.cpp.o.d"
  "examples/recoverable_kv_log"
  "examples/recoverable_kv_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recoverable_kv_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_rmr_exact.
# This may be replaced when dependencies are built.

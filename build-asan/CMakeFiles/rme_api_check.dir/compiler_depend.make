# Empty compiler generated dependencies file for rme_api_check.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rme_api_check.dir/src/api/api_check.cpp.o"
  "CMakeFiles/rme_api_check.dir/src/api/api_check.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rme_api_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

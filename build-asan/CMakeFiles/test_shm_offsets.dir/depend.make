# Empty dependencies file for test_shm_offsets.
# This may be replaced when dependencies are built.

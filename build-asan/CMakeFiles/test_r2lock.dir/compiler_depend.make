# Empty compiler generated dependencies file for test_r2lock.
# This may be replaced when dependencies are built.

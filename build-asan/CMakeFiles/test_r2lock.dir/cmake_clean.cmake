file(REMOVE_RECURSE
  "CMakeFiles/test_r2lock.dir/tests/test_r2lock.cpp.o"
  "CMakeFiles/test_r2lock.dir/tests/test_r2lock.cpp.o.d"
  "test_r2lock"
  "test_r2lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_r2lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_system_crash.dir/tests/test_system_crash.cpp.o"
  "CMakeFiles/test_system_crash.dir/tests/test_system_crash.cpp.o.d"
  "test_system_crash"
  "test_system_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_system_crash.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_api_conformance.dir/tests/test_api_conformance.cpp.o"
  "CMakeFiles/test_api_conformance.dir/tests/test_api_conformance.cpp.o.d"
  "test_api_conformance"
  "test_api_conformance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_svc.
# This may be replaced when dependencies are built.

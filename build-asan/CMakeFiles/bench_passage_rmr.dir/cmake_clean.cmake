file(REMOVE_RECURSE
  "CMakeFiles/bench_passage_rmr.dir/bench/bench_passage_rmr.cpp.o"
  "CMakeFiles/bench_passage_rmr.dir/bench/bench_passage_rmr.cpp.o.d"
  "bench/bench_passage_rmr"
  "bench/bench_passage_rmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_passage_rmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

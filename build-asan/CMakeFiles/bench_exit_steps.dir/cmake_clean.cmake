file(REMOVE_RECURSE
  "CMakeFiles/bench_exit_steps.dir/bench/bench_exit_steps.cpp.o"
  "CMakeFiles/bench_exit_steps.dir/bench/bench_exit_steps.cpp.o.d"
  "bench/bench_exit_steps"
  "bench/bench_exit_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exit_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_svc.dir/bench/bench_svc.cpp.o"
  "CMakeFiles/bench_svc.dir/bench/bench_svc.cpp.o.d"
  "bench/bench_svc"
  "bench/bench_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_lockd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_lockd.dir/bench/bench_lockd.cpp.o"
  "CMakeFiles/bench_lockd.dir/bench/bench_lockd.cpp.o.d"
  "bench/bench_lockd"
  "bench/bench_lockd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lockd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

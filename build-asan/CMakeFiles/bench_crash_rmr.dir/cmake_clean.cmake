file(REMOVE_RECURSE
  "CMakeFiles/bench_crash_rmr.dir/bench/bench_crash_rmr.cpp.o"
  "CMakeFiles/bench_crash_rmr.dir/bench/bench_crash_rmr.cpp.o.d"
  "bench/bench_crash_rmr"
  "bench/bench_crash_rmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crash_rmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

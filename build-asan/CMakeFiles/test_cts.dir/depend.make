# Empty dependencies file for test_cts.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_port_lease.
# This may be replaced when dependencies are built.

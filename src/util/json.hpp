// One JSON-line renderer for every machine-readable line this repo
// prints. Three emitters grew up independently - bench_util's
// BENCH_JSON (compact, no spaces), the soak's SOAK_JSON (spaced ", " /
// ": " separators, pinned by CI greps), and the daemon's LOCKD_STATS
// key=value printf - and each hand-rolled its own escaping and number
// formatting. JsonLine is the one implementation underneath all of
// them (plus the obs layer's METRICS_JSON): a prefix, a style, ordered
// fields, one '\n'-free string out. Schemas stay pinned by
// tools/check_bench_json.py; only the rendering is shared.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <string>

namespace rme::util {

/// Separator style. Both exist because both are load-bearing: CI greps
/// SOAK_JSON for '"anomalies": 0' (with the space) while the BENCH_JSON
/// schema predates it with no spaces. New emitters should pick kSpaced.
enum class JsonStyle {
  kCompact,  // {"k":1,"s":"v"}
  kSpaced,   // {"k": 1, "s": "v"}
};

/// Minimal string escaping for the characters these lines can actually
/// carry (names, commands, arm lists): backslash, quote, control bytes.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// True when `s` already reads as a JSON number (the bench emitters keep
/// numeric parameter strings unquoted so downstream tooling can compare
/// them numerically).
inline bool json_is_number(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  bool digit = false, dot = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digit = true;
    } else if (s[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digit;
}

/// Ordered-field JSON object builder: construct with the line's prefix
/// ("SOAK_JSON", "METRICS_JSON", ...), append fields, str(). Fields
/// render in call order - these lines are diffed and grepped, so order
/// is part of the contract.
class JsonLine {
 public:
  explicit JsonLine(const std::string& prefix,
                    JsonStyle style = JsonStyle::kSpaced)
      : style_(style) {
    out_ = prefix.empty() ? "{" : prefix + " {";
  }

  JsonLine& num(const std::string& key, uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonLine& num(const std::string& key, int64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonLine& num(const std::string& key, int v) {
    return raw(key, std::to_string(v));
  }
  /// %.6g - the bench metric format (float-safe round-trip is not the
  /// goal; stable human/grep-friendly output is).
  JsonLine& num(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return raw(key, buf);
  }
  JsonLine& str(const std::string& key, const std::string& v) {
    return raw(key, "\"" + json_escape(v) + "\"");
  }
  /// Pre-rendered value (a nested array, or a parameter string the
  /// caller keeps unquoted when json_is_number holds).
  JsonLine& raw(const std::string& key, const std::string& rendered) {
    if (!first_) out_ += (style_ == JsonStyle::kSpaced) ? ", " : ",";
    first_ = false;
    out_ += "\"" + json_escape(key) + "\"";
    out_ += (style_ == JsonStyle::kSpaced) ? ": " : ":";
    out_ += rendered;
    return *this;
  }

  std::string str() const { return out_ + "}"; }

 private:
  JsonStyle style_;
  std::string out_;
  bool first_ = true;
};

}  // namespace rme::util

// Lightweight assertion and panic helpers used across the library.
//
// RME_ASSERT is active in all build types (the correctness of a mutual
// exclusion library is worth a compare-and-branch), RME_DCHECK only in
// debug builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rme::util {

[[noreturn]] inline void panic(const char* file, int line, const char* msg) {
  std::fprintf(stderr, "rme: panic at %s:%d: %s\n", file, line, msg);
  std::abort();
}

}  // namespace rme::util

#define RME_ASSERT(cond, msg)                         \
  do {                                                \
    if (!(cond)) {                                    \
      ::rme::util::panic(__FILE__, __LINE__, (msg));  \
    }                                                 \
  } while (0)

#ifndef NDEBUG
#define RME_DCHECK(cond, msg) RME_ASSERT(cond, msg)
#else
#define RME_DCHECK(cond, msg) \
  do {                        \
  } while (0)
#endif

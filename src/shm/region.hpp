// rme::shm - POSIX shared-memory regions with an ATTACH-ANYWHERE
// contract, the substrate of the cross-process service boundary.
//
// A Region wraps one shm_open'd object mapped MAP_SHARED into every
// participating process. The region starts with a RegionHeader: layout
// identification (magic/version/ABI), the arena bump cursor the
// platform::Arena hands out region memory from, the dynamic limit word
// and segment directory that let the region GROW, the root-object
// offset, and the PID REGISTRY - one slot per logical pid, claimed by
// fetch-and-store and carrying the per-process EPOCH word that fences a
// restarted process (see PidSlot below and docs/recovery.md).
//
// THE ATTACH-ANYWHERE CONTRACT (region ABI v5). Every link stored in
// region memory - queue-node Pred fields, Seq element pointers, go-flag
// addresses, the QSBR lists, futex park keys - is a SELF-RELATIVE offset
// (shm/offptr.hpp), so the mapped bytes mean the same thing at any base.
// attach() therefore maps wherever the kernel chooses (or at the
// RME_SHM_MAP_HINT=<hex> soft hint, which tests use to force DISTINCT
// bases per process); the creator still maps at a name-derived hint for
// determinism but records whatever it got. The former fixed-address
// contract (v4 and earlier, MAP_FIXED_NOREPLACE at the creator's base)
// survives as an opt-in fast path: RME_SHM_FIXED=1 restores the old
// behaviour, including the loud address-busy failure. Old-ABI regions
// are refused with an error naming both versions.
//
// GROWTH. Each process maps the full `bytes` VA span up front but the
// backing object starts at `limit` bytes (limit <= bytes). Touching
// pages past the object's end would SIGBUS, so the arena never hands
// them out: allocation is bounded by the region-resident limit word.
// When a growable arena exhausts it, the grow hook (region_grow, wired
// into platform::arena_grow_hook by ShmWorld) serialises through the
// grow_guard FAS, ftruncate-extends the object - which instantly backs
// the already-mapped span in EVERY attached process, no remap, no
// notification - appends a segment-directory entry, and release-stores
// the new limit. RME_NO_GROW (or ShmWorld::set_grow_enabled(false))
// restores the old clean-refusal-at-capacity behaviour.
//
// QUIESCE-AND-COMPACT. compact_region() drains sessions via the
// header's quiesce word (ShmWorld::claim refuses while it is set),
// copies the live prefix [0, cursor) verbatim into a fresh shm object
// (self-relative links survive a prefix copy by construction), resets
// the segment directory, and republishes by rename(2) of the /dev/shm
// entry. The OLD object keeps quiesce=1 forever, so stale handles are
// refused on their next claim and re-attach by name, landing on the
// compacted object. Telemetry rows ride along verbatim, so obs counters
// stay monotone across the pass.
//
// Process death is the expected failure mode: a SIGKILL'd holder leaves
// the region exactly as the paper's crash model leaves NVM, and the
// restart path (shm::ShmWorld::claim takeover + lock-level recovery)
// plays the role of the paper's recovery section.
#pragma once

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/syscall.h>
#endif

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "platform/park.hpp"
#include "util/assert.hpp"

namespace rme::shm {

// Region-layer failures (name collisions, ABI mismatch, address-space
// collisions, a busy pid slot). Exceptions rather than aborts: callers
// (workers, tests, operators) can usually retry with a different name or
// report which process holds a slot.
class ShmError : public std::runtime_error {
 public:
  explicit ShmError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr uint32_t kMagic = 0x524d4531u;  // "RME1"
// v3: WaitArena (region-resident futex wait words) in the header,
// start-time word in each PidSlot. abi_hash() folds in
// sizeof(RegionHeader), so v2 regions are refused loudly.
// v4: obs::MetricsArena (per-pid seqlocked telemetry rows, shard heat,
// latency histograms) in the header; same refusal mechanics for v3.
// v5: position-independent state (self-relative links, attach-anywhere),
// growable backing (limit word + segment directory + grow guard), and
// the quiesce word for compaction. v4 regions hold absolute pointers
// that would be garbage at a different base, so they are refused with a
// versioned error; recreate the region with a v5 build (see README,
// "Region ABI & migration").
inline constexpr uint32_t kVersion = 5;
// Capacity of the shm-object name copy in the header (the grow hook
// reopens the object by name).
inline constexpr size_t kNameMax = 64;
// Segment-directory capacity: one entry per growth step. With doubling
// growth this bounds a region to 2^23 x its initial size - far beyond
// any real VA span - so hitting the cap means a refusal, not corruption.
inline constexpr int kMaxSegs = 24;
// Attach-base ledger entries (diagnostics: the last few mapping bases).
inline constexpr int kAttachLedger = 8;
// Upper bound on logical pids per region; sized so the registry stays a
// small fixed header array. (A logical pid is a session identity, not an
// OS pid: one OS process may drive several - the auditing parent does.)
inline constexpr int kMaxProcs = 64;

// ---------------------------------------------------------------------------
// PidSlot: one pid-registry entry.
//
// Claim protocol (FAS only, in the spirit of the paper's instruction
// budget - no CAS anywhere in the handshake):
//
//   fresh claim:  state.exchange(kClaimed) returns kFree -> the slot is
//                 ours exclusively; record our OS pid, bump the epoch.
//   busy:         exchange returned kClaimed and the recorded OS pid is
//                 LIVE -> hands off (the exchange changed nothing).
//   takeover:     exchange returned kClaimed and the recorded owner is
//                 dead -> serialise rivals through the `takeover` FAS
//                 guard, re-verify the owner is still the same dead
//                 process, install ourselves, bump the epoch, drop the
//                 guard. The caller then REPLAYS RECOVERY (the lock
//                 layer's persisted leases/intents name the work) before
//                 doing anything else with the pid.
//
// The EPOCH word is the fence: it increments exactly once per
// (re)incarnation of the pid, only ever under slot ownership (plain
// read+write, single-writer by construction). A handle minted in
// incarnation e is STALE once slot.epoch != e - its process was declared
// dead and superseded, so its guards and sessions must not touch the
// lock again (ShmWorld::fenced / SessionLease::fenced surface this).
//
// Liveness is pidfd_open (ESRCH = dead; kill(pid, 0) when the syscall is
// unavailable or inconclusive) CROSS-CHECKED against the owner's recorded
// /proc/<pid>/stat start time: a recycled OS pid exists but has a
// different start time, so it no longer masquerades as the dead owner.
// This closes the pid-reuse window earlier versions documented in
// docs/recovery.md ("liveness and pid reuse").
// ---------------------------------------------------------------------------
struct PidSlot {
  static constexpr uint32_t kFree = 0;
  static constexpr uint32_t kClaimed = 1;

  std::atomic<uint32_t> state;     // kFree / kClaimed; transitions by FAS
  std::atomic<uint32_t> takeover;  // FAS guard serialising dead-owner takeover
  std::atomic<int64_t> os_pid;     // OS pid of the current owner (0 = none)
  std::atomic<uint64_t> epoch;     // incarnation count; monotone, never reset
  std::atomic<uint64_t> start_time;  // owner's /proc stat starttime (0 =
                                     // unknown); written with os_pid, the
                                     // pid-reuse cross-check
};

// Segment directory: one cumulative end-offset per growth step, so an
// operator (rme-regionctl segs) or an audit can reconstruct the growth
// history and check it against the live limit and the file size.
// hi[0] is the initial (create-time) object size; entries are strictly
// increasing; hi[count-1] == limit == fstat(file).st_size at quiescence.
struct SegDir {
  std::atomic<uint32_t> count;  // live entries in hi[]
  uint32_t pad_;
  std::atomic<uint64_t> gen;    // bumps on every grow AND every compact
  std::atomic<uint64_t> hi[kMaxSegs];
};

struct RegionHeader {
  // Atomic and written LAST by create() (release): the attach-side peek
  // waits on it before trusting any other header field.
  std::atomic<uint32_t> magic;
  uint32_t version;
  uint64_t abi_hash;  // layout fingerprint; attach refuses a mismatch
  uint64_t base;      // creator's mapping address (RME_SHM_FIXED target)
  uint64_t bytes;     // mapped VA span per process == growth ceiling
  std::atomic<uint64_t> limit;     // current usable bytes == object size
  std::atomic<uint64_t> cursor;    // arena bump pointer (byte offset)
  std::atomic<uint64_t> root_off;  // offset of the root object (0 = none)
  uint64_t root_size;              // sizeof(root type): weak type check
  std::atomic<uint32_t> ready;     // creator publishes after construction
  int32_t nprocs;                  // logical pids the world was created for
  int32_t ring_slots;              // per-pid flag-ring size
  std::atomic<uint32_t> grow_guard;  // FAS guard serialising growth
  std::atomic<uint32_t> quiesce;     // set: admissions refused (compacting)
  uint32_t pad_;
  char name[kNameMax];             // shm object name (grow hook reopens it)
  SegDir segs;                     // growth history
  std::atomic<uint32_t> attach_seq;  // total attaches (ledger cursor)
  uint32_t pad2_;
  std::atomic<uint64_t> attach_base[kAttachLedger];  // recent mapping bases
  uint64_t ring_off[kMaxProcs];    // per-pid flag-ring slot arrays
  PidSlot slots[kMaxProcs];        // the pid registry
  platform::WaitArena wait;        // per-pid futex wait words (FutexLot)
  obs::MetricsArena metrics;       // per-pid telemetry rows (rme::obs)
};

static_assert(kMaxProcs <= platform::WaitArena::kSlots,
              "WaitArena must hold one wait word per logical pid");
static_assert(kMaxProcs <= obs::MetricsArena::kRows,
              "MetricsArena must hold one telemetry row per logical pid");

inline uint64_t abi_hash() {
  // Coarse fingerprint: enough to catch a 32/64-bit or header-layout skew
  // between creator and attacher builds.
  return (uint64_t{kVersion} << 48) ^ (sizeof(RegionHeader) << 16) ^
         sizeof(void*);
}

inline uint64_t name_hash(const std::string& s) {  // FNV-1a
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Name-derived mapping hint (2 MiB aligned) in a zone that is almost
// always free under default Linux ASLR. Only the CREATOR uses it (for
// deterministic layouts in debugging); since v5 it is a soft hint - the
// kernel relocating it is fine, the recorded base is whatever mmap
// returned. Attachers map kernel-chosen unless RME_SHM_MAP_HINT or
// RME_SHM_FIXED says otherwise.
inline void* map_hint(const std::string& name) {
  const uint64_t lane = name_hash(name) % (1ull << 16);
  return reinterpret_cast<void*>(0x5e00'0000'0000ull + (lane << 21));
}

// The attacher-side soft mapping hint: RME_SHM_MAP_HINT=<hex address>.
// Tests set a different value per spawned process to force DISTINCT
// attach bases and prove position independence.
inline void* env_map_hint() {
  const char* h = std::getenv("RME_SHM_MAP_HINT");
  if (h == nullptr || *h == '\0') return nullptr;
  return reinterpret_cast<void*>(std::strtoull(h, nullptr, 16));
}

// The process's kernel start time (/proc/<pid>/stat field 22, clock
// ticks since boot) - the disambiguator that survives OS pid reuse: a
// recycled pid has a different start time. 0 = unknown (no /proc, the
// process is gone, or the stat line was unreadable).
inline uint64_t proc_start_time(int64_t pid) {
  if (pid <= 0) return 0;
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/%lld/stat",
                static_cast<long long>(pid));
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return 0;
  char buf[1024];
  const ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  ::close(fd);
  if (n <= 0) return 0;
  buf[n] = '\0';
  // comm (field 2) may itself contain spaces and parens: skip to the
  // LAST ')' then count fields - starttime is the 20th after comm.
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) return 0;
  ++p;
  for (int field = 0; field < 19; ++field) {  // state(3) .. itrealvalue(21)
    while (*p == ' ') ++p;
    while (*p != '\0' && *p != ' ') ++p;
  }
  while (*p == ' ') ++p;
  return std::strtoull(p, nullptr, 10);
}

// Does an OS process with this pid exist at all? pidfd_open is the
// race-free probe (a pidfd names the process, not the pid); only its
// definitive answers are trusted - any other errno (ENOSYS on old
// kernels, a seccomp refusal) falls back to the kill(pid, 0) probe,
// where EPERM still means "exists".
inline bool os_pid_exists(int64_t pid) {
#if defined(__linux__) && defined(SYS_pidfd_open)
  const long fd = ::syscall(SYS_pidfd_open, static_cast<pid_t>(pid), 0u);
  if (fd >= 0) {
    ::close(static_cast<int>(fd));
    return true;
  }
  if (errno == ESRCH) return false;
#endif
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno != ESRCH;
}

// True when the OS process named by `pid` is the SAME process the slot
// recorded. Existence alone has a pid-reuse hole: the owner dies, the
// kernel recycles its pid, and the impostor looks live forever (a stuck
// slot). When the slot recorded the owner's start time, a mismatching
// start time unmasks the impostor: the owner is dead, takeover may
// proceed. `recorded_start == 0` (pre-record or unreadable /proc)
// degrades to the existence probe.
inline bool os_pid_alive(int64_t pid, uint64_t recorded_start = 0) {
  if (pid <= 0) return false;
  if (!os_pid_exists(pid)) return false;
  if (recorded_start != 0) {
    const uint64_t now_start = proc_start_time(pid);
    if (now_start != 0 && now_start != recorded_start) return false;
  }
  return true;
}

class Region {
 public:
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;
  Region(Region&& o) noexcept
      : name_(std::move(o.name_)),
        base_(std::exchange(o.base_, nullptr)),
        bytes_(std::exchange(o.bytes_, 0)),
        creator_(std::exchange(o.creator_, false)),
        unlink_(std::exchange(o.unlink_, false)) {}

  ~Region() {
    if (base_ != nullptr) ::munmap(base_, bytes_);
    if (unlink_) ::shm_unlink(name_.c_str());
  }

  // Create a fresh region (fails if `name` exists). The backing object
  // starts at `bytes`; the process maps a `max_bytes` VA span (default
  // 8 x bytes) so the object can grow in place - extending the file
  // instantly backs the span in every attached process. The header is
  // initialised but NOT published: the creator constructs its world/root
  // first, then ShmWorld publishes.
  static Region create(const std::string& name, size_t bytes,
                       size_t max_bytes = 0) {
    RME_ASSERT(bytes >= sizeof(RegionHeader) + 4096, "Region: too small");
    RME_ASSERT(name.size() < kNameMax, "Region: name too long");
    if (max_bytes < bytes) max_bytes = bytes * 8;
    const int fd =
        ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) {
      throw ShmError("shm_open(create " + name + "): " +
                     std::strerror(errno));
    }
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
      const int e = errno;
      ::close(fd);
      ::shm_unlink(name.c_str());
      throw ShmError("ftruncate(" + name + "): " + std::strerror(e));
    }
    // Map the full growth span; only the first `bytes` are backed yet
    // (the limit word keeps the arena inside the backed prefix). The
    // name-derived hint is soft: relocation is fine under offset links.
    void* base = ::mmap(map_hint(name), max_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED, fd, 0);
    ::close(fd);  // the mapping keeps the object alive
    if (base == MAP_FAILED) {
      ::shm_unlink(name.c_str());
      throw ShmError("mmap(create " + name + "): " + std::strerror(errno));
    }
    // Value-initialise in place: zeroes every field, including the
    // registry's atomics (fresh shm pages are zero anyway; this keeps the
    // types honest).
    auto* hdr = ::new (base) RegionHeader();
    hdr->version = kVersion;
    hdr->abi_hash = abi_hash();
    hdr->base = reinterpret_cast<uint64_t>(base);
    hdr->bytes = max_bytes;
    hdr->limit.store(bytes, std::memory_order_relaxed);
    hdr->cursor.store(payload_offset(), std::memory_order_relaxed);
    std::snprintf(hdr->name, kNameMax, "%s", name.c_str());
    hdr->segs.count.store(1, std::memory_order_relaxed);
    hdr->segs.gen.store(1, std::memory_order_relaxed);
    hdr->segs.hi[0].store(bytes, std::memory_order_relaxed);
    hdr->attach_base[0].store(reinterpret_cast<uint64_t>(base),
                              std::memory_order_relaxed);
    hdr->attach_seq.store(1, std::memory_order_relaxed);
    // Magic last, release: an attacher's peek trusts the fields above
    // only after observing it.
    hdr->magic.store(kMagic, std::memory_order_release);
    Region r;
    r.name_ = name;
    r.base_ = base;
    r.bytes_ = max_bytes;
    r.creator_ = true;
    r.unlink_ = true;
    return r;
  }

  // Attach to an existing region at ANY base (attach-anywhere, v5): the
  // kernel picks the address unless RME_SHM_MAP_HINT=<hex> suggests one
  // (a soft hint - relocation is fine) or RME_SHM_FIXED=1 opts into the
  // legacy fixed-address fast path (MAP_FIXED_NOREPLACE at the creator's
  // recorded base, failing loudly when the address is busy). Waits up to
  // `publish_timeout_ms` for the creator to publish the constructed
  // world - including the earlier windows where the object exists but is
  // not yet sized (ftruncate pending: touching the pages would SIGBUS)
  // or sized but its header not yet written (reading it would look like
  // an ABI mismatch).
  static Region attach(const std::string& name,
                       int publish_timeout_ms = 10000) {
    const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
    if (fd < 0) {
      throw ShmError("shm_open(attach " + name + "): " +
                     std::strerror(errno));
    }
    // Wait for the creator's ftruncate: mapping past the object's end
    // and touching it is SIGBUS, so never peek a short object.
    int waited = 0;
    struct stat st {};
    for (;;) {
      if (::fstat(fd, &st) != 0) {
        const int e = errno;
        ::close(fd);
        throw ShmError("fstat(" + name + "): " + std::strerror(e));
      }
      if (static_cast<size_t>(st.st_size) >= sizeof(RegionHeader)) break;
      if (waited++ >= publish_timeout_ms) {
        ::close(fd);
        throw ShmError("region " + name + ": creator never sized it");
      }
      ::usleep(1000);
    }
    // Peek the header through a throwaway mapping to learn the base
    // address and size; wait for the magic (written directly after the
    // header is zeroed) before trusting any field.
    void* peek = ::mmap(nullptr, sizeof(RegionHeader), PROT_READ, MAP_SHARED,
                        fd, 0);
    if (peek == MAP_FAILED) {
      const int e = errno;
      ::close(fd);
      throw ShmError("mmap(peek " + name + "): " + std::strerror(e));
    }
    const auto* ph = static_cast<const RegionHeader*>(peek);
    while (ph->magic.load(std::memory_order_acquire) != kMagic) {
      if (waited++ >= publish_timeout_ms) {
        ::munmap(peek, sizeof(RegionHeader));
        ::close(fd);
        throw ShmError("region " + name + ": header never initialised");
      }
      ::usleep(1000);
    }
    if (ph->version != kVersion) {
      const uint32_t got = ph->version;
      ::munmap(peek, sizeof(RegionHeader));
      ::close(fd);
      throw ShmError("region " + name + ": region ABI version " +
                     std::to_string(got) + ", this build needs version " +
                     std::to_string(kVersion) +
                     " (position-independent links); recreate the region "
                     "with a matching build - see README, 'Region ABI & "
                     "migration'");
    }
    if (ph->abi_hash != abi_hash()) {
      ::munmap(peek, sizeof(RegionHeader));
      ::close(fd);
      throw ShmError("region " + name + ": header-layout (ABI hash) " +
                     "mismatch at version " + std::to_string(kVersion) +
                     "; creator and attacher builds differ");
    }
    void* want = reinterpret_cast<void*>(ph->base);
    const size_t bytes = ph->bytes;  // the full VA span, not the file size
    ::munmap(peek, sizeof(RegionHeader));

    void* base = MAP_FAILED;
    const bool fixed = std::getenv("RME_SHM_FIXED") != nullptr;
    if (fixed) {
      // Legacy fixed-address fast path: same base in every process, so
      // absolute-pointer debugging tools line up. Failure is loud, never
      // a silent relocation.
#if defined(MAP_FIXED_NOREPLACE)
      base = ::mmap(want, bytes, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_FIXED_NOREPLACE, fd, 0);
#else
      base = ::mmap(want, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
      if (base != MAP_FAILED && base != want) {  // kernel relocated the hint
        ::munmap(base, bytes);
        base = MAP_FAILED;
        errno = EEXIST;
      }
#endif
      if (base == MAP_FAILED || base != want) {
        if (base != MAP_FAILED) ::munmap(base, bytes);
        ::close(fd);
        throw ShmError("region " + name +
                       ": fixed-address attach failed (address busy); "
                       "RME_SHM_FIXED=1 requires the creator's base");
      }
    } else {
      // Attach-anywhere: kernel-chosen, or the RME_SHM_MAP_HINT soft
      // hint. Either way the offset links make the mapping position
      // independent.
      base = ::mmap(env_map_hint(), bytes, PROT_READ | PROT_WRITE,
                    MAP_SHARED, fd, 0);
      if (base == MAP_FAILED) {
        const int e = errno;
        ::close(fd);
        throw ShmError("mmap(attach " + name + "): " + std::strerror(e));
      }
    }
    ::close(fd);
    Region r;
    r.name_ = name;
    r.base_ = base;
    r.bytes_ = bytes;
    r.creator_ = false;
    r.unlink_ = false;
    // Record this mapping in the attach-base ledger (diagnostics; tests
    // assert processes really did land at distinct bases).
    auto* hdr = static_cast<RegionHeader*>(base);
    const uint32_t seq =
        hdr->attach_seq.fetch_add(1, std::memory_order_relaxed);
    hdr->attach_base[seq % kAttachLedger].store(
        reinterpret_cast<uint64_t>(base), std::memory_order_relaxed);
    // Wait for the creator to publish the constructed world.
    for (int waited = 0; hdr->ready.load(std::memory_order_acquire) == 0;
         waited += 1) {
      if (waited >= publish_timeout_ms) {
        throw ShmError("region " + name + ": creator never published");
      }
      ::usleep(1000);
    }
    return r;
  }

  RegionHeader* header() const { return static_cast<RegionHeader*>(base_); }
  char* base() const { return static_cast<char*>(base_); }
  // The mapped VA span (== the growth ceiling).
  size_t bytes() const { return bytes_; }
  // The currently usable (file-backed) byte count.
  uint64_t limit() const {
    return header()->limit.load(std::memory_order_acquire);
  }
  bool creator() const { return creator_; }
  const std::string& name() const { return name_; }

  // Creator-side knob: keep the shm object on destruction (hand-off to a
  // successor process) instead of unlinking it.
  void set_unlink_on_destroy(bool v) { unlink_ = v; }

  // First allocatable byte: the header, rounded up to a cache line.
  static constexpr uint64_t payload_offset() {
    return (sizeof(RegionHeader) + 63) & ~uint64_t{63};
  }

 private:
  Region() = default;

  std::string name_;
  void* base_ = nullptr;
  size_t bytes_ = 0;
  bool creator_ = false;
  bool unlink_ = false;
};

// ---------------------------------------------------------------------------
// RoRegion: a strictly read-only view of a live region - the inspector
// path (tools/rme_regionctl.cpp). Opens the shm object O_RDONLY and
// maps PROT_READ at ANY address: an inspector only reads the header's
// embedded arenas (registry, WaitArena, MetricsArena), which are
// offset-addressed, so it does not need - and must not contend for -
// the fixed-address mapping contract, and a stray bug in it cannot
// perturb the region under observation. Same magic/version/ABI checks
// as attach(); no waiting for `ready` beyond the header (an inspector
// may legitimately watch a world that is still constructing).
// ---------------------------------------------------------------------------
class RoRegion {
 public:
  RoRegion(const RoRegion&) = delete;
  RoRegion& operator=(const RoRegion&) = delete;
  RoRegion(RoRegion&& o) noexcept
      : name_(std::move(o.name_)),
        base_(std::exchange(o.base_, nullptr)),
        bytes_(std::exchange(o.bytes_, 0)) {}

  ~RoRegion() {
    if (base_ != nullptr) ::munmap(base_, bytes_);
  }

  static RoRegion open(const std::string& name,
                       int publish_timeout_ms = 10000) {
    const int fd = ::shm_open(name.c_str(), O_RDONLY, 0);
    if (fd < 0) {
      throw ShmError("shm_open(inspect " + name + "): " +
                     std::strerror(errno));
    }
    int waited = 0;
    struct stat st {};
    for (;;) {
      if (::fstat(fd, &st) != 0) {
        const int e = errno;
        ::close(fd);
        throw ShmError("fstat(" + name + "): " + std::strerror(e));
      }
      if (static_cast<size_t>(st.st_size) >= sizeof(RegionHeader)) break;
      if (waited++ >= publish_timeout_ms) {
        ::close(fd);
        throw ShmError("region " + name + ": creator never sized it");
      }
      ::usleep(1000);
    }
    const size_t bytes = static_cast<size_t>(st.st_size);
    void* base = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      throw ShmError("mmap(inspect " + name + "): " + std::strerror(errno));
    }
    const auto* hdr = static_cast<const RegionHeader*>(base);
    while (hdr->magic.load(std::memory_order_acquire) != kMagic) {
      if (waited++ >= publish_timeout_ms) {
        ::munmap(base, bytes);
        throw ShmError("region " + name + ": header never initialised");
      }
      ::usleep(1000);
    }
    if (hdr->version != kVersion || hdr->abi_hash != abi_hash()) {
      const uint32_t got = hdr->version;
      ::munmap(base, bytes);
      throw ShmError("region " + name + ": region ABI version " +
                     std::to_string(got) + ", this build needs version " +
                     std::to_string(kVersion) + "; recreate the region "
                     "with a matching build");
    }
    RoRegion r;
    r.name_ = name;
    r.base_ = base;
    r.bytes_ = bytes;
    return r;
  }

  const RegionHeader* header() const {
    return static_cast<const RegionHeader*>(base_);
  }
  size_t bytes() const { return bytes_; }
  const std::string& name() const { return name_; }

 private:
  RoRegion() = default;

  std::string name_;
  void* base_ = nullptr;
  size_t bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Growth. The platform::arena_grow_hook target (ShmWorld registers it):
// extend the backing object until the dynamic limit covers `need` bytes,
// within the pre-mapped VA span. Growth is ftruncate-only - every
// attached process mapped the full span at attach time, so the new pages
// appear everywhere at once with no remap and no notification; the
// release-store of the limit word is the only publication needed.
//
// Serialisation is a FAS guard (grow_guard), matching the registry's
// instruction discipline. A process SIGKILL'd while holding the guard
// decays growth for everyone (bounded wait below, then clean refusal) -
// capacity decay, the same failure mode as a full retired list, never
// corruption: the guard holder's partial work (an oversized file, an
// unpublished segment entry) is idempotently redone by the next grower.
// ---------------------------------------------------------------------------
inline bool region_grow(char* region_base, uint64_t need) {
  auto* hdr = reinterpret_cast<RegionHeader*>(region_base);
  if (hdr->magic.load(std::memory_order_acquire) != kMagic) return false;
  if (hdr->quiesce.load(std::memory_order_acquire) != 0) return false;
  int waited = 0;
  for (;;) {
    const uint64_t cur = hdr->limit.load(std::memory_order_acquire);
    if (cur >= need) return true;  // a rival already grew past `need`
    if (need > hdr->bytes) return false;  // beyond the mapped span
    if (hdr->grow_guard.exchange(1, std::memory_order_acq_rel) != 0) {
      // A rival is mid-grow. Bounded wait (~2s): if the guard never
      // drops (its holder was killed inside the window), refuse cleanly
      // rather than spin forever.
      if (waited++ >= 20000) return false;
      ::usleep(100);
      continue;
    }
    // Guard held: recheck, size the step, extend, publish, drop.
    const uint64_t at = hdr->limit.load(std::memory_order_relaxed);
    if (at >= need) {
      hdr->grow_guard.store(0, std::memory_order_release);
      return true;
    }
    uint64_t next = at * 2;  // doubling keeps growth O(log span) steps
    if (next < need) next = need;
    next = (next + ((1u << 20) - 1)) & ~uint64_t{(1u << 20) - 1};
    if (next > hdr->bytes) next = hdr->bytes;
    const uint32_t slot = hdr->segs.count.load(std::memory_order_relaxed);
    if (next < need || slot >= static_cast<uint32_t>(kMaxSegs)) {
      hdr->grow_guard.store(0, std::memory_order_release);
      return false;  // span ceiling or directory full: clean refusal
    }
    const int fd = ::shm_open(hdr->name, O_RDWR, 0600);
    if (fd < 0) {
      hdr->grow_guard.store(0, std::memory_order_release);
      return false;
    }
    const int rc = ::ftruncate(fd, static_cast<off_t>(next));
    ::close(fd);
    if (rc != 0) {
      hdr->grow_guard.store(0, std::memory_order_release);
      return false;
    }
    hdr->segs.hi[slot].store(next, std::memory_order_release);
    hdr->segs.count.store(slot + 1, std::memory_order_release);
    hdr->segs.gen.fetch_add(1, std::memory_order_acq_rel);
    // The limit release-store is the publication point: an allocator's
    // acquire load of it sees the extended object.
    hdr->limit.store(next, std::memory_order_release);
    hdr->grow_guard.store(0, std::memory_order_release);
    return true;
  }
}

// ---------------------------------------------------------------------------
// Quiesce-and-compact. Drains sessions via the quiesce word (ShmWorld::
// claim refuses admissions while it is set, so the registry empties as
// live sessions release), copies the live prefix [0, cursor) verbatim
// into a fresh shm object trimmed to the live size, resets the segment
// directory, and republishes by renaming the /dev/shm entry over the old
// name - atomic on Linux. Stale handles keep their old mapping, whose
// quiesce word stays set FOREVER: their next claim throws and the owner
// re-attaches by name, landing on the compacted object.
//
// Correctness leans on two properties: (1) every in-region link is
// self-relative, so a verbatim prefix copy preserves all of them; (2) at
// quiescence nobody writes the region (claims are refused, all slots are
// kFree), so the copy is a consistent snapshot. Telemetry rows are part
// of the prefix, so obs counters are monotone across the pass by
// construction.
// ---------------------------------------------------------------------------
struct CompactReport {
  uint64_t old_limit = 0;   // usable bytes before
  uint64_t new_limit = 0;   // usable bytes after (== live size, rounded)
  uint64_t live_bytes = 0;  // arena cursor at the pass
  uint64_t seg_gen = 0;     // segment-directory generation after
};

inline CompactReport compact_region(const std::string& name,
                                    int drain_timeout_ms = 10000) {
  Region r = Region::attach(name);
  RegionHeader* hdr = r.header();
  // Close admissions. seq_cst pairs with claim()'s post-FAS recheck: any
  // claim that slipped past this store backs itself out, so once every
  // slot reads kFree below, no new session can appear.
  hdr->quiesce.store(1, std::memory_order_seq_cst);
  int waited = 0;
  for (;;) {
    bool busy = false;
    for (int p = 0; p < hdr->nprocs; ++p) {
      if (hdr->slots[p].state.load(std::memory_order_seq_cst) !=
          PidSlot::kFree) {
        busy = true;
        break;
      }
    }
    if (!busy) break;
    if (waited++ >= drain_timeout_ms) {
      hdr->quiesce.store(0, std::memory_order_release);  // reopen, give up
      throw ShmError("region " + name +
                     ": sessions never drained for compact");
    }
    ::usleep(1000);
  }

  CompactReport rep;
  rep.old_limit = hdr->limit.load(std::memory_order_acquire);
  rep.live_bytes = hdr->cursor.load(std::memory_order_acquire);
  // Trim to the live prefix plus a little slack, 1 MiB-rounded, and
  // never above the span (the copy keeps the same growth ceiling).
  uint64_t new_limit = rep.live_bytes + (64u << 10);
  new_limit = (new_limit + ((1u << 20) - 1)) & ~uint64_t{(1u << 20) - 1};
  if (new_limit > hdr->bytes) new_limit = hdr->bytes;

  const std::string tmp = name + ".cmp";
  ::shm_unlink(tmp.c_str());  // stale leftover from a crashed pass
  const int fd = ::shm_open(tmp.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    hdr->quiesce.store(0, std::memory_order_release);
    throw ShmError("shm_open(compact " + name + "): " +
                   std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(new_limit)) != 0) {
    const int e = errno;
    ::close(fd);
    ::shm_unlink(tmp.c_str());
    hdr->quiesce.store(0, std::memory_order_release);
    throw ShmError("ftruncate(compact " + name + "): " + std::strerror(e));
  }
  void* nb = ::mmap(nullptr, new_limit, PROT_READ | PROT_WRITE, MAP_SHARED,
                    fd, 0);
  ::close(fd);
  if (nb == MAP_FAILED) {
    ::shm_unlink(tmp.c_str());
    hdr->quiesce.store(0, std::memory_order_release);
    throw ShmError("mmap(compact " + name + "): " + std::strerror(errno));
  }
  // The verbatim prefix copy: header + every live arena object, offset
  // links and telemetry included.
  std::memcpy(nb, r.base(), rep.live_bytes);
  auto* nh = static_cast<RegionHeader*>(nb);
  nh->limit.store(new_limit, std::memory_order_relaxed);
  nh->grow_guard.store(0, std::memory_order_relaxed);
  nh->segs.count.store(1, std::memory_order_relaxed);
  nh->segs.hi[0].store(new_limit, std::memory_order_relaxed);
  for (int s = 1; s < kMaxSegs; ++s) {
    nh->segs.hi[s].store(0, std::memory_order_relaxed);
  }
  rep.seg_gen = hdr->segs.gen.load(std::memory_order_relaxed) + 1;
  nh->segs.gen.store(rep.seg_gen, std::memory_order_relaxed);
  // Reopen admissions in the NEW object only; the old one stays quiesced
  // forever so stale handles are turned away.
  nh->quiesce.store(0, std::memory_order_release);
  ::munmap(nb, new_limit);

  // Republish: atomically point the name at the compacted object. POSIX
  // shm names live in /dev/shm on Linux; rename(2) there is the atomic
  // swing. (Non-Linux shm backends would need a different republish.)
  const std::string from = "/dev/shm" + tmp;
  const std::string to = "/dev/shm" + name;
  if (::rename(from.c_str(), to.c_str()) != 0) {
    const int e = errno;
    ::shm_unlink(tmp.c_str());
    hdr->quiesce.store(0, std::memory_order_release);
    throw ShmError("rename(compact " + name + "): " + std::strerror(e));
  }
  rep.new_limit = new_limit;
  return rep;
}

}  // namespace rme::shm

// rme::shm - POSIX shared-memory regions with a fixed-address mapping
// contract, the substrate of the cross-process service boundary.
//
// A Region wraps one shm_open'd object mapped MAP_SHARED into every
// participating process. The region starts with a RegionHeader: layout
// identification (magic/version/ABI), the arena bump cursor the
// platform::Arena hands out region memory from, the root-object offset,
// and the PID REGISTRY - one slot per logical pid, claimed by
// fetch-and-store and carrying the per-process EPOCH word that fences a
// restarted process (see PidSlot below and docs/recovery.md).
//
// THE FIXED-ADDRESS MAPPING CONTRACT. The lock state this library places
// in regions is pointer-linked (queue nodes hold Node* predecessors, the
// table's shards embed each other's addresses). Rather than rewrite the
// verified core in offset arithmetic, the region is mapped at the SAME
// virtual address in every process: the creator maps at a name-derived
// hint in a rarely-used part of the address space and records the actual
// base in the header; attach() maps MAP_FIXED_NOREPLACE at exactly that
// base and fails loudly (kAddressBusy) if this process already occupies
// it. In-region pointers to in-region memory then mean the same thing
// everywhere, and the paper's algorithms run verbatim. The hint range
// (0x5e00'0000'0000 + hash(name), 2 MiB aligned) sits between the
// typical PIE heap (~0x55xx) and library mmap (~0x7fxx) zones, so
// collisions are rare; a colliding attach is an error, never silent
// relocation.
//
// Process death is the expected failure mode: a SIGKILL'd holder leaves
// the region exactly as the paper's crash model leaves NVM, and the
// restart path (shm::ShmWorld::claim takeover + lock-level recovery)
// plays the role of the paper's recovery section.
#pragma once

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/syscall.h>
#endif

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "platform/park.hpp"
#include "util/assert.hpp"

namespace rme::shm {

// Region-layer failures (name collisions, ABI mismatch, address-space
// collisions, a busy pid slot). Exceptions rather than aborts: callers
// (workers, tests, operators) can usually retry with a different name or
// report which process holds a slot.
class ShmError : public std::runtime_error {
 public:
  explicit ShmError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr uint32_t kMagic = 0x524d4531u;  // "RME1"
// v3: WaitArena (region-resident futex wait words) in the header,
// start-time word in each PidSlot. abi_hash() folds in
// sizeof(RegionHeader), so v2 regions are refused loudly.
// v4: obs::MetricsArena (per-pid seqlocked telemetry rows, shard heat,
// latency histograms) in the header; same refusal mechanics for v3.
inline constexpr uint32_t kVersion = 4;
// Upper bound on logical pids per region; sized so the registry stays a
// small fixed header array. (A logical pid is a session identity, not an
// OS pid: one OS process may drive several - the auditing parent does.)
inline constexpr int kMaxProcs = 64;

// ---------------------------------------------------------------------------
// PidSlot: one pid-registry entry.
//
// Claim protocol (FAS only, in the spirit of the paper's instruction
// budget - no CAS anywhere in the handshake):
//
//   fresh claim:  state.exchange(kClaimed) returns kFree -> the slot is
//                 ours exclusively; record our OS pid, bump the epoch.
//   busy:         exchange returned kClaimed and the recorded OS pid is
//                 LIVE -> hands off (the exchange changed nothing).
//   takeover:     exchange returned kClaimed and the recorded owner is
//                 dead -> serialise rivals through the `takeover` FAS
//                 guard, re-verify the owner is still the same dead
//                 process, install ourselves, bump the epoch, drop the
//                 guard. The caller then REPLAYS RECOVERY (the lock
//                 layer's persisted leases/intents name the work) before
//                 doing anything else with the pid.
//
// The EPOCH word is the fence: it increments exactly once per
// (re)incarnation of the pid, only ever under slot ownership (plain
// read+write, single-writer by construction). A handle minted in
// incarnation e is STALE once slot.epoch != e - its process was declared
// dead and superseded, so its guards and sessions must not touch the
// lock again (ShmWorld::fenced / SessionLease::fenced surface this).
//
// Liveness is pidfd_open (ESRCH = dead; kill(pid, 0) when the syscall is
// unavailable or inconclusive) CROSS-CHECKED against the owner's recorded
// /proc/<pid>/stat start time: a recycled OS pid exists but has a
// different start time, so it no longer masquerades as the dead owner.
// This closes the pid-reuse window earlier versions documented in
// docs/recovery.md ("liveness and pid reuse").
// ---------------------------------------------------------------------------
struct PidSlot {
  static constexpr uint32_t kFree = 0;
  static constexpr uint32_t kClaimed = 1;

  std::atomic<uint32_t> state;     // kFree / kClaimed; transitions by FAS
  std::atomic<uint32_t> takeover;  // FAS guard serialising dead-owner takeover
  std::atomic<int64_t> os_pid;     // OS pid of the current owner (0 = none)
  std::atomic<uint64_t> epoch;     // incarnation count; monotone, never reset
  std::atomic<uint64_t> start_time;  // owner's /proc stat starttime (0 =
                                     // unknown); written with os_pid, the
                                     // pid-reuse cross-check
};

struct RegionHeader {
  // Atomic and written LAST by create() (release): the attach-side peek
  // waits on it before trusting any other header field.
  std::atomic<uint32_t> magic;
  uint32_t version;
  uint64_t abi_hash;  // layout fingerprint; attach refuses a mismatch
  uint64_t base;      // creator's mapping address (the fixed-mapping contract)
  uint64_t bytes;     // total region size
  std::atomic<uint64_t> cursor;    // arena bump pointer (byte offset)
  std::atomic<uint64_t> root_off;  // offset of the root object (0 = none)
  uint64_t root_size;              // sizeof(root type): weak type check
  std::atomic<uint32_t> ready;     // creator publishes after construction
  int32_t nprocs;                  // logical pids the world was created for
  int32_t ring_slots;              // per-pid flag-ring size
  uint32_t pad_;
  uint64_t ring_off[kMaxProcs];    // per-pid flag-ring slot arrays
  PidSlot slots[kMaxProcs];        // the pid registry
  platform::WaitArena wait;        // per-pid futex wait words (FutexLot)
  obs::MetricsArena metrics;       // per-pid telemetry rows (rme::obs)
};

static_assert(kMaxProcs <= platform::WaitArena::kSlots,
              "WaitArena must hold one wait word per logical pid");
static_assert(kMaxProcs <= obs::MetricsArena::kRows,
              "MetricsArena must hold one telemetry row per logical pid");

inline uint64_t abi_hash() {
  // Coarse fingerprint: enough to catch a 32/64-bit or header-layout skew
  // between creator and attacher builds.
  return (uint64_t{kVersion} << 48) ^ (sizeof(RegionHeader) << 16) ^
         sizeof(void*);
}

inline uint64_t name_hash(const std::string& s) {  // FNV-1a
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Name-derived mapping hint (2 MiB aligned) in a zone that is almost
// always free under default Linux ASLR; deterministic, so the creator and
// every attacher derive the same target independently of map timing.
inline void* map_hint(const std::string& name) {
  const uint64_t lane = name_hash(name) % (1ull << 16);
  return reinterpret_cast<void*>(0x5e00'0000'0000ull + (lane << 21));
}

// The process's kernel start time (/proc/<pid>/stat field 22, clock
// ticks since boot) - the disambiguator that survives OS pid reuse: a
// recycled pid has a different start time. 0 = unknown (no /proc, the
// process is gone, or the stat line was unreadable).
inline uint64_t proc_start_time(int64_t pid) {
  if (pid <= 0) return 0;
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/%lld/stat",
                static_cast<long long>(pid));
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return 0;
  char buf[1024];
  const ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  ::close(fd);
  if (n <= 0) return 0;
  buf[n] = '\0';
  // comm (field 2) may itself contain spaces and parens: skip to the
  // LAST ')' then count fields - starttime is the 20th after comm.
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) return 0;
  ++p;
  for (int field = 0; field < 19; ++field) {  // state(3) .. itrealvalue(21)
    while (*p == ' ') ++p;
    while (*p != '\0' && *p != ' ') ++p;
  }
  while (*p == ' ') ++p;
  return std::strtoull(p, nullptr, 10);
}

// Does an OS process with this pid exist at all? pidfd_open is the
// race-free probe (a pidfd names the process, not the pid); only its
// definitive answers are trusted - any other errno (ENOSYS on old
// kernels, a seccomp refusal) falls back to the kill(pid, 0) probe,
// where EPERM still means "exists".
inline bool os_pid_exists(int64_t pid) {
#if defined(__linux__) && defined(SYS_pidfd_open)
  const long fd = ::syscall(SYS_pidfd_open, static_cast<pid_t>(pid), 0u);
  if (fd >= 0) {
    ::close(static_cast<int>(fd));
    return true;
  }
  if (errno == ESRCH) return false;
#endif
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno != ESRCH;
}

// True when the OS process named by `pid` is the SAME process the slot
// recorded. Existence alone has a pid-reuse hole: the owner dies, the
// kernel recycles its pid, and the impostor looks live forever (a stuck
// slot). When the slot recorded the owner's start time, a mismatching
// start time unmasks the impostor: the owner is dead, takeover may
// proceed. `recorded_start == 0` (pre-record or unreadable /proc)
// degrades to the existence probe.
inline bool os_pid_alive(int64_t pid, uint64_t recorded_start = 0) {
  if (pid <= 0) return false;
  if (!os_pid_exists(pid)) return false;
  if (recorded_start != 0) {
    const uint64_t now_start = proc_start_time(pid);
    if (now_start != 0 && now_start != recorded_start) return false;
  }
  return true;
}

class Region {
 public:
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;
  Region(Region&& o) noexcept
      : name_(std::move(o.name_)),
        base_(std::exchange(o.base_, nullptr)),
        bytes_(std::exchange(o.bytes_, 0)),
        creator_(std::exchange(o.creator_, false)),
        unlink_(std::exchange(o.unlink_, false)) {}

  ~Region() {
    if (base_ != nullptr) ::munmap(base_, bytes_);
    if (unlink_) ::shm_unlink(name_.c_str());
  }

  // Create a fresh region (fails if `name` exists). The header is
  // initialised but NOT published: the creator constructs its world/root
  // first, then ShmWorld publishes.
  static Region create(const std::string& name, size_t bytes) {
    RME_ASSERT(bytes >= sizeof(RegionHeader) + 4096, "Region: too small");
    const int fd =
        ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) {
      throw ShmError("shm_open(create " + name + "): " +
                     std::strerror(errno));
    }
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
      const int e = errno;
      ::close(fd);
      ::shm_unlink(name.c_str());
      throw ShmError("ftruncate(" + name + "): " + std::strerror(e));
    }
    void* base = ::mmap(map_hint(name), bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED, fd, 0);
    ::close(fd);  // the mapping keeps the object alive
    if (base == MAP_FAILED) {
      ::shm_unlink(name.c_str());
      throw ShmError("mmap(create " + name + "): " + std::strerror(errno));
    }
    // Value-initialise in place: zeroes every field, including the
    // registry's atomics (fresh shm pages are zero anyway; this keeps the
    // types honest).
    auto* hdr = ::new (base) RegionHeader();
    hdr->version = kVersion;
    hdr->abi_hash = abi_hash();
    hdr->base = reinterpret_cast<uint64_t>(base);
    hdr->bytes = bytes;
    hdr->cursor.store(payload_offset(), std::memory_order_relaxed);
    // Magic last, release: an attacher's peek trusts the fields above
    // only after observing it.
    hdr->magic.store(kMagic, std::memory_order_release);
    Region r;
    r.name_ = name;
    r.base_ = base;
    r.bytes_ = bytes;
    r.creator_ = true;
    r.unlink_ = true;
    return r;
  }

  // Attach to an existing region at ITS recorded base address (the
  // fixed-address contract). Waits up to `publish_timeout_ms` for the
  // creator to publish the constructed world - including the earlier
  // windows where the object exists but is not yet sized (ftruncate
  // pending: touching the pages would SIGBUS) or sized but its header
  // not yet written (reading it would look like an ABI mismatch).
  static Region attach(const std::string& name,
                       int publish_timeout_ms = 10000) {
    const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
    if (fd < 0) {
      throw ShmError("shm_open(attach " + name + "): " +
                     std::strerror(errno));
    }
    // Wait for the creator's ftruncate: mapping past the object's end
    // and touching it is SIGBUS, so never peek a short object.
    int waited = 0;
    struct stat st {};
    for (;;) {
      if (::fstat(fd, &st) != 0) {
        const int e = errno;
        ::close(fd);
        throw ShmError("fstat(" + name + "): " + std::strerror(e));
      }
      if (static_cast<size_t>(st.st_size) >= sizeof(RegionHeader)) break;
      if (waited++ >= publish_timeout_ms) {
        ::close(fd);
        throw ShmError("region " + name + ": creator never sized it");
      }
      ::usleep(1000);
    }
    // Peek the header through a throwaway mapping to learn the base
    // address and size; wait for the magic (written directly after the
    // header is zeroed) before trusting any field.
    void* peek = ::mmap(nullptr, sizeof(RegionHeader), PROT_READ, MAP_SHARED,
                        fd, 0);
    if (peek == MAP_FAILED) {
      const int e = errno;
      ::close(fd);
      throw ShmError("mmap(peek " + name + "): " + std::strerror(e));
    }
    const auto* ph = static_cast<const RegionHeader*>(peek);
    while (ph->magic.load(std::memory_order_acquire) != kMagic) {
      if (waited++ >= publish_timeout_ms) {
        ::munmap(peek, sizeof(RegionHeader));
        ::close(fd);
        throw ShmError("region " + name + ": header never initialised");
      }
      ::usleep(1000);
    }
    if (ph->version != kVersion || ph->abi_hash != abi_hash()) {
      ::munmap(peek, sizeof(RegionHeader));
      ::close(fd);
      throw ShmError("region " + name + ": version/ABI mismatch");
    }
    void* want = reinterpret_cast<void*>(ph->base);
    const size_t bytes = ph->bytes;
    ::munmap(peek, sizeof(RegionHeader));

#if defined(MAP_FIXED_NOREPLACE)
    void* base = ::mmap(want, bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_FIXED_NOREPLACE, fd, 0);
#else
    void* base =
        ::mmap(want, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (base != MAP_FAILED && base != want) {  // kernel relocated the hint
      ::munmap(base, bytes);
      base = MAP_FAILED;
      errno = EEXIST;
    }
#endif
    ::close(fd);
    if (base == MAP_FAILED || base != want) {
      if (base != MAP_FAILED) ::munmap(base, bytes);
      throw ShmError("region " + name +
                     ": fixed-address attach failed (address busy); "
                     "the mapping contract requires the creator's base");
    }
    Region r;
    r.name_ = name;
    r.base_ = base;
    r.bytes_ = bytes;
    r.creator_ = false;
    r.unlink_ = false;
    // Wait for the creator to publish the constructed world.
    auto* hdr = static_cast<RegionHeader*>(base);
    for (int waited = 0; hdr->ready.load(std::memory_order_acquire) == 0;
         waited += 1) {
      if (waited >= publish_timeout_ms) {
        throw ShmError("region " + name + ": creator never published");
      }
      ::usleep(1000);
    }
    return r;
  }

  RegionHeader* header() const { return static_cast<RegionHeader*>(base_); }
  char* base() const { return static_cast<char*>(base_); }
  size_t bytes() const { return bytes_; }
  bool creator() const { return creator_; }
  const std::string& name() const { return name_; }

  // Creator-side knob: keep the shm object on destruction (hand-off to a
  // successor process) instead of unlinking it.
  void set_unlink_on_destroy(bool v) { unlink_ = v; }

  // First allocatable byte: the header, rounded up to a cache line.
  static constexpr uint64_t payload_offset() {
    return (sizeof(RegionHeader) + 63) & ~uint64_t{63};
  }

 private:
  Region() = default;

  std::string name_;
  void* base_ = nullptr;
  size_t bytes_ = 0;
  bool creator_ = false;
  bool unlink_ = false;
};

// ---------------------------------------------------------------------------
// RoRegion: a strictly read-only view of a live region - the inspector
// path (tools/rme_regionctl.cpp). Opens the shm object O_RDONLY and
// maps PROT_READ at ANY address: an inspector only reads the header's
// embedded arenas (registry, WaitArena, MetricsArena), which are
// offset-addressed, so it does not need - and must not contend for -
// the fixed-address mapping contract, and a stray bug in it cannot
// perturb the region under observation. Same magic/version/ABI checks
// as attach(); no waiting for `ready` beyond the header (an inspector
// may legitimately watch a world that is still constructing).
// ---------------------------------------------------------------------------
class RoRegion {
 public:
  RoRegion(const RoRegion&) = delete;
  RoRegion& operator=(const RoRegion&) = delete;
  RoRegion(RoRegion&& o) noexcept
      : name_(std::move(o.name_)),
        base_(std::exchange(o.base_, nullptr)),
        bytes_(std::exchange(o.bytes_, 0)) {}

  ~RoRegion() {
    if (base_ != nullptr) ::munmap(base_, bytes_);
  }

  static RoRegion open(const std::string& name,
                       int publish_timeout_ms = 10000) {
    const int fd = ::shm_open(name.c_str(), O_RDONLY, 0);
    if (fd < 0) {
      throw ShmError("shm_open(inspect " + name + "): " +
                     std::strerror(errno));
    }
    int waited = 0;
    struct stat st {};
    for (;;) {
      if (::fstat(fd, &st) != 0) {
        const int e = errno;
        ::close(fd);
        throw ShmError("fstat(" + name + "): " + std::strerror(e));
      }
      if (static_cast<size_t>(st.st_size) >= sizeof(RegionHeader)) break;
      if (waited++ >= publish_timeout_ms) {
        ::close(fd);
        throw ShmError("region " + name + ": creator never sized it");
      }
      ::usleep(1000);
    }
    const size_t bytes = static_cast<size_t>(st.st_size);
    void* base = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      throw ShmError("mmap(inspect " + name + "): " + std::strerror(errno));
    }
    const auto* hdr = static_cast<const RegionHeader*>(base);
    while (hdr->magic.load(std::memory_order_acquire) != kMagic) {
      if (waited++ >= publish_timeout_ms) {
        ::munmap(base, bytes);
        throw ShmError("region " + name + ": header never initialised");
      }
      ::usleep(1000);
    }
    if (hdr->version != kVersion || hdr->abi_hash != abi_hash()) {
      ::munmap(base, bytes);
      throw ShmError("region " + name + ": version/ABI mismatch");
    }
    RoRegion r;
    r.name_ = name;
    r.base_ = base;
    r.bytes_ = bytes;
    return r;
  }

  const RegionHeader* header() const {
    return static_cast<const RegionHeader*>(base_);
  }
  size_t bytes() const { return bytes_; }
  const std::string& name() const { return name_; }

 private:
  RoRegion() = default;

  std::string name_;
  void* base_ = nullptr;
  size_t bytes_ = 0;
};

}  // namespace rme::shm

// OffPtr / AtomicRef: self-relative links for position-independent
// shared state.
//
// A raw `T*` stored inside an shm region is only meaningful to processes
// that mapped the region at the same base - the fixed-address mapping
// contract PR 5 shipped with. These two primitives retire that contract:
// instead of an absolute address they store the signed byte distance
// from the CELL ITSELF to the pointee,
//
//     delta = (char*)target - (char*)this
//
// which is invariant under remapping as long as cell and pointee live in
// the same contiguous mapping (one region, or one process heap - the
// encoding is base-free, so heap-mode worlds use it unchanged). Any
// process may now attach the region at any base; see shm/region.hpp for
// the attach-anywhere protocol and docs/architecture.md for the
// contract.
//
// Nil is encoded as INT64_MIN, a delta no real link can produce on a
// 47-bit address space. Delta 0 is a REAL value: the lock cores
// self-initialise sentinels (`crash_.pred.init(&crash_)`) and `pred` is
// the QNode's first member, so the cell legitimately points at itself.
//
// AtomicRef<P, T> is the atomic flavour: a platform Atomic<int64_t> cell
// exposed in T* terms. Encoding/decoding is pure arithmetic around the
// underlying load/store/exchange, so the memory-ordering discipline of
// the call site carries through unchanged, and the paper's FAS-only
// budget is preserved - exchange on the int64 cell IS the fetch&store
// the algorithms charge.
//
// Copy semantics matter: copying an OffPtr re-encodes through get()/set()
// because the same delta means a different target from a different cell
// address. This is what lets Seq<OffPtr<T>> elements and BoundedDeque
// entries holding OffPtrs be assigned around (stack temporaries encode
// relative to the stack; storing into the region re-encodes relative to
// the region cell - both correct).
#pragma once

#include <atomic>
#include <cstdint>

namespace rme::shm {

// The nil sentinel. INT64_MIN cannot be a real self-relative delta:
// user-space deltas fit in 48 bits on every supported platform.
inline constexpr int64_t kOffNil = INT64_MIN;

// Plain (non-atomic) self-relative pointer. Single-writer cells, staged
// slots, and pool bookkeeping use this; concurrent cells use AtomicRef.
template <class T>
class OffPtr {
 public:
  OffPtr() = default;
  OffPtr(T* p) { set(p); }  // NOLINT(runtime/explicit): pointer-like
  OffPtr(const OffPtr& o) { set(o.get()); }
  OffPtr& operator=(const OffPtr& o) {
    set(o.get());
    return *this;
  }
  OffPtr& operator=(T* p) {
    set(p);
    return *this;
  }

  T* get() const {
    if (delta_ == kOffNil) return nullptr;
    return reinterpret_cast<T*>(
        const_cast<char*>(reinterpret_cast<const char*>(this)) + delta_);
  }
  void set(T* p) {
    delta_ = (p == nullptr) ? kOffNil
                            : reinterpret_cast<const char*>(p) -
                                  reinterpret_cast<const char*>(this);
  }

  T* operator->() const { return get(); }
  T& operator*() const { return *get(); }
  explicit operator bool() const { return delta_ != kOffNil; }

  int64_t raw_delta() const { return delta_; }

 private:
  int64_t delta_ = kOffNil;
};

// Ref<T> is the name ROADMAP uses for the offset-link seam; OffPtr is
// the mechanism. Keep both spellings.
template <class T>
using Ref = OffPtr<T>;

// Atomic self-relative pointer over a platform Atomic<int64_t> cell.
// The API mirrors platform Atomic<T*> exactly (attach / init / load /
// store / exchange with an explicit Context), so converting a lock core
// is a type change, not a call-site rewrite. The cell is the sole data
// member, so encode/decode relative to `this` and relative to the cell
// agree.
template <class P, class T>
class AtomicRef {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;

  // Default-constructed = nil. This must be explicit: a zero-valued cell
  // decodes to `this` (delta 0 is the legitimate self-pointer), so the
  // raw-pointer idiom of relying on zero-initialisation for "empty" would
  // silently become a wild self-reference (e.g. R2Lock's help-wake reads
  // go_slot_ before the rival ever published one).
  AtomicRef() : cell_(kOffNil) {}

  template <class E>
  void attach(E& env, int owner) {
    cell_.attach(env, owner);
  }
  void init(T* p) { cell_.init(encode(p)); }

  T* load(Ctx& ctx,
          std::memory_order mo = std::memory_order_acquire) const {
    return decode(cell_.load(ctx, mo));
  }
  void store(Ctx& ctx, T* p,
             std::memory_order mo = std::memory_order_release) {
    cell_.store(ctx, encode(p), mo);
  }
  // The paper-budgeted fetch&store: one FAS on the int64 cell.
  T* exchange(Ctx& ctx, T* p,
              std::memory_order mo = std::memory_order_acq_rel) {
    return decode(cell_.exchange(ctx, encode(p), mo));
  }

 private:
  int64_t encode(const T* p) const {
    return (p == nullptr) ? kOffNil
                          : reinterpret_cast<const char*>(p) -
                                reinterpret_cast<const char*>(this);
  }
  T* decode(int64_t d) const {
    if (d == kOffNil) return nullptr;
    return reinterpret_cast<T*>(
        const_cast<char*>(reinterpret_cast<const char*>(this)) + d);
  }

  typename P::template Atomic<int64_t> cell_;
};

}  // namespace rme::shm

// Umbrella header for rme::shm - the cross-process service boundary:
//
//   region.hpp  - Region (shm_open + fixed-address mmap contract),
//                 RegionHeader, the FAS-claimed pid registry and its
//                 per-process epoch words
//   world.hpp   - ShmWorld (create/attach, in-region arena + per-pid
//                 flag rings, root-object placement, claim/takeover/
//                 fence protocol)
//   session.hpp - SessionLease (claim -> replay recovery -> mint
//                 svc::Session; fenced() stale-incarnation probe)
//
// Typical use - creator:
//
//   auto world = rme::shm::ShmWorld::create("/my_region", 16 << 20, 8);
//   using Table = rme::api::TableLock<rme::platform::Real>;
//   auto& table = world.create_root<Table>(world.env, 4, 2, 8);
//   rme::shm::SessionLease<Table> lease(world, table, /*pid=*/0);
//   auto g = lease->acquire(key);
//
// and attacher (another OS process):
//
//   auto world = rme::shm::ShmWorld::attach("/my_region");
//   auto& table = world.root<Table>();
//   rme::shm::SessionLease<Table> lease(world, table, /*pid=*/1);
//   // lease.restarted() tells a restarted process its recovery replayed
#pragma once

#include "shm/region.hpp"   // IWYU pragma: export
#include "shm/session.hpp"  // IWYU pragma: export
#include "shm/world.hpp"    // IWYU pragma: export

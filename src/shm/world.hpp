// ShmWorld: the cross-process World - an mmap-backed region holding the
// lock state, per-pid flag rings and the pid registry, so sessions in
// SEPARATE OS PROCESSES contend on one RmeLock / RecoverableLockTable.
//
// Roles:
//
//   creator   ShmWorld::create(name, bytes, nprocs) - creates the region,
//             binds the Env's arena to it, initialises one flag ring per
//             logical pid, then constructs the lock state IN the region
//             via create_root<T>(...) (which publishes the world; from
//             then on attachers proceed).
//
//   attacher  ShmWorld::attach(name) - maps the region at ANY base
//             (attach-anywhere contract, shm/region.hpp: all in-region
//             links are self-relative), re-binds the arena, and uses
//             root<T>() to reach the same lock objects through its own
//             mapping.
//
// Identity & the epoch fence: before driving a logical pid, a process
// claims that pid's registry slot (claim(pid) - FAS claim, or a verified
// takeover of a dead owner's slot). The claim returns the slot's bumped
// EPOCH; `restarted` tells the claimer a previous incarnation died
// holding this identity, which obliges it to REPLAY RECOVERY (the
// persisted leases/intents in the lock state name the exact work - see
// SessionLease in shm/session.hpp, which does this automatically) before
// re-entering. A handle whose epoch no longer matches the slot is FENCED:
// its process was declared dead and superseded, and it must not touch the
// lock state again.
//
// Environment notes: the per-pid ring slots live in the region because
// SETTERS (other processes) write them; each attaching process adopts
// them into a private Process handle (tag counters continue across
// incarnations - nvm/flag_ring.hpp explains why they must). Parking is
// region-resident too: every Process context gets the world's FutexLot
// (platform/park.hpp) - wait words in the RegionHeader, keys derived
// from region addresses - so a releaser in ANY attached process wakes
// the exact cross-process successor with one futex syscall. Without
// futexes (RME_NO_FUTEX, non-Linux) contexts keep no lot and wakeups
// ride the always-timed condvar parks: an ungranted waiter re-checks by
// timeout. One OS process may drive several logical pids (the auditing
// parent in the fork tests does).
#pragma once

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nvm/flag_ring.hpp"
#include "platform/park.hpp"
#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "shm/region.hpp"
#include "util/assert.hpp"

namespace rme::shm {

class ShmWorld {
 public:
  // Shared-memory worlds are Real-platform by definition: the Counted
  // platform's model/scheduler/crash hooks are process-private simulator
  // state, meaningless across address spaces.
  using P = platform::Real;
  using Proc = platform::Process<P>;

  // The claimed identity of one logical pid in THIS process: the slot
  // epoch at claim time is the fence token.
  struct Identity {
    int pid = -1;
    uint64_t epoch = 0;
    bool restarted = false;  // a previous incarnation died holding the pid
  };

  platform::Real::Env env;  // env.arena is bound to the region

  static ShmWorld create(const std::string& name, size_t bytes, int nprocs,
                         int ring_slots = 128) {
    RME_ASSERT(nprocs >= 1 && nprocs <= kMaxProcs,
               "ShmWorld: nprocs out of range");
    RME_ASSERT(ring_slots >= 2, "ShmWorld: ring_slots too small");
    ShmWorld w(Region::create(name, bytes));
    RegionHeader* hdr = w.region_.header();
    hdr->nprocs = nprocs;
    hdr->ring_slots = ring_slots;
    // One flag ring per logical pid, slots in the region (the FlagRing
    // handle is a throwaway: only the slot array persists; every process,
    // the creator included, adopts it via proc()).
    for (int pid = 0; pid < nprocs; ++pid) {
      nvm::FlagRing<P> ring;
      ring.attach(w.env, pid, static_cast<size_t>(ring_slots));
      hdr->ring_off[pid] = w.env.arena.offset_of(ring.slots_data());
    }
    return w;
  }

  static ShmWorld attach(const std::string& name) {
    return ShmWorld(Region::attach(name));
  }

  int nprocs() const { return region_.header()->nprocs; }
  Region& region() { return region_; }
  bool creator() const { return region_.creator(); }

  // The per-process handle for a logical pid, bound to the pid's
  // in-region ring. Lazily constructed; a process may hold several.
  // Each handle's context carries the world's region parking lot, so any
  // session verb driven through it parks on the pid's in-region wait
  // word - wakeable from every attached process.
  Proc& proc(int pid) {
    check_pid(pid);
    auto& slot = procs_[static_cast<size_t>(pid)];
    if (!slot) {
      RegionHeader* hdr = region_.header();
      slot = std::make_unique<Proc>();
      auto* slots = static_cast<typename nvm::FlagRing<P>::Slot*>(
          env.arena.at(hdr->ring_off[pid]));
      slot->attach_adopted(env, pid, slots,
                           static_cast<size_t>(hdr->ring_slots));
      slot->ctx.park_lot = park_lot();
      // The pid's region telemetry row (rme::obs). Writes to it happen
      // only through session verbs, which this process drives only while
      // owning the pid's slot - the row's single-writer contract.
      slot->ctx.metrics = &hdr->metrics.rows[pid];
    }
    return *slot;
  }

  // The region-resident telemetry arena (rme::obs) - the creator's and
  // every attacher's view are the same rows. Read via obs::Snapshot.
  obs::MetricsArena& metrics() { return region_.header()->metrics; }
  const obs::MetricsArena& metrics() const {
    return region_.header()->metrics;
  }

  // The region-resident FutexLot view for this process, lazily bound once
  // the header is complete. nullptr when futexes are unavailable (non-
  // Linux, RME_NO_FUTEX build, RME_NO_FUTEX env var, or the timed-arm
  // bench knob below): contexts then keep no lot and waits ride the
  // always-timed process-local parks.
  platform::ParkingLot* park_lot() {
#if RME_HAS_FUTEX
    if (no_futex_) return nullptr;
    if (!lot_.bound()) {
      RegionHeader* hdr = region_.header();
      lot_.bind(&hdr->wait, region_.base(), &hdr->nprocs, hdr->ring_off,
                static_cast<size_t>(hdr->ring_slots) *
                    sizeof(typename nvm::FlagRing<P>::Slot));
      lot_.bind_metrics(&hdr->metrics);
    }
    return &lot_;
#else
    return nullptr;
#endif
  }

  // Bench/test knob: force the timed-park fallback (handoff=timed arm)
  // or re-enable the futex lot. Re-points every already-built context.
  void set_futex_enabled(bool on) {
    no_futex_ = !on || std::getenv("RME_NO_FUTEX") != nullptr;
    for (auto& p : procs_) {
      if (p) p->ctx.park_lot = park_lot();
    }
  }

  // Test knob: disable (or re-enable) growth for THIS handle's arena, so
  // exhaustion refuses cleanly at the current limit instead of extending
  // the region (the pre-v5 behaviour; ArenaExhaustionRefusesCleanly pins
  // it). Affects allocations made through this handle from now on - set
  // it before constructing roots whose pools snapshot the arena.
  // RME_NO_GROW disables growth process-wide regardless.
  void set_grow_enabled(bool on) {
    env.arena.grow = on && std::getenv("RME_NO_GROW") == nullptr;
  }

  // ------------------------------------------------------------------
  // Root object: the lock state shared by every process.
  // ------------------------------------------------------------------

  // Construct the root in the region and PUBLISH the world (attachers
  // block until publication). Creator only, once.
  template <class T, class... Args>
  T& create_root(Args&&... args) {
    RME_ASSERT(region_.creator(), "create_root: attachers use root<T>()");
    RegionHeader* hdr = region_.header();
    RME_ASSERT(hdr->root_off.load(std::memory_order_relaxed) == 0,
               "create_root: root already constructed");
    void* mem = env.arena.allocate(sizeof(T), alignof(T));
    T* t = ::new (mem) T(std::forward<Args>(args)...);
    hdr->root_size = sizeof(T);
    hdr->root_off.store(env.arena.offset_of(t), std::memory_order_release);
    hdr->ready.store(1, std::memory_order_release);
    return *t;
  }

  template <class T>
  T& root() const {
    const RegionHeader* hdr = region_.header();
    const uint64_t off = hdr->root_off.load(std::memory_order_acquire);
    RME_ASSERT(off != 0, "root: world has no root object");
    RME_ASSERT(hdr->root_size == sizeof(T),
               "root: type size mismatch (wrong T?)");
    return *static_cast<T*>(env.arena.at(off));
  }

  // ------------------------------------------------------------------
  // Pid registry: claim / takeover / epoch fence. See shm/region.hpp for
  // the slot protocol.
  // ------------------------------------------------------------------

  // Claim logical pid `pid` for this OS process. Fresh slot: plain FAS
  // claim. Dead owner: verified takeover, `restarted = true` - the caller
  // MUST replay recovery before re-entering (SessionLease automates
  // this). Live owner: throws ShmError (the claim changed nothing).
  Identity claim(int pid) {
    check_pid(pid);
    PidSlot& s = slot(pid);
    RegionHeader* hdr = region_.header();
    // Admission gate for compaction: a quiesced region takes no new
    // sessions. Stale handles of a COMPACTED region see this forever
    // (the old object keeps quiesce=1) - re-attach by name to land on
    // the republished region.
    if (hdr->quiesce.load(std::memory_order_seq_cst) != 0) {
      throw ShmError("region " + region_.name() +
                     " is quiesced for compaction; re-attach and retry");
    }
    const int64_t me = static_cast<int64_t>(::getpid());
    const uint32_t prev = s.state.exchange(PidSlot::kClaimed,
                                           std::memory_order_acq_rel);  // FAS
    if (prev == PidSlot::kFree) {
      // Post-FAS recheck closes the race with a compactor that set
      // quiesce between our gate check and the FAS: back the claim out
      // so the compactor's drain (which scans for all-kFree with
      // seq_cst) cannot miss us occupying a slot it already passed.
      if (hdr->quiesce.load(std::memory_order_seq_cst) != 0) {
        s.state.store(PidSlot::kFree, std::memory_order_release);
        throw ShmError("region " + region_.name() +
                       " is quiesced for compaction; re-attach and retry");
      }
      // Exclusive: we flipped free->claimed. Epoch writes are single-
      // writer under slot ownership (reads+writes only, no RMW needed).
      // Start time BEFORE os_pid: an observer must never pair the new
      // owner's pid with a stale start time and wrongly declare it a
      // pid-reuse impostor.
      s.start_time.store(proc_start_time(me), std::memory_order_relaxed);
      s.os_pid.store(me, std::memory_order_relaxed);
      reset_wait_word(pid);
      // Adopt (never reset) the pid's telemetry row: counters accumulate
      // across incarnations; only the incarnation column advances.
      region_.header()->metrics.rows[pid].adopt();
      const uint64_t e = s.epoch.load(std::memory_order_relaxed) + 1;
      s.epoch.store(e, std::memory_order_release);
      return Identity{pid, e, /*restarted=*/false};
    }
    // Slot already claimed: live owner -> busy; dead owner -> takeover.
    const int64_t owner = s.os_pid.load(std::memory_order_acquire);
    if (owner == me) {
      throw ShmError("pid slot " + std::to_string(pid) +
                     " already claimed by this process");
    }
    if (owner == 0) {
      // A claim or release is IN FLIGHT (the owner record and the state
      // word are two writes): a fresh claimer between its state FAS and
      // its os_pid store, or a releaser between clearing os_pid and
      // freeing the state. Treating "no recorded owner" as dead would
      // race a takeover against that live process - two owners of one
      // identity. Busy instead; the window is two instructions wide, so
      // retrying resolves it. (A process that CRASHES inside that window
      // leaves the slot stuck busy - a capacity decay documented in
      // docs/recovery.md, repaired by recreating the region, never a
      // duplication.)
      throw ShmError("pid slot " + std::to_string(pid) +
                     " claim/release in flight; retry");
    }
    // Liveness cross-checks the recorded start time: a recycled OS pid
    // exists but was started later, so it no longer masks the dead owner
    // (shm/region.hpp, os_pid_alive).
    if (os_pid_alive(owner, s.start_time.load(std::memory_order_acquire))) {
      throw ShmError("pid slot " + std::to_string(pid) +
                     " held by live process " + std::to_string(owner));
    }
    // Serialise rival takeovers through the takeover FAS guard.
    if (s.takeover.exchange(1, std::memory_order_acq_rel) != 0) {
      throw ShmError("pid slot " + std::to_string(pid) +
                     " takeover already in progress");
    }
    // Re-verify under the guard: a rival may have completed a takeover
    // between our liveness probe and the guard claim.
    const int64_t owner2 = s.os_pid.load(std::memory_order_acquire);
    if (owner2 != owner ||
        os_pid_alive(owner2, s.start_time.load(std::memory_order_acquire))) {
      s.takeover.store(0, std::memory_order_release);
      throw ShmError("pid slot " + std::to_string(pid) +
                     " owner changed during takeover");
    }
    s.start_time.store(proc_start_time(me), std::memory_order_relaxed);
    s.os_pid.store(me, std::memory_order_relaxed);
    // The dead incarnation may have died PARKED, its key published
    // forever: retire that wait-word state under slot ownership (the
    // epoch fence below orders the reset against every rival), then wake
    // every parker in the region - whoever waits on state the dead
    // process held must re-check now, not after a full park timeout.
    reset_wait_word(pid);
    // Adoption on takeover too: the dead incarnation's counters stay on
    // the record (a SIGKILL'd worker's acquires are real acquires); the
    // incarnation column is what lets audits attribute the succession.
    // The row may be mid-write (the owner died inside a seqlock
    // section): adopt() re-evens the generation word, so readers settle
    // again. Ordered by the epoch fence like the wait-word reset.
    region_.header()->metrics.rows[pid].adopt();
    const uint64_t e = s.epoch.load(std::memory_order_relaxed) + 1;
    s.epoch.store(e, std::memory_order_release);  // the fence: staler
                                                  // epochs are dead
    s.takeover.store(0, std::memory_order_release);
    if (platform::ParkingLot* lot = park_lot()) lot->broadcast();
    return Identity{pid, e, /*restarted=*/true};
  }

  // Clean detach. A fenced identity (slot taken over because we were
  // presumed dead) must NOT free the slot - its current owner is someone
  // else; release() is then a no-op.
  void release(const Identity& id) {
    if (id.pid < 0) return;
    PidSlot& s = slot(id.pid);
    if (fenced(id)) return;
    s.os_pid.store(0, std::memory_order_relaxed);
    s.state.store(PidSlot::kFree, std::memory_order_release);
  }

  // True when `id`'s incarnation has been superseded: some other process
  // took the slot over after declaring ours dead. A fenced process must
  // stop touching the lock state (its leases may already be replayed).
  // An invalid identity (default-constructed, moved-from) is fenced by
  // definition: it never named a live incarnation.
  bool fenced(const Identity& id) const {
    if (id.pid < 0 || id.pid >= region_.header()->nprocs) return true;
    return slot(id.pid).epoch.load(std::memory_order_acquire) != id.epoch;
  }

  uint64_t slot_epoch(int pid) const {
    check_pid(pid);
    return slot(pid).epoch.load(std::memory_order_acquire);
  }
  int64_t slot_owner(int pid) const {
    check_pid(pid);
    return slot(pid).os_pid.load(std::memory_order_acquire);
  }
  bool slot_claimed(int pid) const {
    check_pid(pid);
    return slot(pid).state.load(std::memory_order_acquire) ==
           PidSlot::kClaimed;
  }

 private:
  explicit ShmWorld(Region r) : region_(std::move(r)) {
    RegionHeader* hdr = region_.header();
    env.arena.cursor = &hdr->cursor;
    env.arena.base = region_.base();
    env.arena.limit = region_.bytes();  // static ceiling: the VA span
    env.arena.limit_word = &hdr->limit;
    env.arena.grow = std::getenv("RME_NO_GROW") == nullptr;
    // The process-global grow hook (platform code cannot name the shm
    // layer). Idempotent: every world installs the same function.
    platform::arena_grow_hook() = &region_grow;
    procs_.resize(kMaxProcs);
    no_futex_ = std::getenv("RME_NO_FUTEX") != nullptr;
  }

  PidSlot& slot(int pid) const { return region_.header()->slots[pid]; }
  void check_pid(int pid) const {
    RME_ASSERT(pid >= 0 && pid < region_.header()->nprocs,
               "ShmWorld: bad pid");
  }

  // Retire a (re)claimed pid's wait-word state directly in the arena:
  // the layout is region ABI on every platform, so the reset is NOT
  // gated on this process's futex availability.
  void reset_wait_word(int pid) {
    platform::WaitWord& w = region_.header()->wait.words[pid];
    w.key.store(0, std::memory_order_seq_cst);
    w.wake_ns.store(0, std::memory_order_relaxed);
  }

  Region region_;
  std::vector<std::unique_ptr<Proc>> procs_;
#if RME_HAS_FUTEX
  platform::FutexLot lot_;
#endif
  bool no_futex_ = false;
};

}  // namespace rme::shm

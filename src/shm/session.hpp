// SessionLease: the cross-process session handshake - how an OS process
// turns "I map the region" into "I am logical pid p, recovered and safe
// to enter the critical section".
//
// Construction performs, in order:
//
//   1. CLAIM the pid's registry slot (ShmWorld::claim: FAS claim of a
//      free slot, or a verified takeover of a dead owner's slot).
//   2. If the claim was a takeover (`restarted`), REPLAY RECOVERY before
//      anything else: svc::Session::recover() finishes whatever
//      super-passage the dead incarnation left behind - re-binding its
//      persisted port lease, re-entering the critical section the paper's
//      way (wait-free CSR if the crash was inside it), exiting, and
//      clearing the persisted shard/batch intents. Only then is the
//      session handed to the caller.
//   3. Mint the svc::Session bound to the world's per-pid Process handle
//      (adopted in-region flag ring, continuing tag counters).
//
// Destruction releases the pid slot - unless the lease is FENCED (the
// slot's epoch moved past ours because some other process declared us
// dead and took over), in which case the slot belongs to the successor
// and we must not touch it. fenced() is also the caller's probe: a
// long-running process should treat `fenced() == true` as "my identity
// was revoked; stop issuing verbs with this session".
//
// SIGKILL anywhere in this lifecycle is safe by construction: the claim
// leaves a dead-owner slot the next claimer takes over, and the lock
// state's own persistence (leases, intents) names the recovery work.
#pragma once

#include <functional>
#include <optional>

#include "shm/world.hpp"
#include "svc/session.hpp"
#include "util/assert.hpp"

namespace rme::shm {

template <class L>
class SessionLease {
 public:
  // Application hook run INSTEAD of the default Session::recover() when
  // the claim took over a dead incarnation - for callers whose recovery
  // must also repair application state inside the re-entered critical
  // section (e.g. via RecoverableLockTable::recover's visitor). The hook
  // MUST leave the identity quiescent (every persisted lease/intent of
  // this pid finished), exactly like Session::recover() does.
  using RecoverFn = std::function<void(svc::Session<L>&)>;

  // Claims `pid`, replays recovery if a previous incarnation died holding
  // it, and opens the session. Throws ShmError when the pid is held by a
  // live process (the identity is simply busy; nothing was changed).
  SessionLease(ShmWorld& world, L& lock, int pid,
               platform::WaitPolicy* policy = nullptr,
               svc::Admission* admission = nullptr,
               RecoverFn recover_fn = {})
      : world_(&world), id_(world.claim(pid)) {
    // From here the slot is claimed: a throw below (a user recovery hook,
    // session construction) must not strand it - the destructor will not
    // run for a half-constructed lease, so release explicitly.
    try {
      session_.emplace(lock, world.proc(pid), pid, policy, admission);
      if (id_.restarted) {
        // Epoch-fenced re-entry: the previous incarnation's super-passage
        // is finished BEFORE this one can issue its first verb.
        if (recover_fn) {
          recover_fn(*session_);
        } else {
          session_->recover();
        }
      }
    } catch (...) {
      session_.reset();
      world_->release(id_);
      throw;
    }
  }

  SessionLease(const SessionLease&) = delete;
  SessionLease& operator=(const SessionLease&) = delete;

  ~SessionLease() {
    session_.reset();        // guards must die before the identity does
    world_->release(id_);    // no-op when fenced
  }

  svc::Session<L>& session() { return *session_; }
  svc::Session<L>* operator->() { return &*session_; }

  // The claimed incarnation.
  const ShmWorld::Identity& identity() const { return id_; }
  // True when the claim took over a dead predecessor (recovery replayed).
  bool restarted() const { return id_.restarted; }
  // True when THIS incarnation has been superseded; stop issuing verbs.
  bool fenced() const { return world_->fenced(id_); }

 private:
  ShmWorld* world_;
  ShmWorld::Identity id_;
  std::optional<svc::Session<L>> session_;
};

}  // namespace rme::shm

// Deterministic cooperative scheduler.
//
// Each simulated process runs on its own OS thread but executes only
// while it holds the baton: before every shared-memory operation the
// Counted platform calls Scheduler::yield(pid), which picks the next
// process and hands the baton *directly* to it (worker-to-worker; the
// controlling thread is involved only at run start and end). Exactly one
// process is runnable at a time, so a (policy, seed, crash-plan) triple
// fully determines the interleaving - the paper's model of a run as a
// sequence of normal and crash steps.
//
// Fast paths that keep big sweeps cheap:
//   * if the policy picks the yielding process again, yield() returns
//     without any context switch (single-process phases and scripted
//     bursts cost a function call per step);
//   * baton handoff is a spin-then-block binary semaphore: the hot
//     ping-pong between two processes stays in user space.
//
// Policies:
//   RoundRobin    - cycles over live processes (fair by construction)
//   SeededRandom  - uniform over live processes (fair w.p. 1)
//   Scripted      - explicit pid sequence, then round-robin; used to pin
//                   exact schedules (repair branches, Figure 5, paper
//                   Appendix A shapes)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <random>
#include <vector>

#include "util/assert.hpp"

namespace rme::sim {

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  // Pick the next pid to run from `runnable` (non-empty, ascending).
  virtual int pick(const std::vector<int>& runnable) = 0;
};

class RoundRobin final : public SchedulePolicy {
 public:
  int pick(const std::vector<int>& runnable) override {
    for (int pid : runnable) {
      if (pid > last_) {
        last_ = pid;
        return pid;
      }
    }
    last_ = runnable.front();
    return last_;
  }

 private:
  int last_ = -1;
};

class SeededRandom final : public SchedulePolicy {
 public:
  explicit SeededRandom(uint64_t seed) : rng_(seed) {}
  int pick(const std::vector<int>& runnable) override {
    std::uniform_int_distribution<size_t> d(0, runnable.size() - 1);
    return runnable[d(rng_)];
  }

 private:
  std::mt19937_64 rng_;
};

// Follows `script` while it lasts (skipping entries whose pid is not
// currently runnable), then falls back to round-robin.
class Scripted final : public SchedulePolicy {
 public:
  explicit Scripted(std::vector<int> script) : script_(std::move(script)) {}
  int pick(const std::vector<int>& runnable) override {
    while (pos_ < script_.size()) {
      const int want = script_[pos_];
      ++pos_;
      for (int pid : runnable) {
        if (pid == want) return pid;
      }
    }
    return fallback_.pick(runnable);
  }
  bool script_exhausted() const { return pos_ >= script_.size(); }

 private:
  std::vector<int> script_;
  size_t pos_ = 0;
  RoundRobin fallback_;
};

class Scheduler {
 public:
  Scheduler(int nprocs, SchedulePolicy* policy)
      : nprocs_(nprocs),
        policy_(policy),
        gates_(static_cast<size_t>(nprocs)) {}

  // --- controlling (test) thread ---

  void begin(int nprocs) {
    std::lock_guard<std::mutex> g(mu_);
    live_.assign(static_cast<size_t>(nprocs), false);
  }

  void set_live(int pid, bool live) {
    std::lock_guard<std::mutex> g(mu_);
    live_[static_cast<size_t>(pid)] = live;
  }

  // Kick off the run and block until every live process finished or the
  // step budget is exhausted. Returns scheduling steps taken.
  uint64_t run(uint64_t max_steps) {
    max_steps_ = max_steps;
    int first = -1;
    {
      std::lock_guard<std::mutex> g(mu_);
      build_runnable();
      if (!runnable_.empty()) first = policy_->pick(runnable_);
    }
    if (first < 0) return 0;
    grant(first);
    std::unique_lock<std::mutex> lk(done_mu_);
    done_cv_.wait(lk, [&] { return done_; });
    return steps_.load(std::memory_order_relaxed);
  }

  void stop() {
    stopping_.store(true, std::memory_order_release);
    for (auto& gate : gates_) gate.open();
    signal_done();
  }

  bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }
  bool exhausted() const { return exhausted_; }

  // --- worker threads ---

  // Block until first granted the baton (or the run is torn down).
  void acquire_baton(int pid) {
    gates_[static_cast<size_t>(pid)].wait();
  }

  // One scheduling step: maybe hand the baton to someone else.
  void yield(int pid) {
    if (stopping()) return;  // caller's before_op throws RunTornDown
    const uint64_t s = steps_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (s >= max_steps_) {
      exhausted_ = true;
      stop();
      return;
    }
    int next;
    {
      std::lock_guard<std::mutex> g(mu_);
      build_runnable();
      if (runnable_.empty()) {  // only possible mid-teardown
        return;
      }
      next = policy_->pick(runnable_);
    }
    if (next == pid) return;  // self-continue: no context switch
    grant(next);
    gates_[static_cast<size_t>(pid)].wait();
  }

  // Worker announces it will take no more steps. `final_exit` false means
  // "parked but revivable" - unused by the current driver, accepted for
  // interface compatibility.
  void park(int pid, bool final_exit) {
    int next = -1;
    bool empty;
    {
      std::lock_guard<std::mutex> g(mu_);
      if (final_exit) live_[static_cast<size_t>(pid)] = false;
      build_runnable();
      empty = runnable_.empty();
      if (!empty) next = policy_->pick(runnable_);
    }
    if (empty) {
      signal_done();
    } else {
      grant(next);
    }
  }

 private:
  // Spin-then-block binary semaphore (one per process).
  struct Gate {
    std::atomic<bool> open_flag{false};
    std::mutex mu;
    std::condition_variable cv;

    void open() {
      open_flag.store(true, std::memory_order_release);
      std::lock_guard<std::mutex> g(mu);
      cv.notify_all();
    }
    void wait() {
      for (int i = 0; i < 2048; ++i) {
        if (open_flag.exchange(false, std::memory_order_acq_rel)) return;
#if defined(__x86_64__) || defined(_M_X64)
        asm volatile("pause");
#endif
      }
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] {
        return open_flag.exchange(false, std::memory_order_acq_rel);
      });
    }
  };

  void grant(int pid) { gates_[static_cast<size_t>(pid)].open(); }

  void signal_done() {
    std::lock_guard<std::mutex> g(done_mu_);
    done_ = true;
    done_cv_.notify_all();
  }

  void build_runnable() {
    runnable_.clear();
    for (int i = 0; i < nprocs_; ++i) {
      if (live_[static_cast<size_t>(i)]) runnable_.push_back(i);
    }
  }

  int nprocs_;
  SchedulePolicy* policy_;
  std::vector<Gate> gates_;

  std::mutex mu_;  // guards live_ / runnable_ / policy_
  std::vector<bool> live_;
  std::vector<int> runnable_;

  std::atomic<uint64_t> steps_{0};
  uint64_t max_steps_ = ~uint64_t{0};
  std::atomic<bool> stopping_{false};
  bool exhausted_ = false;

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  bool done_ = false;
};

}  // namespace rme::sim

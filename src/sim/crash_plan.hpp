// Crash plans: decide, at each shared-memory step of each process, whether
// the process takes a crash step *instead* (Section 1.2: a crash step can
// occur at any time; it wipes registers and resets the PC to Remainder).
//
// In the harness a crash is delivered by throwing ProcessCrashed from the
// platform access hook; the per-process driver catches it, the CC cache is
// flushed, and the process body is re-entered from the top.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <utility>
#include <vector>

#include "rmr/model.hpp"

namespace rme::sim {

// Thrown at an instrumented access point to model a crash step.
struct ProcessCrashed {};

// Thrown at an instrumented access point when the run is being torn down:
// workers must unwind without touching any shared test state.
struct RunTornDown {};

// Interface consulted *before* every shared-memory operation.
class CrashPlan {
 public:
  virtual ~CrashPlan() = default;
  // `step` is the per-process count of shared-memory ops attempted so far
  // (monotone across crashes within the run); `op` is the kind of the
  // operation about to execute. Return true to crash now (the crash step
  // replaces the operation).
  virtual bool should_crash(int pid, uint64_t step, rmr::Op op) = 0;
};

// Never crashes.
class NoCrash final : public CrashPlan {
 public:
  bool should_crash(int, uint64_t, rmr::Op) override { return false; }
};

// Crash `pid` relative to its n-th FAS instruction: kBefore models the
// paper's "crashed at Line 13" (the FAS never executed), kAfter models
// "crashed at Line 14" (the FAS executed but the Pred write was lost) -
// the two queue-breaking crash shapes of Section 3.1.
class CrashAroundFas final : public CrashPlan {
 public:
  enum When { kBefore, kAfter };
  CrashAroundFas(int pid, int nth_fas, When when)
      : pid_(pid), nth_(nth_fas), when_(when) {}

  bool should_crash(int pid, uint64_t, rmr::Op op) override {
    if (pid != pid_ || fired_) return false;
    if (when_ == kBefore) {
      if (op == rmr::Op::kFas && ++seen_ == nth_) {
        fired_ = true;
        return true;
      }
      return false;
    }
    // kAfter: crash at the first op following the n-th completed FAS.
    if (armed_) {
      fired_ = true;
      return true;
    }
    if (op == rmr::Op::kFas && ++seen_ == nth_) armed_ = true;
    return false;
  }

  bool fired() const { return fired_; }

 private:
  int pid_;
  int nth_;
  When when_;
  int seen_ = 0;
  bool armed_ = false;
  bool fired_ = false;
};

// Crash process `pid` exactly when its step counter hits each value in
// `steps` (sorted ascending). Used for systematic "crash at every point"
// sweeps: run once to count steps, then re-run crashing at step i for all i.
class CrashAtSteps final : public CrashPlan {
 public:
  CrashAtSteps(int pid, std::vector<uint64_t> steps)
      : pid_(pid), steps_(std::move(steps)) {}

  bool should_crash(int pid, uint64_t step, rmr::Op) override {
    if (pid != pid_ || next_ >= steps_.size()) return false;
    if (step == steps_[next_]) {
      ++next_;
      return true;
    }
    return false;
  }

 private:
  int pid_;
  std::vector<uint64_t> steps_;
  size_t next_ = 0;
};

// Compose independent crash plans: the process crashes when any
// constituent plan says so. Every constituent is consulted on every step
// so stateful plans (CrashAroundFas arming, budgets) advance uniformly.
class MultiPlan final : public CrashPlan {
 public:
  MultiPlan() = default;

  void add(std::unique_ptr<CrashPlan> p) { plans_.push_back(std::move(p)); }

  template <class Plan, class... Args>
  Plan* emplace(Args&&... args) {
    auto p = std::make_unique<Plan>(std::forward<Args>(args)...);
    Plan* raw = p.get();
    plans_.push_back(std::move(p));
    return raw;
  }

  bool should_crash(int pid, uint64_t step, rmr::Op op) override {
    bool crash = false;
    for (auto& p : plans_) {
      crash = p->should_crash(pid, step, op) || crash;
    }
    return crash;
  }

  size_t size() const { return plans_.size(); }

 private:
  std::vector<std::unique_ptr<CrashPlan>> plans_;
};

// Independent per-access crash probability, optionally with a budget of at
// most `max_crashes` total crashes (so runs terminate / starvation-freedom
// preconditions hold: "total number of crashes in the run is finite").
class RandomCrash final : public CrashPlan {
 public:
  RandomCrash(double p, uint64_t seed, uint64_t max_crashes)
      : p_(p), rng_(seed), max_(max_crashes) {}

  bool should_crash(int /*pid*/, uint64_t /*step*/, rmr::Op) override {
    if (crashes_.load(std::memory_order_relaxed) >= max_) return false;
    std::lock_guard<std::mutex> g(mu_);
    if (dist_(rng_) < p_) {
      crashes_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  uint64_t crashes() const { return crashes_.load(std::memory_order_relaxed); }

 private:
  double p_;
  std::mutex mu_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
  uint64_t max_;
  std::atomic<uint64_t> crashes_{0};
};

}  // namespace rme::sim

// RMR (remote memory reference) cost models for CC and DSM machines,
// exactly as defined in Section 1.3 of the paper:
//
//   CC:  every process has a cache. A read of cell X is local iff a valid
//        copy of X is in the reader's cache; the read installs a copy.
//        Any non-read on X (write, FAS) invalidates all cached copies and
//        is itself remote. A crash wipes the crashed process's cache.
//
//   DSM: shared memory is partitioned, each cell lives in exactly one
//        partition. Any access (read or not) to a cell outside the
//        caller's partition is remote.
//
// The models are driven by the Counted platform (src/platform/platform.hpp):
// every atomic operation on a counted cell reports (pid, cell id, kind)
// here and receives back "was this an RMR?". Counts are accumulated per
// process so tests and benches can assert exact asymptotics.
//
// Thread safety: models are used both single-threaded (deterministic
// simulator) and from concurrent real threads (counted benches). All
// mutable shared state is atomic; per-process state (the CC cache) is
// sharded by pid and only touched by that pid's thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"

namespace rme::rmr {

// Kind of shared-memory operation, for accounting and instruction-mix audits.
enum class Op : uint8_t {
  kRead = 0,
  kWrite = 1,
  kFas = 2,  // fetch-and-store (atomic exchange) - the only RMW the core lock uses
  kCas = 3,  // available so baselines can be audited; the core lock never issues it
  kFai = 4,  // fetch-and-increment (ticket-lock baseline only)
};

inline const char* op_name(Op op) {
  switch (op) {
    case Op::kRead: return "read";
    case Op::kWrite: return "write";
    case Op::kFas: return "fas";
    case Op::kCas: return "cas";
    case Op::kFai: return "fai";
  }
  return "?";
}

// Identifier of a shared cell. Cells register with the model on
// construction; kNoOwner marks cells that live in no process's partition
// (DSM: always remote; e.g. Tail and the Node array).
using CellId = uint64_t;
inline constexpr int kNoOwner = -1;

// Per-process operation counters. "steps" counts every shared-memory
// operation (local or remote) so wait-free bounds can be checked in
// *steps*, not just RMRs.
struct Counters {
  uint64_t rmrs = 0;
  uint64_t steps = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t fas = 0;
  uint64_t cas = 0;
  uint64_t fai = 0;

  void note_op(Op op) {
    ++steps;
    switch (op) {
      case Op::kRead: ++reads; break;
      case Op::kWrite: ++writes; break;
      case Op::kFas: ++fas; break;
      case Op::kCas: ++cas; break;
      case Op::kFai: ++fai; break;
    }
  }
  void reset() { *this = Counters{}; }
  Counters operator-(const Counters& o) const {
    Counters r;
    r.rmrs = rmrs - o.rmrs;
    r.steps = steps - o.steps;
    r.reads = reads - o.reads;
    r.writes = writes - o.writes;
    r.fas = fas - o.fas;
    r.cas = cas - o.cas;
    r.fai = fai - o.fai;
    return r;
  }
};

// Abstract cost model. `charge` returns true iff the access is an RMR.
class Model {
 public:
  virtual ~Model() = default;

  // Register a new cell owned by `owner_pid` (kNoOwner = unpartitioned /
  // "global" memory). Returns the cell id.
  virtual CellId register_cell(int owner_pid) = 0;

  // Account one operation; returns whether it was remote.
  virtual bool charge(int pid, CellId cell, Op op) = 0;

  // A crash step of `pid`: CC loses the cache; DSM has no per-process
  // volatile state (the partition itself is NVMM).
  virtual void on_crash(int pid) = 0;

  virtual const char* name() const = 0;
};

// ---------------------------------------------------------------------------
// CC model.
//
// Validity of cached copies is tracked with per-cell version counters:
// a non-read bumps the cell version; a reader's copy is valid iff the
// version it cached equals the current version. This is equivalent to
// explicit invalidation but O(1) per write instead of O(processes).
// ---------------------------------------------------------------------------
class CcModel final : public Model {
 public:
  explicit CcModel(int nprocs) : caches_(static_cast<size_t>(nprocs)) {}

  CellId register_cell(int /*owner_pid*/) override {
    const CellId id = next_cell_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }

  bool charge(int pid, CellId cell, Op op) override {
    RME_ASSERT(pid >= 0 && static_cast<size_t>(pid) < caches_.size(),
               "CcModel: pid out of range");
    Cache& cache = caches_[static_cast<size_t>(pid)];
    std::atomic<uint64_t>& ver = version_slot(cell);
    if (op == Op::kRead) {
      const uint64_t cur = ver.load(std::memory_order_relaxed);
      auto it = cache.lines.find(cell);
      if (it != cache.lines.end() && it->second == cur) {
        return false;  // cache hit: local
      }
      cache.lines[cell] = cur;  // install copy
      cache.peak = std::max(cache.peak, cache.lines.size());
      return true;
    }
    // Non-read: invalidate everyone (version bump), remote by definition.
    const uint64_t nv = ver.fetch_add(1, std::memory_order_relaxed) + 1;
    // The writer may keep its own copy valid (it has the line in M state);
    // Sec 1.3 counts the op as an RMR regardless, but a subsequent read by
    // the same process is a hit on real CC hardware. We model that.
    cache.lines[cell] = nv;
    cache.peak = std::max(cache.peak, cache.lines.size());
    return true;
  }

  void on_crash(int pid) override {
    caches_[static_cast<size_t>(pid)].lines.clear();
  }

  const char* name() const override { return "CC"; }

  // Peak number of distinct cells simultaneously cached by `pid` since the
  // last reset — the "cache of O(1) words" claim (experiment E7).
  size_t peak_cache_words(int pid) const {
    return caches_[static_cast<size_t>(pid)].peak;
  }
  void reset_cache_stats(int pid) {
    caches_[static_cast<size_t>(pid)].peak =
        caches_[static_cast<size_t>(pid)].lines.size();
  }
  // Drop all copies (e.g. between bench repetitions).
  void flush_cache(int pid) {
    caches_[static_cast<size_t>(pid)].lines.clear();
    caches_[static_cast<size_t>(pid)].peak = 0;
  }

 private:
  struct Cache {
    std::unordered_map<CellId, uint64_t> lines;  // cell -> cached version
    size_t peak = 0;
  };

  std::atomic<uint64_t>& version_slot(CellId cell) {
    // Sharded growable version table: fixed-size chunks, lock-free lookup.
    const size_t chunk = static_cast<size_t>(cell) / kChunk;
    const size_t off = static_cast<size_t>(cell) % kChunk;
    if (chunk >= kMaxChunks) {
      util::panic(__FILE__, __LINE__, "CcModel: too many cells");
    }
    std::atomic<uint64_t>* p = chunks_[chunk].load(std::memory_order_acquire);
    if (p == nullptr) {
      auto* fresh = new std::atomic<uint64_t>[kChunk]();
      std::atomic<uint64_t>* expected = nullptr;
      if (chunks_[chunk].compare_exchange_strong(expected, fresh,
                                                 std::memory_order_acq_rel)) {
        p = fresh;
      } else {
        delete[] fresh;
        p = expected;
      }
    }
    return p[off];
  }

  static constexpr size_t kChunk = 4096;
  static constexpr size_t kMaxChunks = 4096;

  std::vector<Cache> caches_;
  std::atomic<CellId> next_cell_{0};
  std::atomic<std::atomic<uint64_t>*> chunks_[kMaxChunks] = {};
};

// ---------------------------------------------------------------------------
// DSM model: remote iff the cell's partition is not the caller's.
// ---------------------------------------------------------------------------
class DsmModel final : public Model {
 public:
  explicit DsmModel(int nprocs) : nprocs_(nprocs) {}

  CellId register_cell(int owner_pid) override {
    RME_ASSERT(owner_pid == kNoOwner || (owner_pid >= 0 && owner_pid < nprocs_),
               "DsmModel: bad owner pid");
    const CellId id = next_cell_.fetch_add(1, std::memory_order_relaxed);
    owner_slot(id).store(owner_pid, std::memory_order_relaxed);
    return id;
  }

  bool charge(int pid, CellId cell, Op /*op*/) override {
    return owner_slot(cell).load(std::memory_order_relaxed) != pid;
  }

  void on_crash(int /*pid*/) override {}

  const char* name() const override { return "DSM"; }

 private:
  std::atomic<int>& owner_slot(CellId cell) {
    const size_t chunk = static_cast<size_t>(cell) / kChunk;
    const size_t off = static_cast<size_t>(cell) % kChunk;
    if (chunk >= kMaxChunks) {
      util::panic(__FILE__, __LINE__, "DsmModel: too many cells");
    }
    std::atomic<int>* p = chunks_[chunk].load(std::memory_order_acquire);
    if (p == nullptr) {
      auto* fresh = new std::atomic<int>[kChunk]();
      std::atomic<int>* expected = nullptr;
      if (chunks_[chunk].compare_exchange_strong(expected, fresh,
                                                 std::memory_order_acq_rel)) {
        p = fresh;
      } else {
        delete[] fresh;
        p = expected;
      }
    }
    return p[off];
  }

  static constexpr size_t kChunk = 4096;
  static constexpr size_t kMaxChunks = 4096;

  int nprocs_;
  std::atomic<CellId> next_cell_{0};
  std::atomic<std::atomic<int>*> chunks_[kMaxChunks] = {};
};

}  // namespace rme::rmr

// Expected-style results for the rme::svc service verbs.
//
// The deadline verbs (Session::acquire_for/acquire_until) and bounded
// attempts (Session::try_acquire) need to say WHY an acquisition did not
// happen, not just that it didn't - a bool loses the distinction between
// "would block right now" and "deadline passed". std::expected is C++23;
// this library is C++20, so svc carries its own minimal equivalent.
#pragma once

#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"

namespace rme::svc {

/// Why an acquisition verb did not produce a guard.
enum class Errc : uint8_t {
  kWouldBlock = 1,  // single bounded attempt failed; retry is reasonable
  kTimeout,         // deadline passed before the lock was acquired
  kOverloaded,      // shed by the session's Admission policy before queueing
  kCancelled,       // the AcquireRequest was cancelled before completion
};

/// Stable display name of an Errc (logs, test output).
constexpr const char* to_string(Errc e) {
  switch (e) {
    case Errc::kWouldBlock: return "would-block";
    case Errc::kTimeout: return "timeout";
    case Errc::kOverloaded: return "overloaded";
    case Errc::kCancelled: return "cancelled";
  }
  return "?";
}

/// Either a value (a minted guard) or an Errc. Move-only values are fine;
/// accessing the wrong arm asserts.
///
/// Storage is a manual union rather than std::optional on purpose: the
/// guards this carries have noexcept(false) destructors (release() is a
/// crash point under the Counted simulator - sim::ProcessCrashed must
/// propagate, see api/guard.hpp), and std::optional's noexcept destructor
/// would turn that crash step into std::terminate. ~Expected inherits T's
/// destructor noexcept-ness instead.
template <class T>
class Expected {
 public:
  Expected(T&& v) : has_(true) {  // NOLINT(runtime/explicit)
    ::new (static_cast<void*>(&val_)) T(std::move(v));
  }
  Expected(Errc e) : has_(false), err_(e) {}  // NOLINT(runtime/explicit)

  Expected(Expected&& o) noexcept(std::is_nothrow_move_constructible_v<T>)
      : has_(o.has_), err_(o.err_) {
    if (has_) ::new (static_cast<void*>(&val_)) T(std::move(o.val_));
  }
  Expected(const Expected&) = delete;
  Expected& operator=(const Expected&) = delete;
  Expected& operator=(Expected&&) = delete;

  ~Expected() noexcept(std::is_nothrow_destructible_v<T>) {
    if (has_) val_.~T();  // a held guard releases here (crash point)
  }

  bool has_value() const { return has_; }
  explicit operator bool() const { return has_; }

  T& value() & {
    RME_ASSERT(has_, "svc::Expected: value() on an error");
    return val_;
  }
  T&& value() && {
    RME_ASSERT(has_, "svc::Expected: value() on an error");
    return std::move(val_);
  }
  T* operator->() { return &value(); }
  T& operator*() & { return value(); }

  Errc error() const {
    RME_ASSERT(!has_, "svc::Expected: error() on a value");
    return err_;
  }

 private:
  union {
    T val_;  // engaged iff has_
  };
  bool has_;
  Errc err_{};
};

}  // namespace rme::svc

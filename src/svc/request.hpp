// AcquireRequest: the asynchronous half of the rme::svc acquisition
// surface. Session::submit() runs admission and mints a move-only
// request object; the CALLER then decides how to wait:
//
//   auto r = session.submit();               // Errc::kOverloaded on shed
//   if (r) {
//     r->on_complete([](svc::Guard<L>& g) { /* fires once, inline */ });
//     while (r->poll() == svc::RequestState::kPending) do_other_work();
//     auto g = r->take();                    // Expected<Guard<L>>
//   }
//
//   auto g = r->wait();                      // or: block (policy-paced)
//   auto g = r->wait_until(deadline);        // kTimeout leaves it pending
//   r->cancel();                             // while pending only
//
//   auto rk = session.submit(key);           // keyed tables: per-shard
//   ...                                      // request; guard remembers
//                                            // the shard it landed on
//
// The request is driven entirely by the caller's thread - there is no
// hidden helper thread, matching the library's process model (a pid is
// one thread of control). poll() is one bounded attempt; wait*() are
// policy-paced retry loops that park under the session's (policy, lock)
// key, so a releaser's fair handoff wakes the oldest waiting REQUEST
// exactly like it wakes a blocked acquire(). The completion callback
// runs inline at the completing poll()/wait() call, before that call
// returns.
//
// Lifetime & discipline: single-caller, like the session that minted it
// (cancel() from another thread is a data race by contract). The request
// shares the session core, so it stays valid after the Session object is
// destroyed. A request destroyed while READY releases its guard; one
// destroyed while PENDING simply evaporates (nothing was acquired - the
// lock was never touched beyond bounded attempts).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <utility>

#include "api/lock_concept.hpp"
#include "platform/platform.hpp"
#include "svc/result.hpp"
#include "svc/session.hpp"
#include "util/assert.hpp"

namespace rme::svc {

/// Lifecycle of an AcquireRequest (see the state table in docs/svc.md).
enum class RequestState : uint8_t {
  kPending,    // submitted, not yet acquired
  kReady,      // acquired; guard parked inside the request
  kTaken,      // guard moved out via take()/wait*() (terminal)
  kCancelled,  // cancelled while pending (terminal)
};

/// Stable display name of a RequestState (logs, test output).
constexpr const char* to_string(RequestState s) {
  switch (s) {
    case RequestState::kPending: return "pending";
    case RequestState::kReady: return "ready";
    case RequestState::kTaken: return "taken";
    case RequestState::kCancelled: return "cancelled";
  }
  return "?";
}

namespace detail {

// Re-assignable guard storage. A manual union rather than std::optional
// for the same reason as svc::Expected: the guard's destructor is
// noexcept(false) (release is a crash point under the Counted
// simulator), and std::optional's noexcept destructor would turn that
// crash step into std::terminate.
template <class T>
class Slot {
 public:
  Slot() : has_(false) {}
  Slot(Slot&& o) noexcept(std::is_nothrow_move_constructible_v<T>)
      : has_(o.has_) {
    if (has_) {
      ::new (static_cast<void*>(&val_)) T(std::move(o.val_));
      o.clear();
    }
  }
  Slot(const Slot&) = delete;
  Slot& operator=(const Slot&) = delete;
  Slot& operator=(Slot&&) = delete;
  ~Slot() noexcept(std::is_nothrow_destructible_v<T>) {
    if (has_) val_.~T();  // a held guard releases here (crash point)
  }

  bool has() const { return has_; }
  T& ref() {
    RME_ASSERT(has_, "svc::detail::Slot: ref() on empty");
    return val_;
  }
  void emplace(T&& v) {
    RME_ASSERT(!has_, "svc::detail::Slot: emplace() on engaged");
    ::new (static_cast<void*>(&val_)) T(std::move(v));
    has_ = true;
  }
  T take() {
    RME_ASSERT(has_, "svc::detail::Slot: take() on empty");
    T out(std::move(val_));
    clear();
    return out;
  }

 private:
  void clear() noexcept(std::is_nothrow_destructible_v<T>) {
    if (has_) {
      has_ = false;
      val_.~T();
    }
  }

  union {
    T val_;  // engaged iff has_
  };
  bool has_;
};

}  // namespace detail

/// Move-only asynchronous acquisition handle minted by Session::submit().
/// The caller drives completion (poll / wait / wait_until / wait_for),
/// may cancel() while pending, and attaches at most one on_complete
/// callback (fires exactly once, inline at the completing call). Shares
/// the session core, so it outlives the Session that minted it; a request
/// destroyed while ready releases its guard, one destroyed while pending
/// evaporates. Single-caller by contract, like the session.
template <class L>
class AcquireRequest {
 public:
  using Clock = std::chrono::steady_clock;

  AcquireRequest(AcquireRequest&& o) noexcept(
      std::is_nothrow_move_constructible_v<Guard<L>>)
      : core_(std::move(o.core_)),
        slot_(std::move(o.slot_)),
        cb_(std::move(o.cb_)),
        state_(o.state_),
        carried_cycles_(o.carried_cycles_),
        gate_wait_ns_(o.gate_wait_ns_),
        key_(o.key_),
        shard_(o.shard_),
        keyed_(o.keyed_) {
    o.state_ = RequestState::kCancelled;  // moved-from: inert
    o.cb_ = nullptr;
  }
  AcquireRequest(const AcquireRequest&) = delete;
  AcquireRequest& operator=(const AcquireRequest&) = delete;
  AcquireRequest& operator=(AcquireRequest&&) = delete;
  // Implicit destructor: a READY-but-untaken guard releases via the slot
  // (noexcept(false), inherited - release is a crash point).

  RequestState state() const { return state_; }
  bool pending() const { return state_ == RequestState::kPending; }
  bool ready() const { return state_ == RequestState::kReady; }

  // One bounded attempt (when pending). Returns the resulting state; a
  // transition to kReady fires the completion callback before returning.
  RequestState poll() {
    if (state_ != RequestState::kPending) return state_;
    const uint64_t vt0 = core_->gate_begin();
    detail::SiteScope site(ctx(), core_->site());
    if (attempt()) {
      complete(ctx().wait_cycles, vt0);  // single attempt: nothing to book
    }
    return state_;
  }

  // Block (policy-paced bounded attempts) until acquired. Parks under
  // the session's (policy, lock) key, so fair handoff applies.
  Expected<Guard<L>> wait() {
    if (state_ == RequestState::kReady) return take();
    if (state_ != RequestState::kPending) return Errc::kCancelled;
    const uint64_t w0 = ctx().wait_cycles;
    const uint64_t vt0 = core_->gate_begin();
    detail::SiteScope site(ctx(), core_->site());
    platform::Waiter wtr;
    while (!attempt()) {
      wtr.pause(ctx(), core_->lock);
    }
    complete(w0, vt0);
    return take();
  }

  // Like wait(), but gives up at `deadline`: the request STAYS pending
  // (books a timeout) and a later poll()/wait() may still complete it.
  Expected<Guard<L>> wait_until(Clock::time_point deadline) {
    if (state_ == RequestState::kReady) return take();
    if (state_ != RequestState::kPending) return Errc::kCancelled;
    const uint64_t w0 = ctx().wait_cycles;
    const uint64_t vt0 = core_->gate_begin();
    detail::SiteScope site(ctx(), core_->site());
    platform::Waiter wtr;
    for (;;) {
      if (attempt()) {
        complete(w0, vt0);
        return take();
      }
      if (Clock::now() >= deadline) {
        // Book this verb's pauses now; a later verb that completes the
        // request books only its OWN span (each verb passes its local
        // w0 to complete()), so timed-out waits are never re-counted -
        // but they are CARRIED so the eventual acquisition still counts
        // as contended, and their wall-clock span still reaches the
        // admission gate.
        core_->note_timeout();
        const uint64_t waited = ctx().wait_cycles - w0;
        core_->stats.wait_cycles += waited;
        carried_cycles_ += waited;
        if (vt0 != 0) gate_wait_ns_ += detail::SessionCore<L>::now_ns() - vt0;
        return Errc::kTimeout;
      }
      wtr.pause(ctx(), core_->lock);
    }
  }

  Expected<Guard<L>> wait_for(std::chrono::nanoseconds timeout) {
    return wait_until(Clock::now() + timeout);
  }

  // Abandon a pending request. Returns true when the request moved to
  // kCancelled; false when it was not pending (already ready/taken -
  // the guard, if any, still releases on destruction or take()).
  bool cancel() {
    if (state_ != RequestState::kPending) return false;
    state_ = RequestState::kCancelled;
    ++core_->stats.cancels;
    return true;
  }

  // Attach (or replace) the completion hook; fires exactly once, inline
  // at the completing poll()/wait*() call. Attaching after completion
  // fires immediately while the guard is still held by the request.
  void on_complete(std::function<void(Guard<L>&)> cb) {
    cb_ = std::move(cb);
    if (state_ == RequestState::kReady && cb_) {
      auto cb = std::move(cb_);
      cb_ = nullptr;
      cb(slot_.ref());
    }
  }

  // Move the minted guard out (kReady -> kTaken). Any other state is an
  // error arm: kCancelled for cancelled/moved-from requests, kWouldBlock
  // while still pending.
  Expected<Guard<L>> take() {
    switch (state_) {
      case RequestState::kReady:
        state_ = RequestState::kTaken;
        return slot_.take();
      case RequestState::kPending:
        return Errc::kWouldBlock;
      default:
        return Errc::kCancelled;
    }
  }

 private:
  template <class>
  friend class Session;

  explicit AcquireRequest(std::shared_ptr<detail::SessionCore<L>> core)
      : core_(std::move(core)) {}

  AcquireRequest(std::shared_ptr<detail::SessionCore<L>> core, uint64_t key)
      : core_(std::move(core)), key_(key), keyed_(true) {}

  typename L::Platform::Context& ctx() { return core_->proc->ctx; }

  // One bounded attempt against the lock; keyed requests record the
  // shard their key mapped to so the guard can hand off shard-sited.
  bool attempt() {
    if constexpr (api::TryKeyedLock<L>) {
      if (keyed_) {
        shard_ = core_->lock->try_acquire(*core_->proc, core_->id, key_);
        return shard_ >= 0;
      }
    }
    if constexpr (api::TryLock<L>) {
      if (!keyed_) return core_->lock->try_acquire(*core_->proc, core_->id);
    }
    RME_ASSERT(false, "svc::AcquireRequest: no try path for this lock");
    return false;
  }

  // Transition kPending -> kReady: mint the guard, book telemetry for
  // the completing verb's pause span (`w0_verb`; earlier timed-out
  // verbs booked their own spans already and are carried only for the
  // contended flag) and feed the admission gate the request's TOTAL
  // IN-VERB wall time - the spans spent inside poll/wait calls, NOT the
  // caller's unrelated work between them (idling between polls is not
  // queueing delay) - then fire the callback.
  void complete(uint64_t w0_verb, uint64_t verb_t0) {
    uint64_t gate_t0 = 0;
    if (verb_t0 != 0) {
      gate_wait_ns_ += detail::SessionCore<L>::now_ns() - verb_t0;
      gate_t0 = detail::SessionCore<L>::now_ns() - gate_wait_ns_;
    }
    core_->note_acquire(w0_verb, gate_t0, /*batch=*/false, carried_cycles_,
                        shard_);
    slot_.emplace(Guard<L>(core_, shard_));
    state_ = RequestState::kReady;
    if (cb_) {
      auto cb = std::move(cb_);
      cb_ = nullptr;
      cb(slot_.ref());
    }
  }

  std::shared_ptr<detail::SessionCore<L>> core_;
  detail::Slot<Guard<L>> slot_;
  std::function<void(Guard<L>&)> cb_;
  RequestState state_ = RequestState::kPending;
  uint64_t carried_cycles_ = 0;  // pauses booked by timed-out waits
  uint64_t gate_wait_ns_ = 0;    // in-verb wall time (gated sessions)
  uint64_t key_ = 0;             // keyed requests: the target key
  int shard_ = -1;               // keyed requests: shard once acquired
  bool keyed_ = false;
};

// --- Session::submit, defined here where AcquireRequest is complete ---

template <class L>
Expected<AcquireRequest<L>> Session<L>::submit()
  requires api::TryLock<L>
{
  if (!core_->admitted()) return Errc::kOverloaded;  // books the shed
  ++core_->stats.submits;  // counts MINTED requests only
  return AcquireRequest<L>(core_);
}

template <class L>
Expected<AcquireRequest<L>> Session<L>::submit(uint64_t key)
  requires api::TryKeyedLock<L>
{
  if (!core_->admitted()) return Errc::kOverloaded;  // books the shed
  ++core_->stats.submits;  // counts MINTED requests only
  return AcquireRequest<L>(core_, key);
}

}  // namespace rme::svc

// Umbrella header for the rme::svc service layer - the session-oriented
// public surface over the rme::api lock concept:
//
//   result.hpp   - Errc + Expected (expected-style verb results)
//   session.hpp  - Session, session-minted Guard, deadline verbs,
//                  per-session telemetry, WaitPolicy installation
//   batch.hpp    - BatchGuard (multi-key sorted-2PL batches)
//
// plus the injectable wait policies from platform/wait.hpp (SpinPolicy,
// SpinYieldPolicy, ParkPolicy), re-exported here because choosing one is
// part of opening a session.
//
// Typical use:
//
//   #include "svc/svc.hpp"
//
//   rme::harness::RealWorld world(n);
//   rme::api::LeasedLock<rme::platform::Real> lock(world.env, ports, n);
//   rme::platform::ParkPolicy park;                 // shared by sessions
//   rme::svc::Session s(lock, world.proc(pid), pid, &park);
//   {
//     auto g = s.acquire();
//     ... critical section ...
//   }
//   auto r = s.acquire_for(std::chrono::milliseconds(5));
//   if (!r) handle(r.error());                      // kTimeout
#pragma once

#include "platform/wait.hpp"  // IWYU pragma: export
#include "svc/batch.hpp"      // IWYU pragma: export
#include "svc/result.hpp"     // IWYU pragma: export
#include "svc/session.hpp"    // IWYU pragma: export

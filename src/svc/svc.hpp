// Umbrella header for the rme::svc service layer - the request-oriented
// session surface over the rme::api lock concept:
//
//   result.hpp    - Errc + Expected (expected-style verb results)
//   admission.hpp - Admission gate + WaitTrendAdmission (two-timescale
//                   wait_cycles-trend load shedding, Errc::kOverloaded)
//   session.hpp   - Session, session-minted Guard, blocking + deadline
//                   verbs, per-session telemetry (handoff_rmrs included),
//                   WaitPolicy installation and per-verb wait-site pinning
//   request.hpp   - AcquireRequest (Session::submit(): poll / wait /
//                   wait_until / cancel / on_complete)
//   batch.hpp     - BatchGuard + Session::acquire_batch/_for/_until
//                   (multi-key sorted-2PL batches, deadline variant with
//                   sorted prefix backout)
//
// plus the injectable wait policies from platform/wait.hpp (SpinPolicy,
// SpinYieldPolicy, ParkPolicy, AdaptivePolicy), re-exported here because
// choosing one is part of opening a session.
//
// Typical use:
//
//   #include "svc/svc.hpp"
//
//   rme::harness::RealWorld world(n);
//   rme::api::LeasedLock<rme::platform::Real> lock(world.env, ports, n);
//   rme::platform::ParkPolicy park;        // shared: fair FIFO handoff
//   rme::svc::WaitTrendAdmission gate;     // per session: load shedding
//   rme::svc::Session s(lock, world.proc(pid), pid, &park, &gate);
//   if (auto g = s.acquire()) {
//     ... critical section via *g ...
//   } else {
//     shed(g.error());                     // Errc::kOverloaded
//   }
//   auto r = s.submit();                   // async: AcquireRequest
//   if (r && r->wait_for(5ms)) { ... }
#pragma once

#include "platform/wait.hpp"   // IWYU pragma: export
#include "svc/admission.hpp"   // IWYU pragma: export
#include "svc/batch.hpp"       // IWYU pragma: export
#include "svc/request.hpp"     // IWYU pragma: export
#include "svc/result.hpp"      // IWYU pragma: export
#include "svc/session.hpp"     // IWYU pragma: export

// Session-level admission control: shed load at the service boundary
// BEFORE a doomed acquisition joins the queue.
//
// Open-loop traffic has no natural backpressure: once the arrival rate
// exceeds the lock's service rate, every additional admitted acquisition
// only lengthens the queue everyone else waits in, and latency grows
// without bound (queueing collapse - bench_svc's overload scenario shows
// the curve). The two-timescale admission idea (Chen et al., PAPERS.md)
// is that the decision signal must separate "load is momentarily high"
// from "load is persistently above capacity": compare a FAST estimate of
// the current cost against a SLOW estimate of the sustainable baseline,
// and reject new work while the fast estimate has detached from the slow
// one. Sessions already own the perfect cost signal - wait_cycles per
// acquisition - so admission composes from telemetry the layer keeps
// anyway.
//
// An Admission object is consulted by every session acquisition verb
// (acquire, try/deadline verbs, submit, batch verbs); rejection surfaces
// as Errc::kOverloaded without touching the lock - the queue never sees
// the shed arrival. Unlike WaitPolicy, an Admission instance is
// per-session state (its estimators are written from the session's own
// verbs, which are single-caller by contract): give each session its own
// instance, do not share one across threads.
#pragma once

#include <cstdint>

namespace rme::svc {

/// The decision interface. admit() runs before the lock is touched;
/// on_acquired feeds back the observed WALL-CLOCK cost (nanoseconds from
/// verb entry to acquisition) of each successful acquisition; on_shed is
/// called for every rejection. Wall time rather than the session's
/// wait_cycles iteration count on purpose: under yielding/parking
/// policies a collapsing queue does not add ITERATIONS (each yield or
/// park just takes longer), so the iteration count is blind to exactly
/// the condition admission exists to catch. The gated path pays two
/// steady_clock reads per verb; ungated sessions pay nothing.
class Admission {
 public:
  virtual ~Admission() = default;
  virtual bool admit() = 0;
  virtual void on_acquired(uint64_t wait_ns) { (void)wait_ns; }
  virtual void on_shed() {}
  // Stable name for telemetry rows (bench_svc emits admission=<name>).
  virtual const char* name() const = 0;
};

/// Default estimator: two-timescale EWMA over per-acquire wait time.
///
///   fast  - tracks the wait cost of the last few acquisitions
///   slow  - the SUSTAINABLE baseline: adapts quickly downward (an
///           improvement is believed immediately) but only glacially
///           upward (sustained degradation must not be normalised into
///           the baseline - that is exactly the queueing-collapse signal
///           a symmetric EWMA would absorb within its own timescale)
///
/// Overload is declared while fast > trend_factor * slow + floor_ns: the
/// current cost has detached from the sustainable baseline by more than a
/// multiplicative trend (the additive floor keeps an idle lock's
/// near-zero baseline from making the first contended burst look like
/// collapse - waits under floor_ns never shed). While shedding, every
/// `probe_every`-th arrival is admitted anyway: shed arrivals produce no
/// samples, so without probes the fast estimate could never observe
/// recovery and the gate would latch shut.
class WaitTrendAdmission final : public Admission {
 public:
  static constexpr const char* kName = "wait_trend";

  struct Options {
    double fast_alpha = 0.25;      // EWMA weight of the fast estimator
    double slow_up_alpha = 0.001;  // baseline creep when waits degrade
    double slow_down_alpha = 0.2;  // baseline snap when waits improve
    double trend_factor = 4.0;     // fast/slow detachment that sheds
    uint64_t floor_ns = 4000;      // additive slack below which never shed
    uint64_t min_samples = 16;     // admit everything until warmed up
    uint64_t probe_every = 16;     // admit every Nth shed candidate anyway
  };

  WaitTrendAdmission() : opt_() {}
  explicit WaitTrendAdmission(Options opt) : opt_(opt) {}

  bool admit() override {
    if (samples_ < opt_.min_samples) return true;
    if (fast_ <= opt_.trend_factor * slow_ +
                     static_cast<double>(opt_.floor_ns)) {
      return true;
    }
    // Overloaded: probe occasionally so the estimators can see recovery.
    return ++shed_streak_ % opt_.probe_every == 0;
  }

  void on_acquired(uint64_t wait_ns) override {
    const double w = static_cast<double>(wait_ns);
    fast_ += opt_.fast_alpha * (w - fast_);
    slow_ += (w < slow_ ? opt_.slow_down_alpha : opt_.slow_up_alpha) *
             (w - slow_);
    ++samples_;
    shed_streak_ = 0;
  }

  const char* name() const override { return kName; }

  // Introspection (tests, bench reporting).
  double fast() const { return fast_; }
  double slow() const { return slow_; }
  uint64_t samples() const { return samples_; }

 private:
  Options opt_;
  double fast_ = 0;
  double slow_ = 0;
  uint64_t samples_ = 0;
  uint64_t shed_streak_ = 0;
};

}  // namespace rme::svc

// BatchGuard: crash-consistent atomic acquisition of N keys on a
// batch-capable keyed table (api::BatchKeyedLock, i.e. TableLock /
// core::RecoverableLockTable).
//
//   svc::Session s(table, world.proc(pid), pid);
//   {
//     svc::BatchGuard g(s, {from_acct, to_acct});
//     ... critical section holding BOTH accounts' shards ...
//   }  // all shards released on scope exit
//
// Underneath: sorted two-phase locking (every batch acquires its shards
// in ascending shard order), so batches are deadlock-free by
// construction no matter how they overlap. The full target-shard set is
// persisted BEFORE the first port lease; after a crash anywhere -
// partial prefix held, inside the CS, mid-release - the recovery
// protocol (session.recover(), or any later acquisition by the same
// identity) REPLAYS the batch: each persisted shard is re-entered via
// the paper's recovery code (wait-free CSR included) and exited, so no
// hold is leaked and none can be duplicated.
//
// Like every guard in this library, a crash unwinding through the scope
// skips release - the shards stay held for recovery.
#pragma once

#include <bit>
#include <cstdint>
#include <exception>
#include <initializer_list>
#include <memory>
#include <span>

#include "api/lock_concept.hpp"
#include "svc/session.hpp"

namespace rme::svc {

template <api::BatchKeyedLock L>
class BatchGuard {
 public:
  // Acquires on construction (blocking; paced by the session's policy).
  BatchGuard(Session<L>& s, std::span<const uint64_t> keys)
      : core_(SessionAccess::core(s)), unwind_(std::uncaught_exceptions()) {
    const uint64_t w0 = core_->proc->ctx.wait_cycles;
    mask_ = core_->lock->acquire_batch(*core_->proc, core_->id, keys.data(),
                                       keys.size());
    core_->note_acquire(w0, /*batch=*/true);
  }
  BatchGuard(Session<L>& s, std::initializer_list<uint64_t> keys)
      : BatchGuard(s, std::span<const uint64_t>(keys.begin(), keys.size())) {}

  BatchGuard(const BatchGuard&) = delete;
  BatchGuard& operator=(const BatchGuard&) = delete;
  BatchGuard(BatchGuard&& o) noexcept
      : core_(std::move(o.core_)),
        mask_(o.mask_),
        unwind_(o.unwind_),
        held_(o.held_) {
    o.held_ = false;
  }

  ~BatchGuard() noexcept(false) {  // see svc::Guard
    if (!held_) return;
    if (std::uncaught_exceptions() > unwind_) return;  // crash unwind
    held_ = false;
    do_release();
  }

  // Idempotent early release of the whole batch.
  void release() {
    if (!held_) return;
    held_ = false;
    do_release();
  }

  bool held() const { return held_; }
  // The shards this batch holds (ascending acquisition order).
  uint64_t shard_mask() const { return mask_; }
  int shard_count() const { return std::popcount(mask_); }
  bool holds_shard(int s) const {
    return (mask_ & (uint64_t{1} << s)) != 0;
  }

 private:
  void do_release() {
    core_->lock->release_batch(*core_->proc, core_->id);
    core_->note_release();
  }

  std::shared_ptr<detail::SessionCore<L>> core_;
  uint64_t mask_ = 0;
  int unwind_ = 0;
  bool held_ = true;
};

}  // namespace rme::svc

// BatchGuard: crash-consistent atomic acquisition of N keys on a
// batch-capable keyed table (api::BatchKeyedLock, i.e. TableLock /
// core::RecoverableLockTable).
//
//   svc::Session s(table, world.proc(pid), pid);
//   {
//     auto g = s.acquire_batch({from_acct, to_acct}).value();
//     ... critical section holding BOTH accounts' shards ...
//   }  // all shards released on scope exit
//
//   auto r = s.acquire_batch_for({a, b, c}, 5ms);   // deadline batches
//   if (!r) handle(r.error());   // kTimeout: prefix backed out, no residue
//
// (The direct `svc::BatchGuard g(session, {k1, k2})` constructor remains
// for blocking call sites that want guard-on-construction; the session
// verbs add admission control and the deadline variants.)
//
// Underneath: sorted two-phase locking (every batch acquires its shards
// in ascending shard order), so batches are deadlock-free by
// construction no matter how they overlap. The full target-shard set is
// persisted BEFORE the first port lease; after a crash anywhere -
// partial prefix held, inside the CS, mid-release, or mid-BACKOUT of a
// timed-out deadline batch - the recovery protocol (session.recover(),
// or any later acquisition by the same identity) REPLAYS the batch: each
// persisted shard is re-entered via the paper's recovery code (wait-free
// CSR included) and exited, so no hold is leaked and none can be
// duplicated.
//
// Like every guard in this library, a crash unwinding through the scope
// skips release - the shards stay held for recovery.
#pragma once

#include <bit>
#include <cstdint>
#include <exception>
#include <initializer_list>
#include <memory>
#include <span>

#include "api/lock_concept.hpp"
#include "svc/session.hpp"

namespace rme::svc {

/// RAII hold over ALL shards guarding a key set, acquired atomically via
/// sorted two-phase locking (deadlock-free by construction) with the
/// target-shard set persisted before the first port lease - so a crash
/// anywhere is replayed by the recovery protocol, leaking and duplicating
/// nothing. Minted by Session::acquire_batch/_for/_until (admission-gated,
/// deadline variants with sorted prefix backout) or constructed directly
/// for the plain blocking form. Crash-consistent unwinding like every
/// guard in the library.
template <class L>
class BatchGuard {
  static_assert(api::BatchKeyedLock<L>,
                "svc::BatchGuard requires an api::BatchKeyedLock");

 public:
  // Acquires on construction (blocking; paced by the session's policy;
  // bypasses the session's Admission gate - use Session::acquire_batch
  // for the gated verb).
  BatchGuard(Session<L>& s, std::span<const uint64_t> keys)
      : core_(SessionAccess::core(s)), unwind_(std::uncaught_exceptions()) {
    const uint64_t w0 = core_->proc->ctx.wait_cycles;
    const uint64_t t0 = core_->gate_begin();
    detail::SiteScope site(core_->proc->ctx, core_->site());
    mask_ = core_->lock->acquire_batch(*core_->proc, core_->id, keys.data(),
                                       keys.size());
    core_->note_acquire(w0, t0, /*batch=*/true);
  }
  BatchGuard(Session<L>& s, std::initializer_list<uint64_t> keys)
      : BatchGuard(s, std::span<const uint64_t>(keys.begin(), keys.size())) {}

  BatchGuard(const BatchGuard&) = delete;
  BatchGuard& operator=(const BatchGuard&) = delete;
  BatchGuard(BatchGuard&& o) noexcept
      : core_(std::move(o.core_)),
        mask_(o.mask_),
        unwind_(o.unwind_),
        held_(o.held_) {
    o.held_ = false;
  }

  ~BatchGuard() noexcept(false) {  // see svc::Guard
    if (!held_) return;
    if (std::uncaught_exceptions() > unwind_) return;  // crash unwind
    held_ = false;
    do_release();
  }

  // Idempotent early release of the whole batch.
  void release() {
    if (!held_) return;
    held_ = false;
    do_release();
  }

  bool held() const { return held_; }
  // The shards this batch holds (ascending acquisition order).
  uint64_t shard_mask() const { return mask_; }
  int shard_count() const { return std::popcount(mask_); }
  bool holds_shard(int s) const {
    return (mask_ & (uint64_t{1} << s)) != 0;
  }

 private:
  template <class>
  friend class Session;

  // Adopt an already-acquired batch (Session::acquire_batch*).
  BatchGuard(std::shared_ptr<detail::SessionCore<L>> core, uint64_t mask)
      : core_(std::move(core)),
        mask_(mask),
        unwind_(std::uncaught_exceptions()) {}

  void do_release() {
    // Clear the wake hint as svc::Guard does. The batch release runs one
    // CS signal per shard, each overwriting the hint, so only the LAST
    // released shard's successor survives in it - the other shards'
    // wake_at calls simply miss the hint and fall back to the lot's FIFO
    // scan (platform/park.hpp unpark_one), which is correct, just
    // untargeted.
    core_->proc->ctx.wake_hint = nullptr;
    core_->lock->release_batch(*core_->proc, core_->id);
    if constexpr (detail::ShardSited<L>) {
      // One targeted handoff per RELEASED SHARD (each freed shard can
      // admit one waiter), still one release in the session telemetry.
      // The region arena instead books one release PER FREED SHARD, so
      // the region-wide handoff_rmrs <= releases invariant (which the
      // cts audit and the obs CI gate check) stays true under batches.
      ++core_->stats.releases;
      if (auto* r = core_->row()) {
        r->add(obs::kReleases, static_cast<uint64_t>(std::popcount(mask_)));
      }
      for (uint64_t m = mask_; m != 0; m &= m - 1) {
        core_->wake_at(core_->lock->shard_wait_site(std::countr_zero(m)));
      }
    } else {
      core_->note_release();
    }
  }

  std::shared_ptr<detail::SessionCore<L>> core_;
  uint64_t mask_ = 0;
  int unwind_ = 0;
  bool held_ = true;
};

// --- Session batch verbs, defined here where BatchGuard is complete ---

template <class L>
Expected<BatchGuard<L>> Session<L>::acquire_batch(
    std::span<const uint64_t> keys)
  requires api::BatchKeyedLock<L>
{
  if (!core_->admitted()) return Errc::kOverloaded;
  const uint64_t w0 = ctx().wait_cycles;
  const uint64_t t0 = core_->gate_begin();
  detail::SiteScope site(ctx(), core_->site());
  const uint64_t mask = core_->lock->acquire_batch(*core_->proc, core_->id,
                                                   keys.data(), keys.size());
  core_->note_acquire(w0, t0, /*batch=*/true);
  return BatchGuard<L>(core_, mask);
}

template <class L>
Expected<BatchGuard<L>> Session<L>::acquire_batch_until(
    std::span<const uint64_t> keys, Clock::time_point deadline)
  requires api::DeadlineBatchKeyedLock<L>
{
  if (!core_->admitted()) return Errc::kOverloaded;
  const uint64_t w0 = ctx().wait_cycles;
  const uint64_t t0 = core_->gate_begin();
  detail::SiteScope site(ctx(), core_->site());
  const uint64_t mask = core_->lock->acquire_batch_until(
      *core_->proc, core_->id, keys.data(), keys.size(),
      [&] { return Clock::now() >= deadline; });
  if (mask == 0) {
    core_->note_timeout();
    core_->stats.wait_cycles += ctx().wait_cycles - w0;
    return Errc::kTimeout;
  }
  core_->note_acquire(w0, t0, /*batch=*/true);
  return BatchGuard<L>(core_, mask);
}

template <class L>
Expected<BatchGuard<L>> Session<L>::acquire_batch_for(
    std::span<const uint64_t> keys, std::chrono::nanoseconds timeout)
  requires api::DeadlineBatchKeyedLock<L>
{
  return acquire_batch_until(keys, Clock::now() + timeout);
}

}  // namespace rme::svc

// rme::svc - the session-oriented service layer over the rme::api lock
// concept: the surface a traffic-serving system builds on.
//
// A Session binds one caller identity (pid/port/side, per the lock's
// Traits::addressing) to one lock and one Process handle, and is the sole
// entry point for acquisition:
//
//   svc::Session s(lock, world.proc(pid), pid, &policy);
//   {
//     auto g = s.acquire();              // session-minted guard
//     ... critical section ...
//   }                                    // released on scope exit
//
//   auto r = s.acquire_for(5ms);         // TryLock entries: deadline verbs
//   if (r) { ... use *r ... } else if (r.error() == svc::Errc::kTimeout) ...
//
// What sessions add over bare api::Guard:
//
//   * WaitPolicy injection: the session installs its policy into the
//     process context for its lifetime, so EVERY wait loop the caller
//     enters - inside any lock's Try section, the port-lease sweep, the
//     deadline retry loop - paces via that policy (platform/wait.hpp:
//     SpinPolicy, SpinYieldPolicy, ParkPolicy). Sessions sharing a
//     ParkPolicy wake each other's parked waiters on release.
//   * Telemetry: acquires, contended acquires (paused at least once),
//     wait cycles, timeouts, crash recoveries, releases - per session,
//     maintained with plain host-memory writes (never a shared-memory op,
//     so RMR accounting and the simulator are unaffected).
//   * Deadline verbs returning expected-style results (svc/result.hpp).
//   * Multi-key batch guards on batch-capable keyed tables (svc/batch.hpp).
//
// Lifetime: guards share ownership of the session's core state, so a
// guard remains valid - and still releases correctly - even if the
// Session object is destroyed while the guard is held (the core outlives
// it). The injected WaitPolicy is caller-owned and must outlive the
// session AND any guards it minted. Sessions on one Process handle nest
// LIFO (destruction restores the previously installed policy).
//
// Crash-consistent unwinding: like api::Guard, a session-minted guard
// skips release() when its scope unwinds exceptionally (a simulated crash
// step, sim::ProcessCrashed). The recovery protocol is unchanged: call
// session.acquire() (or session.recover()) again from the same identity.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "api/lock_concept.hpp"
#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "svc/result.hpp"
#include "util/assert.hpp"

namespace rme::svc {

// Per-session telemetry. Plain counters, written single-threaded (a
// session serves one caller by construction).
struct SessionStats {
  uint64_t acquires = 0;            // successful acquisitions (incl. batches)
  uint64_t contended_acquires = 0;  // acquisitions that paused >= 1 time
  uint64_t batch_acquires = 0;      // of which: multi-key batches
  uint64_t wait_cycles = 0;         // Waiter pauses spent in session verbs
  uint64_t timeouts = 0;            // deadline verbs that expired
  uint64_t crash_recoveries = 0;    // recover() replays via this session
  uint64_t releases = 0;            // guard releases (incl. batches)
};

namespace detail {

// The state a Session shares with every guard it mints. shared_ptr-owned
// so guards keep it (and the telemetry) alive past Session destruction.
template <class L>
struct SessionCore {
  using P = typename L::Platform;

  L* lock;
  platform::Process<P>* proc;
  int id;
  platform::WaitPolicy* policy;  // caller-owned; may be null
  SessionStats stats;

  SessionCore(L* l, platform::Process<P>* h, int i,
              platform::WaitPolicy* pol)
      : lock(l), proc(h), id(i), policy(pol) {}

  void note_acquire(uint64_t wait_cycles_before, bool batch = false) {
    ++stats.acquires;
    if (batch) ++stats.batch_acquires;
    const uint64_t waited = proc->ctx.wait_cycles - wait_cycles_before;
    stats.wait_cycles += waited;
    if (waited > 0) ++stats.contended_acquires;
  }

  void note_release() {
    ++stats.releases;
    if (policy != nullptr) policy->on_release();
  }
};

}  // namespace detail

// ---------------------------------------------------------------------------
// Guard: the session-minted RAII hold. One type serves plain and keyed
// entries (their release verbs have the same shape); keyed acquisitions
// additionally remember the shard. Move-only, returned by value from the
// session verbs - never constructed directly.
// ---------------------------------------------------------------------------
template <class L>
class Guard {
 public:
  Guard(Guard&& o) noexcept
      : core_(std::move(o.core_)),
        shard_(o.shard_),
        unwind_(o.unwind_),
        held_(o.held_) {
    o.held_ = false;
  }
  Guard& operator=(Guard&& o) noexcept(false) {
    if (this != &o) {
      release();
      core_ = std::move(o.core_);
      shard_ = o.shard_;
      unwind_ = o.unwind_;
      held_ = o.held_;
      o.held_ = false;
    }
    return *this;
  }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  // noexcept(false): release() is a crash point in the simulator; see
  // api/guard.hpp. The unwind check guarantees no throw-during-throw.
  ~Guard() noexcept(false) {
    if (!held_) return;
    if (std::uncaught_exceptions() > unwind_) return;  // crash unwind
    held_ = false;  // inert BEFORE Exit: a crash mid-Exit must not re-release
    do_release();
  }

  // Release before scope end. Idempotent: a second call (error paths,
  // crash-recovery retries) is a no-op.
  void release() {
    if (!held_) return;
    held_ = false;
    do_release();
  }

  bool held() const { return held_; }
  explicit operator bool() const { return held_; }
  int id() const { return core_->id; }
  // Keyed acquisitions: the shard the key mapped to; -1 otherwise.
  int shard() const { return shard_; }

 private:
  template <class>
  friend class Session;

  explicit Guard(std::shared_ptr<detail::SessionCore<L>> core,
                 int shard = -1)
      : core_(std::move(core)),
        shard_(shard),
        unwind_(std::uncaught_exceptions()) {}

  void do_release() {
    core_->lock->release(*core_->proc, core_->id);
    core_->note_release();
  }

  std::shared_ptr<detail::SessionCore<L>> core_;
  int shard_ = -1;
  int unwind_ = 0;
  bool held_ = true;
};

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------
template <class L>
class Session {
 public:
  using Platform = typename L::Platform;
  using Proc = platform::Process<Platform>;
  using Clock = std::chrono::steady_clock;

  static_assert(api::Lock<L> || api::KeyedLock<L>,
                "svc::Session requires an api::Lock or api::KeyedLock");

  // `policy` (optional) is installed into the process context for the
  // session's lifetime and drives every wait loop this caller enters.
  Session(L& lock, Proc& proc, int id,
          platform::WaitPolicy* policy = nullptr)
      : core_(std::make_shared<detail::SessionCore<L>>(&lock, &proc, id,
                                                       policy)),
        prev_policy_(proc.ctx.wait_policy) {
    if (policy != nullptr) proc.ctx.wait_policy = policy;
  }

  ~Session() { core_->proc->ctx.wait_policy = prev_policy_; }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- blocking acquisition ---

  Guard<L> acquire()
    requires api::Lock<L>
  {
    const uint64_t w0 = ctx().wait_cycles;
    core_->lock->acquire(*core_->proc, core_->id);
    core_->note_acquire(w0);
    return Guard<L>(core_);
  }

  // Keyed entries: acquire the shard guarding `key`.
  Guard<L> acquire(uint64_t key)
    requires api::KeyedLock<L>
  {
    const uint64_t w0 = ctx().wait_cycles;
    const int shard = core_->lock->acquire(*core_->proc, core_->id, key);
    core_->note_acquire(w0);
    return Guard<L>(core_, shard);
  }

  // --- bounded / deadline acquisition (TryLock-capable entries) ---

  Expected<Guard<L>> try_acquire()
    requires api::TryLock<L>
  {
    if (!core_->lock->try_acquire(*core_->proc, core_->id)) {
      return Errc::kWouldBlock;
    }
    core_->note_acquire(ctx().wait_cycles);
    return Guard<L>(core_);
  }

  // Bounded attempts paced by the wait policy until the deadline. The
  // deadline bounds the WAIT, not the hold: on success the guard is
  // yours as long as you keep it.
  Expected<Guard<L>> acquire_until(Clock::time_point deadline)
    requires api::TryLock<L>
  {
    const uint64_t w0 = ctx().wait_cycles;
    platform::Waiter wtr;
    for (;;) {
      if (core_->lock->try_acquire(*core_->proc, core_->id)) {
        core_->note_acquire(w0);
        return Guard<L>(core_);
      }
      if (Clock::now() >= deadline) {
        ++core_->stats.timeouts;
        core_->stats.wait_cycles += ctx().wait_cycles - w0;
        return Errc::kTimeout;
      }
      wtr.pause(ctx(), core_->lock);
    }
  }

  Expected<Guard<L>> acquire_for(std::chrono::nanoseconds timeout)
    requires api::TryLock<L>
  {
    return acquire_until(Clock::now() + timeout);
  }

  // --- recovery ---

  // Finish any super-passage this identity left interrupted (a full empty
  // passage when nothing was). The session-level recovery protocol after
  // a crash: call this, or simply acquire() again.
  void recover() {
    core_->lock->recover(*core_->proc, core_->id);
    ++core_->stats.crash_recoveries;
  }

  // --- introspection ---

  const SessionStats& stats() const { return core_->stats; }
  int id() const { return core_->id; }
  L& lock() { return *core_->lock; }
  platform::WaitPolicy* policy() const { return core_->policy; }

 private:
  friend struct SessionAccess;

  typename Platform::Context& ctx() { return core_->proc->ctx; }

  std::shared_ptr<detail::SessionCore<L>> core_;
  platform::WaitPolicy* prev_policy_;
};

// Internal hook for svc components that mint guards (svc/batch.hpp).
struct SessionAccess {
  template <class L>
  static std::shared_ptr<detail::SessionCore<L>> core(Session<L>& s) {
    return s.core_;
  }
};

// Open one session per pid 0..n-1 against `world` (anything exposing
// proc(pid) -> Process&, e.g. harness::World). The canonical fleet
// set-up of tests, benches and examples; `policy`, when given, is
// shared by every session (by design - see platform/wait.hpp).
template <class L, class WorldT>
std::vector<std::unique_ptr<Session<L>>> open_sessions(
    L& lock, WorldT& world, int n,
    platform::WaitPolicy* policy = nullptr) {
  std::vector<std::unique_ptr<Session<L>>> out;
  out.reserve(static_cast<size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    out.push_back(
        std::make_unique<Session<L>>(lock, world.proc(pid), pid, policy));
  }
  return out;
}

}  // namespace rme::svc

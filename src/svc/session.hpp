// rme::svc - the session-oriented service layer over the rme::api lock
// concept: the surface a traffic-serving system builds on.
//
// A Session binds one caller identity (pid/port/side, per the lock's
// Traits::addressing) to one lock and one Process handle, and is the sole
// entry point for acquisition. Acquisition is REQUEST-ORIENTED: every
// verb returns an expected-style result (svc/result.hpp) so the session
// can refuse work at admission time, and the asynchronous surface hands
// the caller a request object instead of holding them captive:
//
//   svc::Session s(lock, world.proc(pid), pid, &policy, &admission);
//
//   auto g = s.acquire();                // blocking; Expected<Guard>
//   if (!g) shed(g.error());             // Errc::kOverloaded: admission shed
//   ... critical section via *g ...
//
//   auto r = s.submit();                 // async: move-only AcquireRequest
//   if (r) {
//     r->on_complete([](auto& guard) { ... });
//     while (r->poll() == svc::RequestState::kPending) do_other_work();
//     auto g2 = r->take();               // or r->wait()/wait_until(d)
//   }
//
//   auto b = s.acquire_batch_for({k1, k2}, 5ms);  // deadline batches with
//   if (!b) handle(b.error());                    // sorted prefix backout
//
// What sessions add over bare api::Guard:
//
//   * WaitPolicy injection + fair handoff: the session installs its
//     policy into the process context for its lifetime, and pins the
//     WAIT SITE (the lock address) during each verb, so every pause the
//     verb reaches - inside any lock's Try section, the port-lease
//     sweep, the deadline retry loop - parks under the (policy, lock)
//     key. On release the session drives WaitPolicy::on_release(lock):
//     a parking policy grants exactly ONE waiter - the release's known
//     next-in-queue successor on a region FutexLot (the context's wake
//     hint, recorded by the CS signal's set), park order otherwise
//     (platform/park.hpp unpark_one) - and the grant count is booked as
//     SessionStats::handoff_rmrs, the wake-chain cost attribution of
//     Jayanti-Visweswara's generalized wake-up bounds (PAPERS.md).
//   * Admission control: an optional svc::Admission policy (default
//     estimator: WaitTrendAdmission, a two-timescale wait_cycles-trend
//     gate) runs before the lock is touched; rejection returns
//     Errc::kOverloaded and the queue never grows.
//   * Telemetry: acquires, contended acquires, wait cycles, submits,
//     sheds, cancels, handoff grants, timeouts, crash recoveries,
//     releases - per session, maintained with plain host-memory writes
//     (never a shared-memory op, so RMR accounting and the simulator are
//     unaffected).
//   * Deadline verbs (plain, keyed, and batch) and multi-key batch
//     guards on batch-capable keyed tables (svc/batch.hpp).
//
// Lifetime: guards share ownership of the session's core state, so a
// guard remains valid - and still releases correctly - even if the
// Session object is destroyed while the guard is held (the core outlives
// it). The injected WaitPolicy is caller-owned and must outlive the
// session AND any guards it minted; the Admission object likewise, and -
// unlike the policy - it must be PER SESSION (its estimators are fed
// from this session's verbs). Sessions on one Process handle nest LIFO
// (destruction restores the previously installed policy).
//
// Crash-consistent unwinding: like api::Guard, a session-minted guard
// skips release() when its scope unwinds exceptionally (a simulated crash
// step, sim::ProcessCrashed). The recovery protocol is unchanged: call
// session.acquire() (or session.recover()) again from the same identity.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "api/lock_concept.hpp"
#include "obs/metrics.hpp"
#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "svc/admission.hpp"
#include "svc/result.hpp"
#include "util/assert.hpp"

namespace rme::svc {

template <class L>
class AcquireRequest;  // svc/request.hpp

template <class L>
class BatchGuard;  // svc/batch.hpp

/// Per-session telemetry. Plain counters, written single-threaded (a
/// session serves one caller by construction).
struct SessionStats {
  uint64_t acquires = 0;            // successful acquisitions (incl. batches)
  uint64_t contended_acquires = 0;  // acquisitions that paused >= 1 time
  uint64_t batch_acquires = 0;      // of which: multi-key batches
  uint64_t wait_cycles = 0;         // Waiter pauses spent in session verbs
  uint64_t submits = 0;             // AcquireRequests minted by submit()
                                    // (a shed submit mints nothing and
                                    // counts only under `sheds`)
  uint64_t sheds = 0;               // verbs rejected by the Admission gate
  uint64_t cancels = 0;             // AcquireRequests cancelled while pending
  uint64_t handoff_rmrs = 0;        // waiters granted by this session's
                                    // releases (wake-chain attribution).
                                    // Fair-handoff contract: at most one
                                    // grant per released LOCK - so
                                    // <= releases for single-lock guards,
                                    // and <= shards-released per batch
                                    // release (each freed shard admits
                                    // one waiter)
  uint64_t timeouts = 0;            // deadline verbs that expired
  uint64_t crash_recoveries = 0;    // recover() replays via this session
  uint64_t releases = 0;            // guard releases (incl. batches)
};

namespace detail {

// Pins the context's wait site (the park-key half the releaser can
// address) for the duration of one session verb.
template <class Ctx>
using SiteScope = platform::WaitSiteScope<Ctx>;

// True when L can name a per-shard wake site (shard-granular locks like
// TableLock): releases then hand off under the SHARD's key, matching
// the per-shard parking the table's own wait loops use.
template <class L>
concept ShardSited = requires(L& l, int s) {
  { l.shard_wait_site(s) } -> std::convertible_to<const void*>;
};

// The state a Session shares with every guard it mints. shared_ptr-owned
// so guards keep it (and the telemetry) alive past Session destruction.
template <class L>
struct SessionCore {
  using P = typename L::Platform;

  L* lock;
  platform::Process<P>* proc;
  int id;
  platform::WaitPolicy* policy;  // caller-owned; may be null; shareable
  Admission* admission;          // caller-owned; may be null; PER SESSION
  SessionStats stats;

  SessionCore(L* l, platform::Process<P>* h, int i,
              platform::WaitPolicy* pol, Admission* adm)
      : lock(l), proc(h), id(i), policy(pol), admission(adm) {}

  // The park-key half a releaser can address: the lock itself.
  const void* site() const { return lock; }

  // This pid's region-resident telemetry row (obs/metrics.hpp), installed
  // by ShmWorld::proc under the slot-claim protocol; null on host-local
  // worlds and in the simulator. Every feed below is a plain store
  // (seqlock-bracketed, no RMW), so the paper's instruction accounting
  // and the counted platform are unaffected.
  obs::PidRow* row() const { return proc->ctx.metrics; }

  // Admission gate shared by every acquisition verb. Books the shed.
  bool admitted() {
    if (admission == nullptr || admission->admit()) return true;
    ++stats.sheds;
    if (auto* r = row()) r->add(obs::kSheds);
    admission->on_shed();
    return false;
  }

  // The admission gate is fed WALL-CLOCK wait cost (see svc/admission.hpp
  // for why iteration counts are blind to queueing collapse); the two
  // clock reads are paid only on gated sessions.
  static uint64_t now_ns() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  // Timestamp a verb's entry for the gate and the acquire-wait histogram;
  // 0 when neither a gate nor a telemetry row wants wall-clock cost.
  uint64_t gate_begin() const {
    return (admission != nullptr || proc->ctx.metrics != nullptr) ? now_ns()
                                                                  : 0;
  }

  // `carried_wait_cycles`: pauses spent in EARLIER verbs of the same
  // logical acquisition that already booked their own wait_cycles (an
  // AcquireRequest's timed-out waits) - they still make the acquisition
  // contended, but must not be booked twice.
  void note_acquire(uint64_t wait_cycles_before, uint64_t gate_t0,
                    bool batch = false, uint64_t carried_wait_cycles = 0,
                    int shard = -1) {
    ++stats.acquires;
    if (batch) ++stats.batch_acquires;
    const uint64_t waited = proc->ctx.wait_cycles - wait_cycles_before;
    stats.wait_cycles += waited;
    const bool contended = waited + carried_wait_cycles > 0;
    if (contended) ++stats.contended_acquires;
    if (policy != nullptr) {
      policy->observe(stats.acquires, stats.contended_acquires);
    }
    const uint64_t elapsed_ns = gate_t0 != 0 ? now_ns() - gate_t0 : 0;
    if (admission != nullptr) admission->on_acquired(elapsed_ns);
    if (auto* r = row()) r->on_acquire(contended, elapsed_ns, shard);
  }

  void note_timeout() {
    ++stats.timeouts;
    if (auto* r = row()) r->add(obs::kTimeouts);
  }

  // Targeted handoff: at most one waiter parked on the wake site's key
  // is granted; the count is the release's wake-chain cost. The ParkEnv
  // carries the context's lot (region FutexLot under an shm world) and
  // the wake hint the release's own CS signal just recorded - the
  // successor's spin cell, which the region lot resolves to the exact
  // next-in-queue pid's wait word (platform/park.hpp).
  void wake_at(const void* wake_site) {
    if (policy == nullptr) return;
    const size_t granted = policy->on_release(
        wake_site,
        platform::ParkEnv{proc->ctx.pid, proc->ctx.park_lot,
                          proc->ctx.wake_hint});
    stats.handoff_rmrs += granted;
    if (granted != 0) {
      if (auto* r = row()) r->add(obs::kHandoffRmrs, granted);
    }
  }

  void note_release_at(const void* wake_site) {
    ++stats.releases;
    if (auto* r = row()) r->add(obs::kReleases);
    wake_at(wake_site);
  }

  void note_release() { note_release_at(lock); }
};

}  // namespace detail

/// ---------------------------------------------------------------------------
/// Guard: the session-minted RAII hold. One type serves plain and keyed
/// entries (their release verbs have the same shape); keyed acquisitions
/// additionally remember the shard. Move-only, returned by value from the
/// session verbs - never constructed directly.
/// ---------------------------------------------------------------------------
template <class L>
class Guard {
 public:
  Guard(Guard&& o) noexcept
      : core_(std::move(o.core_)),
        shard_(o.shard_),
        unwind_(o.unwind_),
        held_(o.held_) {
    o.held_ = false;
  }
  Guard& operator=(Guard&& o) noexcept(false) {
    if (this != &o) {
      release();
      core_ = std::move(o.core_);
      shard_ = o.shard_;
      unwind_ = o.unwind_;
      held_ = o.held_;
      o.held_ = false;
    }
    return *this;
  }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  // noexcept(false): release() is a crash point in the simulator; see
  // api/guard.hpp. The unwind check guarantees no throw-during-throw.
  ~Guard() noexcept(false) {
    if (!held_) return;
    if (std::uncaught_exceptions() > unwind_) return;  // crash unwind
    held_ = false;  // inert BEFORE Exit: a crash mid-Exit must not re-release
    do_release();
  }

  // Release before scope end. Idempotent: a second call (error paths,
  // crash-recovery retries) is a no-op.
  void release() {
    if (!held_) return;
    held_ = false;
    do_release();
  }

  bool held() const { return held_; }
  explicit operator bool() const { return held_; }
  int id() const { return core_->id; }
  // Keyed acquisitions: the shard the key mapped to; -1 otherwise.
  int shard() const { return shard_; }

 private:
  template <class>
  friend class Session;
  template <class>
  friend class AcquireRequest;

  explicit Guard(std::shared_ptr<detail::SessionCore<L>> core,
                 int shard = -1)
      : core_(std::move(core)),
        shard_(shard),
        unwind_(std::uncaught_exceptions()) {}

  void do_release() {
    // A stale hint from an earlier verb must not outlive it: the release
    // below runs the lock's CS signal, whose set() re-records the hint
    // for THIS release's actual successor (signal/signal.hpp).
    core_->proc->ctx.wake_hint = nullptr;
    core_->lock->release(*core_->proc, core_->id);
    // Shard-granular locks hand off under the released SHARD's key, so
    // the woken waiter is one actually blocked on the freed shard.
    if constexpr (detail::ShardSited<L>) {
      if (shard_ >= 0) {
        core_->note_release_at(core_->lock->shard_wait_site(shard_));
        return;
      }
    }
    core_->note_release();
  }

  std::shared_ptr<detail::SessionCore<L>> core_;
  int shard_ = -1;
  int unwind_ = 0;
  bool held_ = true;
};

/// ---------------------------------------------------------------------------
/// Session
/// ---------------------------------------------------------------------------
template <class L>
class Session {
 public:
  using Platform = typename L::Platform;
  using Proc = platform::Process<Platform>;
  using Clock = std::chrono::steady_clock;

  static_assert(api::Lock<L> || api::KeyedLock<L>,
                "svc::Session requires an api::Lock or api::KeyedLock");

  // `policy` (optional) is installed into the process context for the
  // session's lifetime and drives every wait loop this caller enters.
  // `admission` (optional, per session) gates every acquisition verb.
  Session(L& lock, Proc& proc, int id,
          platform::WaitPolicy* policy = nullptr,
          Admission* admission = nullptr)
      : core_(std::make_shared<detail::SessionCore<L>>(&lock, &proc, id,
                                                       policy, admission)),
        prev_policy_(proc.ctx.wait_policy) {
    if (policy != nullptr) proc.ctx.wait_policy = policy;
  }

  ~Session() { core_->proc->ctx.wait_policy = prev_policy_; }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- blocking acquisition ---

  // Blocks until held, or sheds with Errc::kOverloaded at admission time
  // (only when an Admission policy is installed; plain sessions never
  // see the error arm).
  Expected<Guard<L>> acquire()
    requires api::Lock<L>
  {
    if (!core_->admitted()) return Errc::kOverloaded;
    const uint64_t w0 = ctx().wait_cycles;
    const uint64_t t0 = core_->gate_begin();
    detail::SiteScope site(ctx(), core_->site());
    core_->lock->acquire(*core_->proc, core_->id);
    core_->note_acquire(w0, t0);
    return Guard<L>(core_);
  }

  // Keyed entries: acquire the shard guarding `key`.
  Expected<Guard<L>> acquire(uint64_t key)
    requires api::KeyedLock<L>
  {
    if (!core_->admitted()) return Errc::kOverloaded;
    const uint64_t w0 = ctx().wait_cycles;
    const uint64_t t0 = core_->gate_begin();
    detail::SiteScope site(ctx(), core_->site());
    const int shard = core_->lock->acquire(*core_->proc, core_->id, key);
    core_->note_acquire(w0, t0, /*batch=*/false, 0, shard);
    return Guard<L>(core_, shard);
  }

  // --- asynchronous acquisition (TryLock-capable entries) ---

  // Mint a move-only AcquireRequest (svc/request.hpp): the caller drives
  // completion via poll()/wait()/wait_until() and may cancel() while
  // pending or attach an on_complete callback. Admission runs HERE -
  // a shed request never exists, so the queue never sees it.
  Expected<AcquireRequest<L>> submit()
    requires api::TryLock<L>;

  // Keyed entries: mint a request targeting the shard guarding `key`.
  // Same lifecycle as the plain form; the completed guard remembers its
  // shard, so release hands off under the shard's wake site. This is the
  // form a multiplexing front (lockd's reactor) drives: many pending
  // keyed requests, each polled from one event loop.
  Expected<AcquireRequest<L>> submit(uint64_t key)
    requires api::TryKeyedLock<L>;

  // --- bounded / deadline acquisition (TryLock-capable entries) ---

  Expected<Guard<L>> try_acquire()
    requires api::TryLock<L>
  {
    if (!core_->admitted()) return Errc::kOverloaded;
    const uint64_t t0 = core_->gate_begin();
    detail::SiteScope site(ctx(), core_->site());
    if (!core_->lock->try_acquire(*core_->proc, core_->id)) {
      return Errc::kWouldBlock;
    }
    core_->note_acquire(ctx().wait_cycles, t0);
    return Guard<L>(core_);
  }

  // Bounded attempts paced by the wait policy until the deadline. The
  // deadline bounds the WAIT, not the hold: on success the guard is
  // yours as long as you keep it.
  Expected<Guard<L>> acquire_until(Clock::time_point deadline)
    requires api::TryLock<L>
  {
    if (!core_->admitted()) return Errc::kOverloaded;
    const uint64_t w0 = ctx().wait_cycles;
    const uint64_t t0 = core_->gate_begin();
    detail::SiteScope site(ctx(), core_->site());
    platform::Waiter wtr;
    for (;;) {
      if (core_->lock->try_acquire(*core_->proc, core_->id)) {
        core_->note_acquire(w0, t0);
        return Guard<L>(core_);
      }
      if (Clock::now() >= deadline) {
        core_->note_timeout();
        core_->stats.wait_cycles += ctx().wait_cycles - w0;
        return Errc::kTimeout;
      }
      wtr.pause(ctx(), core_->lock);
    }
  }

  Expected<Guard<L>> acquire_for(std::chrono::nanoseconds timeout)
    requires api::TryLock<L>
  {
    return acquire_until(Clock::now() + timeout);
  }

  // Keyed bounded attempt: one sweep over the shard guarding `key`.
  Expected<Guard<L>> try_acquire(uint64_t key)
    requires api::TryKeyedLock<L>
  {
    if (!core_->admitted()) return Errc::kOverloaded;
    const uint64_t t0 = core_->gate_begin();
    detail::SiteScope site(ctx(), core_->site());
    const int shard = core_->lock->try_acquire(*core_->proc, core_->id, key);
    if (shard < 0) return Errc::kWouldBlock;
    core_->note_acquire(ctx().wait_cycles, t0, /*batch=*/false, 0, shard);
    return Guard<L>(core_, shard);
  }

  Expected<Guard<L>> acquire_until(uint64_t key, Clock::time_point deadline)
    requires api::TryKeyedLock<L>
  {
    if (!core_->admitted()) return Errc::kOverloaded;
    const uint64_t w0 = ctx().wait_cycles;
    const uint64_t t0 = core_->gate_begin();
    detail::SiteScope site(ctx(), core_->site());
    platform::Waiter wtr;
    for (;;) {
      const int shard = core_->lock->try_acquire(*core_->proc, core_->id, key);
      if (shard >= 0) {
        core_->note_acquire(w0, t0, /*batch=*/false, 0, shard);
        return Guard<L>(core_, shard);
      }
      if (Clock::now() >= deadline) {
        core_->note_timeout();
        core_->stats.wait_cycles += ctx().wait_cycles - w0;
        return Errc::kTimeout;
      }
      wtr.pause(ctx(), core_->lock);
    }
  }

  Expected<Guard<L>> acquire_for(uint64_t key, std::chrono::nanoseconds timeout)
    requires api::TryKeyedLock<L>
  {
    return acquire_until(key, Clock::now() + timeout);
  }

  // --- multi-key batches (svc/batch.hpp defines these) ---

  // Blocking batch acquisition of every shard guarding `keys`.
  Expected<BatchGuard<L>> acquire_batch(std::span<const uint64_t> keys)
    requires api::BatchKeyedLock<L>;

  // Deadline batches: per-shard bounded attempts in ascending shard
  // order; on expiry the held prefix is backed out (released in the
  // same sorted order) and Errc::kTimeout returned - no residue, crash
  // recovery unchanged (the persisted batch mask covers the backout).
  Expected<BatchGuard<L>> acquire_batch_until(std::span<const uint64_t> keys,
                                              Clock::time_point deadline)
    requires api::DeadlineBatchKeyedLock<L>;

  Expected<BatchGuard<L>> acquire_batch_for(std::span<const uint64_t> keys,
                                            std::chrono::nanoseconds timeout)
    requires api::DeadlineBatchKeyedLock<L>;

  // Brace-list conveniences for the batch verbs.
  Expected<BatchGuard<L>> acquire_batch(std::initializer_list<uint64_t> keys)
    requires api::BatchKeyedLock<L>
  {
    return acquire_batch(std::span<const uint64_t>(keys.begin(), keys.size()));
  }
  Expected<BatchGuard<L>> acquire_batch_until(
      std::initializer_list<uint64_t> keys, Clock::time_point deadline)
    requires api::DeadlineBatchKeyedLock<L>
  {
    return acquire_batch_until(
        std::span<const uint64_t>(keys.begin(), keys.size()), deadline);
  }
  Expected<BatchGuard<L>> acquire_batch_for(
      std::initializer_list<uint64_t> keys, std::chrono::nanoseconds timeout)
    requires api::DeadlineBatchKeyedLock<L>
  {
    return acquire_batch_for(
        std::span<const uint64_t>(keys.begin(), keys.size()), timeout);
  }

  // --- recovery ---

  // Finish any super-passage this identity left interrupted (a full empty
  // passage when nothing was). The session-level recovery protocol after
  // a crash: call this, or simply acquire() again.
  void recover() {
    detail::SiteScope site(ctx(), core_->site());
    core_->lock->recover(*core_->proc, core_->id);
    ++core_->stats.crash_recoveries;
    if (auto* r = core_->row()) r->add(obs::kCrashRecoveries);
  }

  // --- introspection ---

  const SessionStats& stats() const { return core_->stats; }
  int id() const { return core_->id; }
  L& lock() { return *core_->lock; }
  platform::WaitPolicy* policy() const { return core_->policy; }
  Admission* admission() const { return core_->admission; }

 private:
  friend struct SessionAccess;

  typename Platform::Context& ctx() { return core_->proc->ctx; }

  std::shared_ptr<detail::SessionCore<L>> core_;
  platform::WaitPolicy* prev_policy_;
};

/// Internal hook for svc components that mint guards (svc/batch.hpp,
/// svc/request.hpp).
struct SessionAccess {
  template <class L>
  static std::shared_ptr<detail::SessionCore<L>> core(Session<L>& s) {
    return s.core_;
  }
};

/// Open one session per pid 0..n-1 against `world` (anything exposing
/// proc(pid) -> Process&, e.g. harness::World). The canonical fleet
/// set-up of tests, benches and examples; `policy`, when given, is
/// shared by every session (by design - see platform/wait.hpp). Admission
/// objects are per-session state, so fleet admission is wired by the
/// caller (see bench/bench_svc.cpp for the pattern).
template <class L, class WorldT>
std::vector<std::unique_ptr<Session<L>>> open_sessions(
    L& lock, WorldT& world, int n,
    platform::WaitPolicy* policy = nullptr) {
  std::vector<std::unique_ptr<Session<L>>> out;
  out.reserve(static_cast<size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    out.push_back(
        std::make_unique<Session<L>>(lock, world.proc(pid), pid, policy));
  }
  return out;
}

}  // namespace rme::svc

// Quiescent-state-based reclamation (QSBR) pool for QNodes.
//
// The paper's Try section allocates a fresh QNode per passage (Figure 3,
// Line 11) and never frees it: memory grows without bound. A production
// library must recycle nodes, but a retired node X can still be referenced
//   (a) by its successor, which holds &X as mypred and is waiting on
//       X.CS_Signal,
//   (b) through Tail, if Tail still points at X: a later arrival can FAS
//       Tail and obtain &X as its predecessor,
//   (c) by a repairing process that read &X out of some Node[q].Pred.
//
// All three kinds of reference are acquired during a *passage* that was
// already active when the reference was obtained, with one exception: (b)
// can mint new references as long as Tail == &X. Once Tail moves off X it
// never returns to X (Tail only ever receives nodes of currently-active
// passages). This yields the reclamation rule:
//
//   X (retired at its owner's Exit) may be reused once
//     1. Tail != &X has been observed, and
//     2. every port has passed through a quiescent point (passage boundary)
//        *after* that observation.
//
// Ports announce quiescence by writing the current global epoch into their
// announce cell at passage begin and kIdle at passage end: O(1) shared ops
// per passage, preserving the lock's O(1) crash-free passage RMR bound (the
// constant grows by 3). Reclamation scans are amortised: they run only when
// a port's retired list exceeds a threshold, costing O(k) every Θ(k)
// passages. Strict verbatim-paper mode (Options::recycle = false) skips
// retirement entirely and always hands out fresh nodes.
//
// If grace never arrives (a peer crashed and never returned), the pool
// falls back to allocating fresh nodes, matching the paper's unbounded
// allocation in the worst case while staying bounded in the common case.
//
// Shm placement: every pool structure a peer can reach - the announce
// cells, the per-port free/retired lists, and the NODES themselves - is
// sized through nvm::Seq, so under an arena-backed Env (rme::shm) the
// whole pool lives in the region and fresh() bump-allocates nodes from
// the region's shared cursor (safe from any attached process). The
// per-port lists are fixed-capacity there: when a retired list fills
// because grace never arrives, the NEWLY retired node is simply dropped
// (leaked) - capacity decay, never reuse-before-grace. The pool deliberately
// keeps no Env reference (a creator-private address would be garbage in an
// attached process); only the Counted platform needs the Env at fresh()
// time, and counted worlds are never region-resident.
//
// Position independence: the pool itself lives in the region, so every
// pointer-shaped member is self-relative (shm/offptr.hpp) - the free and
// retired lists hold OffPtr<T>, the tail probe is an OffPtr to the
// structure's AtomicRef tail, and instead of snapshotting the Arena by
// value (whose base/cursor fields are absolute, creator-only addresses)
// the pool keeps OffPtrs to the arena's cursor word, base byte, and
// dynamic limit word, reconstructing a process-local Arena view at
// fresh() time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "nvm/seq.hpp"
#include "platform/platform.hpp"
#include "shm/offptr.hpp"
#include "util/assert.hpp"

namespace rme::nvm {

inline constexpr uint64_t kIdle = ~uint64_t{0};

// T must provide: attach(Env&, int owner_pid).
template <class T, class P>
class QsbrPool {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;

  // `tail` is consulted for rule 1 (may be null when the client structure
  // has no tail pointer; then rule 1 is skipped).
  QsbrPool(Env& env, int ports, bool recycle)
      : ports_(ports), recycle_(recycle) {
    const platform::Arena& a = env.arena;
    arena_valid_ = a.valid();
    if (arena_valid_) {
      arena_cursor_ = a.cursor;
      arena_base_ = a.base;
      arena_limit_ = a.limit;
      arena_limit_word_ = a.limit_word;
      arena_grow_ = a.grow;
    }
    if constexpr (P::kCounted) {
      env_ = &env;
      RME_ASSERT(!arena_valid_,
                 "QsbrPool: counted platforms are never region-resident");
    }
    epoch_.attach(env, rmr::kNoOwner);
    epoch_.init(1);
    per_port_.reset(env.arena, static_cast<size_t>(ports));
    const size_t cap = list_capacity();
    for (int p = 0; p < ports; ++p) {
      PerPort& pp = per(p);
      pp.announce.attach(env, p);
      pp.announce.init(kIdle);
      pp.free.reset(env.arena, cap);
      pp.retired.reset(env.arena, cap);
    }
  }

  // Observer the pool asks "is this node still the structure's tail?".
  // Set once at wiring time, before any acquire. The probe target is the
  // structure's self-relative tail cell, held through an OffPtr so the
  // link survives attach-anywhere remapping.
  void set_tail_probe(shm::AtomicRef<P, T>* tail) { tail_ = tail; }

  void on_passage_begin(Ctx& ctx, int port) {
    const uint64_t e = epoch_.load(ctx, std::memory_order_acquire);
    per(port).announce.store(ctx, e, std::memory_order_release);
  }

  void on_passage_end(Ctx& ctx, int port) {
    per(port).announce.store(ctx, kIdle, std::memory_order_release);
  }

  // Hand out a node. Prefers the port's free list; falls back to a fresh
  // allocation. The caller must reset the node's algorithmic fields.
  // The O(k) reclamation scan only runs once the retired list has Theta(k)
  // entries - never on every passage - preserving the lock's O(1)
  // amortised (O(k) worst-case, every Theta(k) passages) RMR bound.
  T* acquire(Ctx& ctx, int port) {
    PerPort& pp = per(port);
    if (pp.free_n > 0) return pp.free[--pp.free_n].get();
    if (pp.retired.size() >= reclaim_threshold()) {
      maybe_reclaim(ctx, port);
      if (pp.free_n > 0) return pp.free[--pp.free_n].get();
    }
    return fresh(port);
  }

  // Retire a node at the end of a passage.
  void retire(Ctx& ctx, int port, T* node) {
    if (!recycle_) return;  // verbatim-paper mode: leak (bounded by run)
    PerPort& pp = per(port);
    // A full retired list means grace has not arrived for a long time;
    // dropping the node leaks it (capacity decay) but never risks reuse.
    (void)pp.retired.push_back(Retired{node, 0});
    if (pp.retired.size() >= reclaim_threshold()) maybe_reclaim(ctx, port);
  }

  // --- statistics (tests / benches) ---
  uint64_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }
  uint64_t reclaimed(int port) const { return per_c(port).reclaimed; }
  size_t retired_count(int port) const { return per_c(port).retired.size(); }

 private:
  struct Retired {
    shm::OffPtr<T> node;
    uint64_t stamp;  // epoch at first Tail!=node observation; 0 = not yet
  };
  struct PerPort {
    typename P::template Atomic<uint64_t> announce;
    Seq<shm::OffPtr<T>> free;  // fixed-capacity stack, top at free_n
    size_t free_n = 0;
    BoundedDeque<Retired> retired;
    uint64_t reclaimed = 0;
  };

  PerPort& per(int p) { return per_port_[static_cast<size_t>(p)]; }
  const PerPort& per_c(int p) const { return per_port_[static_cast<size_t>(p)]; }

  size_t reclaim_threshold() const {
    return 2 * static_cast<size_t>(ports_) + 4;
  }
  // Fixed capacity of the per-port lists: several thresholds' worth, so
  // reclamation has headroom before the drop-on-full decay kicks in.
  size_t list_capacity() const { return 4 * reclaim_threshold(); }

  // Reassemble a process-local Arena view from the self-relative pieces
  // captured at construction. Cheap (five field writes) and valid at this
  // process's attach base.
  platform::Arena local_arena() const {
    platform::Arena a;
    a.cursor = arena_cursor_.get();
    a.base = arena_base_.get();
    a.limit = arena_limit_;
    a.limit_word = arena_limit_word_.get();
    a.grow = arena_grow_;
    return a;
  }

  T* fresh(int port) {
    if (arena_valid_) {
      // Region-resident pool: nodes come from the region's shared bump
      // cursor (atomic, any attached process may allocate). Real platform
      // only, where Atomic::attach is a no-op - nothing more to wire.
      platform::Arena a = local_arena();
      void* mem = a.allocate(sizeof(T), alignof(T));
      T* raw = ::new (mem) T();
      allocated_.fetch_add(1, std::memory_order_relaxed);
      return raw;
    }
    auto node = std::make_unique<T>();
    if constexpr (P::kCounted) {
      node->attach(*env_, port);
    } else {
      typename P::Env dummy{};  // Real attach() is stateless
      node->attach(dummy, port);
    }
    T* raw = node.get();
    {
      std::lock_guard<std::mutex> g(heap_mu_);  // heap arena shared across ports
      heap_nodes_.push_back(std::move(node));
    }
    allocated_.fetch_add(1, std::memory_order_relaxed);
    return raw;
  }

  // Amortised reclamation pass for `port`. Steps:
  //   1. bump the global epoch (so future announces can exceed past stamps),
  //   2. observe Tail, then read the epoch *after* that observation and
  //      stamp un-stamped retirees that are not the observed tail with it.
  //      Reading the stamp after the Tail observation is essential: any
  //      process that obtained a reference to the node via Tail did so
  //      before the observation, hence announced an epoch <= the stamp; the
  //      grace condition (min announce > stamp) therefore waits for it.
  //   3. compute the min announce over non-idle ports and free everything
  //      stamped strictly below it.
  void maybe_reclaim(Ctx& ctx, int port) {
    PerPort& pp = per(port);
    if (pp.retired.empty()) return;

    const uint64_t e = epoch_.load(ctx, std::memory_order_acquire);
    epoch_.store(ctx, e + 1, std::memory_order_release);

    T* tail_now =
        tail_ ? tail_->load(ctx, std::memory_order_acquire) : nullptr;
    const uint64_t stamp_epoch = epoch_.load(ctx, std::memory_order_acquire);
    for (size_t i = 0; i < pp.retired.size(); ++i) {
      Retired& r = pp.retired.at(i);
      if (r.stamp == 0 && r.node.get() != tail_now) r.stamp = stamp_epoch;
    }

    uint64_t min_announce = kIdle;
    for (int q = 0; q < ports_; ++q) {
      const uint64_t a = per(q).announce.load(ctx, std::memory_order_acquire);
      if (a != kIdle && a < min_announce) min_announce = a;
    }
    // A retiree stamped s is safe once every active port announced an epoch
    // > s (its current passage began after the stamping scan); idle ports
    // are quiescent by definition.
    while (!pp.retired.empty() && pp.free_n < pp.free.size()) {
      Retired& r = pp.retired.front();
      const bool safe = r.stamp != 0 &&
                        (min_announce == kIdle || min_announce > r.stamp);
      if (!safe) break;
      pp.free[pp.free_n++] = r.node;
      ++pp.reclaimed;
      pp.retired.pop_front();
    }
  }

  // Self-relative arena view (see header comment): links to the shared
  // cursor word, the region base byte, and the dynamic limit word, plus
  // the copy-safe scalar pieces.
  bool arena_valid_ = false;
  shm::OffPtr<std::atomic<uint64_t>> arena_cursor_;
  shm::OffPtr<char> arena_base_;
  uint64_t arena_limit_ = 0;
  shm::OffPtr<std::atomic<uint64_t>> arena_limit_word_;
  bool arena_grow_ = false;
  Env* env_ = nullptr;  // Counted only (attach needs the model)
  int ports_;
  bool recycle_;
  typename P::template Atomic<uint64_t> epoch_;
  shm::OffPtr<shm::AtomicRef<P, T>> tail_;
  Seq<PerPort> per_port_;
  // Heap-mode node ownership (arena mode: the region owns the nodes).
  // Never touched when arena_ is valid, so the region-resident instances
  // of these members stay inert.
  std::mutex heap_mu_;
  std::vector<std::unique_ptr<T>> heap_nodes_;
  std::atomic<uint64_t> allocated_{0};
};

}  // namespace rme::nvm

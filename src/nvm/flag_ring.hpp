// Go-flag rings: per-port pools of local-spin cells for the DSM Signal
// implementation (paper Figure 2, Line 5: "go <- new Boolean").
//
// The paper allocates a fresh boolean in the waiter's memory partition for
// every wait() call and never reclaims it. A real library must reuse these
// cells, which creates an ABA hazard: a laggard setter that still holds the
// address of an old flag could wake a *later* wait that recycled the cell.
//
// We close the hazard with tags instead of booleans: each wait attempt gets
// a fresh 64-bit tag (a per-slot monotone counter, persisted in NVM), the
// waiter spins until the cell holds *exactly its tag*, and set() writes the
// (slot, tag) pair it observed. A stale setter writes a stale tag, which no
// current waiter is waiting for, so stale wakes are ignored by construction.
// Tags never repeat on a slot, so the scheme is crash-safe: a waiter that
// crashes mid-wait simply takes a new slot+tag on re-execution.
//
// Cross-process placement: the slot array is the half of the ring OTHER
// processes write to (a setter stores the tag into the waiter's cell), so
// for shm worlds it must live in the region. attach() sizes the array
// through the Env's arena (nvm/seq.hpp); adopt() binds a ring handle to a
// PRE-EXISTING in-region slot array instead - the restart path. Adoption
// must never re-initialise the slots: the persisted next_tag counters are
// what keeps tags fresh across a process's death and restart (a restarted
// ring that restarted its tags at 1 could re-mint a tag a stale setter
// still holds, resurrecting exactly the ABA wake the tags exist to kill).
#pragma once

#include <cstdint>

#include "nvm/seq.hpp"
#include "platform/platform.hpp"
#include "util/assert.hpp"

namespace rme::nvm {

// One spin cell. Lives in the owning port's DSM partition, so spinning on
// it is local (0 RMR per iteration) on DSM, and cache-local on CC.
template <class P>
struct GoFlag {
  typename P::template Atomic<uint64_t> value;  // last tag written by a setter

  void attach(typename P::Env& env, int owner) { value.attach(env, owner); }
};

// A fixed ring of GoFlags plus per-slot tag counters for one port.
// Only the owning port's process ever calls begin_wait(), so the cursor and
// tag bumps are single-writer; both survive crashes (they are "NVM"), and
// even if they did not, tag freshness is the only property correctness
// needs, and it is monotone.
template <class P>
class FlagRing {
 public:
  using Ctx = typename P::Context;

  // One ring slot: the setter-visible cell plus its persisted tag counter.
  // Public so shm worlds can carve per-pid slot arrays out of a region and
  // hand them to adopt().
  struct Slot {
    GoFlag<P> flag;
    typename P::template Atomic<uint64_t> next_tag;
  };

  FlagRing() = default;

  // Create + initialise a fresh slot array (arena-aware via env.arena).
  void attach(typename P::Env& env, int owner_pid, size_t slots) {
    RME_ASSERT(slots_ == nullptr, "FlagRing: attach on a bound ring");
    owned_.reset(env.arena, slots);
    init_slots(owned_.data(), slots, env, owner_pid);
    slots_ = owned_.data();
    n_ = slots;
  }

  // Bind to an EXISTING slot array (a restarted process re-entering its
  // per-pid ring in a shm region). Never touches the slots: their tag
  // counters must continue, not restart. The fresh cursor is harmless -
  // the cursor is a rotation hint, tag freshness is per slot.
  void adopt(Slot* slots, size_t n) {
    RME_ASSERT(slots_ == nullptr, "FlagRing: adopt on a bound ring");
    RME_ASSERT(n >= 2, "FlagRing: need at least 2 slots");
    slots_ = slots;
    n_ = n;
    cursor_ = 0;
  }

  // Placement-initialise a raw slot array (the creator side of adopt()).
  static void init_slots(Slot* slots, size_t n, typename P::Env& env,
                         int owner_pid) {
    RME_ASSERT(n >= 2, "FlagRing: need at least 2 slots");
    for (size_t i = 0; i < n; ++i) {
      Slot& s = slots[i];
      s.flag.attach(env, owner_pid);
      s.next_tag.attach(env, owner_pid);
      s.next_tag.init(1);  // tag 0 is reserved as "never signalled"
    }
  }

  struct Wait {
    GoFlag<P>* flag = nullptr;
    uint64_t tag = 0;
  };

  // Claim a slot and a fresh tag for one wait() execution.
  Wait begin_wait(Ctx& ctx) {
    Slot& s = slots_[cursor_];
    cursor_ = (cursor_ + 1) % n_;
    // Single-writer bump; persists across crashes. If we crash between the
    // load and the store we may burn a tag value - tags are 64-bit, fine.
    const uint64_t tag = s.next_tag.load(ctx, std::memory_order_relaxed);
    s.next_tag.store(ctx, tag + 1, std::memory_order_relaxed);
    return Wait{&s.flag, tag};
  }

  size_t size() const { return n_; }
  Slot* slots_data() { return slots_; }

 private:
  Seq<Slot> owned_;      // only populated by attach(); adopt() borrows
  Slot* slots_ = nullptr;
  size_t n_ = 0;
  size_t cursor_ = 0;
};

}  // namespace rme::nvm

// Seq / BoundedDeque: fixed-capacity arrays that place their elements in
// a platform::Arena when one is installed in the Env, and on the heap
// otherwise.
//
// These replace std::vector/std::deque in every piece of SHARED lock
// state (rme_lock, port_lease, lock_table, flag rings, the QSBR pool).
// The reason is cross-process placement: a std::vector member of a
// region-resident object keeps its control block in the region but its
// DATA on the constructing process's private heap, so a second process
// that maps the region would chase a pointer into memory it does not
// have. Seq draws the element storage from the same arena the object
// itself lives in, and reaches it through a self-relative OffPtr
// (shm/offptr.hpp), so the whole structure is valid in every attached
// process at whatever base it mapped the region (the attach-anywhere
// contract, shm/region.hpp). Purely process-local state (the repair
// PathGraph, harness bookkeeping, bench buffers) keeps using
// std::vector.
//
// Lifetime contract: arena-backed storage is never freed and element
// destructors are not run for it - the region owns the memory, and the
// region's lifetime is the state's lifetime (a creator destroying its
// handle must not destroy state other processes still use). Heap-backed
// storage behaves like std::vector: destructors run, memory is freed.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

#include "platform/arena.hpp"
#include "shm/offptr.hpp"
#include "util/assert.hpp"

namespace rme::nvm {

// Fixed-size array of T, sized once via reset(). Not movable/copyable:
// elements routinely contain atomics, and the shared-state classes that
// embed a Seq size it exactly once in their constructor.
template <class T>
class Seq {
 public:
  Seq() = default;
  Seq(const Seq&) = delete;
  Seq& operator=(const Seq&) = delete;
  ~Seq() { destroy(); }

  // Size to n default-constructed elements. May only be called on an
  // empty Seq (construction-time sizing, not resizing).
  void reset(const platform::Arena& a, size_t n) {
    reset(a, n, [](void* mem, size_t) { ::new (mem) T(); });
  }

  // Size to n elements, constructing each via make(mem, index) - the
  // in-place escape hatch for element types without a default
  // constructor (e.g. the lock table's Shard).
  template <class Make>
  void reset(const platform::Arena& a, size_t n, Make&& make) {
    RME_ASSERT(!data_, "Seq::reset called twice");
    if (n == 0) return;
    if (a.valid()) {
      data_ = static_cast<T*>(
          const_cast<platform::Arena&>(a).allocate(n * sizeof(T), alignof(T)));
      owned_ = false;
    } else {
      data_ = static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{alignof(T)}));
      owned_ = true;
    }
    n_ = n;
    for (size_t i = 0; i < n; ++i) {
      make(static_cast<void*>(data_.get() + i), i);
    }
  }

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }

  T& operator[](size_t i) {
    RME_DCHECK(i < n_, "Seq: index out of range");
    return data_.get()[i];
  }
  const T& operator[](size_t i) const {
    RME_DCHECK(i < n_, "Seq: index out of range");
    return data_.get()[i];
  }

  T* begin() { return data_.get(); }
  T* end() { return data_.get() + n_; }
  const T* begin() const { return data_.get(); }
  const T* end() const { return data_.get() + n_; }

 private:
  void destroy() {
    if (!data_ || !owned_) return;  // arena memory: region-owned
    T* d = data_.get();
    for (size_t i = n_; i > 0; --i) d[i - 1].~T();
    ::operator delete(static_cast<void*>(d), std::align_val_t{alignof(T)});
  }

  // Self-relative so a Seq embedded in region state is readable from any
  // attach base.
  shm::OffPtr<T> data_;
  size_t n_ = 0;
  bool owned_ = false;
};

// Fixed-capacity FIFO ring over trivially-destructible T (the QSBR
// retired list). push_back on a full deque reports failure and drops the
// element - for the pool that means "permanently leak the node", which
// is the documented decay mode when grace never arrives.
template <class T>
class BoundedDeque {
 public:
  void reset(const platform::Arena& a, size_t capacity) {
    buf_.reset(a, capacity);
  }

  bool push_back(const T& v) {
    if (n_ == buf_.size()) return false;
    buf_[(head_ + n_) % buf_.size()] = v;
    ++n_;
    return true;
  }
  void pop_front() {
    RME_DCHECK(n_ > 0, "BoundedDeque: pop_front on empty");
    head_ = (head_ + 1) % buf_.size();
    --n_;
  }
  T& front() {
    RME_DCHECK(n_ > 0, "BoundedDeque: front on empty");
    return buf_[head_];
  }
  // Logical indexing (0 = front), for in-place scans over the queue.
  T& at(size_t i) {
    RME_DCHECK(i < n_, "BoundedDeque: index out of range");
    return buf_[(head_ + i) % buf_.size()];
  }

  size_t size() const { return n_; }
  size_t capacity() const { return buf_.size(); }
  bool empty() const { return n_ == 0; }

 private:
  Seq<T> buf_;
  size_t head_ = 0;
  size_t n_ = 0;
};

}  // namespace rme::nvm

// rme::lockd client library: the proxy session. Speaks lockd/proto.hpp
// to a live rme_lockd daemon over SOCK_SEQPACKET and exposes the svc
// verb surface - acquire / try_acquire / acquire_for / acquire_batch -
// returning svc::Expected<Guard>, so code written against svc::Session
// reads identically against the daemon (examples/lockd_clients.cpp runs
// the same client body either way). The process never attaches the
// region: every shard crossing rides the wire.
//
// Two usage modes:
//
//   * Blocking: each verb sends its frame and waits for the matching
//     reply (replies for OTHER requests arriving meanwhile are stashed,
//     so interleaving is safe).
//   * Poll-able: submit()/submit_for() return a request id immediately;
//     the caller pumps completions with try_take(id) (non-blocking) or
//     waits on fd()/event_fd() in its own event loop. event_fd() is the
//     eventfd the daemon kicks on every delivery - registered at hello
//     via SCM_RIGHTS when Options::use_eventfd is set.
//
// Failure model: a dead daemon (ECONNRESET, recv 0) marks the client
// disconnected; every in-flight and subsequent verb returns
// Errc::kCancelled rather than throwing - callers decide whether to
// reconnect() (the daemon restart story: its SessionLease takeovers have
// already replayed recovery by the time the socket reopens, so held
// grants from the previous incarnation are gone by design, not leaked).
// Guard::release() on a disconnected client is a silent no-op for the
// same reason.
//
// Single-threaded by contract, like svc::Session: one Client serves one
// caller thread.
#pragma once

#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/eventfd.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "lockd/proto.hpp"
#include "svc/result.hpp"
#include "util/assert.hpp"

namespace rme::lockd {

class Client;

/// Client-side RAII hold on a daemon grant. Move-only; releasing sends
/// kRelease and waits for the ack (no-op once disconnected). Single-key
/// grants report shard(); batch grants report shard() == -1 and the full
/// shard_mask().
class Guard {
 public:
  Guard(Guard&& o) noexcept
      : c_(o.c_), id_(o.id_), shard_(o.shard_), mask_(o.mask_),
        held_(o.held_) {
    o.held_ = false;
  }
  Guard& operator=(Guard&& o) noexcept {
    if (this != &o) {
      release();
      c_ = o.c_;
      id_ = o.id_;
      shard_ = o.shard_;
      mask_ = o.mask_;
      held_ = o.held_;
      o.held_ = false;
    }
    return *this;
  }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
  ~Guard() { release(); }

  inline void release();  // defined below Client

  /// Disarm without releasing: the caller takes over the grant id (the
  /// poll-able path pairs this with Client::release_async()).
  uint64_t detach() {
    held_ = false;
    return id_;
  }

  bool held() const { return held_; }
  explicit operator bool() const { return held_; }
  uint64_t grant_id() const { return id_; }
  int shard() const { return shard_; }
  uint64_t shard_mask() const { return mask_; }

 private:
  friend class Client;
  Guard(Client* c, uint64_t id, int shard, uint64_t mask)
      : c_(c), id_(id), shard_(shard), mask_(mask) {}

  Client* c_ = nullptr;
  uint64_t id_ = 0;
  int shard_ = -1;
  uint64_t mask_ = 0;
  bool held_ = true;
};

class Client {
 public:
  struct Options {
    std::string socket_path;
    bool use_eventfd = false;  // ask the daemon to kick event_fd() on
                               // every delivery (SCM_RIGHTS at hello)
  };

  /// Daemon counters, kStatsReply order (proto.hpp StatsIndex).
  struct DaemonStats {
    uint64_t v[kStatCount] = {};
    uint64_t conns() const { return v[kStatConns]; }
    uint64_t granted() const { return v[kStatGranted]; }
    uint64_t released() const { return v[kStatReleased]; }
    uint64_t sheds() const { return v[kStatSheds]; }
    uint64_t timeouts() const { return v[kStatTimeouts]; }
    uint64_t cancels() const { return v[kStatCancels]; }
    uint64_t disconnects() const { return v[kStatDisconnects]; }
    uint64_t pending() const { return v[kStatPending]; }
    uint64_t ids_free() const { return v[kStatIdsFree]; }
    uint64_t bad_frames() const { return v[kStatBadFrames]; }
    // Region-arena totals (obs::MetricsArena) over the identity pool.
    uint64_t arena_acquires() const { return v[kStatArenaAcquires]; }
    uint64_t arena_releases() const { return v[kStatArenaReleases]; }
    uint64_t arena_contended() const { return v[kStatArenaContended]; }
    uint64_t arena_handoffs() const { return v[kStatArenaHandoffs]; }
    uint64_t arena_timeouts() const { return v[kStatArenaTimeouts]; }
    uint64_t arena_recoveries() const { return v[kStatArenaRecoveries]; }
  };

  Client() = default;
  explicit Client(Options opt) { connect(std::move(opt)); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client() { close(); }

  /// Dial the daemon and complete the hello handshake. Returns false
  /// (leaving the client disconnected) when the daemon is unreachable.
  bool connect(Options opt) {
    close();
    opt_ = std::move(opt);
    if (opt_.socket_path.empty() ||
        opt_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    ::strncpy(sa.sun_path, opt_.socket_path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      close();
      return false;
    }
    connected_ = true;
    const uint64_t id = next_id_++;
    uint64_t flags = 0;
    if (opt_.use_eventfd) {
      efd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
      if (efd_ >= 0) flags |= kHelloFlagEventFd;
    }
    if (!send_hello(id, flags)) {
      close();
      return false;
    }
    auto f = wait_reply(id, 10000);
    if (!f || static_cast<Op>(f->hdr.op) != Op::kHelloOk) {
      close();
      return false;
    }
    shards_ = static_cast<int>(f->hdr.b);
    return true;
  }

  /// Re-dial after a daemon restart. Everything in flight is forgotten
  /// (the old incarnation's grants were recovered daemon-side).
  bool reconnect() { return connect(opt_); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    if (efd_ >= 0) ::close(efd_);
    fd_ = -1;
    efd_ = -1;
    connected_ = false;
    stash_.clear();
    discard_.clear();
  }

  bool connected() const { return connected_; }
  int shards() const { return shards_; }
  int fd() const { return fd_; }
  int event_fd() const { return efd_; }

  // --- blocking verbs (the svc::Session shapes) ------------------------

  svc::Expected<Guard> acquire(uint64_t key) {
    const uint64_t id = next_id_++;
    if (!send(make_frame(Op::kAcquire, id, key))) return svc::Errc::kCancelled;
    return finish(wait_reply(id, -1), /*batch=*/false);
  }

  svc::Expected<Guard> try_acquire(uint64_t key) {
    const uint64_t id = next_id_++;
    if (!send(make_frame(Op::kTryAcquire, id, key))) {
      return svc::Errc::kCancelled;
    }
    return finish(wait_reply(id, -1), /*batch=*/false);
  }

  svc::Expected<Guard> acquire_for(uint64_t key,
                                   std::chrono::nanoseconds timeout) {
    const uint64_t id = next_id_++;
    const uint64_t ns = static_cast<uint64_t>(timeout.count());
    if (!send(make_frame(Op::kAcquireFor, id, key, ns))) {
      return svc::Errc::kCancelled;
    }
    return finish(wait_reply(id, -1), /*batch=*/false);
  }

  svc::Expected<Guard> acquire_batch(std::span<const uint64_t> keys) {
    return batch_inner(keys, 0);
  }
  svc::Expected<Guard> acquire_batch(std::initializer_list<uint64_t> keys) {
    return batch_inner(std::span<const uint64_t>(keys.begin(), keys.size()),
                       0);
  }
  svc::Expected<Guard> acquire_batch_for(std::span<const uint64_t> keys,
                                         std::chrono::nanoseconds timeout) {
    return batch_inner(keys, static_cast<uint64_t>(timeout.count()));
  }
  svc::Expected<Guard> acquire_batch_for(std::initializer_list<uint64_t> keys,
                                         std::chrono::nanoseconds timeout) {
    return batch_inner(std::span<const uint64_t>(keys.begin(), keys.size()),
                       static_cast<uint64_t>(timeout.count()));
  }

  // --- poll-able surface ----------------------------------------------

  /// Fire an acquire and return its request id (0 = send failed). The
  /// completion is consumed with try_take()/take().
  uint64_t submit(uint64_t key) {
    const uint64_t id = next_id_++;
    if (!send(make_frame(Op::kAcquire, id, key))) return 0;
    return id;
  }

  uint64_t submit_for(uint64_t key, std::chrono::nanoseconds timeout) {
    const uint64_t id = next_id_++;
    if (!send(make_frame(Op::kAcquireFor, id, key,
                         static_cast<uint64_t>(timeout.count())))) {
      return 0;
    }
    return id;
  }

  /// Non-blocking: pump the socket, then pop the completion for `id` if
  /// it arrived. nullopt = still pending. (The poll-able surface is
  /// single-key; batches use the blocking verbs.)
  std::optional<svc::Expected<Guard>> try_take(uint64_t id) {
    pump();
    auto it = stash_.find(id);
    if (it == stash_.end()) {
      if (!connected_) return svc::Expected<Guard>(svc::Errc::kCancelled);
      return std::nullopt;
    }
    Frame f = it->second;
    stash_.erase(it);
    return finish(f, /*batch=*/false);
  }

  /// Blocking form of try_take.
  svc::Expected<Guard> take(uint64_t id) {
    return finish(wait_reply(id, -1), /*batch=*/false);
  }

  /// Cancel a pending request. True when the daemon confirmed the cancel
  /// (false: already granted / unknown / disconnected).
  bool cancel(uint64_t req_id) {
    const uint64_t id = next_id_++;
    if (!send(make_frame(Op::kCancel, id, req_id))) return false;
    auto f = wait_reply(id, 10000);
    return f && static_cast<Op>(f->hdr.op) == Op::kCancelled;
  }

  /// Fire-and-forget release by grant id (the poll-able path's release;
  /// Guard::release() is the blocking form). The ack is discarded on
  /// arrival.
  void release_async(uint64_t grant_id) {
    const uint64_t id = next_id_++;
    discard_.insert(id);
    send(make_frame(Op::kRelease, id, grant_id));
  }

  /// Drain event_fd() after a wakeup (poll-able callers).
  void drain_event_fd() {
    if (efd_ < 0) return;
    uint64_t tok = 0;
    [[maybe_unused]] ssize_t r = ::read(efd_, &tok, sizeof(tok));
  }

  // --- introspection ---------------------------------------------------

  svc::Expected<DaemonStats> stats() {
    const uint64_t id = next_id_++;
    if (!send(make_frame(Op::kStats, id))) return svc::Errc::kCancelled;
    auto f = wait_reply(id, 10000);
    if (!f || static_cast<Op>(f->hdr.op) != Op::kStatsReply) {
      return svc::Errc::kCancelled;
    }
    DaemonStats s;
    for (uint32_t i = 0; i < kStatCount && i < f->hdr.nkeys; ++i) {
      s.v[i] = f->keys[i];
    }
    return s;
  }

 private:
  friend class Guard;

  svc::Expected<Guard> batch_inner(std::span<const uint64_t> keys,
                                   uint64_t timeout_ns) {
    if (keys.empty() || keys.size() > kMaxBatchKeys) {
      return svc::Errc::kCancelled;
    }
    const uint64_t id = next_id_++;
    const Frame f = make_batch(id, keys.data(),
                               static_cast<uint16_t>(keys.size()), timeout_ns);
    if (!send(f)) return svc::Errc::kCancelled;
    return finish(wait_reply(id, -1), /*batch=*/true);
  }

  // Map a reply frame to the verb result.
  svc::Expected<Guard> finish(std::optional<Frame> f, bool batch) {
    if (!f) return svc::Errc::kCancelled;  // disconnected mid-wait
    const Op op = static_cast<Op>(f->hdr.op);
    if (op == Op::kGranted) {
      if (batch) {
        return Guard(this, f->hdr.a, /*shard=*/-1, /*mask=*/f->hdr.b);
      }
      const int shard = static_cast<int>(f->hdr.b);
      return Guard(this, f->hdr.a, shard, uint64_t{1} << shard);
    }
    if (op == Op::kError) {
      switch (static_cast<Err>(f->hdr.err)) {
        case Err::kOverloaded: return svc::Errc::kOverloaded;
        case Err::kWouldBlock: return svc::Errc::kWouldBlock;
        case Err::kBusy: return svc::Errc::kOverloaded;
        case Err::kTimeout: return svc::Errc::kTimeout;
        default: return svc::Errc::kCancelled;
      }
    }
    return svc::Errc::kCancelled;
  }

  // Blocking release used by Guard: waits for the ack so a sequential
  // caller observes release-before-next-grant ordering.
  void release_grant(uint64_t grant_id) {
    if (!connected_) return;  // daemon died: nothing is held anymore
    const uint64_t id = next_id_++;
    if (!send(make_frame(Op::kRelease, id, grant_id))) return;
    wait_reply(id, 10000);
  }

  bool send(const Frame& f) {
    if (!connected_) return false;
    if (::send(fd_, &f, f.size(), MSG_NOSIGNAL) < 0) {
      if (errno == EINTR) return send(f);
      connected_ = false;
      return false;
    }
    return true;
  }

  bool send_hello(uint64_t req_id, uint64_t flags) {
    Frame f = make_frame(Op::kHello, req_id, flags);
    if (efd_ < 0 || (flags & kHelloFlagEventFd) == 0) return send(f);
    // hello carries the eventfd as ancillary data.
    iovec iov{&f, f.size()};
    char cbuf[CMSG_SPACE(sizeof(int))] = {};
    msghdr mh{};
    mh.msg_iov = &iov;
    mh.msg_iovlen = 1;
    mh.msg_control = cbuf;
    mh.msg_controllen = sizeof(cbuf);
    cmsghdr* cm = CMSG_FIRSTHDR(&mh);
    cm->cmsg_level = SOL_SOCKET;
    cm->cmsg_type = SCM_RIGHTS;
    cm->cmsg_len = CMSG_LEN(sizeof(int));
    ::memcpy(CMSG_DATA(cm), &efd_, sizeof(int));
    if (::sendmsg(fd_, &mh, MSG_NOSIGNAL) < 0) {
      connected_ = false;
      return false;
    }
    return true;
  }

  // One frame off the socket. timeout_ms: 0 = non-blocking probe,
  // -1 = wait forever. nullopt on timeout or disconnect.
  std::optional<Frame> recv_frame(int timeout_ms) {
    if (!connected_) return std::nullopt;
    pollfd p{fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, timeout_ms);
    if (r <= 0) return std::nullopt;
    char buf[kMaxFrameBytes + 64];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      connected_ = false;
      return std::nullopt;
    }
    const Decoded d = decode(buf, static_cast<size_t>(n));
    if (!d.ok()) return std::nullopt;  // daemon never sends these; drop
    Frame f;
    f.hdr = d.hdr;
    for (uint16_t i = 0; i < d.hdr.nkeys; ++i) f.keys[i] = d.keys[i];
    if (static_cast<Op>(f.hdr.op) == Op::kShutdown) {
      connected_ = false;
      return std::nullopt;
    }
    return f;
  }

  void stash(Frame f) {
    if (discard_.erase(f.hdr.req_id) != 0) return;  // async-release ack
    stash_[f.hdr.req_id] = f;
  }

  // Drain everything available right now into the stash.
  void pump() {
    while (auto f = recv_frame(0)) stash(*f);
  }

  // Wait for the reply matching `req_id`, stashing interleaved replies.
  std::optional<Frame> wait_reply(uint64_t req_id, int timeout_ms) {
    const auto deadline =
        timeout_ms < 0 ? std::chrono::steady_clock::time_point::max()
                       : std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(timeout_ms);
    for (;;) {
      auto it = stash_.find(req_id);
      if (it != stash_.end()) {
        Frame f = it->second;
        stash_.erase(it);
        return f;
      }
      if (!connected_) return std::nullopt;
      int wait = -1;
      if (timeout_ms >= 0) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return std::nullopt;
        wait = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count()) +
               1;
      }
      auto f = recv_frame(wait);
      if (f) stash(*f);
    }
  }

  Options opt_;
  int fd_ = -1;
  int efd_ = -1;
  bool connected_ = false;
  int shards_ = 0;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, Frame> stash_;
  std::unordered_set<uint64_t> discard_;  // async-release ack ids
};

inline void Guard::release() {
  if (!held_) return;
  held_ = false;
  if (c_ != nullptr) c_->release_grant(id_);
}

}  // namespace rme::lockd

// rme::lockd reactor: the daemon's event loop. One OS thread owns a
// ShmWorld and a pool of claimed identities, accepts clients on a
// SOCK_SEQPACKET unix-domain socket, and multiplexes every client's
// acquisitions through the svc request lifecycle:
//
//   client frame -> admission gate -> pending queue -> identity bound ->
//   svc::Session::submit(key) -> AcquireRequest::poll() -> on_complete
//   enqueues the grant -> kGranted frame (+ eventfd kick) -> ... ->
//   kRelease frame -> guard released -> parked requests re-pumped.
//
// Why an identity pool: the region's pid registry has kMaxProcs logical
// pids, but the daemon serves thousands of connections. Client
// connections are NOT identities - the daemon multiplexes many
// connections over a small pool of SessionLease-claimed pids, one bound
// per in-flight acquisition or held grant. The pool size bounds lock-side
// concurrency; the pending queue (capped, admission-gated) absorbs the
// rest, which is exactly the shape the WaitTrendAdmission estimator
// wants: queue-wait wall time is its input signal.
//
// Crash semantics (exercised by tests/test_lockd.cpp):
//
//   * Client SIGKILL / disconnect: EPOLLHUP/recv==0 releases every grant
//     the connection holds and cancels its pending requests. No lease
//     outlives its connection.
//   * Daemon SIGKILL: the region persists (SIGKILL skips the unlinking
//     destructor). A restarted daemon ATTACHES the existing region and
//     its SessionLease claims perform verified takeover of the dead
//     incarnation's slots - replaying recovery for any identity that died
//     holding a shard, exactly the paper's super-passage completion. Zero
//     leaked leases by construction.
//
// Single-threaded by design: every structure below is reactor-private;
// stop() is the one cross-thread (and async-signal-safe) entry, a write
// to the wake eventfd.
#pragma once

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <deque>
#include <list>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "api/adapters.hpp"
#include "lockd/proto.hpp"
#include "obs/snapshot.hpp"
#include "shm/session.hpp"
#include "shm/world.hpp"
#include "svc/admission.hpp"
#include "svc/batch.hpp"
#include "svc/request.hpp"
#include "util/assert.hpp"

namespace rme::lockd {

/// The daemon's lock: the sharded recoverable table on the Real platform
/// (shm worlds are Real-only by definition).
using Table = api::TableLock<platform::Real>;

/// Fatal daemon-side setup/IO errors (socket path too long, bind failed,
/// a second live daemon owns the region's identity slots, ...).
struct LockdError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Options {
  std::string socket_path;      // UDS path (<= ~100 chars)
  std::string region;           // shm region name ("/rme_lockd_...")
  size_t region_bytes = 16u << 20;
  int shards = 8;               // table shards (creator only; <= 64)
  int identities = 8;           // registry slots claimed; bounds in-flight
                                // lock operations (1..kMaxProcs)
  size_t max_pending = 4096;    // pending-queue cap (kBusy beyond it)
  bool admission = true;        // WaitTrendAdmission in front of the queue
  svc::WaitTrendAdmission::Options admission_opt{};
};

/// Daemon-level counters (the kStats reply's source of truth). These are
/// REACTOR counters - per-identity svc::SessionStats underneath still
/// book their own acquires/releases/handoff_rmrs ledger.
struct ReactorStats {
  uint64_t granted = 0;
  uint64_t released = 0;
  uint64_t sheds = 0;
  uint64_t timeouts = 0;
  uint64_t cancels = 0;
  uint64_t disconnect_releases = 0;  // grants force-released on disconnect
  uint64_t bad_frames = 0;
  uint64_t accepted = 0;
};

class Reactor {
 public:
  using Clock = std::chrono::steady_clock;

  explicit Reactor(Options opt)
      : opt_(std::move(opt)), world_(open_world(opt_)) {
    RME_ASSERT(opt_.shards >= 1 && opt_.shards <= 64,
               "lockd: shards out of range");
    RME_ASSERT(opt_.identities >= 1 && opt_.identities <= shm::kMaxProcs,
               "lockd: identities out of range");
    if (world_.creator()) {
      table_ = &world_.create_root<Table>(world_.env, opt_.shards,
                                          /*ports_per_shard=*/shm::kMaxProcs,
                                          /*npids=*/shm::kMaxProcs);
    } else {
      // Restart path: the root (and its shard count) already exists; the
      // creator's geometry wins.
      table_ = &world_.root<Table>();
    }
    held_count_.assign(static_cast<size_t>(table_->shards()), 0);
    // Claim the identity pool. On a restart-after-SIGKILL these claims
    // are verified takeovers and SessionLease replays recovery for every
    // identity the dead incarnation held - the "zero leaked leases"
    // obligation is discharged here, before the socket even opens.
    for (int pid = 0; pid < opt_.identities; ++pid) {
      ids_.push_back(std::make_unique<shm::SessionLease<Table>>(
          world_, *table_, pid));
      free_ids_.push_back(pid);
    }
    if (opt_.admission) gate_.emplace(opt_.admission_opt);
    open_sockets();
  }

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  ~Reactor() {
    // Orderly teardown: drop grants (releasing shards), then connections,
    // then the identity pool (SessionLease frees the registry slots).
    for (auto& [fd, c] : conns_) {
      send_frame_now(c, make_frame(Op::kShutdown, 0));
      close_conn_fds(c);
    }
    conns_.clear();
    pendq_.clear();
    ids_.clear();
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (!opt_.socket_path.empty()) ::unlink(opt_.socket_path.c_str());
  }

  /// Serve until stop(). Equivalent to `while (step(1000)) {}`.
  void run() {
    while (step(1000)) {
    }
  }

  /// One event-loop turn: wait (bounded by `max_wait_ms` and the nearest
  /// pending deadline), drain IO, pump the pending queue. Returns false
  /// once stop() has been observed.
  bool step(int max_wait_ms) {
    if (stopped_) return false;
    epoll_event evs[64];
    const int n = ::epoll_wait(epoll_fd_, evs, 64, poll_timeout(max_wait_ms));
    for (int i = 0; i < n; ++i) {
      const int fd = evs[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t tok = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &tok, sizeof(tok));
        stopped_ = true;
      } else if (fd == listen_fd_) {
        accept_all();
      } else {
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // raced with a close this turn
        if (evs[i].events & EPOLLOUT) flush_outq(it->second);
        // Drain on HUP too: a closing client's final frames (releases,
        // goodbyes) are still queued in the socket and must be handled
        // before the recv==0 verdict marks the connection dead.
        if (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
          drain_conn(it->second);
        }
      }
    }
    pump_and_reap();
    return !stopped_;
  }

  /// Async-signal-safe stop request: one eventfd write.
  void stop() {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(wake_fd_, &one, sizeof(one));
  }

  const Options& options() const { return opt_; }
  const ReactorStats& stats() const { return stats_; }
  shm::ShmWorld& world() { return world_; }
  Table& table() { return *table_; }
  size_t connections() const { return conns_.size(); }
  size_t pending() const { return pendq_.size(); }
  const char* admission_name() const {
    return gate_ ? gate_->name() : "none";
  }

 private:
  // --- state -----------------------------------------------------------

  struct Grant {
    int ident = -1;            // identity-pool slot bound while held
    uint64_t shard_mask = 0;   // shards this grant holds (1 bit single-key)
    std::optional<svc::Guard<Table>> guard;       // single-key grants
    std::optional<svc::BatchGuard<Table>> batch;  // batch grants
  };

  struct Conn {
    int fd = -1;
    int efd = -1;  // client's eventfd (SCM_RIGHTS at hello), or -1
    bool hello = false;
    bool dead = false;
    std::unordered_map<uint64_t, Grant> grants;  // grant id -> hold
    std::unordered_set<uint64_t> pending;        // req ids in the queue
    std::deque<Frame> outq;                      // EAGAIN backlog
  };

  struct Pending {
    int conn_fd = -1;
    uint64_t req_id = 0;
    Op op = Op::kAcquire;
    uint64_t keys[kMaxBatchKeys] = {};
    uint16_t nkeys = 0;
    bool has_deadline = false;
    Clock::time_point deadline{};
    Clock::time_point enqueued{};
    int ident = -1;  // bound identity while in flight; -1 while parked
    std::optional<svc::AcquireRequest<Table>> req;  // live single-key submit
    bool completed = false;  // set by the request's on_complete callback
  };

  // --- setup -----------------------------------------------------------

  static shm::ShmWorld open_world(const Options& o) {
    RME_ASSERT(!o.region.empty(), "lockd: region name required");
    try {
      return shm::ShmWorld::create(o.region, o.region_bytes, shm::kMaxProcs);
    } catch (const shm::ShmError&) {
      // Exists already: a restart. Attach and take over below.
      return shm::ShmWorld::attach(o.region);
    }
  }

  void open_sockets() {
    if (opt_.socket_path.empty() ||
        opt_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw LockdError("lockd: bad socket path");
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_SEQPACKET | SOCK_NONBLOCK |
                                       SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) throw LockdError("lockd: socket() failed");
    // A SIGKILLed predecessor leaves a stale socket file; reclaim it.
    ::unlink(opt_.socket_path.c_str());
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    ::strncpy(sa.sun_path, opt_.socket_path.c_str(),
              sizeof(sa.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
        0) {
      throw LockdError("lockd: bind(" + opt_.socket_path + ") failed: " +
                       std::string(::strerror(errno)));
    }
    if (::listen(listen_fd_, 1024) != 0) {
      throw LockdError("lockd: listen() failed");
    }
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epoll_fd_ < 0 || wake_fd_ < 0) {
      throw LockdError("lockd: epoll/eventfd setup failed");
    }
    epoll_add(listen_fd_, EPOLLIN);
    epoll_add(wake_fd_, EPOLLIN);
  }

  void epoll_add(int fd, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }

  void epoll_mod(int fd, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }

  int poll_timeout(int max_wait_ms) const {
    // Anything actionable in the queue -> short tick (in-flight requests
    // are polled from pump, deadlines fire at ~ms granularity). A truly
    // idle daemon blocks for the caller's full budget.
    if (!pendq_.empty()) return 1;
    return max_wait_ms;
  }

  // --- accept / receive ------------------------------------------------

  void accept_all() {
    for (;;) {
      const int fd =
          ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN or transient
      Conn c;
      c.fd = fd;
      conns_.emplace(fd, std::move(c));
      epoll_add(fd, EPOLLIN);
      ++stats_.accepted;
    }
  }

  void drain_conn(Conn& c) {
    char buf[kMaxFrameBytes + 64];
    char cbuf[CMSG_SPACE(sizeof(int) * 4)];
    for (;;) {
      if (c.dead) return;
      iovec iov{buf, sizeof(buf)};
      msghdr mh{};
      mh.msg_iov = &iov;
      mh.msg_iovlen = 1;
      mh.msg_control = cbuf;
      mh.msg_controllen = sizeof(cbuf);
      const ssize_t n = ::recvmsg(c.fd, &mh, MSG_DONTWAIT | MSG_CMSG_CLOEXEC);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        c.dead = true;
        return;
      }
      if (n == 0) {  // orderly or SIGKILL'd client: same cleanup
        c.dead = true;
        return;
      }
      std::vector<int> fds;
      for (cmsghdr* cm = CMSG_FIRSTHDR(&mh); cm != nullptr;
           cm = CMSG_NXTHDR(&mh, cm)) {
        if (cm->cmsg_level == SOL_SOCKET && cm->cmsg_type == SCM_RIGHTS) {
          const size_t cnt = (cm->cmsg_len - CMSG_LEN(0)) / sizeof(int);
          const int* p = reinterpret_cast<const int*>(CMSG_DATA(cm));
          for (size_t i = 0; i < cnt; ++i) fds.push_back(p[i]);
        }
      }
      handle_frame(c, buf, static_cast<size_t>(n),
                   (mh.msg_flags & MSG_TRUNC) != 0, fds);
      // Any fd the frame handler did not adopt must not leak.
      for (int fd : fds) {
        if (fd >= 0) ::close(fd);
      }
    }
  }

  // --- frame dispatch --------------------------------------------------

  void handle_frame(Conn& c, const char* buf, size_t len, bool truncated,
                    std::vector<int>& fds) {
    const Decoded d = decode(buf, len, truncated);
    if (!d.ok()) {
      ++stats_.bad_frames;
      // Echo the req_id only when the header itself was trustworthy
      // (magic+version matched); a garbage header echoes id 0.
      const bool trusted = len >= sizeof(Header) && !truncated &&
                           d.hdr.magic == kProtoMagic &&
                           d.err != Err::kBadVersion;
      send_frame(c, make_error(trusted ? d.hdr.req_id : 0, d.err));
      return;
    }
    const Op op = static_cast<Op>(d.hdr.op);
    if (op == Op::kHello) {
      c.hello = true;
      if ((d.hdr.a & kHelloFlagEventFd) != 0 && !fds.empty()) {
        if (c.efd >= 0) ::close(c.efd);
        c.efd = fds[0];
        fds[0] = -1;  // adopted
      }
      send_frame(c, make_frame(Op::kHelloOk, d.hdr.req_id, kProtoVersion,
                               static_cast<uint64_t>(table_->shards())));
      return;
    }
    if (!c.hello) {
      send_frame(c, make_error(d.hdr.req_id, Err::kNoHello));
      return;
    }
    switch (op) {
      case Op::kAcquire:
      case Op::kAcquireFor:
      case Op::kBatch:
        enqueue_acquire(c, d);
        return;
      case Op::kTryAcquire:
        handle_try(c, d);
        return;
      case Op::kRelease:
        handle_release(c, d);
        return;
      case Op::kCancel:
        handle_cancel(c, d);
        return;
      case Op::kStats:
        handle_stats(c, d);
        return;
      case Op::kGoodbye:
        c.dead = true;
        return;
      default:  // daemon->client ops arriving inbound are direction errors
        send_frame(c, make_error(d.hdr.req_id, Err::kBadOp));
        return;
    }
  }

  bool dup_request(const Conn& c, uint64_t req_id) const {
    return c.pending.count(req_id) != 0 || c.grants.count(req_id) != 0;
  }

  void enqueue_acquire(Conn& c, const Decoded& d) {
    if (dup_request(c, d.hdr.req_id)) {
      send_frame(c, make_error(d.hdr.req_id, Err::kDupRequest));
      return;
    }
    if (stopped_) {
      send_frame(c, make_error(d.hdr.req_id, Err::kShuttingDown));
      return;
    }
    if (gate_ && !gate_->admit()) {
      gate_->on_shed();
      ++stats_.sheds;
      send_frame(c, make_error(d.hdr.req_id, Err::kOverloaded));
      return;
    }
    if (pendq_.size() >= opt_.max_pending) {
      send_frame(c, make_error(d.hdr.req_id, Err::kBusy));
      return;
    }
    Pending p;
    p.conn_fd = c.fd;
    p.req_id = d.hdr.req_id;
    p.op = static_cast<Op>(d.hdr.op);
    p.enqueued = Clock::now();
    if (p.op == Op::kBatch) {
      p.nkeys = d.hdr.nkeys;
      for (uint16_t i = 0; i < p.nkeys; ++i) p.keys[i] = d.keys[i];
      if (d.hdr.b != 0) {
        p.has_deadline = true;
        p.deadline = p.enqueued + std::chrono::nanoseconds(d.hdr.b);
      }
    } else {
      p.nkeys = 1;
      p.keys[0] = d.hdr.a;
      if (p.op == Op::kAcquireFor) {
        p.has_deadline = true;
        p.deadline = p.enqueued + std::chrono::nanoseconds(d.hdr.b);
      }
    }
    c.pending.insert(p.req_id);
    pendq_.push_back(std::move(p));
  }

  // try_acquire is answered synchronously: one bounded attempt right now,
  // never queued. A saturated identity pool reads as contention
  // (kWouldBlock) - the caller's retry story is the same either way.
  void handle_try(Conn& c, const Decoded& d) {
    if (dup_request(c, d.hdr.req_id)) {
      send_frame(c, make_error(d.hdr.req_id, Err::kDupRequest));
      return;
    }
    if (gate_ && !gate_->admit()) {
      gate_->on_shed();
      ++stats_.sheds;
      send_frame(c, make_error(d.hdr.req_id, Err::kOverloaded));
      return;
    }
    const int want = table_->shard_for_key(d.hdr.a);
    if (free_ids_.empty() || held_count_[static_cast<size_t>(want)] != 0) {
      send_frame(c, make_error(d.hdr.req_id, Err::kWouldBlock));
      return;
    }
    const int ident = free_ids_.back();
    free_ids_.pop_back();
    auto g = ids_[static_cast<size_t>(ident)]->session().try_acquire(d.hdr.a);
    if (!g) {
      free_ids_.push_back(ident);
      send_frame(c, make_error(d.hdr.req_id, Err::kWouldBlock));
      return;
    }
    const uint64_t shard = static_cast<uint64_t>(g->shard());
    Grant gr;
    gr.ident = ident;
    gr.shard_mask = uint64_t{1} << shard;
    gr.guard.emplace(std::move(*g));
    finish_grant(c, d.hdr.req_id, std::move(gr), shard, 0);
  }

  void handle_release(Conn& c, const Decoded& d) {
    auto it = c.grants.find(d.hdr.a);
    if (it == c.grants.end()) {
      send_frame(c, make_error(d.hdr.req_id, Err::kBadGrant));
      return;
    }
    drop_grant(it->second);
    c.grants.erase(it);
    ++stats_.released;
    send_frame(c, make_frame(Op::kReleased, d.hdr.req_id, d.hdr.a));
  }

  void handle_cancel(Conn& c, const Decoded& d) {
    const uint64_t target = d.hdr.a;
    if (c.pending.count(target) == 0) {
      send_frame(c, make_error(d.hdr.req_id, Err::kBadGrant));
      return;
    }
    for (auto it = pendq_.begin(); it != pendq_.end(); ++it) {
      if (it->conn_fd != c.fd || it->req_id != target) continue;
      abandon_pending(*it);
      pendq_.erase(it);
      break;
    }
    c.pending.erase(target);
    ++stats_.cancels;
    send_frame(c, make_frame(Op::kCancelled, d.hdr.req_id, target));
  }

  void handle_stats(Conn& c, const Decoded& d) {
    Frame f = make_frame(Op::kStatsReply, d.hdr.req_id);
    f.hdr.nkeys = kStatCount;
    f.keys[kStatConns] = conns_.size();
    f.keys[kStatGranted] = stats_.granted;
    f.keys[kStatReleased] = stats_.released;
    f.keys[kStatSheds] = stats_.sheds;
    f.keys[kStatTimeouts] = stats_.timeouts;
    f.keys[kStatCancels] = stats_.cancels;
    f.keys[kStatDisconnects] = stats_.disconnect_releases;
    f.keys[kStatPending] = pendq_.size();
    f.keys[kStatIdsFree] = free_ids_.size();
    f.keys[kStatBadFrames] = stats_.bad_frames;
    // The lock-side truth: region-arena totals across the identity pool,
    // sampled seqlock-consistently (obs/snapshot.hpp). Same numbers a
    // read-only regionctl dump of this region reports.
    const obs::Snapshot snap =
        obs::Snapshot::read(world_.metrics(), opt_.identities);
    f.keys[kStatArenaAcquires] = snap.total[obs::kAcquires];
    f.keys[kStatArenaReleases] = snap.total[obs::kReleases];
    f.keys[kStatArenaContended] = snap.total[obs::kContended];
    f.keys[kStatArenaHandoffs] = snap.total[obs::kHandoffRmrs];
    f.keys[kStatArenaTimeouts] = snap.total[obs::kTimeouts];
    f.keys[kStatArenaRecoveries] = snap.total[obs::kCrashRecoveries];
    send_frame(c, f);
  }

  // --- the pending-grant pump -----------------------------------------

  // Walk the queue in arrival order: expire deadlines, poll in-flight
  // requests, bind identities to parked requests whose shards are not
  // held by one of our own grants. Completions land on ready_ (via the
  // request's on_complete callback) and are drained into kGranted frames
  // at the end - the "pending-grant queue" of the design.
  void pump() {
    const auto now = Clock::now();
    for (auto it = pendq_.begin(); it != pendq_.end();) {
      Pending& p = *it;
      Conn* c = conn_of(p.conn_fd);
      if (c == nullptr || c->dead) {
        abandon_pending(p);
        if (c != nullptr) c->pending.erase(p.req_id);
        it = pendq_.erase(it);
        continue;
      }
      if (p.has_deadline && now >= p.deadline && !p.completed) {
        abandon_pending(p);
        c->pending.erase(p.req_id);
        ++stats_.timeouts;
        if (gate_) gate_->on_acquired(wait_ns(p.enqueued, now));
        send_frame(*c, make_error(p.req_id, Err::kTimeout));
        it = pendq_.erase(it);
        continue;
      }
      if (p.req.has_value() && !p.completed) {
        p.req->poll();  // completion fires on_complete -> ready_
      } else if (!p.req.has_value() && !p.completed) {
        attempt_parked(p);
      }
      ++it;
    }
    drain_ready();
  }

  // Bind an identity to a parked request and run one attempt. Single-key
  // requests become live svc::submit() request objects; batches use the
  // deadline-batch verb with an immediate deadline (sorted-prefix backout
  // on failure), re-attempted on later pumps.
  void attempt_parked(Pending& p) {
    if (free_ids_.empty()) return;
    uint64_t want = 0;
    for (uint16_t i = 0; i < p.nkeys; ++i) {
      want |= uint64_t{1} << table_->shard_for_key(p.keys[i]);
    }
    if ((want & held_mask()) != 0) return;  // parked behind our own grant
    const int ident = free_ids_.back();
    free_ids_.pop_back();
    auto& sess = ids_[static_cast<size_t>(ident)]->session();
    if (p.op == Op::kBatch) {
      auto b = sess.acquire_batch_until(
          std::span<const uint64_t>(p.keys, p.nkeys), Clock::now());
      if (!b) {
        free_ids_.push_back(ident);  // lost a race; stay parked
        return;
      }
      p.ident = ident;
      batch_ready_.emplace_back(&p, std::move(*b));
      p.completed = true;
      return;
    }
    auto r = sess.submit(p.keys[0]);
    RME_ASSERT(r.has_value(), "lockd: ungated session shed a submit");
    p.ident = ident;
    p.req.emplace(std::move(*r));
    Pending* self = &p;  // std::list: stable address
    p.req->on_complete([this, self](svc::Guard<Table>&) {
      self->completed = true;
      ready_.push_back(self);
    });
    p.req->poll();
  }

  void drain_ready() {
    for (Pending* p : ready_) {
      Conn* c = conn_of(p->conn_fd);
      auto g = p->req->take();
      RME_ASSERT(g.has_value(), "lockd: completed request had no guard");
      if (c == nullptr || c->dead) {
        // Owner vanished between completion and delivery: release.
        g->release();
        free_ids_.push_back(p->ident);
        ++stats_.disconnect_releases;
      } else {
        Grant gr;
        gr.ident = p->ident;
        gr.shard_mask = uint64_t{1} << g->shard();
        const uint64_t shard = static_cast<uint64_t>(g->shard());
        gr.guard.emplace(std::move(*g));
        c->pending.erase(p->req_id);
        if (gate_) {
          gate_->on_acquired(wait_ns(p->enqueued, Clock::now()));
        }
        finish_grant(*c, p->req_id, std::move(gr), shard, 0);
      }
      erase_pending(p);
    }
    ready_.clear();
    for (auto& [p, bg] : batch_ready_) {
      Conn* c = conn_of(p->conn_fd);
      if (c == nullptr || c->dead) {
        bg.release();
        free_ids_.push_back(p->ident);
        ++stats_.disconnect_releases;
      } else {
        const uint64_t mask = bg.shard_mask();
        Grant gr;
        gr.ident = p->ident;
        gr.shard_mask = mask;
        gr.batch.emplace(std::move(bg));
        c->pending.erase(p->req_id);
        if (gate_) {
          gate_->on_acquired(wait_ns(p->enqueued, Clock::now()));
        }
        finish_grant(*c, p->req_id, std::move(gr), ~uint64_t{0}, mask);
      }
      erase_pending(p);
    }
    batch_ready_.clear();
  }

  // Record the grant under the connection and deliver kGranted. `shard`
  // is the single-key shard index (~0 for batches, whose mask rides `b`).
  void finish_grant(Conn& c, uint64_t req_id, Grant gr, uint64_t shard,
                    uint64_t mask) {
    for (int s = 0; s < 64; ++s) {
      if (gr.shard_mask & (uint64_t{1} << s)) {
        ++held_count_[static_cast<size_t>(s)];
      }
    }
    c.grants.emplace(req_id, std::move(gr));
    ++stats_.granted;
    Frame f = make_frame(Op::kGranted, req_id, req_id, shard);
    if (mask != 0) f.hdr.b = mask;
    send_frame(c, f);
  }

  uint64_t held_mask() const {
    uint64_t m = 0;
    for (size_t s = 0; s < held_count_.size(); ++s) {
      if (held_count_[s] != 0) m |= uint64_t{1} << s;
    }
    return m;
  }

  static uint64_t wait_ns(Clock::time_point from, Clock::time_point to) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
  }

  // Release a held grant's shards and return its identity to the pool.
  void drop_grant(Grant& g) {
    if (g.guard.has_value()) g.guard->release();
    if (g.batch.has_value()) g.batch->release();
    for (int s = 0; s < 64; ++s) {
      if (g.shard_mask & (uint64_t{1} << s)) {
        RME_ASSERT(held_count_[static_cast<size_t>(s)] > 0,
                   "lockd: held-count underflow");
        --held_count_[static_cast<size_t>(s)];
      }
    }
    if (g.ident >= 0) free_ids_.push_back(g.ident);
    g.ident = -1;
    g.shard_mask = 0;
  }

  // Abandon a pending entry (cancel / timeout / owner died). A live
  // request is cancelled; a completed-but-undelivered one releases its
  // guard (it never reached the client, so nothing is held on its
  // behalf). The ready_ lists are purged of the dying entry.
  void abandon_pending(Pending& p) {
    if (p.completed) {
      if (p.req.has_value()) {
        auto g = p.req->take();
        if (g.has_value()) g->release();
      }
      for (auto it = batch_ready_.begin(); it != batch_ready_.end(); ++it) {
        if (it->first == &p) {
          it->second.release();
          batch_ready_.erase(it);
          break;
        }
      }
      for (auto it = ready_.begin(); it != ready_.end(); ++it) {
        if (*it == &p) {
          ready_.erase(it);
          break;
        }
      }
      if (p.ident >= 0) free_ids_.push_back(p.ident);
    } else if (p.req.has_value()) {
      p.req->cancel();
      p.req.reset();
      if (p.ident >= 0) free_ids_.push_back(p.ident);
    }
    p.ident = -1;
  }

  void erase_pending(Pending* p) {
    for (auto it = pendq_.begin(); it != pendq_.end(); ++it) {
      if (&*it == p) {
        pendq_.erase(it);
        return;
      }
    }
  }

  Conn* conn_of(int fd) {
    auto it = conns_.find(fd);
    return it == conns_.end() ? nullptr : &it->second;
  }

  // --- teardown of dead connections -----------------------------------

  void pump_and_reap() {
    for (;;) {
      pump();
      std::vector<int> dead;
      for (auto& [fd, c] : conns_) {
        if (c.dead) dead.push_back(fd);
      }
      if (dead.empty()) return;
      for (int fd : dead) reap_conn(fd);
      // Reaping released shards; parked requests may now be grantable.
    }
  }

  void reap_conn(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    Conn& c = it->second;
    // Client crash/disconnect: release every held grant...
    for (auto& [id, g] : c.grants) {
      drop_grant(g);
      ++stats_.disconnect_releases;
    }
    c.grants.clear();
    // ...and abandon every pending request (no replies: nobody listens).
    for (auto pit = pendq_.begin(); pit != pendq_.end();) {
      if (pit->conn_fd == fd) {
        abandon_pending(*pit);
        pit = pendq_.erase(pit);
      } else {
        ++pit;
      }
    }
    close_conn_fds(c);
    conns_.erase(it);
  }

  void close_conn_fds(Conn& c) {
    if (c.fd >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
      ::close(c.fd);
      c.fd = -1;
    }
    if (c.efd >= 0) {
      ::close(c.efd);
      c.efd = -1;
    }
  }

  // --- send path -------------------------------------------------------

  void send_frame(Conn& c, const Frame& f) {
    if (c.dead) return;
    if (!c.outq.empty()) {
      c.outq.push_back(f);
      return;
    }
    if (!send_frame_now(c, f)) {
      if (c.dead) return;
      c.outq.push_back(f);
      epoll_mod(c.fd, EPOLLIN | EPOLLOUT);
    }
    kick_eventfd(c);
  }

  // One non-blocking send. False on EAGAIN (caller queues); a hard error
  // marks the connection dead.
  bool send_frame_now(Conn& c, const Frame& f) {
    if (c.fd < 0) return true;
    const ssize_t n =
        ::send(c.fd, &f, f.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n >= 0) return true;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
    c.dead = true;
    return true;  // swallowed: reap will clean up
  }

  void flush_outq(Conn& c) {
    while (!c.outq.empty()) {
      if (!send_frame_now(c, c.outq.front())) return;
      if (c.dead) return;
      c.outq.pop_front();
    }
    epoll_mod(c.fd, EPOLLIN);
    kick_eventfd(c);
  }

  void kick_eventfd(Conn& c) {
    if (c.efd < 0) return;
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(c.efd, &one, sizeof(one));
    // EAGAIN = counter saturated = client already has a wakeup pending.
  }

  // --- members ---------------------------------------------------------

  Options opt_;
  shm::ShmWorld world_;
  Table* table_ = nullptr;
  std::vector<std::unique_ptr<shm::SessionLease<Table>>> ids_;
  std::vector<int> free_ids_;
  std::optional<svc::WaitTrendAdmission> gate_;
  std::vector<uint32_t> held_count_;  // per-shard grants outstanding

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool stopped_ = false;

  std::unordered_map<int, Conn> conns_;
  std::list<Pending> pendq_;  // arrival order; stable addresses
  std::vector<Pending*> ready_;
  // std::list: BatchGuard is move-constructible but not move-assignable,
  // so mid-sequence erasure must destroy nodes rather than shift them.
  std::list<std::pair<Pending*, svc::BatchGuard<Table>>> batch_ready_;
  ReactorStats stats_;
};

}  // namespace rme::lockd

// rme::lockd - the lock-service daemon layer: one server process owns
// the ShmWorld, thousands of client sessions reach it over a unix-domain
// socket. See docs/lockd.md for the wire protocol, connection lifecycle,
// crash semantics and admission behavior.
//
//   proto.hpp    versioned SOCK_SEQPACKET frames + strict decoder
//   reactor.hpp  the daemon: epoll loop, identity pool, pending-grant
//                queue over svc::submit(), WaitTrendAdmission front
//   client.hpp   the proxy session (blocking + poll-able verb surface)
//
// tools/rme_lockd.cpp is the binary; bench/bench_lockd.cpp the open-loop
// N-client latency bench; tests/test_lockd.cpp the decoder sweep and the
// client/daemon kill matrices.
#pragma once

#include "lockd/client.hpp"    // IWYU pragma: export
#include "lockd/proto.hpp"     // IWYU pragma: export
#include "lockd/reactor.hpp"   // IWYU pragma: export

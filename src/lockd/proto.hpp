// rme::lockd wire protocol: versioned framed verbs over SOCK_SEQPACKET.
//
// The daemon boundary is the first place where the algorithm's owner and
// its callers are different processes with NO shared mapping, so every
// verb of the svc surface crosses a serialization seam here. The protocol
// is deliberately tiny and fixed-layout:
//
//   * One frame == one SEQPACKET datagram. Every frame starts with the
//     40-byte Header; kBatch requests (and kStatsReply) append up to
//     kMaxBatchKeys u64 words. Nothing is variable-length beyond that.
//   * Frames carry a magic + version so a stray writer (or a truncating
//     kernel, MSG_TRUNC) is detected before any field is trusted.
//   * decode() is STRICT: every reject carries a typed Err; a malformed
//     frame can never reach the reactor's verb dispatch. test_lockd.cpp
//     sweeps the malformed space (truncations, bad magic/version/op,
//     oversized batch counts, length mismatches).
//
// Verb payload map (Header fields `a` / `b` / keys[]):
//
//   op            dir   a                  b            keys[]
//   ------------- ----  -----------------  -----------  -------------
//   kHello        c->d  flags (bit0:      -            -
//                       eventfd attached
//                       via SCM_RIGHTS)
//   kAcquire      c->d  key                -            -
//   kTryAcquire   c->d  key                -            -
//   kAcquireFor   c->d  key                timeout_ns   -
//   kBatch        c->d  -                  timeout_ns   nkeys keys
//                                          (0 = block)
//   kRelease      c->d  grant id           -            -
//   kCancel       c->d  req id to cancel   -            -
//   kStats        c->d  -                  -            -
//   kGoodbye      c->d  -                  -            -
//   kHelloOk      d->c  proto version      shards       -
//   kGranted      d->c  grant id (== the   shard        -
//                       granting req_id)   (batch: ~0)
//   kReleased     d->c  grant id           -            -
//   kCancelled    d->c  req id             -            -
//   kStatsReply   d->c  -                  -            nkeys counters
//                                                       (StatsIndex order)
//   kError        d->c  echo of offending  -            -
//                       a (when known)
//   kShutdown     d->c  -                  -            -
//
// Replies echo the request's req_id (kError uses req_id 0 when the frame
// was too mangled to recover one). Grant ids ARE the req_id that created
// the grant: the client already owns a unique id space per connection, so
// the daemon does not need a second one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace rme::lockd {

inline constexpr uint32_t kProtoMagic = 0x4c4b4431u;  // "LKD1"
inline constexpr uint16_t kProtoVersion = 1;
inline constexpr uint32_t kMaxBatchKeys = 16;

/// Frame verbs. Client->daemon ops are < 64; daemon->client replies >= 64.
enum class Op : uint16_t {
  kHello = 1,
  kAcquire = 2,
  kTryAcquire = 3,
  kAcquireFor = 4,
  kBatch = 5,
  kRelease = 6,
  kCancel = 7,
  kStats = 8,
  kGoodbye = 9,

  kHelloOk = 64,
  kGranted = 65,
  kReleased = 66,
  kCancelled = 67,
  kStatsReply = 68,
  kError = 69,
  kShutdown = 70,
};

constexpr bool known_op(uint16_t op) {
  return (op >= static_cast<uint16_t>(Op::kHello) &&
          op <= static_cast<uint16_t>(Op::kGoodbye)) ||
         (op >= static_cast<uint16_t>(Op::kHelloOk) &&
          op <= static_cast<uint16_t>(Op::kShutdown));
}

constexpr const char* to_string(Op op) {
  switch (op) {
    case Op::kHello: return "hello";
    case Op::kAcquire: return "acquire";
    case Op::kTryAcquire: return "try_acquire";
    case Op::kAcquireFor: return "acquire_for";
    case Op::kBatch: return "batch";
    case Op::kRelease: return "release";
    case Op::kCancel: return "cancel";
    case Op::kStats: return "stats";
    case Op::kGoodbye: return "goodbye";
    case Op::kHelloOk: return "hello_ok";
    case Op::kGranted: return "granted";
    case Op::kReleased: return "released";
    case Op::kCancelled: return "cancelled";
    case Op::kStatsReply: return "stats_reply";
    case Op::kError: return "error";
    case Op::kShutdown: return "shutdown";
  }
  return "?";
}

/// Typed protocol errors. Carried in Header::err of kError replies (and
/// as the decode() verdict); the daemon NEVER closes a connection for a
/// malformed frame - it replies kError and keeps serving, so one confused
/// client cannot take down its own healthy grants, let alone the daemon.
enum class Err : uint16_t {
  kNone = 0,
  kBadFrame = 1,      // truncated / length mismatch / bad magic
  kBadVersion = 2,    // version field != kProtoVersion
  kBadOp = 3,         // unknown or direction-invalid op
  kNoHello = 4,       // verb before the handshake
  kDupRequest = 5,    // req_id already in flight or granted here
  kBadGrant = 6,      // release/cancel names nothing live
  kOverloaded = 7,    // admission shed (maps svc::Errc::kOverloaded)
  kWouldBlock = 8,    // try_acquire found the shard held
  kTimeout = 9,       // deadline expired before grant
  kCancelled = 10,    // pending request cancelled
  kBusy = 11,         // daemon at capacity (pending-queue cap)
  kShuttingDown = 12, // daemon is draining; no new work
};

constexpr const char* to_string(Err e) {
  switch (e) {
    case Err::kNone: return "ok";
    case Err::kBadFrame: return "bad_frame";
    case Err::kBadVersion: return "bad_version";
    case Err::kBadOp: return "bad_op";
    case Err::kNoHello: return "no_hello";
    case Err::kDupRequest: return "dup_request";
    case Err::kBadGrant: return "bad_grant";
    case Err::kOverloaded: return "overloaded";
    case Err::kWouldBlock: return "would_block";
    case Err::kTimeout: return "timeout";
    case Err::kCancelled: return "cancelled";
    case Err::kBusy: return "busy";
    case Err::kShuttingDown: return "shutting_down";
  }
  return "?";
}

/// kHello `a` flags.
inline constexpr uint64_t kHelloFlagEventFd = 1u << 0;

/// Counter order of the kStatsReply keys[] payload.
enum StatsIndex : uint32_t {
  kStatConns = 0,        // connections currently open
  kStatGranted = 1,      // grants issued (lifetime)
  kStatReleased = 2,     // releases completed (lifetime)
  kStatSheds = 3,        // admission sheds (lifetime)
  kStatTimeouts = 4,     // deadline expiries (lifetime)
  kStatCancels = 5,      // cancels honoured (lifetime)
  kStatDisconnects = 6,  // grants force-released by client disconnect
  kStatPending = 7,      // requests pending right now
  kStatIdsFree = 8,      // free identity-pool slots right now
  kStatBadFrames = 9,    // frames rejected by the strict decoder (lifetime)
  // Region-resident obs::MetricsArena totals (src/obs/snapshot.hpp),
  // summed over every identity row of the daemon's region - the lock-side
  // truth underneath the reactor counters above, and the same numbers a
  // read-only `rme-regionctl dump` of the region reports.
  kStatArenaAcquires = 10,
  kStatArenaReleases = 11,
  kStatArenaContended = 12,
  kStatArenaHandoffs = 13,
  kStatArenaTimeouts = 14,
  kStatArenaRecoveries = 15,
  kStatCount = 16,
};
static_assert(kStatCount <= kMaxBatchKeys,
              "kStatsReply counters ride the keys[] payload");

/// Fixed-size frame header; every message starts with one.
struct Header {
  uint32_t magic = kProtoMagic;
  uint16_t version = kProtoVersion;
  uint16_t op = 0;
  uint64_t req_id = 0;  // client-chosen correlation id (echoed by replies)
  uint64_t a = 0;       // op-specific (see payload map above)
  uint64_t b = 0;       // op-specific
  uint16_t err = 0;     // replies: an Err value
  uint16_t nkeys = 0;   // trailing u64 words (kBatch keys / stats counters)
  uint32_t pad = 0;
};
static_assert(sizeof(Header) == 40, "lockd::Header layout is part of the ABI");

/// One whole frame, max-sized. size() is the bytes actually on the wire.
struct Frame {
  Header hdr;
  uint64_t keys[kMaxBatchKeys] = {};

  size_t size() const {
    return sizeof(Header) + static_cast<size_t>(hdr.nkeys) * sizeof(uint64_t);
  }
};
static_assert(sizeof(Frame) == sizeof(Header) + kMaxBatchKeys * 8);

inline constexpr size_t kMaxFrameBytes = sizeof(Frame);

/// Strict decode verdict: ok() iff the frame may reach verb dispatch.
struct Decoded {
  Err err = Err::kNone;
  Header hdr;                    // valid iff the header itself parsed
  const uint64_t* keys = nullptr;  // into the caller's buffer; hdr.nkeys long

  bool ok() const { return err == Err::kNone; }
};

/// Validate a received datagram. Rejection order: size, magic, version,
/// op, key-count plausibility, exact length. `truncated` is the kernel's
/// MSG_TRUNC verdict (the datagram was bigger than the recv buffer).
inline Decoded decode(const void* buf, size_t len, bool truncated = false) {
  Decoded d;
  if (truncated || len < sizeof(Header) || len > kMaxFrameBytes) {
    d.err = Err::kBadFrame;
    return d;
  }
  std::memcpy(&d.hdr, buf, sizeof(Header));
  if (d.hdr.magic != kProtoMagic) {
    d.err = Err::kBadFrame;
    return d;
  }
  if (d.hdr.version != kProtoVersion) {
    d.err = Err::kBadVersion;
    return d;
  }
  if (!known_op(d.hdr.op)) {
    d.err = Err::kBadOp;
    return d;
  }
  if (d.hdr.nkeys > kMaxBatchKeys) {
    d.err = Err::kBadFrame;  // oversized batch count
    return d;
  }
  const Op op = static_cast<Op>(d.hdr.op);
  if (op != Op::kBatch && op != Op::kStatsReply && d.hdr.nkeys != 0) {
    d.err = Err::kBadFrame;  // trailing words on a wordless verb
    return d;
  }
  if (op == Op::kBatch && d.hdr.nkeys == 0) {
    d.err = Err::kBadFrame;  // empty batch
    return d;
  }
  if (len != sizeof(Header) + static_cast<size_t>(d.hdr.nkeys) * 8) {
    d.err = Err::kBadFrame;  // declared vs actual length mismatch
    return d;
  }
  d.keys = reinterpret_cast<const uint64_t*>(
      static_cast<const char*>(buf) + sizeof(Header));
  return d;
}

// --- frame builders (both sides) ---

inline Frame make_frame(Op op, uint64_t req_id, uint64_t a = 0,
                        uint64_t b = 0) {
  Frame f;
  f.hdr.op = static_cast<uint16_t>(op);
  f.hdr.req_id = req_id;
  f.hdr.a = a;
  f.hdr.b = b;
  return f;
}

inline Frame make_batch(uint64_t req_id, const uint64_t* keys, uint16_t nkeys,
                        uint64_t timeout_ns) {
  Frame f = make_frame(Op::kBatch, req_id, 0, timeout_ns);
  f.hdr.nkeys = nkeys;
  for (uint16_t i = 0; i < nkeys && i < kMaxBatchKeys; ++i) {
    f.keys[i] = keys[i];
  }
  return f;
}

inline Frame make_error(uint64_t req_id, Err e, uint64_t a = 0) {
  Frame f = make_frame(Op::kError, req_id, a);
  f.hdr.err = static_cast<uint16_t>(e);
  return f;
}

}  // namespace rme::lockd

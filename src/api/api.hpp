// Umbrella header for the public rme::api surface:
//
//   lock_concept.hpp - canonical verbs, Traits, LockTraits, concepts
//   guard.hpp        - Guard / TryGuard / KeyGuard (crash-consistent RAII)
//   adapters.hpp     - adapters lifting every lock onto the concept
//   registry.hpp     - the named type-list registry + for_each_lock
//
// Typical use:
//
//   #include "api/api.hpp"
//
//   rme::harness::RealWorld world(n);
//   rme::api::LeasedLock<rme::platform::Real> lock(world.env, ports, n);
//   {
//     rme::api::Guard g(lock, world.proc(pid), pid);
//     ... critical section ...
//   }  // released on scope exit; crash unwinds leave the lock held for
//      // recovery (acquire again) - see guard.hpp
#pragma once

#include "api/adapters.hpp"    // IWYU pragma: export
#include "api/guard.hpp"       // IWYU pragma: export
#include "api/lock_concept.hpp"  // IWYU pragma: export
#include "api/registry.hpp"    // IWYU pragma: export

// Compile-time conformance of the registry, built as its own TU with
// -Wall -Wextra -Werror (see CMakeLists.txt): every entry must satisfy
// Lock or KeyedLock on BOTH platforms, registry names must be unique, and
// keyed addressing must line up with the KeyedLock concept. Runtime
// behaviour is covered by tests/test_api_conformance.cpp.
#include "api/api.hpp"

namespace {

using namespace rme;

constexpr bool str_eq(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    if (*a != *b) return false;
  }
  return *a == *b;
}

template <class... Ls>
constexpr bool all_conforming(api::TypeList<Ls...>) {
  return ((api::Lock<Ls> || api::KeyedLock<Ls>) && ...);
}

template <class... Ls>
constexpr bool keyed_trait_matches_concept(api::TypeList<Ls...>) {
  return ((api::KeyedLock<Ls> ==
           (api::lock_traits_v<Ls>.addressing == api::Addressing::kKeyed)) &&
          ...);
}

template <class... Ls>
constexpr bool names_unique(api::TypeList<Ls...>) {
  const char* names[] = {Ls::kName...};
  constexpr int n = static_cast<int>(sizeof...(Ls));
  for (int i = 0; i < n; ++i) {
    if (str_eq(names[i], "")) return false;
    for (int j = i + 1; j < n; ++j) {
      if (str_eq(names[i], names[j])) return false;
    }
  }
  return true;
}

template <class P>
constexpr bool check_platform() {
  static_assert(all_conforming(api::Registry<P>{}),
                "registry entry does not satisfy Lock/KeyedLock");
  static_assert(keyed_trait_matches_concept(api::Registry<P>{}),
                "keyed trait disagrees with KeyedLock concept");
  static_assert(names_unique(api::Registry<P>{}),
                "registry names must be unique and non-empty");
  static_assert(api::registry_size<P>() >= 8,
                "registry shrank below the conformance floor");
  // Spot-check capability refinements.
  static_assert(api::RecoverableLock<api::FlatLock<P>>);
  static_assert(api::RecoverableLock<rme::RecoverableMutex<P>>);
  static_assert(!api::RecoverableLock<api::McsBaseline<P>>);
  static_assert(api::TryLock<api::TasBaseline<P>>);
  static_assert(api::TryLock<api::McsBaseline<P>>);
  static_assert(!api::TryLock<api::FlatLock<P>>);
  static_assert(api::KeyedLock<api::TableLock<P>>);
  static_assert(api::TryKeyedLock<api::TableLock<P>>);
  static_assert(api::BatchKeyedLock<api::TableLock<P>>);
  static_assert(api::DeadlineBatchKeyedLock<api::TableLock<P>>);
  // Shm placement capability: the paper-derived locks are region-
  // placeable (their shared state is Seq-backed and arena-aware); the
  // std::vector-backed baselines are not and must not claim to be.
  static_assert(api::lock_traits_v<api::FlatLock<P>>.shm_placeable);
  static_assert(api::lock_traits_v<api::LeasedLock<P>>.shm_placeable);
  static_assert(api::lock_traits_v<api::TableLock<P>>.shm_placeable);
  static_assert(api::lock_traits_v<api::TournamentLock<P>>.shm_placeable);
  static_assert(!api::lock_traits_v<api::McsBaseline<P>>.shm_placeable);
  static_assert(!api::lock_traits_v<api::TicketBaseline<P>>.shm_placeable);
  static_assert(!api::lock_traits_v<rme::RecoverableMutex<P>>.shm_placeable);
  return true;
}

[[maybe_unused]] constexpr bool kRealOk = check_platform<platform::Real>();
[[maybe_unused]] constexpr bool kCountedOk =
    check_platform<platform::Counted>();

}  // namespace

// Thin adapters lifting every lock in the library onto the uniform
// rme::api surface (acquire/release/recover + LockTraits), without
// touching the underlying hot paths: each method is a single inlined
// forward to the implementation's lock()/unlock() (the paper's Try/Exit
// verbs - see lock_concept.hpp for the canonical-verb mapping).
//
// Uniform construction contract, relied on by the registry-driven
// conformance suite and benches:
//   L(env, nprocs)  - ready for ids 0..nprocs-1 (clamped to
//                     LockTraits<L>::value.max_processes when non-zero).
// Keyed adapters additionally expose the sharded constructor
//   L(env, shards, ports_per_shard, npids).
//
// recover(h, id) completes any super-passage `id` left interrupted and
// returns with the lock idle for `id`. For port/pid/leased locks that is
// exactly the paper's recovery protocol followed by Exit (acquire then
// release - an empty passage when nothing was interrupted); the keyed
// table has a native recover() that also clears its persisted shard
// intent. Non-recoverable baselines still expose recover() so the concept
// is uniform, but it is only meaningful crash-free.
//
// Most entries are instances of PortAdapter<...> (one shared forwarding
// body, parameterised by underlying type, registry name and traits);
// only the adapters with genuinely distinct surfaces - LeasedLock's
// recover, TableLock's keyed addressing, PairLock's 2-port assert - are
// hand-written.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "api/lock_concept.hpp"
#include "baselines/mcs.hpp"
#include "baselines/simple_locks.hpp"
#include "core/lock_table.hpp"
#include "core/port_lease.hpp"
#include "core/recoverable_mutex.hpp"
#include "core/rme_lock.hpp"
#include "rlock/peterson_rw.hpp"
#include "rlock/r2lock.hpp"
#include "rlock/tournament.hpp"

namespace rme::api {

/// Structural string so a registry name can be a template parameter.
template <size_t N>
struct FixedName {
  char s[N] = {};
  constexpr FixedName(const char (&str)[N]) {
    for (size_t i = 0; i < N; ++i) s[i] = str[i];
  }
};

/// ---------------------------------------------------------------------------
/// PortAdapter: the shared adapter body for every lock whose surface is
/// plain lock(h, id)/unlock(h, id). try_acquire is exposed iff the
/// underlying lock offers try_lock.
/// ---------------------------------------------------------------------------
template <class P, class U, FixedName kN, Traits kT>
class PortAdapter {
 public:
  using Platform = P;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;
  using Underlying = U;

  static constexpr const char* kName = kN.s;
  static constexpr Traits kTraits = kT;

  PortAdapter(Env& env, int nprocs)
    requires std::constructible_from<U, Env&, int>
      : impl_(env, nprocs) {}
  PortAdapter(Env& env, int /*nprocs*/)
    requires(!std::constructible_from<U, Env&, int> &&
             std::constructible_from<U, Env&>)
      : impl_(env) {}

  void acquire(Proc& h, int id) { impl_.lock(h, id); }
  void release(Proc& h, int id) { impl_.unlock(h, id); }
  // Recoverable locks: Try section = recovery code (wait-free CSR), so
  // an interrupted super-passage is finished by an acquire/release pair.
  void recover(Proc& h, int id) {
    impl_.lock(h, id);
    impl_.unlock(h, id);
  }
  bool try_acquire(Proc& h, int id)
    requires requires(U& u, Proc& hh, int ii) {
      { u.try_lock(hh, ii) } -> std::same_as<bool>;
    }
  {
    return impl_.try_lock(h, id);
  }

  Underlying& underlying() { return impl_; }

 private:
  Underlying impl_;
};

/// Paper core: the k-ported RmeLock (Theorem 2). Port-addressed: the
/// caller owns port assignment per the paper's Section 3 contract.
template <class P>
using FlatLock = PortAdapter<P, core::RmeLock<P>, "rme_flat",
                             Traits{Addressing::kPort, /*recoverable=*/true,
                                    Rmw::kFasOnly, /*max_processes=*/0,
                                    /*shm_placeable=*/true}>;

/// Repair-serialising recoverable locks (the paper's pluggable RLock):
/// tournament of Signal-based R2Locks (default) and the read/write
/// Peterson ablation.
template <class P>
using TournamentLock =
    PortAdapter<P, rlock::TournamentRLock<P>, "rlock_tournament",
                Traits{Addressing::kPort, /*recoverable=*/true, Rmw::kNone,
                       /*max_processes=*/0, /*shm_placeable=*/true}>;

/// The read/write Peterson ablation of the tournament RLock
/// (Golab-Ramaraju-style: O(1) RMR on CC, unbounded on DSM).
template <class P>
using PetersonTournamentLock =
    PortAdapter<P, rlock::TournamentRLock<P, rlock::PetersonR2<P>>,
                "rlock_peterson",
                Traits{Addressing::kPort, /*recoverable=*/true, Rmw::kNone,
                       /*max_processes=*/0, /*shm_placeable=*/true}>;

/// Non-recoverable baselines (RMR/throughput anchors).
template <class P>
using McsBaseline =
    PortAdapter<P, baselines::McsLock<P>, "mcs",
                Traits{Addressing::kPort, /*recoverable=*/false, Rmw::kCas,
                       /*max_processes=*/0}>;

template <class P>
using TasBaseline =
    PortAdapter<P, baselines::TasLock<P>, "tas",
                Traits{Addressing::kPort, /*recoverable=*/false,
                       Rmw::kFasOnly, /*max_processes=*/0}>;

template <class P>
using TtasBaseline =
    PortAdapter<P, baselines::TtasLock<P>, "ttas",
                Traits{Addressing::kPort, /*recoverable=*/false,
                       Rmw::kFasOnly, /*max_processes=*/0}>;

template <class P>
using TicketBaseline =
    PortAdapter<P, baselines::TicketLock<P>, "ticket",
                Traits{Addressing::kPort, /*recoverable=*/false, Rmw::kFai,
                       /*max_processes=*/0}>;

template <class P>
using ClhBaseline =
    PortAdapter<P, baselines::ClhLock<P>, "clh",
                Traits{Addressing::kPort, /*recoverable=*/false,
                       Rmw::kFasOnly, /*max_processes=*/0}>;

/// ---------------------------------------------------------------------------
/// Leased: RmeLock behind the FAS-only PortLease pool. Pid-addressed; the
/// persisted lease word re-binds a recovering pid to the port of its
/// interrupted super-passage. Hand-written for its recover(): an idle pid
/// must not run a full passage, and a pid that crashed inside the claim
/// window (no lease persisted) must still be declared quiescent so the
/// leaked port stays scavengeable.
/// ---------------------------------------------------------------------------
template <class P>
class LeasedLock {
 public:
  using Platform = P;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;
  using Underlying = core::RecoverableMutexFacade<P>;

  static constexpr const char* kName = "rme_leased";
  static constexpr Traits kTraits{Addressing::kLeased, /*recoverable=*/true,
                                  Rmw::kFasOnly, /*max_processes=*/0,
                                  /*shm_placeable=*/true};

  LeasedLock(Env& env, int nprocs) : impl_(env, nprocs, nprocs) {}
  LeasedLock(Env& env, int ports, int npids) : impl_(env, ports, npids) {}

  void acquire(Proc& h, int pid) { impl_.lock(h, pid); }
  void release(Proc& h, int pid) { impl_.unlock(h, pid); }
  void recover(Proc& h, int pid) {
    if (impl_.lease().held(h.ctx, pid) == core::kNoLease) {
      // No persisted lease: either truly idle, or the crash hit inside
      // the claim window (port leaked, lease never written). Declare the
      // pid quiescent so the leak stays scavengeable.
      impl_.lease().quiesce(h.ctx, pid);
      return;
    }
    impl_.lock(h, pid);
    impl_.unlock(h, pid);
  }

  Underlying& underlying() { return impl_; }

 private:
  Underlying impl_;
};

/// ---------------------------------------------------------------------------
/// Keyed: the sharded RecoverableLockTable. acquire(h, pid, key) locks the
/// shard guarding `key` and returns the shard index; recover() is native
/// (finishes a stale super-passage and clears the persisted shard intent).
/// ---------------------------------------------------------------------------
template <class P>
class TableLock {
 public:
  using Platform = P;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;
  using Underlying = core::RecoverableLockTable<P>;

  static constexpr const char* kName = "rme_keyed";
  static constexpr Traits kTraits{Addressing::kKeyed, /*recoverable=*/true,
                                  Rmw::kFasOnly, /*max_processes=*/0,
                                  /*shm_placeable=*/true};

  TableLock(Env& env, int nprocs)
      : impl_(env, /*shards=*/4, /*ports_per_shard=*/nprocs, nprocs) {}
  TableLock(Env& env, int shards, int ports_per_shard, int npids)
      : impl_(env, shards, ports_per_shard, npids) {}

  int acquire(Proc& h, int pid, uint64_t key) {
    return impl_.lock(h, pid, key);
  }
  void release(Proc& h, int pid) { impl_.unlock(h, pid); }
  void recover(Proc& h, int pid) { impl_.recover(h, pid); }

  // Bounded single attempt (api::TryKeyedLock): the shard index on
  // success, negative when the shard is busy or its pool exhausted.
  int try_acquire(Proc& h, int pid, uint64_t key) {
    return impl_.try_lock(h, pid, key);
  }

  // Multi-key batches (api::BatchKeyedLock): hold every shard guarding
  // `keys` at once; sorted two-phase locking underneath, crash recovery
  // replays partial batches (core/lock_table.hpp).
  uint64_t acquire_batch(Proc& h, int pid, const uint64_t* keys,
                         size_t nkeys) {
    return impl_.lock_batch(h, pid, keys, nkeys);
  }
  void release_batch(Proc& h, int pid) { impl_.unlock_batch(h, pid); }

  // Deadline batches (api::DeadlineBatchKeyedLock): bounded per-shard
  // attempts until `expired`; 0 after sorted prefix backout.
  uint64_t acquire_batch_until(Proc& h, int pid, const uint64_t* keys,
                               size_t nkeys,
                               const std::function<bool()>& expired) {
    return impl_.lock_batch_until(h, pid, keys, nkeys, expired);
  }

  int shards() const { return impl_.shards(); }
  int shard_for_key(uint64_t key) const { return impl_.shard_for_key(key); }
  // Per-shard wake site for the fair-handoff protocol: the table's wait
  // loops park under the shard lock's address (core/lock_table.hpp pins
  // it), so a release must hand off under the same key.
  const void* shard_wait_site(int shard) { return &impl_.shard_lock(shard); }
  Underlying& underlying() { return impl_; }

 private:
  Underlying impl_;
};

/// ---------------------------------------------------------------------------
/// The bare 2-ported R2Lock. Hand-written for its construction shape
/// (default-construct + attach) and the max-2-ports assert.
/// ---------------------------------------------------------------------------
template <class P>
class PairLock {
 public:
  using Platform = P;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;
  using Underlying = rlock::R2Lock<P>;

  static constexpr const char* kName = "rlock_r2";
  static constexpr Traits kTraits{Addressing::kPort, /*recoverable=*/true,
                                  Rmw::kNone, /*max_processes=*/2,
                                  /*shm_placeable=*/true};

  PairLock(Env& env, int nprocs) {
    RME_ASSERT(nprocs >= 1 && nprocs <= 2, "PairLock: R2Lock has 2 ports");
    impl_.attach(env);
  }

  void acquire(Proc& h, int side) { impl_.lock(h, side); }
  void release(Proc& h, int side) { impl_.unlock(h, side); }
  void recover(Proc& h, int side) {
    impl_.lock(h, side);
    impl_.unlock(h, side);
  }

  Underlying& underlying() { return impl_; }

 private:
  Underlying impl_;
};

}  // namespace rme::api

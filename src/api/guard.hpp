// RAII session layer over the rme::api lock concept.
//
//   Guard<L>     - acquire on construction, release on normal scope exit.
//   TryGuard<L>  - one bounded attempt; test with operator bool.
//   KeyGuard<L>  - keyed tables: acquires the shard guarding a key and
//                  remembers the shard index.
//
// Crash-consistent unwinding: in the deterministic simulator a crash step
// is delivered as an exception (sim::ProcessCrashed) unwinding the process
// body. A crashed process must NOT run Exit - the whole point of
// recoverable mutual exclusion is that the lock state survives as-is and
// the recovery protocol (acquire again) repairs it. Every guard therefore
// skips release() when its scope unwinds exceptionally; on the Real
// platform (no crash injection) this means an exception thrown inside a
// guarded critical section leaves the lock held, and for a recoverable
// lock the documented response is the same recovery protocol: acquire
// again (or recover()) from the catch site.
#pragma once

#include <cstdint>
#include <exception>

#include "api/lock_concept.hpp"

namespace rme::api {

/// Deliberately unconstrained at class level (the concept is enforced in
/// the constructor): a lock class may declare `using Guard =
/// api::Guard<Self>` as a member alias while still incomplete - a
/// class-level constraint would be evaluated against the incomplete type
/// and cache a false verdict.
template <class L>
class Guard {
 public:
  using Proc = typename L::Proc;

  Guard(L& l, Proc& h, int id)
      : lock_(&l), h_(&h), id_(id), unwind_(std::uncaught_exceptions()) {
    static_assert(Lock<L>, "api::Guard requires an api::Lock");
    l.acquire(h, id);
  }

  // noexcept(false): in the simulator release() itself is a crash point
  // (sim::ProcessCrashed may be thrown mid-Exit); the crash must
  // propagate to the driver, not terminate. The unwind check above this
  // release guarantees we never throw while another exception is active.
  ~Guard() noexcept(false) {
    if (lock_ == nullptr) return;
    if (std::uncaught_exceptions() > unwind_) return;  // crash unwind
    lock_->release(*h_, id_);
  }

  // Release before scope end (the guard becomes inert; idempotent).
  // The guard goes inert BEFORE the lock release runs: if a simulated
  // crash fires mid-Exit the destructor must not re-release.
  void release() {
    L* l = lock_;
    if (l == nullptr) return;
    lock_ = nullptr;
    l->release(*h_, id_);
  }

  int id() const { return id_; }

  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  L* lock_;
  Proc* h_;
  int id_;
  int unwind_;
};

/// One bounded acquisition attempt on construction; test with
/// operator bool. Held guards release on scope exit with the same
/// crash-consistent unwinding contract as Guard.
template <TryLock L>
class TryGuard {
 public:
  using Proc = typename L::Proc;

  TryGuard(L& l, Proc& h, int id)
      : lock_(&l),
        h_(&h),
        id_(id),
        unwind_(std::uncaught_exceptions()),
        held_(l.try_acquire(h, id)) {}

  ~TryGuard() noexcept(false) {  // see ~Guard()
    if (!held_) return;
    if (std::uncaught_exceptions() > unwind_) return;  // crash unwind
    lock_->release(*h_, id_);
  }

  explicit operator bool() const { return held_; }
  bool held() const { return held_; }

  void release() {
    if (!held_) return;
    held_ = false;
    lock_->release(*h_, id_);
  }

  TryGuard(const TryGuard&) = delete;
  TryGuard& operator=(const TryGuard&) = delete;

 private:
  L* lock_;
  Proc* h_;
  int id_;
  int unwind_;
  bool held_;
};

/// Keyed-table guard: acquires the shard guarding `key` on
/// construction and remembers the shard index. Same crash-consistent
/// unwinding contract as Guard.
template <KeyedLock L>
class KeyGuard {
 public:
  using Proc = typename L::Proc;

  KeyGuard(L& l, Proc& h, int pid, uint64_t key)
      : lock_(&l), h_(&h), pid_(pid), unwind_(std::uncaught_exceptions()) {
    shard_ = l.acquire(h, pid, key);
  }

  ~KeyGuard() noexcept(false) {  // see ~Guard()
    if (lock_ == nullptr) return;
    if (std::uncaught_exceptions() > unwind_) return;  // crash unwind
    lock_->release(*h_, pid_);
  }

  // Release before scope end (the guard becomes inert; idempotent).
  void release() {
    L* l = lock_;
    if (l == nullptr) return;
    lock_ = nullptr;
    l->release(*h_, pid_);
  }

  // The shard the key mapped to (stable for the key).
  int shard() const { return shard_; }
  int pid() const { return pid_; }

  KeyGuard(const KeyGuard&) = delete;
  KeyGuard& operator=(const KeyGuard&) = delete;

 private:
  L* lock_;
  Proc* h_;
  int pid_;
  int unwind_;
  int shard_ = -1;
};

}  // namespace rme::api

// The lock registry: a compile-time type list pairing every public lock
// with a stable string name (L::kName) and its capability descriptor
// (LockTraits<L>). One conformance suite and one bench loop iterate this
// list instead of hand-wiring each lock:
//
//   rme::api::for_each_lock<platform::Counted>([&](auto tag) {
//     using L = typename decltype(tag)::type;
//     if constexpr (rme::api::KeyedLock<L>) { ... } else { ... }
//   });
//
//   rme::api::for_each_lock_if<platform::Real>(
//       [](const rme::api::Traits& t) { return t.recoverable; },
//       [&](auto tag) { ... });
//
// Registry names are STABLE identifiers: benches key their BENCH_JSON
// rows on them (lock=<name>), so renaming an entry breaks trajectory
// comparability across PRs - don't.
#pragma once

#include <type_traits>
#include <vector>

#include "api/adapters.hpp"
#include "api/lock_concept.hpp"

namespace rme::api {

/// Compile-time list of lock types (the registry's representation).
template <class... Ls>
struct TypeList {
  static constexpr int size = static_cast<int>(sizeof...(Ls));
};

/// Value-carried type handle passed to for_each_lock visitors.
template <class L>
struct TypeTag {
  using type = L;
};

/// The registry. Every entry satisfies Lock or KeyedLock (statically
/// checked in api_check.cpp for both platforms).
template <class P>
using Registry =
    TypeList<FlatLock<P>,               // paper Theorem 2, port-addressed
             rme::RecoverableMutex<P>,  // Theorem 3 tree, pid-addressed
             LeasedLock<P>,             // dynamic port leasing
             TableLock<P>,              // sharded key-addressed table
             TournamentLock<P>,         // Signal-based RLock tournament
             PetersonTournamentLock<P>, // read/write ablation
             PairLock<P>,               // bare 2-ported R2Lock
             McsBaseline<P>, TasBaseline<P>, TtasBaseline<P>,
             TicketBaseline<P>, ClhBaseline<P>>;

template <class P>
constexpr int registry_size() {
  return Registry<P>::size;
}

namespace detail {
template <class Fn, class... Ls>
constexpr void for_each_impl(TypeList<Ls...>, Fn&& fn) {
  (fn(TypeTag<Ls>{}), ...);
}
}  // namespace detail

/// Visit every registry entry: fn(TypeTag<L>) for each lock type L.
template <class P, class Fn>
constexpr void for_each_lock(Fn&& fn) {
  detail::for_each_impl(Registry<P>{}, static_cast<Fn&&>(fn));
}

/// Visit the entries whose Traits satisfy `pred` (capability filter).
/// `pred` must be a stateless constexpr callable over Traits (a
/// captureless lambda): filtering happens at COMPILE time, so `fn` is only
/// instantiated for the selected entries - e.g. a KeyGuard-using body
/// passed with a keyed-addressing filter never has to compile against
/// port-addressed locks.
template <class P, class Pred, class Fn>
constexpr void for_each_lock_if(Pred&&, Fn&& fn) {
  static_assert(std::is_empty_v<std::remove_cvref_t<Pred>>,
                "for_each_lock_if: predicate must be stateless "
                "(captureless lambda) - it is evaluated at compile time");
  for_each_lock<P>([&](auto tag) {
    using L = typename decltype(tag)::type;
    if constexpr (std::remove_cvref_t<Pred>{}(lock_traits_v<L>)) {
      fn(tag);
    }
  });
}

/// Runtime self-description of the registry (docs, test output, tooling).
struct Description {
  const char* name;
  Traits traits;
};

/// Runtime self-description of every registry entry (docs, test
/// output, tooling).
template <class P>
std::vector<Description> describe_registry() {
  std::vector<Description> out;
  out.reserve(static_cast<size_t>(registry_size<P>()));
  for_each_lock<P>([&](auto tag) {
    using L = typename decltype(tag)::type;
    out.push_back(Description{L::kName, lock_traits_v<L>});
  });
  return out;
}

}  // namespace rme::api

// rme::api - the unified lock concept and capability descriptor that every
// public lock surface of this library conforms to.
//
// Canonical verbs (THE naming authority for the whole repo; underlying
// implementations keep the paper's lock()/unlock() = Try/Exit sections,
// and the api adapters route them here):
//
//   acquire(h, id)       - the Try section: blocks until the caller is in
//                          the critical section. For recoverable locks this
//                          doubles as the complete recovery protocol: after
//                          a crash ANYWHERE (mid-Try, inside the CS, or
//                          mid-Exit), call acquire with the same id again.
//   release(h, id)       - the Exit section: wait-free straight-line code,
//                          idempotent for recoverable locks.
//   recover(h, id)       - finish any super-passage `id` left interrupted
//                          and return with the lock idle for `id` (a full
//                          empty passage when nothing was interrupted).
//   try_acquire(h, id)   - optional (TryLock concept): one bounded attempt,
//                          true iff the CS was entered.
//   acquire(h, id, key)  - keyed locks (KeyedLock concept): lock the shard
//                          guarding `key`; returns the shard index.
//
// `h` is the per-process handle (platform::Process<P>), `id` the caller's
// identity in the lock's addressing mode - see Traits::addressing.
//
// Every conforming lock carries a LockTraits<L> capability descriptor so
// generic code (the conformance suite, the registry-driven benches, the
// guards) can select behaviour by capability instead of by type name.
#pragma once

#include <concepts>
#include <cstdint>
#include <functional>

#include "platform/process.hpp"

namespace rme::api {

/// How the `id` argument of acquire/release is interpreted.
enum class Addressing : uint8_t {
  kPort,    // paper's static port model: caller owns port assignment and
            // guarantees no two processes use one port concurrently
  kPid,     // process id 0..n-1; the lock owns any internal port mapping
  kLeased,  // pid-addressed with dynamic port leasing (persisted lease
            // words re-bind a recovering process to its interrupted port)
  kKeyed,   // pid + key: the lock is a table of shards striped by key
};

/// The strongest read-modify-write instruction the lock's blocking
/// acquire/release paths issue. The paper's core result needs only FAS
/// (exchange); baselines document what they cost. Bounded try_acquire
/// attempts are excluded: the ticket and CLH baselines need one CAS there
/// (an unconditional FAI/exchange could not be abandoned).
enum class Rmw : uint8_t {
  kNone,     // reads and writes only
  kFasOnly,  // fetch-and-store (exchange), the paper's instruction set
  kFai,      // fetch-and-increment (ticket baseline)
  kCas,      // compare-and-swap (MCS release path)
};

/// Capability descriptor: one constexpr value per lock type.
struct Traits {
  Addressing addressing = Addressing::kPort;
  // Full recoverability: mutual exclusion + starvation freedom survive
  // crash steps at any instruction, with wait-free critical-section
  // re-entry (CSR). false = a crash can deadlock or corrupt the lock.
  bool recoverable = false;
  Rmw rmw = Rmw::kNone;
  // Hard bound on concurrent processes/ports (0 = any count chosen at
  // construction). E.g. the bare 2-ported R2Lock reports 2.
  int max_processes = 0;
  // All shared state is placeable in an rme::shm region: constructed
  // with an arena-backed Real Env, every word peers read or write lives
  // in the region (nvm::Seq-backed arrays, region-allocated queue
  // nodes), so processes attached under the fixed-address mapping
  // contract (shm/region.hpp) can contend on one instance across
  // address spaces. false = the lock parks state in private heap memory
  // (std::vector baselines) and is single-process only.
  bool shm_placeable = false;
};

/// Processes/ports to drive a lock with, honouring its max_processes
/// capability (the single home of this clamp - registry consumers use it
/// rather than re-deriving the rule).
constexpr int clamp_processes(const Traits& t, int want) {
  return t.max_processes > 0 && t.max_processes < want ? t.max_processes
                                                       : want;
}

/// Stable display name of an Addressing mode (docs, test output).
constexpr const char* to_string(Addressing a) {
  switch (a) {
    case Addressing::kPort: return "port";
    case Addressing::kPid: return "pid";
    case Addressing::kLeased: return "leased";
    case Addressing::kKeyed: return "keyed";
  }
  return "?";
}

/// Stable display name of an Rmw level (docs, test output).
constexpr const char* to_string(Rmw r) {
  switch (r) {
    case Rmw::kNone: return "read/write";
    case Rmw::kFasOnly: return "FAS";
    case Rmw::kFai: return "FAI";
    case Rmw::kCas: return "CAS";
  }
  return "?";
}

/// LockTraits<L>: the capability lookup generic code uses. Conforming locks
/// declare a `static constexpr Traits kTraits`; third-party locks that
/// cannot be edited may specialise LockTraits instead.
template <class L>
struct LockTraits;  // primary: undefined (specialised below or by users)

template <class L>
  requires requires { { L::kTraits } -> std::convertible_to<Traits>; }
struct LockTraits<L> {
  static constexpr Traits value = L::kTraits;
};

template <class L>
inline constexpr Traits lock_traits_v = LockTraits<L>::value;

/// True when LockTraits<L>::value is available.
template <class L>
concept Described = requires {
  { LockTraits<L>::value } -> std::convertible_to<Traits>;
};

/// The uniform surface: acquire/release/recover over (handle, id).
template <class L>
concept Lock = Described<L> && requires(L& l, typename L::Proc& h, int id) {
  typename L::Platform;
  { l.acquire(h, id) } -> std::same_as<void>;
  { l.release(h, id) } -> std::same_as<void>;
  { l.recover(h, id) } -> std::same_as<void>;
};

/// A Lock whose traits promise full crash recoverability; the conformance
/// suite adds a crash-injection sweep for exactly these.
template <class L>
concept RecoverableLock = Lock<L> && LockTraits<L>::value.recoverable;

/// A Lock with a bounded single-attempt entry.
template <class L>
concept TryLock = Lock<L> && requires(L& l, typename L::Proc& h, int id) {
  { l.try_acquire(h, id) } -> std::same_as<bool>;
};

/// Key-addressed lock tables: acquire takes (pid, key) and reports the
/// shard; release/recover are pid-addressed (the table persists which shard
/// a pid's in-flight super-passage targets).
template <class L>
concept KeyedLock =
    Described<L> && LockTraits<L>::value.addressing == Addressing::kKeyed &&
    requires(L& l, typename L::Proc& h, int pid, uint64_t key) {
      typename L::Platform;
      { l.acquire(h, pid, key) } -> std::convertible_to<int>;
      { l.release(h, pid) } -> std::same_as<void>;
      { l.recover(h, pid) } -> std::same_as<void>;
    };

/// A KeyedLock with a bounded single-attempt entry per key: one sweep,
/// returns the shard index on success or a negative value when the
/// acquisition would block (shard busy, or its port pool exhausted).
/// Like std::mutex::try_lock, the attempt may fail spuriously when it
/// races another bounded attempt on the same shard.
template <class L>
concept TryKeyedLock =
    KeyedLock<L> &&
    requires(L& l, typename L::Proc& h, int pid, uint64_t key) {
      { l.try_acquire(h, pid, key) } -> std::convertible_to<int>;
    };

/// A KeyedLock that can additionally hold the shards of N keys at once,
/// crash-consistently (sorted two-phase locking; recovery replays partial
/// batches). acquire_batch returns the shard bitmask; release_batch is
/// pid-addressed like release. The RAII surface is rme::svc::BatchGuard.
template <class L>
concept BatchKeyedLock =
    KeyedLock<L> &&
    requires(L& l, typename L::Proc& h, int pid, const uint64_t* keys,
             size_t nkeys) {
      { l.acquire_batch(h, pid, keys, nkeys) } -> std::same_as<uint64_t>;
      { l.release_batch(h, pid) } -> std::same_as<void>;
    };

/// A BatchKeyedLock whose batch acquisition can be bounded by a deadline:
/// acquire_batch_until takes an `expired` predicate polled between
/// bounded per-shard attempts and returns the held shard bitmask, or 0
/// after SORTED PREFIX BACKOUT - every shard of the partial prefix is
/// released again (in ascending order) and the persisted batch intent
/// cleared, so a timed-out batch leaves no residue. The RAII surface is
/// rme::svc::Session::acquire_batch_for/_until.
template <class L>
concept DeadlineBatchKeyedLock =
    BatchKeyedLock<L> &&
    requires(L& l, typename L::Proc& h, int pid, const uint64_t* keys,
             size_t nkeys, const std::function<bool()>& expired) {
      {
        l.acquire_batch_until(h, pid, keys, nkeys, expired)
      } -> std::same_as<uint64_t>;
    };

}  // namespace rme::api

// R2Lock: a 2-port recoverable mutual exclusion lock.
//
// Building block for the tournament RLock (rlock/tournament.hpp), which the
// core algorithm uses to serialise queue repair (paper Figure 3, Line 24).
// The paper requires RLock to be a k-ported starvation-free RME lock with
// O(k) passage RMR on both CC and DSM and suggests Golab-Ramaraju's
// recoverable extension of Yang-Anderson; any lock meeting the contract
// works (see DESIGN.md "Substitutions"). R2Lock is a Peterson flag/turn
// core made recoverable by construction:
//
//   * Every statement is idempotent under re-execution from the top, so
//     the recovery protocol after a crash is simply "call lock() again".
//   * A process that crashed inside its critical section finds its flag
//     still OWN and re-enters immediately (wait-free CSR; this also gives
//     plain CSR: the rival cannot get past flag == OWN).
//   * Waiting is by publication of a tagged go-flag from the waiter's own
//     partition (local spin on DSM); the unlocker writes the tag it read.
//     Lost wakeups from crashes between the unlocker's flag[i]=IDLE store
//     and its wake write are repaired by the help-wake at the top of
//     lock(): any later step of the crashed process re-delivers a wake,
//     and the woken side re-evaluates the Peterson condition (it never
//     trusts a wake alone), so spurious wakes are harmless.
//
// Handshake discipline (all seq_cst):
//   waiter:   publish (tag, slot)      then  read  flag[rival], turn
//   unlocker: store   flag[self]=IDLE  then  read  (slot, tag), write wake
// If the unlocker misses a publication, the publication happened after its
// IDLE store, so the waiter's subsequent condition check observes IDLE and
// does not sleep - the paper's own Bit/GoAddr argument (Theorem 1, Case 2).
#pragma once

#include <cstdint>

#include "nvm/flag_ring.hpp"
#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "shm/offptr.hpp"
#include "util/assert.hpp"

namespace rme::rlock {

template <class P>
class R2Lock {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  enum : int { kIdle = 0, kWant = 1, kOwn = 2 };

  R2Lock() = default;

  void attach(Env& env) {
    for (int i = 0; i < 2; ++i) {
      flag_[i].attach(env, rmr::kNoOwner);
      go_slot_[i].attach(env, rmr::kNoOwner);
      go_tag_[i].attach(env, rmr::kNoOwner);
    }
    turn_.attach(env, rmr::kNoOwner);
  }

  // Acquire side i (0 or 1). Recoverable: after a crash anywhere (including
  // inside the CS or inside unlock), calling lock(i) again is the complete
  // recovery protocol.
  void lock(Proc& h, int i) {
    RME_DCHECK(i == 0 || i == 1, "R2Lock: bad side");
    Ctx& ctx = h.ctx;
    const int j = 1 - i;

    if (flag_[i].load(ctx, std::memory_order_seq_cst) == kOwn) {
      return;  // crashed while owning: CSR fast path
    }
    flag_[i].store(ctx, kWant, std::memory_order_seq_cst);
    turn_.store(ctx, i, std::memory_order_seq_cst);  // yield priority
    // Help-wake: if a previous incarnation of this process crashed between
    // its unlock's IDLE store and the wake write (or crashed mid-lock after
    // retaking `turn`), the rival may be asleep on a condition that no
    // longer holds. Waking it here makes every re-execution re-deliver the
    // lost signal; the rival re-evaluates, so this is always safe.
    wake(ctx, j);

    for (;;) {
      typename nvm::FlagRing<P>::Wait w = h.ring.begin_wait(ctx);
      go_tag_[i].store(ctx, w.tag, std::memory_order_seq_cst);
      go_slot_[i].store(ctx, w.flag, std::memory_order_seq_cst);
      if (flag_[j].load(ctx, std::memory_order_seq_cst) == kIdle) break;
      if (turn_.load(ctx, std::memory_order_seq_cst) != i) break;
      platform::Waiter wtr;
      while (w.flag->value.load(ctx, std::memory_order_acquire) != w.tag) {
        wtr.pause(ctx, w.flag);
      }
      // Woken: somebody released or yielded; re-evaluate from a fresh
      // publication (wakes are hints, never permissions).
    }
    flag_[i].store(ctx, kOwn, std::memory_order_seq_cst);
  }

  // Release side i. Idempotent; spurious calls only produce spurious wakes,
  // which the waiter re-evaluates.
  void unlock(Proc& h, int i) {
    RME_DCHECK(i == 0 || i == 1, "R2Lock: bad side");
    Ctx& ctx = h.ctx;
    flag_[i].store(ctx, kIdle, std::memory_order_seq_cst);
    wake(ctx, 1 - i);
  }

  // Introspection for tests.
  int flag_state(Ctx& ctx, int i) {
    return flag_[i].load(ctx, std::memory_order_acquire);
  }

 private:
  void wake(Ctx& ctx, int side) {
    nvm::GoFlag<P>* slot =
        go_slot_[side].load(ctx, std::memory_order_seq_cst);
    const uint64_t tag = go_tag_[side].load(ctx, std::memory_order_seq_cst);
    if (slot != nullptr) {
      slot->value.store(ctx, tag, std::memory_order_release);
    }
  }

  typename P::template Atomic<int> flag_[2];
  typename P::template Atomic<int> turn_;
  // Cross-process go-flag links: self-relative (shm/offptr.hpp), valid at
  // any attach base.
  shm::AtomicRef<P, nvm::GoFlag<P>> go_slot_[2];
  typename P::template Atomic<uint64_t> go_tag_[2];
};

}  // namespace rme::rlock

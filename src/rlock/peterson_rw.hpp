// PetersonR2: a 2-port recoverable lock using only reads and writes.
//
// Same recoverable structure as R2Lock (idempotent re-execution, OWN fast
// path for CSR) but waiting is by spinning directly on the rival's flag
// and the turn word instead of Signal-style local publication. This is
// the Golab-Ramaraju-flavoured read/write alternative (paper Section 1.4:
// O(log n) passage RMR is optimal for this instruction set):
//
//   * on CC the spin is cache-local after the first read - O(1) RMR per
//     wait - so a tournament of these matches the classic read/write
//     recoverable bound;
//   * on DSM the spin variables live in global memory, so a blocked
//     waiter incurs one RMR per spin iteration: unbounded. That is
//     precisely the CC/DSM gap the paper's Signal object closes, and why
//     the default RLock is the Signal-based R2Lock.
//
// Provided as a drop-in for TournamentRLock's lock2 parameter; used by
// the ablation bench and as a demonstration that RmeLock's RLock is a
// genuinely pluggable contract (the paper: "RLock is a k-ported
// starvation-free RME algorithm" - any one will do).
#pragma once

#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "util/assert.hpp"

namespace rme::rlock {

template <class P>
class PetersonR2 {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  enum : int { kIdle = 0, kWant = 1, kOwn = 2 };

  PetersonR2() = default;

  void attach(Env& env) {
    flag_[0].attach(env, rmr::kNoOwner);
    flag_[1].attach(env, rmr::kNoOwner);
    turn_.attach(env, rmr::kNoOwner);
  }

  // Recoverable: after a crash anywhere, call lock(i) again.
  void lock(Proc& h, int i) {
    RME_DCHECK(i == 0 || i == 1, "PetersonR2: bad side");
    Ctx& ctx = h.ctx;
    const int j = 1 - i;
    if (flag_[i].load(ctx, std::memory_order_seq_cst) == kOwn) {
      return;  // crashed while owning (CSR fast path)
    }
    flag_[i].store(ctx, kWant, std::memory_order_seq_cst);
    turn_.store(ctx, i, std::memory_order_seq_cst);
    // Classic Peterson wait; every iteration re-reads shared state, so
    // no wake-up protocol (and no lost-wake recovery) is needed - the
    // trade is remote spinning on DSM.
    platform::Waiter wtr;
    while (flag_[j].load(ctx, std::memory_order_seq_cst) != kIdle &&
           turn_.load(ctx, std::memory_order_seq_cst) == i) {
      wtr.pause(ctx, this);
    }
    flag_[i].store(ctx, kOwn, std::memory_order_seq_cst);
  }

  // Idempotent release.
  void unlock(Proc& h, int i) {
    RME_DCHECK(i == 0 || i == 1, "PetersonR2: bad side");
    flag_[i].store(h.ctx, kIdle, std::memory_order_seq_cst);
  }

 private:
  typename P::template Atomic<int> flag_[2];
  typename P::template Atomic<int> turn_;
};

}  // namespace rme::rlock

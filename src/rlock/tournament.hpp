// TournamentRLock: k-ported recoverable mutual exclusion built as a binary
// tournament of R2Locks.
//
// This is the library's "RLock" (paper Figure 3, Line 24): the k-ported
// starvation-free RME lock that serialises queue repair. It also doubles
// as the read/write-style O(log k) baseline for experiment E4 (it plays the
// role of the Golab-Ramaraju tournament: the best passage complexity
// achievable without non-comparison primitives, per Attiya et al.).
//
// Port p climbs ceil(log2 k) levels; at level l it plays side (p >> l) & 1
// of node p >> (l + 1). Two ports that map to the same (node, side) can
// never compete concurrently: to reach level l a port must hold its level
// l-1 node, and all ports sharing (node, side) at level l share that
// level-(l-1) node too, which serialises them - the per-side exclusivity
// contract of R2Lock is met by construction.
//
// Recovery is pure re-execution: every R2Lock is idempotent under re-entry
// (held levels short-circuit through the OWN fast path), so after a crash
// anywhere - mid-climb, in the CS, or mid-release - calling lock() again
// restores the invariant "returns iff all levels held". unlock() releases
// root-to-leaf and is likewise idempotent (releasing a non-held level is a
// spurious wake the waiter re-evaluates).
//
// Passage RMR: O(log k) on CC and DSM (each level is O(1) amortised over
// the rival's activity), within the O(k) budget the paper allots RLock.
#pragma once

#include <cstdint>

#include "nvm/seq.hpp"
#include "platform/process.hpp"
#include "rlock/r2lock.hpp"
#include "util/assert.hpp"

namespace rme::rlock {

// Lock2 is the 2-port recoverable component: R2Lock (Signal-based local
// spin, the default - O(1) RMR waits on CC *and* DSM) or
// rlock::PetersonR2 (read/write-only: O(1) on CC, unbounded on DSM; the
// Golab-Ramaraju-style ablation).
template <class P, class Lock2 = R2Lock<P>>
class TournamentRLock {
 public:
  using Env = typename P::Env;
  using Proc = platform::Process<P>;

  TournamentRLock(Env& env, int ports) : ports_(ports) {
    RME_ASSERT(ports >= 1, "TournamentRLock: need >= 1 port");
    // Number of leaf pairs at level 0 is ceil(k/2); each higher level
    // halves. levels_ = ceil(log2(k)) with a minimum of 1 so a 1- or
    // 2-ported lock still has a root to arbitrate on.
    levels_ = 1;
    while ((1 << levels_) < ports_) ++levels_;
    // Seq-backed (arena-aware): the offsets table is READ by every locker,
    // so for shm worlds it must live in the region with the R2Lock nodes.
    level_offset_.reset(env.arena, static_cast<size_t>(levels_) + 1);
    int total = 0;
    for (int l = 0; l < levels_; ++l) {
      level_offset_[static_cast<size_t>(l)] = total;
      total += nodes_at_level(l);
    }
    level_offset_[static_cast<size_t>(levels_)] = total;
    nodes_.reset(env.arena, static_cast<size_t>(total));
    for (auto& n : nodes_) n.attach(env);
  }

  // Try section. Returns with the lock held. Recoverable by re-invocation.
  void lock(Proc& h, int port) {
    check_port(port);
    for (int l = 0; l < levels_; ++l) {
      node_at(l, port).lock(h, side(l, port));
    }
  }

  // Exit section. Wait-free, idempotent.
  void unlock(Proc& h, int port) {
    check_port(port);
    for (int l = levels_ - 1; l >= 0; --l) {
      node_at(l, port).unlock(h, side(l, port));
    }
  }

  int ports() const { return ports_; }
  int levels() const { return levels_; }

 private:
  int nodes_at_level(int l) const {
    // Ports reaching level l: ceil(k / 2^l); nodes pair them up.
    const int reach = (ports_ + (1 << l) - 1) >> l;
    return (reach + 1) / 2;
  }
  static int side(int l, int port) { return (port >> l) & 1; }
  Lock2& node_at(int l, int port) {
    const int idx = level_offset_[static_cast<size_t>(l)] + (port >> (l + 1));
    return nodes_[static_cast<size_t>(idx)];
  }
  void check_port(int port) const {
    (void)port;  // only consumed by the debug check below
    RME_DCHECK(port >= 0 && port < ports_, "TournamentRLock: bad port");
  }

  int ports_;
  int levels_;
  nvm::Seq<int> level_offset_;
  nvm::Seq<Lock2> nodes_;
};

}  // namespace rme::rlock

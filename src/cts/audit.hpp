// rme::cts audits: the between-rounds invariant sweeps.
//
// CTS audits run when the world is QUIESCENT - every worker of the round
// reaped, no acquisition in flight - so each one can assert an exact
// steady-state invariant rather than a racy approximation. All reads go
// through the observer pid's handle (a logical pid the soak never
// claims), keeping the auditing parent a pure reader of the region:
//
//   me_csr_witness   every shard's CsProbe saw zero collisions and is
//                    empty - the cross-process ME/CSR witness held
//                    across every kill and takeover of the round
//   lease_sweep      zero leaked leases: every port back in its pool,
//                    every persisted shard/batch intent cleared. THE
//                    audit the checker-teeth fault must trip: a skipped
//                    recovery replay leaves the victim's shard intent
//                    (and often a held port) behind
//   epoch_monotone   per-pid incarnation epochs never go backwards
//                    (stateful across rounds - the only audit with
//                    memory)
//   handoff_rmrs     per-pid cumulative handoff grants <= releases, the
//                    fair-handoff RMR attribution bound, summed over
//                    every incarnation via the region-resident SoakCells
//   arena_high_water caps respected: the bump cursor never passed the
//                    region limit; records the high-water mark for
//                    SOAK_JSON capacity reporting
//   metrics_witness  the obs::MetricsArena cross-check: every telemetry
//                    row samples cleanly at quiescence (no seqlock left
//                    odd by a dead writer - adoption repaired it), row
//                    acquires COVER the SoakCell witness (cells are
//                    flushed only by clean exits, rows count every
//                    incarnation, so row >= cell), handoffs <= releases
//                    region-wide, and the acquire-wait histogram's mass
//                    never exceeds its own acquires counter
#pragma once

#include <string>
#include <type_traits>

#include "cts/component.hpp"

namespace rme::cts {

class Audit {
 public:
  virtual ~Audit() = default;
  virtual const char* name() const = 0;
  // Quiescent-world sweep; violations go to ctx.fail().
  virtual void check(SoakCtx& ctx) = 0;

 protected:
  static std::string at(const char* who, int i) {
    return std::string(who) + "[" + std::to_string(i) + "]: ";
  }
};

class ProbeAudit final : public Audit {
 public:
  const char* name() const override { return "me_csr_witness"; }
  void check(SoakCtx& ctx) override {
    for (int s = 0; s < ctx.fx.table.shards(); ++s) {
      auto& p = ctx.fx.probes[s];
      const uint64_t col = p.collisions.load(std::memory_order_acquire);
      if (col != 0) {
        ctx.fail(at("shard", s) + std::to_string(col) +
                 " ME/CSR collisions witnessed");
      }
      const uint64_t owner = p.owner.load(std::memory_order_acquire);
      if (owner != 0) {
        ctx.fail(at("shard", s) + "probe still owned by id " +
                 std::to_string(owner) + " at quiescence");
      }
    }
  }
};

class LeaseAudit final : public Audit {
 public:
  const char* name() const override { return "lease_sweep"; }
  void check(SoakCtx& ctx) override {
    auto& obs = ctx.world.proc(ctx.opt.observer_pid()).ctx;
    auto& t = ctx.fx.table.underlying();
    for (int s = 0; s < t.shards(); ++s) {
      const int free = t.shard_lease(s).free_ports(obs);
      const int ports = t.shard_lease(s).ports();
      if (free != ports) {
        ctx.fail(at("shard", s) + "leaked lease: " +
                 std::to_string(ports - free) + " of " +
                 std::to_string(ports) + " ports still out");
      }
    }
    for (int pid = 0; pid < ctx.world.nprocs(); ++pid) {
      if (t.current_shard(obs, pid) !=
          std::remove_reference_t<decltype(t)>::kNoShard) {
        ctx.fail(at("pid", pid) + "persisted shard intent not cleared");
      }
      if (t.current_batch(obs, pid) != 0) {
        ctx.fail(at("pid", pid) + "persisted batch intent not cleared");
      }
    }
  }
};

class EpochAudit final : public Audit {
 public:
  const char* name() const override { return "epoch_monotone"; }
  void check(SoakCtx& ctx) override {
    for (int pid = 0; pid < ctx.world.nprocs(); ++pid) {
      const uint64_t e = ctx.world.region().header()->slots[pid].epoch.load(
          std::memory_order_acquire);
      if (e < last_[pid]) {
        ctx.fail(at("pid", pid) + "epoch went backwards: " +
                 std::to_string(last_[pid]) + " -> " + std::to_string(e));
      }
      last_[pid] = e;
    }
  }

 private:
  uint64_t last_[shm::kMaxProcs] = {};
};

class HandoffAudit final : public Audit {
 public:
  const char* name() const override { return "handoff_rmrs"; }
  void check(SoakCtx& ctx) override {
    for (int pid = 0; pid < ctx.world.nprocs(); ++pid) {
      auto& c = ctx.fx.soak[pid];
      const uint64_t grants =
          c.handoff_rmrs.load(std::memory_order_acquire);
      const uint64_t rels = c.releases.load(std::memory_order_acquire);
      // Single-key soak roles: at most one grant per released lock. The
      // cumulative cells make this a cross-incarnation bound - recovery
      // replays and takeovers included.
      if (grants > rels) {
        ctx.fail(at("pid", pid) + "handoff grants " +
                 std::to_string(grants) + " exceed releases " +
                 std::to_string(rels));
      }
    }
  }
};

class ArenaAudit final : public Audit {
 public:
  const char* name() const override { return "arena_high_water"; }
  void check(SoakCtx& ctx) override {
    const uint64_t cursor = ctx.world.region().header()->cursor.load(
        std::memory_order_acquire);
    if (cursor > ctx.world.region().bytes()) {
      ctx.fail("arena cursor " + std::to_string(cursor) +
               " passed the region limit " +
               std::to_string(ctx.world.region().bytes()));
    }
    if (cursor > high_water_) high_water_ = cursor;
  }
  uint64_t high_water() const { return high_water_; }

 private:
  uint64_t high_water_ = 0;
};

class MetricsAudit final : public Audit {
 public:
  const char* name() const override { return "metrics_witness"; }
  void check(SoakCtx& ctx) override {
    const auto& arena = ctx.world.metrics();
    uint64_t handoffs = 0, releases = 0;
    for (int pid = 0; pid < ctx.world.nprocs(); ++pid) {
      obs::RowSample row;
      if (!obs::sample_row(arena.rows[pid], row)) {
        // Quiescent world: nobody is writing, so a row that never
        // settles is a seqlock left odd by a dead writer that adoption
        // failed to repair.
        ctx.fail(at("pid", pid) + "telemetry row torn at quiescence");
        continue;
      }
      // The SoakCell witness is flushed by CLEAN exits only; the arena
      // row adopts across every incarnation (SIGKILLed ones included),
      // so the row must cover the cell.
      const uint64_t cell_acq =
          ctx.fx.soak[pid].acquires.load(std::memory_order_acquire);
      if (row.counter[obs::kAcquires] < cell_acq) {
        ctx.fail(at("pid", pid) + "arena acquires " +
                 std::to_string(row.counter[obs::kAcquires]) +
                 " below the SoakCell witness " + std::to_string(cell_acq));
      }
      if (row.acquire_wait_count() > row.counter[obs::kAcquires]) {
        ctx.fail(at("pid", pid) + "acquire-wait histogram mass " +
                 std::to_string(row.acquire_wait_count()) +
                 " exceeds acquires " +
                 std::to_string(row.counter[obs::kAcquires]));
      }
      handoffs += row.counter[obs::kHandoffRmrs];
      releases += row.counter[obs::kReleases];
    }
    // Fair handoff, region-wide: every release (batches book per freed
    // shard) grants at most one waiter.
    if (handoffs > releases) {
      ctx.fail("arena handoff grants " + std::to_string(handoffs) +
               " exceed releases " + std::to_string(releases));
    }
  }
};

}  // namespace rme::cts

// rme::cts Soak: the chaos-soak driver.
//
// One Soak owns one live shm::ShmWorld (a TableLock fixture world, the
// same root tests/test_shm_fork.cpp uses) and runs rounds against it
// until a round budget or a duration budget is spent:
//
//   round = spawn baseline load fleet (soak-run workers, pids
//           0..procs-1, real fork+exec'd processes)
//         + run an rng-chosen subset of the enabled adversary arms
//           (components.hpp) against that live traffic, in fixed order
//         + finish: await every worker's kDone, reap and classify every
//           exit, scan every captured stderr (BadNews)
//         + audits: the six quiescent-world sweeps (audit.hpp)
//
// The world persists ACROSS rounds - epochs, probes and SoakCells
// accumulate - so cross-round invariants (epoch monotonicity, cumulative
// handoff bounds) have teeth. The run stops at the first failing round:
// the printed reproduction command replays exactly the rounds it took to
// fail, which keeps `rme_soak --seed=...` repros minimal.
//
// Reporting contract (consumed by tools/rme_soak.cpp, validated by
// tools/check_bench_json.py, documented in docs/soak.md):
//
//   SOAK_JSON {...}    exactly one line per run, always printed
//   SOAK_FAIL <what>   one line per anomaly, failures only
//   SOAK_REPRO: <cmd>  the replay command, failures only
#pragma once

#include <stdlib.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "cts/audit.hpp"
#include "cts/component.hpp"
#include "util/json.hpp"

namespace rme::cts {

struct SoakReport {
  uint64_t seed = 0;
  int procs = 0;
  int rounds_run = 0;
  std::string arms;   // enabled-arm names ("kill_storm+...")
  bool teeth = false;
  uint64_t kills = 0;
  uint64_t restarts = 0;
  uint64_t takeovers = 0;
  uint64_t spawns = 0;
  uint64_t acquires = 0;
  uint64_t releases = 0;
  uint64_t sheds = 0;
  uint64_t timeouts = 0;
  uint64_t audits_run = 0;
  uint64_t arena_high_water = 0;
  std::vector<std::string> anomalies;
  std::string repro;  // replay command; empty on a clean run

  bool ok() const { return anomalies.empty(); }

  // The one-line machine-readable summary (util/json.hpp renderer;
  // kSpaced style - the '"anomalies": 0' CI grep pins the separators).
  std::string json_line() const {
    return util::JsonLine("SOAK_JSON", util::JsonStyle::kSpaced)
        .num("seed", seed)
        .num("procs", procs)
        .num("rounds", rounds_run)
        .str("arms", arms)
        .num("teeth", static_cast<uint64_t>(teeth ? 1 : 0))
        .num("kills", kills)
        .num("restarts", restarts)
        .num("takeovers", takeovers)
        .num("spawns", spawns)
        .num("acquires", acquires)
        .num("releases", releases)
        .num("sheds", sheds)
        .num("timeouts", timeouts)
        .num("audits", audits_run)
        .num("anomalies", static_cast<uint64_t>(anomalies.size()))
        .num("arena_high_water", arena_high_water)
        .str();
  }

  // Failure-report lines (empty vector on a clean run).
  std::vector<std::string> failure_lines() const {
    std::vector<std::string> out;
    for (const std::string& a : anomalies) out.push_back("SOAK_FAIL " + a);
    if (!ok() && !repro.empty()) out.push_back("SOAK_REPRO: " + repro);
    return out;
  }
};

class Soak {
 public:
  explicit Soak(SoakOptions opt)
      : opt_(finish_options(std::move(opt))),
        world_(shm::ShmWorld::create(opt_.region, kRegionBytes,
                                     opt_.npids())),
        fx_(world_.create_root<Fixture>(world_.env, kShards,
                                        /*ports_per_shard=*/opt_.npids(),
                                        opt_.npids())),
        rng_(opt_.seed) {
    RME_ASSERT(!opt_.worker.empty(), "Soak: worker binary path required");
    RME_ASSERT(opt_.procs >= 1 && opt_.npids() <= shm::kMaxProcs,
               "Soak: procs out of range");
    components_.emplace_back(new KillStorm);
    components_.emplace_back(new RestartFlood);
    components_.emplace_back(new RegionPressure);
    components_.emplace_back(new Overload);
    components_.emplace_back(new PidReuse);
    components_.emplace_back(new ClockSkew);
    components_.emplace_back(new PidExhaust);
    components_.emplace_back(new NoFutexFlip);
    components_.emplace_back(new GrowStorm);
    audits_.emplace_back(new ProbeAudit);
    audits_.emplace_back(new LeaseAudit);
    audits_.emplace_back(new EpochAudit);
    arena_audit_ = new ArenaAudit;
    audits_.emplace_back(arena_audit_);
    audits_.emplace_back(new HandoffAudit);
    audits_.emplace_back(new MetricsAudit);
  }

  const SoakOptions& options() const { return opt_; }

  SoakReport run() {
    SoakReport rep;
    rep.seed = opt_.seed;
    rep.procs = opt_.procs;
    rep.arms = arms_to_string(opt_.arms);
    rep.teeth = opt_.teeth;
    const auto t0 = std::chrono::steady_clock::now();
    for (int round = 0;; ++round) {
      if (opt_.rounds > 0) {
        if (round >= opt_.rounds) break;
      } else if (round > 0 &&
                 std::chrono::steady_clock::now() - t0 >= opt_.duration) {
        break;  // duration budget: always at least one round
      }
      run_round(round, rep);
      rep.rounds_run = round + 1;
      if (!rep.anomalies.empty()) break;  // minimal repro: stop here
    }
    // Cumulative region-resident telemetry, all incarnations of all pids.
    for (int pid = 0; pid < world_.nprocs(); ++pid) {
      auto& c = fx_.soak[pid];
      rep.acquires += c.acquires.load(std::memory_order_acquire);
      rep.releases += c.releases.load(std::memory_order_acquire);
      rep.sheds += c.sheds.load(std::memory_order_acquire);
      rep.timeouts += c.timeouts.load(std::memory_order_acquire);
    }
    rep.takeovers = fx_.soak_takeovers.load(std::memory_order_acquire);
    rep.arena_high_water = arena_audit_->high_water();
    rep.repro = repro_command(rep.rounds_run);
    return rep;
  }

 private:
  static constexpr size_t kRegionBytes = 32u << 20;
  static constexpr int kShards = 4;

  static SoakOptions finish_options(SoakOptions opt) {
    if (opt.region.empty()) {
      opt.region = "/rme_soak_" + std::to_string(::getpid());
    }
    if (opt.log_dir.empty()) {
      char tmpl[] = "/tmp/rme_soak_XXXXXX";
      opt.log_dir = (::mkdtemp(tmpl) != nullptr) ? tmpl : "/tmp";
    }
    return opt;
  }

  std::string repro_command(int rounds) const {
    std::string c = "rme_soak --seed=" + std::to_string(opt_.seed) +
                    " --procs=" + std::to_string(opt_.procs) +
                    " --rounds=" + std::to_string(rounds) +
                    " --passages=" + std::to_string(opt_.passages) +
                    " --arms=" + arms_to_string(opt_.arms);
    if (opt_.teeth) c += " --teeth";
    return c;
  }

  void run_round(int round, SoakReport& rep) {
    harness::ForkScenario fs;
    BadNews bn;
    SoakCtx ctx{world_, fx_, opt_, rng_, fs, bn};
    ctx.round = round;
    ctx.round_key = 1 + rng_.below(97);

    // Choose this round's arms. Draw for every enabled component so the
    // rng stream is independent of the choices themselves.
    std::vector<Component*> chosen;
    std::vector<Component*> enabled;
    for (auto& c : components_) {
      if ((opt_.arms & c->arm()) == 0) continue;
      enabled.push_back(c.get());
      if (rng_.chance(0.6)) chosen.push_back(c.get());
    }
    if (chosen.empty() && !enabled.empty()) {
      chosen.push_back(enabled[rng_.below(enabled.size())]);
    }

    // Baseline load fleet: live traffic every arm fires against.
    for (int pid = 0; pid < opt_.procs; ++pid) {
      ctx.reset_stage(pid);
      ctx.live_load.push_back(
          ctx.spawn(pid, "soak-run",
                    {std::to_string(opt_.passages),
                     std::to_string(ctx.round_key),
                     std::to_string(opt_.dwell_us)}));
    }

    for (Component* c : chosen) c->run(ctx);

    finish_round(ctx);
    for (auto& a : audits_) {
      a->check(ctx);
      ++rep.audits_run;
    }

    rep.kills += ctx.kills;
    rep.restarts += ctx.restarts;
    rep.spawns += ctx.spawns;
    for (std::string& a : ctx.anomalies) rep.anomalies.push_back(std::move(a));
  }

  // Drain the round: every still-running worker must reach kDone and exit
  // clean; a hang is an anomaly (and the hung worker is then killed so
  // the reap cannot block). Afterwards every captured stderr is scanned.
  void finish_round(SoakCtx& ctx) {
    for (size_t w = 0; w < ctx.workers.size(); ++w) {
      if (ctx.workers[w].classified) continue;
      if (!ctx.await_stage(ctx.workers[w].pid, harness::Stage::kDone,
                           ctx.workers[w].role.c_str())) {
        ctx.kill_worker(static_cast<int>(w));  // anomaly already recorded
      }
      ctx.reap_died_by_kill(static_cast<int>(w));
    }
    for (const SoakCtx::Worker& w : ctx.workers) {
      ctx.badnews.scan_file(w.log, ctx.tag(w));
    }
    ctx.badnews.drain_into(ctx.anomalies);
  }

  SoakOptions opt_;
  shm::ShmWorld world_;
  Fixture& fx_;
  SoakRng rng_;
  std::vector<std::unique_ptr<Component>> components_;
  std::vector<std::unique_ptr<Audit>> audits_;
  ArenaAudit* arena_audit_ = nullptr;  // owned by audits_
};

}  // namespace rme::cts

// BadNews: the soak's log scanner and exit-status classifier - the
// pacemaker-CTS idea that a chaos run fails not only on audit violations
// but on ANY anomaly the system let slip into its logs or exit codes.
//
// Two inputs per worker incarnation:
//
//   * its captured stderr file (ForkScenario::spawn redirects the child's
//     fd 2): scanned line by line against a substring pattern list -
//     assertion text, ShmError reports, sanitizer banners, glibc abort
//     chatter. Substrings, not regexes, on purpose: the patterns are
//     verbatim fragments of the messages our own layers print, and a
//     scanner whose behaviour depends on a regex dialect is itself a
//     reproducibility hazard.
//
//   * its waitpid status, judged against the fate the scenario intended:
//     a worker the storm SIGKILL'd may die by SIGKILL (or win the race
//     and exit 0); every other worker must exit 0. Any other signal
//     (SIGSEGV, SIGABRT...) or exit code (shm_worker's 2..6 audit /
//     protocol failures) is an anomaly, reported with the shm_worker
//     exit-code legend so the failure report reads without a decoder.
//
// Matches accumulate as structured one-line anomalies; the Soak driver
// folds them into its failure report and fails the run.
#pragma once

#include <sys/wait.h>

#include <cstdio>
#include <string>
#include <vector>

namespace rme::cts {

class BadNews {
 public:
  BadNews() : patterns_(default_patterns()) {}
  explicit BadNews(std::vector<std::string> patterns)
      : patterns_(std::move(patterns)) {}

  // The stock pattern list: fragments of what our layers print on the way
  // down. Extended, never replaced, by soak callers with app patterns.
  static std::vector<std::string> default_patterns() {
    return {
        "assert",            // RME_ASSERT and glibc __assert_fail
        "Assertion",         //
        "Sanitizer",         // ASan/TSan/UBSan banners
        "runtime error",     // UBSan
        "terminate called",  // uncaught exception
        "Segmentation",      //
        "double free",       //
        "corrupt",           // glibc heap diagnostics
        "shm_worker:",       // worker-side ShmError report
    };
  }

  void add_pattern(std::string p) { patterns_.push_back(std::move(p)); }

  // Scan one captured stderr file; every matching line becomes an
  // anomaly tagged with `tag` (the worker's identity in the report).
  // A missing file is fine (the worker wrote nothing / spawn had no
  // capture); an unreadable existing file is NOT reported - stderr
  // capture is best-effort by design.
  void scan_file(const std::string& path, const std::string& tag) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) return;
    char line[1024];
    int lineno = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      ++lineno;
      const std::string s(line);
      for (const std::string& p : patterns_) {
        if (s.find(p) != std::string::npos) {
          note(tag + " stderr:" + std::to_string(lineno) + ": " +
               trimmed(s));
          break;  // one anomaly per line, however many patterns hit
        }
      }
    }
    std::fclose(f);
  }

  // Judge a reaped waitpid status. `expected_kill`: the scenario itself
  // delivered SIGKILL, so death-by-SIGKILL (or a clean exit that won the
  // race) is the intended fate.
  void note_exit(const std::string& tag, int status, bool expected_kill) {
    if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      if (code == 0) return;  // clean exit is always acceptable
      note(tag + " exited " + std::to_string(code) + " (" +
           exit_code_legend(code) + ")");
      return;
    }
    if (WIFSIGNALED(status)) {
      const int sig = WTERMSIG(status);
      if (expected_kill && sig == SIGKILL) return;
      note(tag + " died by signal " + std::to_string(sig) +
           (expected_kill ? " (SIGKILL expected)" : " (no kill was sent)"));
      return;
    }
    note(tag + " unrecognised wait status " + std::to_string(status));
  }

  // The shm_worker exit-code contract (tools/shm_worker.cpp).
  static const char* exit_code_legend(int code) {
    switch (code) {
      case 2: return "shm error: busy slot or bad region";
      case 3: return "bad arguments";
      case 4: return "recovery audit failure: probe owner changed";
      case 5: return "expected a takeover, claim was fresh";
      case 6: return "fair-handoff invariant violated";
      case 127: return "exec failed";
      default: return "unexpected exit code";
    }
  }

  const std::vector<std::string>& anomalies() const { return anomalies_; }
  bool clean() const { return anomalies_.empty(); }
  void drain_into(std::vector<std::string>& out) {
    for (std::string& a : anomalies_) out.push_back(std::move(a));
    anomalies_.clear();
  }

 private:
  void note(std::string a) { anomalies_.push_back(std::move(a)); }

  static std::string trimmed(std::string s) {
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
    if (s.size() > 160) s.resize(160);
    return s;
  }

  std::vector<std::string> patterns_;
  std::vector<std::string> anomalies_;
};

}  // namespace rme::cts

// SoakRng: the single randomness source of the cts chaos soak.
//
// Every nondeterministic decision a soak run makes - which arms fire in a
// round, when the kill storm strikes, which victim it picks, what
// deadline skew a worker applies - is drawn from ONE seeded generator,
// so a failing run is replayed by its seed alone (`rme_soak --seed=...`).
// The generator is splitmix64: tiny, fast, full-period over 2^64 seeds,
// and - unlike std::mt19937 with std::uniform_int_distribution - its
// output sequence is identical across standard libraries, which a
// reproduction command shared between a laptop and CI requires.
//
// fork(stream) derives an independent child generator, used to hand each
// soak-deadline worker its own seed: the worker's in-process decisions
// stay deterministic without the parent replaying them.
//
// (Wall-clock randomness never enters: callers that want a "random" seed
// derive one themselves and PRINT it - see tools/rme_soak.cpp.)
#pragma once

#include <chrono>
#include <cstdint>

namespace rme::cts {

class SoakRng {
 public:
  explicit SoakRng(uint64_t seed) : state_(seed) {}

  // splitmix64 step.
  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n). n == 0 returns 0. Modulo bias is irrelevant at
  // soak-decision scale (n is always tiny against 2^64).
  uint64_t below(uint64_t n) { return n == 0 ? 0 : next() % n; }

  // Uniform in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // True with probability p.
  bool chance(double p) { return unit() < p; }

  // Exponentially distributed interval with the given mean - the
  // Poisson-process arrival spacing of the kill storm. Clamped to
  // [1us, 50 * mean] so a pathological draw can neither spin nor stall
  // a round.
  std::chrono::microseconds exp_us(double mean_us) {
    double u = unit();
    if (u <= 0.0) u = 1e-12;
    double v = -mean_us * log_approx(u);
    if (v < 1.0) v = 1.0;
    if (v > 50.0 * mean_us) v = 50.0 * mean_us;
    return std::chrono::microseconds(static_cast<int64_t>(v));
  }

  // An independent derived stream (worker seeds).
  SoakRng fork(uint64_t stream) {
    return SoakRng(next() ^ (0x510ac1d5ull * (stream + 1)));
  }

 private:
  // ln(u) for u in (0, 1] without <cmath> in a hot include: atanh-series
  // on the mantissa after range reduction by halving. Accuracy ~1e-9,
  // far beyond what arrival-time jitter needs.
  static double log_approx(double u) {
    static constexpr double kLn2 = 0.6931471805599453;
    int k = 0;
    while (u < 0.5) {
      u *= 2.0;
      --k;
    }
    while (u > 1.0) {
      u *= 0.5;
      ++k;
    }
    const double y = (u - 1.0) / (u + 1.0);
    const double y2 = y * y;
    double term = y;
    double sum = 0.0;
    for (int i = 1; i < 20; i += 2) {
      sum += term / static_cast<double>(i);
      term *= y2;
    }
    return 2.0 * sum + static_cast<double>(k) * kLn2;
  }

  uint64_t state_;
};

}  // namespace rme::cts

// rme::cts - the chaos-soak subsystem (CTS-style continuous testing).
//
// A seed-reproducible, long-running adversary harness for the
// cross-process sessions stack: randomized kill storms, restart floods,
// region pressure, admission overload, pid-reuse attacks and deadline
// skew against one live shm::ShmWorld, with quiescent-point invariant
// audits between rounds and a BadNews scanner over every worker's
// captured stderr and exit status.
//
//   rng.hpp        SoakRng - the single splitmix64 randomness source
//   badnews.hpp    log scanner + exit-status classifier
//   component.hpp  SoakCtx, Arm, SoakOptions, the six adversary arms
//   audit.hpp      the five between-rounds invariant sweeps
//   soak.hpp       Soak driver, SoakReport, SOAK_JSON/SOAK_FAIL contract
//
// Driver binary: tools/rme_soak.cpp. Worker roles: tools/shm_worker.cpp
// (soak-run / soak-recover / soak-overload / soak-deadline). Docs:
// docs/soak.md.
#pragma once

#include "cts/audit.hpp"
#include "cts/badnews.hpp"
#include "cts/component.hpp"
#include "cts/rng.hpp"
#include "cts/soak.hpp"

// rme::cts components: the scenario zoo's adversaries.
//
// The pacemaker-CTS shape (SNIPPETS.md): a soak round composes an
// ordered list of ScenarioComponents against one live cluster - here one
// live shm::ShmWorld with real fork+exec'd worker processes - and audits
// run between rounds. Each component's run() performs one round's worth
// of its adversary against the shared world, drawing every decision from
// the round's SoakRng so the whole run replays from its seed:
//
//   kill_storm       Poisson-timed SIGKILLs of random load workers,
//                    each verified corpse taken over by a soak-recover
//                    respawn (epoch-fenced recovery replay under fire)
//   restart_flood    tight kill/recover cycles on one identity, killed
//                    IN the critical section every time (the arm the
//                    checker-teeth fault is guaranteed to trip)
//   region_pressure  drives a scratch region's arena to exhaustion and
//                    requires graceful refusal (Arena::try_allocate
//                    nullptr, never UB/abort) plus a clean successor
//                    region
//   overload         open-loop admission floods through gated sessions
//                    (WaitTrendAdmission) on the round's hot key
//   pid_reuse        forges a registry slot whose dead owner's OS pid
//                    has been "recycled" by a live decoy process with a
//                    mismatching /proc start time; the takeover must
//                    still proceed (pins the PR 6 liveness fix under
//                    soak conditions)
//   clock_skew       deadline-skew simulation of clock jumps: workers
//                    issue deadline verbs whose deadlines sit in the
//                    past or near-future; steady_clock discipline means
//                    skew yields timeouts, never hangs
//   pid_exhaust      fills a scratch region's ENTIRE pid registry (all
//                    kMaxProcs slots claimed by live owners), then
//                    probes that the 65th claimant is refused with a
//                    typed error - exit 2, no UB, no stderr - and that a
//                    freed slot is immediately re-claimable (the
//                    saturation regime the lockd daemon's identity pool
//                    multiplexes thousands of clients over)
//   grow_storm       rival grow-run processes hammer a scratch region's
//                    arena past its initial limit while one of them is
//                    SIGKILLed mid-flight (possibly inside region_grow
//                    with the grow guard held - the survivor must ride
//                    out the bounded guard wait); at quiescence the
//                    segment directory must audit clean: hi[] strictly
//                    increasing, last entry == published limit == the
//                    backing file's actual size
//   no_futex_flip    mixes condvar-fallback workers (RME_NO_FUTEX in the
//                    child environment) with the baseline fleet's futex
//                    parkers on the same shards, then asserts the
//                    region's wake-latency histogram gained ZERO
//                    tail-bucket samples: the open tail (>= ~2.1 s) sits
//                    past every park timeout in the tree, so a populated
//                    tail is the signature of a LOST WAKE rescued by a
//                    timeout nap (obs/metrics.hpp)
//
// Decisions are deterministic, outcomes are not: the seed replays the
// exact sequence of arm choices, kill times, victims and worker seeds,
// while the OS still schedules freely. That is the CTS trade - a failure
// report's seed re-runs the same adversary script against the same
// protocol, which in practice re-finds protocol bugs without pretending
// to replay the kernel.
#pragma once

#include <fcntl.h>
#include <stdlib.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "cts/badnews.hpp"
#include "cts/rng.hpp"
#include "harness/fork_scenario.hpp"
#include "obs/snapshot.hpp"
#include "shm/shm.hpp"
#include "svc/svc.hpp"

namespace rme::cts {

using Table = api::TableLock<platform::Real>;
using Fixture = harness::ShmKillFixture<Table>;

// ---------------------------------------------------------------------------
// Arms
// ---------------------------------------------------------------------------

enum Arm : uint32_t {
  kKillStorm = 1u << 0,
  kRestartFlood = 1u << 1,
  kRegionPressure = 1u << 2,
  kOverload = 1u << 3,
  kPidReuse = 1u << 4,
  kClockSkew = 1u << 5,
  kPidExhaust = 1u << 6,
  kNoFutexFlip = 1u << 7,
  kGrowStorm = 1u << 8,
  kAllArms = (1u << 9) - 1,
};

inline const char* arm_name(Arm a) {
  switch (a) {
    case kKillStorm: return "kill_storm";
    case kRestartFlood: return "restart_flood";
    case kRegionPressure: return "region_pressure";
    case kOverload: return "overload";
    case kPidReuse: return "pid_reuse";
    case kClockSkew: return "clock_skew";
    case kPidExhaust: return "pid_exhaust";
    case kNoFutexFlip: return "no_futex_flip";
    case kGrowStorm: return "grow_storm";
    default: return "?";
  }
}

// "kill_storm+overload" (or comma-separated) -> bitmask; 0 on any
// unknown name (callers treat that as a usage error).
inline uint32_t parse_arms(const std::string& s) {
  if (s.empty() || s == "all") return kAllArms;
  uint32_t mask = 0;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t end = s.find_first_of("+,", pos);
    if (end == std::string::npos) end = s.size();
    const std::string tok = s.substr(pos, end - pos);
    uint32_t bit = 0;
    for (uint32_t a = 1; a < kAllArms + 1; a <<= 1) {
      if (tok == arm_name(static_cast<Arm>(a))) bit = a;
    }
    if (bit == 0) return 0;
    mask |= bit;
    pos = end + 1;
    if (end == s.size()) break;
  }
  return mask;
}

inline std::string arms_to_string(uint32_t mask) {
  std::string out;
  for (uint32_t a = 1; a <= kAllArms; a <<= 1) {
    if ((mask & a) == 0) continue;
    if (!out.empty()) out += "+";
    out += arm_name(static_cast<Arm>(a));
  }
  return out.empty() ? "none" : out;
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

struct SoakOptions {
  uint64_t seed = 1;
  int procs = 4;      // baseline load workers (logical pids 0..procs-1)
  int rounds = 0;     // fixed round count; 0 = run until `duration` elapses
  std::chrono::seconds duration{30};
  int passages = 150;           // load passages per worker per round
  int dwell_us = 200;           // inter-passage dwell: keeps load workers
                                // alive across the storm window
  uint32_t arms = kAllArms;
  bool teeth = false;           // checker-teeth: workers SKIP the recovery
                                // replay (test-only flag; the soak must
                                // catch the leak it causes)
  double kill_mean_ms = 8.0;    // kill-storm Poisson arrival mean
  std::string worker;           // shm_worker binary path (required)
  std::string region;           // shm region name; auto when empty
  std::string log_dir;          // worker stderr capture dir; auto when empty
  std::chrono::milliseconds worker_timeout{20000};

  // Logical-pid map derived from `procs`. Each arm owns its pids so two
  // arms in one round never race a claim.
  int flood_pid() const { return procs; }
  int reuse_pid() const { return procs + 1; }
  int overload_pid(int i) const { return procs + 2 + i; }  // i in {0,1}
  int skew_pid(int i) const { return procs + 4 + i; }      // i in {0,1}
  int observer_pid() const { return procs + 6; }           // never claimed
  int flip_pid(int i) const { return procs + 7 + i; }      // i in {0,1}
  int npids() const { return procs + 9; }
};

// ---------------------------------------------------------------------------
// SoakCtx: one round's shared state - the world under attack, the
// choreography helpers every component drives, and the anomaly sink.
// ---------------------------------------------------------------------------

struct SoakCtx {
  SoakCtx(shm::ShmWorld& w, Fixture& f, const SoakOptions& o, SoakRng& r,
          harness::ForkScenario& s, BadNews& b)
      : world(w), fx(f), opt(o), rng(r), fs(s), badnews(b) {}

  shm::ShmWorld& world;
  Fixture& fx;
  const SoakOptions& opt;
  SoakRng& rng;
  harness::ForkScenario& fs;
  BadNews& badnews;

  int round = 0;
  uint64_t round_key = 33;  // the round's hot key (rng-drawn by the Soak)
  uint64_t kills = 0;
  uint64_t restarts = 0;
  uint64_t spawns = 0;
  std::vector<std::string> anomalies;

  // Every worker spawned this round; index into this vector is the
  // "worker handle" the helpers take.
  struct Worker {
    int child = -1;       // ForkScenario child index
    int pid = -1;         // logical pid
    std::string role;
    std::string log;      // captured-stderr path
    bool expect_kill = false;
    bool classified = false;  // exit already judged by BadNews
  };
  std::vector<Worker> workers;
  std::vector<int> live_load;  // worker handles of not-yet-killed load

  void fail(const std::string& what) {
    anomalies.push_back("round " + std::to_string(round) + ": " + what);
  }

  int spawn(int pid, const std::string& role,
            std::vector<std::string> extra) {
    std::vector<std::string> args{world.region().name(), std::to_string(pid),
                                  role};
    for (std::string& e : extra) args.push_back(std::move(e));
    const std::string log = opt.log_dir + "/r" + std::to_string(round) +
                            "_p" + std::to_string(pid) + "_s" +
                            std::to_string(spawns) + ".log";
    const int child = fs.spawn(opt.worker, args, log);
    ++spawns;
    workers.push_back(Worker{child, pid, role, log, false, false});
    return static_cast<int>(workers.size()) - 1;
  }

  // The recovery respawn for a corpse's pid. Carries the checker-teeth
  // flag: under --teeth the worker's recovery hook deliberately skips
  // the replay, and the between-round lease audit MUST catch the leak.
  int spawn_recover(int pid, int passages) {
    std::vector<std::string> extra{std::to_string(passages),
                                   std::to_string(round_key)};
    if (opt.teeth) extra.push_back("teeth");
    ++restarts;
    return spawn(pid, "soak-recover", std::move(extra));
  }

  void kill_worker(int w) {
    workers[static_cast<size_t>(w)].expect_kill = true;
    fs.kill_child(workers[static_cast<size_t>(w)].child);
    ++kills;
  }

  // Reap `w` and report whether it actually died by our SIGKILL (false:
  // it won the race and exited clean - also acceptable). Classifies the
  // exit for BadNews exactly once.
  bool reap_died_by_kill(int w) {
    Worker& wk = workers[static_cast<size_t>(w)];
    const int st = fs.wait_child(wk.child);
    if (!wk.classified) {
      badnews.note_exit(tag(wk), st, wk.expect_kill);
      wk.classified = true;
    }
    return WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL;
  }

  bool await_stage(int pid, harness::Stage s, const char* who) {
    if (fx.board.await(pid, s, opt.worker_timeout)) return true;
    fail(std::string(who) + ": pid " + std::to_string(pid) +
         " never reached stage " +
         std::to_string(static_cast<uint32_t>(s)) + " (hang)");
    return false;
  }

  void reset_stage(int pid) {
    fx.board.announce(pid, harness::Stage::kIdle);
  }

  std::string tag(const Worker& w) const {
    return "[round " + std::to_string(round) + " pid " +
           std::to_string(w.pid) + " " + w.role + "]";
  }
};

// ---------------------------------------------------------------------------
// Component interface
// ---------------------------------------------------------------------------

class Component {
 public:
  virtual ~Component() = default;
  virtual Arm arm() const = 0;
  const char* name() const { return arm_name(arm()); }
  // One round's worth of this adversary. Must leave every pid it spawned
  // either awaited-done or registered for the round's finish sweep.
  virtual void run(SoakCtx& ctx) = 0;
};

// ---------------------------------------------------------------------------
// kill_storm: Poisson-timed SIGKILLs of the baseline load fleet.
// ---------------------------------------------------------------------------

class KillStorm final : public Component {
 public:
  Arm arm() const override { return kKillStorm; }

  void run(SoakCtx& ctx) override {
    if (ctx.live_load.empty()) return;
    const int strikes =
        1 + static_cast<int>(ctx.rng.below(ctx.live_load.size()));
    std::vector<int> victims;
    for (int k = 0; k < strikes && !ctx.live_load.empty(); ++k) {
      std::this_thread::sleep_for(
          ctx.rng.exp_us(ctx.opt.kill_mean_ms * 1000.0));
      const size_t pick = ctx.rng.below(ctx.live_load.size());
      const int w = ctx.live_load[pick];
      ctx.live_load.erase(ctx.live_load.begin() +
                          static_cast<long>(pick));
      // Only strike workers whose claim handshake completed (announced
      // kClaimed or beyond): a SIGKILL inside the two-store claim window
      // would leave the slot stuck busy - a documented capacity decay,
      // not the protocol bug this soak hunts.
      if (ctx.fx.board.stage_of(ctx.workers[static_cast<size_t>(w)].pid) ==
          harness::Stage::kIdle) {
        continue;
      }
      ctx.kill_worker(w);
      victims.push_back(w);
    }
    // Every verified corpse gets an epoch-fenced successor; a victim
    // that won the race (exited clean before the signal landed) needs
    // none - its slot was released.
    for (int w : victims) {
      if (!ctx.reap_died_by_kill(w)) continue;
      const int pid = ctx.workers[static_cast<size_t>(w)].pid;
      ctx.reset_stage(pid);
      ctx.spawn_recover(pid, ctx.opt.passages / 4 + 1);
    }
  }
};

// ---------------------------------------------------------------------------
// restart_flood: tight kill-in-CS / takeover cycles on one identity.
// ---------------------------------------------------------------------------

class RestartFlood final : public Component {
 public:
  Arm arm() const override { return kRestartFlood; }

  void run(SoakCtx& ctx) override {
    const int pid = ctx.opt.flood_pid();
    const int cycles = 2 + static_cast<int>(ctx.rng.below(3));
    for (int c = 0; c < cycles; ++c) {
      ctx.reset_stage(pid);
      const int w = ctx.spawn(pid, "freeze-cs",
                              {std::to_string(ctx.round_key)});
      if (!ctx.await_stage(pid, harness::Stage::kInCs, "restart_flood")) {
        ctx.kill_worker(w);
        ctx.reap_died_by_kill(w);
        return;
      }
      ctx.kill_worker(w);  // dies holding the CS, every cycle
      if (!ctx.reap_died_by_kill(w)) {
        ctx.fail("restart_flood: frozen worker was not killable");
        return;
      }
      ctx.reset_stage(pid);
      const int r = ctx.spawn_recover(pid, 2);
      if (!ctx.await_stage(pid, harness::Stage::kDone, "restart_flood")) {
        ctx.kill_worker(r);
        ctx.reap_died_by_kill(r);
        return;
      }
      ctx.reap_died_by_kill(r);  // classifies; clean exit expected
    }
  }
};

// ---------------------------------------------------------------------------
// region_pressure: drive a scratch region's arena to exhaustion; require
// graceful refusal and a clean successor region. Side-band on purpose -
// arena memory is never freed, so exhausting the SOAK region would be
// self-sabotage, not a scenario.
// ---------------------------------------------------------------------------

class RegionPressure final : public Component {
 public:
  Arm arm() const override { return kRegionPressure; }

  void run(SoakCtx& ctx) override {
    const std::string name = ctx.world.region().name() + "_pr" +
                             std::to_string(ctx.round % 100);
    try {
      auto scratch =
          shm::ShmWorld::create(name, 1 << 20, 2, /*ring_slots=*/2);
      // Coarse fill, then fine fill: the arena must hand out every byte
      // it can and refuse the rest with nullptr - never abort, never
      // overlap.
      size_t grabs = 0;
      while (scratch.env.arena.try_allocate(4096, 64) != nullptr) {
        if (++grabs > (1u << 20)) {
          ctx.fail("region_pressure: arena never exhausted (overlap?)");
          return;
        }
      }
      while (scratch.env.arena.try_allocate(64, 8) != nullptr) {
        if (++grabs > (1u << 21)) {
          ctx.fail("region_pressure: fine fill never exhausted");
          return;
        }
      }
      if (scratch.env.arena.try_allocate(8, 8) != nullptr) {
        ctx.fail("region_pressure: allocation succeeded past exhaustion");
      }
      const uint64_t cursor = scratch.region().header()->cursor.load(
          std::memory_order_relaxed);
      if (cursor > scratch.region().bytes()) {
        ctx.fail("region_pressure: cursor overshot the region limit");
      }
    } catch (const shm::ShmError& e) {
      ctx.fail(std::string("region_pressure: scratch region failed: ") +
               e.what());
      return;
    }
    // Recovery: the scratch region is gone (unlinked by its destructor);
    // a successor with the same name must create and allocate cleanly.
    try {
      auto again = shm::ShmWorld::create(name, 1 << 20, 2, /*ring_slots=*/2);
      if (again.env.arena.try_allocate(256, 64) == nullptr) {
        ctx.fail("region_pressure: successor region refused a small alloc");
      }
    } catch (const shm::ShmError& e) {
      ctx.fail(std::string("region_pressure: successor create failed: ") +
               e.what());
    }
  }
};

// ---------------------------------------------------------------------------
// grow_storm: rival growers vs SIGKILL. Two grow-run processes hammer a
// scratch region's arena with allocations that overflow its initial
// limit; one is killed mid-flight - possibly inside region_grow with the
// grow guard claimed, which the survivor must ride out via the bounded
// guard wait. Side-band like region_pressure (growth is one-way; storming
// the soak region would just bloat it). The quiescent audit pins the
// segment-directory invariant from shm/region.hpp: hi[] strictly
// increasing, hi[count-1] == limit == fstat(file).st_size.
// ---------------------------------------------------------------------------

class GrowStorm final : public Component {
 public:
  Arm arm() const override { return kGrowStorm; }

  void run(SoakCtx& ctx) override {
    const std::string name = ctx.world.region().name() + "_gs" +
                             std::to_string(ctx.round % 100);
    try {
      auto scratch =
          shm::ShmWorld::create(name, 1 << 20, 4, /*ring_slots=*/2);
      // Publish: attach() blocks on the ready flag that create_root sets;
      // without a root the growers would time out, not grow.
      scratch.create_root<uint64_t>(0);
      // Scratch-world pids (its registry, not the soak world's). Enough
      // demand per grower (600 x 4k = ~2.4 MB) to force several grows.
      const std::string log_a = ctx.opt.log_dir + "/r" +
                                std::to_string(ctx.round) + "_gsA.log";
      const std::string log_b = ctx.opt.log_dir + "/r" +
                                std::to_string(ctx.round) + "_gsB.log";
      const int a = ctx.fs.spawn(ctx.opt.worker,
                                 {name, "0", "grow-run", "4096", "600"},
                                 log_a);
      const int b = ctx.fs.spawn(ctx.opt.worker,
                                 {name, "1", "grow-run", "4096", "600"},
                                 log_b);
      ctx.spawns += 2;
      // Strike one grower mid-storm. Landing inside region_grow leaves
      // the guard claimed - a documented capacity decay the survivor
      // rides out, never a hang or a torn directory.
      std::this_thread::sleep_for(ctx.rng.exp_us(300.0));
      ctx.fs.kill_child(a);
      ++ctx.kills;
      const int st_a = ctx.fs.wait_child(a);
      ctx.badnews.note_exit("[round " + std::to_string(ctx.round) +
                                " grow_storm victim]",
                            st_a, /*expected_kill=*/true);
      const int st_b = ctx.fs.wait_child(b);
      ctx.badnews.note_exit("[round " + std::to_string(ctx.round) +
                                " grow_storm survivor]",
                            st_b, /*expected_kill=*/false);
      if (!(WIFEXITED(st_b) && WEXITSTATUS(st_b) == 0)) {
        ctx.fail("grow_storm: surviving grower landed no allocation");
      }
      // Quiescent segment-directory audit.
      const shm::RegionHeader* h = scratch.region().header();
      const uint64_t limit = h->limit.load(std::memory_order_acquire);
      const uint32_t n = h->segs.count.load(std::memory_order_acquire);
      if (n == 0) {
        ctx.fail("grow_storm: empty segment directory");
        return;
      }
      uint64_t prev = 0;
      for (uint32_t i = 0; i < n; ++i) {
        const uint64_t hi = h->segs.hi[i].load(std::memory_order_acquire);
        if (hi <= prev) {
          ctx.fail("grow_storm: segment directory not strictly "
                   "increasing at entry " + std::to_string(i));
          return;
        }
        prev = hi;
      }
      if (prev != limit) {
        ctx.fail("grow_storm: last segment " + std::to_string(prev) +
                 " != published limit " + std::to_string(limit));
      }
      const int fd = ::shm_open(scratch.region().name().c_str(),
                                O_RDONLY, 0);
      if (fd >= 0) {
        struct stat st {};
        if (::fstat(fd, &st) == 0 &&
            static_cast<uint64_t>(st.st_size) != limit) {
          ctx.fail("grow_storm: backing file " +
                   std::to_string(st.st_size) + " bytes != limit " +
                   std::to_string(limit));
        }
        ::close(fd);
      }
    } catch (const shm::ShmError& e) {
      ctx.fail(std::string("grow_storm: scratch region failed: ") +
               e.what());
    }
  }
};

// ---------------------------------------------------------------------------
// overload: open-loop admission floods through gated sessions.
// ---------------------------------------------------------------------------

class Overload final : public Component {
 public:
  Arm arm() const override { return kOverload; }

  void run(SoakCtx& ctx) override {
    for (int i = 0; i < 2; ++i) {
      const int pid = ctx.opt.overload_pid(i);
      ctx.reset_stage(pid);
      ctx.spawn(pid, "soak-overload",
                {std::to_string(ctx.opt.passages * 2),
                 std::to_string(ctx.round_key)});
    }
    // Awaited by the round's finish sweep (Soak::finish_round).
  }
};

// ---------------------------------------------------------------------------
// pid_reuse: the deliberate pid-recycling attack. A dead incarnation's
// recorded OS pid is "recycled" by a live decoy process with a different
// /proc start time; the successor's takeover must see through it.
// ---------------------------------------------------------------------------

class PidReuse final : public Component {
 public:
  Arm arm() const override { return kPidReuse; }

  void run(SoakCtx& ctx) override {
    const int pid = ctx.opt.reuse_pid();
    // Stage the corpse the honest way: a worker dies by SIGKILL inside
    // the CS, leaving a held shard and a claimed slot.
    ctx.reset_stage(pid);
    const int w =
        ctx.spawn(pid, "freeze-cs", {std::to_string(ctx.round_key)});
    if (!ctx.await_stage(pid, harness::Stage::kInCs, "pid_reuse")) {
      ctx.kill_worker(w);
      ctx.reap_died_by_kill(w);
      return;
    }
    ctx.kill_worker(w);
    if (!ctx.reap_died_by_kill(w)) {
      ctx.fail("pid_reuse: frozen worker was not killable");
      return;
    }
    // A live decoy whose OS pid will impersonate the dead owner. Plain
    // fork (no exec): it never attaches the region - it exists only to
    // be alive with the wrong birth tick.
    const pid_t decoy = ::fork();
    if (decoy == 0) {
      for (;;) ::pause();
    }
    if (decoy < 0) {
      ctx.fail("pid_reuse: decoy fork failed");
      return;
    }
    // Forge the slot: the recorded owner becomes the LIVE decoy with a
    // start time that cannot match /proc's - exactly what the kernel
    // recycling the dead owner's pid onto an unrelated process looks
    // like.
    auto& slot = ctx.world.region().header()->slots[pid];
    slot.start_time.store(shm::proc_start_time(decoy) + 977,
                          std::memory_order_release);
    slot.os_pid.store(static_cast<int64_t>(decoy),
                      std::memory_order_release);
    // The successor must judge the decoy an impostor, take the slot over
    // and replay the dead incarnation's recovery. A busy-slot exit
    // (code 2) here IS the regression this arm exists to catch.
    ctx.reset_stage(pid);
    const int r = ctx.spawn_recover(pid, 2);
    if (ctx.await_stage(pid, harness::Stage::kDone, "pid_reuse")) {
      ctx.reap_died_by_kill(r);  // classifies; clean exit expected
    }
    ::kill(decoy, SIGKILL);
    int st = 0;
    ::waitpid(decoy, &st, 0);
  }
};

// ---------------------------------------------------------------------------
// clock_skew: deadline-skew simulation of wall-clock jumps. Workers run
// deadline verbs whose deadlines are randomly already-expired or a few
// hundred microseconds out; with every wait path on steady_clock, skew
// can only produce timeouts - a worker that HANGS here is the bug.
// ---------------------------------------------------------------------------

class ClockSkew final : public Component {
 public:
  Arm arm() const override { return kClockSkew; }

  void run(SoakCtx& ctx) override {
    for (int i = 0; i < 2; ++i) {
      const int pid = ctx.opt.skew_pid(i);
      ctx.reset_stage(pid);
      ctx.spawn(pid, "soak-deadline",
                {std::to_string(ctx.opt.passages),
                 std::to_string(ctx.round_key),
                 std::to_string(ctx.rng.fork(static_cast<uint64_t>(pid))
                                    .next())});
    }
    // Awaited by the round's finish sweep.
  }
};

// ---------------------------------------------------------------------------
// pid_exhaust: registry saturation. Every one of a scratch region's
// kMaxProcs slots is claimed by THIS (live) process, then a real child
// process probes the full registry: the claim must be refused with the
// typed busy verdict (exit 2, silent), and releasing one slot must make
// exactly that pid claimable again. A SCRATCH world keeps the saturation
// away from the main soak's pid map; probes are reaped directly (their
// exit-2 verdict is the expected outcome, not BadNews).
// ---------------------------------------------------------------------------

class PidExhaust final : public Component {
 public:
  Arm arm() const override { return kPidExhaust; }

  void run(SoakCtx& ctx) override {
    const std::string name = ctx.world.region().name() + "_px" +
                             std::to_string(ctx.round % 100);
    try {
      auto scratch =
          shm::ShmWorld::create(name, 4 << 20, shm::kMaxProcs,
                                /*ring_slots=*/2);
      // Publish: attach() blocks on the ready flag that create_root sets;
      // without a root the probe children would time out, not bounce.
      scratch.create_root<uint64_t>(0);
      std::vector<shm::ShmWorld::Identity> ids;
      ids.reserve(shm::kMaxProcs);
      for (int pid = 0; pid < shm::kMaxProcs; ++pid) {
        ids.push_back(scratch.claim(pid));
      }
      // Full registry: a probe against any slot must bounce (exit 2).
      const int victim =
          static_cast<int>(ctx.rng.below(shm::kMaxProcs));
      if (probe(ctx, name, victim) != 2) {
        ctx.fail("pid_exhaust: claim of a live slot did not bounce");
      }
      // Free exactly one slot: that pid (and only it) claims again.
      scratch.release(ids[static_cast<size_t>(victim)]);
      if (probe(ctx, name, victim) != 0) {
        ctx.fail("pid_exhaust: freed slot was not re-claimable");
      }
      const int still = (victim + 1) % shm::kMaxProcs;
      if (probe(ctx, name, still) != 2) {
        ctx.fail("pid_exhaust: neighbouring live slot did not bounce");
      }
      for (int pid = 0; pid < shm::kMaxProcs; ++pid) {
        if (pid != victim) scratch.release(ids[static_cast<size_t>(pid)]);
      }
    } catch (const shm::ShmError& e) {
      ctx.fail(std::string("pid_exhaust: scratch world failed: ") +
               e.what());
    }
  }

 private:
  // Run one claim-probe child to completion and return its exit code
  // (-1: died abnormally). Reaped here, not by the finish sweep: exit 2
  // is this arm's EXPECTED verdict, which the BadNews nonzero-exit rule
  // would misread as an anomaly.
  int probe(SoakCtx& ctx, const std::string& region, int pid) {
    const std::string log = ctx.opt.log_dir + "/r" +
                            std::to_string(ctx.round) + "_px_p" +
                            std::to_string(pid) + "_s" +
                            std::to_string(ctx.spawns) + ".log";
    const int child = ctx.fs.spawn(
        ctx.opt.worker,
        {region, std::to_string(pid), "claim-probe"}, log);
    ++ctx.spawns;
    const int st = ctx.fs.wait_child(child);
    if (!WIFEXITED(st)) return -1;
    return WEXITSTATUS(st);
  }
};

// ---------------------------------------------------------------------------
// no_futex_flip: the lost-wake hunt. One worker runs with the futex lot
// RUNTIME-disabled (RME_NO_FUTEX set in the child's environment before
// the fork+exec - set_futex_enabled is per-process, so the parent's
// setenv/unsetenv window is how a child inherits the flip), one runs
// futex-parked, both against the baseline fleet on the round's shards.
// A condvar-mode worker never stamps or consumes wake stamps, so mixing
// the modes cannot manufacture a false positive; what CAN go wrong is a
// futex waiter missing its wake and being rescued by its bounded nap -
// which lands the stamp-to-running latency in the wake histogram's open
// tail (>= ~2.1 s, past every park timeout). The arm asserts that tail
// gained exactly zero samples.
// ---------------------------------------------------------------------------

class NoFutexFlip final : public Component {
 public:
  Arm arm() const override { return kNoFutexFlip; }

  void run(SoakCtx& ctx) override {
    const uint64_t tail0 = wake_tail(ctx);
    int handles[2];
    for (int i = 0; i < 2; ++i) {
      const int pid = ctx.opt.flip_pid(i);
      ctx.reset_stage(pid);
      if (i == 0) ::setenv("RME_NO_FUTEX", "1", 1);
      handles[i] = ctx.spawn(pid, "soak-run",
                             {std::to_string(ctx.opt.passages),
                              std::to_string(ctx.round_key),
                              std::to_string(ctx.opt.dwell_us)});
      if (i == 0) ::unsetenv("RME_NO_FUTEX");
    }
    for (int i = 0; i < 2; ++i) {
      if (!ctx.await_stage(ctx.opt.flip_pid(i), harness::Stage::kDone,
                           "no_futex_flip")) {
        ctx.kill_worker(handles[i]);
        ctx.reap_died_by_kill(handles[i]);
        return;
      }
      ctx.reap_died_by_kill(handles[i]);  // classifies; clean exit expected
    }
    const uint64_t tail1 = wake_tail(ctx);
    if (tail1 != tail0) {
      ctx.fail("no_futex_flip: wake-latency tail grew " +
               std::to_string(tail0) + " -> " + std::to_string(tail1) +
               " (lost futex wake rescued by a timeout nap)");
    }
  }

 private:
  static uint64_t wake_tail(SoakCtx& ctx) {
    const obs::Snapshot s =
        obs::Snapshot::read(ctx.world.metrics(), ctx.opt.npids());
    return s.wake_tail(obs::Hist::kBuckets - 1);
  }
};

}  // namespace rme::cts

// Signal object (paper Section 2).
//
//   Specification (Figure 1): X.State in {0,1}, initially 0.
//     X.set()  - sets State to 1.          O(1) RMR, wait-free.
//     X.wait() - returns once State is 1.  O(1) RMR on CC *and* DSM,
//                provided no two wait() executions are concurrent.
//
//   Implementation (Figure 2, DSM-capable):
//     set():  Bit <- 1; addr <- GoAddr; if addr != NIL then *addr <- true
//     wait(): go <- new Boolean(false); GoAddr <- go;
//             if Bit == 0 then wait till *go == true
//
// Differences from the paper, both forced by making the object reusable in
// a long-running library (the paper allocates a fresh boolean per wait and
// a fresh Signal per queue node, and never reclaims either):
//
//   1. The waiter's spin cell comes from a per-port FlagRing and carries a
//      64-bit tag unique to this wait attempt (see nvm/flag_ring.hpp). The
//      setter writes the tag it observed; the waiter spins for *its* tag,
//      so a laggard setter addressing a recycled cell cannot produce a
//      spurious wake.
//   2. GoAddr is split into two cells (slot pointer + tag). They are not
//      written atomically together, but the paper's own Bit handshake
//      covers the race: the waiter publishes (tag, slot) *before* checking
//      Bit, and the setter writes Bit *before* reading (slot, tag) - both
//      with seq_cst, a Dekker handshake. If the setter reads a torn or
//      stale pair, the waiter's publish must have overlapped the set, so
//      the waiter's Bit check sees 1 and it never sleeps; the stray write
//      lands on a tag nobody waits for.
//
// Crash-safety: both procedures are re-executable from the top. A waiter
// that crashes mid-wait re-publishes a fresh slot+tag and re-checks Bit; a
// setter that crashes mid-set re-runs all of set() (it re-reads GoAddr, so
// a waiter that published after the first, incomplete set is still woken -
// this is exactly why set() must NOT short-circuit on Bit == 1).
#pragma once

#include <atomic>

#include "nvm/flag_ring.hpp"
#include "platform/platform.hpp"
#include "shm/offptr.hpp"

namespace rme::signal {

template <class P>
class Signal {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;
  using Ring = nvm::FlagRing<P>;

  Signal() = default;

  void attach(Env& env, int owner_pid) {
    bit_.attach(env, owner_pid);
    go_slot_.attach(env, owner_pid);
    go_tag_.attach(env, owner_pid);
  }

  // Raw (pre-run / recycling-time) state control. reset() may only be
  // called when no process can reach this Signal (fresh node or a node
  // whose QSBR grace period has elapsed).
  void init_set() { bit_.init(1); }
  void init_clear() {
    bit_.init(0);
    go_slot_.init(nullptr);
    go_tag_.init(0);
  }
  // In-run reset through a context (counted as shared writes).
  void reset(Ctx& ctx) {
    bit_.store(ctx, 0, std::memory_order_relaxed);
    go_slot_.store(ctx, nullptr, std::memory_order_relaxed);
    go_tag_.store(ctx, 0, std::memory_order_relaxed);
  }

  // X.set() - Figure 2 Lines 1-4.
  void set(Ctx& ctx) {
    bit_.store(ctx, 1, std::memory_order_seq_cst);               // L1
    nvm::GoFlag<P>* slot = go_slot_.load(ctx, std::memory_order_seq_cst);  // L2
    const uint64_t tag = go_tag_.load(ctx, std::memory_order_seq_cst);
    // The slot just read IS the successor's spin cell (it lives in the
    // waiting pid's flag ring), so the setter has learned exactly who it
    // is waking. Record it as the context's wake hint: a release path
    // (svc) hands it to WaitPolicy::on_release, where a region parking
    // lot resolves it to the next-in-queue pid's wait word. Host-memory
    // write, not a shared op - RMR accounting is untouched.
    ctx.wake_hint = slot;
    if (slot != nullptr) {                                       // L3
      slot->value.store(ctx, tag, std::memory_order_release);    // L4
    }
  }

  // X.wait() - Figure 2 Lines 5-9. `ring` must belong to the calling port.
  void wait(Ctx& ctx, Ring& ring) {
    typename Ring::Wait w = ring.begin_wait(ctx);                // L5-6
    go_tag_.store(ctx, w.tag, std::memory_order_seq_cst);        // L7 (tag first:
    go_slot_.store(ctx, w.flag, std::memory_order_seq_cst);      //  see header)
    if (bit_.load(ctx, std::memory_order_seq_cst) == 1) return;  // L8
    platform::Waiter wtr;
    while (w.flag->value.load(ctx, std::memory_order_acquire) != w.tag) {
      wtr.pause(ctx, w.flag);                                    // L9
    }
  }

  // Non-blocking probe (used by tests and by the CC fast path of callers
  // that already know the state).
  bool is_set(Ctx& ctx) const {
    return bit_.load(ctx, std::memory_order_acquire) == 1;
  }

 private:
  typename P::template Atomic<int> bit_;
  // GoAddr is a cross-process link (the waiter's spin cell lives in the
  // waiter's flag ring, inside the region): self-relative so the setter
  // decodes it at its own attach base.
  shm::AtomicRef<P, nvm::GoFlag<P>> go_slot_;
  typename P::template Atomic<uint64_t> go_tag_;
};

// Trivial CC-only Signal (Section 2.1, first paragraph): a single bit; the
// waiter spins on it, which is cache-local on CC but incurs unbounded RMRs
// on DSM. Kept as the ablation baseline for experiment E1.
template <class P>
class BitSignal {
 public:
  using Ctx = typename P::Context;
  using Env = typename P::Env;

  void attach(Env& env, int owner_pid) { bit_.attach(env, owner_pid); }
  void init_set() { bit_.init(1); }
  void init_clear() { bit_.init(0); }

  void set(Ctx& ctx) { bit_.store(ctx, 1, std::memory_order_seq_cst); }
  void wait(Ctx& ctx) {
    while (bit_.load(ctx, std::memory_order_acquire) == 0) P::pause();
  }
  bool is_set(Ctx& ctx) const {
    return bit_.load(ctx, std::memory_order_acquire) == 1;
  }

 private:
  typename P::template Atomic<int> bit_;
};

}  // namespace rme::signal

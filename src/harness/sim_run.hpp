// SimRun: deterministic multi-process execution with crash injection.
//
// Spawns one worker thread per simulated process, but execution is
// strictly serialised by sim::Scheduler: exactly one process advances at a
// time and control changes hands only at shared-memory operations, so a
// (policy, seed, crash-plan) triple fully determines the interleaving -
// the paper's model of runs as sequences of normal and crash steps.
//
// Each process repeatedly executes a caller-supplied body (canonically one
// super-passage: lock -> critical section -> unlock). A crash step throws
// sim::ProcessCrashed out of the body; the driver catches it and re-enters
// the body from the top - exactly "the program counter is reset to the
// default location" (Section 1.1). Locals are lost because the body's
// stack unwinds; NVM state (the lock structures) survives.
//
// ExclusionChecker hooks validate, on every run:
//   * mutual exclusion (at most one process between on_enter/on_exit),
//   * CSR (after a crash in the CS, nobody else may enter until the
//     crashed process re-enters),
//   * scratch-cell write/read-back inside the CS (catches overlap that the
//     bookkeeping alone could miss).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/audit.hpp"
#include "harness/world.hpp"
#include "platform/process.hpp"
#include "sim/crash_plan.hpp"
#include "sim/scheduler.hpp"
#include "util/assert.hpp"

namespace rme::harness {

using SimP = platform::Counted;
using SimProc = platform::Process<SimP>;

// The serial-access ME/CSR property checker now lives in harness/audit.hpp
// as ExclusionAudit (re-exported here under its historical name
// ExclusionChecker): the Scenario framework fans the same hooks out to an
// arbitrary audit set, and SimRun keeps one built in for direct users.

class SimRun {
 public:
  // Body runs one super-passage; it must be re-entrant from the top after
  // a ProcessCrashed unwind (that is the recovery contract under test).
  using Body = std::function<void(SimProc&, int pid)>;

  struct Result {
    std::vector<uint64_t> completions;  // per pid
    std::vector<uint64_t> crashes;      // per pid
    uint64_t steps = 0;
    bool exhausted = false;  // hit max_steps with work remaining
  };

  SimRun(ModelKind kind, int nprocs, size_t ring_slots = 256)
      : world_(kind, nprocs, ring_slots), nprocs_(nprocs) {}

  CountedWorld& world() { return world_; }
  ExclusionChecker& checker() { return checker_; }

  // Run every process for `iterations` completed bodies (0 = this pid does
  // not participate), under `policy` and `crash`, bounded by max_steps.
  Result run(sim::SchedulePolicy& policy, sim::CrashPlan& crash,
             const std::vector<uint64_t>& iterations, uint64_t max_steps) {
    RME_ASSERT(static_cast<int>(iterations.size()) == nprocs_,
               "SimRun: iterations size mismatch");
    sim::Scheduler sched(nprocs_, &policy);
    Result res;
    res.completions.assign(static_cast<size_t>(nprocs_), 0);
    res.crashes.assign(static_cast<size_t>(nprocs_), 0);

    sched.begin(nprocs_);
    for (int pid = 0; pid < nprocs_; ++pid) {
      SimProc& h = world_.proc(pid);
      h.ctx.sched = &sched;
      h.ctx.crash = &crash;
      sched.set_live(pid, iterations[static_cast<size_t>(pid)] > 0);
    }

    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(nprocs_));
    for (int pid = 0; pid < nprocs_; ++pid) {
      workers.emplace_back([&, pid] {
        worker(sched, pid, iterations[static_cast<size_t>(pid)], res);
      });
    }

    res.steps = sched.run(max_steps);
    // Work remaining?
    for (int pid = 0; pid < nprocs_; ++pid) {
      if (res.completions[static_cast<size_t>(pid)] <
          iterations[static_cast<size_t>(pid)]) {
        res.exhausted = true;
      }
    }
    sched.stop();
    for (auto& t : workers) t.join();
    for (int pid = 0; pid < nprocs_; ++pid) {
      world_.proc(pid).ctx.sched = nullptr;
      world_.proc(pid).ctx.crash = nullptr;
    }
    return res;
  }

  void set_body(Body body) { body_ = std::move(body); }

 private:
  void worker(sim::Scheduler& sched, int pid, uint64_t iterations,
              Result& res) {
    SimProc& h = world_.proc(pid);
    sched.acquire_baton(pid);
    try {
      uint64_t done = 0;
      while (!sched.stopping() && done < iterations) {
        try {
          body_(h, pid);
          ++done;
          ++res.completions[static_cast<size_t>(pid)];
        } catch (const sim::ProcessCrashed&) {
          ++res.crashes[static_cast<size_t>(pid)];
          // PC reset to Remainder; loop re-enters the body (Try).
        }
      }
    } catch (const sim::RunTornDown&) {
      return;  // run ended while this process was mid-body
    }
    if (!sched.stopping()) sched.park(pid, /*final_exit=*/true);
  }

  CountedWorld world_;
  ExclusionChecker checker_;
  Body body_;
  int nprocs_;
};

// Canonical lock-exercising body: lock, verified critical section with a
// few shared operations (so the CS spans scheduling points), unlock.
// Works for any lock exposing lock(Proc&, int)/unlock(Proc&, int).
template <class Lock>
class LockBody {
 public:
  LockBody(Lock& lock, CountedWorld& w, ExclusionChecker& chk, int cs_ops = 2)
      : lock_(lock), chk_(chk), cs_ops_(cs_ops) {
    scratch_.attach(w.env, rmr::kNoOwner);
    scratch_.init(-1);
  }

  void operator()(SimProc& h, int pid) {
    lock_.lock(h, pid);
    chk_.on_enter(pid);
    bool crashed_in_cs = true;  // until we reach on_exit
    try {
      for (int i = 0; i < cs_ops_; ++i) {
        scratch_.store(h.ctx, pid);
        const int seen = scratch_.load(h.ctx);
        if (seen != pid) {
          // Someone else wrote while we were in the CS.
          RME_ASSERT(false, "LockBody: CS scratch overwritten - ME broken");
        }
      }
      crashed_in_cs = false;
      chk_.on_exit(pid);
      lock_.unlock(h, pid);
    } catch (const sim::ProcessCrashed&) {
      if (crashed_in_cs) {
        chk_.on_crash_in_cs(pid);
      }
      throw;
    }
  }

 private:
  Lock& lock_;
  ExclusionChecker& chk_;
  typename SimP::template Atomic<int> scratch_;
  int cs_ops_;
};

}  // namespace rme::harness

// Audits: pluggable run-time property checkers for the Scenario harness.
//
// An audit observes a run through hooks invoked by the workload body
// (enter/exit of a critical section, crash inside the CS, completed body)
// and renders a verdict afterwards. Scenarios hold an ordered AuditSet and
// fan every hook out to each audit, so one run can be checked for mutual
// exclusion, critical-section re-entry (CSR) and RMR bounds at once.
//
// Multi-lock workloads (the sharded lock table) pass the lock index as
// `slot`; single-lock workloads use the default slot 0. All audit state is
// guarded by a per-audit mutex: in the deterministic simulator the lock is
// uncontended, and on real threads the hooks are called concurrently.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "harness/world.hpp"
#include "platform/platform.hpp"
#include "util/assert.hpp"

namespace rme::harness {

class Audit {
 public:
  virtual ~Audit() = default;
  virtual const char* name() const = 0;

  // Hooks (defaults: ignore). `slot` identifies the lock for sharded runs.
  virtual void on_enter(int /*pid*/, int /*slot*/ = 0) {}
  virtual void on_exit(int /*pid*/, int /*slot*/ = 0) {}
  virtual void on_crash_in_cs(int /*pid*/, int /*slot*/ = 0) {}
  virtual void on_body_complete(int /*pid*/) {}

  // Verdict after the run. Append human-readable findings to `failures`
  // and return false on violation.
  virtual bool check(std::vector<std::string>& failures) const = 0;
};

// ---------------------------------------------------------------------------
// ExclusionAudit: mutual exclusion + CSR, per slot.
//
//   * ME: at most one process between on_enter/on_exit of a slot, and only
//     the owner may exit.
//   * CSR: after a crash inside the CS of a slot, no other process may
//     enter that slot until the crashed process has re-entered.
//
// This is the historical ExclusionChecker, generalised to multiple slots;
// the old name survives as an alias and the old single-slot calls hit the
// defaulted-slot overloads unchanged.
// ---------------------------------------------------------------------------
class ExclusionAudit final : public Audit {
 public:
  explicit ExclusionAudit(int slots = 1)
      : slots_(static_cast<size_t>(slots)) {}

  const char* name() const override { return "exclusion"; }

  void on_enter(int pid, int slot = 0) override {
    std::lock_guard<std::mutex> g(mu_);
    Slot& s = at(slot);
    if (s.in_cs) ++me_violations_;
    s.in_cs = true;
    s.owner = pid;
    if (s.csr_pending) {
      if (pid == s.csr_pid) {
        s.csr_pending = false;  // crashed process re-entered first: OK
      } else {
        ++csr_violations_;
      }
    }
    ++entries_;
  }

  void on_exit(int pid, int slot = 0) override {
    std::lock_guard<std::mutex> g(mu_);
    Slot& s = at(slot);
    if (!s.in_cs || s.owner != pid) ++me_violations_;
    s.in_cs = false;
    s.owner = -1;
  }

  // The body crashed while logically inside the CS of `slot`.
  void on_crash_in_cs(int pid, int slot = 0) override {
    std::lock_guard<std::mutex> g(mu_);
    Slot& s = at(slot);
    s.in_cs = false;
    s.owner = -1;
    s.csr_pending = true;
    s.csr_pid = pid;
  }

  bool check(std::vector<std::string>& failures) const override {
    std::lock_guard<std::mutex> g(mu_);
    if (me_violations_ != 0) {
      failures.push_back("exclusion: " + std::to_string(me_violations_) +
                         " mutual-exclusion violation(s)");
    }
    if (csr_violations_ != 0) {
      failures.push_back("exclusion: " + std::to_string(csr_violations_) +
                         " CSR violation(s)");
    }
    return me_violations_ == 0 && csr_violations_ == 0;
  }

  uint64_t me_violations() const {
    std::lock_guard<std::mutex> g(mu_);
    return me_violations_;
  }
  uint64_t csr_violations() const {
    std::lock_guard<std::mutex> g(mu_);
    return csr_violations_;
  }
  uint64_t entries() const {
    std::lock_guard<std::mutex> g(mu_);
    return entries_;
  }
  bool in_cs(int slot = 0) const {
    std::lock_guard<std::mutex> g(mu_);
    return const_cast<ExclusionAudit*>(this)->at(slot).in_cs;
  }
  int owner(int slot = 0) const {
    std::lock_guard<std::mutex> g(mu_);
    return const_cast<ExclusionAudit*>(this)->at(slot).owner;
  }

 private:
  struct Slot {
    bool in_cs = false;
    int owner = -1;
    bool csr_pending = false;
    int csr_pid = -1;
  };

  Slot& at(int slot) {
    RME_ASSERT(slot >= 0 && static_cast<size_t>(slot) < slots_.size(),
               "ExclusionAudit: slot out of range - size the audit to the "
               "lock table (emplace<ExclusionAudit>(shards))");
    return slots_[static_cast<size_t>(slot)];
  }

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  uint64_t me_violations_ = 0;
  uint64_t csr_violations_ = 0;
  uint64_t entries_ = 0;
};

// Historical name (pre-Scenario harness).
using ExclusionChecker = ExclusionAudit;

// ---------------------------------------------------------------------------
// RmrBoundAudit: mean RMRs per completed body stay under a bound.
//
// Counted platforms only: reads the per-process counters of the bound
// world. Completions are counted via on_body_complete, so the audit works
// for any body shape (plain passages, KV updates, multi-shard traffic).
// ---------------------------------------------------------------------------
class RmrBoundAudit final : public Audit {
 public:
  RmrBoundAudit(CountedWorld& world, double max_rmr_per_body)
      : world_(world), bound_(max_rmr_per_body) {}

  const char* name() const override { return "rmr-bound"; }

  void on_body_complete(int /*pid*/) override {
    std::lock_guard<std::mutex> g(mu_);
    ++completions_;
  }

  bool check(std::vector<std::string>& failures) const override {
    uint64_t completions;
    {
      std::lock_guard<std::mutex> g(mu_);
      completions = completions_;
    }
    if (completions == 0) {
      failures.push_back("rmr-bound: no completed bodies to audit");
      return false;
    }
    uint64_t rmrs = 0;
    for (int pid = 0; pid < world_.nprocs(); ++pid) {
      rmrs += world_.counters(pid).rmrs;
    }
    const double mean =
        static_cast<double>(rmrs) / static_cast<double>(completions);
    if (mean > bound_) {
      failures.push_back("rmr-bound: " + std::to_string(mean) +
                         " RMR/body exceeds bound " + std::to_string(bound_));
      return false;
    }
    return true;
  }

  double mean_rmr_per_body() const {
    uint64_t completions;
    {
      std::lock_guard<std::mutex> g(mu_);
      completions = completions_;
    }
    if (completions == 0) return 0.0;
    uint64_t rmrs = 0;
    for (int pid = 0; pid < world_.nprocs(); ++pid) {
      rmrs += world_.counters(pid).rmrs;
    }
    return static_cast<double>(rmrs) / static_cast<double>(completions);
  }

 private:
  mutable std::mutex mu_;
  CountedWorld& world_;
  double bound_;
  uint64_t completions_ = 0;
};

// ---------------------------------------------------------------------------
// AuditSet: ordered fan-out. Owned by the Scenario; bodies call the hook
// fan-outs, the Scenario calls check_all() after the run.
// ---------------------------------------------------------------------------
class AuditSet {
 public:
  Audit* add(std::unique_ptr<Audit> a) {
    audits_.push_back(std::move(a));
    return audits_.back().get();
  }
  template <class A, class... Args>
  A* emplace(Args&&... args) {
    auto a = std::make_unique<A>(std::forward<Args>(args)...);
    A* raw = a.get();
    audits_.push_back(std::move(a));
    return raw;
  }

  void on_enter(int pid, int slot = 0) {
    for (auto& a : audits_) a->on_enter(pid, slot);
  }
  void on_exit(int pid, int slot = 0) {
    for (auto& a : audits_) a->on_exit(pid, slot);
  }
  void on_crash_in_cs(int pid, int slot = 0) {
    for (auto& a : audits_) a->on_crash_in_cs(pid, slot);
  }
  void on_body_complete(int pid) {
    for (auto& a : audits_) a->on_body_complete(pid);
  }

  bool check_all(std::vector<std::string>& failures) const {
    bool ok = true;
    for (const auto& a : audits_) ok = a->check(failures) && ok;
    return ok;
  }

  size_t size() const { return audits_.size(); }
  Audit& at(size_t i) { return *audits_[i]; }

 private:
  std::vector<std::unique_ptr<Audit>> audits_;
};

}  // namespace rme::harness

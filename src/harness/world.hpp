// World: wiring helper that owns the platform environment and one Process
// handle per pid. Tests, benches and examples build a World, then hand
// world.proc(pid) to the lock APIs.
#pragma once

#include <memory>
#include <vector>

#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "rmr/model.hpp"

namespace rme::harness {

// Real-platform world: no model.
struct RealWorld {
  using P = platform::Real;
  typename P::Env env;
  std::vector<platform::Process<P>> procs;

  explicit RealWorld(int nprocs, size_t ring_slots = 128)
      : procs(static_cast<size_t>(nprocs)) {
    for (int i = 0; i < nprocs; ++i) {
      procs[static_cast<size_t>(i)].attach(env, i, ring_slots);
    }
  }
  platform::Process<P>& proc(int pid) {
    return procs[static_cast<size_t>(pid)];
  }
};

// Counted world: owns a CC or DSM model.
enum class ModelKind { kCc, kDsm };

struct CountedWorld {
  using P = platform::Counted;
  std::unique_ptr<rmr::Model> model;
  typename P::Env env;
  std::vector<platform::Process<P>> procs;

  CountedWorld(ModelKind kind, int nprocs, size_t ring_slots = 128)
      : procs(static_cast<size_t>(nprocs)) {
    if (kind == ModelKind::kCc) {
      model = std::make_unique<rmr::CcModel>(nprocs);
    } else {
      model = std::make_unique<rmr::DsmModel>(nprocs);
    }
    env.model = model.get();
    for (int i = 0; i < nprocs; ++i) {
      procs[static_cast<size_t>(i)].attach(env, i, ring_slots);
    }
  }
  platform::Process<P>& proc(int pid) {
    return procs[static_cast<size_t>(pid)];
  }
  rmr::Counters& counters(int pid) {
    return procs[static_cast<size_t>(pid)].ctx.counters;
  }
  rmr::CcModel* cc() { return dynamic_cast<rmr::CcModel*>(model.get()); }
};

}  // namespace rme::harness

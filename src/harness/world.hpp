// World<P>: wiring helper that owns the platform environment and one
// Process handle per pid. Tests, benches and examples build a World, then
// hand world.proc(pid) to the lock APIs.
//
// One template serves both platforms:
//   World<platform::Real>     (alias RealWorld)    - empty Env, no model.
//   World<platform::Counted>  (alias CountedWorld) - owns the rmr::Model
//                                                    (CC or DSM) the Env
//                                                    routes through.
#pragma once

#include <memory>
#include <vector>

#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "rmr/model.hpp"

namespace rme::harness {

// Which RMR cost model a counted world runs under.
enum class ModelKind { kCc, kDsm };

template <class P>
struct World {
  typename P::Env env;
  std::vector<platform::Process<P>> procs;
  // Only set on counted platforms; empty on Real.
  std::unique_ptr<rmr::Model> model;

  // Real-platform constructor: no cost model.
  explicit World(int nprocs, size_t ring_slots = 128)
    requires(!P::kCounted)
      : procs(static_cast<size_t>(nprocs)) {
    attach_all(nprocs, ring_slots);
  }

  // Counted-platform constructor: owns a CC or DSM model.
  World(ModelKind kind, int nprocs, size_t ring_slots = 128)
    requires(P::kCounted)
      : procs(static_cast<size_t>(nprocs)) {
    if (kind == ModelKind::kCc) {
      model = std::make_unique<rmr::CcModel>(nprocs);
    } else {
      model = std::make_unique<rmr::DsmModel>(nprocs);
    }
    env.model = model.get();
    attach_all(nprocs, ring_slots);
  }

  int nprocs() const { return static_cast<int>(procs.size()); }

  platform::Process<P>& proc(int pid) {
    return procs[static_cast<size_t>(pid)];
  }

  // --- counted-only introspection ---
  rmr::Counters& counters(int pid)
    requires(P::kCounted)
  {
    return procs[static_cast<size_t>(pid)].ctx.counters;
  }
  rmr::CcModel* cc()
    requires(P::kCounted)
  {
    return dynamic_cast<rmr::CcModel*>(model.get());
  }

 private:
  void attach_all(int nprocs, size_t ring_slots) {
    for (int i = 0; i < nprocs; ++i) {
      procs[static_cast<size_t>(i)].attach(env, i, ring_slots);
    }
  }
};

// The historical names survive only as thin aliases.
using RealWorld = World<platform::Real>;
using CountedWorld = World<platform::Counted>;

}  // namespace rme::harness

// Scenario: the harness layer every test, bench and example builds on.
//
// A Scenario owns a World<P>, an ordered list of Components and an
// AuditSet. Components are set_up() in order before the run and
// tear_down() in reverse order after it (the CTS pattern); audits observe
// the run through hooks and render verdicts afterwards. The same Scenario
// API drives both platforms:
//
//   Scenario<platform::Counted>  - deterministic simulation via SimRun:
//       schedule policy, crash plan and step budget are scenario knobs.
//   Scenario<platform::Real>     - one OS thread per pid, no crash
//       injection: the wall-clock / memory-ordering configuration.
//
// Canonical use:
//
//   Scenario<platform::Counted> s(ModelKind::kCc, 8);
//   auto* fix = s.add_component<LockFixture<platform::Counted, Lock>>(
//       [](auto& w) { return std::make_unique<Lock>(w.env, 8); });
//   auto* chk = s.audits().emplace<ExclusionAudit>();
//   s.add_component<FasCrashComponent<platform::Counted>>(
//       std::vector<FasCrashSpec>{{0, 1, sim::CrashAroundFas::kAfter}});
//   s.set_iterations(3);
//   auto res = s.run();
//   ASSERT_TRUE(res.ok()) << res.summary();
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "harness/audit.hpp"
#include "harness/sim_run.hpp"
#include "harness/world.hpp"
#include "platform/platform.hpp"
#include "platform/process.hpp"
#include "sim/crash_plan.hpp"
#include "sim/scheduler.hpp"
#include "util/assert.hpp"

namespace rme::harness {

template <class P>
class Scenario;

// One ordered setup/teardown unit of a Scenario (a lock under test, a
// crash choreography, a store, a schedule script, ...).
template <class P>
class Component {
 public:
  virtual ~Component() = default;
  virtual const char* name() const = 0;
  // Return false to abort the scenario (already-set-up components are
  // torn down in reverse order).
  virtual bool set_up(Scenario<P>& s) = 0;
  virtual void tear_down(Scenario<P>& /*s*/) {}
};

template <class P>
class Scenario {
 public:
  using Proc = platform::Process<P>;
  using Body = std::function<void(Proc&, int pid)>;

  struct Result {
    std::vector<uint64_t> completions;  // per pid
    std::vector<uint64_t> crashes;      // per pid
    uint64_t steps = 0;
    bool exhausted = false;   // counted: hit max_steps with work remaining
    bool set_up_ok = true;    // every component set up successfully
    bool audits_ok = true;    // every audit passed
    std::vector<std::string> failures;

    bool ok() const { return set_up_ok && !exhausted && audits_ok; }
    std::string summary() const {
      if (!set_up_ok) return "component set-up failed";
      std::string s = exhausted ? "run exhausted (step budget); " : "";
      for (const auto& f : failures) s += f + "; ";
      return s.empty() ? "ok" : s;
    }
  };

  // Counted: deterministic simulation under an RMR model.
  Scenario(ModelKind kind, int nprocs, size_t ring_slots = 256)
    requires(P::kCounted)
      : engine_(kind, nprocs, ring_slots), nprocs_(nprocs) {}

  // Real: hardware threads.
  explicit Scenario(int nprocs, size_t ring_slots = 128)
    requires(!P::kCounted)
      : engine_(nprocs, ring_slots), nprocs_(nprocs) {}

  // --- wiring ---
  World<P>& world() {
    if constexpr (P::kCounted) {
      return engine_.world();
    } else {
      return engine_;
    }
  }
  SimRun& sim()
    requires(P::kCounted)
  {
    return engine_;
  }
  int nprocs() const { return nprocs_; }
  AuditSet& audits() { return audits_; }

  Component<P>* add_component(std::unique_ptr<Component<P>> c) {
    components_.push_back(std::move(c));
    return components_.back().get();
  }
  template <class C, class... Args>
  C* add_component(Args&&... args) {
    auto c = std::make_unique<C>(std::forward<Args>(args)...);
    C* raw = c.get();
    components_.push_back(std::move(c));
    return raw;
  }

  // --- run knobs (components may set these from set_up) ---
  void set_body(Body body) { body_ = std::move(body); }
  void set_iterations(std::vector<uint64_t> per_pid) {
    iterations_ = std::move(per_pid);
  }
  void set_iterations(uint64_t each) {
    iterations_.assign(static_cast<size_t>(nprocs_), each);
  }
  void set_max_steps(uint64_t steps)
    requires(P::kCounted)
  {
    max_steps_ = steps;
  }
  void set_policy(std::unique_ptr<sim::SchedulePolicy> p)
    requires(P::kCounted)
  {
    policy_ = std::move(p);
  }
  void use_random_schedule(uint64_t seed)
    requires(P::kCounted)
  {
    policy_ = std::make_unique<sim::SeededRandom>(seed);
  }
  void use_round_robin_schedule()
    requires(P::kCounted)
  {
    policy_ = std::make_unique<sim::RoundRobin>();
  }
  void set_crash_plan(std::unique_ptr<sim::CrashPlan> c)
    requires(P::kCounted)
  {
    crash_ = std::move(c);
  }
  sim::CrashPlan* crash_plan()
    requires(P::kCounted)
  {
    return crash_.get();
  }

  // --- execution ---
  Result run() {
    Result res;
    res.completions.assign(static_cast<size_t>(nprocs_), 0);
    res.crashes.assign(static_cast<size_t>(nprocs_), 0);

    size_t ready = 0;
    for (; ready < components_.size(); ++ready) {
      if (!components_[ready]->set_up(*this)) break;
    }
    if (ready < components_.size()) {
      res.set_up_ok = false;
      res.failures.push_back(std::string("set_up failed: ") +
                             components_[ready]->name());
      tear_down_from(ready);
      return res;
    }
    RME_ASSERT(static_cast<bool>(body_), "Scenario: no body set");
    if (iterations_.empty()) set_iterations(1);

    if constexpr (P::kCounted) {
      run_sim(res);
    } else {
      run_threads(res);
    }

    tear_down_from(components_.size());
    res.audits_ok = audits_.check_all(res.failures);
    return res;
  }

 private:
  void tear_down_from(size_t count) {
    for (size_t i = count; i-- > 0;) {
      components_[i]->tear_down(*this);
    }
  }

  void run_sim(Result& res)
    requires(P::kCounted)
  {
    if (policy_ == nullptr) policy_ = std::make_unique<sim::SeededRandom>(1);
    if (crash_ == nullptr) crash_ = std::make_unique<sim::NoCrash>();
    AuditSet& audits = audits_;
    Body body = body_;  // keep the scenario's body unwrapped for reruns
    engine_.set_body([&audits, body](SimProc& h, int pid) {
      body(h, pid);
      audits.on_body_complete(pid);
    });
    auto r = engine_.run(*policy_, *crash_, iterations_, max_steps_);
    res.completions = std::move(r.completions);
    res.crashes = std::move(r.crashes);
    res.steps = r.steps;
    res.exhausted = r.exhausted;
  }

  void run_threads(Result& res)
    requires(!P::kCounted)
  {
    std::vector<std::thread> ts;
    ts.reserve(static_cast<size_t>(nprocs_));
    for (int pid = 0; pid < nprocs_; ++pid) {
      ts.emplace_back([this, pid, &res] {
        Proc& h = world().proc(pid);
        const uint64_t iters = iterations_[static_cast<size_t>(pid)];
        for (uint64_t i = 0; i < iters; ++i) {
          body_(h, pid);
          audits_.on_body_complete(pid);
          ++res.completions[static_cast<size_t>(pid)];
        }
      });
    }
    for (auto& t : ts) t.join();
  }

  // SimRun (which owns the counted world) or the real world itself.
  std::conditional_t<P::kCounted, SimRun, World<P>> engine_;
  int nprocs_;

  std::vector<std::unique_ptr<Component<P>>> components_;
  AuditSet audits_;
  Body body_;
  std::vector<uint64_t> iterations_;
  uint64_t max_steps_ = 40000000;

  // Counted-only knobs (cheap empty members on Real).
  std::unique_ptr<sim::SchedulePolicy> policy_;
  std::unique_ptr<sim::CrashPlan> crash_;
};

// ---------------------------------------------------------------------------
// The canonical audited critical section, shared by every fixture: the
// caller has just acquired the lock guarding `slot`; run the verified CS
// (a few shared scratch operations, so the CS spans scheduling points,
// plus an optional caller hook), fire the audit hooks, and release via
// `unlock`. A crash anywhere inside unwinds as ProcessCrashed and is
// reported as a crash-in-CS iff it happened before on_exit.
// ---------------------------------------------------------------------------
template <class P, class UnlockFn>
void audited_cs(AuditSet& audits, platform::Process<P>& h, int pid, int slot,
                typename P::template Atomic<int>& scratch, int cs_ops,
                const std::function<void(int)>& cs_hook, UnlockFn unlock) {
  audits.on_enter(pid, slot);
  bool crashed_in_cs = true;  // until we reach on_exit
  try {
    for (int i = 0; i < cs_ops; ++i) {
      scratch.store(h.ctx, pid);
      const int seen = scratch.load(h.ctx);
      // A foreign write inside our CS means mutual exclusion broke in a
      // way the enter/exit bookkeeping alone could miss.
      RME_ASSERT(seen == pid, "audited_cs: CS scratch overwritten");
    }
    if (cs_hook) cs_hook(pid);
    crashed_in_cs = false;
    audits.on_exit(pid, slot);
    unlock();
  } catch (const sim::ProcessCrashed&) {
    if (crashed_in_cs) audits.on_crash_in_cs(pid, slot);
    throw;
  }
}

// ---------------------------------------------------------------------------
// LockFixture: owns a lock built in set_up and installs the canonical
// audited body - lock, verified critical section spanning a few shared
// operations, unlock - with every audit hook wired. Works for any lock
// exposing lock(Proc&, int)/unlock(Proc&, int) where the second argument
// is the pid/port (one port per pid, the paper's static port model).
// ---------------------------------------------------------------------------
template <class P, class Lock>
class LockFixture : public Component<P> {
 public:
  using Factory = std::function<std::unique_ptr<Lock>(World<P>&)>;

  explicit LockFixture(Factory factory, int cs_ops = 2)
      : factory_(std::move(factory)), cs_ops_(cs_ops) {}

  const char* name() const override { return "lock-fixture"; }

  // Optional extra work executed inside the critical section (e.g. the
  // classic unprotected-counter increment whose final total witnesses
  // that unlock() publishes plain data with release semantics).
  void set_cs_hook(std::function<void(int pid)> hook) {
    cs_hook_ = std::move(hook);
  }

  bool set_up(Scenario<P>& s) override {
    lock_ = factory_(s.world());
    if (lock_ == nullptr) return false;
    scratch_.attach(s.world().env, rmr::kNoOwner);
    scratch_.init(-1);
    AuditSet& audits = s.audits();
    s.set_body([this, &audits](typename Scenario<P>::Proc& h, int pid) {
      lock_->lock(h, pid);
      audited_cs<P>(audits, h, pid, /*slot=*/0, scratch_, cs_ops_, cs_hook_,
                    [&] { lock_->unlock(h, pid); });
    });
    return true;
  }

  // The lock outlives tear_down on purpose: post-run assertions routinely
  // inspect lock stats. It is freed with the fixture.
  void tear_down(Scenario<P>& /*s*/) override {}

  Lock& lock() { return *lock_; }

 private:
  Factory factory_;
  int cs_ops_;
  std::function<void(int)> cs_hook_;
  std::unique_ptr<Lock> lock_;
  typename P::template Atomic<int> scratch_;
};

// ---------------------------------------------------------------------------
// KeyedLockFixture: the sharded analogue of LockFixture for key-addressed
// lock tables (any type exposing lock(Proc&, pid, key) -> shard,
// unlock(Proc&, pid), shards()). Each body derives its key from
// (pid, completed-count), so a crashed body retries the SAME key - the
// paper's recovery contract applied per shard: the recovering process
// returns to the shard of its interrupted super-passage, where CSR then
// holds. Audit hooks carry the shard index as the slot.
// ---------------------------------------------------------------------------
template <class P, class Table>
class KeyedLockFixture : public Component<P> {
 public:
  using Factory = std::function<std::unique_ptr<Table>(World<P>&)>;
  using KeyFn = std::function<uint64_t(int pid, uint64_t completed)>;

  explicit KeyedLockFixture(Factory factory, KeyFn key_fn = nullptr,
                            int cs_ops = 2)
      : factory_(std::move(factory)),
        key_fn_(key_fn ? std::move(key_fn) : default_key),
        cs_ops_(cs_ops) {}

  const char* name() const override { return "keyed-lock-fixture"; }

  bool set_up(Scenario<P>& s) override {
    table_ = factory_(s.world());
    if (table_ == nullptr) return false;
    completed_.assign(static_cast<size_t>(s.nprocs()), 0);
    // vector(n) constructs the (immovable) atomics in place; the vector
    // move-assign just adopts the buffer.
    scratch_ = std::vector<typename P::template Atomic<int>>(
        static_cast<size_t>(table_->shards()));
    for (auto& cell : scratch_) {
      cell.attach(s.world().env, rmr::kNoOwner);
      cell.init(-1);
    }
    AuditSet& audits = s.audits();
    s.set_body([this, &audits](typename Scenario<P>::Proc& h, int pid) {
      body(audits, h, pid);
    });
    return true;
  }

  void tear_down(Scenario<P>& /*s*/) override {}

  Table& table() { return *table_; }
  uint64_t completed(int pid) const {
    return completed_[static_cast<size_t>(pid)];
  }

 private:
  static uint64_t default_key(int pid, uint64_t completed) {
    return static_cast<uint64_t>(pid) * 7919u + completed;
  }

  void body(AuditSet& audits, platform::Process<P>& h, int pid) {
    uint64_t& done = completed_[static_cast<size_t>(pid)];
    const uint64_t key = key_fn_(pid, done);  // stable across crash retries
    const int shard = table_->lock(h, pid, key);
    audited_cs<P>(audits, h, pid, shard, scratch_[static_cast<size_t>(shard)],
                  cs_ops_, /*cs_hook=*/nullptr,
                  [&] { table_->unlock(h, pid); });
    ++done;
  }

  Factory factory_;
  KeyFn key_fn_;
  int cs_ops_;
  std::unique_ptr<Table> table_;
  std::vector<uint64_t> completed_;
  std::vector<typename P::template Atomic<int>> scratch_;
};

// ---------------------------------------------------------------------------
// FasCrashComponent: installs a MultiPlan of CrashAroundFas plans - the
// paper's two queue-breaking crash shapes (Section 3.1) - from a spec
// list. The shared choreography of the scenario and crash-matrix suites.
// ---------------------------------------------------------------------------
struct FasCrashSpec {
  int pid;
  int nth_fas;
  sim::CrashAroundFas::When when;
};

template <class P>
class FasCrashComponent : public Component<P> {
  static_assert(P::kCounted, "crash injection requires the counted platform");

 public:
  explicit FasCrashComponent(std::vector<FasCrashSpec> specs)
      : specs_(std::move(specs)) {}

  const char* name() const override { return "fas-crashes"; }

  bool set_up(Scenario<P>& s) override {
    auto plan = std::make_unique<sim::MultiPlan>();
    for (const FasCrashSpec& spec : specs_) {
      plan->emplace<sim::CrashAroundFas>(spec.pid, spec.nth_fas, spec.when);
    }
    s.set_crash_plan(std::move(plan));
    return true;
  }

 private:
  std::vector<FasCrashSpec> specs_;
};

// Convenience aliases for the two platform configurations.
using SimScenario = Scenario<platform::Counted>;
using RealScenario = Scenario<platform::Real>;

}  // namespace rme::harness
